// Node embedding end to end — the paper's motivating application: FlashMob
// generates DeepWalk paths, which train skip-gram-with-negative-sampling
// (SGNS) node embeddings; we then verify that connected vertex pairs end
// up closer in embedding space than random pairs.
//
//	go run ./examples/embedding
package main

import (
	"fmt"
	"log"

	"flashmob"
	"flashmob/internal/emb"
)

func main() {
	dir, err := flashmob.Generate("YT", 500, 7)
	if err != nil {
		log.Fatal(err)
	}
	// Symmetrize: embeddings need reciprocal context windows (the paper's
	// social graphs are undirected).
	edges := make([]flashmob.Edge, 0, dir.NumEdges())
	for v := uint32(0); v < dir.NumVertices(); v++ {
		for _, w := range dir.Neighbors(v) {
			edges = append(edges, flashmob.Edge{Src: v, Dst: w})
		}
	}
	g, err := flashmob.BuildGraph(edges, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// 1. Sample the walk corpus with FlashMob.
	sys, err := flashmob.New(g, flashmob.Options{
		Algorithm:   flashmob.DeepWalk(),
		Seed:        7,
		RecordPaths: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Walk(uint64(g.NumVertices())*2, 40)
	if err != nil {
		log.Fatal(err)
	}
	paths, err := res.Paths()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d walks × %d steps (%.1f ns/step sampled)\n",
		len(paths), res.Steps(), res.PerStepNS())

	// 2. Train SGNS embeddings on the corpus (frequent-vertex subsampling
	// on: the hubs of Table 2 would otherwise collapse the embedding).
	model, err := emb.Train(g, paths, emb.Config{
		Dim: 32, Window: 4, Negatives: 4, Epochs: 3, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d-dimensional embeddings for %d vertices\n",
		model.Dim, len(model.Vectors))

	// 3. Evaluate: neighbours should be more similar than random pairs.
	connected, random := emb.LinkSeparation(g, model, 20000, 123)
	fmt.Printf("mean cosine similarity: connected pairs %.3f vs random pairs %.3f\n",
		connected, random)
	if connected > random {
		fmt.Println("OK: embeddings separate graph neighbours from random pairs")
	} else {
		fmt.Println("WARNING: embeddings failed to separate neighbours (try more epochs)")
	}

	// Bonus: nearest neighbours of the biggest hub in embedding space.
	var hub flashmob.VID
	for v := uint32(0); v < g.NumVertices(); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	fmt.Printf("vertices most similar to hub %d (degree %d): %v\n",
		hub, g.Degree(hub), model.MostSimilar(hub, 5))
}
