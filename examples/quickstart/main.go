// Quickstart: generate a synthetic social graph, run DeepWalk on it with
// FlashMob's auto-configured pipeline, and inspect the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flashmob"
)

func main() {
	// A YouTube-shaped synthetic graph at 1/200 scale (~5.7k vertices).
	g, err := flashmob.Generate("YT", 200, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, %.1f KB CSR\n",
		g.NumVertices(), g.NumEdges(), float64(g.SizeBytes())/1024)

	// New sorts the graph by degree, profiles candidate partitions, and
	// solves the MCKP to pick partition sizes and sampling policies.
	sys, err := flashmob.New(g, flashmob.Options{
		Algorithm:   flashmob.DeepWalk(),
		Seed:        42,
		RecordPaths: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	plan := sys.Plan()
	fmt.Printf("plan: %d partitions in %d groups (%d shuffle bins); PS covers %d vertices, DS %d\n",
		plan.NumVPs, plan.NumGroups, plan.Bins, plan.PSVertices, plan.DSVertices)

	// |V| walkers, 80 steps each — the DeepWalk convention.
	res, err := sys.Walk(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	tm := res.Timing()
	fmt.Printf("walked %d walkers × %d steps in %v (%.1f ns/step)\n",
		res.Walkers(), res.Steps(), tm.Total.Round(1e6), res.PerStepNS())
	fmt.Printf("stage split: sample %v, shuffle %v, other %v\n",
		tm.Sample.Round(1e6), tm.Shuffle.Round(1e6), tm.Other.Round(1e6))

	paths, err := res.Paths()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first walker's first 10 hops: %v\n", paths[0][:11])

	// Visit counts confirm the degree-proportional traffic the paper's
	// Table 2 documents.
	visits, err := res.VisitCounts()
	if err != nil {
		log.Fatal(err)
	}
	var hub flashmob.VID
	for v := uint32(0); v < g.NumVertices(); v++ {
		if visits[v] > visits[hub] {
			hub = v
		}
	}
	fmt.Printf("most visited vertex: %d (degree %d, %d visits)\n",
		hub, g.Degree(hub), visits[hub])
}
