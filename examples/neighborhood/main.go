// Neighbourhood sampling (GraphSage-style mini-batch preparation): the
// paper's introduction notes that approximate graph-mining systems doing
// neighbourhood expansion would also benefit from FlashMob's batching.
// This example compares the naive per-seed expansion against the
// FlashMob-style batched expansion, verifying identical sampling
// semantics and reporting the throughput difference.
//
//	go run ./examples/neighborhood
package main

import (
	"fmt"
	"log"
	"time"

	"flashmob"
	"flashmob/internal/sample"
)

func main() {
	g, err := flashmob.Generate("FS", 600, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// A GraphSage-style 2-layer fanout over a large seed batch.
	fanouts := []int{10, 5}
	seeds := make([]flashmob.VID, 20000)
	for i := range seeds {
		seeds[i] = flashmob.VID(uint32(i*31) % g.NumVertices())
	}

	t0 := time.Now()
	naive, err := sample.Naive(g, seeds, fanouts, 1)
	if err != nil {
		log.Fatal(err)
	}
	naiveTime := time.Since(t0)

	t0 = time.Now()
	batched, err := sample.Batched(g, seeds, fanouts, 1)
	if err != nil {
		log.Fatal(err)
	}
	batchedTime := time.Since(t0)

	if naive.TotalSampledEdges() != batched.TotalSampledEdges() {
		log.Fatalf("implementations disagree on sample count: %d vs %d",
			naive.TotalSampledEdges(), batched.TotalSampledEdges())
	}
	edges := batched.TotalSampledEdges()
	fmt.Printf("sampled %d edges across %d layers per implementation\n", edges, len(fanouts))
	fmt.Printf("naive:   %8v  (%.1f ns/sample)\n", naiveTime.Round(time.Microsecond),
		float64(naiveTime.Nanoseconds())/float64(edges))
	fmt.Printf("batched: %8v  (%.1f ns/sample)\n", batchedTime.Round(time.Microsecond),
		float64(batchedTime.Nanoseconds())/float64(edges))
	fmt.Printf("batched is %.2fx the naive throughput on this machine\n",
		float64(naiveTime)/float64(batchedTime))
	fmt.Println("(gap widens with graph size, as the naive version's working set leaves cache)")
}
