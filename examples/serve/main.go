// Serving example: stand up the batched walk-query service in process,
// then act as three clients — a sampling-mode crowd whose queries
// coalesce into shared engine runs, and a seeded query whose
// trajectories are reproducible no matter who it shares a batch with.
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"flashmob"
	"flashmob/internal/serve"
)

func main() {
	// Build one system to serve; responses need trajectories, so
	// RecordPaths is required.
	g, err := flashmob.Generate("YT", 200, 42)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := flashmob.New(g, flashmob.Options{
		Algorithm: flashmob.DeepWalk(), Seed: 42, RecordPaths: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The server owns the system from here on; a wide 20ms window makes
	// the coalescing easy to see. Production setups run cmd/fmserve
	// instead of embedding the handler.
	srv, err := serve.New(
		[]serve.Backend{{Name: "deepwalk", Sys: sys, Spec: flashmob.DeepWalk()}},
		serve.Config{MaxWait: 20 * time.Millisecond},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	fmt.Printf("serving deepwalk at %s\n", hs.URL)

	// A crowd of sampling-mode clients: no seed, so the server may run
	// them all as one engine run and slice the walker array per caller.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := post(hs.URL, map[string]any{"walkers": 16, "steps": 10})
			fmt.Printf("client %d: %d walkers, coalesced=%v, shared a run of %d walkers (%d reqs in batch)\n",
				i, resp.Walkers, resp.Coalesced, resp.RunWalkers, resp.BatchRequests)
		}(i)
	}
	wg.Wait()

	// A seeded query: reproducible. Run it twice — the trajectories are
	// bitwise identical even though the second ride shares a batch with
	// fresh crowd traffic.
	first := post(hs.URL, map[string]any{"walkers": 4, "steps": 6, "seed": 7})
	for i := 0; i < 3; i++ {
		go post(hs.URL, map[string]any{"walkers": 16, "steps": 6})
	}
	second := post(hs.URL, map[string]any{"walkers": 4, "steps": 6, "seed": 7})
	same := fmt.Sprint(first.Paths) == fmt.Sprint(second.Paths)
	fmt.Printf("seeded query, run twice: identical trajectories = %v\n", same)
	fmt.Printf("  walker 0: %v\n", first.Paths[0])
}

// post issues one walk query and decodes the response.
func post(base string, req map[string]any) serve.WalkResponse {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/walk", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var wr serve.WalkResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != 200 {
		log.Fatalf("walk: status %d", resp.StatusCode)
	}
	return wr
}
