// Monte-Carlo PageRank: random walks with restart estimate the PageRank
// vector (visit frequencies converge to the stationary distribution of
// the damped walk). This example runs the estimator on FlashMob and checks
// it against exact power iteration.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"flashmob"
)

const damping = 0.85

func main() {
	g, err := flashmob.Generate("TW", 20000, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Monte-Carlo estimate via FlashMob restart walks.
	sys, err := flashmob.New(g, flashmob.Options{
		Algorithm:   flashmob.PageRankWalk(damping),
		Seed:        13,
		RecordPaths: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Walk(uint64(g.NumVertices())*8, 50)
	if err != nil {
		log.Fatal(err)
	}
	visits, err := res.VisitCounts()
	if err != nil {
		log.Fatal(err)
	}
	var total float64
	for _, c := range visits {
		total += float64(c)
	}
	mc := make([]float64, len(visits))
	for v, c := range visits {
		mc[v] = float64(c) / total
	}
	fmt.Printf("sampled %d walker-steps at %.1f ns/step\n", res.TotalSteps(), res.PerStepNS())

	// Exact power iteration for reference.
	exact := powerIteration(g, 80)

	// Compare top-10 rankings and overall correlation.
	top := argsortDesc(exact)[:10]
	fmt.Printf("%-8s %14s %14s %8s\n", "vertex", "exact-PR", "walk-PR", "degree")
	for _, v := range top {
		fmt.Printf("%-8d %14.6f %14.6f %8d\n", v, exact[v], mc[v], g.Degree(uint32(v)))
	}
	fmt.Printf("pearson correlation (all vertices): %.4f\n", pearson(exact, mc))
	overlap := topOverlap(exact, mc, 20)
	fmt.Printf("top-20 overlap: %d/20\n", overlap)
}

// powerIteration computes damped PageRank with the same dead-end
// convention as the walk engine (dead ends hold their mass).
func powerIteration(g *flashmob.Graph, iters int) []float64 {
	n := int(g.NumVertices())
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = (1 - damping) / float64(n)
		}
		for u := 0; u < n; u++ {
			adj := g.Neighbors(uint32(u))
			if len(adj) == 0 {
				next[u] += damping * pr[u]
				continue
			}
			share := damping * pr[u] / float64(len(adj))
			for _, v := range adj {
				next[v] += share
			}
		}
		pr, next = next, pr
	}
	return pr
}

func argsortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func topOverlap(a, b []float64, k int) int {
	ta, tb := argsortDesc(a)[:k], argsortDesc(b)[:k]
	set := map[int]bool{}
	for _, v := range ta {
		set[v] = true
	}
	var n int
	for _, v := range tb {
		if set[v] {
			n++
		}
	}
	return n
}
