// node2vec demo: the second-order walk's p/q hyper-parameters interpolate
// between BFS-like and DFS-like exploration (Grover & Leskovec 2016). This
// example runs FlashMob's node2vec at both extremes and measures the
// walks' behaviour: return rate (how often a walker revisits its
// predecessor) and exploration (distinct vertices per walk).
//
//	go run ./examples/node2vec
package main

import (
	"fmt"
	"log"

	"flashmob"
)

func main() {
	dir, err := flashmob.Generate("FS", 2000, 11)
	if err != nil {
		log.Fatal(err)
	}
	// node2vec's return (1/p) and common-neighbour weights only matter
	// when edges are reciprocal, so symmetrize the generated graph (the
	// paper's social-network datasets are undirected).
	g, err := symmetrize(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges (symmetrized)\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("%-28s %12s %14s %12s\n", "configuration", "return-rate", "distinct/walk", "ns/step")

	for _, c := range []struct {
		name string
		p, q float64
	}{
		{"BFS-like (p=0.25, q=4)", 0.25, 4},
		{"balanced (p=1, q=1)", 1, 1},
		{"DFS-like (p=4, q=0.25)", 4, 0.25},
	} {
		ret, distinct, nsStep, err := run(g, c.p, c.q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %11.1f%% %14.1f %12.1f\n", c.name, 100*ret, distinct, nsStep)
	}
	fmt.Println("\nexpected: BFS-like maximizes returns; DFS-like maximizes distinct vertices")
}

// symmetrize rebuilds a directed graph with every edge reciprocated.
func symmetrize(g *flashmob.Graph) (*flashmob.Graph, error) {
	edges := make([]flashmob.Edge, 0, g.NumEdges())
	for v := uint32(0); v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(v) {
			edges = append(edges, flashmob.Edge{Src: v, Dst: w})
		}
	}
	return flashmob.BuildGraph(edges, true)
}

func run(g *flashmob.Graph, p, q float64) (returnRate, distinctPerWalk, nsStep float64, err error) {
	sys, err := flashmob.New(g, flashmob.Options{
		Algorithm:   flashmob.Node2Vec(p, q),
		Seed:        11,
		RecordPaths: true,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	res, err := sys.Walk(2000, 40)
	if err != nil {
		return 0, 0, 0, err
	}
	paths, err := res.Paths()
	if err != nil {
		return 0, 0, 0, err
	}
	var returns, moves, distinct int
	seen := map[flashmob.VID]bool{}
	for _, path := range paths {
		for k := range seen {
			delete(seen, k)
		}
		for i, v := range path {
			seen[v] = true
			if i >= 2 {
				if v == path[i-2] {
					returns++
				}
				moves++
			}
		}
		distinct += len(seen)
	}
	return float64(returns) / float64(moves),
		float64(distinct) / float64(len(paths)),
		res.PerStepNS(), nil
}
