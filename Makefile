GO ?= go

.PHONY: build test race bench bench-shuffle

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/pool/ ./internal/walk/ ./internal/core/

# Go-native component benchmarks (small, cache-resident scales).
bench:
	$(GO) test -run NONE -bench . -benchtime 3x .

# The §4.3 shuffle-stage measurement at DRAM scale: write-combining ×
# persistent-pool variants plus the end-to-end stage split. Writes
# BENCH_shuffle.json in the repo root.
bench-shuffle:
	$(GO) run ./cmd/fmbench -exp shuffle

bench-shuffle-component:
	$(GO) test -run NONE -bench BenchmarkComponentShuffle -benchtime 3x .
