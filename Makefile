GO ?= go

.PHONY: build test race lint bench bench-shuffle bench-sample bench-concurrent bench-serve bench-mixed bench-ooc bench-shard bench-dynamic bench-grid bench-baseline perf-gate perf-gate-smoke

build:
	$(GO) build ./...

# Formatting, vet, and documentation coverage (the CI lint leg).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/doccheck -strict . -strict ./internal/obs -strict ./internal/serve -strict ./internal/ooc -strict ./internal/perfgate -strict ./internal/shard -strict ./internal/dyn ./internal/... ./cmd/... ./examples/...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on . ./internal/pool/ ./internal/walk/ ./internal/core/ ./internal/serve/ ./internal/ooc/ ./internal/shard/

# Go-native component benchmarks (small, cache-resident scales).
bench:
	$(GO) test -run NONE -bench . -benchtime 3x .

# The §4.3 shuffle-stage measurement at DRAM scale: write-combining ×
# persistent-pool variants plus the end-to-end stage split. Writes a raw
# BENCH_shuffle.json under bench/out/.
bench-shuffle:
	@mkdir -p bench/out
	$(GO) run ./cmd/fmbench -exp shuffle -outdir bench/out

bench-shuffle-component:
	$(GO) test -run NONE -bench BenchmarkComponentShuffle -benchtime 3x .

# The §4.2 sample-stage measurement at DRAM scale: generic scalar path vs
# per-partition specialized kernels across the partition classes
# {PS, DS-regular, DS-CSR, weighted, node2vec}. Writes a raw BENCH_sample.json
# under bench/out/.
bench-sample:
	@mkdir -p bench/out
	$(GO) run ./cmd/fmbench -exp sample -outdir bench/out

# Concurrent sessions sharing one engine build: aggregate
# walker-steps/s at 1/2/4/8 simultaneous Walks. Writes a raw
# BENCH_concurrent.json under bench/out/.
bench-concurrent:
	@mkdir -p bench/out
	$(GO) run ./cmd/fmbench -exp concurrent -outdir bench/out

# The walk-query service under open-loop load: batch-size-1 baseline vs
# coalescing at several micro-batching windows, mixed request sizes.
# Writes a raw BENCH_serve.json under bench/out/ (docs/SERVING.md).
bench-serve:
	@mkdir -p bench/out
	$(GO) run ./cmd/fmbench -exp serve -outdir bench/out

# Mixed-cohort batch execution under closed-loop mixed-algorithm
# traffic: one mixed run per wave vs the fragmented per-(algorithm,
# steps) baseline, mean/std over 5 repeats. Writes a raw BENCH_mixed.json
# under bench/out/ (docs/SERVING.md).
bench-mixed:
	@mkdir -p bench/out
	$(GO) run ./cmd/fmbench -exp mixed -repeats 5 -outdir bench/out

# Out-of-core streaming overlap curve: prefetch depth × IO workers ×
# parallel sampling × resident-tier budget on a disk-resident graph,
# mean/std over 5 repeats. Writes a raw BENCH_ooc.json under bench/out/.
bench-ooc:
	@mkdir -p bench/out
	$(GO) run ./cmd/fmbench -exp ooc -repeats 5 -outdir bench/out

# Sharded topology sweep: shard count x transport (in-process channel
# exchange at 1/2/4 shards, a two-shard TCP loopback pair) vs the single
# engine on bitwise-identical cohorts, mean/std over 5 repeats. Writes a
# raw BENCH_shard.json under bench/out/ (docs/BENCHMARKING.md).
bench-shard:
	@mkdir -p bench/out
	$(GO) run ./cmd/fmbench -exp shard -repeats 5 -outdir bench/out

# The dynamic server under churn: the same open-loop walk load against
# a quiescent dynamic server, one absorbing a freeze-per-batch edge
# stream, and one compacting under load, mean/std over 3 repeats.
# Writes a raw BENCH_dynamic.json under bench/out/ (docs/SERVING.md).
bench-dynamic:
	@mkdir -p bench/out
	$(GO) run ./cmd/fmbench -exp dynamic -repeats 3 -outdir bench/out

# Equivalence + determinism gate for the sample kernels.
bench-sample-equiv:
	$(GO) test -run 'TestSample|TestStopProb|TestDSRegular|TestMCKPPlan' -count=1 ./internal/core/

# The full declarative grid (bench/experiments.json): every experiment x
# its parameter grid x repeats, aggregated to mean/std/min/max. Writes
# the versioned BENCH_*.json into the repo root plus CSV/markdown
# summaries under bench/out/ (docs/BENCHMARKING.md).
bench-grid:
	@mkdir -p bench/out
	$(GO) run ./cmd/fmgrid -manifest bench/experiments.json -out . \
		-csv bench/out/bench_summary.csv -md bench/out/bench_summary.md

# Intentional baseline refresh: rerun the full grid and commit the
# results as the new bench/baseline/ trajectory. Only do this when a
# change is *supposed* to move the numbers; see docs/BENCHMARKING.md.
bench-baseline:
	@mkdir -p bench/out
	$(GO) run ./cmd/fmgrid -manifest bench/experiments.json -out . \
		-csv bench/out/bench_summary.csv -md bench/out/bench_summary.md \
		-update-baseline

# The regression gate: rerun the full grid and compare every cell
# against the committed bench/baseline/ trajectory. Exits non-zero when
# any gated metric regresses past the manifest's noise band.
perf-gate:
	@mkdir -p bench/out
	$(GO) run ./cmd/fmgrid -manifest bench/experiments.json -out bench/out \
		-baseline bench/baseline -gate

# The CI smoke leg: a tiny reduced grid (bench/smoke.json) gated on
# ratio metrics only, so it survives host-to-host variance. Fast enough
# to run on every push.
perf-gate-smoke:
	@mkdir -p bench/out/smoke
	$(GO) run ./cmd/fmgrid -manifest bench/smoke.json -out bench/out/smoke \
		-baseline bench/baseline/smoke -gate
