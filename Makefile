GO ?= go

.PHONY: build test race lint bench bench-shuffle bench-sample bench-concurrent bench-serve bench-mixed bench-ooc

build:
	$(GO) build ./...

# Formatting, vet, and documentation coverage (the CI lint leg).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/doccheck -strict . -strict ./internal/obs -strict ./internal/serve -strict ./internal/ooc ./internal/... ./cmd/... ./examples/...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on . ./internal/pool/ ./internal/walk/ ./internal/core/ ./internal/serve/ ./internal/ooc/

# Go-native component benchmarks (small, cache-resident scales).
bench:
	$(GO) test -run NONE -bench . -benchtime 3x .

# The §4.3 shuffle-stage measurement at DRAM scale: write-combining ×
# persistent-pool variants plus the end-to-end stage split. Writes
# BENCH_shuffle.json in the repo root.
bench-shuffle:
	$(GO) run ./cmd/fmbench -exp shuffle

bench-shuffle-component:
	$(GO) test -run NONE -bench BenchmarkComponentShuffle -benchtime 3x .

# The §4.2 sample-stage measurement at DRAM scale: generic scalar path vs
# per-partition specialized kernels across the partition classes
# {PS, DS-regular, DS-CSR, weighted, node2vec}. Writes BENCH_sample.json
# in the repo root.
bench-sample:
	$(GO) run ./cmd/fmbench -exp sample

# Concurrent sessions sharing one engine build: aggregate
# walker-steps/s at 1/2/4/8 simultaneous Walks. Writes
# BENCH_concurrent.json in the repo root.
bench-concurrent:
	$(GO) run ./cmd/fmbench -exp concurrent

# The walk-query service under open-loop load: batch-size-1 baseline vs
# coalescing at several micro-batching windows, mixed request sizes.
# Writes BENCH_serve.json in the repo root (docs/SERVING.md).
bench-serve:
	$(GO) run ./cmd/fmbench -exp serve

# Mixed-cohort batch execution under closed-loop mixed-algorithm
# traffic: one mixed run per wave vs the fragmented per-(algorithm,
# steps) baseline, mean/std over 5 repeats. Writes BENCH_mixed.json in
# the repo root (docs/SERVING.md).
bench-mixed:
	$(GO) run ./cmd/fmbench -exp mixed -repeats 5

# Out-of-core streaming overlap curve: prefetch depth × IO workers ×
# parallel sampling × resident-tier budget on a disk-resident graph,
# mean/std over 5 repeats. Writes BENCH_ooc.json in the repo root.
bench-ooc:
	$(GO) run ./cmd/fmbench -exp ooc -repeats 5

# Equivalence + determinism gate for the sample kernels.
bench-sample-equiv:
	$(GO) test -run 'TestSample|TestStopProb|TestDSRegular|TestMCKPPlan' -count=1 ./internal/core/
