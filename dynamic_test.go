package flashmob

import (
	"testing"
)

// TestDynamicCompactedMatchesStatic is the facade-level determinism claim:
// after ingesting a delta and compacting, walks — and the paths they
// produce in ORIGINAL vertex IDs — are identical to a static New over the
// full edge set.
func TestDynamicCompactedMatchesStatic(t *testing.T) {
	base := make([]Edge, 0, 3000)
	for i := 0; i < 3000; i++ {
		base = append(base, Edge{Src: VID(i*7919) % 500, Dst: VID(i*104729) % 500})
	}
	delta := make([]Edge, 0, 200)
	for i := 0; i < 200; i++ {
		delta = append(delta, Edge{Src: VID(i*31) % 520, Dst: VID(i*97) % 520})
	}

	g, err := BuildGraph(base, true)
	if err != nil {
		t.Fatal(err)
	}
	dynSys, err := NewDynamic(g, DynamicOptions{
		Seed: 3, Undirected: true, RecordPaths: true, TargetGroups: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dynSys.Close()
	if _, err := dynSys.Ingest(delta); err != nil {
		t.Fatal(err)
	}
	if _, err := dynSys.Compact(); err != nil {
		t.Fatal(err)
	}

	union, err := BuildGraph(append(append([]Edge{}, base...), delta...), true)
	if err != nil {
		t.Fatal(err)
	}
	static, err := New(union, Options{Seed: 3, RecordPaths: true, TargetGroups: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer static.Close()

	snap, err := dynSys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if !snap.Compacted() {
		t.Fatal("post-compaction snapshot still carries an overlay")
	}
	resDyn, err := snap.WalkSeeded(41, 800, 8)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := static.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	resStatic, err := sess.WalkSeeded(41, 800, 8)
	if err != nil {
		t.Fatal(err)
	}

	pd, err := resDyn.Paths()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := resStatic.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(pd) != len(ps) {
		t.Fatalf("path counts differ: %d vs %d", len(pd), len(ps))
	}
	for w := range pd {
		if len(pd[w]) != len(ps[w]) {
			t.Fatalf("walker %d path lengths differ", w)
		}
		for i := range pd[w] {
			if pd[w][i] != ps[w][i] {
				t.Fatalf("walker %d step %d: dynamic %d vs static %d",
					w, i, pd[w][i], ps[w][i])
			}
		}
	}
}

// TestDynamicFreezeThenWalk exercises the overlay epoch through the
// facade: frozen edges are walkable, paths are valid walks over the
// union, and Stats reports the lifecycle.
func TestDynamicFreezeThenWalk(t *testing.T) {
	g := smallGraph(t)
	d, err := NewDynamic(g, DynamicOptions{
		Seed: 5, Undirected: true, RecordPaths: true, TargetGroups: 8, Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	n := g.NumVertices()
	pairs := make([][2]VID, 50)
	for i := range pairs {
		pairs[i] = [2]VID{VID(i) % n, (VID(i)*13 + 7) % n}
	}
	if _, err := d.IngestPairs(pairs); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Freeze(); err != nil {
		t.Fatal(err)
	}

	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if snap.Compacted() {
		t.Fatal("overlay snapshot claims to be compacted")
	}
	res, err := snap.WalkSeeded(9, 500, 6)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := res.Paths()
	if err != nil {
		t.Fatal(err)
	}
	deltaEdge := func(a, b VID) bool {
		for _, p := range pairs {
			if (p[0] == a && p[1] == b) || (p[0] == b && p[1] == a) {
				return true
			}
		}
		return false
	}
	for _, p := range paths[:100] {
		for i := 0; i+1 < len(p); i++ {
			if p[i] == p[i+1] && g.Degree(p[i]) == 0 {
				continue
			}
			if !g.HasEdge(p[i], p[i+1]) && !deltaEdge(p[i], p[i+1]) {
				t.Fatalf("transition %d→%d is neither a base nor a delta edge", p[i], p[i+1])
			}
		}
	}
	st := d.Stats()
	if st.Epoch != 2 || st.Freezes != 1 || st.DeltaEdges == 0 {
		t.Fatalf("stats after freeze: %+v", st)
	}
	if d.MetricsReport() == nil {
		t.Fatal("MetricsReport nil with Metrics enabled")
	}
}
