package flashmob

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestConcurrentWalksOnOneSystem is the public concurrency stress test:
// many goroutines Walk one System (run under -race in CI), and every
// concurrent result must be bitwise-identical to the serial run with the
// same parameters.
func TestConcurrentWalksOnOneSystem(t *testing.T) {
	g := smallGraph(t)
	sys, err := New(g, Options{Seed: 7, RecordPaths: true, TargetGroups: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	serial, err := sys.Walk(1000, 6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Paths()
	if err != nil {
		t.Fatal(err)
	}

	const walks = 6
	results := make([]*Result, walks)
	errs := make([]error, walks)
	var wg sync.WaitGroup
	for i := 0; i < walks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sys.Walk(1000, 6)
		}(i)
	}
	wg.Wait()

	for i := 0; i < walks; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent walk %d: %v", i, errs[i])
		}
		got, err := results[i].Paths()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("walk %d: %d paths, want %d", i, len(got), len(want))
		}
		for j := range want {
			for k := range want[j] {
				if got[j][k] != want[j][k] {
					t.Fatalf("walk %d diverged from serial at path %d step %d", i, j, k)
				}
			}
		}
	}
}

// TestWalkAfterClose locks the closed-System contract: Walk and
// NewSession return ErrClosed instead of hanging on released workers.
func TestWalkAfterClose(t *testing.T) {
	g := smallGraph(t)
	sys, err := New(g, Options{Seed: 3, TargetGroups: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Walk(100, 2); err != nil {
		t.Fatal(err)
	}
	sys.Close()
	sys.Close() // idempotent

	if _, err := sys.Walk(100, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Walk after Close: got %v, want ErrClosed", err)
	}
	if _, err := sys.NewSession(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewSession after Close: got %v, want ErrClosed", err)
	}
}

// TestSessionLifecycle exercises the explicit session handle: repeated
// Walks on one session, context cancellation, and idempotent Close.
func TestSessionLifecycle(t *testing.T) {
	g := smallGraph(t)
	sys, err := New(g, Options{Seed: 5, TargetGroups: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	s, err := sys.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		r, err := s.Walk(500, 3)
		if err != nil {
			t.Fatal(err)
		}
		if r.Walkers() != 500 {
			t.Fatalf("session walk advanced %d walkers, want 500", r.Walkers())
		}
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Walk(500, 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("Walk on closed session: got %v, want ErrClosed", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cs, err := sys.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	cancel()
	if _, err := cs.Walk(500, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("Walk on canceled session: got %v, want context.Canceled", err)
	}
}

// TestConcurrentWalkReportsArePerRun checks the public Report semantics
// under concurrency: each Walk's report describes that walk alone.
func TestConcurrentWalkReportsArePerRun(t *testing.T) {
	g := smallGraph(t)
	sys, err := New(g, Options{Seed: 9, TargetGroups: 16, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	const walks = 4
	results := make([]*Result, walks)
	errs := make([]error, walks)
	var wg sync.WaitGroup
	for i := 0; i < walks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sys.Walk(300, 4)
		}(i)
	}
	wg.Wait()
	for i := 0; i < walks; i++ {
		if errs[i] != nil {
			t.Fatalf("walk %d: %v", i, errs[i])
		}
		rep := results[i].Report()
		if rep == nil {
			t.Fatalf("walk %d: nil report on a metrics-enabled System", i)
		}
		for _, c := range rep.Counters {
			switch c.Name {
			case "core_runs_total":
				if c.Value != 1 {
					t.Fatalf("walk %d: core_runs_total = %d, want 1", i, c.Value)
				}
			case "core_walkers_total":
				if c.Value != 300 {
					t.Fatalf("walk %d: core_walkers_total = %d, want 300", i, c.Value)
				}
			}
		}
	}
}
