module flashmob

go 1.22
