// Package flashmob is a cache-efficient graph random-walk engine, a
// from-scratch Go reproduction of "Random Walks on Huge Graphs at Cache
// Efficiency" (Yang, Ma, Thirumuruganathan, Chen, Wu — SOSP 2021).
//
// Random walks look like the canonical random-access workload, but
// FlashMob shows they hide substantial locality: sort vertices by degree,
// cut them into cache-sized partitions, process all walkers on one
// partition at a time, and shuffle walkers between steps. Popular
// (high-degree) partitions additionally pre-sample batches of edges so
// co-located walkers consume full cache lines. Partition sizes and
// per-partition policies are chosen optimally by reducing the decision to
// a Multiple-Choice Knapsack Problem solved with dynamic programming.
//
// Quick start:
//
//	g, _ := flashmob.Generate("YT", 100, 42)       // synthetic YouTube-shaped graph
//	sys, _ := flashmob.New(g, flashmob.Options{
//		Algorithm:   flashmob.DeepWalk(),
//		RecordPaths: true,
//	})
//	res, _ := sys.Walk(0, 0)                       // |V| walkers × 80 steps
//	fmt.Printf("%.1f ns/step\n", res.PerStepNS())
//	paths := res.Paths()                           // original vertex IDs
//
// The deeper machinery is exposed through the internal packages for the
// benchmark harness: internal/core (engine), internal/part (MCKP
// planner), internal/mem + internal/sim (cache-hierarchy simulation),
// internal/baseline (KnightKing/GraphVite-style comparison engines).
package flashmob

import (
	"context"
	"fmt"
	"io"
	"os"

	"flashmob/internal/algo"
	"flashmob/internal/core"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/part"
	"flashmob/internal/profile"
)

// ErrClosed is returned by Walk and NewSession after Close has released
// the System's worker pool. Test with errors.Is.
var ErrClosed = core.ErrClosed

// VID is a vertex identifier.
type VID = graph.VID

// Graph is the CSR adjacency structure all engines consume.
type Graph = graph.CSR

// Algorithm describes the random-walk process to run.
type Algorithm = algo.Spec

// DeepWalk returns the first-order uniform walk (80 steps).
func DeepWalk() Algorithm { return algo.DeepWalk() }

// Node2Vec returns the second-order biased walk with return parameter p
// and in-out parameter q (40 steps).
func Node2Vec(p, q float64) Algorithm { return algo.Node2Vec(p, q) }

// PageRankWalk returns a first-order walk with restart probability
// 1-damping, the Monte-Carlo PageRank estimator.
func PageRankWalk(damping float64) Algorithm { return algo.PageRankWalk(damping) }

// Planner selects the partitioning strategy.
type Planner = core.PlannerKind

// Planner choices.
const (
	PlannerMCKP      = core.PlannerMCKP
	PlannerUniformPS = core.PlannerUniformPS
	PlannerUniformDS = core.PlannerUniformDS
	PlannerManual    = core.PlannerManual
)

// Options configures a System.
type Options struct {
	// Algorithm is the walk to run (default DeepWalk).
	Algorithm Algorithm
	// Workers is the thread count (default GOMAXPROCS).
	Workers int
	// Seed makes runs reproducible.
	Seed uint64
	// Planner selects the partitioning strategy (default MCKP).
	Planner Planner
	// TargetGroups and MaxBins are the paper's G and P hyper-parameters
	// (defaults 128 and 2048).
	TargetGroups, MaxBins int
	// PlanWalkers is the walker count the partition planner should price
	// for (default |V|). The MCKP plan picks pre-sampling exactly where
	// walker density amortizes buffer refills; a serving system that runs
	// small batches should set this to its typical batch size so sparse
	// runs direct-sample instead of paying degree-sized refills per hub
	// visit. Planning only — any walker count still runs correctly.
	PlanWalkers uint64
	// MemoryBudget caps walker-array bytes per episode (0 = unlimited).
	MemoryBudget uint64
	// RecordPaths keeps full walk histories so Paths() works.
	RecordPaths bool
	// EdgeUniformInit places walkers proportionally to degree instead of
	// one per vertex.
	EdgeUniformInit bool
	// CostModel overrides the partition-cost model (default: analytical
	// model of the paper's Xeon Gold 6126 cache geometry). Use a measured
	// profile.Table for host-tuned planning.
	CostModel profile.CostModel
	// EdgeStream, when non-nil, receives each step's sampled edges in
	// walker order (cur[j] → next[j]): the streaming output mode for
	// feeding downstream consumers (e.g. embedding training) without
	// retaining history. Vertex IDs are in the internal degree-sorted
	// numbering; slices are reused and must be copied if kept.
	EdgeStream func(step int, cur, next []VID)
	// Metrics enables the observability layer: per-stage and
	// per-partition counters and latency histograms, pool busy/barrier
	// accounting, and runtime/pprof stage labels on worker goroutines.
	// Each Walk's Result then carries a Report snapshot. Off by default;
	// docs/OBSERVABILITY.md documents every metric and the measured
	// overhead.
	Metrics bool
}

// System is a ready-to-walk FlashMob instance: the graph has been
// degree-sorted, partitioned, and assigned sampling policies. The System
// itself is the immutable build — graph, plan, kernels, worker pool; all
// per-run state lives in sessions, so Walk is safe to call from any
// number of goroutines, and concurrent Walks produce the same
// trajectories the same calls produce serially.
type System struct {
	engine  *core.Engine
	reorder *graph.Reordering
}

// New prepares a System for g. The input graph is not modified: New
// creates a degree-sorted internal copy (the pre-processing step the paper
// measures at O(|V|) via counting sort) and plans partitions on it.
func New(g *Graph, opt Options) (*System, error) {
	if g == nil {
		return nil, fmt.Errorf("flashmob: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	if opt.Algorithm.Order == 0 {
		opt.Algorithm = DeepWalk()
	}
	reorder := graph.SortByDegreeDesc(g)
	cfg := core.Config{
		Workers:       opt.Workers,
		Seed:          opt.Seed,
		Planner:       opt.Planner,
		Model:         opt.CostModel,
		MemoryBudget:  opt.MemoryBudget,
		RecordHistory: opt.RecordPaths,
		Part: part.Config{
			TargetGroups: opt.TargetGroups,
			MaxBins:      opt.MaxBins,
			Walkers:      opt.PlanWalkers,
		},
	}
	if opt.EdgeUniformInit {
		cfg.Init = core.InitEdgeUniform
	}
	cfg.Metrics = opt.Metrics
	cfg.StepSink = opt.EdgeStream
	engine, err := core.New(reorder.Graph, opt.Algorithm, cfg)
	if err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	return &System{engine: engine, reorder: reorder}, nil
}

// Close releases the system's persistent worker pool, first waiting for
// in-flight Walks and open Sessions to finish. Idempotent; Walk and
// NewSession return ErrClosed afterwards. Optional — an unreachable
// System is reclaimed by a finalizer — but deterministic.
func (s *System) Close() { s.engine.Close() }

// Walk advances walkers (0 = |V|) for steps steps (0 = the algorithm's
// default) and returns the result. Safe for concurrent callers: each call
// acquires its own session, and concurrent calls interleave their
// pipeline phases on the shared worker pool while producing
// bitwise-identical trajectories to the same calls run serially. Returns
// ErrClosed after Close.
func (s *System) Walk(walkers uint64, steps int) (*Result, error) {
	res, err := s.engine.Run(walkers, steps)
	if err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	return &Result{inner: res, reorder: s.reorder}, nil
}

// Session is an explicit run handle on a System: a reserved set of
// per-run buffers plus, when Options.Metrics is set, a private metrics
// registry, so each Result.Report from this session covers exactly the
// session's own Walks. Use it to cancel long walks via context, or to
// amortize session setup across many Walks from one goroutine. A Session
// is not itself concurrency-safe — one Walk at a time per session;
// concurrency comes from multiple sessions (or concurrent System.Walk
// calls, which manage sessions implicitly).
type Session struct {
	inner   *core.Session
	reorder *graph.Reordering
}

// NewSession acquires a run handle. A nil ctx means context.Background();
// a canceled ctx makes the session's Walks abort between pipeline steps
// with the context's error. Close the session to release its buffers back
// to the System (a System.Close blocks until every open session closes).
// Returns ErrClosed after System.Close.
func (s *System) NewSession(ctx context.Context) (*Session, error) {
	inner, err := s.engine.NewSession(ctx)
	if err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	return &Session{inner: inner, reorder: s.reorder}, nil
}

// Walk advances walkers (0 = |V|) for steps steps (0 = the algorithm's
// default) on this session.
func (s *Session) Walk(walkers uint64, steps int) (*Result, error) {
	res, err := s.inner.Run(walkers, steps)
	if err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	return &Result{inner: res, reorder: s.reorder}, nil
}

// WalkSeeded is Walk with a per-run seed overriding Options.Seed: walker
// placement and every edge draw derive from the given seed, so on a
// freshly acquired session the trajectories are a pure function of
// (System build, seed, walkers, steps) — reproducible no matter what
// other runs execute before, after, or concurrently on other sessions.
// This is the hook internal/serve uses to answer seeded walk queries
// identically whether they ride a batch alone or coalesced with others.
// Runs after the first on the same session inherit the PS buffer state
// earlier runs left behind; acquire a fresh session per run when
// reproducibility matters.
func (s *Session) WalkSeeded(seed uint64, walkers uint64, steps int) (*Result, error) {
	res, err := s.inner.RunSeeded(seed, walkers, steps)
	if err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	return &Result{inner: res, reorder: s.reorder}, nil
}

// Close releases the session's buffers back to the System and folds its
// metrics into the System-lifetime aggregate. Idempotent.
func (s *Session) Close() { s.inner.Close() }

// MetricsReport snapshots the System-lifetime metrics aggregate: the fold
// of every session closed since the System was built (an open session's
// counts arrive when it closes). Nil unless the System was created with
// Options.Metrics. Individual runs' snapshots are Result.Report; this is
// the view GET /metrics on an fmserve server exposes per engine.
func (s *System) MetricsReport() *Report { return s.engine.MetricsReport() }

// PlanSummary describes the partitioning decision in effect.
type PlanSummary struct {
	// NumVPs is the total vertex-partition count.
	NumVPs int
	// NumGroups is the MCKP class count.
	NumGroups int
	// Bins is the outer-shuffle bin count (the MCKP weight).
	Bins int
	// PSVertices and DSVertices count vertices under each policy.
	PSVertices, DSVertices uint32
}

// Plan returns a summary of the active partitioning.
func (s *System) Plan() PlanSummary {
	p := s.engine.Plan()
	sum := PlanSummary{
		NumVPs:    p.NumVPs(),
		NumGroups: len(p.Groups),
		Bins:      p.Weight(),
	}
	for _, vp := range p.VPs {
		if vp.Policy == profile.PS {
			sum.PSVertices += vp.Vertices()
		} else {
			sum.DSVertices += vp.Vertices()
		}
	}
	return sum
}

// Generate builds a synthetic stand-in for one of the paper's datasets
// ("YT", "TW", "FS", "UK", "YH"), downscaled by scaleDiv (1 = full size —
// beware memory). The degree distribution matches the paper's Table 2
// shape at the generated size.
func Generate(preset string, scaleDiv uint32, seed uint64) (*Graph, error) {
	p, err := gen.PresetByName(preset)
	if err != nil {
		return nil, err
	}
	return p.Generate(scaleDiv, seed)
}

// BuildGraph assembles a CSR from an edge list. Set undirected to insert
// reverse edges (the convention for the paper's social graphs).
func BuildGraph(edges []graph.Edge, undirected bool) (*Graph, error) {
	res, err := graph.Build(edges, graph.BuildOptions{
		Undirected:      undirected,
		RemoveSelfLoops: true,
		Dedup:           true,
	})
	if err != nil {
		return nil, err
	}
	return res.Graph, nil
}

// Edge is one input edge for BuildGraph.
type Edge = graph.Edge

// LoadEdgeList reads a SNAP-style text edge list and builds a graph.
func LoadEdgeList(r io.Reader, undirected bool) (*Graph, error) {
	edges, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return BuildGraph(edges, undirected)
}

// LoadFile loads a graph from a file: binary CSR (written by SaveFile) or
// text edge list, chosen by probing the binary magic.
func LoadFile(path string, undirected bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if g, err := graph.ReadBinary(f); err == nil {
		return g, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return LoadEdgeList(f, undirected)
}

// SaveFile writes g in the binary CSR format.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return graph.WriteBinary(f, g)
}

// PlanJSON serializes the active partition plan (internal degree-sorted
// vertex numbering) for inspection or caching.
func (s *System) PlanJSON(w io.Writer) error {
	return s.engine.Plan().WriteJSON(w)
}

// PlanDescription returns a human-readable layout summary (the paper's
// Figure 10a view).
func (s *System) PlanDescription() string {
	return s.engine.Plan().Summary()
}

// SelfAvoiding returns an order-(window+1) walk that suppresses
// revisiting vertices seen within the last `window` steps — an example of
// the engine's general order-k transition support (see algo.HigherOrder
// for fully custom history-dependent walks).
func SelfAvoiding(window, steps int, eps float64) Algorithm {
	return algo.SelfAvoiding(window, steps, eps)
}
