package flashmob

import (
	"context"
	"net"
	"testing"
	"time"
)

// TestShardedMatchesSystem pins the public sharded surface: both
// topologies produce the exact paths System.WalkMixed produces, in
// original vertex IDs.
func TestShardedMatchesSystem(t *testing.T) {
	g, err := Generate("YT", 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Algorithm: Node2Vec(0.5, 2), RecordPaths: true, Seed: 3, Workers: 2}
	sys, err := New(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cohorts := []CohortSpec{
		{Algorithm: DeepWalk(), Walkers: 400, Steps: 6, Seed: 51},
		{Algorithm: Node2Vec(0.5, 2), Walkers: 200, Steps: 4, Seed: 52},
	}
	ref, err := sys.WalkMixed(cohorts)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, res *MixedResult) {
		t.Helper()
		for k := range cohorts {
			want, err := ref.Paths(k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := res.Paths(k)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				for i := range want[j] {
					if want[j][i] != got[j][i] {
						t.Fatalf("%s: cohort %d walker %d step %d: %d != %d",
							name, k, j, i, got[j][i], want[j][i])
					}
				}
			}
		}
	}

	ss, err := NewSharded(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ss.NumShards() != 2 {
		t.Fatalf("NumShards = %d", ss.NumShards())
	}
	res, err := ss.WalkMixed(context.Background(), cohorts)
	if err != nil {
		t.Fatal(err)
	}
	check("in-process", res)
	if rep := ss.MetricsReport(); rep == nil {
		t.Fatal("no metrics report")
	}

	// Multi-process: two workers as goroutines on loopback.
	addrs := []string{"127.0.0.1:17841", "127.0.0.1:17842"}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerErr := make(chan error, 2)
	for i := range addrs {
		go func(i int) { workerErr <- ServeShardWorker(ctx, g, opt, i, addrs) }(i)
	}
	for _, a := range addrs { // wait for the workers to bind
		for i := 0; ; i++ {
			c, err := net.Dial("tcp", a)
			if err == nil {
				c.Close()
				break
			}
			if i > 200 {
				t.Fatalf("worker at %s never came up: %v", a, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	rem, err := NewShardedRemote(sys, addrs)
	if err != nil {
		t.Fatal(err)
	}
	res, err = rem.WalkMixed(context.Background(), cohorts)
	if err != nil {
		t.Fatal(err)
	}
	check("remote", res)
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-workerErr:
			if err != context.Canceled {
				t.Fatalf("worker exit: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("worker did not drain")
		}
	}
}
