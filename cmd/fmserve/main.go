// Command fmserve serves walk queries over HTTP: it builds one FlashMob
// system shared by every requested algorithm (so a wave of mixed
// algorithms executes as a single mixed-cohort engine run) and exposes
// the batched, load-shedding walk service of internal/serve
// (POST /v1/walk, GET /v1/plan, GET /healthz, GET /metrics — see
// docs/SERVING.md).
//
// Usage:
//
//	fmserve -preset YT -scalediv 100 -algos deepwalk -addr :8080
//	fmserve -graph yt.bin -algos deepwalk,node2vec -p 0.5 -q 2 -window 4ms
//	fmserve -preset YT -dynamic -compact-every 4       # POST /v1/ingest appends edges
//	fmserve -preset YT -shards 2                       # in-process sharded waves
//	fmserve -preset YT -shard-worker -shard-index 0 \
//	        -shard-addrs 127.0.0.1:9101,127.0.0.1:9102 # one worker of a TCP pair
//	fmserve -preset YT -shard-workers 127.0.0.1:9101,127.0.0.1:9102
//
// Sharded serving (coordinator mode, docs/SERVING.md): -shards runs each
// wave on an in-process sharded topology; -shard-workers coordinates
// external fmserve -shard-worker processes over TCP. Responses are
// bitwise-identical to unsharded serving either way.
//
// With -addr :0 the kernel picks a free port; the chosen address is
// printed as "fmserve: listening on ADDR" so scripts (the CI smoke leg,
// fmbench) can parse it. SIGINT/SIGTERM shut down gracefully: the
// listener stops accepting, in-flight batches drain, then the systems
// close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"flashmob"
	"flashmob/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		graphPath  = flag.String("graph", "", "graph file (binary CSR or text edge list)")
		undirected = flag.Bool("undirected", false, "treat edge-list input as undirected")
		preset     = flag.String("preset", "", "generate a paper-preset graph instead (YT/TW/FS/UK/YH)")
		scaleDiv   = flag.Uint("scalediv", 100, "preset downscale divisor")
		algos      = flag.String("algos", "deepwalk", "comma-separated walks to serve: deepwalk, node2vec, pagerank (first = default)")
		p          = flag.Float64("p", 1, "node2vec return parameter")
		q          = flag.Float64("q", 1, "node2vec in-out parameter")
		damping    = flag.Float64("damping", 0.85, "pagerank damping")
		seed       = flag.Uint64("seed", 42, "random seed (builds and per-batch sampling seeds)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker threads per system")
		metrics    = flag.Bool("metrics", true, "enable engine metrics (reported under /metrics)")
		planFor    = flag.Uint64("plan-walkers", 0, "walker count the partition planner prices for (0 = |V|, the bulk-throughput default; set to the typical wave size for serving workloads)")

		window      = flag.Duration("window", 2*time.Millisecond, "micro-batching window")
		maxWalkers  = flag.Int("max-batch-walkers", 8192, "walker budget per batch (and per-request cap)")
		maxRequests = flag.Int("max-batch-requests", 0, "request cap per batch (0 = unlimited, 1 = no coalescing)")
		queueDepth  = flag.Int("queue-depth", 256, "admission queue bound per algorithm")
		executors   = flag.Int("executors", 2, "concurrent batch executions per algorithm")
		timeout     = flag.Duration("timeout", 2*time.Second, "default request deadline")
		splitRuns   = flag.Bool("split-cohort-runs", false, "one engine run per (algorithm, steps) cohort instead of one mixed run per wave (benchmark baseline)")

		dynamic        = flag.Bool("dynamic", false, "serve a dynamic graph: POST /v1/ingest appends edges, walks run on epoch snapshots (first-order algorithms only)")
		compactEvery   = flag.Int("compact-every", 4, "dynamic mode: background-compact after this many freezes (0 = explicit only)")
		driftThreshold = flag.Float64("drift-threshold", 0, "dynamic mode: relative drift before a vertex group's partition decision is re-solved at compaction (0 = always, the deterministic default)")

		shards       = flag.Int("shards", 0, "run waves on an in-process sharded topology with this many shards (0 = unsharded)")
		shardWorkers = flag.String("shard-workers", "", "comma-separated shard-worker addresses: serve as the coordinator of a multi-process sharded topology")
		shardWorker  = flag.Bool("shard-worker", false, "run as one shard worker of a multi-process topology instead of serving HTTP (requires -shard-index and -shard-addrs)")
		shardIndex   = flag.Int("shard-index", 0, "this worker's shard index into -shard-addrs")
		shardAddrs   = flag.String("shard-addrs", "", "comma-separated addresses of every shard worker, in shard order")
	)
	flag.Parse()

	if *shardWorker && (*shards > 0 || *shardWorkers != "") {
		fatal(fmt.Errorf("-shard-worker is exclusive with -shards and -shard-workers"))
	}
	if *shards > 0 && *shardWorkers != "" {
		fatal(fmt.Errorf("-shards and -shard-workers are exclusive: pick one topology"))
	}
	if *dynamic && (*shards > 0 || *shardWorkers != "" || *shardWorker) {
		fatal(fmt.Errorf("-dynamic is exclusive with sharded serving"))
	}

	g, err := loadGraph(*graphPath, *preset, uint32(*scaleDiv), *seed, *undirected)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fmserve: graph |V|=%d |E|=%d CSR=%.1fMB\n",
		g.NumVertices(), g.NumEdges(), float64(g.SizeBytes())/(1<<20))

	// Every served walk here is unweighted, so one build carries them
	// all: backends share a single system (the first algorithm is the
	// build primary) and so form one engine group whose waves run as
	// mixed-cohort batches.
	type served struct {
		name string
		spec flashmob.Algorithm
	}
	var walks []served
	for _, name := range strings.Split(*algos, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		var spec flashmob.Algorithm
		switch name {
		case "deepwalk":
			spec = flashmob.DeepWalk()
		case "node2vec":
			spec = flashmob.Node2Vec(*p, *q)
		case "pagerank":
			spec = flashmob.PageRankWalk(*damping)
		default:
			fatal(fmt.Errorf("unknown algorithm %q", name))
		}
		if *dynamic && (spec.Order != 1 || spec.History != nil) {
			// Overlay epochs admit only first-order history-free walks
			// (core.BuildOverlay); reject at startup, not per request.
			fatal(fmt.Errorf("-dynamic cannot serve %q: overlay epochs restrict walks to first-order history-free algorithms", name))
		}
		walks = append(walks, served{name: name, spec: spec})
	}
	if len(walks) == 0 {
		fatal(fmt.Errorf("-algos named no algorithms"))
	}
	opt := flashmob.Options{
		Algorithm:   walks[0].spec,
		Workers:     *workers,
		Seed:        *seed,
		RecordPaths: true,
		Metrics:     *metrics,
		PlanWalkers: *planFor,
	}

	// Shard-worker mode: no HTTP service — the process builds the same
	// system every peer builds, meshes with them, and steps its shard of
	// each coordinator run until SIGINT/SIGTERM drains it.
	if *shardWorker {
		addrs := splitAddrs(*shardAddrs)
		if len(addrs) == 0 {
			fatal(fmt.Errorf("-shard-worker requires -shard-addrs"))
		}
		if *shardIndex < 0 || *shardIndex >= len(addrs) {
			fatal(fmt.Errorf("-shard-index %d out of range for %d -shard-addrs", *shardIndex, len(addrs)))
		}
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		// Parseable by scripts; keep the exact "shard worker " prefix.
		fmt.Printf("fmserve: shard worker %d/%d listening on %s\n", *shardIndex, len(addrs), addrs[*shardIndex])
		if err := flashmob.ServeShardWorker(ctx, g, opt, *shardIndex, addrs); err != nil && !errors.Is(err, context.Canceled) {
			fatal(err)
		}
		fmt.Println("fmserve: shard worker drained, bye")
		return
	}

	// Dynamic mode: the serving system is a DynamicSystem — walks pin
	// epoch snapshots, POST /v1/ingest appends edges, and compactions
	// rebuild the engine in the background. Everything else (batching,
	// admission, mixed-cohort waves) is unchanged.
	if *dynamic {
		d, err := flashmob.NewDynamic(g, flashmob.DynamicOptions{
			Algorithm:      walks[0].spec,
			Workers:        *workers,
			Seed:           *seed,
			Undirected:     true,
			RecordPaths:    true,
			Metrics:        *metrics,
			PlanWalkers:    *planFor,
			CompactEvery:   *compactEvery,
			DriftThreshold: *driftThreshold,
		})
		if err != nil {
			fatal(fmt.Errorf("build: %w", err))
		}
		var backends []serve.Backend
		for _, w := range walks {
			backends = append(backends, serve.Backend{Name: w.name, Dyn: d, Spec: w.spec})
			fmt.Printf("fmserve: serving %s (dynamic, shared build)\n", w.name)
		}
		fmt.Printf("fmserve: dynamic mode (compact every %d freezes, drift threshold %g)\n",
			*compactEvery, *driftThreshold)
		runServer(backends, serveConfig(*maxWalkers, *maxRequests, *window, *queueDepth,
			*executors, *timeout, *seed, *splitRuns), *addr)
		return
	}

	sys, err := flashmob.New(g, opt)
	if err != nil {
		fatal(fmt.Errorf("build: %w", err))
	}

	// Coordinator topologies: waves still admit, batch, and shed exactly
	// as unsharded serving does — only walkMixed's execution target
	// changes, and responses stay bitwise-identical.
	var sharded *flashmob.ShardedSystem
	switch {
	case *shardWorkers != "":
		addrs := splitAddrs(*shardWorkers)
		if err := waitForWorkers(addrs, 15*time.Second); err != nil {
			fatal(err)
		}
		sharded, err = flashmob.NewShardedRemote(sys, addrs)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fmserve: coordinating %d shard workers over TCP (%s)\n", len(addrs), *shardWorkers)
	case *shards > 0:
		sharded, err = flashmob.NewSharded(sys, *shards)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fmserve: sharded x%d (in-process exchange)\n", *shards)
	}

	var backends []serve.Backend
	for _, w := range walks {
		backends = append(backends, serve.Backend{Name: w.name, Sys: sys, Spec: w.spec, Sharded: sharded})
		fmt.Printf("fmserve: serving %s (%d VPs, shared build)\n", w.name, sys.Plan().NumVPs)
	}

	runServer(backends, serveConfig(*maxWalkers, *maxRequests, *window, *queueDepth,
		*executors, *timeout, *seed, *splitRuns), *addr)
}

// serveConfig assembles the serve.Config both serving modes share.
func serveConfig(maxWalkers, maxRequests int, window time.Duration, queueDepth, executors int,
	timeout time.Duration, seed uint64, splitRuns bool) serve.Config {
	return serve.Config{
		MaxBatchWalkers:  maxWalkers,
		MaxBatchRequests: maxRequests,
		MaxWait:          window,
		QueueDepth:       queueDepth,
		Executors:        executors,
		DefaultTimeout:   timeout,
		Seed:             seed,
		SplitCohortRuns:  splitRuns,
	}
}

// runServer builds the Server, listens, and drains on SIGINT/SIGTERM.
func runServer(backends []serve.Backend, cfg serve.Config, addr string) {
	srv, err := serve.New(backends, cfg)
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	// Parseable by scripts; keep the exact "listening on " prefix.
	fmt.Printf("fmserve: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Printf("fmserve: %s, draining\n", sig)
	case err := <-done:
		fatal(err)
	}
	// Stop accepting and let connected requests finish (their batches are
	// still executing), then drain the batching pipeline and close the
	// systems.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	_ = hs.Shutdown(ctx)
	cancel()
	srv.Close()
	fmt.Println("fmserve: drained, bye")
}

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// waitForWorkers polls each shard worker's listener so the coordinator
// can be started alongside (or before) its workers without a races-y
// sleep in the launcher script.
func waitForWorkers(addrs []string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, a := range addrs {
		for {
			c, err := net.DialTimeout("tcp", a, time.Second)
			if err == nil {
				c.Close()
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("shard worker %s not reachable after %v: %w", a, timeout, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nil
}

func loadGraph(path, preset string, scaleDiv uint32, seed uint64, undirected bool) (*flashmob.Graph, error) {
	switch {
	case path != "":
		return flashmob.LoadFile(path, undirected)
	case preset != "":
		return flashmob.Generate(preset, scaleDiv, seed)
	default:
		return nil, fmt.Errorf("one of -graph or -preset is required")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fmserve: %v\n", err)
	os.Exit(1)
}
