// Command doccheck verifies documentation coverage: every package under
// the given directories must have a package doc comment, and — for
// packages passed with the -exported flag semantics below — every exported
// top-level identifier must carry a doc comment.
//
// Usage:
//
//	doccheck [-strict pkgdir]... [pkgdir]...
//
// Plain directories are checked for a package comment only; -strict
// directories (repeatable) additionally require a doc comment on every
// exported const, var, type, func, method, and struct field. The repo's CI
// lint leg runs it as:
//
//	go run ./cmd/doccheck -strict . -strict ./internal/obs ./internal/... ./cmd/...
//
// so the public flashmob surface and the metrics package are held to the
// strict standard and everything else must at least explain itself at the
// package level. Exits non-zero listing every violation.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// strictDirs collects the repeatable -strict flag.
type strictDirs []string

func (s *strictDirs) String() string     { return strings.Join(*s, ",") }
func (s *strictDirs) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var strict strictDirs
	flag.Var(&strict, "strict", "directory whose exported identifiers must all be documented (repeatable)")
	flag.Parse()

	var problems []string
	for _, dir := range strict {
		problems = append(problems, checkDir(dir, true)...)
	}
	for _, dir := range flag.Args() {
		problems = append(problems, checkDir(dir, false)...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses one package directory (expanding a trailing /... into a
// recursive walk) and returns its documentation violations.
func checkDir(dir string, strict bool) []string {
	if rest, ok := strings.CutSuffix(dir, "/..."); ok {
		var out []string
		filepath.WalkDir(rest, func(path string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return err
			}
			if base := d.Name(); strings.HasPrefix(base, ".") || base == "testdata" {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				out = append(out, checkOne(path, strict)...)
			}
			return nil
		})
		return out
	}
	return checkOne(dir, strict)
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// checkOne checks a single package directory.
func checkOne(dir string, strict bool) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", dir, err)}
	}
	var out []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package doc comment", dir, pkg.Name))
		}
		if !strict {
			continue
		}
		for name, f := range pkg.Files {
			out = append(out, checkFile(fset, name, f)...)
		}
	}
	return out
}

// checkFile reports every exported top-level identifier of one file that
// lacks a doc comment.
func checkFile(fset *token.FileSet, name string, f *ast.File) []string {
	var out []string
	complain := func(pos token.Pos, what, ident string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, ident))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				complain(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			checkGenDecl(d, complain)
		}
	}
	return out
}

// receiverExported reports whether a method's receiver type is itself
// exported (methods on unexported types need no doc).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// checkGenDecl walks a const/var/type declaration group. A doc comment on
// the group covers every spec in it; otherwise each exported spec needs
// its own.
func checkGenDecl(d *ast.GenDecl, complain func(token.Pos, string, string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
				complain(s.Pos(), "type", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				for _, field := range st.Fields.List {
					for _, fn := range field.Names {
						if fn.IsExported() && field.Doc == nil && field.Comment == nil {
							complain(field.Pos(), "field", s.Name.Name+"."+fn.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					complain(n.Pos(), kind, n.Name)
				}
			}
		}
	}
}
