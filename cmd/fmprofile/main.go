// Command fmprofile runs the paper's offline profiling (§4.4) on the host
// machine: micro-benchmarks over a grid of (VP size, degree, density,
// policy) measuring per-walker-step sample cost, plus the per-level
// shuffle cost. The result is a JSON cost table that the planner can use
// in place of the built-in analytical model. Profiling is
// machine-dependent but graph-independent — run it once per machine.
//
// Usage:
//
//	fmprofile -o host.profile.json
//	fmprofile -latency            # also print a Table 1-style latency matrix
package main

import (
	"flag"
	"fmt"
	"os"

	"flashmob/internal/core"
	"flashmob/internal/mem"
	"flashmob/internal/profile"
)

func main() {
	var (
		out      = flag.String("o", "", "output JSON path (default stdout)")
		minSteps = flag.Uint64("minsteps", 500_000, "minimum timed walker-steps per grid point")
		label    = flag.String("label", "", "machine label recorded in the table")
		latency  = flag.Bool("latency", false, "also measure and print the Table 1 latency matrix")
		seed     = flag.Uint64("seed", 42, "seed")
	)
	flag.Parse()

	if *latency {
		printLatencyTable(*seed)
	}

	geom := mem.PaperGeometry()
	fmt.Fprintln(os.Stderr, "fmprofile: measuring sample-cost grid (this takes a minute or two)...")
	tab, err := core.MeasureProfile(core.ProfilerConfig{
		MinSteps:     *minSteps,
		Seed:         *seed,
		MachineLabel: *label,
	}, geom)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fmprofile: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fmprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tab.Write(w); err != nil {
		fmt.Fprintf(os.Stderr, "fmprofile: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fmprofile: %d points, shuffle %.2f ns/step\n", len(tab.Points), tab.ShuffleNS)
}

// printLatencyTable reproduces the paper's Table 1 on the host: per-load
// latency for sequential, random, and pointer-chasing access across
// working sets sized for each cache level and DRAM.
func printLatencyTable(seed uint64) {
	geom := mem.PaperGeometry()
	sets := []struct {
		name string
		ws   uint64
	}{
		{"L1C", geom.L1.SizeBytes / 2},
		{"L2C", geom.L2.SizeBytes / 2},
		{"L3C", geom.L3.SizeBytes / 2},
		{"LocalMem", geom.L3.SizeBytes * 16},
	}
	fmt.Printf("%-18s", "Location")
	for _, s := range sets {
		fmt.Printf("%12s", s.name)
	}
	fmt.Println()
	rows := [][]float64{{}, {}, {}}
	for _, s := range sets {
		r := profile.MeasureLatency(s.ws, 1<<20, seed)
		rows[0] = append(rows[0], r.SeqNS)
		rows[1] = append(rows[1], r.RandNS)
		rows[2] = append(rows[2], r.ChaseNS)
	}
	for i, name := range []string{"Sequential read", "Random read", "Pointer-chasing"} {
		fmt.Printf("%-18s", name)
		for _, v := range rows[i] {
			fmt.Printf("%10.2fns", v)
		}
		fmt.Println()
	}
}
