package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds the fmgen and flashmob binaries and drives the
// full command-line workflow: generate a graph, walk it in memory, then
// walk it out of core.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short")
	}
	dir := t.TempDir()
	fmgen := filepath.Join(dir, "fmgen")
	flashmob := filepath.Join(dir, "flashmob")
	for bin, pkg := range map[string]string{fmgen: "flashmob/cmd/fmgen", flashmob: "flashmob/cmd/flashmob"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	graphPath := filepath.Join(dir, "g.bin")
	out, err := exec.Command(fmgen, "-preset", "YT", "-scalediv", "200", "-o", graphPath).CombinedOutput()
	if err != nil {
		t.Fatalf("fmgen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "|V|=") {
		t.Errorf("fmgen output missing summary: %s", out)
	}
	if _, err := os.Stat(graphPath); err != nil {
		t.Fatalf("graph file not written: %v", err)
	}

	out, err = exec.Command(flashmob, "-graph", graphPath, "-steps", "5").CombinedOutput()
	if err != nil {
		t.Fatalf("flashmob: %v\n%s", err, out)
	}
	for _, want := range []string{"plan:", "per-step:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("flashmob output missing %q:\n%s", want, out)
		}
	}

	out, err = exec.Command(flashmob, "-graph", graphPath, "-ooc", "-steps", "5", "-oocbudget", "65536").CombinedOutput()
	if err != nil {
		t.Fatalf("flashmob -ooc: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "streamed") {
		t.Errorf("ooc output missing stream stats:\n%s", out)
	}

	// Output artifacts: corpus, edge stream, plan JSON.
	corpus := filepath.Join(dir, "walks.txt")
	stream := filepath.Join(dir, "edges.bin")
	planJSON := filepath.Join(dir, "plan.json")
	out, err = exec.Command(flashmob, "-graph", graphPath, "-steps", "3", "-walkers", "100",
		"-corpus", corpus, "-edgestream", stream, "-saveplan", planJSON).CombinedOutput()
	if err != nil {
		t.Fatalf("flashmob with outputs: %v\n%s", err, out)
	}
	for _, p := range []string{corpus, stream, planJSON} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("output %s missing or empty (%v)", p, err)
		}
	}
	corpusBytes, err := os.ReadFile(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(corpusBytes), "\n"); lines != 100 {
		t.Errorf("corpus has %d lines, want 100", lines)
	}

	// Error paths exit nonzero.
	if _, err := exec.Command(flashmob, "-graph", filepath.Join(dir, "missing.bin")).CombinedOutput(); err == nil {
		t.Error("missing graph accepted")
	}
	if _, err := exec.Command(flashmob, "-preset", "YT", "-algo", "bogus").CombinedOutput(); err == nil {
		t.Error("bogus algorithm accepted")
	}
}
