// Command flashmob runs a random walk over a graph file (binary CSR or
// text edge list) or a generated preset, printing per-step speed, the
// partition plan summary, and the pipeline time breakdown.
//
// Usage:
//
//	flashmob -graph yt.bin -algo deepwalk -walkers 0 -steps 80
//	flashmob -preset TW -scalediv 500 -algo node2vec -p 0.5 -q 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"flashmob"
	"flashmob/internal/graph"
	"flashmob/internal/ooc"
	"flashmob/internal/trace"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "graph file (binary CSR or text edge list)")
		undirected  = flag.Bool("undirected", false, "treat edge-list input as undirected")
		preset      = flag.String("preset", "", "generate a paper-preset graph instead (YT/TW/FS/UK/YH)")
		scaleDiv    = flag.Uint("scalediv", 100, "preset downscale divisor")
		algoName    = flag.String("algo", "deepwalk", "walk algorithm: deepwalk, node2vec, pagerank")
		p           = flag.Float64("p", 1, "node2vec return parameter")
		q           = flag.Float64("q", 1, "node2vec in-out parameter")
		damping     = flag.Float64("damping", 0.85, "pagerank damping")
		walkers     = flag.Uint64("walkers", 0, "walker count (0 = |V|)")
		steps       = flag.Int("steps", 0, "steps per walker (0 = algorithm default)")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "worker threads")
		seed        = flag.Uint64("seed", 42, "random seed")
		planner     = flag.String("planner", "mckp", "partition planner: mckp, uniform-ps, uniform-ds, manual")
		paths       = flag.Bool("paths", false, "record full paths (memory heavy)")
		oocMode     = flag.Bool("ooc", false, "out-of-core mode: stream the graph from disk (-graph must be a binary CSR; deepwalk only)")
		oocBudget   = flag.Uint64("oocbudget", 64<<20, "DRAM budget for streamed edge blocks in -ooc mode")
		oocDepth    = flag.Int("oocdepth", ooc.DefaultPrefetchDepth, "prefetch ring depth in -ooc mode (1 = no overlap)")
		oocIOW      = flag.Int("oociow", 0, "IO workers issuing block reads ahead in -ooc mode (0 = auto)")
		oocResident = flag.Uint64("oocresident", 0, "DRAM budget for pinning hot partition blocks in -ooc mode (0 = off)")
		corpusOut   = flag.String("corpus", "", "write the walk corpus (one path per line) to this file; implies -paths")
		edgesOut    = flag.String("edgestream", "", "stream sampled edges to this file in binary format during the walk")
		planOut     = flag.String("saveplan", "", "write the partition plan as JSON to this file")
	)
	flag.Parse()

	if *oocMode {
		if *graphPath == "" {
			fatal(fmt.Errorf("-ooc requires -graph pointing at a binary CSR file"))
		}
		if err := runOOC(*graphPath, *oocBudget, *oocResident, *walkers, *steps, *workers, *oocDepth, *oocIOW, *seed); err != nil {
			fatal(err)
		}
		return
	}

	g, err := loadGraph(*graphPath, *preset, uint32(*scaleDiv), *seed, *undirected)
	if err != nil {
		fatal(err)
	}

	var spec flashmob.Algorithm
	switch *algoName {
	case "deepwalk":
		spec = flashmob.DeepWalk()
	case "node2vec":
		spec = flashmob.Node2Vec(*p, *q)
	case "pagerank":
		spec = flashmob.PageRankWalk(*damping)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algoName))
	}

	var plannerKind flashmob.Planner
	switch *planner {
	case "mckp":
		plannerKind = flashmob.PlannerMCKP
	case "uniform-ps":
		plannerKind = flashmob.PlannerUniformPS
	case "uniform-ds":
		plannerKind = flashmob.PlannerUniformDS
	case "manual":
		plannerKind = flashmob.PlannerManual
	default:
		fatal(fmt.Errorf("unknown planner %q", *planner))
	}

	fmt.Printf("graph: |V|=%d |E|=%d CSR=%.1fMB avgDeg=%.2f\n",
		g.NumVertices(), g.NumEdges(), float64(g.SizeBytes())/(1<<20), g.AvgDegree())

	opts := flashmob.Options{
		Algorithm:   spec,
		Workers:     *workers,
		Seed:        *seed,
		Planner:     plannerKind,
		RecordPaths: *paths || *corpusOut != "",
	}
	var streamWriter *trace.EdgeStreamWriter
	var streamFile *os.File
	if *edgesOut != "" {
		f, err := os.Create(*edgesOut)
		if err != nil {
			fatal(err)
		}
		sw, err := trace.NewEdgeStreamWriter(f)
		if err != nil {
			fatal(err)
		}
		streamWriter, streamFile = sw, f
		opts.EdgeStream = sw.Sink
	}

	sys, err := flashmob.New(g, opts)
	if err != nil {
		fatal(err)
	}
	if *planOut != "" {
		f, err := os.Create(*planOut)
		if err != nil {
			fatal(err)
		}
		if err := sys.PlanJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("plan written to %s\n", *planOut)
	}
	plan := sys.Plan()
	fmt.Printf("plan: %d groups, %d VPs, %d shuffle bins, PS covers %d vertices, DS covers %d\n",
		plan.NumGroups, plan.NumVPs, plan.Bins, plan.PSVertices, plan.DSVertices)

	res, err := sys.Walk(*walkers, *steps)
	if err != nil {
		fatal(err)
	}
	tm := res.Timing()
	fmt.Printf("walk: %d walkers × %d steps in %d episode(s)\n",
		res.Walkers(), res.Steps(), res.Episodes())
	fmt.Printf("time: total %v (sample %v, shuffle %v, other %v)\n",
		tm.Total.Round(1e6), tm.Sample.Round(1e6), tm.Shuffle.Round(1e6), tm.Other.Round(1e6))
	fmt.Printf("per-step: %.1f ns\n", res.PerStepNS())

	if streamWriter != nil {
		if err := streamWriter.Close(); err != nil {
			fatal(err)
		}
		if err := streamFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("edge stream: %d edges written to %s\n", streamWriter.Edges(), *edgesOut)
	}
	if *corpusOut != "" {
		walkedPaths, err := res.Paths()
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*corpusOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteCorpusPaths(f, walkedPaths); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("corpus: %d paths written to %s\n", len(walkedPaths), *corpusOut)
	}
}

func loadGraph(path, preset string, scaleDiv uint32, seed uint64, undirected bool) (*flashmob.Graph, error) {
	switch {
	case path != "":
		return flashmob.LoadFile(path, undirected)
	case preset != "":
		return flashmob.Generate(preset, scaleDiv, seed)
	default:
		return nil, fmt.Errorf("one of -graph or -preset is required")
	}
}

// runOOC walks a disk-resident binary CSR with the out-of-core engine.
func runOOC(path string, budget, residentBudget uint64, walkers uint64, steps, workers, depth, ioWorkers int, seed uint64) error {
	gf, err := graph.OpenFile(path)
	if err != nil {
		return err
	}
	defer gf.Close()
	fmt.Printf("graph (on disk): |V|=%d |E|=%d\n", gf.NumVertices(), gf.NumEdges())
	before := runtime.NumGoroutine()
	e, err := ooc.New(gf, ooc.Config{
		BlockBudget: budget, Seed: seed, Workers: workers,
		PrefetchDepth: depth, IOWorkers: ioWorkers, ResidentBudget: residentBudget,
	})
	if err != nil {
		return err
	}
	fmt.Printf("plan: %d streaming partitions, block budget %.1fMB, prefetch depth %d\n",
		e.Plan().NumVPs(), float64(budget)/(1<<20), depth)
	if e.ResidentPartitions() > 0 {
		fmt.Printf("resident tier: %d partitions pinned, %.1fMB\n",
			e.ResidentPartitions(), float64(e.ResidentBytes())/(1<<20))
	}
	if steps == 0 {
		steps = 80
	}
	res, err := e.Run(context.Background(), walkers, steps)
	if err != nil {
		e.Close()
		return err
	}
	e.Close()
	fmt.Printf("walk: %d walkers × %d steps in %v\n", res.Walkers, res.Steps, res.Duration.Round(1e6))
	fmt.Printf("per-step: %.1f ns; %d blocks, streamed %.1fMB at %.0fMB/s (io-wait %v); resident hits %d\n",
		res.PerStepNS(), res.Blocks, float64(res.BytesRead)/(1<<20),
		res.StreamBandwidth()/(1<<20), res.IOWait.Round(1e6), res.ResidentHits)
	// Let the closed pool's goroutines unwind so the leak count is honest.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("goroutines leaked: %d\n", max(0, runtime.NumGoroutine()-before))
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flashmob: %v\n", err)
	os.Exit(1)
}
