package main

import (
	"encoding/json"
	"os"
	"sync"

	"flashmob/internal/obs"
)

// metricsCollector gathers metric reports from every engine the harness
// builds while the -metrics flag is set. Engines register a snapshot
// closure at construction time (flashMobEngine, oocEngine); the snapshots
// are taken when the file is written, so each report covers everything the
// engine did. A nil collector (no -metrics flag) disables registration.
type metricsCollector struct {
	mu      sync.Mutex
	exp     string // experiment currently running
	entries []metricsEntry
}

// metricsEntry pairs one engine's snapshot closure with the experiment
// that created it.
type metricsEntry struct {
	exp  string
	snap func() *obs.Report
}

// collector is the process-wide sink, non-nil only when -metrics is set.
var collector *metricsCollector

// setExperiment records which experiment subsequent engines belong to.
func (c *metricsCollector) setExperiment(name string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.exp = name
	c.mu.Unlock()
}

// register adds one engine's report closure under the current experiment.
func (c *metricsCollector) register(snap func() *obs.Report) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = append(c.entries, metricsEntry{exp: c.exp, snap: snap})
	c.mu.Unlock()
}

// reportFile is the JSON document -metrics writes: one report per engine
// built during the run, tagged with its experiment, in construction order.
type reportFile struct {
	SchemaVersion int            `json:"schema_version"`
	Reports       []taggedReport `json:"reports"`
}

// taggedReport is one engine's report plus the experiment that ran it.
type taggedReport struct {
	Experiment string      `json:"experiment"`
	Report     *obs.Report `json:"report"`
}

// writeFile snapshots every registered engine and writes the combined
// JSON document to path.
func (c *metricsCollector) writeFile(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := reportFile{SchemaVersion: obs.ReportSchemaVersion}
	for _, e := range c.entries {
		r := e.snap()
		if r == nil {
			continue
		}
		out.Reports = append(out.Reports, taggedReport{Experiment: e.exp, Report: r})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
