package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"flashmob/internal/algo"
	"flashmob/internal/core"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/mem"
	"flashmob/internal/part"
	"flashmob/internal/perfgate"
	"flashmob/internal/profile"
)

// benchOutDir is where experiments write their BENCH_*.json artifacts
// (the -outdir flag; "." when fmbench runs directly from the repo root,
// a scratch directory when cmd/fmgrid drives it).
var benchOutDir = "."

// writeBenchJSON stamps the provenance header every benchmark artifact
// carries — schema_version, git SHA, generation time, host fingerprint
// (see internal/perfgate and docs/BENCHMARKING.md) — onto one
// experiment's report and writes it, indented, into the configured
// output directory.
func writeBenchJSON(w io.Writer, name string, rep any) error {
	raw, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return err
	}
	meta := perfgate.NewMeta()
	doc["schema_version"] = meta.SchemaVersion
	doc["git_sha"] = meta.GitSHA
	doc["generated_unix"] = meta.GeneratedUnix
	doc["host"] = meta.Host

	path := filepath.Join(benchOutDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s\n", path)
	return nil
}

// presetNames lists the paper's datasets in Table 4 order.
var presetNames = []string{"YT", "TW", "FS", "UK", "YH"}

// presetGraph generates the scaled, degree-sorted stand-in for a preset.
// Generated graphs are already degree-sorted (VID 0 = max degree).
func presetGraph(name string, cfg benchConfig) (*graph.CSR, error) {
	return presetGraphSized(name, cfg, 0)
}

// presetGraphSized generates a preset stand-in with at least minBytes of
// CSR footprint (and at least cfg.TargetV vertices). Wall-clock
// experiments that contrast cache-resident toys with "huge" graphs pass
// cfg.MinCSR so the stand-ins stay DRAM-resident on the host.
func presetGraphSized(name string, cfg benchConfig, minBytes uint64) (*graph.CSR, error) {
	p, err := gen.PresetByName(name)
	if err != nil {
		return nil, err
	}
	v := cfg.TargetV
	if minBytes > 0 {
		perVertex := 8 + 4*p.AvgDegree
		if need := uint32(float64(minBytes) / perVertex); need > v {
			v = need
		}
	}
	if v > p.FullVertices {
		v = p.FullVertices
	}
	div := p.FullVertices / v
	if div == 0 {
		div = 1
	}
	return p.Generate(div, cfg.Seed)
}

// simModel returns the analytical cost model matched to the scaled
// simulation geometry, so MCKP plans fit the simulated caches.
func simModel(cfg benchConfig) (mem.Geometry, profile.CostModel) {
	geom := mem.ScaledGeometry(cfg.GeomScale)
	return geom, profile.NewAnalyticalModel(geom)
}

// simModelFor prices partitions for an arbitrary geometry.
func simModelFor(geom mem.Geometry) profile.CostModel {
	return profile.NewAnalyticalModel(geom)
}

// hostModel returns the analytical model on the full paper geometry, used
// for real wall-clock runs.
func hostModel() profile.CostModel {
	return profile.NewAnalyticalModel(mem.PaperGeometry())
}

// flashMobEngine builds a default MCKP-planned engine for wall-clock runs.
func flashMobEngine(g *graph.CSR, spec algo.Spec, cfg benchConfig, extra func(*core.Config)) (*core.Engine, error) {
	ecfg := core.Config{
		Workers: cfg.Workers,
		Seed:    cfg.Seed,
		Model:   hostModel(),
	}
	if extra != nil {
		extra(&ecfg)
	}
	if collector != nil {
		ecfg.Metrics = true
	}
	e, err := core.New(g, spec, ecfg)
	if err != nil {
		return nil, err
	}
	collector.register(e.MetricsReport)
	return e, nil
}

// planFor builds the MCKP plan for a graph under the scaled simulation
// geometry.
func planFor(g *graph.CSR, walkers uint64, model profile.CostModel) (*part.Plan, error) {
	return part.PlanMCKP(g, part.Config{Walkers: walkers, Model: model})
}

// row prints a fixed-width table row; long cells widen their column
// rather than colliding with the next one.
func row(w io.Writer, label string, cells ...string) {
	fmt.Fprintf(w, "%-26s", label)
	for _, c := range cells {
		fmt.Fprintf(w, "%18s", c)
	}
	fmt.Fprintln(w)
}

func ns(v float64) string   { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string  { return fmt.Sprintf("%.1f%%", 100*v) }
func mb(v uint64) string    { return fmt.Sprintf("%.1fMB", float64(v)/(1<<20)) }
func cnt(v float64) string  { return fmt.Sprintf("%.2f", v) }
func big(v uint64) string   { return fmt.Sprintf("%d", v) }
func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func degS(v float64) string { return fmt.Sprintf("%.1f", v) }

// deepWalk is a shorthand for tests and experiments.
func deepWalk() algo.Spec { return algo.DeepWalk() }

// meanStd returns the arithmetic mean and population standard deviation
// of xs (both 0 for an empty slice) — what repeated measurements record
// in their BENCH_*.json output.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}
