package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestEveryExperimentDocumented enforces the benchmarking book's
// contract on the experiment index: every -exp name fmbench accepts
// must be documented in docs/BENCHMARKING.md. Adding an experiment
// without a methodology section fails here.
func TestEveryExperimentDocumented(t *testing.T) {
	doc := readBenchmarkingDoc(t)
	for _, e := range experiments {
		if !strings.Contains(doc, "`"+e.name+"`") {
			t.Errorf("experiment %q not documented in docs/BENCHMARKING.md", e.name)
		}
	}
}

// TestEveryBenchFieldDocumented walks the committed BENCH_*.json grid
// reports and requires every top-level field — and every field of the
// per-cell schema, including the folded stat keys — to appear in
// docs/BENCHMARKING.md. A schema change without a doc update fails
// here.
func TestEveryBenchFieldDocumented(t *testing.T) {
	doc := readBenchmarkingDoc(t)
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed BENCH_*.json found in the repo root")
	}
	fields := map[string]bool{}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var top map[string]json.RawMessage
		if err := json.Unmarshal(data, &top); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for k := range top {
			fields[k] = true
		}
		// The cell schema: cell keys plus the folded stat keys.
		var cellsDoc struct {
			Cells []map[string]json.RawMessage `json:"cells"`
		}
		if err := json.Unmarshal(data, &cellsDoc); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(cellsDoc.Cells) == 0 {
			t.Errorf("%s: grid report has no cells", path)
		}
		for _, cell := range cellsDoc.Cells {
			for k := range cell {
				fields[k] = true
			}
			var metrics map[string]map[string]json.RawMessage
			if raw, ok := cell["metrics"]; ok {
				if err := json.Unmarshal(raw, &metrics); err != nil {
					t.Fatalf("%s: metrics: %v", path, err)
				}
				for _, stat := range metrics {
					for k := range stat {
						fields[k] = true
					}
				}
			}
		}
	}
	names := make([]string, 0, len(fields))
	for k := range fields {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if !strings.Contains(doc, `"`+k+`"`) {
			t.Errorf("BENCH field %q not documented in docs/BENCHMARKING.md", k)
		}
	}
}

// readBenchmarkingDoc loads docs/BENCHMARKING.md relative to this
// package.
func readBenchmarkingDoc(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "BENCHMARKING.md"))
	if err != nil {
		t.Fatalf("docs/BENCHMARKING.md missing: %v", err)
	}
	return string(data)
}
