package main

import (
	"fmt"
	"io"

	"flashmob/internal/algo"
	"flashmob/internal/core"
	"flashmob/internal/obs"
)

// expReport demonstrates the observability layer end to end: it runs one
// metered DeepWalk on the YT stand-in, prints an annotated summary of the
// headline counters (the "anatomy of a run" walkthrough in the README),
// and then emits the full JSON report — the same document `-metrics`
// writes and docs/OBSERVABILITY.md documents field by field.
func expReport(w io.Writer, cfg benchConfig) error {
	g, err := presetGraph("YT", cfg)
	if err != nil {
		return err
	}
	e, err := flashMobEngine(g, algo.DeepWalk(), cfg, func(c *core.Config) {
		c.Metrics = true
	})
	if err != nil {
		return err
	}
	defer e.Close()
	res, err := e.Run(0, cfg.Steps)
	if err != nil {
		return err
	}
	rep := res.Report
	if rep == nil {
		return fmt.Errorf("report: engine produced no metrics report")
	}

	fmt.Fprintf(w, "run: %d walkers x %d steps, %.1f ns/step\n\n",
		res.Walkers, res.Steps, res.PerStepNS())

	fmt.Fprintln(w, "-- run shape --")
	for _, name := range []string{"core_episodes_total", "core_steps_total", "core_walkers_total", "core_sample_subshards_total"} {
		if c, ok := rep.Counter(name); ok {
			fmt.Fprintf(w, "%-32s %12d  (%s)\n", c.Name, c.Value, c.Help)
		}
	}

	fmt.Fprintln(w, "\n-- per-step stage time (mean over steps) --")
	for _, name := range []string{"core_sample_step_ns", "core_shuffle_fwd_step_ns", "core_shuffle_rev_step_ns", "core_sample_items_per_step"} {
		if h, ok := rep.Histogram(name); ok {
			fmt.Fprintf(w, "%-32s mean %12.0f %-5s over %d obs\n", h.Name, h.Mean(), h.Unit, h.Count)
		}
	}

	fmt.Fprintln(w, "\n-- sample kernel mix (walker-steps per specialized kernel) --")
	if v, ok := rep.Vector("core_sample_kernel_walker_steps"); ok {
		total := v.Total()
		for i, val := range v.Values {
			if val == 0 {
				continue
			}
			fmt.Fprintf(w, "%-32s %12d  (%.1f%%)\n", v.Labels[i], val, 100*float64(val)/float64(total))
		}
	}

	fmt.Fprintln(w, "\n-- worker pool --")
	for _, name := range []string{"pool_runs_total", "pool_barrier_wait_ns"} {
		if c, ok := rep.Counter(name); ok {
			fmt.Fprintf(w, "%-32s %12d  (%s)\n", c.Name, c.Value, c.Help)
		}
	}
	if v, ok := rep.Vector("pool_worker_busy_ns"); ok {
		fmt.Fprintf(w, "%-32s %12d  summed over %d workers\n", v.Name, v.Total(), len(v.Values))
	}

	fmt.Fprintf(w, "\n-- full JSON report (schema_version %d; every field documented in docs/OBSERVABILITY.md) --\n",
		obs.ReportSchemaVersion)
	return rep.WriteJSON(w)
}
