package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flashmob/internal/perfgate"
)

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(1, 4, 2, 8000); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	bad := []struct {
		name                    string
		repeats, steps, workers int
		targetV                 uint
	}{
		// -repeats 0 used to be silently coerced to 1; it must be a
		// usage error so a typo'd grid doesn't quietly drop repeats.
		{"repeats-0", 0, 4, 2, 8000},
		{"repeats-negative", -3, 4, 2, 8000},
		{"steps-0", 1, 0, 2, 8000},
		{"workers-0", 1, 4, 0, 8000},
		{"targetv-0", 1, 4, 2, 0},
		{"targetv-overflow", 1, 4, 2, 1 << 33},
	}
	for _, c := range bad {
		if err := validateFlags(c.repeats, c.steps, c.workers, c.targetV); err == nil {
			t.Errorf("%s accepted", c.name)
		} else if !strings.Contains(err.Error(), "-") {
			t.Errorf("%s error does not name the flag: %v", c.name, err)
		}
	}
}

// TestWriteBenchJSONStamping checks the provenance fields every raw
// BENCH report must carry under the versioned schema.
func TestWriteBenchJSONStamping(t *testing.T) {
	old := benchOutDir
	benchOutDir = t.TempDir()
	defer func() { benchOutDir = old }()

	type toy struct {
		Experiment string  `json:"experiment"`
		NSPerStep  float64 `json:"ns_per_step"`
	}
	var buf bytes.Buffer
	if err := writeBenchJSON(&buf, "BENCH_toy.json", toy{Experiment: "toy", NSPerStep: 42}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(benchOutDir, "BENCH_toy.json")
	if !strings.Contains(buf.String(), path) {
		t.Errorf("writer did not announce %s: %q", path, buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if v, ok := doc["schema_version"].(float64); !ok || int(v) != perfgate.ReportSchemaVersion {
		t.Errorf("schema_version = %v, want %d", doc["schema_version"], perfgate.ReportSchemaVersion)
	}
	if s, ok := doc["git_sha"].(string); !ok || s == "" {
		t.Errorf("git_sha = %v", doc["git_sha"])
	}
	if _, ok := doc["generated_unix"].(float64); !ok {
		t.Errorf("generated_unix = %v", doc["generated_unix"])
	}
	host, ok := doc["host"].(map[string]any)
	if !ok {
		t.Fatalf("host = %v", doc["host"])
	}
	for _, k := range []string{"os", "arch", "cpus", "go_version"} {
		if _, ok := host[k]; !ok {
			t.Errorf("host fingerprint missing %q", k)
		}
	}
	// The report's own fields must survive the stamping round trip.
	if doc["experiment"] != "toy" || doc["ns_per_step"].(float64) != 42 {
		t.Errorf("payload mangled: %v", doc)
	}
}
