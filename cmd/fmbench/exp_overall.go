package main

import (
	"fmt"
	"io"
	"time"

	"flashmob/internal/algo"
	"flashmob/internal/baseline"
	"flashmob/internal/core"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/mem"
	"flashmob/internal/part"
	"flashmob/internal/rng"
	"flashmob/internal/sim"
)

// expFig1a reproduces Figure 1a: KnightKing's per-step time on toy graphs
// sized to L1/L2/L3 plus YT and YH, against FlashMob on YT and YH.
// Expected shape: KnightKing degrades as the graph outgrows each level;
// FlashMob on the big graphs lands near KnightKing's small-toy speeds.
func expFig1a(w io.Writer, cfg benchConfig) error {
	geom := mem.PaperGeometry()
	toys := []struct {
		name   string
		budget uint64
	}{
		{"toy-L1", geom.L1.SizeBytes * 3 / 4},
		{"toy-L2", geom.L2.SizeBytes * 3 / 4},
		{"toy-L3", geom.L3.SizeBytes * 3 / 4},
	}
	row(w, "graph", "system", "ns/step")
	for _, toy := range toys {
		g, _, err := gen.ToyForCacheBytes(toy.budget, 16, cfg.Seed)
		if err != nil {
			return err
		}
		nsStep, err := timeKnightKing(g, algo.DeepWalk(), cfg)
		if err != nil {
			return err
		}
		row(w, toy.name, "KnightKing", ns(nsStep))
	}
	for _, name := range []string{"YT", "YH"} {
		g, err := presetGraphSized(name, cfg, cfg.MinCSR)
		if err != nil {
			return err
		}
		kk, err := timeKnightKing(g, algo.DeepWalk(), cfg)
		if err != nil {
			return err
		}
		row(w, name, "KnightKing", ns(kk))
	}
	for _, name := range []string{"YT", "YH"} {
		g, err := presetGraphSized(name, cfg, cfg.MinCSR)
		if err != nil {
			return err
		}
		fm, err := timeFlashMob(g, algo.DeepWalk(), cfg, nil)
		if err != nil {
			return err
		}
		row(w, name, "FlashMob", ns(fm))
	}
	return nil
}

// expFig8a reproduces Figure 8a: DeepWalk per-step time across all five
// graphs for GraphVite, KnightKing, and FlashMob. Expected shape:
// FlashMob ≪ KnightKing < GraphVite, with FlashMob nearly flat across
// graph sizes.
func expFig8a(w io.Writer, cfg benchConfig) error {
	row(w, "graph", "GraphVite", "KnightKing", "FlashMob", "speedup-vs-KK")
	for _, name := range presetNames {
		g, err := presetGraphSized(name, cfg, cfg.MinCSR)
		if err != nil {
			return err
		}
		gv, err := timeGraphVite(g, algo.DeepWalk(), cfg)
		if err != nil {
			return err
		}
		kk, err := timeKnightKing(g, algo.DeepWalk(), cfg)
		if err != nil {
			return err
		}
		fm, err := timeFlashMob(g, algo.DeepWalk(), cfg, nil)
		if err != nil {
			return err
		}
		row(w, name, ns(gv), ns(kk), ns(fm), fmt.Sprintf("%.1fx", kk/fm))
	}
	return nil
}

// expFig8b reproduces Figure 8b: node2vec per-step time for KnightKing vs
// FlashMob (GraphVite omitted, as in the paper).
func expFig8b(w io.Writer, cfg benchConfig) error {
	spec := algo.Node2Vec(2, 0.5)
	row(w, "graph", "KnightKing", "FlashMob", "speedup")
	for _, name := range presetNames {
		g, err := presetGraphSized(name, cfg, cfg.MinCSR)
		if err != nil {
			return err
		}
		kk, err := timeKnightKing(g, spec, cfg)
		if err != nil {
			return err
		}
		fm, err := timeFlashMob(g, spec, cfg, nil)
		if err != nil {
			return err
		}
		row(w, name, ns(kk), ns(fm), fmt.Sprintf("%.1fx", kk/fm))
	}
	return nil
}

// expFig9a reproduces Figure 9a: FlashMob's per-graph time split between
// the sample stage, shuffle stage, and everything else.
func expFig9a(w io.Writer, cfg benchConfig) error {
	row(w, "graph", "sample", "shuffle(fwd+rev)", "other", "total-ns/step")
	for _, name := range presetNames {
		g, err := presetGraphSized(name, cfg, cfg.MinCSR)
		if err != nil {
			return err
		}
		e, err := flashMobEngine(g, algo.DeepWalk(), cfg, nil)
		if err != nil {
			return err
		}
		res, err := e.Run(0, cfg.Steps)
		e.Close()
		if err != nil {
			return err
		}
		tot := float64(res.Duration)
		shuffle := fmt.Sprintf("%s+%s",
			pct(float64(res.ShuffleFwdTime)/tot),
			pct(float64(res.ShuffleRevTime)/tot))
		row(w, name,
			pct(float64(res.SampleTime)/tot),
			shuffle,
			pct(float64(res.OtherTime)/tot),
			ns(res.PerStepNS()))
	}
	return nil
}

// expFig9b reproduces Figure 9b: the MCKP DP plan against Uniform-PS,
// Uniform-DS, and the manual heuristic. Expected shape: DP at least ties
// every alternative on every graph.
func expFig9b(w io.Writer, cfg benchConfig) error {
	planners := []struct {
		name string
		kind core.PlannerKind
	}{
		{"DP(MCKP)", core.PlannerMCKP},
		{"Uniform-PS", core.PlannerUniformPS},
		{"Uniform-DS", core.PlannerUniformDS},
		{"Manual", core.PlannerManual},
	}
	row(w, "graph", "DP(MCKP)", "Uniform-PS", "Uniform-DS", "Manual")
	for _, name := range presetNames {
		g, err := presetGraphSized(name, cfg, cfg.MinCSR)
		if err != nil {
			return err
		}
		cells := make([]string, 0, len(planners))
		for _, p := range planners {
			nsStep, err := timeFlashMob(g, algo.DeepWalk(), cfg, func(c *core.Config) {
				c.Planner = p.kind
			})
			if err != nil {
				return err
			}
			cells = append(cells, ns(nsStep))
		}
		row(w, name, cells...)
	}
	return nil
}

// expFig11a reproduces Figure 11a: FlashMob's per-step time as |V| grows
// over synthetic graphs with the YahooWeb degree distribution. Expected
// shape: slow, sub-linear growth.
func expFig11a(w io.Writer, cfg benchConfig) error {
	yh, err := gen.PresetByName("YH")
	if err != nil {
		return err
	}
	row(w, "|V|", "|E|", "CSR", "ns/step")
	for _, mul := range []uint32{1, 2, 4, 8} {
		n := cfg.TargetV * mul
		g, err := gen.PowerLaw(gen.PowerLawConfig{
			NumVertices: n,
			AvgDegree:   yh.AvgDegree,
			Alpha:       gen.FitAlpha(n, yh.AvgDegree, 1, 0.01, yh.Top1EdgeShare),
			MinDegree:   1,
			Seed:        cfg.Seed,
		})
		if err != nil {
			return err
		}
		nsStep, err := timeFlashMob(g, algo.DeepWalk(), cfg, nil)
		if err != nil {
			return err
		}
		row(w, big(uint64(n)), big(g.NumEdges()), mb(g.SizeBytes()), ns(nsStep))
	}
	return nil
}

// expFig11b reproduces Figure 11b: per-step cost versus walker density on
// the TW preset. Expected shape: cost falls as density rises, then
// plateaus around 8|V| walkers.
func expFig11b(w io.Writer, cfg benchConfig) error {
	g, err := presetGraphSized("TW", cfg, cfg.MinCSR)
	if err != nil {
		return err
	}
	row(w, "walkers", "density(w/edge)", "sample-ns/step", "total-ns/step")
	for _, mul := range []uint64{1, 2, 4, 8, 16} {
		walkers := uint64(g.NumVertices()) * mul
		e, err := flashMobEngine(g, algo.DeepWalk(), cfg, func(c *core.Config) {
			c.Part = part.Config{Walkers: walkers}
		})
		if err != nil {
			return err
		}
		res, err := e.Run(walkers, cfg.Steps)
		if err != nil {
			return err
		}
		density := float64(walkers) / float64(g.NumEdges())
		row(w, fmt.Sprintf("%d|V|", mul), f2(density),
			ns(float64(res.SampleTime.Nanoseconds())/float64(res.TotalSteps)),
			ns(res.PerStepNS()))
	}
	return nil
}

// expFig12 reproduces Figure 12: FlashMob-P (partitioned) vs FlashMob-R
// (replicated) NUMA modes. Wall-clock per-step times come from the real
// engine under each mode's walker budget (replication halves the DRAM
// available for walkers); remote-access rates come from the trace
// simulator. Expected shape: similar speeds, with P sustaining about
// twice R's walker density and a tiny remote access rate.
func expFig12(w io.Writer, cfg benchConfig) error {
	geom, model := simModel(cfg)
	row(w, "graph", "P-ns/step", "R-ns/step", "P-density", "R-density", "P-remote/step")
	for _, name := range presetNames {
		g, err := presetGraphSized(name, cfg, cfg.MinCSR)
		if err != nil {
			return err
		}
		// The walker budget: P holds one graph copy, R holds two, in the
		// same (synthetic) DRAM envelope sized at 4 graph copies.
		budget := 4 * g.SizeBytes()
		pWalkers := (budget - g.SizeBytes()) / 12
		rWalkers := (budget - 2*g.SizeBytes()) / 12 / 2 // per instance

		pNS, err := timeFlashMobN(g, cfg, pWalkers)
		if err != nil {
			return err
		}
		rNS, err := timeFlashMobN(g, cfg, rWalkers)
		if err != nil {
			return err
		}

		plan, err := planFor(g, pWalkers, model)
		if err != nil {
			return err
		}
		fm, err := sim.NewFlashMobSim(g, plan, geom, cfg.Seed, sim.NumaPartitioned)
		if err != nil {
			return err
		}
		simWalkers := int(g.NumVertices())
		rep, err := fm.Run(simWalkers, 2)
		if err != nil {
			return err
		}
		row(w, name, ns(pNS), ns(rNS),
			f2(float64(pWalkers)/float64(g.NumEdges())),
			f2(float64(rWalkers)/float64(g.NumEdges())),
			fmt.Sprintf("%.4f", rep.RemoteAccessesPerStep()))
	}
	return nil
}

// expPrep reproduces the §5.2 pre-processing measurements: the O(|V|)
// counting sort and the MCKP planning time against the walk time of the
// standard workload (10 episodes × |V| walkers × 80 steps, extrapolated
// from the measured per-step speed). The paper excludes CSR construction
// from all systems' timings, so only the rank computation is timed here.
func expPrep(w io.Writer, cfg benchConfig) error {
	row(w, "graph", "sort", "plan(DP)", "walk(10x80step)", "prep-share")
	for _, name := range presetNames {
		g, err := presetGraphSized(name, cfg, cfg.MinCSR)
		if err != nil {
			return err
		}
		// Shuffle vertex order first so the sort has real work (generated
		// graphs are born sorted).
		n := g.NumVertices()
		fwd := make([]graph.VID, n)
		rng.Perm(rng.NewXorShift64Star(cfg.Seed), fwd)
		bwd := make([]graph.VID, n)
		for i, p := range fwd {
			bwd[p] = graph.VID(i)
		}
		shuffled := graph.Relabel(g, fwd, bwd)

		t0 := time.Now()
		graph.DegreeRank(shuffled)
		sortTime := time.Since(t0)

		t0 = time.Now()
		_, err = part.PlanMCKP(g, part.Config{
			Walkers: uint64(n), Model: hostModel(),
		})
		if err != nil {
			return err
		}
		planTime := time.Since(t0)

		e, err := flashMobEngine(g, algo.DeepWalk(), cfg, nil)
		if err != nil {
			return err
		}
		res, err := e.Run(0, cfg.Steps)
		if err != nil {
			return err
		}
		// Extrapolate the measured per-step speed to the paper's standard
		// workload: 10|V| walkers × 80 steps.
		walk := time.Duration(res.PerStepNS() * float64(n) * 10 * 80)
		prep := sortTime + planTime
		row(w, name, sortTime.Round(time.Microsecond).String(),
			planTime.Round(time.Microsecond).String(),
			walk.Round(time.Millisecond).String(),
			pct(float64(prep)/float64(walk+prep)))
	}
	return nil
}

// timeKnightKing returns ns/step for the KnightKing baseline.
func timeKnightKing(g *graph.CSR, spec algo.Spec, cfg benchConfig) (float64, error) {
	k, err := baseline.NewKnightKing(g, spec, baseline.Config{Workers: cfg.Workers, Seed: cfg.Seed})
	if err != nil {
		return 0, err
	}
	res, err := k.Run(0, cfg.Steps)
	if err != nil {
		return 0, err
	}
	return res.PerStepNS(), nil
}

// timeGraphVite returns ns/step for the GraphVite baseline.
func timeGraphVite(g *graph.CSR, spec algo.Spec, cfg benchConfig) (float64, error) {
	gv, err := baseline.NewGraphVite(g, spec, baseline.Config{Workers: cfg.Workers, Seed: cfg.Seed})
	if err != nil {
		return 0, err
	}
	res, err := gv.Run(0, cfg.Steps)
	if err != nil {
		return 0, err
	}
	return res.PerStepNS(), nil
}

// timeFlashMob returns ns/step for the FlashMob engine with |V| walkers.
func timeFlashMob(g *graph.CSR, spec algo.Spec, cfg benchConfig, extra func(*core.Config)) (float64, error) {
	e, err := flashMobEngine(g, spec, cfg, extra)
	if err != nil {
		return 0, err
	}
	res, err := e.Run(0, cfg.Steps)
	if err != nil {
		return 0, err
	}
	return res.PerStepNS(), nil
}

// timeFlashMobN runs FlashMob with an explicit walker count.
func timeFlashMobN(g *graph.CSR, cfg benchConfig, walkers uint64) (float64, error) {
	e, err := flashMobEngine(g, algo.DeepWalk(), cfg, func(c *core.Config) {
		c.Part = part.Config{Walkers: walkers}
	})
	if err != nil {
		return 0, err
	}
	res, err := e.Run(walkers, cfg.Steps)
	if err != nil {
		return 0, err
	}
	return res.PerStepNS(), nil
}
