package main

import (
	"fmt"
	"io"

	"flashmob/internal/mem"
	"flashmob/internal/profile"
	"flashmob/internal/sim"
)

// expTable1 reproduces Table 1 twice: measured on the host with the three
// micro-kernels (sequential / independent-random / pointer-chase over
// cache-sized working sets), and the paper's reference numbers for its
// Xeon Gold 6126. Expected shape: Seq ≪ Rand ≪ Chase, gaps widening down
// the hierarchy.
func expTable1(w io.Writer, cfg benchConfig) error {
	geom := mem.PaperGeometry()
	sets := []struct {
		name string
		ws   uint64
	}{
		{"L1C", geom.L1.SizeBytes / 2},
		{"L2C", geom.L2.SizeBytes / 2},
		{"L3C", geom.L3.SizeBytes / 2},
		{"LocalMem", geom.L3.SizeBytes * 16},
	}
	fmt.Fprintln(w, "measured on this host:")
	row(w, "access/location", "L1C", "L2C", "L3C", "LocalMem")
	var seq, rnd, chase []string
	for _, s := range sets {
		r := profile.MeasureLatency(s.ws, cfg.MinSteps, cfg.Seed)
		seq = append(seq, ns(r.SeqNS))
		rnd = append(rnd, ns(r.RandNS))
		chase = append(chase, ns(r.ChaseNS))
	}
	row(w, "Sequential read (ns)", seq...)
	row(w, "Random read (ns)", rnd...)
	row(w, "Pointer-chasing (ns)", chase...)

	fmt.Fprintln(w, "\npaper reference (Xeon Gold 6126, incl. RemoteMem):")
	row(w, "access/location", "L1C", "L2C", "L3C", "LocalMem", "RemoteMem")
	for k, name := range map[mem.AccessKind]string{
		mem.Seq: "Sequential read (ns)", mem.Rand: "Random read (ns)", mem.Chase: "Pointer-chasing (ns)",
	} {
		cells := make([]string, 0, 5)
		for loc := mem.LocL1; loc <= mem.LocRemoteMem; loc++ {
			cells = append(cells, ns(mem.PaperLatency[k][loc]))
		}
		row(w, name, cells...)
	}
	return nil
}

// expFig1b reproduces Figure 1b: per-step cache miss counts at each level
// for KnightKing vs FlashMob on the YT and YH presets, via trace-driven
// simulation with proportionally scaled caches. Expected shape: FlashMob
// collapses the L2 and L3 miss rates.
func expFig1b(w io.Writer, cfg benchConfig) error {
	geom, model := simModel(cfg)
	row(w, "graph/system", "L1-miss/step", "L2-miss/step", "L3-miss/step")
	for _, name := range []string{"YT", "YH"} {
		g, err := presetGraph(name, cfg)
		if err != nil {
			return err
		}
		walkers := int(g.NumVertices())
		steps := 3

		kkRep, err := sim.NewKnightKingSim(g, geom, cfg.Seed).Run(walkers, steps)
		if err != nil {
			return err
		}
		plan, err := planFor(g, uint64(walkers), model)
		if err != nil {
			return err
		}
		fm, err := sim.NewFlashMobSim(g, plan, geom, cfg.Seed, sim.NumaNone)
		if err != nil {
			return err
		}
		fmRep, err := fm.Run(walkers, steps)
		if err != nil {
			return err
		}
		for label, rep := range map[string]*sim.Report{"KnightKing": kkRep, "FlashMob": fmRep} {
			row(w, name+"/"+label,
				cnt(rep.MissesPerStep(mem.LocL1)),
				cnt(rep.MissesPerStep(mem.LocL2)),
				cnt(rep.MissesPerStep(mem.LocL3)))
		}
	}
	return nil
}

// expTable5 reproduces Table 5: the full memory-hierarchy case study on
// the FS and UK presets — per-step hits/misses at each level, estimated
// bound time and its share, and DRAM traffic per step. Expected shape:
// FlashMob's misses are caught by L2, its DRAM-bound share collapses, and
// its traffic per step drops.
func expTable5(w io.Writer, cfg benchConfig) error {
	geom, model := simModel(cfg)
	for _, name := range []string{"FS", "UK"} {
		g, err := presetGraph(name, cfg)
		if err != nil {
			return err
		}
		walkers := int(g.NumVertices())
		steps := 3
		kkRep, err := sim.NewKnightKingSim(g, geom, cfg.Seed).Run(walkers, steps)
		if err != nil {
			return err
		}
		plan, err := planFor(g, uint64(walkers), model)
		if err != nil {
			return err
		}
		fmSim, err := sim.NewFlashMobSim(g, plan, geom, cfg.Seed, sim.NumaNone)
		if err != nil {
			return err
		}
		fmRep, err := fmSim.Run(walkers, steps)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "--- %s ---\n", name)
		row(w, "metric", "KnightKing", "FlashMob")
		printCaseStudy(w, kkRep, fmRep)
		fmt.Fprintln(w)
	}
	return nil
}

func printCaseStudy(w io.Writer, kk, fm *sim.Report) {
	levels := []struct {
		name string
		loc  mem.Location
	}{{"L1", mem.LocL1}, {"L2", mem.LocL2}, {"L3", mem.LocL3}}
	for _, l := range levels {
		row(w, l.name+"-hit|miss /step",
			fmt.Sprintf("%s | %s", cnt(kk.HitsPerStep(l.loc)), cnt(kk.MissesPerStep(l.loc))),
			fmt.Sprintf("%s | %s", cnt(fm.HitsPerStep(l.loc)), cnt(fm.MissesPerStep(l.loc))))
	}
	for _, l := range []struct {
		name string
		loc  mem.Location
	}{{"L1-bound", mem.LocL1}, {"L2-bound", mem.LocL2}, {"L3-bound", mem.LocL3}, {"DRAM-bound", mem.LocLocalMem}} {
		row(w, l.name+" ns/step", ns(kk.BoundNSPerStep(l.loc)), ns(fm.BoundNSPerStep(l.loc)))
	}
	row(w, "total data-bound ns/step", ns(kk.TotalBoundNSPerStep()), ns(fm.TotalBoundNSPerStep()))
	row(w, "DRAM traffic B/step", ns(kk.DRAMBytesPerStep()), ns(fm.DRAMBytesPerStep()))
}
