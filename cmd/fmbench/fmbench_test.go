package main

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig makes every experiment finish in seconds.
func tinyConfig() benchConfig {
	return benchConfig{
		TargetV:   8000,
		Steps:     4,
		Seed:      7,
		Workers:   2,
		GeomScale: 64,
		MinSteps:  5_000, ProfMaxEdges: 1 << 20,
	}
}

func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests skipped in -short")
	}
	// Some experiments write BENCH_*.json into the working directory; the
	// canonical location is the repo root (where make bench-* runs), not
	// this package. Run from a scratch dir so test runs can't litter
	// cmd/fmbench with stray artifacts.
	t.Chdir(t.TempDir())
	cfg := tinyConfig()
	for _, e := range experiments {
		e := e
		t.Run(e.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.run(&buf, cfg); err != nil {
				t.Fatalf("%s: %v", e.name, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.name)
			}
		})
	}
}

func TestFig8aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short")
	}
	// The headline result: on every graph FlashMob must beat KnightKing,
	// which must beat GraphVite. The ordering only exists when the graph
	// is DRAM-resident (cache-resident graphs are fast under any engine),
	// so force the CSR well past any plausible LLC.
	cfg := tinyConfig()
	cfg.Steps = 6
	cfg.MinCSR = 48 << 20
	for _, name := range []string{"YT", "FS"} {
		g, err := presetGraphSized(name, cfg, cfg.MinCSR)
		if err != nil {
			t.Fatal(err)
		}
		// Wall-clock ordering is noisy when the test binary runs the rest
		// of the suite in parallel: accept if any of three attempts shows
		// the expected strict ordering.
		ok := false
		for attempt := 0; attempt < 3 && !ok; attempt++ {
			gv, err := timeGraphVite(g, deepWalk(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			kk, err := timeKnightKing(g, deepWalk(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			fm, err := timeFlashMob(g, deepWalk(), cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s attempt %d: GraphVite %.1f, KnightKing %.1f, FlashMob %.1f ns/step",
				name, attempt, gv, kk, fm)
			ok = fm < kk && kk < gv
		}
		if !ok {
			t.Errorf("%s: expected FlashMob < KnightKing < GraphVite in 3 attempts", name)
		}
	}
}

func TestFindExperiment(t *testing.T) {
	if _, ok := findExperiment("fig8a"); !ok {
		t.Error("fig8a missing")
	}
	if _, ok := findExperiment("nope"); ok {
		t.Error("bogus experiment found")
	}
}

func TestTable2OutputMentionsAllGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	var buf bytes.Buffer
	if err := expTable2(&buf, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range presetNames {
		if !strings.Contains(out, "--- "+name) {
			t.Errorf("table2 output missing %s", name)
		}
	}
}
