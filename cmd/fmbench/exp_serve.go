package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"flashmob"
	"flashmob/internal/serve"
)

// serveVariant is one measured server configuration under the same
// open-loop load.
type serveVariant struct {
	Name             string  `json:"name"`
	WindowMS         float64 `json:"window_ms"`
	MaxBatchRequests int     `json:"max_batch_requests"`
	Offered          int     `json:"offered_requests"`
	Served           int     `json:"served"`
	Shed             int     `json:"shed"`
	Failed           int     `json:"failed"`
	ReqPerSec        float64 `json:"served_req_per_sec"`
	Goodput          float64 `json:"goodput_walker_steps_per_sec"`
	GoodputStd       float64 `json:"goodput_std"`
	P50MS            float64 `json:"served_p50_ms"`
	P99MS            float64 `json:"served_p99_ms"`
	P99StdMS         float64 `json:"p99_std_ms"`
	MeanBatch        float64 `json:"mean_batch_requests"`
	Speedup          float64 `json:"goodput_vs_batch1"`
}

// serveReport is the schema of BENCH_serve.json.
type serveReport struct {
	Experiment string         `json:"experiment"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Graph      string         `json:"graph"`
	Workers    int            `json:"workers"`
	Steps      int            `json:"steps"`
	MixWalkers []int          `json:"mix_walkers"`
	OfferedQPS float64        `json:"offered_qps"`
	Repeats    int            `json:"repeats"`
	Variants   []serveVariant `json:"variants"`
}

// foldServeRepeats collapses per-repeat measurements of one variant into
// one record: request counts become per-repeat means (rounded), rates
// and latencies carry the mean across repeats, and goodput and tail
// latency additionally record the standard deviation.
func foldServeRepeats(runs []serveVariant) serveVariant {
	v := runs[0]
	col := func(f func(serveVariant) float64) []float64 {
		xs := make([]float64, len(runs))
		for i, r := range runs {
			xs[i] = f(r)
		}
		return xs
	}
	m := func(f func(serveVariant) float64) float64 { mean, _ := meanStd(col(f)); return mean }
	v.Served = int(m(func(r serveVariant) float64 { return float64(r.Served) }) + 0.5)
	v.Shed = int(m(func(r serveVariant) float64 { return float64(r.Shed) }) + 0.5)
	v.Failed = int(m(func(r serveVariant) float64 { return float64(r.Failed) }) + 0.5)
	v.ReqPerSec = m(func(r serveVariant) float64 { return r.ReqPerSec })
	v.Goodput, v.GoodputStd = meanStd(col(func(r serveVariant) float64 { return r.Goodput }))
	v.P50MS = m(func(r serveVariant) float64 { return r.P50MS })
	v.P99MS, v.P99StdMS = meanStd(col(func(r serveVariant) float64 { return r.P99MS }))
	v.MeanBatch = m(func(r serveVariant) float64 { return r.MeanBatch })
	return v
}

// expServe measures what micro-batching buys a walk-query service: the
// same open-loop request mix is offered — at ~3× the no-coalescing
// capacity, calibrated on this host — to a batch-size-1 server (every
// request its own engine run) and to coalescing servers at several
// batching windows. The coalescing servers amortize per-run overhead
// across the batch, so they serve the same load with higher goodput and
// a tail no worse; the batch-size-1 server saturates and sheds.
func expServe(w io.Writer, cfg benchConfig) error {
	const graphName = "YT"
	g, err := presetGraphSized(graphName, cfg, cfg.MinCSR)
	if err != nil {
		return err
	}
	mix := []int{8, 32, 128}

	// Calibrate: median solo-request latency on a batch-size-1 server
	// bounds its capacity at Executors/latency requests per second.
	solo, err := soloLatency(g, cfg, mix)
	if err != nil {
		return err
	}
	const executors = 2
	capacity := float64(executors) / solo.Seconds()
	qps := 3 * capacity
	// Bound the run: 2 seconds of offered load, at least 200 requests so
	// percentiles mean something, at most 3000 so slow hosts finish.
	offered := int(qps * 2)
	if offered < 200 {
		offered = 200
	}
	if offered > 3000 {
		offered = 3000
	}
	fmt.Fprintf(w, "calibration: solo run %.2fms -> batch-size-1 capacity ~%.0f req/s; offering %.0f req/s (%d requests)\n\n",
		float64(solo)/float64(time.Millisecond), capacity, qps, offered)

	reps := cfg.Repeats
	if reps < 1 {
		reps = 1
	}
	rep := serveReport{
		Experiment: "serve",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Graph:      graphName,
		Workers:    cfg.Workers,
		Steps:      cfg.Steps,
		MixWalkers: mix,
		OfferedQPS: qps,
		Repeats:    reps,
	}

	type variantCfg struct {
		name   string
		window time.Duration
		maxReq int
	}
	variants := []variantCfg{
		{"batch1", time.Millisecond, 1},
		{"window-1ms", time.Millisecond, 0},
		{"window-4ms", 4 * time.Millisecond, 0},
		{"window-16ms", 16 * time.Millisecond, 0},
	}

	row(w, "variant", "served", "shed", "req/s", "goodput", "p50-ms", "p99-ms", "batch", "vs-b1")
	var base float64
	for _, vc := range variants {
		runs := make([]serveVariant, 0, reps)
		for r := 0; r < reps; r++ {
			one, err := runServeVariant(g, cfg, vc.name, vc.window, vc.maxReq, executors, mix, qps, offered)
			if err != nil {
				return err
			}
			runs = append(runs, one)
		}
		v := foldServeRepeats(runs)
		if base == 0 {
			base = v.Goodput
		}
		v.Speedup = v.Goodput / base
		rep.Variants = append(rep.Variants, v)
		row(w, v.Name, big(uint64(v.Served)), big(uint64(v.Shed)),
			fmt.Sprintf("%.0f", v.ReqPerSec), fmt.Sprintf("%.2fM", v.Goodput/1e6),
			f2(v.P50MS), f2(v.P99MS), f2(v.MeanBatch), fmt.Sprintf("%.2fx", v.Speedup))
	}

	return writeBenchJSON(w, "BENCH_serve.json", rep)
}

// newServeServer builds a fresh system (the serve server owns and closes
// it) and an HTTP listener on an ephemeral port.
func newServeServer(fg *flashmob.Graph, cfg benchConfig, window time.Duration, maxReq, executors int) (*serve.Server, *http.Server, string, error) {
	spec := flashmob.DeepWalk()
	sys, err := flashmob.New(fg, flashmob.Options{
		Algorithm: spec, Workers: cfg.Workers, Seed: cfg.Seed, RecordPaths: true,
	})
	if err != nil {
		return nil, nil, "", err
	}
	srv, err := serve.New([]serve.Backend{{Name: "deepwalk", Sys: sys, Spec: spec}}, serve.Config{
		MaxWait:          window,
		MaxBatchRequests: maxReq,
		Executors:        executors,
		Seed:             cfg.Seed,
	})
	if err != nil {
		sys.Close()
		return nil, nil, "", err
	}
	return listenServe(srv)
}

// listenServe attaches an ephemeral-port HTTP listener to a serve.Server
// and returns the base URL clients should hit.
func listenServe(srv *serve.Server) (*serve.Server, *http.Server, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return srv, hs, "http://" + ln.Addr().String(), nil
}

// soloLatency measures the median latency of sequential single requests
// against a batch-size-1 server: the per-request cost when nothing is
// amortized.
func soloLatency(fg *flashmob.Graph, cfg benchConfig, mix []int) (time.Duration, error) {
	srv, hs, url, err := newServeServer(fg, cfg, time.Millisecond, 1, 2)
	if err != nil {
		return 0, err
	}
	defer func() { hs.Close(); srv.Close() }()
	client := &http.Client{}
	var lat []time.Duration
	for i := 0; i < 24; i++ {
		t0 := time.Now()
		status, err := postServe(client, url, mix[i%len(mix)], cfg.Steps)
		if err != nil {
			return 0, err
		}
		if status != 200 {
			return 0, fmt.Errorf("calibration request got status %d", status)
		}
		if i >= 4 { // skip warm-up
			lat = append(lat, time.Since(t0))
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)/2], nil
}

// postServe issues one walk query and discards the body.
func postServe(client *http.Client, url string, walkers, steps int) (int, error) {
	body, _ := json.Marshal(serve.WalkRequest{Walkers: walkers, Steps: steps})
	resp, err := client.Post(url+"/v1/walk", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// runServeVariant offers the open-loop load to one server configuration
// and folds the client-side observations into a serveVariant.
func runServeVariant(fg *flashmob.Graph, cfg benchConfig, name string, window time.Duration, maxReq, executors int, mix []int, qps float64, offered int) (serveVariant, error) {
	srv, hs, url, err := newServeServer(fg, cfg, window, maxReq, executors)
	if err != nil {
		return serveVariant{}, err
	}
	defer func() { hs.Close(); srv.Close() }()

	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 512},
	}
	// Warm the engine (first-touch faults, session pool) off the clock.
	if _, err := postServe(client, url, 64, cfg.Steps); err != nil {
		return serveVariant{}, err
	}

	type obs struct {
		status  int
		walkers int
		latency time.Duration
	}
	results := make([]obs, offered)
	interval := time.Duration(float64(time.Second) / qps)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < offered; i++ {
		// Open loop: requests fire on the schedule no matter how slow the
		// server is; lateness is the server's problem, not the clients'.
		if sleep := start.Add(time.Duration(i) * interval).Sub(time.Now()); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			walkers := mix[i%len(mix)]
			t0 := time.Now()
			status, err := postServe(client, url, walkers, cfg.Steps)
			if err != nil {
				status = -1
			}
			results[i] = obs{status: status, walkers: walkers, latency: time.Since(t0)}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	v := serveVariant{
		Name:             name,
		WindowMS:         float64(window) / float64(time.Millisecond),
		MaxBatchRequests: maxReq,
		Offered:          offered,
	}
	var lat []time.Duration
	var walkerSteps float64
	for _, r := range results {
		switch r.status {
		case 200:
			v.Served++
			lat = append(lat, r.latency)
			walkerSteps += float64(r.walkers * cfg.Steps)
		case 503:
			v.Shed++
		default:
			v.Failed++
		}
	}
	if v.Served > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		v.P50MS = float64(lat[len(lat)/2]) / float64(time.Millisecond)
		v.P99MS = float64(lat[len(lat)*99/100]) / float64(time.Millisecond)
		v.ReqPerSec = float64(v.Served) / wall.Seconds()
		v.Goodput = walkerSteps / wall.Seconds()
	}
	if h, ok := srv.Metrics().Histogram("serve_batch_requests"); ok && h.Count > 0 {
		v.MeanBatch = float64(h.Sum) / float64(h.Count)
	}
	return v, nil
}
