package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"flashmob"
	"flashmob/internal/rng"
	"flashmob/internal/serve"
)

// dynamicVariant is one measured churn profile: the same open-loop walk
// load against a dynamic server while a configured edge stream lands
// (or doesn't) through POST /v1/ingest.
type dynamicVariant struct {
	Name          string  `json:"name"`
	FreezePerBat  bool    `json:"freeze_per_batch"`
	CompactEvery  int     `json:"compact_every"`
	Offered       int     `json:"offered_requests"`
	Served        int     `json:"served"`
	Shed          int     `json:"shed"`
	Failed        int     `json:"failed"`
	ReqPerSec     float64 `json:"served_req_per_sec"`
	Goodput       float64 `json:"goodput_walker_steps_per_sec"`
	GoodputStd    float64 `json:"goodput_std"`
	P50MS         float64 `json:"served_p50_ms"`
	P99MS         float64 `json:"served_p99_ms"`
	P99StdMS      float64 `json:"p99_std_ms"`
	IngestedEdges float64 `json:"accepted_edges_mean"`
	FinalEpoch    float64 `json:"final_epoch_mean"`
	Compactions   float64 `json:"compactions_mean"`
	GoodputShare  float64 `json:"goodput_vs_quiescent"`
}

// dynamicReport is the schema of BENCH_dynamic.json.
type dynamicReport struct {
	Experiment    string           `json:"experiment"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	Graph         string           `json:"graph"`
	Workers       int              `json:"workers"`
	Steps         int              `json:"steps"`
	MixWalkers    []int            `json:"mix_walkers"`
	OfferedQPS    float64          `json:"offered_qps"`
	EdgesPerBatch int              `json:"edges_per_batch"`
	IngestIntvMS  float64          `json:"ingest_interval_ms"`
	Repeats       int              `json:"repeats"`
	Variants      []dynamicVariant `json:"variants"`
}

// foldDynamicRepeats collapses per-repeat measurements of one churn
// profile the same way foldServeRepeats does for the serve experiment,
// plus the dynamic-side observations (epochs, compactions, accepted
// edges) as per-repeat means.
func foldDynamicRepeats(runs []dynamicVariant) dynamicVariant {
	v := runs[0]
	col := func(f func(dynamicVariant) float64) []float64 {
		xs := make([]float64, len(runs))
		for i, r := range runs {
			xs[i] = f(r)
		}
		return xs
	}
	m := func(f func(dynamicVariant) float64) float64 { mean, _ := meanStd(col(f)); return mean }
	v.Served = int(m(func(r dynamicVariant) float64 { return float64(r.Served) }) + 0.5)
	v.Shed = int(m(func(r dynamicVariant) float64 { return float64(r.Shed) }) + 0.5)
	v.Failed = int(m(func(r dynamicVariant) float64 { return float64(r.Failed) }) + 0.5)
	v.ReqPerSec = m(func(r dynamicVariant) float64 { return r.ReqPerSec })
	v.Goodput, v.GoodputStd = meanStd(col(func(r dynamicVariant) float64 { return r.Goodput }))
	v.P50MS = m(func(r dynamicVariant) float64 { return r.P50MS })
	v.P99MS, v.P99StdMS = meanStd(col(func(r dynamicVariant) float64 { return r.P99MS }))
	v.IngestedEdges = m(func(r dynamicVariant) float64 { return r.IngestedEdges })
	v.FinalEpoch = m(func(r dynamicVariant) float64 { return r.FinalEpoch })
	v.Compactions = m(func(r dynamicVariant) float64 { return r.Compactions })
	return v
}

// expDynamic measures what graph churn costs a serving walk workload:
// the same open-loop walk mix is offered to a dynamic server while an
// edge stream lands through /v1/ingest. Three churn profiles bracket
// the cost — quiescent (no ingest: the walk-on-snapshot tax alone),
// ingest (every batch freezes a new overlay epoch, never compacted),
// and ingest+compact (compactions rebuild and swap the engine under
// load). Zero failed requests is part of the contract: epochs swap,
// walks never break.
func expDynamic(w io.Writer, cfg benchConfig) error {
	const graphName = "YT"
	g, err := presetGraphSized(graphName, cfg, cfg.MinCSR)
	if err != nil {
		return err
	}
	mix := []int{8, 32, 128}

	// Calibrate like the serve experiment — median solo latency on a
	// batch-size-1 server bounds capacity — but offer *below* it: the
	// question here is what churn does to a healthy server (latency
	// inflation, lost goodput, failures), not how overload sheds, so the
	// load must leave the CPU slack for freezes and compactions to
	// actually land.
	solo, err := dynSoloLatency(g, cfg, mix)
	if err != nil {
		return err
	}
	const executors = 2
	capacity := float64(executors) / solo.Seconds()
	qps := 0.35 * capacity
	offered := int(qps * 1.5)
	if offered < 100 {
		offered = 100
	}
	if offered > 1500 {
		offered = 1500
	}
	const (
		edgesPerBatch = 256
		ingestIntv    = 15 * time.Millisecond
	)
	fmt.Fprintf(w, "calibration: solo run %.2fms -> capacity ~%.0f req/s; offering %.0f req/s (%d requests), ingesting %d edges / %s\n\n",
		float64(solo)/float64(time.Millisecond), capacity, qps, offered, edgesPerBatch, ingestIntv)

	reps := cfg.Repeats
	if reps < 1 {
		reps = 1
	}
	rep := dynamicReport{
		Experiment:    "dynamic",
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Graph:         graphName,
		Workers:       cfg.Workers,
		Steps:         cfg.Steps,
		MixWalkers:    mix,
		OfferedQPS:    qps,
		EdgesPerBatch: edgesPerBatch,
		IngestIntvMS:  float64(ingestIntv) / float64(time.Millisecond),
		Repeats:       reps,
	}

	type variantCfg struct {
		name         string
		stream       bool
		compactEvery int
	}
	variants := []variantCfg{
		{"quiescent", false, 0},
		{"ingest", true, 0},
		{"ingest-compact", true, 2},
	}

	// Burn-in: the process's first heavy run pays one-time costs the
	// later ones don't (heap growth, GC pacing, page faults), which
	// otherwise land entirely on whichever variant happens to run first.
	// One unrecorded load levels the field.
	if _, err := runDynamicVariant(g, cfg, "burn-in", false, 0, executors, mix, qps, offered/3+1, edgesPerBatch, ingestIntv, 0); err != nil {
		return err
	}

	row(w, "variant", "served", "shed", "fail", "goodput", "p50-ms", "p99-ms", "epoch", "compact", "vs-quiet")
	var base float64
	for _, vc := range variants {
		runs := make([]dynamicVariant, 0, reps)
		for r := 0; r < reps; r++ {
			one, err := runDynamicVariant(g, cfg, vc.name, vc.stream, vc.compactEvery,
				executors, mix, qps, offered, edgesPerBatch, ingestIntv, uint64(r))
			if err != nil {
				return err
			}
			runs = append(runs, one)
		}
		v := foldDynamicRepeats(runs)
		if base == 0 {
			base = v.Goodput
		}
		v.GoodputShare = v.Goodput / base
		rep.Variants = append(rep.Variants, v)
		row(w, v.Name, big(uint64(v.Served)), big(uint64(v.Shed)), big(uint64(v.Failed)),
			fmt.Sprintf("%.2fM", v.Goodput/1e6), f2(v.P50MS), f2(v.P99MS),
			f2(v.FinalEpoch), f2(v.Compactions), fmt.Sprintf("%.2fx", v.GoodputShare))
	}

	return writeBenchJSON(w, "BENCH_dynamic.json", rep)
}

// newDynServeServer builds a fresh dynamic system behind a serve.Server
// (which owns and closes it) plus an ephemeral-port listener. The
// returned DynamicSystem handle is for reading Stats and driving
// ingest-free freezes; it stays valid until the server is closed.
func newDynServeServer(g *flashmob.Graph, cfg benchConfig, window time.Duration, maxReq, executors, compactEvery int) (*flashmob.DynamicSystem, *serve.Server, *http.Server, string, error) {
	spec := flashmob.DeepWalk()
	d, err := flashmob.NewDynamic(g, flashmob.DynamicOptions{
		Algorithm: spec, Workers: cfg.Workers, Seed: cfg.Seed,
		Undirected: true, RecordPaths: true, CompactEvery: compactEvery,
	})
	if err != nil {
		return nil, nil, nil, "", err
	}
	srv, err := serve.New([]serve.Backend{{Name: "deepwalk", Dyn: d, Spec: spec}}, serve.Config{
		MaxWait:          window,
		MaxBatchRequests: maxReq,
		Executors:        executors,
		Seed:             cfg.Seed,
	})
	if err != nil {
		d.Close()
		return nil, nil, nil, "", err
	}
	srv2, hs, url, err := listenServe(srv)
	return d, srv2, hs, url, err
}

// dynSoloLatency is soloLatency against a dynamic (quiescent) server:
// the per-request cost when nothing is amortized and nothing churns.
func dynSoloLatency(g *flashmob.Graph, cfg benchConfig, mix []int) (time.Duration, error) {
	_, srv, hs, url, err := newDynServeServer(g, cfg, time.Millisecond, 1, 2, 0)
	if err != nil {
		return 0, err
	}
	defer func() { hs.Close(); srv.Close() }()
	client := &http.Client{}
	var lat []time.Duration
	for i := 0; i < 20; i++ {
		t0 := time.Now()
		status, err := postServe(client, url, mix[i%len(mix)], cfg.Steps)
		if err != nil {
			return 0, err
		}
		if status != 200 {
			return 0, fmt.Errorf("calibration request got status %d", status)
		}
		if i >= 4 { // skip warm-up
			lat = append(lat, time.Since(t0))
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)/2], nil
}

// postIngestBatch posts one /v1/ingest body and returns the accepted
// edge count.
func postIngestBatch(client *http.Client, url string, edges [][2]flashmob.VID, freeze bool) (int, error) {
	body, _ := json.Marshal(serve.IngestRequest{Edges: edges, Freeze: freeze})
	resp, err := client.Post(url+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("ingest got status %d", resp.StatusCode)
	}
	var ir serve.IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		return 0, err
	}
	return ir.Accepted, nil
}

// runDynamicVariant offers the open-loop walk load to one fresh dynamic
// server while (optionally) streaming edge batches at it, and folds the
// client-side observations plus the system's final Stats into a
// dynamicVariant.
func runDynamicVariant(g *flashmob.Graph, cfg benchConfig, name string, stream bool, compactEvery, executors int, mix []int, qps float64, offered, edgesPerBatch int, ingestIntv time.Duration, repeat uint64) (dynamicVariant, error) {
	d, srv, hs, url, err := newDynServeServer(g, cfg, 4*time.Millisecond, 0, executors, compactEvery)
	if err != nil {
		return dynamicVariant{}, err
	}
	defer func() { hs.Close(); srv.Close() }()

	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 512},
	}
	// Warm the engine (first-touch faults, snapshot path) off the clock.
	if _, err := postServe(client, url, 64, cfg.Steps); err != nil {
		return dynamicVariant{}, err
	}

	// The ingest stream: deterministic per (seed, repeat), batches drawn
	// over the base vertex space plus 5% growth so compactions have new
	// vertices to absorb (like fmgen -stream). Every batch freezes, so
	// each one publishes an epoch.
	stop := make(chan struct{})
	var streamWG sync.WaitGroup
	var accepted int
	var streamErr error
	if stream {
		streamWG.Add(1)
		go func() {
			defer streamWG.Done()
			src := rng.NewXorShift1024Star(rng.Mix64(cfg.Seed ^ 0xd1_4a3c ^ repeat))
			maxV := g.NumVertices() + g.NumVertices()/20
			tick := time.NewTicker(ingestIntv)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				edges := make([][2]flashmob.VID, edgesPerBatch)
				for i := range edges {
					u := rng.Uint32n(src, maxV)
					v := rng.Uint32n(src, maxV)
					for v == u {
						v = rng.Uint32n(src, maxV)
					}
					edges[i] = [2]flashmob.VID{flashmob.VID(u), flashmob.VID(v)}
				}
				n, err := postIngestBatch(client, url, edges, true)
				if err != nil {
					streamErr = err
					return
				}
				accepted += n
			}
		}()
	}

	type obs struct {
		status  int
		walkers int
		latency time.Duration
	}
	results := make([]obs, offered)
	interval := time.Duration(float64(time.Second) / qps)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < offered; i++ {
		// Open loop: requests fire on schedule regardless of server pace.
		if sleep := start.Add(time.Duration(i) * interval).Sub(time.Now()); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			walkers := mix[i%len(mix)]
			t0 := time.Now()
			status, err := postServe(client, url, walkers, cfg.Steps)
			if err != nil {
				status = -1
			}
			results[i] = obs{status: status, walkers: walkers, latency: time.Since(t0)}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	close(stop)
	streamWG.Wait()
	if streamErr != nil {
		return dynamicVariant{}, streamErr
	}

	v := dynamicVariant{
		Name:         name,
		FreezePerBat: stream,
		CompactEvery: compactEvery,
		Offered:      offered,
	}
	var lat []time.Duration
	var walkerSteps float64
	for _, r := range results {
		switch r.status {
		case 200:
			v.Served++
			lat = append(lat, r.latency)
			walkerSteps += float64(r.walkers * cfg.Steps)
		case 503:
			v.Shed++
		default:
			v.Failed++
		}
	}
	if v.Served > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		v.P50MS = float64(lat[len(lat)/2]) / float64(time.Millisecond)
		v.P99MS = float64(lat[len(lat)*99/100]) / float64(time.Millisecond)
		v.ReqPerSec = float64(v.Served) / wall.Seconds()
		v.Goodput = walkerSteps / wall.Seconds()
	}
	st := d.Stats()
	v.IngestedEdges = float64(accepted)
	v.FinalEpoch = float64(st.Epoch)
	v.Compactions = float64(st.Compactions)
	return v, nil
}
