package main

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"flashmob/internal/algo"
	"flashmob/internal/core"
)

// concurrentVariant is one measured session count: N goroutines each
// running a full Walk on the same engine at the same time.
type concurrentVariant struct {
	Sessions    int     `json:"sessions"`
	WallSeconds float64 `json:"wall_seconds"`
	StepsPerSec float64 `json:"agg_walker_steps_per_sec"`
	NSPerStep   float64 `json:"agg_ns_per_walker_step"`
	Speedup     float64 `json:"speedup_vs_one"`
}

// concurrentReport is the schema of BENCH_concurrent.json.
type concurrentReport struct {
	Experiment string              `json:"experiment"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Graph      string              `json:"graph"`
	Workers    int                 `json:"workers"`
	WalkersPer uint64              `json:"walkers_per_session"`
	Steps      int                 `json:"steps"`
	Variants   []concurrentVariant `json:"variants"`
}

// expConcurrent measures how aggregate throughput behaves when several
// sessions share one engine build. Each session submits its phases to
// the shared worker pool, which serializes multi-worker phases, so the
// interesting question is how much of the per-phase setup, barrier, and
// episode bookkeeping overlaps: near-1× means phases already saturate
// the pool, above 1× means concurrent sessions fill each other's gaps.
func expConcurrent(w io.Writer, cfg benchConfig) error {
	const graphName = "YT"
	g, err := presetGraphSized(graphName, cfg, cfg.MinCSR)
	if err != nil {
		return err
	}
	e, err := flashMobEngine(g, algo.DeepWalk(), cfg, nil)
	if err != nil {
		return err
	}
	defer e.Close()

	// One warm-up run sizes the session pool's buffers and faults in the
	// graph, so the N=1 baseline is not charged for first-touch costs.
	warm, err := e.Run(0, cfg.Steps)
	if err != nil {
		return err
	}

	rep := concurrentReport{
		Experiment: "concurrent",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Graph:      graphName,
		Workers:    cfg.Workers,
		WalkersPer: warm.Walkers,
		Steps:      cfg.Steps,
	}

	row(w, "sessions", "wall-s", "steps/s", "ns/step", "speedup")
	var base float64
	for _, sessions := range []int{1, 2, 4, 8} {
		results := make([]*core.Result, sessions)
		errs := make([]error, sessions)
		var wg sync.WaitGroup
		t0 := time.Now()
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = e.Run(0, cfg.Steps)
			}(i)
		}
		wg.Wait()
		wall := time.Since(t0)
		var totalSteps uint64
		for i := 0; i < sessions; i++ {
			if errs[i] != nil {
				return fmt.Errorf("session %d of %d: %w", i, sessions, errs[i])
			}
			totalSteps += results[i].TotalSteps
		}
		v := concurrentVariant{
			Sessions:    sessions,
			WallSeconds: wall.Seconds(),
			StepsPerSec: float64(totalSteps) / wall.Seconds(),
			NSPerStep:   float64(wall.Nanoseconds()) / float64(totalSteps),
		}
		if base == 0 {
			base = v.StepsPerSec
		}
		v.Speedup = v.StepsPerSec / base
		rep.Variants = append(rep.Variants, v)
		row(w, fmt.Sprintf("%d", sessions), f2(v.WallSeconds),
			fmt.Sprintf("%.2fM", v.StepsPerSec/1e6), ns(v.NSPerStep),
			fmt.Sprintf("%.2fx", v.Speedup))
	}

	return writeBenchJSON(w, "BENCH_concurrent.json", rep)
}
