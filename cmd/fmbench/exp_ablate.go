package main

import (
	"fmt"
	"io"

	"flashmob/internal/mem"
	"flashmob/internal/sim"
)

// expAblate quantifies three design choices the paper discusses, via
// trace simulation on the FS preset:
//
//  1. Exclusive (Skylake) vs inclusive (Broadwell) LLC (§2.3): the large
//     private L2 should capture more of FlashMob's traffic.
//  2. The hardware stream prefetcher: disabling it must push FlashMob's
//     sequential passes to DRAM latency.
//  3. Regular direct indexing for uniform-degree DS partitions (§4.2,
//     §5.2): falling back to CSR offset reads adds accesses and misses.
func expAblate(w io.Writer, cfg benchConfig) error {
	g, err := presetGraph("FS", cfg)
	if err != nil {
		return err
	}
	walkers := int(g.NumVertices())
	steps := 3

	scale := func(geom mem.Geometry) mem.Geometry {
		geom.L1.SizeBytes /= cfg.GeomScale
		geom.L2.SizeBytes /= cfg.GeomScale
		geom.L3.SizeBytes /= cfg.GeomScale
		return geom
	}
	run := func(geom mem.Geometry, mutate func(*sim.FlashMobSim)) (*sim.Report, error) {
		geomModel := simModelFor(geom)
		plan, err := planFor(g, uint64(walkers), geomModel)
		if err != nil {
			return nil, err
		}
		fm, err := sim.NewFlashMobSim(g, plan, geom, cfg.Seed, sim.NumaNone)
		if err != nil {
			return nil, err
		}
		if mutate != nil {
			mutate(fm)
		}
		return fm.Run(walkers, steps)
	}

	row(w, "configuration", "bound-ns/step", "L2-hit/step", "DRAM-acc/step", "accesses/step")
	print := func(label string, rep *sim.Report) {
		row(w, label,
			ns(rep.TotalBoundNSPerStep()),
			cnt(rep.HitsPerStep(mem.LocL2)),
			cnt(rep.HitsPerStep(mem.LocLocalMem)),
			cnt(float64(rep.Stats.Accesses)/float64(rep.TotalSteps)))
	}

	sky, err := run(scale(mem.PaperGeometry()), nil)
	if err != nil {
		return err
	}
	print("exclusive LLC (Skylake)", sky)

	bdw, err := run(scale(mem.BroadwellGeometry()), nil)
	if err != nil {
		return err
	}
	print("inclusive LLC (Broadwell)", bdw)

	noPF := scale(mem.PaperGeometry())
	noPF.PrefetchDepth = 0
	pf, err := run(noPF, nil)
	if err != nil {
		return err
	}
	print("no prefetcher", pf)

	irr, err := run(scale(mem.PaperGeometry()), func(fm *sim.FlashMobSim) {
		fm.DisableRegularIndexing()
	})
	if err != nil {
		return err
	}
	print("no regular DS indexing", irr)

	fmt.Fprintln(w, "\nexpected: the first row wins every column it should (fewer DRAM accesses than")
	fmt.Fprintln(w, "no-prefetcher, fewer accesses than no-regular-indexing, ≥ private hits vs inclusive)")
	return nil
}
