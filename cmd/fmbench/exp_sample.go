package main

import (
	"fmt"
	"io"
	"runtime"

	"flashmob/internal/algo"
	"flashmob/internal/core"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

// sampleWalkers sizes the component measurement so the walker arrays
// (3 × 4 B × walkers ≈ 200 MB plus shuffle staging) overflow the L3: the
// §4.2 sample stage is only interesting in the paper's regime, where the
// walker chunks stream through DRAM and the partition working set is what
// cache residency buys. Smoke runs (MinCSR == 0, as the test harness
// uses) shrink to sampleSmokeWalkers so the suite stays fast.
const (
	sampleWalkers      = 1 << 24
	sampleSmokeWalkers = 1 << 16
)

// sampleVariant is one measured sample-stage configuration.
type sampleVariant struct {
	Workload string `json:"workload"`
	Path     string `json:"path"` // "scalar" or "kernels"
	Workers  int    `json:"workers"`
	// SampleNS is the sample-stage cost per walker-step — the number the
	// kernels exist to shrink.
	SampleNS float64 `json:"sample_ns_per_step"`
	// TotalNS is the full-pipeline cost per walker-step, for context.
	TotalNS float64 `json:"total_ns_per_step"`
}

// sampleReport is the schema of BENCH_sample.json.
type sampleReport struct {
	Experiment string          `json:"experiment"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Walkers    uint64          `json:"walkers"`
	Steps      int             `json:"steps"`
	Variants   []sampleVariant `json:"variants"`
}

// sampleWorkload pins one partition class: a graph plus the spec and
// planner that make the engine select the kernel under test.
type sampleWorkload struct {
	name  string
	build func(cfg benchConfig) (*graph.CSR, algo.Spec, core.PlannerKind, error)
}

// attachWeights gives a generated graph deterministic pseudo-random
// positive edge weights (the generators only emit unweighted CSRs).
func attachWeights(g *graph.CSR, seed uint64) {
	src := rng.NewXorShift1024Star(seed)
	w := make([]float32, len(g.Targets))
	for i := range w {
		w[i] = 0.25 + float32(src.Float64())
	}
	g.Weights = w
}

func sampleWorkloads() []sampleWorkload {
	return []sampleWorkload{
		{"PS", func(cfg benchConfig) (*graph.CSR, algo.Spec, core.PlannerKind, error) {
			g, err := presetGraphSized("FS", cfg, cfg.MinCSR)
			return g, algo.DeepWalk(), core.PlannerUniformPS, err
		}},
		{"DS-regular", func(cfg benchConfig) (*graph.CSR, algo.Spec, core.PlannerKind, error) {
			// Uniform degree 16 → every partition takes the
			// arithmetic-indexing kernel. Size the vertex count so the CSR
			// matches the preset floor (72 B/vertex at d=16).
			v := cfg.TargetV
			if cfg.MinCSR > 0 {
				if need := uint32(cfg.MinCSR / 72); need > v {
					v = need
				}
			}
			g, err := gen.UniformDegree(v, 16, cfg.Seed)
			return g, algo.DeepWalk(), core.PlannerUniformDS, err
		}},
		{"DS-CSR", func(cfg benchConfig) (*graph.CSR, algo.Spec, core.PlannerKind, error) {
			g, err := presetGraphSized("FS", cfg, cfg.MinCSR)
			return g, algo.DeepWalk(), core.PlannerUniformDS, err
		}},
		{"weighted", func(cfg benchConfig) (*graph.CSR, algo.Spec, core.PlannerKind, error) {
			g, err := presetGraphSized("FS", cfg, cfg.MinCSR)
			if err != nil {
				return nil, algo.Spec{}, 0, err
			}
			attachWeights(g, cfg.Seed+3)
			spec := algo.DeepWalk()
			spec.Weighted = true
			return g, spec, core.PlannerMCKP, err
		}},
		{"node2vec", func(cfg benchConfig) (*graph.CSR, algo.Spec, core.PlannerKind, error) {
			g, err := presetGraphSized("FS", cfg, cfg.MinCSR)
			return g, algo.Node2Vec(2, 0.5), core.PlannerMCKP, err
		}},
	}
}

// expSample measures the §4.2 sample stage at DRAM scale: the generic
// scalar path (per-walker policy dispatch, interface-typed RNG draws)
// against the per-partition specialized kernels, across worker counts and
// the partition classes {PS, DS-regular, DS-CSR, weighted, node2vec}.
// The metric is sample-stage nanoseconds per walker-step from the
// engine's stage split, so shuffle cost is excluded. Results land in
// BENCH_sample.json next to the table.
func expSample(w io.Writer, cfg benchConfig) error {
	walkers := uint64(sampleWalkers)
	steps := 3
	if cfg.MinCSR == 0 {
		walkers = sampleSmokeWalkers
		steps = 2
	}
	rep := sampleReport{
		Experiment: "sample",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Walkers:    walkers,
		Steps:      steps,
	}

	workerCounts := []int{1}
	if cfg.Workers != 1 {
		workerCounts = append(workerCounts, cfg.Workers)
	}

	row(w, "workload", "path", "workers", "sample-ns/step", "total-ns/step")
	for _, wl := range sampleWorkloads() {
		g, spec, planner, err := wl.build(cfg)
		if err != nil {
			return err
		}
		for _, workers := range workerCounts {
			for _, scalar := range []bool{true, false} {
				e, err := flashMobEngine(g, spec, cfg, func(c *core.Config) {
					c.Workers = workers
					c.Planner = planner
					c.ScalarSample = scalar
				})
				if err != nil {
					return err
				}
				res, err := e.Run(walkers, steps)
				e.Close()
				if err != nil {
					return err
				}
				path := "kernels"
				if scalar {
					path = "scalar"
				}
				v := sampleVariant{
					Workload: wl.name,
					Path:     path,
					Workers:  workers,
					SampleNS: float64(res.SampleTime.Nanoseconds()) / float64(res.TotalSteps),
					TotalNS:  res.PerStepNS(),
				}
				rep.Variants = append(rep.Variants, v)
				row(w, wl.name, path, fmt.Sprintf("%d", workers), ns(v.SampleNS), ns(v.TotalNS))
			}
		}
		// Free the workload's graph (and any engine-sized state) before
		// the next one allocates.
		g = nil
		runtime.GC()
	}

	return writeBenchJSON(w, "BENCH_sample.json", rep)
}
