// Command fmbench regenerates every table and figure of the paper's
// evaluation on synthetic stand-in graphs (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	fmbench -exp fig8a                 # one experiment
//	fmbench -exp all                   # everything (minutes)
//	fmbench -exp table2 -targetv 50000 # smaller graphs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
)

// benchConfig is shared by all experiments.
type benchConfig struct {
	// TargetV scales each preset graph to about this many vertices.
	TargetV uint32
	// Steps is the walk length used by timing experiments.
	Steps int
	// Seed drives all randomness.
	Seed uint64
	// Workers is the thread count for real-engine runs.
	Workers int
	// GeomScale divides the simulated cache geometry for trace-driven
	// experiments, so scaled-down graphs keep the paper's graph:cache
	// size ratios.
	GeomScale uint64
	// MinSteps is the per-point budget for micro-benchmarks.
	MinSteps uint64
	// MinCSR floors the CSR footprint of preset graphs in wall-clock
	// experiments, keeping "huge graph" cases DRAM-resident on the host
	// (0 disables).
	MinCSR uint64
	// ProfMaxEdges caps the synthetic-partition size of profiling
	// micro-benchmarks (memory safety on small hosts).
	ProfMaxEdges uint64
	// Repeats is how many times measurement-style experiments rerun each
	// configuration; their BENCH_*.json output then records mean and
	// standard deviation across the repeats. The -repeats flag is
	// validated to be >= 1 up front; the zero value (in-process callers
	// like the test harness) still behaves as 1.
	Repeats int
}

type experiment struct {
	name string
	desc string
	run  func(w io.Writer, cfg benchConfig) error
}

var experiments = []experiment{
	{"table1", "load latency: sequential/random/pointer-chase across the hierarchy (measured on host + paper reference)", expTable1},
	{"table2", "DeepWalk visit statistics by degree group on all five graph presets", expTable2},
	{"table4", "graph datasets (synthetic stand-ins vs paper)", expTable4},
	{"table5", "memory-hierarchy profiling case study on FS and UK (simulated)", expTable5},
	{"fig1a", "per-step time: KnightKing on cache-sized toys + YT/YH vs FlashMob on YT/YH", expFig1a},
	{"fig1b", "per-step cache miss breakdown: KnightKing vs FlashMob on YT/YH (simulated)", expFig1b},
	{"fig6", "sample-stage cost vs degree/cache level/density for PS and DS (measured)", expFig6},
	{"fig8a", "DeepWalk per-step time: GraphVite vs KnightKing vs FlashMob on five graphs", expFig8a},
	{"fig8b", "node2vec per-step time: KnightKing vs FlashMob on five graphs", expFig8b},
	{"fig9a", "FlashMob walk-time breakdown: sample/shuffle/other", expFig9a},
	{"fig9b", "planner comparison: MCKP DP vs Uniform-PS/DS vs Manual", expFig9b},
	{"fig10", "DP-identified partition layout per graph (VP sizes and policies)", expFig10},
	{"fig11a", "FlashMob speed vs growing |V| (YH-shaped synthetic graphs)", expFig11a},
	{"fig11b", "FlashMob speed vs walker count (density sweep on TW)", expFig11b},
	{"fig12", "NUMA modes: FlashMob-P vs FlashMob-R (time, density, remote accesses)", expFig12},
	{"shuffle", "§4.3 shuffle stage at DRAM scale: write-combining × pool variants + end-to-end split (writes BENCH_shuffle.json)", expShuffle},
	{"sample", "§4.2 sample stage at DRAM scale: scalar vs specialized kernels across partition classes (writes BENCH_sample.json)", expSample},
	{"concurrent", "concurrent sessions on one engine build: aggregate walker-steps/s vs session count (writes BENCH_concurrent.json)", expConcurrent},
	{"serve", "walk-query serving: open-loop load on batch-size-1 vs coalescing windows (writes BENCH_serve.json)", expServe},
	{"mixed", "mixed-algorithm serving: one mixed-cohort run per wave vs the fragmented per-(algorithm, steps) baseline (writes BENCH_mixed.json)", expMixed},
	{"shard", "sharded topology sweep: shard count x transport (chan, TCP pair) vs the single engine on identical cohorts (writes BENCH_shard.json)", expShard},
	{"dynamic", "ingest-under-load: walk goodput and tail latency while an edge stream freezes epochs and compactions swap the engine (writes BENCH_dynamic.json)", expDynamic},
	{"prep", "pre-processing overhead: counting sort + MCKP planning", expPrep},
	{"ooc", "out-of-core streaming: prefetch depth / IO workers / parallel sampling / resident tier overlap curve (§4.5 future work)", expOOC},
	{"ablate", "design-choice ablations: LLC policy, prefetcher, regular DS indexing (simulated)", expAblate},
	{"report", "observability demo: one metered DeepWalk run, annotated counters + full JSON report (docs/OBSERVABILITY.md)", expReport},
}

func main() {
	var (
		expFlag = flag.String("exp", "", "experiment name(s), comma separated, or 'all'")
		targetV = flag.Uint("targetv", 100_000, "approximate vertex count for scaled preset graphs")
		steps   = flag.Int("steps", 16, "walk length for timing experiments")
		seed    = flag.Uint64("seed", 42, "seed")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker threads")
		minCSR  = flag.Uint64("mincsr", 48<<20, "minimum CSR bytes for DRAM-resident wall-clock experiments")
		repeats = flag.Int("repeats", 1, "repeat each measured configuration N times; BENCH_*.json records mean/std")
		metrics = flag.String("metrics", "", "write a JSON metrics report for every engine-backed run to this file (see docs/OBSERVABILITY.md)")
		outdir  = flag.String("outdir", ".", "directory BENCH_*.json artifacts are written into (created if missing)")
		list    = flag.Bool("list", false, "list experiments")
	)
	flag.Parse()

	if err := validateFlags(*repeats, *steps, *workers, *targetV); err != nil {
		fmt.Fprintf(os.Stderr, "fmbench: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "fmbench: -outdir: %v\n", err)
		os.Exit(2)
	}
	benchOutDir = *outdir

	if *metrics != "" {
		collector = &metricsCollector{}
	}

	if *list || *expFlag == "" {
		fmt.Println("experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-8s %s\n", e.name, e.desc)
		}
		if *expFlag == "" {
			os.Exit(2)
		}
		return
	}

	cfg := benchConfig{
		TargetV:      uint32(*targetV),
		Steps:        *steps,
		Seed:         *seed,
		Workers:      *workers,
		GeomScale:    64,
		MinSteps:     300_000,
		MinCSR:       *minCSR,
		ProfMaxEdges: 1 << 26,
		Repeats:      *repeats,
	}

	names := strings.Split(*expFlag, ",")
	if *expFlag == "all" {
		names = names[:0]
		for _, e := range experiments {
			names = append(names, e.name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		e, ok := findExperiment(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "fmbench: unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		collector.setExperiment(e.name)
		if err := e.run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "fmbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *metrics != "" {
		if err := collector.writeFile(*metrics); err != nil {
			fmt.Fprintf(os.Stderr, "fmbench: writing -metrics file: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics report written to %s\n", *metrics)
	}
}

// validateFlags rejects nonsensical flag combinations before any
// experiment runs. -repeats in particular used to coerce 0 to 1
// silently inside each experiment while the flag's stated contract was
// "repeat N times" — now every out-of-range value is a usage error up
// front, so a typo cannot quietly record a single-run artifact that
// claims repeat semantics.
func validateFlags(repeats, steps, workers int, targetV uint) error {
	if repeats < 1 {
		return fmt.Errorf("-repeats %d: must be >= 1", repeats)
	}
	if steps < 1 {
		return fmt.Errorf("-steps %d: must be >= 1", steps)
	}
	if workers < 1 {
		return fmt.Errorf("-workers %d: must be >= 1", workers)
	}
	if targetV == 0 {
		return fmt.Errorf("-targetv 0: must be >= 1")
	}
	if targetV > 1<<31 {
		return fmt.Errorf("-targetv %d: exceeds the 2^31 vertex-ID space", targetV)
	}
	return nil
}

func findExperiment(name string) (experiment, bool) {
	for _, e := range experiments {
		if e.name == name {
			return e, true
		}
	}
	return experiment{}, false
}
