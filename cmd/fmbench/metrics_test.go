package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/obs"
	"flashmob/internal/ooc"
)

// collectReports runs one core engine and one ooc engine through the
// -metrics collector machinery and returns the parsed report file.
func collectReports(t *testing.T) reportFile {
	t.Helper()
	cfg := tinyConfig()
	old := collector
	collector = &metricsCollector{}
	defer func() { collector = old }()
	collector.setExperiment("test")

	g, err := presetGraph("YT", cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := flashMobEngine(g, algo.DeepWalk(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Run(0, cfg.Steps); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	gf, err := graph.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	oe, err := ooc.New(gf, ooc.Config{Seed: cfg.Seed, Metrics: true, ResidentBudget: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer oe.Close()
	collector.register(oe.MetricsReport)
	if _, err := oe.Run(context.Background(), 0, 2); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "metrics.json")
	if err := collector.writeFile(out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rf reportFile
	if err := json.Unmarshal(data, &rf); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	return rf
}

// TestMetricsFileSchema verifies the -metrics collector end to end: the
// file parses, carries the schema version, and tags every report with
// its experiment.
func TestMetricsFileSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("engine run skipped in -short")
	}
	rf := collectReports(t)
	if rf.SchemaVersion != obs.ReportSchemaVersion {
		t.Errorf("schema_version %d, want %d", rf.SchemaVersion, obs.ReportSchemaVersion)
	}
	if len(rf.Reports) != 2 {
		t.Fatalf("got %d reports, want 2 (core + ooc)", len(rf.Reports))
	}
	for _, r := range rf.Reports {
		if r.Experiment != "test" {
			t.Errorf("report tagged %q, want \"test\"", r.Experiment)
		}
		if r.Report == nil || len(r.Report.Counters) == 0 {
			t.Error("report missing counters")
		}
	}
}

// TestEveryMetricDocumented enforces the documentation contract: every
// metric name that can appear in a report, and every JSON field the
// report schema emits, must be mentioned in docs/OBSERVABILITY.md.
func TestEveryMetricDocumented(t *testing.T) {
	if testing.Short() {
		t.Skip("engine run skipped in -short")
	}
	docBytes, err := os.ReadFile(filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("docs/OBSERVABILITY.md missing: %v", err)
	}
	doc := string(docBytes)

	rf := collectReports(t)
	for _, tagged := range rf.Reports {
		r := tagged.Report
		var names []string
		for _, c := range r.Counters {
			names = append(names, c.Name)
		}
		for _, g := range r.Gauges {
			names = append(names, g.Name)
		}
		for _, h := range r.Histograms {
			names = append(names, h.Name)
		}
		for _, v := range r.Vectors {
			names = append(names, v.Name)
		}
		for _, n := range names {
			if !strings.Contains(doc, "`"+n+"`") {
				t.Errorf("metric %q not documented in docs/OBSERVABILITY.md", n)
			}
		}
	}

	// The JSON schema fields themselves.
	for _, field := range []string{
		`"schema_version"`, `"counters"`, `"gauges"`, `"histograms"`, `"vectors"`,
		`"name"`, `"unit"`, `"stage"`, `"help"`, `"value"`,
		`"count"`, `"sum"`, `"buckets"`, `"le"`, `"labels"`, `"values"`,
		`"reports"`, `"experiment"`, `"report"`,
	} {
		if !strings.Contains(doc, field) {
			t.Errorf("JSON field %s not documented in docs/OBSERVABILITY.md", field)
		}
	}
}
