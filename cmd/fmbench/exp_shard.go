package main

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"flashmob"
)

// shardVariant is one measured topology under the identical mixed-cohort
// workload, aggregated over repeats.
type shardVariant struct {
	Name      string  `json:"name"`
	Transport string  `json:"transport"`
	Shards    int     `json:"shards"`
	Goodput   float64 `json:"goodput_walker_steps_per_sec"`
	Std       float64 `json:"goodput_std"`
	RunMS     float64 `json:"mean_run_ms"`
	Emigrants uint64  `json:"emigrants_per_run"`
	Frames    uint64  `json:"frames_per_run"`
	VsSingle  float64 `json:"goodput_vs_single"`
}

// shardReport is the schema of BENCH_shard.json.
type shardReport struct {
	Experiment  string         `json:"experiment"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Graph       string         `json:"graph"`
	Workers     int            `json:"workers"`
	MixWalkers  []uint64       `json:"mix_walkers"`
	MixSteps    []int          `json:"mix_steps"`
	WalkerSteps uint64         `json:"walker_steps_per_run"`
	Repeats     int            `json:"repeats"`
	PathsHash   uint64         `json:"paths_hash"`
	Note        string         `json:"note"`
	Variants    []shardVariant `json:"variants"`
}

// expShard sweeps the sharded topology — shard count for the in-process
// channel exchange, plus a two-shard TCP pair — against the single-engine
// baseline on one mixed-cohort workload. Every variant executes the
// bitwise-identical walk (the report carries one paths_hash all variants
// must reproduce), so the goodput column isolates pure topology overhead:
// superstep barriers, exchange staging, and (for TCP) framing and the
// loopback round trips. On a multi-core host with one engine per core the
// sweep shows sharding's scaling; on a single-core host every shard
// timeshares the same core, so vs_single below 1.0 is the honest price of
// the exchange machinery, not a regression — the note field records which
// reading applies.
func expShard(w io.Writer, cfg benchConfig) error {
	const graphName = "YT"
	g, err := presetGraphSized(graphName, cfg, cfg.MinCSR)
	if err != nil {
		return err
	}
	opt := flashmob.Options{
		Algorithm: flashmob.DeepWalk(), Workers: cfg.Workers, Seed: cfg.Seed,
		RecordPaths: true, PlanWalkers: 8192,
	}
	sys, err := flashmob.New(g, opt)
	if err != nil {
		return err
	}
	defer sys.Close()

	steps := cfg.Steps
	if steps < 2 {
		steps = 2
	}
	cohorts := []flashmob.CohortSpec{
		{Algorithm: flashmob.DeepWalk(), Walkers: 4096, Steps: 2 * steps, Seed: 101},
		{Algorithm: flashmob.Node2Vec(0.5, 2), Walkers: 1024, Steps: steps, Seed: 102},
	}
	rep := shardReport{
		Experiment: "shard",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Graph:      graphName,
		Workers:    cfg.Workers,
		Repeats:    cfg.Repeats,
	}
	for _, c := range cohorts {
		rep.MixWalkers = append(rep.MixWalkers, c.Walkers)
		rep.MixSteps = append(rep.MixSteps, c.Steps)
		rep.WalkerSteps += c.Walkers * uint64(c.Steps)
	}
	if rep.Repeats < 1 {
		rep.Repeats = 1
	}
	if rep.GOMAXPROCS == 1 {
		rep.Note = "single-core host: shards timeshare one core, so goodput_vs_single < 1 is the exchange overhead curve, not scaling"
	} else {
		rep.Note = "multi-core host: goodput_vs_single is the sharded scaling curve"
	}
	fmt.Fprintf(w, "|V|=%d |E|=%d, %v walkers x %v steps (%d walker-steps/run), x%d repeats\n%s\n\n",
		g.NumVertices(), g.NumEdges(), rep.MixWalkers, rep.MixSteps, rep.WalkerSteps, rep.Repeats, rep.Note)

	// run measures one executor closure: a warm-up run off the clock, then
	// the timed repeats, hashing every repeat's paths for the
	// identical-output check.
	run := func(exec func() (*flashmob.MixedResult, error)) (shardVariant, error) {
		var v shardVariant
		if _, err := exec(); err != nil {
			return v, err
		}
		goodputs := make([]float64, 0, rep.Repeats)
		var runMS float64
		for r := 0; r < rep.Repeats; r++ {
			t0 := time.Now()
			res, err := exec()
			dt := time.Since(t0)
			if err != nil {
				return v, err
			}
			h, err := hashPaths(res)
			if err != nil {
				return v, err
			}
			if rep.PathsHash == 0 {
				rep.PathsHash = h
			} else if h != rep.PathsHash {
				return v, fmt.Errorf("shard: paths diverged: hash %x, want %x", h, rep.PathsHash)
			}
			goodputs = append(goodputs, float64(rep.WalkerSteps)/dt.Seconds())
			runMS += float64(dt) / float64(time.Millisecond)
		}
		v.Goodput, v.Std = meanStd(goodputs)
		v.RunMS = runMS / float64(rep.Repeats)
		return v, nil
	}

	row(w, "variant", "transport", "shards", "goodput", "run-ms", "emigrants", "frames", "vs-single")
	emit := func(v shardVariant) {
		rep.Variants = append(rep.Variants, v)
		row(w, v.Name, v.Transport, big(uint64(v.Shards)), fmt.Sprintf("%.2fM", v.Goodput/1e6),
			f2(v.RunMS), big(v.Emigrants), big(v.Frames), fmt.Sprintf("%.2fx", v.VsSingle))
	}

	// Single-engine baseline: the same cohorts on the plain System.
	base, err := run(func() (*flashmob.MixedResult, error) { return sys.WalkMixed(cohorts) })
	if err != nil {
		return err
	}
	base.Name, base.Transport, base.Shards, base.VsSingle = "single", "none", 1, 1
	emit(base)

	// In-process sharded topologies: channel exchange at 1, 2, 4 shards.
	for _, shards := range []int{1, 2, 4} {
		ss, err := flashmob.NewSharded(sys, shards)
		if err != nil {
			return err
		}
		v, err := run(func() (*flashmob.MixedResult, error) {
			return ss.WalkMixed(context.Background(), cohorts)
		})
		if err != nil {
			return fmt.Errorf("chan-%d: %w", shards, err)
		}
		v.Name = fmt.Sprintf("chan-%d", shards)
		v.Transport, v.Shards = "chan", shards
		v.Emigrants, v.Frames = shardExchangeTotals(ss.MetricsReport(), rep.Repeats+1)
		v.VsSingle = v.Goodput / base.Goodput
		emit(v)
	}

	// Two-shard TCP pair over loopback: each worker is a full shard
	// engine (the fmserve -shard-worker process, hosted in-process here),
	// the coordinator places walkers and collects paths over the wire.
	v, err := runShardTCP(g, opt, sys, cohorts, rep.Repeats+1, run)
	if err != nil {
		return fmt.Errorf("tcp-2: %w", err)
	}
	v.VsSingle = v.Goodput / base.Goodput
	emit(v)

	return writeBenchJSON(w, "BENCH_shard.json", rep)
}

// runShardTCP hosts a two-worker loopback mesh for the TCP variant and
// tears it down (context cancel, both workers drained) before returning.
// runs is the mesh's total run count (warm-up included), the divisor that
// turns the exchange's cumulative counters into per-run figures.
func runShardTCP(g *flashmob.Graph, opt flashmob.Options, sys *flashmob.System,
	cohorts []flashmob.CohortSpec, runs int,
	run func(func() (*flashmob.MixedResult, error)) (shardVariant, error)) (shardVariant, error) {
	addrs := []string{"127.0.0.1:17861", "127.0.0.1:17862"}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	werrs := make([]error, len(addrs))
	for i := range addrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			werrs[i] = flashmob.ServeShardWorker(ctx, g, opt, i, addrs)
		}(i)
	}
	defer wg.Wait()
	defer cancel()
	for _, a := range addrs {
		for tries := 0; ; tries++ {
			c, err := net.DialTimeout("tcp", a, time.Second)
			if err == nil {
				c.Close()
				break
			}
			if tries > 200 {
				return shardVariant{}, fmt.Errorf("worker %s never came up: %w", a, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	ss, err := flashmob.NewShardedRemote(sys, addrs)
	if err != nil {
		return shardVariant{}, err
	}
	v, err := run(func() (*flashmob.MixedResult, error) {
		return ss.WalkMixed(context.Background(), cohorts)
	})
	if err != nil {
		return shardVariant{}, err
	}
	v.Name, v.Transport, v.Shards = "tcp-2", "tcp", 2
	v.Emigrants, v.Frames = shardExchangeTotals(ss.MetricsReport(), runs)
	return v, nil
}

// shardExchangeTotals sums the exchange's per-shard emigrant and frame
// vectors out of a topology metrics report and divides by the topology's
// run count (the counters accumulate across warm-up and repeats; every
// run moves the same walkers, so the division is exact).
func shardExchangeTotals(rep *flashmob.Report, runs int) (emigrants, frames uint64) {
	if runs < 1 {
		runs = 1
	}
	if v, ok := rep.Vector("shard_emigrants_total"); ok {
		emigrants = v.Total() / uint64(runs)
	}
	if v, ok := rep.Vector("shard_exchange_frames_total"); ok {
		frames = v.Total() / uint64(runs)
	}
	return emigrants, frames
}

// hashPaths folds every cohort's every trajectory into one FNV-1a word —
// the cheap bitwise-identity check each variant must reproduce.
func hashPaths(res *flashmob.MixedResult) (uint64, error) {
	h := fnv.New64a()
	var buf [4]byte
	for c := 0; c < res.NumCohorts(); c++ {
		paths, err := res.Paths(c)
		if err != nil {
			return 0, err
		}
		for _, p := range paths {
			for _, v := range p {
				buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
				h.Write(buf[:])
			}
		}
	}
	return h.Sum64(), nil
}
