package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"flashmob"
	"flashmob/internal/serve"
)

// mixedAlgos is the served algorithm mix: a uniform first-order walk, a
// second-order node2vec walk, and a PPR-style stochastic-termination
// walk — one backend each, all sharing one built system.
var mixedAlgos = []string{"deepwalk", "node2vec", "pagerank"}

// mixedVariant is one measured server configuration under the same
// closed-loop mixed-algorithm load, aggregated over repeats.
type mixedVariant struct {
	Name            string  `json:"name"`
	SplitCohortRuns bool    `json:"split_cohort_runs"`
	Served          int     `json:"served"`
	Shed            int     `json:"shed"`
	Failed          int     `json:"failed"`
	ReqPerSec       float64 `json:"served_req_per_sec"`
	Goodput         float64 `json:"goodput_walker_steps_per_sec"`
	GoodputStd      float64 `json:"goodput_std"`
	P50MS           float64 `json:"served_p50_ms"`
	P99MS           float64 `json:"served_p99_ms"`
	P99StdMS        float64 `json:"p99_std_ms"`
	RunsPerBatch    float64 `json:"runs_per_batch"`
	CohortsPerRun   float64 `json:"mean_run_cohorts"`
	RunMS           float64 `json:"mean_run_ms"`
	Speedup         float64 `json:"goodput_vs_split"`
}

// mixedReport is the schema of BENCH_mixed.json.
type mixedReport struct {
	Experiment string         `json:"experiment"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Graph      string         `json:"graph"`
	Workers    int            `json:"workers"`
	Steps      int            `json:"steps"`
	Algorithms []string       `json:"algorithms"`
	MixWalkers []int          `json:"mix_walkers"`
	MixSteps   []int          `json:"mix_steps"`
	Clients    int            `json:"clients"`
	Requests   int            `json:"requests_per_repeat"`
	Repeats    int            `json:"repeats"`
	Variants   []mixedVariant `json:"variants"`
}

// expMixed measures what mixed-cohort execution buys a walk-query
// service under realistic heterogeneous traffic: the same closed-loop
// load — seeded (reproducible) uniform + node2vec + PPR requests of
// 8/32/128 walkers at half/1x/2x the configured step count — is served
// once with SplitCohortRuns and once with mixed-cohort runs, where a
// whole wave is one engine run whatever algorithms and step counts it
// holds (shorter cohorts retire from the sweep early). Every request
// carries a seed because that is the traffic mixed execution exists
// for: a seeded request needs a private cohort (its trajectories may
// not depend on its neighbors), so without mixed runs it cannot
// coalesce at all — the fragmented baseline degenerates to one engine
// run per request, paying the session, walker-array, and
// partition-sweep overhead once per request per wave, while the mixed
// server pays it once for the whole wave. Closed-loop clients keep
// both servers saturated, so the goodput ratio is the capacity ratio.
func expMixed(w io.Writer, cfg benchConfig) error {
	const graphName = "YH"
	g, err := presetGraphSized(graphName, cfg, cfg.MinCSR)
	if err != nil {
		return err
	}
	mix := []int{8, 32, 128}
	// Embedding-style walk lengths: 32/64/128 at the default -steps 16,
	// centered on the 80-step standard of the DeepWalk/node2vec papers.
	stepsMix := []int{cfg.Steps * 2, cfg.Steps * 4, cfg.Steps * 8}
	for i := range stepsMix {
		if stepsMix[i] < 1 {
			stepsMix[i] = 1
		}
	}
	const (
		clients   = 36
		perClient = 16
		executors = 1
		batchCap  = clients
	)
	reps := cfg.Repeats
	if reps < 1 {
		reps = 1
	}
	fmt.Fprintf(w, "closed loop: %d clients x %d requests, %d algorithms x %v walkers x %v steps, x%d repeats per variant\n\n",
		clients, perClient, len(mixedAlgos), mix, stepsMix, reps)

	rep := mixedReport{
		Experiment: "mixed",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Graph:      graphName,
		Workers:    cfg.Workers,
		Steps:      cfg.Steps,
		Algorithms: mixedAlgos,
		MixWalkers: mix,
		MixSteps:   stepsMix,
		Clients:    clients,
		Requests:   clients * perClient,
		Repeats:    reps,
	}

	variants := []struct {
		name  string
		split bool
	}{
		{"split-cohort-runs", true},
		{"mixed", false},
	}
	row(w, "variant", "served", "req/s", "goodput", "p50-ms", "p99-ms", "run-ms", "runs/batch", "cohorts/run", "vs-split")
	var base float64
	for _, vc := range variants {
		runs := make([]mixedVariant, 0, reps)
		for r := 0; r < reps; r++ {
			one, err := runMixedVariant(g, cfg, vc.name, vc.split, clients, perClient, executors, batchCap, mix, stepsMix)
			if err != nil {
				return err
			}
			runs = append(runs, one)
		}
		v := foldMixedRepeats(runs)
		if base == 0 {
			base = v.Goodput
		}
		v.Speedup = v.Goodput / base
		rep.Variants = append(rep.Variants, v)
		row(w, v.Name, big(uint64(v.Served)), fmt.Sprintf("%.0f", v.ReqPerSec),
			fmt.Sprintf("%.2fM", v.Goodput/1e6), f2(v.P50MS), f2(v.P99MS), f2(v.RunMS),
			f2(v.RunsPerBatch), f2(v.CohortsPerRun), fmt.Sprintf("%.2fx", v.Speedup))
	}

	return writeBenchJSON(w, "BENCH_mixed.json", rep)
}

// newMixedServeServer builds one shared system (DeepWalk build primary)
// serving all three algorithm backends — the cmd/fmserve shared-build
// topology — on an ephemeral port. The partition plan is priced for
// wave-sized walker counts (PlanWalkers, the fmserve -plan-walkers knob)
// rather than the |V|-walker bulk default: at serving densities
// pre-sampling's degree-sized hub refills are almost entirely wasted, so
// the serving-aware plan direct-samples instead. Both variants share the
// build, so the split/mixed ratio still isolates run fragmentation.
func newMixedServeServer(fg *flashmob.Graph, cfg benchConfig, split bool, executors, batchCap int) (*serve.Server, *http.Server, string, error) {
	sys, err := flashmob.New(fg, flashmob.Options{
		Algorithm: flashmob.DeepWalk(), Workers: cfg.Workers, Seed: cfg.Seed, RecordPaths: true,
		PlanWalkers: 2048,
	})
	if err != nil {
		return nil, nil, "", err
	}
	srv, err := serve.New([]serve.Backend{
		{Name: "deepwalk", Sys: sys, Spec: flashmob.DeepWalk()},
		{Name: "node2vec", Sys: sys, Spec: flashmob.Node2Vec(4, 0.25)},
		{Name: "pagerank", Sys: sys, Spec: flashmob.PageRankWalk(0.85)},
	}, serve.Config{
		MaxWait:          10 * time.Millisecond,
		MaxBatchRequests: batchCap,
		Executors:        executors,
		Seed:             cfg.Seed,
		SplitCohortRuns:  split,
	})
	if err != nil {
		sys.Close()
		return nil, nil, "", err
	}
	return listenServe(srv)
}

// postServeAlgo issues one walk query against a named backend (seeded
// when seed is non-nil) and discards the body.
func postServeAlgo(client *http.Client, url, algo string, walkers, steps int, seed *uint64) (int, error) {
	body, _ := json.Marshal(serve.WalkRequest{Walkers: walkers, Steps: steps, Algorithm: algo, Seed: seed})
	resp, err := client.Post(url+"/v1/walk", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// runMixedVariant drives one closed-loop repeat against a fresh server
// and folds the client- and server-side observations into a
// mixedVariant.
func runMixedVariant(fg *flashmob.Graph, cfg benchConfig, name string, split bool, clients, perClient, executors, batchCap int, mix, stepsMix []int) (mixedVariant, error) {
	srv, hs, url, err := newMixedServeServer(fg, cfg, split, executors, batchCap)
	if err != nil {
		return mixedVariant{}, err
	}
	defer func() { hs.Close(); srv.Close() }()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	// Warm the engine and every backend off the clock.
	for _, a := range mixedAlgos {
		if _, err := postServeAlgo(client, url, a, 64, cfg.Steps, nil); err != nil {
			return mixedVariant{}, err
		}
	}

	type obs struct {
		status      int
		walkerSteps int
		latency     time.Duration
	}
	results := make([]obs, clients*perClient)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				// Closed-loop clients advance in near-lockstep (a wave
				// releases them together), so offset the rotations by client:
				// at any instant the client population covers all three
				// algorithms at all three step counts and walker sizes, and
				// every wave fragments the split baseline into its full
				// per-(algorithm, steps) group spread.
				idx := c*perClient + j
				algo := mixedAlgos[(c+j)%len(mixedAlgos)]
				steps := stepsMix[(c/len(mixedAlgos)+2*j)%len(stepsMix)]
				walkers := mix[(c/len(mixedAlgos)+j)%len(mix)]
				seed := uint64(1 + idx) // reproducible queries: unique seed per request
				t0 := time.Now()
				status, err := postServeAlgo(client, url, algo, walkers, steps, &seed)
				if err != nil {
					status = -1
				}
				results[idx] = obs{status: status, walkerSteps: walkers * steps, latency: time.Since(t0)}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	v := mixedVariant{Name: name, SplitCohortRuns: split}
	var lat []time.Duration
	var walkerSteps float64
	for _, r := range results {
		switch r.status {
		case 200:
			v.Served++
			lat = append(lat, r.latency)
			walkerSteps += float64(r.walkerSteps)
		case 503:
			v.Shed++
		default:
			v.Failed++
		}
	}
	if v.Served > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		v.P50MS = float64(lat[len(lat)/2]) / float64(time.Millisecond)
		v.P99MS = float64(lat[len(lat)*99/100]) / float64(time.Millisecond)
		v.ReqPerSec = float64(v.Served) / wall.Seconds()
		v.Goodput = walkerSteps / wall.Seconds()
	}
	runsC, _ := srv.Metrics().Counter("serve_runs_total")
	batchesC, _ := srv.Metrics().Counter("serve_batches_total")
	if batchesC.Value > 0 {
		v.RunsPerBatch = float64(runsC.Value) / float64(batchesC.Value)
	}
	if h, ok := srv.Metrics().Histogram("serve_run_cohorts"); ok && h.Count > 0 {
		v.CohortsPerRun = float64(h.Sum) / float64(h.Count)
	}
	if h, ok := srv.Metrics().Histogram("serve_batch_run_ns"); ok && h.Count > 0 {
		v.RunMS = float64(h.Sum) / float64(h.Count) / 1e6
	}
	return v, nil
}

// foldMixedRepeats collapses per-repeat measurements of one variant into
// one record, mirroring foldServeRepeats: counts become per-repeat means
// (rounded), rates and latencies carry the mean, goodput and tail
// latency also record the standard deviation.
func foldMixedRepeats(runs []mixedVariant) mixedVariant {
	v := runs[0]
	col := func(f func(mixedVariant) float64) []float64 {
		xs := make([]float64, len(runs))
		for i, r := range runs {
			xs[i] = f(r)
		}
		return xs
	}
	m := func(f func(mixedVariant) float64) float64 { mean, _ := meanStd(col(f)); return mean }
	v.Served = int(m(func(r mixedVariant) float64 { return float64(r.Served) }) + 0.5)
	v.Shed = int(m(func(r mixedVariant) float64 { return float64(r.Shed) }) + 0.5)
	v.Failed = int(m(func(r mixedVariant) float64 { return float64(r.Failed) }) + 0.5)
	v.ReqPerSec = m(func(r mixedVariant) float64 { return r.ReqPerSec })
	v.Goodput, v.GoodputStd = meanStd(col(func(r mixedVariant) float64 { return r.Goodput }))
	v.P50MS = m(func(r mixedVariant) float64 { return r.P50MS })
	v.P99MS, v.P99StdMS = meanStd(col(func(r mixedVariant) float64 { return r.P99MS }))
	v.RunsPerBatch = m(func(r mixedVariant) float64 { return r.RunsPerBatch })
	v.CohortsPerRun = m(func(r mixedVariant) float64 { return r.CohortsPerRun })
	v.RunMS = m(func(r mixedVariant) float64 { return r.RunMS })
	return v
}
