package main

import (
	"fmt"
	"io"

	"flashmob/internal/algo"
	"flashmob/internal/core"
	"flashmob/internal/gen"
	"flashmob/internal/mem"
	"flashmob/internal/part"
	"flashmob/internal/profile"
	"flashmob/internal/stats"
)

// paperTable2 holds the paper's measured shares for reference output:
// per graph, per bucket, {avg degree, edge share, visit share}.
var paperTable2 = map[string][4][3]float64{
	"YT": {{338.4, .390, .390}, {38.0, .219, .219}, {8.5, .243, .243}, {1.2, .149, .149}},
	"TW": {{3463.0, .491, .491}, {291.2, .207, .206}, {50.5, .179, .179}, {7.9, .123, .123}},
	"FS": {{1027.6, .187, .187}, {296.4, .269, .269}, {90.8, .412, .412}, {6.6, .132, .132}},
	"UK": {{3874.8, .464, .568}, {264.8, .158, .129}, {69.4, .208, .177}, {12.9, .170, .126}},
	"YH": {{856.7, .465, .530}, {78.0, .169, .147}, {22.0, .238, .213}, {3.1, .128, .109}},
}

// expTable2 reproduces Table 2: DeepWalk visit statistics by degree group
// (average degree, edge share, walker-visit share) with |V| walkers
// initialized uniformly over edges. Expected shape: visit share tracks
// edge share, with the top 5% of vertices drawing roughly half the
// traffic.
func expTable2(w io.Writer, cfg benchConfig) error {
	for _, name := range presetNames {
		g, err := presetGraph(name, cfg)
		if err != nil {
			return err
		}
		e, err := flashMobEngine(g, algo.DeepWalk(), cfg, func(c *core.Config) {
			c.Init = core.InitEdgeUniform
			c.RecordHistory = true
		})
		if err != nil {
			return err
		}
		res, err := e.Run(0, cfg.Steps)
		if err != nil {
			return err
		}
		visits := res.History.VisitCounts(g.NumVertices())
		groups, err := stats.DegreeGroups(g, visits)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "--- %s (paper values in parentheses) ---\n", name)
		ref := paperTable2[name]
		row(w, "bucket", "<1%", "1%~5%", "5%~25%", "25%~100%")
		line := func(label string, f func(stats.GroupStats) string, refIdx int) {
			cells := make([]string, 0, 4)
			for i, grp := range groups {
				cell := f(grp)
				if i < 4 {
					switch refIdx {
					case 0:
						cell += fmt.Sprintf(" (%.1f)", ref[i][0])
					case 1:
						cell += fmt.Sprintf(" (%.0f%%)", 100*ref[i][1])
					case 2:
						cell += fmt.Sprintf(" (%.0f%%)", 100*ref[i][2])
					}
				}
				cells = append(cells, cell)
			}
			row(w, label, cells...)
		}
		line("avg degree", func(g stats.GroupStats) string { return degS(g.AvgDegree) }, 0)
		line("edge share", func(g stats.GroupStats) string { return pct(g.EdgeShare) }, 1)
		line("visit share", func(g stats.GroupStats) string { return pct(g.VisitShare) }, 2)
		fmt.Fprintln(w)
	}
	return nil
}

// expTable4 reproduces Table 4: the datasets. Synthetic stand-ins are
// listed with their scaled sizes alongside the paper's full-size values.
func expTable4(w io.Writer, cfg benchConfig) error {
	row(w, "graph", "|V|", "|E|", "CSR", "paper-|V|", "paper-CSR")
	paperCSR := map[string]string{
		"YT": "50.8MB", "TW": "11.4GB", "FS": "14.2GB", "UK": "42.5GB", "YH": "57.5GB",
	}
	for _, name := range presetNames {
		p, err := gen.PresetByName(name)
		if err != nil {
			return err
		}
		g, err := presetGraph(name, cfg)
		if err != nil {
			return err
		}
		row(w, name, big(uint64(g.NumVertices())), big(g.NumEdges()), mb(g.SizeBytes()),
			big(uint64(p.FullVertices)), paperCSR[name])
	}
	return nil
}

// expFig6 reproduces Figure 6: measured per-step sample cost for PS and
// DS with working sets sized to L1/L2/L3/DRAM, degrees 16-1024, densities
// 1 and 0.25. Expected shape: every level step down costs more; PS
// improves with degree; PS-DRAM is the worst series. Cells the host's
// memory budget cannot realize honestly (high-degree PS at DRAM scale
// needs the paper's 296GB platform) print "-".
func expFig6(w io.Writer, cfg benchConfig) error {
	geom := mem.PaperGeometry()
	levels := []string{"L1", "L2", "L3", "DRAM"}
	wss := []uint64{
		geom.L1.SizeBytes * 3 / 4,
		geom.L2.SizeBytes * 3 / 4,
		geom.L3.SizeBytes * 3 / 4,
		geom.L3.SizeBytes * 8,
	}
	degrees := []uint32{16, 64, 256, 1024}
	for _, density := range []float64{1, 0.25} {
		fmt.Fprintf(w, "--- density %.2f walkers/edge (ns per walker-step) ---\n", density)
		hdr := []string{}
		for _, d := range degrees {
			hdr = append(hdr, fmt.Sprintf("deg=%d", d))
		}
		row(w, "policy@level", hdr...)
		for li, ws := range wss {
			// One MeasureProfile call per working-set target, so every
			// returned point belongs to this level.
			tab, err := core.MeasureProfile(core.ProfilerConfig{
				Degrees:     degrees,
				Densities:   []float64{density},
				WorkingSets: []uint64{ws},
				MinSteps:    cfg.MinSteps,
				MaxEdges:    cfg.ProfMaxEdges,
				Seed:        cfg.Seed,
			}, geom)
			if err != nil {
				return err
			}
			for _, pol := range []profile.Policy{profile.PS, profile.DS} {
				cells := []string{}
				for _, d := range degrees {
					found := "-"
					for _, pt := range tab.Points {
						if pt.Policy == pol && pt.AvgDegree == float64(d) {
							found = ns(pt.StepNS)
							break
						}
					}
					cells = append(cells, found)
				}
				row(w, fmt.Sprintf("%v@%s", pol, levels[li]), cells...)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// expFig10 reproduces Figure 10: the DP-identified layout. For each graph
// it prints the per-group VP sizes and policies along the sorted vertex
// array (10a) and the share of vertices and walker-steps under each
// (policy, cache-fit) class (10b). Expected shape: high-degree head in
// small PS partitions, low-degree tail in large DS partitions.
func expFig10(w io.Writer, cfg benchConfig) error {
	model := hostModel()
	geom := mem.PaperGeometry()
	fit := func(pol profile.Policy, verts uint64, avgDeg float64) string {
		ws := profile.WorkingSetBytes(pol, profile.VPShape{Vertices: verts, AvgDegree: avgDeg}, 64)
		switch {
		case float64(ws) <= 0.75*float64(geom.L1.SizeBytes):
			return "L1"
		case float64(ws) <= 0.75*float64(geom.L2.SizeBytes):
			return "L2"
		case float64(ws) <= 0.75*float64(geom.L3.SizeBytes):
			return "L3"
		default:
			return "DRAM"
		}
	}
	for _, name := range presetNames {
		// Planning is cheap, so fig10 can afford far larger stand-ins than
		// the walking experiments — partition sizes only become realistic
		// (L2-scale VPs) when groups hold hundreds of thousands of
		// vertices, as on the paper's full graphs.
		g, err := presetGraphSized(name, cfg, cfg.MinCSR*8)
		if err != nil {
			return err
		}
		plan, err := part.PlanMCKP(g, part.Config{Walkers: uint64(g.NumVertices()), Model: model})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "--- %s: %d groups, %d VPs, %d bins ---\n",
			name, len(plan.Groups), plan.NumVPs(), plan.Weight())
		// 10a-style bars along the sorted vertex array: the top bar gives
		// each VP equal width (the paper's rendering), the bottom weights
		// VPs by walker-steps (∝ edges). Letters: cache-fit class under
		// the chosen policy, upper case = PS, lower case = DS
		// (1=L1, 2=L2, 3=L3, D=DRAM).
		letter := func(vp part.VP) byte {
			edges := g.Offsets[vp.End] - g.Offsets[vp.Start]
			verts := uint64(vp.End - vp.Start)
			f := fit(vp.Policy, verts, float64(edges)/float64(verts))
			ch := map[string]byte{"L1": '1', "L2": '2', "L3": '3', "DRAM": 'D'}[f]
			if vp.Policy == profile.DS {
				ch = map[string]byte{"L1": 'a', "L2": 'b', "L3": 'c', "DRAM": 'd'}[f]
			}
			return ch
		}
		const width = 100
		byVP := make([]byte, width)
		for i := range byVP {
			vp := plan.VPs[i*plan.NumVPs()/width]
			byVP[i] = letter(vp)
		}
		bySteps := make([]byte, width)
		total := g.NumEdges()
		vpIdx := 0
		var acc uint64
		for i := range bySteps {
			target := uint64(i) * total / width
			for vpIdx < plan.NumVPs()-1 && acc < target {
				vp := plan.VPs[vpIdx]
				acc += g.Offsets[vp.End] - g.Offsets[vp.Start]
				vpIdx++
			}
			bySteps[i] = letter(plan.VPs[vpIdx])
		}
		fmt.Fprintf(w, "per-VP:     [%s]\n", byVP)
		fmt.Fprintf(w, "per-step:   [%s]\n", bySteps)
		fmt.Fprintln(w, "            (PS: 1/2/3/D = fits L1/L2/L3/DRAM; DS: a/b/c/d)")
		// 10b-style summary: shares by (policy, fit class).
		type key struct {
			pol profile.Policy
			fit string
		}
		vertShare := map[key]uint64{}
		stepShare := map[key]uint64{}
		for _, vp := range plan.VPs {
			edges := g.Offsets[vp.End] - g.Offsets[vp.Start]
			verts := uint64(vp.End - vp.Start)
			k := key{vp.Policy, fit(vp.Policy, verts, float64(edges)/float64(verts))}
			vertShare[k] += verts
			stepShare[k] += edges // walker-steps ∝ edges under Table 2
		}
		row(w, "class", "vertex-share", "walkerstep-share")
		for _, pol := range []profile.Policy{profile.PS, profile.DS} {
			for _, f := range []string{"L1", "L2", "L3", "DRAM"} {
				k := key{pol, f}
				if vertShare[k] == 0 {
					continue
				}
				row(w, fmt.Sprintf("%v@%s", pol, f),
					pct(float64(vertShare[k])/float64(g.NumVertices())),
					pct(float64(stepShare[k])/float64(g.NumEdges())))
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
