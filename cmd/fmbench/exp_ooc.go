package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/ooc"
)

// expOOC exercises the paper's future-work direction quantified in §5.4:
// walking a disk-resident graph by streaming its edge blocks through a
// small DRAM window. For each preset it compares the in-memory engine
// with the out-of-core engine under a tight block budget, and reports the
// effective streaming bandwidth (the paper estimates a full-size run
// needs ~5GB/s, within NVMe range).
func expOOC(w io.Writer, cfg benchConfig) error {
	row(w, "graph", "in-mem ns/step", "ooc ns/step", "stream MB/s", "io-wait")
	dir, err := os.MkdirTemp("", "fmbench-ooc")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	for _, name := range presetNames {
		g, err := presetGraphSized(name, cfg, cfg.MinCSR)
		if err != nil {
			return err
		}
		inMem, err := timeFlashMob(g, algo.DeepWalk(), cfg, nil)
		if err != nil {
			return err
		}

		path := filepath.Join(dir, name+".bin")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := graph.WriteBinary(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		gf, err := graph.OpenFile(path)
		if err != nil {
			return err
		}
		// Budget: 1/8 of the graph resident at a time, floored so the
		// largest single adjacency list still fits a (double-buffered)
		// block.
		budget := g.SizeBytes() / 8
		if floor := uint64(g.MaxDegree()) * 4 * 4; budget < floor {
			budget = floor
		}
		e, err := ooc.New(gf, ooc.Config{
			BlockBudget: budget,
			Seed:        cfg.Seed,
			Workers:     cfg.Workers,
			Metrics:     collector != nil,
		})
		if err != nil {
			gf.Close()
			return err
		}
		collector.register(e.MetricsReport)
		res, err := e.Run(0, cfg.Steps)
		gf.Close()
		if err != nil {
			return err
		}
		row(w, name, ns(inMem), ns(res.PerStepNS()),
			fmt.Sprintf("%.0f", res.StreamBandwidth()/(1<<20)),
			pct(res.IOWait.Seconds()/res.Duration.Seconds()))
	}
	return nil
}
