package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/ooc"
)

// oocVariant is one measured out-of-core configuration, aggregated over
// -repeats runs of the same engine.
type oocVariant struct {
	Name           string  `json:"name"`
	Depth          int     `json:"prefetch_depth"`
	IOWorkers      int     `json:"io_workers"`
	Workers        int     `json:"workers"`
	ResidentBudget uint64  `json:"resident_budget_bytes"`
	ResidentBytes  uint64  `json:"resident_bytes"`
	ResidentParts  int     `json:"resident_partitions"`
	NSPerStep      float64 `json:"ns_per_step"`
	NSPerStepStd   float64 `json:"ns_per_step_std"`
	IOWaitShare    float64 `json:"io_wait_share"`
	IOWaitShareStd float64 `json:"io_wait_share_std"`
	StreamMBps     float64 `json:"stream_mb_per_sec"`
	BytesRead      uint64  `json:"bytes_read"`
	Blocks         uint64  `json:"blocks_read"`
	ResidentHits   uint64  `json:"resident_hits"`
	Speedup        float64 `json:"speedup_vs_baseline"`
}

// oocReport is the schema of BENCH_ooc.json: the overlap curve of the
// streaming engine across prefetch depth, IO workers, sample workers, and
// the resident-tier budget.
type oocReport struct {
	Experiment  string       `json:"experiment"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Graph       string       `json:"graph"`
	Walkers     uint64       `json:"walkers"`
	Steps       int          `json:"steps"`
	BlockBudget uint64       `json:"block_budget_bytes"`
	CSRBytes    uint64       `json:"csr_bytes"`
	Repeats     int          `json:"repeats"`
	ColdCache   bool         `json:"cold_cache"`
	InMemNS     float64      `json:"in_memory_ns_per_step"`
	Variants    []oocVariant `json:"variants"`
}

// expOOC measures the paper's future-work direction (§4.5, §7): walking a
// disk-resident graph by streaming its edge blocks through a small DRAM
// window. The experiment sweeps the overlap axes — prefetch depth (1 =
// the synchronous single-threaded baseline, the engine's old behavior),
// IO workers issuing reads ahead of the consumer, parallel block sampling
// on the worker pool, and a resident tier pinning the hottest blocks in
// RAM — and records the curve in BENCH_ooc.json. Trajectories are
// identical across every variant (and to the in-memory engine; see
// internal/ooc's equivalence suite), so the sweep isolates pure overlap.
func expOOC(w io.Writer, cfg benchConfig) error {
	const graphName = "YT"
	g, err := presetGraphSized(graphName, cfg, cfg.MinCSR)
	if err != nil {
		return err
	}
	inMem, err := timeFlashMob(g, algo.DeepWalk(), cfg, nil)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "fmbench-ooc")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, graphName+".bin")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := graph.WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	// Flush dirty pages so DropCache below can actually evict them.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	gf, err := graph.OpenFile(path)
	if err != nil {
		return err
	}
	defer gf.Close()

	// Budget: 1/8 of the graph resident at a time, floored so the largest
	// single adjacency list still fits a (double-buffered) block.
	budget := g.SizeBytes() / 8
	if floor := uint64(g.MaxDegree()) * graph.VIDBytes * 4; budget < floor {
		budget = floor
	}
	reps := cfg.Repeats
	if reps < 1 {
		reps = 1
	}
	csrBytes := g.SizeBytes()

	// Measure the steady out-of-core state: the graph file was just
	// written, so its pages are cache-hot, and warm "reads" are memcpys
	// that neither block nor overlap — the opposite of the disk-resident
	// regime this experiment models. ooc.Config.ColdCache evicts before
	// every step; probe once here so a platform that cannot evict
	// (non-Linux) records the warm-cache fallback.
	coldCache := gf.DropCache() == nil

	rep := oocReport{
		Experiment:  "ooc",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Graph:       graphName,
		Walkers:     uint64(g.NumVertices()),
		Steps:       cfg.Steps,
		BlockBudget: budget,
		CSRBytes:    csrBytes,
		Repeats:     reps,
		ColdCache:   coldCache,
		InMemNS:     inMem,
	}

	variants := []oocVariant{
		{Name: "baseline-sync", Depth: 1, IOWorkers: 1, Workers: 1},
		{Name: "depth2", Depth: 2, IOWorkers: 1, Workers: 1},
		{Name: "depth4-io2", Depth: 4, IOWorkers: 2, Workers: 1},
		{Name: "depth4-io2-par", Depth: 4, IOWorkers: 2, Workers: cfg.Workers},
		{Name: "depth8-io4-par", Depth: 8, IOWorkers: 4, Workers: cfg.Workers},
		{Name: "depth8-io4-par-resident", Depth: 8, IOWorkers: 4, Workers: cfg.Workers,
			ResidentBudget: csrBytes / 4},
	}

	fmt.Fprintf(w, "graph %s (%d MiB CSR), block budget %d KiB, in-mem %.1f ns/step, x%d repeats\n\n",
		graphName, csrBytes>>20, budget>>10, inMem, reps)
	row(w, "variant", "ns/step", "std", "io-wait", "stream MB/s", "blocks", "resident", "speedup")
	var base float64
	for i := range variants {
		v := &variants[i]
		e, err := ooc.New(gf, ooc.Config{
			BlockBudget:    budget,
			Seed:           cfg.Seed,
			Workers:        v.Workers,
			PrefetchDepth:  v.Depth,
			IOWorkers:      v.IOWorkers,
			ResidentBudget: v.ResidentBudget,
			ColdCache:      coldCache,
			Metrics:        collector != nil,
		})
		if err != nil {
			return err
		}
		collector.register(e.MetricsReport)
		v.ResidentBytes = e.ResidentBytes()
		v.ResidentParts = e.ResidentPartitions()

		perStep := make([]float64, 0, reps)
		waitShare := make([]float64, 0, reps)
		var last *ooc.Result
		for r := 0; r < reps; r++ {
			res, err := e.Run(context.Background(), 0, cfg.Steps)
			if err != nil {
				e.Close()
				return err
			}
			perStep = append(perStep, res.PerStepNS())
			waitShare = append(waitShare, res.IOWait.Seconds()/res.Duration.Seconds())
			last = res
		}
		e.Close()
		v.NSPerStep, v.NSPerStepStd = meanStd(perStep)
		v.IOWaitShare, v.IOWaitShareStd = meanStd(waitShare)
		v.BytesRead = last.BytesRead
		v.Blocks = last.Blocks
		v.ResidentHits = last.ResidentHits
		v.StreamMBps = last.StreamBandwidth() / (1 << 20)
		if base == 0 {
			base = v.NSPerStep
		}
		v.Speedup = base / v.NSPerStep
		row(w, v.Name, ns(v.NSPerStep), ns(v.NSPerStepStd), pct(v.IOWaitShare),
			fmt.Sprintf("%.0f", v.StreamMBps), big(v.Blocks), big(v.ResidentHits),
			fmt.Sprintf("%.2fx", v.Speedup))
	}
	rep.Variants = variants

	return writeBenchJSON(w, "BENCH_ooc.json", rep)
}
