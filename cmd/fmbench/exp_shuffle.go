package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"flashmob/internal/algo"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/part"
	"flashmob/internal/pool"
	"flashmob/internal/profile"
	"flashmob/internal/rng"
	"flashmob/internal/walk"
)

// shuffleWalkers sizes the component measurement so the walker arrays
// (3 × 4 B × walkers ≈ 800 MB) overflow any L3 on the market: the §4.3
// shuffle is only interesting in the paper's regime, where walker state
// streams through DRAM. Cache-resident toys make write-combining look
// like pure overhead.
const shuffleWalkers = 1 << 26

// shuffleVariant is one measured shuffle configuration.
type shuffleVariant struct {
	Variant     string  `json:"variant"` // "unbuffered" or "wc"
	Exec        string  `json:"exec"`    // "spawn" or "pool"
	Workers     int     `json:"workers"`
	FwdNSWalker float64 `json:"fwd_ns_per_walker"`
	RevNSWalker float64 `json:"rev_ns_per_walker"`
	NSPerWalker float64 `json:"ns_per_walker"` // fwd+rev, the per-step shuffle cost
}

// shuffleEndToEnd is one full-engine run with the stage split.
type shuffleEndToEnd struct {
	Graph       string  `json:"graph"`
	NSPerStep   float64 `json:"ns_per_step"`
	SampleShare float64 `json:"sample_share"`
	FwdShare    float64 `json:"shuffle_fwd_share"`
	RevShare    float64 `json:"shuffle_rev_share"`
}

// shuffleReport is the schema of BENCH_shuffle.json.
type shuffleReport struct {
	Experiment string            `json:"experiment"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Walkers    int               `json:"walkers"`
	Bins       int               `json:"bins"`
	Variants   []shuffleVariant  `json:"variants"`
	EndToEnd   []shuffleEndToEnd `json:"end_to_end"`
}

// expShuffle measures the §4.3 shuffle stage in isolation at DRAM scale —
// write-combining vs plain scatter/gather, persistent pool vs per-call
// goroutine spawns, across worker counts — then records the end-to-end
// per-step stage split on the preset graphs. Results land in
// BENCH_shuffle.json next to the table.
func expShuffle(w io.Writer, cfg benchConfig) error {
	// A 2-regular graph keeps CSR construction cheap; shuffle cost
	// depends on the walker count and bin count, not on edges.
	g, err := gen.UniformDegree(1<<20, 2, cfg.Seed)
	if err != nil {
		return err
	}
	plan, err := part.PlanUniform(g, part.Config{MaxBins: 2048}, profile.DS)
	if err != nil {
		return err
	}

	walkers := shuffleWalkers
	src := rng.NewXorShift1024Star(cfg.Seed + 9)
	wArr := make([]graph.VID, walkers)
	sw := make([]graph.VID, walkers)
	next := make([]graph.VID, walkers)
	for i := range wArr {
		wArr[i] = graph.VID(rng.Uint32n(src, g.NumVertices()))
	}

	rep := shuffleReport{
		Experiment: "shuffle",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Walkers:    walkers,
		Bins:       plan.Weight(),
	}

	workerCounts := []int{1, 4}
	if n := cfg.Workers; n != 1 && n != 4 {
		workerCounts = append(workerCounts, n)
	}
	// unbuffered = both staging paths off; wc-gather = the production
	// default (scalar scatter + write-combined gather); wc-full = both on.
	variants := []struct {
		label string
		tune  func(*walk.Shuffler)
	}{
		{"unbuffered", func(sh *walk.Shuffler) { sh.SetWriteCombining(false) }},
		{"wc-gather", nil},
		{"wc-full", func(sh *walk.Shuffler) { sh.SetWriteCombining(true) }},
	}
	row(w, "variant", "workers", "fwd-ns/walker", "rev-ns/walker", "total-ns/walker")
	for _, workers := range workerCounts {
		for _, vr := range variants {
			label := vr.label
			for _, usePool := range []bool{false, true} {
				exec := "spawn"
				var sh *walk.Shuffler
				var p *pool.Pool
				if usePool {
					exec = "pool"
					p = pool.New(workers)
					sh, err = walk.NewShufflerPool(plan, walkers, p)
				} else {
					sh, err = walk.NewShuffler(plan, walkers, workers)
				}
				if err != nil {
					return err
				}
				if vr.tune != nil {
					vr.tune(sh)
				}
				fwd, rev, err := timeShufflePass(sh, wArr, sw, next)
				if p != nil {
					p.Close()
				}
				if err != nil {
					return err
				}
				v := shuffleVariant{
					Variant:     label,
					Exec:        exec,
					Workers:     workers,
					FwdNSWalker: float64(fwd.Nanoseconds()) / float64(walkers),
					RevNSWalker: float64(rev.Nanoseconds()) / float64(walkers),
				}
				v.NSPerWalker = v.FwdNSWalker + v.RevNSWalker
				rep.Variants = append(rep.Variants, v)
				row(w, label+"-"+exec, fmt.Sprintf("%d", workers),
					ns(v.FwdNSWalker), ns(v.RevNSWalker), ns(v.NSPerWalker))
			}
		}
	}
	// Free the component arrays before the end-to-end engines run.
	wArr, sw, next = nil, nil, nil
	runtime.GC()

	fmt.Fprintln(w)
	row(w, "graph", "ns/step", "sample", "shuffle-fwd", "shuffle-rev")
	for _, name := range []string{"YT", "FS"} {
		gg, err := presetGraphSized(name, cfg, cfg.MinCSR)
		if err != nil {
			return err
		}
		e, err := flashMobEngine(gg, algo.DeepWalk(), cfg, nil)
		if err != nil {
			return err
		}
		res, err := e.Run(0, cfg.Steps)
		e.Close()
		if err != nil {
			return err
		}
		tot := float64(res.Duration)
		ee := shuffleEndToEnd{
			Graph:       name,
			NSPerStep:   res.PerStepNS(),
			SampleShare: float64(res.SampleTime) / tot,
			FwdShare:    float64(res.ShuffleFwdTime) / tot,
			RevShare:    float64(res.ShuffleRevTime) / tot,
		}
		rep.EndToEnd = append(rep.EndToEnd, ee)
		row(w, name, ns(ee.NSPerStep), pct(ee.SampleShare), pct(ee.FwdShare), pct(ee.RevShare))
	}

	return writeBenchJSON(w, "BENCH_shuffle.json", rep)
}

// timeShufflePass times Forward and Reverse separately: one warm-up
// round (sizing the lazily-allocated staging buffers), then the best of
// three measured rounds of each direction.
func timeShufflePass(sh *walk.Shuffler, w, sw, next []graph.VID) (fwd, rev time.Duration, err error) {
	const rounds = 3
	if err = sh.Forward(w, sw, nil, nil); err != nil {
		return
	}
	if err = sh.Reverse(w, sw, next, nil, nil); err != nil {
		return
	}
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		if err = sh.Forward(w, sw, nil, nil); err != nil {
			return
		}
		dF := time.Since(t0)
		t0 = time.Now()
		if err = sh.Reverse(w, sw, next, nil, nil); err != nil {
			return
		}
		dR := time.Since(t0)
		if i == 0 || dF < fwd {
			fwd = dF
		}
		if i == 0 || dR < rev {
			rev = dR
		}
	}
	return
}
