// Command fmgen generates synthetic graphs: preset stand-ins for the
// paper's datasets (degree distributions fitted to Table 2), R-MAT graphs,
// or uniform-degree graphs, written as binary CSR or text edge lists.
//
// Usage:
//
//	fmgen -preset YT -scalediv 100 -o yt.bin
//	fmgen -rmat 18 -o rmat18.bin
//	fmgen -uniform 100000 -degree 16 -o uni.txt -text
//	fmgen -preset YT -stream 10 -o stream.jsonl   # edge stream for fmserve -dynamic
//
// Stream mode (-stream N) emits N timestamped edge batches as JSON lines
// instead of a graph file. Every line is a valid POST /v1/ingest body for
// a dynamic fmserve over the same -preset/-seed graph:
//
//	{"edges":[[u,v],...],"freeze":true,"ts_ms":100}
//
// so a stream replays with nothing but a shell loop:
//
//	while read b; do curl -s -d "$b" "$URL/v1/ingest"; done < stream.jsonl
//
// The stream is deterministic per (-seed, stream flags): batch K of the
// same invocation is always the same edges. Edge endpoints are drawn over
// the base graph's vertex space plus -stream-growth new vertices, so
// compactions have vertex growth to absorb; ts_ms advances by
// -stream-interval per batch (pacing data for replay tools, carried
// inline).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

func main() {
	var (
		preset   = flag.String("preset", "", "paper dataset preset: YT, TW, FS, UK, YH")
		scaleDiv = flag.Uint("scalediv", 100, "downscale divisor for -preset (1 = full size)")
		rmat     = flag.Uint("rmat", 0, "R-MAT scale (2^scale vertices); overrides -preset")
		uniform  = flag.Uint("uniform", 0, "uniform-degree graph vertex count; overrides -preset")
		degree   = flag.Uint("degree", 16, "degree for -uniform")
		seed     = flag.Uint64("seed", 42, "generator seed")
		out      = flag.String("o", "", "output path (required)")
		text     = flag.Bool("text", false, "write a text edge list instead of binary CSR")

		stream         = flag.Uint("stream", 0, "emit this many ingest batches as JSON lines instead of a graph file")
		streamEdges    = flag.Uint("stream-edges", 64, "edges per stream batch")
		streamFreeze   = flag.Uint("stream-freeze", 1, "set freeze on every Nth batch (0 = never)")
		streamGrowth   = flag.Float64("stream-growth", 0.05, "fraction of new vertices the stream's endpoint space adds over the base graph")
		streamInterval = flag.Float64("stream-interval", 100, "ts_ms spacing between batches")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "fmgen: -o is required")
		flag.Usage()
		os.Exit(2)
	}

	var (
		g   *graph.CSR
		err error
	)
	switch {
	case *uniform > 0:
		g, err = gen.UniformDegree(uint32(*uniform), uint32(*degree), *seed)
	case *rmat > 0:
		g, err = gen.RMAT(gen.DefaultRMAT(*rmat, *seed))
	case *preset != "":
		var p gen.Preset
		if p, err = gen.PresetByName(*preset); err == nil {
			g, err = p.Generate(uint32(*scaleDiv), *seed)
		}
	default:
		err = fmt.Errorf("one of -preset, -rmat, -uniform is required")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fmgen: %v\n", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fmgen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	if *stream > 0 {
		n, err := writeStream(f, g, *seed, *stream, *streamEdges, *streamFreeze, *streamGrowth, *streamInterval)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fmgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d batches × %d edges over |V|≤%d (freeze every %d, %.0fms apart)\n",
			*out, *stream, *streamEdges, n, *streamFreeze, *streamInterval)
		return
	}

	if *text {
		err = graph.WriteEdgeList(f, g)
	} else {
		err = graph.WriteBinary(f, g)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fmgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: |V|=%d |E|=%d CSR=%.1fMB maxDeg=%d avgDeg=%.2f top1%%=%.1f%%\n",
		*out, g.NumVertices(), g.NumEdges(), float64(g.SizeBytes())/(1<<20),
		g.MaxDegree(), g.AvgDegree(), 100*gen.TopShare(g, 0.01))
}

// writeStream emits `batches` JSON lines of ingest bodies, deterministic
// per seed: the stream RNG is seeded independently of the generator's so
// the same base graph and the same stream reproduce together. Self-loops
// are re-drawn (the server would drop them and skew the accepted counts).
// Returns the endpoint space the stream drew over.
func writeStream(f *os.File, g *graph.CSR, seed uint64, batches, edgesPer, freezeEvery uint, growth, intervalMS float64) (uint32, error) {
	maxV := g.NumVertices() + uint32(growth*float64(g.NumVertices()))
	if maxV < 2 {
		maxV = 2
	}
	src := rng.NewXorShift1024Star(rng.Mix64(seed ^ 0xed6e_57a3))
	w := bufio.NewWriter(f)
	for b := uint(0); b < batches; b++ {
		w.WriteString(`{"edges":[`)
		for i := uint(0); i < edgesPer; i++ {
			u := rng.Uint32n(src, maxV)
			v := rng.Uint32n(src, maxV)
			for v == u {
				v = rng.Uint32n(src, maxV)
			}
			if i > 0 {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, "[%d,%d]", u, v)
		}
		w.WriteByte(']')
		if freezeEvery > 0 && (b+1)%freezeEvery == 0 {
			w.WriteString(`,"freeze":true`)
		}
		fmt.Fprintf(w, `,"ts_ms":%g}`, float64(b)*intervalMS)
		w.WriteByte('\n')
	}
	return maxV, w.Flush()
}
