// Command fmgen generates synthetic graphs: preset stand-ins for the
// paper's datasets (degree distributions fitted to Table 2), R-MAT graphs,
// or uniform-degree graphs, written as binary CSR or text edge lists.
//
// Usage:
//
//	fmgen -preset YT -scalediv 100 -o yt.bin
//	fmgen -rmat 18 -o rmat18.bin
//	fmgen -uniform 100000 -degree 16 -o uni.txt -text
package main

import (
	"flag"
	"fmt"
	"os"

	"flashmob/internal/gen"
	"flashmob/internal/graph"
)

func main() {
	var (
		preset   = flag.String("preset", "", "paper dataset preset: YT, TW, FS, UK, YH")
		scaleDiv = flag.Uint("scalediv", 100, "downscale divisor for -preset (1 = full size)")
		rmat     = flag.Uint("rmat", 0, "R-MAT scale (2^scale vertices); overrides -preset")
		uniform  = flag.Uint("uniform", 0, "uniform-degree graph vertex count; overrides -preset")
		degree   = flag.Uint("degree", 16, "degree for -uniform")
		seed     = flag.Uint64("seed", 42, "generator seed")
		out      = flag.String("o", "", "output path (required)")
		text     = flag.Bool("text", false, "write a text edge list instead of binary CSR")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "fmgen: -o is required")
		flag.Usage()
		os.Exit(2)
	}

	var (
		g   *graph.CSR
		err error
	)
	switch {
	case *uniform > 0:
		g, err = gen.UniformDegree(uint32(*uniform), uint32(*degree), *seed)
	case *rmat > 0:
		g, err = gen.RMAT(gen.DefaultRMAT(*rmat, *seed))
	case *preset != "":
		var p gen.Preset
		if p, err = gen.PresetByName(*preset); err == nil {
			g, err = p.Generate(uint32(*scaleDiv), *seed)
		}
	default:
		err = fmt.Errorf("one of -preset, -rmat, -uniform is required")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fmgen: %v\n", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fmgen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if *text {
		err = graph.WriteEdgeList(f, g)
	} else {
		err = graph.WriteBinary(f, g)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fmgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: |V|=%d |E|=%d CSR=%.1fMB maxDeg=%d avgDeg=%.2f top1%%=%.1f%%\n",
		*out, g.NumVertices(), g.NumEdges(), float64(g.SizeBytes())/(1<<20),
		g.MaxDegree(), g.AvgDegree(), 100*gen.TopShare(g, 0.01))
}
