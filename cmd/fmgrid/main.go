// Command fmgrid is the continuous-perf harness: a declarative grid
// runner over cmd/fmbench plus the regression gate.
//
// Driven by an experiments.json manifest (experiment × parameter grid ×
// repeats, see docs/BENCHMARKING.md), it shells into fmbench once per
// (cell, repeat), folds every numeric field of the raw reports into
// mean/std/min/max, writes one versioned BENCH_<exp>.json per
// experiment plus CSV and markdown summaries, and — when gating —
// compares each cell against the committed bench/baseline/ trajectory,
// failing when a metric regresses past the manifest's k·σ noise band.
//
// Usage:
//
//	fmgrid -manifest bench/experiments.json                  # run, write ./BENCH_*.json + summaries
//	fmgrid -manifest bench/smoke.json -out bench/out/smoke \
//	       -baseline bench/baseline/smoke -gate              # the CI leg: run then gate
//	fmgrid -manifest bench/experiments.json -update-baseline # intentional baseline refresh
//
// Exit status: 0 on success, 1 when the gate finds a regression or a
// schema mismatch, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"flashmob/internal/perfgate"
)

func main() {
	var (
		manifestPath = flag.String("manifest", "bench/experiments.json", "experiments.json manifest to run")
		benchCmd     = flag.String("bench", "go run ./cmd/fmbench", "harness command (space-separated argv prefix)")
		outDir       = flag.String("out", ".", "directory for the aggregated BENCH_*.json results")
		baselineDir  = flag.String("baseline", "bench/baseline", "committed baseline directory to gate against")
		gate         = flag.Bool("gate", false, "compare results against -baseline and exit 1 on regression")
		update       = flag.Bool("update-baseline", false, "copy this run's results into -baseline (intentional refresh)")
		csvPath      = flag.String("csv", "", "write a per-metric CSV summary here (default <out>/bench_summary.csv)")
		mdPath       = flag.String("md", "", "write a markdown summary here (default <out>/bench_summary.md)")
		only         = flag.String("only", "", "run only these comma-separated experiments from the manifest")
		verbose      = flag.Bool("v", false, "stream harness output")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "fmgrid: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	m, err := perfgate.LoadManifest(*manifestPath)
	if err != nil {
		fatal(2, "fmgrid: %v", err)
	}
	experiments := m.Experiments
	if *only != "" {
		experiments = selectExperiments(m, *only)
		if experiments == nil {
			fatal(2, "fmgrid: -only %q names no experiment in %s", *only, *manifestPath)
		}
	}

	runner := &perfgate.Runner{
		BenchCmd: strings.Fields(*benchCmd),
		Log:      os.Stdout,
		Verbose:  *verbose,
	}

	var reports []*perfgate.GridReport
	for _, e := range experiments {
		rep, err := runner.RunExperiment(m, e)
		if err != nil {
			fatal(1, "fmgrid: %v", err)
		}
		out := filepath.Join(*outDir, e.OutputFile())
		if err := rep.WriteFile(out); err != nil {
			fatal(1, "fmgrid: %v", err)
		}
		fmt.Printf("wrote %s (%d cells × %d repeats)\n", out, len(rep.Cells), rep.Repeats)
		reports = append(reports, rep)
	}

	if err := writeSummaries(reports, m.Gate, *outDir, *csvPath, *mdPath); err != nil {
		fatal(1, "fmgrid: %v", err)
	}

	if *update {
		for i, e := range experiments {
			dst := filepath.Join(*baselineDir, e.OutputFile())
			if err := reports[i].WriteFile(dst); err != nil {
				fatal(1, "fmgrid: updating baseline: %v", err)
			}
			fmt.Printf("baseline refreshed: %s\n", dst)
		}
	}

	if *gate {
		os.Exit(runGate(experiments, reports, m.Gate, *baselineDir))
	}
}

// runGate compares every fresh report against its committed baseline
// and returns the process exit code.
func runGate(experiments []perfgate.Experiment, reports []*perfgate.GridReport, gc perfgate.GateConfig, baselineDir string) int {
	regressions, failures := 0, 0
	for i, e := range experiments {
		base, err := perfgate.ReadGridReport(filepath.Join(baselineDir, e.OutputFile()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fmgrid: gate %s: no usable baseline: %v\n", e.Name, err)
			failures++
			continue
		}
		res, err := perfgate.Compare(base, reports[i], gc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fmgrid: %v\n", err)
			failures++
			continue
		}
		res.Render(os.Stdout)
		regressions += res.Regressions()
	}
	switch {
	case failures > 0:
		fmt.Fprintf(os.Stderr, "fmgrid: GATE FAILED: %d experiment(s) could not be compared\n", failures)
		return 1
	case regressions > 0:
		fmt.Fprintf(os.Stderr, "fmgrid: GATE FAILED: %d metric(s) regressed beyond the noise band\n", regressions)
		return 1
	default:
		fmt.Println("fmgrid: gate passed")
		return 0
	}
}

// writeSummaries drops the CSV and markdown views next to the JSON.
func writeSummaries(reports []*perfgate.GridReport, gc perfgate.GateConfig, outDir, csvPath, mdPath string) error {
	if len(reports) == 0 {
		return nil
	}
	if csvPath == "" {
		csvPath = filepath.Join(outDir, "bench_summary.csv")
	}
	if mdPath == "" {
		mdPath = filepath.Join(outDir, "bench_summary.md")
	}
	cf, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	if err := perfgate.WriteCSV(cf, reports); err != nil {
		cf.Close()
		return err
	}
	if err := cf.Close(); err != nil {
		return err
	}
	mf, err := os.Create(mdPath)
	if err != nil {
		return err
	}
	if err := perfgate.WriteMarkdown(mf, reports, gc); err != nil {
		mf.Close()
		return err
	}
	if err := mf.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", csvPath, mdPath)
	return nil
}

// selectExperiments resolves the -only list against the manifest,
// returning nil when any name is unknown.
func selectExperiments(m *perfgate.Manifest, only string) []perfgate.Experiment {
	var out []perfgate.Experiment
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, e := range m.Experiments {
			if e.Name == name {
				out = append(out, e)
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	return out
}

// fatal prints one line and exits with the given code.
func fatal(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
