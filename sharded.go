package flashmob

import (
	"context"
	"fmt"
	"net"

	"flashmob/internal/core"
	"flashmob/internal/shard"
)

// ShardedSystem runs a System's walks across multiple shard engines: the
// vertex space is cut into contiguous partition-aligned ranges, each
// shard advances the walkers currently on its vertices through the
// ordinary sample→shuffle pipeline, and a cross-shard exchange
// write-combines emigrant walkers to their new owners between supersteps
// (internal/shard). Trajectories are bitwise-identical to the same
// cohorts on the plain System, whatever the shard count or transport.
//
// Two topologies exist: in-process (NewSharded — every shard is a
// goroutine over the same engine, exchanging over channels) and
// multi-process (NewShardedRemote — each shard is a ServeShardWorker
// process, exchanging over TCP).
type ShardedSystem struct {
	sys  *System
	topo *shard.Topology
	rem  *shard.Remote
}

// NewSharded builds an in-process sharded topology over s with the given
// shard count. The System stays usable directly; the topology borrows
// its engine.
func NewSharded(s *System, shards int) (*ShardedSystem, error) {
	topo, err := shard.New(s.engine, shards)
	if err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	return &ShardedSystem{sys: s, topo: topo}, nil
}

// NewShardedRemote builds a multi-process coordinator over the shard
// workers at addrs (one ServeShardWorker each, built from the same graph
// and Options as s). The local System supplies the plan — for the shard
// map and walker placement — but never steps walkers itself.
func NewShardedRemote(s *System, addrs []string) (*ShardedSystem, error) {
	rem, err := shard.NewRemote(s.engine, addrs)
	if err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	return &ShardedSystem{sys: s, rem: rem}, nil
}

// NumShards returns the topology's shard count.
func (ss *ShardedSystem) NumShards() int {
	if ss.topo != nil {
		return ss.topo.NumShards()
	}
	return ss.rem.NumShards()
}

// WalkMixed advances every cohort across the shards. Results are
// bitwise-identical to System.WalkMixed with the same cohorts; paths are
// always recorded. A nil ctx means context.Background(). Remote
// topologies reject Algorithm values carrying Custom or History
// transitions (function values cannot cross the wire).
func (ss *ShardedSystem) WalkMixed(ctx context.Context, cohorts []CohortSpec) (*MixedResult, error) {
	var (
		res *core.MixedResult
		err error
	)
	if ss.topo != nil {
		res, err = ss.topo.RunMixed(ctx, coreCohorts(cohorts))
	} else {
		res, err = ss.rem.RunMixed(ctx, coreCohorts(cohorts))
	}
	if err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	return &MixedResult{inner: res, reorder: ss.sys.reorder}, nil
}

// MetricsReport snapshots the topology's exchange counters (emigrants,
// immigrants, frames, frame words per shard, plus superstep and run
// totals). Always available, independent of Options.Metrics.
func (ss *ShardedSystem) MetricsReport() *Report {
	if ss.topo != nil {
		return ss.topo.MetricsReport()
	}
	return ss.rem.MetricsReport()
}

// ServeShardWorker hosts shard self of a multi-process topology: it
// builds the same System every other worker and the coordinator build
// (identical graph and Options — the shard map and seed schedule derive
// from the partition plan), listens on addrs[self], meshes with its
// peers, and serves coordinator runs until ctx ends. Returns ctx.Err()
// on a clean drain. This is what fmserve -shard-worker wraps.
func ServeShardWorker(ctx context.Context, g *Graph, opt Options, self int, addrs []string) error {
	if self < 0 || self >= len(addrs) {
		return fmt.Errorf("flashmob: shard index %d out of range [0, %d)", self, len(addrs))
	}
	sys, err := New(g, opt)
	if err != nil {
		return err
	}
	defer sys.Close()
	ln, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return fmt.Errorf("flashmob: shard worker listen: %w", err)
	}
	if err := shard.ServeWorker(ctx, ln, sys.engine, self, addrs); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("flashmob: %w", err)
	}
	return nil
}
