package flashmob

import (
	"fmt"
	"time"

	"flashmob/internal/core"
	"flashmob/internal/graph"
	"flashmob/internal/obs"
	"flashmob/internal/stats"
)

// Report is a point-in-time snapshot of a metrics registry: counters,
// gauges, histograms, and labelled counter vectors, each carrying its own
// descriptor (name, unit, stage, help). Returned by Result.Report when
// Options.Metrics is set; serialize with its WriteJSON method. Every
// field is documented in docs/OBSERVABILITY.md.
type Report = obs.Report

// Result reports a completed walk. Vertex IDs in every accessor are the
// caller's original IDs (the internal degree-sorted renumbering is
// translated back transparently).
type Result struct {
	inner   *core.Result
	reorder *graph.Reordering
}

// PerStepNS returns the headline metric: wall nanoseconds per walker-step.
func (r *Result) PerStepNS() float64 { return r.inner.PerStepNS() }

// Paths returns one path per walker in original vertex IDs. Requires
// Options.RecordPaths.
func (r *Result) Paths() ([][]VID, error) {
	h := r.inner.History
	if h == nil {
		return nil, fmt.Errorf("flashmob: paths not recorded; set Options.RecordPaths")
	}
	paths := h.Transpose()
	for _, p := range paths {
		for i, v := range p {
			p[i] = r.reorder.NewToOld[v]
		}
	}
	return paths, nil
}

// VisitCounts returns walker-step counts per original vertex ID. Requires
// Options.RecordPaths.
func (r *Result) VisitCounts() ([]uint64, error) {
	h := r.inner.History
	if h == nil {
		return nil, fmt.Errorf("flashmob: history not recorded; set Options.RecordPaths")
	}
	sorted := h.VisitCounts(uint32(len(r.reorder.NewToOld)))
	out := make([]uint64, len(sorted))
	for nv, c := range sorted {
		out[r.reorder.NewToOld[nv]] = c
	}
	return out, nil
}

// DegreeGroupStats returns the paper's Table 2 statistics (per
// degree-percentile bucket: average degree, edge share, visit share) for
// this run. Requires Options.RecordPaths.
func (r *Result) DegreeGroupStats(g *Graph) ([]stats.GroupStats, error) {
	visits, err := r.VisitCounts()
	if err != nil {
		return nil, err
	}
	return stats.DegreeGroups(g, visits)
}

// Timing breaks down the run's wall time by pipeline stage.
type Timing struct {
	// Total is the whole run's wall time; Sample and Shuffle are the two
	// pipeline stages' shares, and Other is everything else (episode
	// setup, walker init, history writes).
	Total, Sample, Shuffle, Other time.Duration
}

// Timing returns the stage breakdown (the paper's Figure 9a split).
func (r *Result) Timing() Timing {
	return Timing{
		Total:   r.inner.Duration,
		Sample:  r.inner.SampleTime,
		Shuffle: r.inner.ShuffleTime,
		Other:   r.inner.OtherTime,
	}
}

// Walkers returns how many walkers ran.
func (r *Result) Walkers() uint64 { return r.inner.Walkers }

// Steps returns the walk length.
func (r *Result) Steps() int { return r.inner.Steps }

// TotalSteps returns walkers × steps.
func (r *Result) TotalSteps() uint64 { return r.inner.TotalSteps }

// Episodes returns how many memory-budgeted rounds the run took.
func (r *Result) Episodes() int { return r.inner.Episodes }

// Report returns the run's metrics snapshot: System.Walk results describe
// that Walk alone; results from an explicitly held Session cover the
// session's Walks so far. The System-lifetime aggregate (every closed
// session folded together) is not exposed here — fmbench and tests reach
// it through the engine's MetricsReport. Nil unless the System was
// created with Options.Metrics.
func (r *Result) Report() *Report { return r.inner.Report }
