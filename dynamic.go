package flashmob

import (
	"context"
	"fmt"

	"flashmob/internal/dyn"
	"flashmob/internal/graph"
	"flashmob/internal/profile"
)

// DynamicOptions configures a DynamicSystem. The planner knobs mirror
// Options; the dynamic-specific fields control freeze/compaction cadence.
type DynamicOptions struct {
	// Algorithm is the walk every build is specialized for (default
	// DeepWalk). Weighted algorithms are rejected — overlay sampling is
	// uniform over base ∪ delta, which has no meaning against alias tables.
	Algorithm Algorithm
	// Workers is the thread count (default GOMAXPROCS).
	Workers int
	// Seed drives all engine randomness across every build.
	Seed uint64
	// Undirected inserts the reverse of every ingested edge, matching an
	// undirected base graph built with BuildGraph(edges, true).
	Undirected bool
	// TargetGroups and MaxBins are the planner's G and P hyper-parameters
	// (defaults 128 and 2048).
	TargetGroups, MaxBins int
	// PlanWalkers is the walker count the planner prices for (default |V|
	// of each build).
	PlanWalkers uint64
	// CompactEvery, when positive, runs a background compaction after that
	// many freezes. Zero leaves compaction to explicit Compact calls.
	CompactEvery int
	// DriftThreshold is the relative drift at which a vertex group's
	// partition decision is re-solved during compaction. The default 0
	// re-solves every group, keeping compacted builds bitwise-identical to
	// cold builds of the same edge set; positive thresholds trade that
	// identity for cheaper replans.
	DriftThreshold float64
	// RecordPaths keeps full walk histories so Paths() works.
	RecordPaths bool
	// Metrics enables the dyn_* metric set (see docs/OBSERVABILITY.md).
	Metrics bool
	// CostModel overrides the partition-cost model, as in Options.
	CostModel profile.CostModel
}

// DynamicSystem is a System that accepts edge updates. Ingest buffers
// edges; Freeze publishes them as a new epoch whose walks sample over
// base ∪ delta; Compact merges everything into a fresh engine build. Walks
// resolve their epoch snapshot at acquisition (Snapshot) and are never
// invalidated by later updates. All methods are safe for concurrent use.
type DynamicSystem struct {
	sys *dyn.System
}

// NewDynamic builds a dynamic system over a base graph (unweighted; the
// graph is not modified). The first epoch is a compacted view of exactly
// this edge set — its walks match a static New of the same graph.
func NewDynamic(g *Graph, opt DynamicOptions) (*DynamicSystem, error) {
	if g != nil {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("flashmob: %w", err)
		}
	}
	sys, err := dyn.New(g, dyn.Config{
		Algorithm:      opt.Algorithm,
		Workers:        opt.Workers,
		Seed:           opt.Seed,
		Undirected:     opt.Undirected,
		TargetGroups:   opt.TargetGroups,
		MaxBins:        opt.MaxBins,
		PlanWalkers:    opt.PlanWalkers,
		CompactEvery:   opt.CompactEvery,
		DriftThreshold: opt.DriftThreshold,
		RecordHistory:  opt.RecordPaths,
		Metrics:        opt.Metrics,
		Model:          opt.CostModel,
	})
	if err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	return &DynamicSystem{sys: sys}, nil
}

// Ingest buffers a batch of edges in the caller's original vertex IDs.
// Endpoints beyond the current vertex space are accepted and become
// walkable after the next compaction. Self-loops are dropped and, under
// DynamicOptions.Undirected, reverse edges inserted — the same
// normalization BuildGraph applies. Returns how many input edges were
// accepted. Buffered edges stay invisible to walks until Freeze.
func (d *DynamicSystem) Ingest(edges []Edge) (int, error) {
	n, err := d.sys.Ingest(edges)
	if err != nil {
		return 0, fmt.Errorf("flashmob: %w", err)
	}
	return n, nil
}

// IngestPairs is Ingest for bare (src, dst) pairs.
func (d *DynamicSystem) IngestPairs(pairs [][2]VID) (int, error) {
	edges := make([]Edge, len(pairs))
	for i, p := range pairs {
		edges[i] = Edge{Src: p[0], Dst: p[1]}
	}
	return d.Ingest(edges)
}

// Freeze publishes every pending edge as a new epoch: snapshots acquired
// afterwards walk over base ∪ delta. Returns the published epoch's ID
// (the current one when nothing was pending).
func (d *DynamicSystem) Freeze() (uint64, error) {
	id, err := d.sys.Freeze()
	if err != nil {
		return 0, fmt.Errorf("flashmob: %w", err)
	}
	return id, nil
}

// Compact merges the accumulated delta — new vertices included — into a
// fresh engine build and publishes it as a new epoch. Ingest, Freeze, and
// walks proceed concurrently; in-flight snapshots are unaffected. Returns
// the new epoch's ID.
func (d *DynamicSystem) Compact() (uint64, error) {
	id, err := d.sys.Compact()
	if err != nil {
		return 0, fmt.Errorf("flashmob: %w", err)
	}
	return id, nil
}

// Close shuts the system down, waiting for the background compactor.
// Outstanding Snapshots must be Released before their builds free.
// Idempotent.
func (d *DynamicSystem) Close() { d.sys.Close() }

// DynamicStats is a point-in-time snapshot of the system's dynamic state.
type DynamicStats = dyn.Stats

// Stats snapshots epoch, delta, and compaction counters.
func (d *DynamicSystem) Stats() DynamicStats { return d.sys.Stats() }

// MetricsReport snapshots the dyn_* metric set (nil unless
// DynamicOptions.Metrics).
func (d *DynamicSystem) MetricsReport() *Report { return d.sys.MetricsReport() }

// Snapshot is a pinned epoch: its walks run against the epoch's edge set
// no matter how many freezes or compactions land meanwhile.
type Snapshot struct {
	ep      *dyn.Epoch
	reorder *graph.Reordering
}

// Snapshot pins the current epoch for walking (walk-on-snapshot
// semantics). Release it when done — a pinned epoch keeps its engine
// build alive.
func (d *DynamicSystem) Snapshot() (*Snapshot, error) {
	ep, err := d.sys.Acquire()
	if err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	return &Snapshot{ep: ep, reorder: ep.Reordering()}, nil
}

// Release unpins the snapshot. Idempotent.
func (s *Snapshot) Release() { s.ep.Release() }

// Epoch returns the snapshot's monotone epoch ID.
func (s *Snapshot) Epoch() uint64 { return s.ep.ID() }

// Compacted reports whether the snapshot's edge set lives entirely in its
// engine build (no overlay). Compacted snapshots accept any algorithm and
// walk bitwise-identically to a cold build of the same edges; overlay
// snapshots restrict walks to first-order history-free algorithms.
func (s *Snapshot) Compacted() bool { return s.ep.Compacted() }

// WalkSeeded runs the system's primary algorithm against the snapshot
// with a per-run seed: trajectories are a pure function of (epoch, seed,
// walkers, steps). walkers 0 means |V|; steps 0 means the algorithm's
// default.
func (s *Snapshot) WalkSeeded(seed, walkers uint64, steps int) (*Result, error) {
	res, err := s.ep.WalkSeeded(context.Background(), seed, walkers, steps)
	if err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	return &Result{inner: res, reorder: s.reorder}, nil
}

// WalkMixed runs cohorts against the snapshot through one shared pipeline
// run, with the same per-cohort determinism contract as
// Session.WalkMixed. Overlay snapshots reject cohorts that are not
// first-order and history-free.
func (s *Snapshot) WalkMixed(cohorts []CohortSpec) (*MixedResult, error) {
	res, err := s.ep.WalkMixed(context.Background(), coreCohorts(cohorts))
	if err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	return &MixedResult{inner: res, reorder: s.reorder}, nil
}
