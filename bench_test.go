// Benchmarks regenerating the paper's tables and figures. Each experiment
// in DESIGN.md's index maps to a Benchmark* family here; the fmbench
// command runs the same measurements with nicer formatting and larger
// defaults. Benchmarks report the paper's headline metric as "ns/step"
// (wall nanoseconds per walker-step) via b.ReportMetric, alongside Go's
// usual ns/op.
package flashmob

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/baseline"
	"flashmob/internal/core"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/mem"
	"flashmob/internal/part"
	"flashmob/internal/pool"
	"flashmob/internal/profile"
	"flashmob/internal/rng"
	"flashmob/internal/sim"
	"flashmob/internal/walk"
)

const (
	benchSteps = 8
	benchSeed  = 42
)

// benchV scales each preset to this vertex count for benchmarking.
const benchV = 40_000

var (
	graphCacheMu sync.Mutex
	graphCache   = map[string]*graph.CSR{}
)

// benchGraph returns a cached scaled preset graph (degree-sorted).
func benchGraph(b *testing.B, name string) *graph.CSR {
	b.Helper()
	graphCacheMu.Lock()
	defer graphCacheMu.Unlock()
	if g, ok := graphCache[name]; ok {
		return g
	}
	p, err := gen.PresetByName(name)
	if err != nil {
		b.Fatal(err)
	}
	div := p.FullVertices / benchV
	if div == 0 {
		div = 1
	}
	g, err := p.Generate(div, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	graphCache[name] = g
	return g
}

func hostCostModel() profile.CostModel {
	return profile.NewAnalyticalModel(mem.PaperGeometry())
}

// runFlashMob runs one FlashMob measurement iteration and reports ns/step.
func runFlashMob(b *testing.B, g *graph.CSR, spec algo.Spec, mut func(*core.Config)) {
	b.Helper()
	cfg := core.Config{Seed: benchSeed, Model: hostCostModel()}
	if mut != nil {
		mut(&cfg)
	}
	e, err := core.New(g, spec, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var perStep float64
	for i := 0; i < b.N; i++ {
		res, err := e.Run(0, benchSteps)
		if err != nil {
			b.Fatal(err)
		}
		perStep = res.PerStepNS()
	}
	b.ReportMetric(perStep, "ns/step")
}

func runKnightKing(b *testing.B, g *graph.CSR, spec algo.Spec) {
	b.Helper()
	k, err := baseline.NewKnightKing(g, spec, baseline.Config{Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var perStep float64
	for i := 0; i < b.N; i++ {
		res, err := k.Run(0, benchSteps)
		if err != nil {
			b.Fatal(err)
		}
		perStep = res.PerStepNS()
	}
	b.ReportMetric(perStep, "ns/step")
}

func runGraphVite(b *testing.B, g *graph.CSR, spec algo.Spec) {
	b.Helper()
	gv, err := baseline.NewGraphVite(g, spec, baseline.Config{Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var perStep float64
	for i := 0; i < b.N; i++ {
		res, err := gv.Run(0, benchSteps)
		if err != nil {
			b.Fatal(err)
		}
		perStep = res.PerStepNS()
	}
	b.ReportMetric(perStep, "ns/step")
}

// --- Figure 1a: per-step time, KnightKing on cache-sized toys + real
// graphs vs FlashMob ---

func BenchmarkFig1aKnightKingToy(b *testing.B) {
	geom := mem.PaperGeometry()
	for _, tc := range []struct {
		name   string
		budget uint64
	}{
		{"L1", geom.L1.SizeBytes * 3 / 4},
		{"L2", geom.L2.SizeBytes * 3 / 4},
		{"L3", geom.L3.SizeBytes * 3 / 4},
	} {
		b.Run(tc.name, func(b *testing.B) {
			g, _, err := gen.ToyForCacheBytes(tc.budget, 16, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			runKnightKing(b, g, algo.DeepWalk())
		})
	}
}

func BenchmarkFig1aKnightKing(b *testing.B) {
	for _, name := range []string{"YT", "YH"} {
		b.Run(name, func(b *testing.B) { runKnightKing(b, benchGraph(b, name), algo.DeepWalk()) })
	}
}

func BenchmarkFig1aFlashMob(b *testing.B) {
	for _, name := range []string{"YT", "YH"} {
		b.Run(name, func(b *testing.B) { runFlashMob(b, benchGraph(b, name), algo.DeepWalk(), nil) })
	}
}

// --- Figure 1b: per-step cache misses (trace-driven simulation) ---

func BenchmarkFig1bSimulated(b *testing.B) {
	geom := mem.ScaledGeometry(64)
	model := profile.NewAnalyticalModel(geom)
	for _, name := range []string{"YT", "YH"} {
		g := benchGraph(b, name)
		walkers := int(g.NumVertices())
		b.Run(name+"/KnightKing", func(b *testing.B) {
			var rep *sim.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = sim.NewKnightKingSim(g, geom, benchSeed).Run(walkers, 2)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMisses(b, rep)
		})
		b.Run(name+"/FlashMob", func(b *testing.B) {
			plan, err := part.PlanMCKP(g, part.Config{Walkers: uint64(walkers), Model: model})
			if err != nil {
				b.Fatal(err)
			}
			var rep *sim.Report
			for i := 0; i < b.N; i++ {
				fm, err := sim.NewFlashMobSim(g, plan, geom, benchSeed, sim.NumaNone)
				if err != nil {
					b.Fatal(err)
				}
				rep, err = fm.Run(walkers, 2)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMisses(b, rep)
		})
	}
}

func reportMisses(b *testing.B, rep *sim.Report) {
	b.ReportMetric(rep.MissesPerStep(mem.LocL1), "L1miss/step")
	b.ReportMetric(rep.MissesPerStep(mem.LocL2), "L2miss/step")
	b.ReportMetric(rep.MissesPerStep(mem.LocL3), "L3miss/step")
	b.ReportMetric(rep.DRAMBytesPerStep(), "DRAMB/step")
}

// --- Table 1: load latencies measured on the host ---

func BenchmarkTable1Latency(b *testing.B) {
	geom := mem.PaperGeometry()
	for _, tc := range []struct {
		name string
		ws   uint64
	}{
		{"L1", geom.L1.SizeBytes / 2},
		{"L2", geom.L2.SizeBytes / 2},
		{"LocalMem", geom.L3.SizeBytes * 8},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var r profile.LatencyResult
			for i := 0; i < b.N; i++ {
				r = profile.MeasureLatency(tc.ws, 1<<18, benchSeed)
			}
			b.ReportMetric(r.SeqNS, "seq-ns")
			b.ReportMetric(r.RandNS, "rand-ns")
			b.ReportMetric(r.ChaseNS, "chase-ns")
		})
	}
}

// --- Figure 6: sample-stage cost per policy/level/degree (measured) ---

func BenchmarkFig6SampleStage(b *testing.B) {
	geom := mem.PaperGeometry()
	for _, tc := range []struct {
		level string
		ws    uint64
	}{
		{"L2", geom.L2.SizeBytes * 3 / 4},
		{"DRAM", geom.L3.SizeBytes * 8},
	} {
		for _, d := range []uint32{16, 256} {
			name := fmt.Sprintf("%s/deg%d", tc.level, d)
			b.Run(name, func(b *testing.B) {
				tab, err := core.MeasureProfile(core.ProfilerConfig{
					Degrees:     []uint32{d},
					Densities:   []float64{1},
					WorkingSets: []uint64{tc.ws},
					MinSteps:    uint64(b.N) * 1000,
					MaxEdges:    1 << 24,
					Seed:        benchSeed,
				}, geom)
				if err != nil {
					b.Fatal(err)
				}
				for _, pt := range tab.Points {
					b.ReportMetric(pt.StepNS, pt.Policy.String()+"-ns/step")
				}
			})
		}
	}
}

// --- Figure 8a: DeepWalk across all graphs and systems ---

func BenchmarkFig8aGraphVite(b *testing.B) {
	for _, name := range []string{"YT", "TW", "FS", "UK", "YH"} {
		b.Run(name, func(b *testing.B) { runGraphVite(b, benchGraph(b, name), algo.DeepWalk()) })
	}
}

func BenchmarkFig8aKnightKing(b *testing.B) {
	for _, name := range []string{"YT", "TW", "FS", "UK", "YH"} {
		b.Run(name, func(b *testing.B) { runKnightKing(b, benchGraph(b, name), algo.DeepWalk()) })
	}
}

func BenchmarkFig8aFlashMob(b *testing.B) {
	for _, name := range []string{"YT", "TW", "FS", "UK", "YH"} {
		b.Run(name, func(b *testing.B) { runFlashMob(b, benchGraph(b, name), algo.DeepWalk(), nil) })
	}
}

// --- Figure 8b: node2vec, KnightKing vs FlashMob ---

func BenchmarkFig8bKnightKing(b *testing.B) {
	for _, name := range []string{"YT", "FS", "YH"} {
		b.Run(name, func(b *testing.B) { runKnightKing(b, benchGraph(b, name), algo.Node2Vec(2, 0.5)) })
	}
}

func BenchmarkFig8bFlashMob(b *testing.B) {
	for _, name := range []string{"YT", "FS", "YH"} {
		b.Run(name, func(b *testing.B) { runFlashMob(b, benchGraph(b, name), algo.Node2Vec(2, 0.5), nil) })
	}
}

// --- Figure 9b: planner comparison ---

func BenchmarkFig9bPlanners(b *testing.B) {
	g := benchGraph(b, "FS")
	for _, tc := range []struct {
		name string
		kind core.PlannerKind
	}{
		{"MCKP", core.PlannerMCKP},
		{"UniformPS", core.PlannerUniformPS},
		{"UniformDS", core.PlannerUniformDS},
		{"Manual", core.PlannerManual},
	} {
		b.Run(tc.name, func(b *testing.B) {
			runFlashMob(b, g, algo.DeepWalk(), func(c *core.Config) { c.Planner = tc.kind })
		})
	}
}

// --- Figure 11a: growing |V| with the YH degree shape ---

func BenchmarkFig11aScaling(b *testing.B) {
	yh, err := gen.PresetByName("YH")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []uint32{20_000, 40_000, 80_000} {
		b.Run(fmt.Sprintf("V%d", n), func(b *testing.B) {
			g, err := gen.PowerLaw(gen.PowerLawConfig{
				NumVertices: n,
				AvgDegree:   yh.AvgDegree,
				Alpha:       gen.FitAlpha(n, yh.AvgDegree, 1, 0.01, yh.Top1EdgeShare),
				MinDegree:   1,
				Seed:        benchSeed,
			})
			if err != nil {
				b.Fatal(err)
			}
			runFlashMob(b, g, algo.DeepWalk(), nil)
		})
	}
}

// --- Figure 11b: walker-density sweep on TW ---

func BenchmarkFig11bDensity(b *testing.B) {
	g := benchGraph(b, "TW")
	for _, mul := range []uint64{1, 4, 16} {
		b.Run(fmt.Sprintf("%dxV", mul), func(b *testing.B) {
			walkers := uint64(g.NumVertices()) * mul
			e, err := core.New(g, algo.DeepWalk(), core.Config{
				Seed:  benchSeed,
				Model: hostCostModel(),
				Part:  part.Config{Walkers: walkers},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var perStep float64
			for i := 0; i < b.N; i++ {
				res, err := e.Run(walkers, benchSteps)
				if err != nil {
					b.Fatal(err)
				}
				perStep = res.PerStepNS()
			}
			b.ReportMetric(perStep, "ns/step")
		})
	}
}

// --- Figure 12: NUMA modes (simulated remote-access rate) ---

func BenchmarkFig12NUMA(b *testing.B) {
	geom := mem.ScaledGeometry(64)
	model := profile.NewAnalyticalModel(geom)
	g := benchGraph(b, "FS")
	walkers := int(g.NumVertices())
	plan, err := part.PlanMCKP(g, part.Config{Walkers: uint64(walkers), Model: model})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mode sim.NumaMode
	}{
		{"Partitioned", sim.NumaPartitioned},
		{"Replicated", sim.NumaReplicated},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var rep *sim.Report
			for i := 0; i < b.N; i++ {
				fm, err := sim.NewFlashMobSim(g, plan, geom, benchSeed, tc.mode)
				if err != nil {
					b.Fatal(err)
				}
				rep, err = fm.Run(walkers, 2)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.RemoteAccessesPerStep(), "remote/step")
			b.ReportMetric(rep.TotalBoundNSPerStep(), "bound-ns/step")
		})
	}
}

// --- Table 5 counterpart: simulated case study on FS ---

func BenchmarkTable5Simulated(b *testing.B) {
	geom := mem.ScaledGeometry(64)
	model := profile.NewAnalyticalModel(geom)
	g := benchGraph(b, "FS")
	walkers := int(g.NumVertices())
	b.Run("KnightKing", func(b *testing.B) {
		var rep *sim.Report
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = sim.NewKnightKingSim(g, geom, benchSeed).Run(walkers, 2)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rep.TotalBoundNSPerStep(), "bound-ns/step")
		b.ReportMetric(rep.DRAMBytesPerStep(), "DRAMB/step")
	})
	b.Run("FlashMob", func(b *testing.B) {
		plan, err := part.PlanMCKP(g, part.Config{Walkers: uint64(walkers), Model: model})
		if err != nil {
			b.Fatal(err)
		}
		var rep *sim.Report
		for i := 0; i < b.N; i++ {
			fm, err := sim.NewFlashMobSim(g, plan, geom, benchSeed, sim.NumaNone)
			if err != nil {
				b.Fatal(err)
			}
			rep, err = fm.Run(walkers, 2)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rep.TotalBoundNSPerStep(), "bound-ns/step")
		b.ReportMetric(rep.DRAMBytesPerStep(), "DRAMB/step")
	})
}

// --- Pre-processing (§5.2): degree sort and MCKP planning ---

func BenchmarkPrepDegreeSort(b *testing.B) {
	g := benchGraph(b, "YH")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.SortByDegreeDesc(g)
	}
}

func BenchmarkPrepMCKPPlan(b *testing.B) {
	g := benchGraph(b, "YH")
	model := hostCostModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := part.PlanMCKP(g, part.Config{Walkers: uint64(g.NumVertices()), Model: model}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component benchmarks: the pipeline stages in isolation ---

// BenchmarkComponentShuffle contrasts the staging modes and executors at
// benchV scale. Note the regime: 40K walkers are cache-resident, where
// staging shows its copy overhead but not its DRAM-miss savings — the
// representative measurement is `make bench-shuffle` (fmbench -exp
// shuffle), which runs 2^26 walkers and records BENCH_shuffle.json.
func BenchmarkComponentShuffle(b *testing.B) {
	g := benchGraph(b, "FS")
	plan, err := part.PlanUniform(g, part.Config{MaxBins: 2048}, profile.DS)
	if err != nil {
		b.Fatal(err)
	}
	walkers := int(g.NumVertices())
	w := make([]graph.VID, walkers)
	sw := make([]graph.VID, walkers)
	next := make([]graph.VID, walkers)
	for i := range w {
		w[i] = graph.VID(uint32(i) % g.NumVertices())
	}
	run := func(b *testing.B, sh *walk.Shuffler) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sh.Forward(w, sw, nil, nil); err != nil {
				b.Fatal(err)
			}
			if err := sh.Reverse(w, sw, next, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(walkers), "ns/walker")
	}
	workerCounts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		workerCounts = append(workerCounts, n)
	}
	// unbuffered = both staging paths off; wc-gather = the production
	// default (scalar scatter + write-combined gather); wc-full = both on.
	variants := []struct {
		label string
		tune  func(*walk.Shuffler)
	}{
		{"unbuffered", func(sh *walk.Shuffler) { sh.SetWriteCombining(false) }},
		{"wc-gather", nil},
		{"wc-full", func(sh *walk.Shuffler) { sh.SetWriteCombining(true) }},
	}
	for _, workers := range workerCounts {
		for _, v := range variants {
			b.Run(fmt.Sprintf("%s-spawn/w%d", v.label, workers), func(b *testing.B) {
				sh, err := walk.NewShuffler(plan, walkers, workers)
				if err != nil {
					b.Fatal(err)
				}
				if v.tune != nil {
					v.tune(sh)
				}
				run(b, sh)
			})
			b.Run(fmt.Sprintf("%s-pool/w%d", v.label, workers), func(b *testing.B) {
				p := pool.New(workers)
				defer p.Close()
				sh, err := walk.NewShufflerPool(plan, walkers, p)
				if err != nil {
					b.Fatal(err)
				}
				if v.tune != nil {
					v.tune(sh)
				}
				run(b, sh)
			})
		}
	}
}

func BenchmarkComponentMT19937VsXorshift(b *testing.B) {
	// The §5.2 RNG observation: MT ≫ xorshift* in compute cost.
	b.Run("MT19937", func(b *testing.B) {
		src := rng.NewMT19937(benchSeed)
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += src.Uint64()
		}
		_ = sink
	})
	b.Run("XorShift64Star", func(b *testing.B) {
		src := rng.NewXorShift64Star(benchSeed)
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += src.Uint64()
		}
		_ = sink
	})
}
