package flashmob

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func smallGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Generate("YT", 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEndToEndDeepWalk(t *testing.T) {
	g := smallGraph(t)
	sys, err := New(g, Options{Seed: 2, RecordPaths: true, TargetGroups: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Walk(2000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Walkers() != 2000 || res.Steps() != 10 || res.TotalSteps() != 20000 {
		t.Fatalf("shape: %d walkers %d steps", res.Walkers(), res.Steps())
	}
	if res.PerStepNS() <= 0 {
		t.Error("PerStepNS not positive")
	}
	paths, err := res.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2000 || len(paths[0]) != 11 {
		t.Fatalf("paths shape: %d × %d", len(paths), len(paths[0]))
	}
	// Paths are walks in ORIGINAL vertex IDs.
	for _, p := range paths[:100] {
		for i := 0; i+1 < len(p); i++ {
			if p[i] == p[i+1] && g.Degree(p[i]) == 0 {
				continue
			}
			if !g.HasEdge(p[i], p[i+1]) {
				t.Fatalf("path transition %d→%d not an edge in the ORIGINAL graph", p[i], p[i+1])
			}
		}
	}
	tm := res.Timing()
	if tm.Sample <= 0 || tm.Shuffle <= 0 {
		t.Error("timing breakdown missing")
	}
}

func TestDefaultWalkUsesSpecDefaults(t *testing.T) {
	g := smallGraph(t)
	sys, err := New(g, Options{Seed: 3, TargetGroups: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Walk(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Walkers() != uint64(g.NumVertices()) || res.Steps() != 80 {
		t.Errorf("defaults: %d walkers %d steps", res.Walkers(), res.Steps())
	}
}

func TestPlanSummary(t *testing.T) {
	g := smallGraph(t)
	sys, err := New(g, Options{Seed: 4, TargetGroups: 16})
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Plan()
	if p.NumVPs == 0 || p.NumGroups == 0 || p.Bins == 0 {
		t.Fatalf("empty plan summary: %+v", p)
	}
	if p.PSVertices+p.DSVertices != g.NumVertices() {
		t.Errorf("policy vertex counts %d+%d != |V| %d", p.PSVertices, p.DSVertices, g.NumVertices())
	}
}

func TestVisitCountsOriginalIDs(t *testing.T) {
	g := smallGraph(t)
	sys, err := New(g, Options{Seed: 5, RecordPaths: true, EdgeUniformInit: true, TargetGroups: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Walk(30000, 5)
	if err != nil {
		t.Fatal(err)
	}
	visits, err := res.VisitCounts()
	if err != nil {
		t.Fatal(err)
	}
	// The highest-degree ORIGINAL vertex should be among the most
	// visited.
	var hub VID
	for v := uint32(0); v < g.NumVertices(); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	var better int
	for v := range visits {
		if visits[v] > visits[hub] {
			better++
		}
	}
	if better > 5 {
		t.Errorf("hub vertex ranked %d-th by visits; remapping broken?", better+1)
	}
	// Table 2 statistics work end to end.
	groups, err := res.DegreeGroupStats(g)
	if err != nil {
		t.Fatal(err)
	}
	var visitSum float64
	for _, grp := range groups {
		visitSum += grp.VisitShare
	}
	if math.Abs(visitSum-1) > 1e-9 {
		t.Errorf("visit shares sum to %v", visitSum)
	}
}

func TestPathsWithoutRecording(t *testing.T) {
	g := smallGraph(t)
	sys, err := New(g, Options{Seed: 6, TargetGroups: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Walk(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Paths(); err == nil {
		t.Error("Paths without RecordPaths should error")
	}
	if _, err := res.VisitCounts(); err == nil {
		t.Error("VisitCounts without RecordPaths should error")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("nope", 1, 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	bad := &Graph{Offsets: []uint64{0, 5}, Targets: []VID{0}}
	if _, err := New(bad, Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestBuildGraphAndEdgeList(t *testing.T) {
	g, err := BuildGraph([]Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Errorf("undirected build has %d edges", g.NumEdges())
	}
	g2, err := LoadEdgeList(strings.NewReader("# c\n0 1\n1 2\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 {
		t.Errorf("edge list loaded %d edges", g2.NumEdges())
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := smallGraph(t)
	dir := t.TempDir()
	bin := filepath.Join(dir, "g.bin")
	if err := SaveFile(bin, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(bin, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Error("binary round trip changed shape")
	}
	// Text fallback.
	txt := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(txt, []byte("0 1\n1 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g3, err := LoadFile(txt, false)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() != 2 {
		t.Errorf("text load: %d edges", g3.NumEdges())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing"), false); err == nil {
		t.Error("missing file accepted")
	}
}

func TestNode2VecEndToEnd(t *testing.T) {
	g := smallGraph(t)
	sys, err := New(g, Options{Algorithm: Node2Vec(1, 2), Seed: 7, RecordPaths: true, TargetGroups: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Walk(500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps() != 40 {
		t.Errorf("node2vec default steps = %d, want 40", res.Steps())
	}
	paths, err := res.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 500 {
		t.Errorf("%d paths", len(paths))
	}
}

func TestMemoryBudgetEpisodes(t *testing.T) {
	g := smallGraph(t)
	sys, err := New(g, Options{Seed: 8, MemoryBudget: 4096, TargetGroups: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Walk(2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes() < 2 {
		t.Errorf("episodes = %d, want several under a tiny budget", res.Episodes())
	}
}

func TestSelfAvoidingEndToEnd(t *testing.T) {
	g := smallGraph(t)
	sys, err := New(g, Options{
		Algorithm:    SelfAvoiding(2, 10, 0.001),
		Seed:         9,
		RecordPaths:  true,
		TargetGroups: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Walk(1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := res.Paths()
	if err != nil {
		t.Fatal(err)
	}
	var revisits, moves int
	for _, p := range paths {
		for i := 3; i < len(p); i++ {
			// Skip positions where the walk had no real choice (degree ≤ 2
			// forces revisits); the statistical claim is about the bulk.
			if p[i] == p[i-1] || p[i] == p[i-2] {
				revisits++
			}
			moves++
		}
	}
	if rate := float64(revisits) / float64(moves); rate > 0.05 {
		t.Errorf("window-2 revisit rate %.4f through public API, want < 0.05", rate)
	}
}

func TestPlanDescriptionAndJSON(t *testing.T) {
	g := smallGraph(t)
	sys, err := New(g, Options{Seed: 10, TargetGroups: 16})
	if err != nil {
		t.Fatal(err)
	}
	desc := sys.PlanDescription()
	if !strings.Contains(desc, "plan:") || !strings.Contains(desc, "groups") {
		t.Errorf("description missing structure:\n%s", desc)
	}
	var buf strings.Builder
	if err := sys.PlanJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "group_size_log") {
		t.Error("plan JSON missing fields")
	}
}
