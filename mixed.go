package flashmob

import (
	"fmt"

	"flashmob/internal/core"
	"flashmob/internal/graph"
)

// CohortSpec describes one walker cohort of a mixed walk: its own
// algorithm, walker count, walk length, and seed. Cohorts of one
// WalkMixed call share the engine's sample→shuffle pipeline — one
// partition sweep per step serves them all — while each samples through
// its own algorithm's kernels.
type CohortSpec struct {
	// Algorithm is the cohort's walk. Any algorithm the System's build
	// supports may appear, independent of the Options.Algorithm the System
	// was built with; weighted algorithms additionally require the System
	// to have been built with a weighted Options.Algorithm (the alias
	// tables are a build-time artifact).
	Algorithm Algorithm
	// Walkers is the cohort's walker count (0 = |V|).
	Walkers uint64
	// Steps is the cohort's walk length (0 = the algorithm's default).
	// Cohorts with shorter walks retire early instead of padding the
	// batch to the longest walk.
	Steps int
	// Seed drives the cohort's walker placement and every edge draw,
	// exactly as WalkSeeded's seed does for a solo run: the cohort's
	// trajectories are bitwise-identical to the same (algorithm, seed,
	// walkers, steps) running alone, whatever rides alongside.
	Seed uint64
}

// MixedResult reports a completed mixed walk. Vertex IDs in every
// accessor are the caller's original IDs.
type MixedResult struct {
	inner   *core.MixedResult
	reorder *graph.Reordering
}

// WalkMixed advances every cohort through one shared pipeline run on a
// fresh session. See Session.WalkMixed for the determinism contract.
func (s *System) WalkMixed(cohorts []CohortSpec) (*MixedResult, error) {
	res, err := s.engine.RunMixed(coreCohorts(cohorts))
	if err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	return &MixedResult{inner: res, reorder: s.reorder}, nil
}

// WalkMixed advances every cohort through one shared pipeline run: all
// cohorts' walkers shuffle together and are sampled in one partition
// sweep per step, each partition chunk dispatched per cohort to that
// cohort's algorithm. On a freshly acquired session each cohort's
// trajectories are a pure function of (System build, algorithm, seed,
// walkers, steps) — bitwise-identical to the same cohort running alone
// via WalkSeeded — which is what lets the serving layer coalesce
// requests for different algorithms into one run. Mixed walks never
// split into episodes: with Options.MemoryBudget set, a batch whose
// walker arrays exceed the budget returns an error instead.
func (s *Session) WalkMixed(cohorts []CohortSpec) (*MixedResult, error) {
	res, err := s.inner.RunMixed(coreCohorts(cohorts))
	if err != nil {
		return nil, fmt.Errorf("flashmob: %w", err)
	}
	return &MixedResult{inner: res, reorder: s.reorder}, nil
}

// coreCohorts maps the public cohort specs onto the engine's.
func coreCohorts(cohorts []CohortSpec) []core.Cohort {
	out := make([]core.Cohort, len(cohorts))
	for i, c := range cohorts {
		out[i] = core.Cohort{Spec: c.Algorithm, Walkers: c.Walkers, Steps: c.Steps, Seed: c.Seed}
	}
	return out
}

// NumCohorts returns how many cohorts the walk carried.
func (r *MixedResult) NumCohorts() int { return len(r.inner.Cohorts) }

// Paths returns cohort c's paths — one per walker, in original vertex
// IDs, in the caller's cohort order. Requires Options.RecordPaths.
func (r *MixedResult) Paths(c int) ([][]VID, error) {
	h := r.inner.Cohorts[c].History
	if h == nil {
		return nil, fmt.Errorf("flashmob: paths not recorded; set Options.RecordPaths")
	}
	paths := h.Transpose()
	for _, p := range paths {
		for i, v := range p {
			p[i] = r.reorder.NewToOld[v]
		}
	}
	return paths, nil
}

// CohortWalkers returns cohort c's walker count.
func (r *MixedResult) CohortWalkers(c int) uint64 { return r.inner.Cohorts[c].Walkers }

// CohortSteps returns cohort c's resolved walk length.
func (r *MixedResult) CohortSteps(c int) int { return r.inner.Cohorts[c].Steps }

// Walkers returns the total walker count across cohorts.
func (r *MixedResult) Walkers() uint64 { return r.inner.Walkers }

// TotalSteps returns the sum of the cohorts' walker-steps.
func (r *MixedResult) TotalSteps() uint64 { return r.inner.TotalSteps }

// PerStepNS returns average wall nanoseconds per walker-step across the
// whole mixed run.
func (r *MixedResult) PerStepNS() float64 { return r.inner.PerStepNS() }

// Timing returns the run's stage breakdown.
func (r *MixedResult) Timing() Timing {
	return Timing{
		Total:   r.inner.Duration,
		Sample:  r.inner.SampleTime,
		Shuffle: r.inner.ShuffleTime,
		Other:   r.inner.OtherTime,
	}
}

// Report returns the run's metrics snapshot (nil unless the System was
// created with Options.Metrics).
func (r *MixedResult) Report() *Report { return r.inner.Report }
