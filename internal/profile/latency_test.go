package profile

import "testing"

func TestMeasureLatencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("latency micro-benchmarks skipped in -short")
	}
	// Small (L1-resident) vs large (cache-exceeding) working sets: the
	// pointer chase must slow down dramatically on the large set, and
	// within each set Seq ≤ Chase.
	small := MeasureLatency(16<<10, 1<<18, 1)
	large := MeasureLatency(64<<20, 1<<18, 2)
	if small.SeqNS <= 0 || small.RandNS <= 0 || small.ChaseNS <= 0 {
		t.Fatalf("non-positive latencies: %+v", small)
	}
	if large.ChaseNS < 2*small.ChaseNS {
		t.Errorf("DRAM chase %.2fns not ≫ L1 chase %.2fns", large.ChaseNS, small.ChaseNS)
	}
	if large.SeqNS > large.ChaseNS {
		t.Errorf("sequential (%.2f) slower than chase (%.2f) on large set", large.SeqNS, large.ChaseNS)
	}
	if large.RandNS > large.ChaseNS {
		t.Errorf("independent random (%.2f) slower than chase (%.2f): no MLP benefit", large.RandNS, large.ChaseNS)
	}
}
