package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Point is one measured profiling sample: a VP shape, a policy, and the
// measured per-walker-step sampling cost.
type Point struct {
	Policy    Policy  `json:"policy"`
	Vertices  uint64  `json:"vertices"`
	AvgDegree float64 `json:"avg_degree"`
	Density   float64 `json:"density"`
	StepNS    float64 `json:"step_ns"`
}

// Table is a measured cost model: a cloud of profiling points queried by
// nearest-neighbour interpolation in log-space. It mirrors the paper's
// offline profiling output — machine-dependent but graph-independent, so a
// table measured once is reusable across graphs (§4.4).
type Table struct {
	// Points holds the measurements, kept sorted for deterministic output.
	Points []Point `json:"points"`
	// ShuffleNS is the measured per-walker-step cost of one shuffle level.
	ShuffleNS float64 `json:"shuffle_ns"`
	// MachineLabel records where the table was measured.
	MachineLabel string `json:"machine_label,omitempty"`
}

// Add inserts a measurement.
func (t *Table) Add(p Point) {
	t.Points = append(t.Points, p)
}

// sortPoints orders points deterministically (policy, vertices, degree,
// density).
func (t *Table) sortPoints() {
	sort.Slice(t.Points, func(i, j int) bool {
		a, b := t.Points[i], t.Points[j]
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		if a.Vertices != b.Vertices {
			return a.Vertices < b.Vertices
		}
		if a.AvgDegree != b.AvgDegree {
			return a.AvgDegree < b.AvgDegree
		}
		return a.Density < b.Density
	})
}

// SampleStepNS implements CostModel by inverse-distance-weighted
// interpolation over the nearest measured points in (log vertices,
// log degree, log density) space, restricted to the requested policy.
func (t *Table) SampleStepNS(p Policy, shape VPShape) float64 {
	type cand struct {
		dist float64
		ns   float64
	}
	lv := math.Log2(float64(shape.Vertices) + 1)
	ld := math.Log2(shape.AvgDegree + 1)
	lr := math.Log2(shape.Density + 1e-6)
	var best []cand
	for _, pt := range t.Points {
		if pt.Policy != p {
			continue
		}
		dv := lv - math.Log2(float64(pt.Vertices)+1)
		dd := ld - math.Log2(pt.AvgDegree+1)
		dr := lr - math.Log2(pt.Density+1e-6)
		best = append(best, cand{dist: dv*dv + dd*dd + dr*dr, ns: pt.StepNS})
	}
	if len(best) == 0 {
		return math.NaN()
	}
	sort.Slice(best, func(i, j int) bool { return best[i].dist < best[j].dist })
	k := 4
	if len(best) < k {
		k = len(best)
	}
	var num, den float64
	for _, c := range best[:k] {
		w := 1 / (c.dist + 1e-9)
		num += w * c.ns
		den += w
	}
	return num / den
}

// ShuffleStepNS implements CostModel.
func (t *Table) ShuffleStepNS() float64 { return t.ShuffleNS }

// Write serializes the table as JSON.
func (t *Table) Write(w io.Writer) error {
	t.sortPoints()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("profile: encode table: %w", err)
	}
	return nil
}

// ReadTable deserializes a table written by Write.
func ReadTable(r io.Reader) (*Table, error) {
	var t Table
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("profile: decode table: %w", err)
	}
	for i, p := range t.Points {
		if p.StepNS <= 0 || math.IsNaN(p.StepNS) {
			return nil, fmt.Errorf("profile: point %d has invalid cost %v", i, p.StepNS)
		}
		if p.Policy != PS && p.Policy != DS {
			return nil, fmt.Errorf("profile: point %d has invalid policy %d", i, p.Policy)
		}
	}
	return &t, nil
}

var _ CostModel = (*Table)(nil)
