package profile

import "flashmob/internal/mem"

// AnalyticalModel is a deterministic cost model assembled from a machine
// geometry and the paper's Table 1 latency matrix. It reproduces the
// qualitative structure of the paper's Figure 6:
//
//  1. both policies speed up when their working set fits a faster level;
//  2. PS gets cheaper as degree grows (better utilization of sequentially
//     read pre-sampled cache lines), DS is degree-insensitive;
//  3. density helps both policies while data fits in cache and neither
//     once it spills to DRAM;
//  4. PS-DRAM is the worst combination: its per-vertex buffer-cursor seeks
//     become random DRAM reads and its many streams thrash.
type AnalyticalModel struct {
	Geom mem.Geometry
	// UsableFraction discounts cache capacity for tags/metadata/co-runner
	// interference; the paper's planner similarly avoids exactly filling a
	// level. Default 0.75.
	UsableFraction float64
}

// NewAnalyticalModel returns a model for geometry g.
func NewAnalyticalModel(g mem.Geometry) *AnalyticalModel {
	return &AnalyticalModel{Geom: g, UsableFraction: 0.75}
}

// sparsePlanRho is the global walker density (walkers per edge) below
// which PS pricing charges refill waste. Every default plan — |V| walkers,
// so ρ = 1/avgDegree ≥ ~0.02 on real degree distributions — sits above
// the gate and is priced exactly as before; only explicitly serving-sized
// plans (part.Config.Walkers a few thousand on a multi-million-edge
// graph) enter the sparse regime.
const sparsePlanRho = 0.01

// sparseHorizonSteps is the walk length over which a sparse-regime refill
// can amortize before its buffers are reset. Serving walks here are short
// (tens of steps); using a short horizon errs toward DS, which is the
// safe side — an under-amortized PS pick costs degree-sized refills,
// an over-charged one costs a single extra random read.
const sparseHorizonSteps = 16

// fitLevel returns where a working set of ws bytes resides.
func (m *AnalyticalModel) fitLevel(ws uint64) mem.Location {
	f := m.UsableFraction
	if f <= 0 || f > 1 {
		f = 0.75
	}
	return levelFor(m.Geom, ws, f)
}

// LevelFor returns the cache level a randomly-accessed working set of ws
// bytes occupies under geom, using the planner's default 75% usable
// capacity fraction.
func LevelFor(geom mem.Geometry, ws uint64) mem.Location {
	return levelFor(geom, ws, 0.75)
}

func levelFor(geom mem.Geometry, ws uint64, f float64) mem.Location {
	switch {
	case float64(ws) <= f*float64(geom.L1.SizeBytes):
		return mem.LocL1
	case float64(ws) <= f*float64(geom.L2.SizeBytes):
		return mem.LocL2
	case float64(ws) <= f*float64(geom.L3.SizeBytes):
		return mem.LocL3
	default:
		return mem.LocLocalMem
	}
}

// below returns the next-slower location (the one misses at loc go to).
func below(loc mem.Location) mem.Location {
	if loc >= mem.LocLocalMem {
		return mem.LocLocalMem
	}
	return loc + 1
}

// rand and seq are latency-table accessors.
func (m *AnalyticalModel) rand(loc mem.Location) float64 { return m.Geom.Latency[mem.Rand][loc] }
func (m *AnalyticalModel) seq(loc mem.Location) float64  { return m.Geom.Latency[mem.Seq][loc] }

// lineElems is how many 4-byte VIDs fit one cache line.
func (m *AnalyticalModel) lineElems() float64 { return float64(m.Geom.LineBytes) / 4 }

// walkerStreamNS is the per-step cost of the single-stream sequential read
// and write of the walker-state arrays, common to both policies (Table 3
// "Common" rows). Streams come from DRAM; the per-element cost is the
// sequential latency scaled from the 8-byte word of Table 1 to a 4-byte
// VID.
func (m *AnalyticalModel) walkerStreamNS() float64 {
	perElem := m.seq(mem.LocLocalMem) * 4 / 8
	return 2 * perElem // one read stream + one write stream
}

// SampleStepNS implements CostModel.
func (m *AnalyticalModel) SampleStepNS(p Policy, shape VPShape) float64 {
	if shape.Vertices == 0 {
		return 0
	}
	d := shape.AvgDegree
	if d < 1 {
		d = 1
	}
	rho := shape.Density
	if rho <= 0 {
		rho = 1e-3
	}
	ws := WorkingSetBytes(p, shape, m.Geom.LineBytes)
	loc := m.fitLevel(ws)
	common := m.walkerStreamNS()

	switch p {
	case DS:
		if loc == mem.LocLocalMem {
			// Spilled: every edge read is an independent random DRAM
			// access; density cannot help because lines rarely survive
			// between touches (Fig 6 observation 3).
			return common + m.rand(mem.LocLocalMem)
		}
		// Resident after warm-up: pay the hit latency, plus the cold/first
		// touch of each line amortized over the expected touches per line
		// per iteration (density × edges per line).
		touchesPerLine := rho * m.lineElems()
		if touchesPerLine < 1 {
			touchesPerLine = 1
		}
		cold := m.rand(below(loc)) / touchesPerLine
		return common + m.rand(loc) + cold

	case PS:
		// batch is the number of co-located walkers a vertex serves per
		// iteration (ρ·d): per-vertex fixed costs amortize over it. This
		// is the access-density effect that makes PS improve with degree
		// (Fig 6 observation 2).
		batch := rho * d
		if batch < 1 {
			batch = 1
		}

		// Refill waste: a refill produces d samples up front, but over a
		// walk of sparseHorizonSteps steps a vertex only consumes about
		// ρ·d per step. Dense runs (ρ ≥ sparsePlanRho — every default
		// |V|-walker plan, where ρ = 1/avgDegree) drain buffers fully and
		// are priced exactly as before; below the gate the unconsumed
		// rest is charged to the samples actually drawn, which is what
		// makes the planner direct-sample for serving-sized batches
		// instead of paying degree-sized hub refills per visit.
		waste := 1.0
		if rho < sparsePlanRho {
			if consumed := rho * d * sparseHorizonSteps; consumed < d {
				if consumed < 1 {
					consumed = 1
				}
				waste = d / consumed
			}
		}

		// Production (refill): random reads within one adjacency list
		// (which fits a level on its own) + a sequential write stream +
		// per-refill vertex metadata amortized over the d samples
		// produced.
		adjLoc := m.fitLevel(uint64(d * 4))
		prod := (m.rand(adjLoc) + m.seq(loc)*4/8 + m.rand(loc)/d) * waste

		// Consumption: the vertex's buffer-cursor seek (shared by the
		// batch), plus the sequential read of the pre-sampled line, whose
		// miss is amortized over the samples consumed per line visit.
		samplesPerLine := batch
		if samplesPerLine > m.lineElems() {
			samplesPerLine = m.lineElems()
		}
		var cons float64
		if loc == mem.LocLocalMem {
			// Too many streams for the cache: cursor seeks and buffer
			// lines both come from DRAM.
			cons = m.rand(mem.LocLocalMem)/batch + m.rand(mem.LocLocalMem) +
				m.rand(mem.LocLocalMem)/samplesPerLine
		} else {
			cons = m.rand(loc)/batch + m.seq(loc) + m.rand(below(loc))/samplesPerLine
		}
		return common + prod + cons

	default:
		panic("profile: unknown policy")
	}
}

// ShuffleStepNS implements CostModel: per walker-step, one level of
// shuffle performs two sequential scans of the walker array (count, then
// place) and one scattered-but-streaming write into per-VP bins.
func (m *AnalyticalModel) ShuffleStepNS() float64 {
	perElem := m.seq(mem.LocLocalMem) * 4 / 8
	return 4 * perElem // 2 scan reads + bin write + reverse-shuffle write
}

var _ CostModel = (*AnalyticalModel)(nil)
