package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"flashmob/internal/mem"
)

func model() *AnalyticalModel {
	return NewAnalyticalModel(mem.PaperGeometry())
}

// shapeFitting builds a VPShape whose working set under policy p lands at
// the given location for the paper geometry.
func shapeFitting(t *testing.T, m *AnalyticalModel, p Policy, loc mem.Location, deg, density float64) VPShape {
	t.Helper()
	for v := uint64(4); v < 1<<34; v *= 2 {
		s := VPShape{Vertices: v, AvgDegree: deg, Density: density}
		if m.fitLevel(WorkingSetBytes(p, s, 64)) == loc {
			return s
		}
	}
	t.Fatalf("no shape fits %v under %v at degree %v", loc, p, deg)
	return VPShape{}
}

func TestWorkingSetBytes(t *testing.T) {
	s := VPShape{Vertices: 100, AvgDegree: 10}
	if got, want := WorkingSetBytes(DS, s, 64), uint64(1000*4+100*8); got != want {
		t.Errorf("DS ws = %d, want %d", got, want)
	}
	if got, want := WorkingSetBytes(PS, s, 64), uint64(40+100*16+100*64); got != want {
		t.Errorf("PS ws = %d, want %d", got, want)
	}
}

func TestWorkingSetPSAllowsLargerPartitions(t *testing.T) {
	// Paper §4.2: to fit the same cache level with high-degree vertices,
	// PS allows much larger partitions than DS.
	s := VPShape{Vertices: 1000, AvgDegree: 200}
	if WorkingSetBytes(PS, s, 64) >= WorkingSetBytes(DS, s, 64) {
		t.Error("PS working set should be smaller than DS at high degree")
	}
}

func TestFitLevelMonotone(t *testing.T) {
	m := model()
	locs := []mem.Location{
		m.fitLevel(1 << 10), m.fitLevel(256 << 10), m.fitLevel(8 << 20), m.fitLevel(1 << 30),
	}
	want := []mem.Location{mem.LocL1, mem.LocL2, mem.LocL3, mem.LocLocalMem}
	for i := range locs {
		if locs[i] != want[i] {
			t.Errorf("fitLevel case %d = %v, want %v", i, locs[i], want[i])
		}
	}
}

// TestFig6Observation1 — both policies benefit from fitting into faster
// caches.
func TestFig6Observation1(t *testing.T) {
	m := model()
	for _, p := range []Policy{PS, DS} {
		var prev float64
		for i, loc := range []mem.Location{mem.LocL1, mem.LocL2, mem.LocL3, mem.LocLocalMem} {
			s := shapeFitting(t, m, p, loc, 64, 1)
			c := m.SampleStepNS(p, s)
			if i > 0 && c < prev {
				t.Errorf("%v: cost at %v (%.2f) cheaper than previous level (%.2f)", p, loc, c, prev)
			}
			prev = c
		}
	}
}

// TestFig6Observation2 — PS gets cheaper with degree; DS is insensitive.
func TestFig6Observation2(t *testing.T) {
	m := model()
	psLow := m.SampleStepNS(PS, shapeFitting(t, m, PS, mem.LocL2, 16, 1))
	psHigh := m.SampleStepNS(PS, shapeFitting(t, m, PS, mem.LocL2, 1024, 1))
	if psHigh >= psLow {
		t.Errorf("PS cost should fall with degree: d=16 %.2f vs d=1024 %.2f", psLow, psHigh)
	}
	dsLow := m.SampleStepNS(DS, shapeFitting(t, m, DS, mem.LocL2, 16, 1))
	dsHigh := m.SampleStepNS(DS, shapeFitting(t, m, DS, mem.LocL2, 1024, 1))
	if math.Abs(dsLow-dsHigh) > 0.3*dsLow {
		t.Errorf("DS should be degree-insensitive: d=16 %.2f vs d=1024 %.2f", dsLow, dsHigh)
	}
}

// TestFig6Observation3 — density helps in cache, not in DRAM.
func TestFig6Observation3(t *testing.T) {
	m := model()
	inCacheDense := m.SampleStepNS(DS, shapeFitting(t, m, DS, mem.LocL2, 16, 1))
	inCacheSparse := m.SampleStepNS(DS, shapeFitting(t, m, DS, mem.LocL2, 16, 0.25))
	if inCacheDense >= inCacheSparse {
		t.Errorf("in-cache DS should benefit from density: ρ=1 %.2f vs ρ=0.25 %.2f",
			inCacheDense, inCacheSparse)
	}
	dramDense := m.SampleStepNS(DS, shapeFitting(t, m, DS, mem.LocLocalMem, 16, 1))
	dramSparse := m.SampleStepNS(DS, shapeFitting(t, m, DS, mem.LocLocalMem, 16, 0.25))
	if dramDense != dramSparse {
		t.Errorf("DRAM DS should be density-insensitive: %.2f vs %.2f", dramDense, dramSparse)
	}
}

// TestFig6Observation4 — PS-DRAM is the worst combination.
func TestFig6Observation4(t *testing.T) {
	m := model()
	psDRAM := m.SampleStepNS(PS, shapeFitting(t, m, PS, mem.LocLocalMem, 64, 1))
	for _, p := range []Policy{PS, DS} {
		for _, loc := range []mem.Location{mem.LocL1, mem.LocL2, mem.LocL3} {
			c := m.SampleStepNS(p, shapeFitting(t, m, p, loc, 64, 1))
			if c >= psDRAM {
				t.Errorf("%v@%v (%.2f) should be cheaper than PS@DRAM (%.2f)", p, loc, c, psDRAM)
			}
		}
	}
	dsDRAM := m.SampleStepNS(DS, shapeFitting(t, m, DS, mem.LocLocalMem, 64, 1))
	if psDRAM <= dsDRAM {
		t.Errorf("PS@DRAM (%.2f) should exceed DS@DRAM (%.2f)", psDRAM, dsDRAM)
	}
}

func TestShuffleCostPositive(t *testing.T) {
	if c := model().ShuffleStepNS(); c <= 0 || c > 100 {
		t.Errorf("shuffle cost %.2f implausible", c)
	}
}

func TestZeroVertexShape(t *testing.T) {
	if c := model().SampleStepNS(DS, VPShape{}); c != 0 {
		t.Errorf("empty shape cost = %v, want 0", c)
	}
}

func TestPolicyString(t *testing.T) {
	if PS.String() != "PS" || DS.String() != "DS" {
		t.Error("policy names wrong")
	}
	if !strings.Contains(Policy(9).String(), "9") {
		t.Error("unknown policy should include number")
	}
}

func TestTableInterpolation(t *testing.T) {
	tab := &Table{ShuffleNS: 1.5}
	tab.Add(Point{Policy: DS, Vertices: 1024, AvgDegree: 16, Density: 1, StepNS: 2})
	tab.Add(Point{Policy: DS, Vertices: 4096, AvgDegree: 16, Density: 1, StepNS: 4})
	tab.Add(Point{Policy: PS, Vertices: 1024, AvgDegree: 16, Density: 1, StepNS: 10})
	// Exact hit returns roughly the measured value.
	got := tab.SampleStepNS(DS, VPShape{Vertices: 1024, AvgDegree: 16, Density: 1})
	if math.Abs(got-2) > 0.2 {
		t.Errorf("exact-point lookup = %.3f, want ≈2", got)
	}
	// Midpoint lands between neighbours.
	mid := tab.SampleStepNS(DS, VPShape{Vertices: 2048, AvgDegree: 16, Density: 1})
	if mid <= 2 || mid >= 4 {
		t.Errorf("midpoint lookup = %.3f, want in (2,4)", mid)
	}
	// Policy filter: PS query should not see DS points.
	ps := tab.SampleStepNS(PS, VPShape{Vertices: 1024, AvgDegree: 16, Density: 1})
	if math.Abs(ps-10) > 0.2 {
		t.Errorf("PS lookup = %.3f, want ≈10", ps)
	}
}

func TestTableEmptyPolicyNaN(t *testing.T) {
	tab := &Table{}
	if !math.IsNaN(tab.SampleStepNS(DS, VPShape{Vertices: 1})) {
		t.Error("empty table should return NaN")
	}
}

func TestTableRoundTrip(t *testing.T) {
	tab := &Table{ShuffleNS: 2.25, MachineLabel: "test"}
	tab.Add(Point{Policy: PS, Vertices: 512, AvgDegree: 8, Density: 0.5, StepNS: 3.5})
	tab.Add(Point{Policy: DS, Vertices: 256, AvgDegree: 2, Density: 1, StepNS: 1.25})
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 2 || got.ShuffleNS != 2.25 || got.MachineLabel != "test" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadTableRejectsBadPoints(t *testing.T) {
	bad := `{"points":[{"policy":0,"vertices":1,"avg_degree":1,"density":1,"step_ns":-5}]}`
	if _, err := ReadTable(strings.NewReader(bad)); err == nil {
		t.Error("negative cost accepted")
	}
	bad2 := `{"points":[{"policy":7,"vertices":1,"avg_degree":1,"density":1,"step_ns":1}]}`
	if _, err := ReadTable(strings.NewReader(bad2)); err == nil {
		t.Error("invalid policy accepted")
	}
	if _, err := ReadTable(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
}
