// Package profile provides sampling-cost models for FlashMob's partition
// planner: the paper's "offline profiling" stage (§4.4).
//
// The planner must know, for a candidate vertex partition (VP) described by
// (vertex count, average degree, walker density, sampling policy), the
// expected per-walker-step sampling cost. The paper obtains this from
// one-time machine-dependent, graph-independent micro-benchmarks (Figure 6
// curves). This package offers two interchangeable providers:
//
//   - AnalyticalModel: a closed-form model composed from the paper's
//     Table 1 latencies and Table 3 access-pattern decomposition. It is
//     deterministic, so the MCKP optimizer and its tests behave identically
//     on every machine.
//
//   - Table: an interpolated lookup table filled by running the real
//     micro-benchmarks on the host (see the core package's Profiler and
//     cmd/fmprofile), exactly like the paper's offline profiling.
package profile

import "fmt"

// Policy is a per-partition edge sampling policy (§4.2).
type Policy int

const (
	// PS is pre-sampling: per-vertex pre-sampled edge buffers, refilled in
	// batch and consumed sequentially by co-located walkers.
	PS Policy = iota
	// DS is direct sampling: each walker draws directly from the adjacency
	// list, with compact regular indexing on uniform-degree partitions.
	DS
)

// String returns the paper's abbreviation.
func (p Policy) String() string {
	switch p {
	case PS:
		return "PS"
	case DS:
		return "DS"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// VPShape describes a candidate vertex partition for costing purposes.
type VPShape struct {
	// Vertices is the number of vertices in the partition.
	Vertices uint64
	// AvgDegree is the mean out-degree of its vertices.
	AvgDegree float64
	// Density is the walker density: walkers currently on the partition
	// divided by its edge count (§4.2 "walker density").
	Density float64
}

// CostModel estimates FlashMob stage costs.
type CostModel interface {
	// SampleStepNS returns the estimated sampling cost in nanoseconds per
	// walker-step for a VP of the given shape under policy p, including
	// the walker-state streaming common to both policies.
	SampleStepNS(p Policy, shape VPShape) float64
	// ShuffleStepNS returns the estimated cost per walker-step of one
	// level of shuffling (two scans: count and place).
	ShuffleStepNS() float64
}

// WorkingSetBytes returns the randomly-accessed working set of a VP under
// each policy (§4.2 "Memory access patterns and partition sizing"):
//
//   - DS must fit all edges of the partition (plus CSR offsets);
//   - PS needs one adjacency list at a time, per-vertex buffer cursors,
//     and one active cache line per vertex's pre-sampled edge stream.
func WorkingSetBytes(p Policy, shape VPShape, lineBytes uint64) uint64 {
	switch p {
	case DS:
		edges := uint64(shape.AvgDegree * float64(shape.Vertices))
		return edges*4 + shape.Vertices*8
	case PS:
		adj := uint64(shape.AvgDegree * 4)
		cursors := shape.Vertices * 16 // buffer cursor + buffer base pointer
		active := shape.Vertices * lineBytes
		return adj + cursors + active
	default:
		panic(fmt.Sprintf("profile: unknown policy %d", p))
	}
}
