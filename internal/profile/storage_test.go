package profile

import (
	"testing"

	"flashmob/internal/mem"
)

func TestBlockStreamNS(t *testing.T) {
	sp := StorageParams{ReadLatencyNS: 100, ReadBandwidthBytesPerNS: 2}
	if got := sp.BlockStreamNS(0); got != 100 {
		t.Fatalf("empty block: got %v, want latency 100", got)
	}
	if got := sp.BlockStreamNS(200); got != 200 {
		t.Fatalf("200B at 2B/ns: got %v, want 100+100", got)
	}
	lat := StorageParams{ReadLatencyNS: 50}
	if got := lat.BlockStreamNS(1 << 30); got != 50 {
		t.Fatalf("latency-only params: got %v, want 50", got)
	}
}

func TestStorageModelAddsStreamCost(t *testing.T) {
	mem := NewAnalyticalModel(mem.PaperGeometry())
	sm := StorageModel{Mem: mem, Storage: DefaultSSD(), EdgeBytes: 4}
	shape := VPShape{Vertices: 1 << 16, AvgDegree: 16, Density: 0.05}
	base := mem.SampleStepNS(DS, shape)
	layered := sm.SampleStepNS(DS, shape)
	if layered <= base {
		t.Fatalf("storage tier should add cost: mem=%v layered=%v", base, layered)
	}
	edges := shape.AvgDegree * float64(shape.Vertices)
	wantExtra := sm.Storage.BlockStreamNS(uint64(edges)*4) / (shape.Density * edges)
	if got := layered - base; got < wantExtra*0.999 || got > wantExtra*1.001 {
		t.Fatalf("stream share: got %v, want %v", got, wantExtra)
	}
	if sm.ShuffleStepNS() != mem.ShuffleStepNS() {
		t.Fatalf("shuffle cost must pass through unchanged")
	}
}

func TestStorageModelMoreWalkersAmortizeBetter(t *testing.T) {
	sm := StorageModel{Mem: NewAnalyticalModel(mem.PaperGeometry()), Storage: DefaultSSD(), EdgeBytes: 4}
	sparse := VPShape{Vertices: 1 << 14, AvgDegree: 8, Density: 0.001}
	dense := sparse
	dense.Density = 0.5
	// Per-step stream surcharge shrinks as walkers share the block.
	sparseExtra := sm.SampleStepNS(DS, sparse) - sm.Mem.SampleStepNS(DS, sparse)
	denseExtra := sm.SampleStepNS(DS, dense) - sm.Mem.SampleStepNS(DS, dense)
	if denseExtra >= sparseExtra {
		t.Fatalf("denser walkers should amortize streaming: sparse=%v dense=%v", sparseExtra, denseExtra)
	}
}

func TestPlanResidentPicksHighestValuePerByte(t *testing.T) {
	classes := []ResidentClass{
		{Bytes: 100, SavedNS: 1000}, // 10 ns/B
		{Bytes: 100, SavedNS: 10},   // 0.1 ns/B
		{Bytes: 100, SavedNS: 500},  // 5 ns/B
	}
	got := PlanResident(classes, 200)
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pin[%d]=%v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestPlanResidentExactOverGreedy(t *testing.T) {
	// Greedy-by-density takes the 60-byte item (10 ns/B) and can then fit
	// neither 50-byte item; the DP takes both 50s for more total value.
	classes := []ResidentClass{
		{Bytes: 60, SavedNS: 600},
		{Bytes: 50, SavedNS: 400},
		{Bytes: 50, SavedNS: 400},
	}
	got := PlanResident(classes, 100)
	if got[0] || !got[1] || !got[2] {
		t.Fatalf("DP should pick the two 50-byte classes, got %v", got)
	}
}

func TestPlanResidentEdgeCases(t *testing.T) {
	if got := PlanResident(nil, 1<<20); len(got) != 0 {
		t.Fatalf("nil classes: got %v", got)
	}
	got := PlanResident([]ResidentClass{{Bytes: 10, SavedNS: 5}}, 0)
	if got[0] {
		t.Fatalf("zero budget must pin nothing")
	}
	got = PlanResident([]ResidentClass{
		{Bytes: 0, SavedNS: 5},          // free win
		{Bytes: 10, SavedNS: 0},         // worthless
		{Bytes: 1 << 40, SavedNS: 1e12}, // can never fit
		{Bytes: 4, SavedNS: 3},
	}, 8)
	want := []bool{true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pin[%d]=%v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestPlanResidentRespectsBudgetWithGranules(t *testing.T) {
	// Budget large enough to trigger granule bucketing; chosen set must
	// never exceed the byte budget even after rounding.
	classes := make([]ResidentClass, 64)
	for i := range classes {
		classes[i] = ResidentClass{Bytes: uint64(1<<20 + i*4097), SavedNS: float64(1 + i)}
	}
	budget := uint64(20 << 20)
	got := PlanResident(classes, budget)
	var used uint64
	for i, p := range got {
		if p {
			used += classes[i].Bytes
		}
	}
	if used > budget {
		t.Fatalf("pinned %d bytes over budget %d", used, budget)
	}
	if used == 0 {
		t.Fatalf("expected some pins under a %d budget", budget)
	}
}
