package profile

import (
	"time"

	"flashmob/internal/rng"
)

// LatencyResult holds measured per-load latencies (nanoseconds) for one
// working-set size, reproducing a column of the paper's Table 1 on the
// host machine.
type LatencyResult struct {
	// WorkingSetBytes is the buffer size the kernels touched.
	WorkingSetBytes uint64
	// SeqNS, RandNS, ChaseNS are per-load times for sequential scans,
	// independent random reads, and dependent pointer chases.
	SeqNS, RandNS, ChaseNS float64
}

// MeasureLatency runs the three Table 1 micro-kernels over a buffer of ws
// bytes, performing at least minLoads loads per kernel.
func MeasureLatency(ws uint64, minLoads uint64, seed uint64) LatencyResult {
	if ws < 1024 {
		ws = 1024
	}
	if minLoads < 1<<16 {
		minLoads = 1 << 16
	}
	n := ws / 8
	buf := make([]uint64, n)

	// Pointer-chase permutation: a single random cycle through the
	// buffer (Sattolo's algorithm), so every load depends on the last.
	src := rng.NewXorShift1024Star(seed)
	perm := make([]uint64, n)
	for i := range perm {
		perm[i] = uint64(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Uint64n(src, i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := uint64(0); i < n; i++ {
		buf[perm[i]] = perm[(i+1)%n]
	}

	res := LatencyResult{WorkingSetBytes: ws}
	var sink uint64

	// Warm the buffer.
	for i := range buf {
		sink += buf[i]
	}

	// Sequential scan.
	loads := uint64(0)
	t0 := time.Now()
	for loads < minLoads {
		for i := range buf {
			sink += buf[i]
		}
		loads += n
	}
	res.SeqNS = float64(time.Since(t0).Nanoseconds()) / float64(loads)

	// Independent random reads: index stream from a cheap LCG whose next
	// value does not depend on loaded data, so the CPU can overlap
	// misses.
	idx := uint64(12345)
	loads = 0
	t0 = time.Now()
	for loads < minLoads {
		for k := 0; k < 1<<14; k++ {
			idx = idx*6364136223846793005 + 1442695040888963407
			sink += buf[(idx>>17)%n]
		}
		loads += 1 << 14
	}
	res.RandNS = float64(time.Since(t0).Nanoseconds()) / float64(loads)

	// Pointer chase: each load's address is the previous load's value.
	p := buf[0]
	loads = 0
	t0 = time.Now()
	for loads < minLoads {
		for k := 0; k < 1<<14; k++ {
			p = buf[p]
		}
		loads += 1 << 14
	}
	res.ChaseNS = float64(time.Since(t0).Nanoseconds()) / float64(loads)
	sink += p
	_ = sink
	return res
}
