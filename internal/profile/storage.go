package profile

// This file extends the offline cost model with a third memory level. The
// paper's planner prices cache vs. DRAM (§4.4); an out-of-core run adds
// storage beneath them, and the same knapsack structure applies: pinning a
// partition's edge block in DRAM costs bytes from a budget and saves that
// block's stream-in time on every step that touches it.

// StorageParams characterizes the block-storage tier under the out-of-core
// engine with the two Table-1-style constants a streaming read needs: fixed
// per-read latency and sequential bandwidth.
type StorageParams struct {
	// ReadLatencyNS is the fixed cost of issuing one block read
	// (syscall + device latency), in nanoseconds.
	ReadLatencyNS float64
	// ReadBandwidthBytesPerNS is the sequential read bandwidth in bytes
	// per nanosecond (1.0 == 1 GB/s). Non-positive means latency-only.
	ReadBandwidthBytesPerNS float64
}

// DefaultSSD returns NVMe-flash-class constants (~60µs issue latency,
// ~2 GB/s sequential reads), the storage analogue of the paper's Table 1
// DRAM numbers. Like AnalyticalModel, it is deterministic so planner tests
// behave identically on every machine.
func DefaultSSD() StorageParams {
	return StorageParams{ReadLatencyNS: 60_000, ReadBandwidthBytesPerNS: 2.0}
}

// BlockStreamNS returns the estimated time to stream one block of the given
// size from storage into DRAM: latency plus transfer.
func (sp StorageParams) BlockStreamNS(bytes uint64) float64 {
	if sp.ReadBandwidthBytesPerNS <= 0 {
		return sp.ReadLatencyNS
	}
	return sp.ReadLatencyNS + float64(bytes)/sp.ReadBandwidthBytesPerNS
}

// StorageModel layers a storage tier beneath an in-memory cost model: the
// sampling cost of a partition is its in-DRAM cost plus its edge block's
// stream-in time amortized over the walkers that share the block each step.
// It satisfies CostModel, so the MCKP partition planner can price an
// out-of-core run with no structural change — cache→DRAM→SSD is the same
// knapsack with one more level.
type StorageModel struct {
	// Mem prices the in-memory stages (cache vs. DRAM level).
	Mem CostModel
	// Storage prices the block reads beneath them.
	Storage StorageParams
	// EdgeBytes is the on-disk size of one edge target; the block size of
	// a partition is EdgeBytes × its edge count.
	EdgeBytes uint64
}

// SampleStepNS implements CostModel: in-memory sampling cost plus the
// partition's stream-in time divided across its expected walkers.
func (m StorageModel) SampleStepNS(p Policy, shape VPShape) float64 {
	mem := m.Mem.SampleStepNS(p, shape)
	edges := shape.AvgDegree * float64(shape.Vertices)
	walkers := shape.Density * edges
	if walkers < 1 {
		walkers = 1
	}
	block := m.Storage.BlockStreamNS(uint64(edges) * m.EdgeBytes)
	return mem + block/walkers
}

// ShuffleStepNS implements CostModel; shuffling runs on memory-resident
// walker state, so the storage tier adds nothing.
func (m StorageModel) ShuffleStepNS() float64 {
	return m.Mem.ShuffleStepNS()
}

// ResidentClass is one pin candidate for PlanResident: a partition whose
// edge block can be held in DRAM instead of re-streamed every step.
type ResidentClass struct {
	// Bytes is the DRAM cost of pinning the block.
	Bytes uint64
	// SavedNS is the streaming time avoided per step while pinned,
	// weighted by how often the partition is touched.
	SavedNS float64
}

// planResidentGranules caps the knapsack DP width; budgets above it are
// bucketed into ceil-rounded granules so the table stays small while never
// overpacking the byte budget.
const planResidentGranules = 4096

// PlanResident solves the storage-tier knapsack: choose the subset of
// partitions to pin in DRAM that maximizes total saved streaming time
// subject to the byte budget. Returns one pin decision per class, in input
// order. It is the 0/1 sibling of the partition planner's MCKP — each
// partition independently picks a level (resident vs. streamed), and the
// DP is exact up to budget granularity (budget/4096 rounding, bytes below
// that granule never overcommit because weights round up).
func PlanResident(classes []ResidentClass, budgetBytes uint64) []bool {
	pinned := make([]bool, len(classes))
	if budgetBytes == 0 || len(classes) == 0 {
		return pinned
	}
	granule := uint64(1)
	if budgetBytes > planResidentGranules {
		granule = (budgetBytes + planResidentGranules - 1) / planResidentGranules
	}
	width := int(budgetBytes/granule) + 1

	// Weightless positive-value classes are free wins; take them outside
	// the DP so zero-byte blocks (empty partitions) never occupy capacity.
	weights := make([]int, len(classes))
	for i, c := range classes {
		if c.SavedNS <= 0 {
			weights[i] = -1 // never worth pinning
			continue
		}
		if c.Bytes == 0 {
			pinned[i] = true
			weights[i] = -1
			continue
		}
		w := int((c.Bytes + granule - 1) / granule)
		if w >= width {
			weights[i] = -1 // can never fit alone
			continue
		}
		weights[i] = w
	}

	best := make([]float64, width)
	took := make([]bool, len(classes)*width)
	for i, c := range classes {
		w := weights[i]
		if w < 0 {
			continue
		}
		row := took[i*width : (i+1)*width]
		for b := width - 1; b >= w; b-- {
			if v := best[b-w] + c.SavedNS; v > best[b] {
				best[b] = v
				row[b] = true
			}
		}
	}

	b := 0
	for cap := 1; cap < width; cap++ {
		if best[cap] > best[b] {
			b = cap
		}
	}
	for i := len(classes) - 1; i >= 0; i-- {
		if weights[i] < 0 {
			continue
		}
		if took[i*width+b] {
			pinned[i] = true
			b -= weights[i]
		}
	}
	return pinned
}
