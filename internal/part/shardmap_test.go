package part

import (
	"testing"

	"flashmob/internal/graph"
)

// TestRangeMapOwnership checks both lookup forms — the small-graph
// direct table and the binary search — against the range boundaries.
func TestRangeMapOwnership(t *testing.T) {
	starts := []graph.VID{0, 10, 10, 25, 40}
	m, err := NewRangeMap(starts)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumOwners() != 4 {
		t.Fatalf("owners = %d, want 4", m.NumOwners())
	}
	// Reference scan against Range.
	for o := 0; o < m.NumOwners(); o++ {
		lo, hi := m.Range(o)
		for v := lo; v < hi; v++ {
			if got := m.OwnerOf(v); got != o {
				t.Fatalf("OwnerOf(%d) = %d, want %d", v, got, o)
			}
		}
	}
	// Force the search path with a graph past the direct-table cap.
	big := []graph.VID{0, 1 << 18, 1<<18 + 7, 1 << 20}
	bm, err := NewRangeMap(big)
	if err != nil {
		t.Fatal(err)
	}
	if bm.direct != nil {
		t.Fatal("expected search form past rangeMapDirectMax")
	}
	for _, v := range []graph.VID{0, 1<<18 - 1, 1 << 18, 1<<18 + 6, 1<<18 + 7, 1<<20 - 1} {
		want := 0
		for o := 0; o < bm.NumOwners(); o++ {
			if lo, hi := bm.Range(o); v >= lo && v < hi {
				want = o
			}
		}
		if got := bm.OwnerOf(v); got != want {
			t.Fatalf("OwnerOf(%d) = %d, want %d", v, got, want)
		}
	}
}

// TestEvenRangeMapMatchesCeilDiv pins NewEvenRangeMap to the ceil-div
// semantics the distributed engine historically used: owner =
// min(v/ceil(n/p), p-1).
func TestEvenRangeMapMatchesCeilDiv(t *testing.T) {
	for _, tc := range []struct {
		n      uint32
		owners int
	}{{10, 4}, {10, 3}, {7, 7}, {5, 8}, {1000, 6}, {1, 1}} {
		m, err := NewEvenRangeMap(tc.n, tc.owners)
		if err != nil {
			t.Fatal(err)
		}
		per := (tc.n + uint32(tc.owners) - 1) / uint32(tc.owners)
		for v := graph.VID(0); v < graph.VID(tc.n); v++ {
			want := int(v / graph.VID(per))
			if want >= tc.owners {
				want = tc.owners - 1
			}
			if got := m.OwnerOf(v); got != want {
				t.Fatalf("n=%d p=%d: OwnerOf(%d) = %d, want %d", tc.n, tc.owners, v, got, want)
			}
		}
	}
}

// TestRangeMapValidation rejects malformed boundaries.
func TestRangeMapValidation(t *testing.T) {
	for _, bad := range [][]graph.VID{
		{},
		{0},
		{1, 5},
		{0, 5, 3},
	} {
		if _, err := NewRangeMap(bad); err == nil {
			t.Fatalf("NewRangeMap(%v) accepted", bad)
		}
	}
}

// shardTestPlan builds a small finalized plan: one group of 2^vpsLog
// partitions over n vertices.
func shardTestPlan(t *testing.T, n uint32, groupLog, vpLog uint) *Plan {
	t.Helper()
	p := &Plan{V: n, GroupSizeLog: groupLog}
	for start := graph.VID(0); start < graph.VID(n); start += 1 << groupLog {
		end := start + 1<<groupLog
		if end > graph.VID(n) {
			end = graph.VID(n)
		}
		p.Groups = append(p.Groups, GroupPlan{Start: start, End: end, VPSizeLog: vpLog})
	}
	if err := Finalize(p); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestShardMapInvariants checks the two-level map: shards tile the
// partitions contiguously, both lookup levels agree, the vertex ranges
// match the partition runs, and the vertex balance is even-ish.
func TestShardMapInvariants(t *testing.T) {
	p := shardTestPlan(t, 1000, 8, 5) // 4 groups, 8 VPs each → 32 VPs
	for _, shards := range []int{1, 2, 3, 4, 7, 32} {
		m, err := NewShardMap(p, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if m.NumShards() != shards {
			t.Fatalf("NumShards = %d, want %d", m.NumShards(), shards)
		}
		prevHi := 0
		for s := 0; s < shards; s++ {
			lo, hi := m.VPRange(s)
			if lo != prevHi || hi <= lo {
				t.Fatalf("shards=%d: shard %d VP range [%d,%d) does not tile (prev hi %d)", shards, s, lo, hi, prevHi)
			}
			prevHi = hi
			vlo, vhi := m.Ranges().Range(s)
			if vlo != p.VPs[lo].Start || vhi != p.VPs[hi-1].End {
				t.Fatalf("shards=%d: shard %d vertex range [%d,%d) vs VP run [%d,%d)",
					shards, s, vlo, vhi, p.VPs[lo].Start, p.VPs[hi-1].End)
			}
			for vp := lo; vp < hi; vp++ {
				if m.ShardOfVP(vp) != s {
					t.Fatalf("ShardOfVP(%d) = %d, want %d", vp, m.ShardOfVP(vp), s)
				}
			}
		}
		if prevHi != p.NumVPs() {
			t.Fatalf("shards=%d: VP runs cover %d of %d", shards, prevHi, p.NumVPs())
		}
		for v := graph.VID(0); v < graph.VID(p.V); v++ {
			s, vp := m.Locate(v)
			if vp != p.Lookup().VPOf(v) {
				t.Fatalf("Locate(%d) vp = %d, want %d", v, vp, p.Lookup().VPOf(v))
			}
			if s != m.ShardOf(v) || s != m.Ranges().OwnerOf(v) {
				t.Fatalf("Locate(%d) shard = %d, ShardOf = %d, range owner = %d",
					v, s, m.ShardOf(v), m.Ranges().OwnerOf(v))
			}
		}
	}
	if _, err := NewShardMap(p, p.NumVPs()+1); err == nil {
		t.Fatal("shard count past the partition count accepted")
	}
	if _, err := NewShardMap(p, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
}

// TestShardMapBalance checks the vertex-mass balance stays within one
// partition of even.
func TestShardMapBalance(t *testing.T) {
	p := shardTestPlan(t, 4096, 10, 6) // 4 groups, 16 VPs each, 64 VPs of 64 vertices
	for _, shards := range []int{2, 4, 8} {
		m, err := NewShardMap(p, shards)
		if err != nil {
			t.Fatal(err)
		}
		even := uint64(p.V) / uint64(shards)
		for s := 0; s < shards; s++ {
			lo, hi := m.Ranges().Range(s)
			mass := uint64(hi - lo)
			if mass < even-64 || mass > even+64 {
				t.Fatalf("shards=%d: shard %d holds %d vertices, want %d±64", shards, s, mass, even)
			}
		}
	}
}
