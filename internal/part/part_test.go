package part

import (
	"math"
	"testing"

	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/mem"
	"flashmob/internal/profile"
)

func testModel() profile.CostModel {
	return profile.NewAnalyticalModel(mem.PaperGeometry())
}

func testGraph(t *testing.T, n uint32, avgDeg float64) *graph.CSR {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: n, AvgDegree: avgDeg, Alpha: 0.8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGroupSizeLogFor(t *testing.T) {
	cases := []struct {
		n      uint32
		target int
	}{
		{100, 128}, {128, 128}, {129, 128}, {1 << 20, 128}, {1_000_003, 128}, {5, 4},
	}
	for _, c := range cases {
		log := GroupSizeLogFor(c.n, c.target)
		groups := (uint64(c.n) + (1 << log) - 1) >> log
		if groups > uint64(c.target) {
			t.Errorf("n=%d: %d groups exceeds target %d", c.n, groups, c.target)
		}
		if log > 0 {
			prev := (uint64(c.n) + (1 << (log - 1)) - 1) >> (log - 1)
			if prev <= uint64(c.target) {
				t.Errorf("n=%d: size log %d not minimal", c.n, log)
			}
		}
	}
}

func TestPlanMCKPValidAndWithinBudget(t *testing.T) {
	g := testGraph(t, 50000, 8)
	cfg := Config{Walkers: 50000, Model: testModel()}
	plan, err := PlanMCKP(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.Weight() > 2048 {
		t.Errorf("plan weight %d exceeds default budget", plan.Weight())
	}
	if plan.NumVPs() == 0 {
		t.Fatal("no VPs")
	}
}

func TestPlanMCKPBeatsUniform(t *testing.T) {
	// Figure 9b: the DP plan must not lose to either uniform planner or
	// the manual heuristic under the model that priced it.
	g := testGraph(t, 60000, 10)
	model := testModel()
	cfg := Config{Walkers: 60000, Model: model}
	dp, err := PlanMCKP(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dpS, dpSh := EvaluateNS(dp, g, cfg.Walkers, model)
	dpTotal := dpS + dpSh

	for _, pol := range []profile.Policy{profile.PS, profile.DS} {
		u, err := PlanUniform(g, cfg, pol)
		if err != nil {
			t.Fatal(err)
		}
		s, sh := EvaluateNS(u, g, cfg.Walkers, model)
		if dpTotal > (s+sh)*1.001 {
			t.Errorf("DP plan (%.0f ns) worse than Uniform-%v (%.0f ns)", dpTotal, pol, s+sh)
		}
	}
	m, err := ManualHeuristic{}.PlanManual(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, sh := EvaluateNS(m, g, cfg.Walkers, model)
	if dpTotal > (s+sh)*1.001 {
		t.Errorf("DP plan (%.0f ns) worse than Manual (%.0f ns)", dpTotal, s+sh)
	}
}

func TestPlanMCKPShape(t *testing.T) {
	// Figure 10 shape: the highest-degree vertices should get PS and the
	// low-degree tail DS; head VPs should not be larger than tail VPs.
	g := testGraph(t, 80000, 12)
	plan, err := PlanMCKP(g, Config{Walkers: 80000, Model: testModel()})
	if err != nil {
		t.Fatal(err)
	}
	headVP := plan.VPs[0]
	tailVP := plan.VPs[len(plan.VPs)-1]
	if headVP.Policy != profile.PS {
		t.Errorf("highest-degree VP policy = %v, want PS", headVP.Policy)
	}
	if tailVP.Policy != profile.DS {
		t.Errorf("lowest-degree VP policy = %v, want DS", tailVP.Policy)
	}
	if plan.Groups[0].VPSizeLog > plan.Groups[len(plan.Groups)-1].VPSizeLog {
		t.Errorf("head group VPs (%d) larger than tail group VPs (%d)",
			plan.Groups[0].VPSizeLog, plan.Groups[len(plan.Groups)-1].VPSizeLog)
	}
}

func TestPlanMCKPErrors(t *testing.T) {
	g := testGraph(t, 1000, 4)
	if _, err := PlanMCKP(g, Config{}); err == nil {
		t.Error("missing model accepted")
	}
	// Unsorted graph: reverse-relabel so low-degree vertices come first.
	n := g.NumVertices()
	fwd := make([]graph.VID, n)
	bwd := make([]graph.VID, n)
	for i := uint32(0); i < n; i++ {
		fwd[i] = n - 1 - i
		bwd[n-1-i] = i
	}
	rev := graph.Relabel(g, fwd, bwd)
	if _, err := PlanMCKP(rev, Config{Model: testModel()}); err == nil {
		t.Error("unsorted graph accepted")
	}
}

func TestSolveMCKPMatchesBruteForce(t *testing.T) {
	items := [][]item{
		{{weight: 1, costNS: 10}, {weight: 3, costNS: 2}},
		{{weight: 2, costNS: 8}, {weight: 1, costNS: 9}, {weight: 4, costNS: 1}},
		{{weight: 1, costNS: 5}, {weight: 2, costNS: 3}},
	}
	const maxW = 6
	choice, err := solveMCKP(items, maxW)
	if err != nil {
		t.Fatal(err)
	}
	var gotCost float64
	gotW := 0
	for c, idx := range choice {
		gotCost += items[c][idx].costNS
		gotW += items[c][idx].weight
	}
	if gotW > maxW {
		t.Fatalf("solution weight %d exceeds %d", gotW, maxW)
	}
	// Brute force.
	best := math.MaxFloat64
	for a := range items[0] {
		for b := range items[1] {
			for c := range items[2] {
				w := items[0][a].weight + items[1][b].weight + items[2][c].weight
				if w > maxW {
					continue
				}
				cost := items[0][a].costNS + items[1][b].costNS + items[2][c].costNS
				if cost < best {
					best = cost
				}
			}
		}
	}
	if math.Abs(gotCost-best) > 1e-9 {
		t.Fatalf("DP cost %.1f, brute force %.1f", gotCost, best)
	}
}

func TestSolveMCKPInfeasible(t *testing.T) {
	items := [][]item{{{weight: 5, costNS: 1}}}
	if _, err := solveMCKP(items, 3); err == nil {
		t.Fatal("infeasible instance accepted")
	}
}

func TestSolveMCKPTightBudgetPrefersExtraShuffle(t *testing.T) {
	// Two classes; budget forces at least one class to pick the weight-1
	// (extra shuffle) variant even though it costs more.
	items := [][]item{
		{{weight: 4, costNS: 1}, {weight: 1, costNS: 3, extra: true}},
		{{weight: 4, costNS: 1}, {weight: 1, costNS: 3, extra: true}},
	}
	choice, err := solveMCKP(items, 5)
	if err != nil {
		t.Fatal(err)
	}
	extras := 0
	for c, idx := range choice {
		if items[c][idx].extra {
			extras++
		}
	}
	if extras != 1 {
		t.Fatalf("chose %d extra-shuffle items, want exactly 1", extras)
	}
}

func TestPlanUniform(t *testing.T) {
	g := testGraph(t, 10000, 4)
	plan, err := PlanUniform(g, Config{MaxBins: 64}, profile.DS)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumVPs() > 64 {
		t.Errorf("NumVPs = %d, want ≤ 64", plan.NumVPs())
	}
	for _, vp := range plan.VPs {
		if vp.Policy != profile.DS {
			t.Fatal("uniform plan policy mismatch")
		}
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanManualRespectsBinBudget(t *testing.T) {
	g := testGraph(t, 50000, 8)
	cfg := Config{Walkers: 50000, MaxBins: 32, TargetGroups: 16, Model: testModel()}
	plan, err := ManualHeuristic{}.PlanManual(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Weight() > 32 {
		t.Errorf("weight %d exceeds budget 32", plan.Weight())
	}
	// Some group must have needed the internal shuffle.
	var extras int
	for _, gp := range plan.Groups {
		if gp.ExtraShuffle {
			extras++
		}
	}
	if plan.NumVPs() > 32 && extras == 0 {
		t.Error("budget enforced without extra shuffles?")
	}
}

func TestVPOfAndBinOfWithExtraShuffle(t *testing.T) {
	plan := &Plan{
		V:            64,
		GroupSizeLog: 5, // two groups of 32
		Groups: []GroupPlan{
			{Start: 0, End: 32, VPSizeLog: 3,
				Policies: make([]profile.Policy, 4), ExtraShuffle: true},
			{Start: 32, End: 64, VPSizeLog: 4,
				Policies: []profile.Policy{profile.DS, profile.DS}},
		},
	}
	plan.Groups[0].Policies = []profile.Policy{profile.PS, profile.PS, profile.PS, profile.PS}
	plan.finalize()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// Group 0 is one bin (extra); group 1 contributes two bins.
	if got := plan.Weight(); got != 3 {
		t.Fatalf("weight = %d, want 3", got)
	}
	if plan.BinOf(0) != 0 || plan.BinOf(31) != 0 {
		t.Error("extra group vertices must map to one bin")
	}
	if plan.BinOf(32) != 1 || plan.BinOf(63) != 2 {
		t.Errorf("group 1 bins wrong: BinOf(32)=%d BinOf(63)=%d", plan.BinOf(32), plan.BinOf(63))
	}
	if plan.VPOf(9) != 1 {
		t.Errorf("VPOf(9) = %d, want 1", plan.VPOf(9))
	}
	if plan.VPOf(63) != 5 {
		t.Errorf("VPOf(63) = %d, want 5", plan.VPOf(63))
	}
	bins := plan.Bins()
	if !bins[0].Extra || bins[0].NumVPs != 4 {
		t.Errorf("bin 0 = %+v, want extra with 4 VPs", bins[0])
	}
}

func TestPlanPartialLastGroup(t *testing.T) {
	// 100 vertices with group size 32: last group has 4 vertices.
	g := testGraph(t, 100, 3)
	plan, err := PlanMCKP(g, Config{TargetGroups: 4, Walkers: 100, Model: testModel(), MinVPSizeLog: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	last := plan.Groups[len(plan.Groups)-1]
	if last.End != 100 {
		t.Errorf("last group ends at %d, want 100", last.End)
	}
}

func TestEvaluateNSPositive(t *testing.T) {
	g := testGraph(t, 5000, 6)
	model := testModel()
	plan, err := PlanMCKP(g, Config{Walkers: 5000, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	s, sh := EvaluateNS(plan, g, 5000, model)
	if s <= 0 || sh <= 0 {
		t.Fatalf("EvaluateNS = (%v, %v), want positive", s, sh)
	}
}
