package part

import (
	"fmt"
	"math"

	"flashmob/internal/graph"
)

// GroupEdgeMass returns the per-group edge counts of a degree-sorted graph
// under the given group geometry — the baseline PlanIncremental compares
// against to decide which groups drifted. Callers record it alongside the
// plan they solved so the next replan can diff without the old graph.
func GroupEdgeMass(g *graph.CSR, groupSizeLog uint) []uint64 {
	n := g.NumVertices()
	groupSize := uint32(1) << groupSizeLog
	numGroups := int((uint64(n) + uint64(groupSize) - 1) >> groupSizeLog)
	mass := make([]uint64, numGroups)
	for gi := 0; gi < numGroups; gi++ {
		start := graph.VID(gi) << groupSizeLog
		end := start + groupSize
		if end > n {
			end = n
		}
		mass[gi] = edgesIn(g, start, end)
	}
	return mass
}

// PlanIncremental re-solves the MCKP only for vertex groups whose inputs
// drifted since prev was planned, reusing prev's (VP size, extra-shuffle)
// decision everywhere else. A group is dirty when its edge mass moved by at
// least threshold relative to prevMass (the GroupEdgeMass recorded when prev
// was solved), or when its observed walker-step share (obsSteps, one entry
// per VP of prev) diverged from its edge-mass share by at least threshold —
// the paper's walker-density input is an estimate, and live counters beat
// re-estimating. Clean groups keep their decision with policies re-priced
// against the new graph (policy choice is per-VP and costs nothing to
// refresh); dirty groups re-enter the knapsack under the bin budget left by
// the clean ones. threshold 0 marks every group dirty, making the solve
// exactly PlanMCKP — the identity dynamic-graph compaction leans on for its
// determinism guarantee. Falls back to a full solve when the group geometry
// changed (grown vertex space) or the residual budget is infeasible.
//
// Returns the plan and the number of groups re-solved. prevMass and
// obsSteps may be nil (unknown), which dirties every group.
func PlanIncremental(g *graph.CSR, cfg Config, prev *Plan, prevMass []uint64, obsSteps []uint64, threshold float64) (*Plan, int, error) {
	cfg = cfg.withDefaults()
	if cfg.Model == nil {
		return nil, 0, fmt.Errorf("part: config needs a cost model")
	}
	if !graph.IsDegreeSorted(g) {
		return nil, 0, fmt.Errorf("part: graph must be sorted by descending degree")
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, 0, fmt.Errorf("part: empty graph")
	}

	groupLog := GroupSizeLogFor(n, cfg.TargetGroups)
	groupSize := uint32(1) << groupLog
	numGroups := int((uint64(n) + uint64(groupSize) - 1) >> groupLog)
	if prev == nil || prev.GroupSizeLog != groupLog || len(prev.Groups) != numGroups || prev.V != n {
		// Geometry moved under the plan: every group's vertex range is
		// different, so there is nothing to reuse.
		p, err := PlanMCKP(g, cfg)
		return p, numGroups, err
	}

	dirty := dirtyGroups(g, prev, prevMass, obsSteps, groupLog, numGroups, threshold)

	if cfg.Walkers == 0 {
		cfg.Walkers = uint64(n)
	}
	density := float64(cfg.Walkers) / float64(g.NumEdges())

	// Clean groups keep prev's (size, extra) decision; their policies are
	// re-priced per-VP against the new graph (same szLog ⇒ same weight).
	// Dirty groups enumerate the full candidate set, exactly as PlanMCKP.
	plan := &Plan{V: n, GroupSizeLog: groupLog, Groups: make([]GroupPlan, numGroups)}
	var dirtyItems [][]item
	var dirtyIdx []int
	cleanWeight := 0
	replanned := 0
	for gi := 0; gi < numGroups; gi++ {
		start := graph.VID(gi) << groupLog
		end := start + groupSize
		if end > n {
			end = n
		}
		if !dirty[gi] {
			pg := &prev.Groups[gi]
			_, weight, policies := priceGroup(g, start, end, pg.VPSizeLog, density, cfg.Model)
			plan.Groups[gi] = GroupPlan{Start: start, End: end,
				VPSizeLog: pg.VPSizeLog, ExtraShuffle: pg.ExtraShuffle, Policies: policies}
			if pg.ExtraShuffle {
				cleanWeight++
			} else {
				cleanWeight += weight
			}
			continue
		}
		replanned++
		plan.Groups[gi] = GroupPlan{Start: start, End: end}
		dirtyItems = append(dirtyItems, groupItems(g, start, end, groupLog, density, cfg))
		dirtyIdx = append(dirtyIdx, gi)
	}

	if replanned > 0 {
		budget := cfg.MaxBins - cleanWeight
		if budget < replanned { // each dirty group needs weight ≥ 1
			p, err := PlanMCKP(g, cfg)
			return p, numGroups, err
		}
		choice, err := solveMCKP(dirtyItems, budget)
		if err != nil {
			// Residual budget infeasible for the dirty set: the clean
			// decisions are stale enough to pin us — full solve.
			p, ferr := PlanMCKP(g, cfg)
			return p, numGroups, ferr
		}
		for k, gi := range dirtyIdx {
			it := dirtyItems[k][choice[k]]
			plan.Groups[gi].VPSizeLog = it.vpSizeLog
			plan.Groups[gi].ExtraShuffle = it.extra
			plan.Groups[gi].Policies = it.policies
		}
	}
	plan.finalize()
	if err := plan.Validate(); err != nil {
		return nil, 0, err
	}
	return plan, replanned, nil
}

// dirtyGroups applies the drift criteria. threshold 0 dirties everything
// (drift ≥ 0 always holds), as does missing baseline data.
func dirtyGroups(g *graph.CSR, prev *Plan, prevMass, obsSteps []uint64, groupLog uint, numGroups int, threshold float64) []bool {
	dirty := make([]bool, numGroups)
	mass := GroupEdgeMass(g, groupLog)
	if len(prevMass) != numGroups {
		prevMass = nil
	}
	var prevTotal, obsTotal uint64
	for _, m := range prevMass {
		prevTotal += m
	}
	stepMass := make([]uint64, numGroups)
	if obsSteps != nil && len(obsSteps) == len(prev.VPs) {
		for i, vp := range prev.VPs {
			stepMass[vp.Group] += obsSteps[i]
			obsTotal += obsSteps[i]
		}
	}
	for gi := 0; gi < numGroups; gi++ {
		if prevMass == nil {
			dirty[gi] = true
			continue
		}
		drift := relDrift(float64(mass[gi]), float64(prevMass[gi]))
		if obsTotal > 0 && prevTotal > 0 {
			massShare := float64(prevMass[gi]) / float64(prevTotal)
			stepShare := float64(stepMass[gi]) / float64(obsTotal)
			if d := relDrift(stepShare, massShare); d > drift {
				drift = d
			}
		}
		dirty[gi] = drift >= threshold
	}
	return dirty
}

// relDrift is |a−b| relative to b (absolute when b is zero).
func relDrift(a, b float64) float64 {
	d := math.Abs(a - b)
	if b == 0 {
		return d
	}
	return d / b
}

// groupItems enumerates one group's MCKP candidates, identically to
// PlanMCKP's inner loop.
func groupItems(g *graph.CSR, start, end graph.VID, groupLog uint, density float64, cfg Config) []item {
	var items []item
	lo := int(groupLog) - int(cfg.MaxSplitLog)
	if lo < int(cfg.MinVPSizeLog) {
		lo = int(cfg.MinVPSizeLog)
	}
	if lo > int(groupLog) {
		lo = int(groupLog)
	}
	for szLog := uint(lo); szLog <= groupLog; szLog++ {
		cost, weight, policies := priceGroup(g, start, end, szLog, density, cfg.Model)
		items = append(items,
			item{vpSizeLog: szLog, weight: weight, costNS: cost, policies: policies})
		if weight > 1 {
			walkers := float64(edgesIn(g, start, end)) * density
			items = append(items, item{
				vpSizeLog: szLog, extra: true, weight: 1,
				costNS:   cost + walkers*cfg.Model.ShuffleStepNS(),
				policies: policies,
			})
		}
	}
	return items
}
