// Package part implements FlashMob's vertex partitioning (§4.4): grouping
// the degree-sorted vertex array into power-of-2 groups, cutting each group
// into equal power-of-2 vertex partitions (VPs), assigning each VP a
// sampling policy, and choosing all of it optimally via the Multiple-Choice
// Knapsack Problem solved with an exact pseudo-polynomial dynamic program.
package part

import (
	"fmt"
	"math/bits"

	"flashmob/internal/graph"
	"flashmob/internal/profile"
)

// VP is one vertex partition: a contiguous range of (degree-sorted)
// vertices processed as a unit by the sample stage.
type VP struct {
	// Start and End delimit the vertex range [Start, End).
	Start, End graph.VID
	// Policy is the sampling policy assigned to this partition.
	Policy profile.Policy
	// Group is the index of the group this VP belongs to.
	Group int
}

// Vertices returns the partition's vertex count.
func (v VP) Vertices() uint32 { return v.End - v.Start }

// GroupPlan records the planner's decision for one vertex group.
type GroupPlan struct {
	// Start and End delimit the group's vertex range.
	Start, End graph.VID
	// VPSizeLog is log2 of the VP size (in vertices) chosen for this
	// group.
	VPSizeLog uint
	// ExtraShuffle marks groups that are a single bin in the outer
	// shuffle, with an internal second shuffle level splitting them into
	// VPs (§4.4: weight 1 items with added shuffle cost).
	ExtraShuffle bool
	// Policies holds one policy per VP in the group.
	Policies []profile.Policy
}

// Bin is one destination bin of the outer shuffle: either a single VP or a
// whole group that shuffles internally.
type Bin struct {
	Start, End graph.VID
	// FirstVP and NumVPs locate the bin's partitions in Plan.VPs.
	FirstVP, NumVPs int
	// Extra is true when the bin needs the internal shuffle level.
	Extra bool
}

// Plan is a complete partitioning decision for one graph.
type Plan struct {
	// V is the vertex count the plan covers.
	V uint32
	// GroupSizeLog is log2 of the (equal) group size; the last group may
	// be partial.
	GroupSizeLog uint
	// Groups holds per-group decisions in vertex order.
	Groups []GroupPlan
	// VPs is the flattened partition list in vertex order.
	VPs []VP

	vpBase  []int // index of first VP per group
	binBase []int // index of first bin per group
	bins    []Bin
	lookup  *Lookup
}

// Lookup is a flat, read-only vertex → VP / bin index built alongside the
// plan. VPOf/BinOf on Plan walk the Groups slice per call — three
// dependent loads through wide structs — which is what every walker of
// every shuffle pass pays. Lookup collapses that: small graphs get a
// direct per-vertex table (one load), larger ones a page-table-style two
// level where the group shift selects a 16-byte record and shift
// arithmetic inside it finds the VP, keeping the whole first level
// cache-resident (≤128 groups, §4.4).
type Lookup struct {
	directVP  []int32
	directBin []int32
	shift     uint
	groups    []groupRef
}

// groupRef is one level-1 record of the two-level lookup.
type groupRef struct {
	start   uint32
	vpBase  int32
	binBase int32
	vpShift uint8
	extra   bool
}

// directLookupMax caps the vertex count for the direct per-vertex tables
// (2 × 4 B × V); beyond it the tables would thrash the caches the shuffle
// is trying to keep, so the two-level form takes over.
const directLookupMax = 1 << 18

// Lookup returns the plan's flat lookup (built when the plan is
// finalized).
func (p *Plan) Lookup() *Lookup { return p.lookup }

// VPOf returns the index (into Plan.VPs) of the partition holding v.
func (l *Lookup) VPOf(v graph.VID) int {
	if l.directVP != nil {
		return int(l.directVP[v])
	}
	gi := int(v >> l.shift)
	if gi >= len(l.groups) {
		gi = len(l.groups) - 1
	}
	g := &l.groups[gi]
	return int(g.vpBase) + int((uint32(v)-g.start)>>g.vpShift)
}

// BinOf returns the outer-shuffle bin index of vertex v.
func (l *Lookup) BinOf(v graph.VID) int {
	if l.directBin != nil {
		return int(l.directBin[v])
	}
	gi := int(v >> l.shift)
	if gi >= len(l.groups) {
		gi = len(l.groups) - 1
	}
	g := &l.groups[gi]
	if g.extra {
		return int(g.binBase)
	}
	return int(g.binBase) + int((uint32(v)-g.start)>>g.vpShift)
}

// buildLookup derives the flat lookup from the finalized views.
func (p *Plan) buildLookup() {
	l := &Lookup{shift: p.GroupSizeLog, groups: make([]groupRef, len(p.Groups))}
	for gi := range p.Groups {
		g := &p.Groups[gi]
		l.groups[gi] = groupRef{
			start:   uint32(g.Start),
			vpBase:  int32(p.vpBase[gi]),
			binBase: int32(p.binBase[gi]),
			vpShift: uint8(g.VPSizeLog),
			extra:   g.ExtraShuffle,
		}
	}
	if p.V <= directLookupMax {
		l.directVP = make([]int32, p.V)
		l.directBin = make([]int32, p.V)
		for vp := range p.VPs {
			for v := p.VPs[vp].Start; v < p.VPs[vp].End; v++ {
				l.directVP[v] = int32(vp)
			}
		}
		for bi := range p.bins {
			for v := p.bins[bi].Start; v < p.bins[bi].End; v++ {
				l.directBin[v] = int32(bi)
			}
		}
	}
	p.lookup = l
}

// finalize derives the flattened VP and bin views from Groups.
func (p *Plan) finalize() {
	p.VPs = p.VPs[:0]
	p.bins = p.bins[:0]
	p.vpBase = make([]int, len(p.Groups))
	p.binBase = make([]int, len(p.Groups))
	for gi := range p.Groups {
		g := &p.Groups[gi]
		p.vpBase[gi] = len(p.VPs)
		p.binBase[gi] = len(p.bins)
		vpSize := uint32(1) << g.VPSizeLog
		nvp := 0
		for start := g.Start; start < g.End; start += vpSize {
			end := start + vpSize
			if end > g.End {
				end = g.End
			}
			pol := profile.DS
			if nvp < len(g.Policies) {
				pol = g.Policies[nvp]
			}
			p.VPs = append(p.VPs, VP{Start: start, End: end, Policy: pol, Group: gi})
			nvp++
		}
		if g.ExtraShuffle {
			p.bins = append(p.bins, Bin{
				Start: g.Start, End: g.End,
				FirstVP: p.vpBase[gi], NumVPs: nvp, Extra: true,
			})
		} else {
			for i := 0; i < nvp; i++ {
				vp := p.VPs[p.vpBase[gi]+i]
				p.bins = append(p.bins, Bin{
					Start: vp.Start, End: vp.End,
					FirstVP: p.vpBase[gi] + i, NumVPs: 1,
				})
			}
		}
	}
	p.buildLookup()
}

// Finalize derives the flattened VP and bin views of a hand-constructed
// plan (Groups filled in) and validates it. Plans returned by the planners
// in this package are already finalized.
func Finalize(p *Plan) error {
	p.finalize()
	return p.Validate()
}

// NumVPs returns the total partition count.
func (p *Plan) NumVPs() int { return len(p.VPs) }

// Bins returns the outer-shuffle bins in vertex order.
func (p *Plan) Bins() []Bin { return p.bins }

// Weight returns the plan's MCKP weight: the number of outer-shuffle bins.
func (p *Plan) Weight() int { return len(p.bins) }

// GroupOf returns the group index of vertex v.
func (p *Plan) GroupOf(v graph.VID) int {
	gi := int(v >> p.GroupSizeLog)
	if gi >= len(p.Groups) {
		gi = len(p.Groups) - 1
	}
	return gi
}

// VPOf returns the index (into VPs) of the partition holding v, in pure
// shift arithmetic — the property the power-of-2 sizing exists to provide.
func (p *Plan) VPOf(v graph.VID) int {
	gi := p.GroupOf(v)
	g := &p.Groups[gi]
	return p.vpBase[gi] + int((v-g.Start)>>g.VPSizeLog)
}

// BinOf returns the outer-shuffle bin index of vertex v.
func (p *Plan) BinOf(v graph.VID) int {
	gi := p.GroupOf(v)
	g := &p.Groups[gi]
	if g.ExtraShuffle {
		return p.binBase[gi]
	}
	return p.binBase[gi] + int((v-g.Start)>>g.VPSizeLog)
}

// Validate checks the structural invariants: groups tile [0, V), VPs tile
// each group, arithmetic lookups agree with the flattened views.
func (p *Plan) Validate() error {
	if len(p.Groups) == 0 {
		return fmt.Errorf("part: plan has no groups")
	}
	var cursor graph.VID
	for gi, g := range p.Groups {
		if g.Start != cursor {
			return fmt.Errorf("part: group %d starts at %d, want %d", gi, g.Start, cursor)
		}
		if g.End <= g.Start {
			return fmt.Errorf("part: group %d empty", gi)
		}
		if gi < len(p.Groups)-1 && g.End-g.Start != 1<<p.GroupSizeLog {
			return fmt.Errorf("part: non-final group %d has size %d, want %d",
				gi, g.End-g.Start, 1<<p.GroupSizeLog)
		}
		cursor = g.End
	}
	if cursor != p.V {
		return fmt.Errorf("part: groups cover %d vertices, want %d", cursor, p.V)
	}
	cursor = 0
	for i, vp := range p.VPs {
		if vp.Start != cursor || vp.End <= vp.Start {
			return fmt.Errorf("part: VP %d range [%d,%d) does not tile", i, vp.Start, vp.End)
		}
		cursor = vp.End
	}
	if cursor != p.V {
		return fmt.Errorf("part: VPs cover %d vertices, want %d", cursor, p.V)
	}
	for v := graph.VID(0); v < p.V; v++ {
		i := p.VPOf(v)
		if i < 0 || i >= len(p.VPs) || v < p.VPs[i].Start || v >= p.VPs[i].End {
			return fmt.Errorf("part: VPOf(%d) = %d inconsistent", v, i)
		}
		b := p.BinOf(v)
		if b < 0 || b >= len(p.bins) || v < p.bins[b].Start || v >= p.bins[b].End {
			return fmt.Errorf("part: BinOf(%d) = %d inconsistent", v, b)
		}
		if p.lookup != nil {
			if li := p.lookup.VPOf(v); li != i {
				return fmt.Errorf("part: Lookup.VPOf(%d) = %d, VPOf = %d", v, li, i)
			}
			if lb := p.lookup.BinOf(v); lb != b {
				return fmt.Errorf("part: Lookup.BinOf(%d) = %d, BinOf = %d", v, lb, b)
			}
		}
	}
	return nil
}

// GroupSizeLogFor picks the group size for a graph of n vertices such that
// the group count lands in (targetGroups/2, targetGroups] — the paper uses
// G between 64 and 128, i.e. targetGroups = 128.
func GroupSizeLogFor(n uint32, targetGroups int) uint {
	if targetGroups <= 0 {
		targetGroups = 128
	}
	if n == 0 {
		return 0
	}
	log := uint(0)
	for (uint64(n)+(1<<log)-1)>>log > uint64(targetGroups) {
		log++
	}
	return log
}

// ceilLog2 returns ⌈log2(x)⌉ for x ≥ 1.
func ceilLog2(x uint64) uint {
	if x <= 1 {
		return 0
	}
	return uint(bits.Len64(x - 1))
}
