package part

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"flashmob/internal/profile"
)

// planJSON is the serialized form of a Plan: only the decisions are
// stored; the derived VP/bin views are rebuilt on load.
type planJSON struct {
	V            uint32          `json:"v"`
	GroupSizeLog uint            `json:"group_size_log"`
	Groups       []groupPlanJSON `json:"groups"`
}

type groupPlanJSON struct {
	Start        uint32           `json:"start"`
	End          uint32           `json:"end"`
	VPSizeLog    uint             `json:"vp_size_log"`
	ExtraShuffle bool             `json:"extra_shuffle,omitempty"`
	Policies     []profile.Policy `json:"policies"`
}

// WriteJSON serializes the plan. Plans are machine- and walker-count-
// specific (they bake in the cost model's decisions), so cache them keyed
// on graph + machine + walker budget.
func (p *Plan) WriteJSON(w io.Writer) error {
	out := planJSON{V: p.V, GroupSizeLog: p.GroupSizeLog}
	for _, g := range p.Groups {
		out.Groups = append(out.Groups, groupPlanJSON{
			Start: g.Start, End: g.End, VPSizeLog: g.VPSizeLog,
			ExtraShuffle: g.ExtraShuffle, Policies: g.Policies,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("part: encode plan: %w", err)
	}
	return nil
}

// ReadPlan deserializes and validates a plan written by WriteJSON.
func ReadPlan(r io.Reader) (*Plan, error) {
	var in planJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("part: decode plan: %w", err)
	}
	p := &Plan{V: in.V, GroupSizeLog: in.GroupSizeLog}
	for _, g := range in.Groups {
		for _, pol := range g.Policies {
			if pol != profile.PS && pol != profile.DS {
				return nil, fmt.Errorf("part: plan contains invalid policy %d", pol)
			}
		}
		p.Groups = append(p.Groups, GroupPlan{
			Start: g.Start, End: g.End, VPSizeLog: g.VPSizeLog,
			ExtraShuffle: g.ExtraShuffle, Policies: g.Policies,
		})
	}
	if err := Finalize(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Summary returns a compact human-readable description of the plan — the
// per-group layout the paper's Figure 10a visualizes.
func (p *Plan) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: |V|=%d, %d groups (size 2^%d), %d VPs, %d shuffle bins\n",
		p.V, len(p.Groups), p.GroupSizeLog, p.NumVPs(), p.Weight())
	// Collapse consecutive groups with identical decisions.
	type class struct {
		vpLog  uint
		extra  bool
		policy string
	}
	classOf := func(g GroupPlan) class {
		pol := "mixed"
		ps, ds := 0, 0
		for _, pp := range g.Policies {
			if pp == profile.PS {
				ps++
			} else {
				ds++
			}
		}
		switch {
		case ds == 0:
			pol = "PS"
		case ps == 0:
			pol = "DS"
		}
		return class{g.VPSizeLog, g.ExtraShuffle, pol}
	}
	start := 0
	for i := 1; i <= len(p.Groups); i++ {
		if i < len(p.Groups) && classOf(p.Groups[i]) == classOf(p.Groups[start]) {
			continue
		}
		g := p.Groups[start]
		c := classOf(g)
		extra := ""
		if c.extra {
			extra = " +inner-shuffle"
		}
		fmt.Fprintf(&b, "  groups %d-%d: vertices [%d,%d) VPs of 2^%d %s%s\n",
			start, i-1, g.Start, p.Groups[i-1].End, c.vpLog, c.policy, extra)
		start = i
	}
	return b.String()
}
