package part

import (
	"fmt"
	"sort"

	"flashmob/internal/graph"
)

// RangeMap maps vertices to the owner of the contiguous vertex range
// holding them: owner o holds [starts[o], starts[o+1]). It is the flat
// ownership lookup shared by every range-partitioned layer — the
// distributed engine's partitions (internal/dist) and the sharded
// topology's vertex ranges (ShardMap) — replacing each layer's private
// division math with one audited structure. Small graphs get a direct
// per-vertex table (one load on the per-step hot path); larger ones a
// binary search over the starts.
type RangeMap struct {
	starts []graph.VID
	direct []uint16 // per-vertex owner table when the graph is small
}

// rangeMapDirectMax caps the vertex count for the direct table (2 B per
// vertex) — the same cache-residency tradeoff as the plan Lookup's
// directLookupMax.
const rangeMapDirectMax = 1 << 18

// NewRangeMap builds the map from range boundaries: starts[0] must be 0,
// the entries non-decreasing, and starts[len-1] the vertex count. Owners
// number len(starts)-1 and at most 65535 (the direct table's width).
func NewRangeMap(starts []graph.VID) (*RangeMap, error) {
	if len(starts) < 2 {
		return nil, fmt.Errorf("part: range map needs at least one range")
	}
	if starts[0] != 0 {
		return nil, fmt.Errorf("part: range map must start at vertex 0, got %d", starts[0])
	}
	if len(starts)-1 > 1<<16-1 {
		return nil, fmt.Errorf("part: %d ranges exceed the range map's 65535-owner limit", len(starts)-1)
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			return nil, fmt.Errorf("part: range map starts not sorted at %d", i)
		}
	}
	m := &RangeMap{starts: append([]graph.VID(nil), starts...)}
	if v := starts[len(starts)-1]; uint64(v) <= rangeMapDirectMax {
		m.direct = make([]uint16, v)
		for o := 0; o < len(starts)-1; o++ {
			for x := starts[o]; x < starts[o+1]; x++ {
				m.direct[x] = uint16(o)
			}
		}
	}
	return m, nil
}

// NewEvenRangeMap cuts [0, n) into owners equal ceil(n/owners)-sized
// ranges — the even range partitioning the distributed engine uses, with
// its exact boundary semantics (a short final range absorbs the
// remainder; owners beyond the vertex count own empty ranges).
func NewEvenRangeMap(n uint32, owners int) (*RangeMap, error) {
	if n == 0 || owners <= 0 {
		return nil, fmt.Errorf("part: even range map needs vertices and owners")
	}
	per := (n + uint32(owners) - 1) / uint32(owners)
	starts := make([]graph.VID, owners+1)
	for o := 1; o <= owners; o++ {
		s := uint64(o) * uint64(per)
		if s > uint64(n) {
			s = uint64(n)
		}
		starts[o] = graph.VID(s)
	}
	return NewRangeMap(starts)
}

// NumOwners returns the range count.
func (m *RangeMap) NumOwners() int { return len(m.starts) - 1 }

// OwnerOf returns the owner of vertex v.
func (m *RangeMap) OwnerOf(v graph.VID) int {
	if m.direct != nil {
		return int(m.direct[v])
	}
	// The first start past v bounds v's range on the right.
	return sort.Search(len(m.starts)-1, func(o int) bool { return m.starts[o+1] > v })
}

// Range returns owner o's vertex range [lo, hi).
func (m *RangeMap) Range(o int) (lo, hi graph.VID) { return m.starts[o], m.starts[o+1] }

// Starts returns the range boundaries (len NumOwners()+1). Callers must
// not mutate it.
func (m *RangeMap) Starts() []graph.VID { return m.starts }

// ShardMap is the two-level VID → (shard, VP) mapping of the sharded
// topology (internal/shard): level one is the plan's flat vertex → VP
// lookup, level two a VP → shard table. Shards own contiguous runs of
// whole partitions — a VP never splits across shards — which is the
// property the sharded engine's bitwise determinism rests on: a
// partition's walker chunk on its owning shard is exactly the chunk the
// single-engine run would sample, so the per-(partition, sub-shard)
// seed schedule and the PS buffer consumption replay identically.
// Because VPs tile the (degree-sorted) vertex space in order, each
// shard's partitions also form one contiguous vertex range, exposed as
// a RangeMap for layers that think in vertices.
type ShardMap struct {
	lk      *Lookup
	vpShard []uint16
	vpLo    []int // shard → first owned VP, len shards+1
	ranges  *RangeMap
	shards  int
}

// NewShardMap cuts the plan's partitions into shards contiguous runs,
// balanced by vertex mass (each shard closes once it reaches its even
// share of the remaining vertices). Every shard owns at least one
// partition; shards beyond the partition count are an error.
func NewShardMap(p *Plan, shards int) (*ShardMap, error) {
	if p == nil || p.Lookup() == nil {
		return nil, fmt.Errorf("part: shard map needs a finalized plan")
	}
	if shards <= 0 {
		return nil, fmt.Errorf("part: shard count must be positive, got %d", shards)
	}
	if shards > p.NumVPs() {
		return nil, fmt.Errorf("part: %d shards exceed the plan's %d partitions", shards, p.NumVPs())
	}
	if shards > 1<<16-1 {
		return nil, fmt.Errorf("part: %d shards exceed the shard map's 65535 limit", shards)
	}
	m := &ShardMap{
		lk:      p.Lookup(),
		vpShard: make([]uint16, p.NumVPs()),
		vpLo:    make([]int, shards+1),
		shards:  shards,
	}
	nvp := p.NumVPs()
	total := uint64(p.V)
	var acc uint64
	vp := 0
	starts := make([]graph.VID, shards+1)
	for s := 0; s < shards; s++ {
		m.vpLo[s] = vp
		starts[s] = p.VPs[vp].Start
		// This shard's target: its even share of what is left, leaving at
		// least one partition for each shard still to come.
		goal := acc + (total-acc)/uint64(shards-s)
		for vp < nvp-(shards-s-1) {
			acc += uint64(p.VPs[vp].Vertices())
			m.vpShard[vp] = uint16(s)
			vp++
			if acc >= goal {
				break
			}
		}
	}
	m.vpLo[shards] = nvp
	starts[shards] = graph.VID(p.V)
	var err error
	if m.ranges, err = NewRangeMap(starts); err != nil {
		return nil, err
	}
	return m, nil
}

// NumShards returns the shard count.
func (m *ShardMap) NumShards() int { return m.shards }

// ShardOf returns the shard owning vertex v, through the two levels:
// vertex → VP (the plan lookup) then VP → shard.
func (m *ShardMap) ShardOf(v graph.VID) int { return int(m.vpShard[m.lk.VPOf(v)]) }

// Locate returns both levels for vertex v: its owning shard and its
// partition index.
func (m *ShardMap) Locate(v graph.VID) (shard, vp int) {
	vp = m.lk.VPOf(v)
	return int(m.vpShard[vp]), vp
}

// ShardOfVP returns the shard owning partition vp.
func (m *ShardMap) ShardOfVP(vp int) int { return int(m.vpShard[vp]) }

// VPRange returns shard s's owned partition range [lo, hi).
func (m *ShardMap) VPRange(s int) (lo, hi int) { return m.vpLo[s], m.vpLo[s+1] }

// Ranges returns the shards' contiguous vertex ranges.
func (m *ShardMap) Ranges() *RangeMap { return m.ranges }
