package part

import (
	"fmt"

	"flashmob/internal/graph"
	"flashmob/internal/profile"
)

// PlanUniform cuts the vertex array into at most cfg.MaxBins equal-size
// power-of-2 VPs, all using the given policy — the "Uniform-PS" and
// "Uniform-DS" baselines of the paper's Figure 9b.
func PlanUniform(g *graph.CSR, cfg Config, policy profile.Policy) (*Plan, error) {
	cfg = cfg.withDefaults()
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("part: empty graph")
	}
	perVP := (uint64(n) + uint64(cfg.MaxBins) - 1) / uint64(cfg.MaxBins)
	szLog := ceilLog2(perVP)
	numVPs := int((uint64(n) + (1 << szLog) - 1) >> szLog)
	policies := make([]profile.Policy, numVPs)
	for i := range policies {
		policies[i] = policy
	}
	plan := &Plan{
		V:            n,
		GroupSizeLog: ceilLog2(uint64(n)),
		Groups: []GroupPlan{{
			Start: 0, End: n, VPSizeLog: szLog, Policies: policies,
		}},
	}
	plan.finalize()
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// ManualHeuristic mirrors the authors' pre-MCKP "Manual Opt" tuning
// (Figure 9b): pick PS for high-degree or low-density groups and DS
// otherwise, then size each group's VPs so the chosen policy's working set
// fits the L2 budget, falling back to internal shuffles when the bin
// budget overflows.
type ManualHeuristic struct {
	// L2Budget is the target working-set size per VP (default 768 KiB,
	// ~75% of the paper platform's 1MB L2).
	L2Budget uint64
	// PSDegreeThreshold switches a group to PS at or above this average
	// degree (default 16).
	PSDegreeThreshold float64
	// PSDensityThreshold switches a group to PS below this walker density
	// (default 0.25).
	PSDensityThreshold float64
}

// PlanManual applies the heuristic to a degree-sorted graph.
func (h ManualHeuristic) PlanManual(g *graph.CSR, cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	if h.L2Budget == 0 {
		h.L2Budget = 768 << 10
	}
	if h.PSDegreeThreshold == 0 {
		h.PSDegreeThreshold = 16
	}
	if h.PSDensityThreshold == 0 {
		h.PSDensityThreshold = 0.25
	}
	if !graph.IsDegreeSorted(g) {
		return nil, fmt.Errorf("part: graph must be sorted by descending degree")
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("part: empty graph")
	}
	if cfg.Walkers == 0 {
		cfg.Walkers = uint64(n)
	}
	density := float64(cfg.Walkers) / float64(g.NumEdges())

	groupLog := GroupSizeLogFor(n, cfg.TargetGroups)
	groupSize := uint32(1) << groupLog
	plan := &Plan{V: n, GroupSizeLog: groupLog}
	for start := graph.VID(0); start < n; start += groupSize {
		end := start + groupSize
		if end > n {
			end = n
		}
		verts := uint64(end - start)
		avgDeg := float64(edgesIn(g, start, end)) / float64(verts)
		pol := profile.DS
		if avgDeg >= h.PSDegreeThreshold || density < h.PSDensityThreshold {
			pol = profile.PS
		}
		// Largest power-of-2 VP size whose working set fits the budget.
		szLog := groupLog
		for szLog > cfg.MinVPSizeLog {
			shape := profile.VPShape{Vertices: uint64(1) << szLog, AvgDegree: avgDeg, Density: density}
			if profile.WorkingSetBytes(pol, shape, 64) <= h.L2Budget {
				break
			}
			szLog--
		}
		nvp := int((verts + (1 << szLog) - 1) >> szLog)
		policies := make([]profile.Policy, nvp)
		for i := range policies {
			policies[i] = pol
		}
		plan.Groups = append(plan.Groups, GroupPlan{
			Start: start, End: end, VPSizeLog: szLog, Policies: policies,
		})
	}
	// Enforce the bin budget: convert the highest-VP-count groups to
	// internal shuffling until the outer level fits. Every group is at
	// least one bin, so budgets below the group count are infeasible.
	if len(plan.Groups) > cfg.MaxBins {
		return nil, fmt.Errorf("part: bin budget %d below group count %d; raise MaxBins or lower TargetGroups",
			cfg.MaxBins, len(plan.Groups))
	}
	plan.finalize()
	for plan.Weight() > cfg.MaxBins {
		worst, worstVPs := -1, 1
		for gi := range plan.Groups {
			if plan.Groups[gi].ExtraShuffle {
				continue
			}
			nvp := len(plan.Groups[gi].Policies)
			if nvp > worstVPs {
				worst, worstVPs = gi, nvp
			}
		}
		if worst < 0 {
			break
		}
		plan.Groups[worst].ExtraShuffle = true
		plan.finalize()
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}
