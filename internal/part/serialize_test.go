package part

import (
	"bytes"
	"strings"
	"testing"

	"flashmob/internal/profile"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	g := testGraph(t, 20000, 8)
	plan, err := PlanMCKP(g, Config{Walkers: 20000, Model: testModel()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.V != plan.V || got.NumVPs() != plan.NumVPs() || got.Weight() != plan.Weight() {
		t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
			got.V, got.NumVPs(), got.Weight(), plan.V, plan.NumVPs(), plan.Weight())
	}
	for i := range plan.VPs {
		if got.VPs[i] != plan.VPs[i] {
			t.Fatalf("VP %d differs: %+v vs %+v", i, got.VPs[i], plan.VPs[i])
		}
	}
	// The reloaded plan answers lookups identically.
	for v := uint32(0); v < plan.V; v += 97 {
		if got.VPOf(v) != plan.VPOf(v) || got.BinOf(v) != plan.BinOf(v) {
			t.Fatalf("lookup mismatch at vertex %d", v)
		}
	}
}

func TestReadPlanRejectsBadInput(t *testing.T) {
	if _, err := ReadPlan(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	// Structurally broken: groups don't tile [0, V).
	bad := `{"v": 100, "group_size_log": 5, "groups": [
		{"start": 10, "end": 42, "vp_size_log": 5, "policies": [0]}]}`
	if _, err := ReadPlan(strings.NewReader(bad)); err == nil {
		t.Error("non-tiling plan accepted")
	}
	// Invalid policy value.
	bad2 := `{"v": 4, "group_size_log": 2, "groups": [
		{"start": 0, "end": 4, "vp_size_log": 2, "policies": [9]}]}`
	if _, err := ReadPlan(strings.NewReader(bad2)); err == nil {
		t.Error("invalid policy accepted")
	}
}

func TestPlanSummary(t *testing.T) {
	g := testGraph(t, 5000, 9)
	plan, err := PlanUniform(g, Config{MaxBins: 64}, profile.DS)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Summary()
	for _, want := range []string{"|V|=5000", "shuffle bins", "DS"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
