package part

import (
	"bytes"
	"testing"

	"flashmob/internal/graph"
	"flashmob/internal/profile"
)

// lookupPlan hand-builds a finalized plan of v vertices with groups of
// 2^groupLog and VPs of 2^vpLog, marking every third group extra-shuffle.
func lookupPlan(t *testing.T, v uint32, groupLog, vpLog uint) *Plan {
	t.Helper()
	p := &Plan{V: v, GroupSizeLog: groupLog}
	groupSize := uint32(1) << groupLog
	gi := 0
	for start := uint32(0); start < v; start += groupSize {
		end := start + groupSize
		if end > v {
			end = v
		}
		nvp := int((uint64(end-start) + (1 << vpLog) - 1) >> vpLog)
		p.Groups = append(p.Groups, GroupPlan{
			Start: start, End: end, VPSizeLog: vpLog,
			ExtraShuffle: gi%3 == 0 && nvp > 1,
			Policies:     make([]profile.Policy, nvp),
		})
		gi++
	}
	if err := Finalize(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLookupMatchesPlanArithmetic(t *testing.T) {
	cases := []struct {
		v               uint32
		groupLog, vpLog uint
	}{
		{64, 5, 3},                   // direct, tiny
		{1000, 6, 4},                 // direct, ragged final group
		{directLookupMax, 12, 8},     // direct, at the threshold
		{directLookupMax + 7, 12, 8}, // two-level, just past it
		{1 << 19, 13, 9},             // two-level, power of two
	}
	for _, tc := range cases {
		p := lookupPlan(t, tc.v, tc.groupLog, tc.vpLog)
		l := p.Lookup()
		if l == nil {
			t.Fatalf("V=%d: finalized plan has no lookup", tc.v)
		}
		wantDirect := tc.v <= directLookupMax
		if gotDirect := l.directVP != nil; gotDirect != wantDirect {
			t.Fatalf("V=%d: direct=%v, want %v", tc.v, gotDirect, wantDirect)
		}
		for v := graph.VID(0); v < p.V; v++ {
			if got, want := l.VPOf(v), p.VPOf(v); got != want {
				t.Fatalf("V=%d: Lookup.VPOf(%d) = %d, want %d", tc.v, v, got, want)
			}
			if got, want := l.BinOf(v), p.BinOf(v); got != want {
				t.Fatalf("V=%d: Lookup.BinOf(%d) = %d, want %d", tc.v, v, got, want)
			}
		}
	}
}

func TestLookupSurvivesSerializeRoundTrip(t *testing.T) {
	p := lookupPlan(t, 2000, 7, 4)
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Lookup() == nil {
		t.Fatal("deserialized plan has no lookup")
	}
	for v := graph.VID(0); v < q.V; v++ {
		if q.Lookup().VPOf(v) != p.VPOf(v) || q.Lookup().BinOf(v) != p.BinOf(v) {
			t.Fatalf("round-tripped lookup diverges at vertex %d", v)
		}
	}
}
