package part

import (
	"math"
	"testing"
	"testing/quick"

	"flashmob/internal/rng"
)

// enumerate returns the optimal cost of an MCKP instance by exhaustive
// search (exponential; instances are kept tiny).
func enumerate(items [][]item, maxW int) float64 {
	best := math.MaxFloat64
	var rec func(c int, w int, cost float64)
	rec = func(c, w int, cost float64) {
		if w > maxW || cost >= best {
			return
		}
		if c == len(items) {
			best = cost
			return
		}
		for _, it := range items[c] {
			rec(c+1, w+it.weight, cost+it.costNS)
		}
	}
	rec(0, 0, 0)
	return best
}

// TestSolveMCKPOptimalOnRandomInstances is a property test: on random
// feasible instances the DP must match exhaustive search exactly.
func TestSolveMCKPOptimalOnRandomInstances(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.NewXorShift64Star(seed)
		numClasses := 2 + int(rng.Uint64n(src, 4)) // 2..5 classes
		// Feasibility floor: every class carries a weight-1 item, so any
		// limit ≥ numClasses admits a solution.
		maxW := numClasses + int(rng.Uint64n(src, 12))
		items := make([][]item, numClasses)
		for c := range items {
			n := 1 + int(rng.Uint64n(src, 4)) // 1..4 items
			for i := 0; i < n; i++ {
				items[c] = append(items[c], item{
					weight: 1 + int(rng.Uint64n(src, 5)),
					costNS: float64(rng.Uint64n(src, 100)),
				})
			}
			// Guarantee feasibility: every class has a weight-1 item.
			items[c] = append(items[c], item{weight: 1, costNS: float64(rng.Uint64n(src, 100))})
		}
		choice, err := solveMCKP(items, maxW)
		if err != nil {
			return false
		}
		var cost float64
		w := 0
		for c, idx := range choice {
			cost += items[c][idx].costNS
			w += items[c][idx].weight
		}
		if w > maxW {
			return false
		}
		return math.Abs(cost-enumerate(items, maxW)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPlanLookupsConsistentOnRandomPlans is a property test: for random
// valid plan shapes, VPOf/BinOf agree with the flattened VP and bin lists
// for every vertex (Finalize's Validate checks this exhaustively).
func TestPlanLookupsConsistentOnRandomPlans(t *testing.T) {
	g := func(seed uint64) bool {
		src := rng.NewXorShift64Star(seed)
		groupLog := uint(2 + rng.Uint64n(src, 5))
		groups := 1 + int(rng.Uint64n(src, 6))
		lastLen := 1 + uint32(rng.Uint64n(src, 1<<groupLog))
		v := uint32(groups-1)<<groupLog + lastLen
		plan := &Plan{V: v, GroupSizeLog: groupLog}
		for gi := 0; gi < groups; gi++ {
			start := uint32(gi) << groupLog
			end := start + 1<<groupLog
			if end > v {
				end = v
			}
			vpLog := uint(rng.Uint64n(src, uint64(groupLog)+1))
			nvp := int((uint64(end-start) + (1 << vpLog) - 1) >> vpLog)
			plan.Groups = append(plan.Groups, GroupPlan{
				Start: start, End: end, VPSizeLog: vpLog,
				ExtraShuffle: rng.Uint64n(src, 2) == 0 && nvp > 1,
			})
		}
		return Finalize(plan) == nil
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
