package part

import (
	"reflect"
	"testing"
)

// groupsEqual compares the planner decisions group by group.
func groupsEqual(t *testing.T, a, b *Plan) {
	t.Helper()
	if a.GroupSizeLog != b.GroupSizeLog || len(a.Groups) != len(b.Groups) {
		t.Fatalf("geometry differs: 2^%d×%d vs 2^%d×%d",
			a.GroupSizeLog, len(a.Groups), b.GroupSizeLog, len(b.Groups))
	}
	for gi := range a.Groups {
		if !reflect.DeepEqual(a.Groups[gi], b.Groups[gi]) {
			t.Fatalf("group %d differs:\n  %+v\n  %+v", gi, a.Groups[gi], b.Groups[gi])
		}
	}
}

// TestPlanIncrementalZeroThresholdIsFullSolve pins the identity dynamic
// compaction depends on: threshold 0 dirties every group, so the
// incremental solve IS PlanMCKP, decision for decision.
func TestPlanIncrementalZeroThresholdIsFullSolve(t *testing.T) {
	g := testGraph(t, 50000, 8)
	cfg := Config{Walkers: 50000, Model: testModel()}
	prev, err := PlanMCKP(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mass := GroupEdgeMass(g, prev.GroupSizeLog)

	inc, replanned, err := PlanIncremental(g, cfg, prev, mass, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if replanned != len(prev.Groups) {
		t.Fatalf("threshold 0 replanned %d of %d groups", replanned, len(prev.Groups))
	}
	full, err := PlanMCKP(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	groupsEqual(t, inc, full)
}

// TestPlanIncrementalReusesCleanGroups: an unchanged graph under a positive
// threshold replans nothing and keeps every decision, and a delta
// concentrated in the low-degree tail replans only the drifted groups.
func TestPlanIncrementalReusesCleanGroups(t *testing.T) {
	g := testGraph(t, 50000, 8)
	cfg := Config{Walkers: 50000, Model: testModel()}
	prev, err := PlanMCKP(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mass := GroupEdgeMass(g, prev.GroupSizeLog)

	same, replanned, err := PlanIncremental(g, cfg, prev, mass, nil, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if replanned != 0 {
		t.Fatalf("unchanged graph replanned %d groups", replanned)
	}
	for gi := range prev.Groups {
		if same.Groups[gi].VPSizeLog != prev.Groups[gi].VPSizeLog ||
			same.Groups[gi].ExtraShuffle != prev.Groups[gi].ExtraShuffle {
			t.Fatalf("clean group %d changed decision", gi)
		}
	}
	if err := same.Validate(); err != nil {
		t.Fatal(err)
	}

	// Simulate drift concentrated in two groups by recording a stale
	// baseline for them: against the doctored prevMass, exactly those
	// groups read as having gained mass past the threshold.
	stale := append([]uint64{}, mass...)
	stale[1] = stale[1] * 2 / 3
	stale[4] = stale[4] * 1 / 2
	inc, replanned, err := PlanIncremental(g, cfg, prev, stale, nil, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if replanned != 2 {
		t.Fatalf("doctored baseline replanned %d groups, want exactly 2", replanned)
	}
	for gi := range prev.Groups {
		if gi == 1 || gi == 4 {
			continue
		}
		if inc.Groups[gi].VPSizeLog != prev.Groups[gi].VPSizeLog ||
			inc.Groups[gi].ExtraShuffle != prev.Groups[gi].ExtraShuffle {
			t.Fatalf("clean group %d changed decision under partial replan", gi)
		}
	}
	if err := inc.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPlanIncrementalObservedStepsDirty: a group whose live walker-step
// share diverges from its edge share gets replanned even with unchanged
// mass — the counters override the density estimate.
func TestPlanIncrementalObservedStepsDirty(t *testing.T) {
	g := testGraph(t, 50000, 8)
	cfg := Config{Walkers: 50000, Model: testModel()}
	prev, err := PlanMCKP(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mass := GroupEdgeMass(g, prev.GroupSizeLog)

	// Fabricate counters proportional to edge mass everywhere except group
	// 0, whose observed load is tripled: only the skewed group (and the
	// mild dilution it causes elsewhere, below threshold) should dirty.
	obs := make([]uint64, len(prev.VPs))
	for i, vp := range prev.VPs {
		obs[i] = edgesIn(g, vp.Start, vp.End)
		if vp.Group == 0 {
			obs[i] *= 3
		}
	}
	_, replanned, err := PlanIncremental(g, cfg, prev, mass, obs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if replanned == 0 {
		t.Fatal("skewed step counters dirtied no group")
	}
	if replanned == len(prev.Groups) {
		t.Fatal("skewed step counters dirtied every group; want only the divergent ones")
	}
}

// TestPlanIncrementalGeometryChangeFallsBack: a grown vertex space shifts
// every group boundary, so the whole plan re-solves.
func TestPlanIncrementalGeometryChangeFallsBack(t *testing.T) {
	g := testGraph(t, 50000, 8)
	cfg := Config{Walkers: 50000, Model: testModel()}
	prev, err := PlanMCKP(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mass := GroupEdgeMass(g, prev.GroupSizeLog)

	big := testGraph(t, 120000, 8)
	inc, replanned, err := PlanIncremental(big, cfg, prev, mass, nil, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if replanned != len(inc.Groups) {
		t.Fatalf("geometry change replanned %d of %d groups", replanned, len(inc.Groups))
	}
	full, err := PlanMCKP(big, cfg)
	if err != nil {
		t.Fatal(err)
	}
	groupsEqual(t, inc, full)
}
