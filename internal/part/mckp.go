package part

import (
	"fmt"
	"math"

	"flashmob/internal/graph"
	"flashmob/internal/profile"
)

// Config parameterizes the planners.
type Config struct {
	// TargetGroups is the MCKP class-count hyper-parameter G (paper: 64
	// to 128). Default 128.
	TargetGroups int
	// MaxBins is the MCKP weight limit P: the number of outer-shuffle
	// bins that keeps one shuffle task inside the L2 cache (paper: 2048
	// on their platform). Default 2048.
	MaxBins int
	// MinVPSizeLog bounds how small a VP may get (log2 vertices).
	// Default 6 (64 vertices).
	MinVPSizeLog uint
	// MaxSplitLog bounds how many VPs one group may be cut into (log2).
	// Default 11 (2048), matching the one-group-fills-the-budget extreme.
	MaxSplitLog uint
	// Walkers is the number of walkers the engine will run per episode;
	// with |E| edges it determines the walker density.
	Walkers uint64
	// Model prices candidate partitions.
	Model profile.CostModel
}

func (c Config) withDefaults() Config {
	if c.TargetGroups <= 0 {
		c.TargetGroups = 128
	}
	if c.MaxBins <= 0 {
		c.MaxBins = 2048
	}
	if c.MinVPSizeLog == 0 {
		c.MinVPSizeLog = 6
	}
	if c.MaxSplitLog == 0 {
		c.MaxSplitLog = 11
	}
	return c
}

// item is one MCKP candidate for a group: a VP size plus whether the group
// shuffles internally.
type item struct {
	vpSizeLog uint
	extra     bool
	weight    int
	costNS    float64
	policies  []profile.Policy
}

// PlanMCKP runs the paper's full auto-configuration: group the
// degree-sorted vertices, enumerate per-group (VP size × policy)
// candidates priced by the cost model, and solve the MCKP exactly with
// dynamic programming. The graph must be degree-sorted (descending).
func PlanMCKP(g *graph.CSR, cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	if cfg.Model == nil {
		return nil, fmt.Errorf("part: config needs a cost model")
	}
	if !graph.IsDegreeSorted(g) {
		return nil, fmt.Errorf("part: graph must be sorted by descending degree")
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("part: empty graph")
	}
	if cfg.Walkers == 0 {
		cfg.Walkers = uint64(n)
	}
	density := float64(cfg.Walkers) / float64(g.NumEdges())

	groupLog := GroupSizeLogFor(n, cfg.TargetGroups)
	groupSize := uint32(1) << groupLog
	numGroups := int((uint64(n) + uint64(groupSize) - 1) >> groupLog)

	// Enumerate candidate items per group.
	items := make([][]item, numGroups)
	for gi := 0; gi < numGroups; gi++ {
		start := graph.VID(gi) << groupLog
		end := start + groupSize
		if end > n {
			end = n
		}
		lo := int(groupLog) - int(cfg.MaxSplitLog)
		if lo < int(cfg.MinVPSizeLog) {
			lo = int(cfg.MinVPSizeLog)
		}
		if lo > int(groupLog) {
			lo = int(groupLog)
		}
		for szLog := uint(lo); szLog <= groupLog; szLog++ {
			cost, weight, policies := priceGroup(g, start, end, szLog, density, cfg.Model)
			items[gi] = append(items[gi],
				item{vpSizeLog: szLog, weight: weight, costNS: cost, policies: policies})
			if weight > 1 {
				// The internal-shuffle variant: weight collapses to one
				// bin, cost gains one shuffle level over the group's
				// walkers (§4.4).
				walkers := float64(edgesIn(g, start, end)) * density
				items[gi] = append(items[gi], item{
					vpSizeLog: szLog, extra: true, weight: 1,
					costNS:   cost + walkers*cfg.Model.ShuffleStepNS(),
					policies: policies,
				})
			}
		}
	}

	choice, err := solveMCKP(items, cfg.MaxBins)
	if err != nil {
		return nil, err
	}

	plan := &Plan{V: n, GroupSizeLog: groupLog}
	for gi := 0; gi < numGroups; gi++ {
		it := items[gi][choice[gi]]
		start := graph.VID(gi) << groupLog
		end := start + groupSize
		if end > n {
			end = n
		}
		plan.Groups = append(plan.Groups, GroupPlan{
			Start: start, End: end,
			VPSizeLog:    it.vpSizeLog,
			ExtraShuffle: it.extra,
			Policies:     it.policies,
		})
	}
	plan.finalize()
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// edgesIn returns the edge count of the vertex range [start, end), straight
// from the CSR offset prefix sums.
func edgesIn(g *graph.CSR, start, end graph.VID) uint64 {
	return g.Offsets[end] - g.Offsets[start]
}

// priceGroup costs one candidate VP size for a group: each VP gets the
// cheaper of PS and DS (the paper's per-item profit), weighted by the
// walker-steps the VP will serve per iteration (proportional to its edges,
// per the Table 2 visit/edge correlation).
func priceGroup(g *graph.CSR, start, end graph.VID, szLog uint, density float64, model profile.CostModel) (costNS float64, weight int, policies []profile.Policy) {
	vpSize := uint32(1) << szLog
	for s := start; s < end; s += vpSize {
		e := s + vpSize
		if e > end {
			e = end
		}
		edges := edgesIn(g, s, e)
		verts := uint64(e - s)
		avgDeg := float64(edges) / float64(verts)
		shape := profile.VPShape{Vertices: verts, AvgDegree: avgDeg, Density: density}
		ps := model.SampleStepNS(profile.PS, shape)
		ds := model.SampleStepNS(profile.DS, shape)
		walkers := float64(edges) * density
		if ps < ds {
			costNS += walkers * ps
			policies = append(policies, profile.PS)
		} else {
			costNS += walkers * ds
			policies = append(policies, profile.DS)
		}
		weight++
	}
	return costNS, weight, policies
}

// solveMCKP minimizes total cost choosing exactly one item per class with
// total weight ≤ maxWeight, using the classic pseudo-polynomial DP
// (O(C·P·I) time, O(C·P) space; Dudziński & Walukiewicz 1987, Kellerer et
// al. 2004). It returns the chosen item index per class.
func solveMCKP(items [][]item, maxWeight int) ([]int, error) {
	numClasses := len(items)
	width := maxWeight + 1
	const inf = math.MaxFloat64
	prev := make([]float64, width)
	next := make([]float64, width)
	// choiceAt[c*width + w] is the item chosen for class c to reach
	// weight w.
	choiceAt := make([]int16, numClasses*width)
	for i := range choiceAt {
		choiceAt[i] = -1
	}
	for w := 1; w < width; w++ {
		prev[w] = inf
	}
	for c := 0; c < numClasses; c++ {
		for w := 0; w < width; w++ {
			next[w] = inf
		}
		for w := 0; w < width; w++ {
			if prev[w] == inf {
				continue
			}
			for idx, it := range items[c] {
				nw := w + it.weight
				if nw >= width {
					continue
				}
				if cand := prev[w] + it.costNS; cand < next[nw] {
					next[nw] = cand
					choiceAt[c*width+nw] = int16(idx)
				}
			}
		}
		prev, next = next, prev
	}
	// Find the best final weight.
	bestW, bestCost := -1, inf
	for w := 0; w < width; w++ {
		if prev[w] < bestCost {
			bestCost = prev[w]
			bestW = w
		}
	}
	if bestW < 0 {
		return nil, fmt.Errorf("part: MCKP infeasible with weight limit %d for %d classes",
			maxWeight, numClasses)
	}
	// Backtrack.
	choice := make([]int, numClasses)
	w := bestW
	for c := numClasses - 1; c >= 0; c-- {
		idx := choiceAt[c*width+w]
		if idx < 0 {
			return nil, fmt.Errorf("part: MCKP backtrack failed at class %d weight %d", c, w)
		}
		choice[c] = int(idx)
		w -= items[c][idx].weight
	}
	return choice, nil
}

// EvaluateNS estimates a plan's per-iteration sample and shuffle costs
// under a cost model, for comparing planners (the paper's Figure 9).
// Returned values are total nanoseconds per iteration.
func EvaluateNS(p *Plan, g *graph.CSR, walkers uint64, model profile.CostModel) (sampleNS, shuffleNS float64) {
	density := float64(walkers) / float64(g.NumEdges())
	for _, vp := range p.VPs {
		edges := edgesIn(g, vp.Start, vp.End)
		verts := uint64(vp.End - vp.Start)
		shape := profile.VPShape{
			Vertices:  verts,
			AvgDegree: float64(edges) / float64(verts),
			Density:   density,
		}
		sampleNS += float64(edges) * density * model.SampleStepNS(vp.Policy, shape)
	}
	// One outer level over all walkers, plus one inner level per
	// extra-shuffle group's walkers.
	shuffleNS = float64(walkers) * model.ShuffleStepNS()
	for _, gp := range p.Groups {
		if gp.ExtraShuffle {
			w := float64(edgesIn(g, gp.Start, gp.End)) * density
			shuffleNS += w * model.ShuffleStepNS()
		}
	}
	return sampleNS, shuffleNS
}
