package walk

import (
	"fmt"
	"testing"

	"flashmob/internal/graph"
	"flashmob/internal/part"
	"flashmob/internal/pool"
)

// refShuffler is the pre-write-combining reference implementation: the
// scalar two-pass counting shuffle exactly as shipped before the staged
// data path, with the per-worker ranges emulated sequentially (the
// placement math is identical, so the result is bitwise what the old
// goroutine waves produced).
type refShuffler struct {
	plan       *part.Plan
	workers    int
	numWalkers int
	vpStart    []uint64
	binStart   []uint64
	counts     [][]uint32
	cursors    [][]uint64
	slotFinal  []uint32
	scratch    []graph.VID
	hasExtra   bool
}

func newRefShuffler(plan *part.Plan, numWalkers, workers int) *refShuffler {
	if workers <= 0 {
		workers = 1
	}
	if workers > numWalkers && numWalkers > 0 {
		workers = numWalkers
	}
	s := &refShuffler{
		plan:       plan,
		workers:    workers,
		numWalkers: numWalkers,
		vpStart:    make([]uint64, plan.NumVPs()+1),
		binStart:   make([]uint64, len(plan.Bins())+1),
		counts:     make([][]uint32, workers),
		cursors:    make([][]uint64, workers),
	}
	for w := 0; w < workers; w++ {
		s.counts[w] = make([]uint32, plan.NumVPs())
		s.cursors[w] = make([]uint64, len(plan.Bins()))
	}
	for _, b := range plan.Bins() {
		if b.Extra {
			s.hasExtra = true
		}
	}
	if s.hasExtra {
		s.slotFinal = make([]uint32, numWalkers)
		s.scratch = make([]graph.VID, numWalkers)
	}
	return s
}

func (s *refShuffler) workerRange(w int) (lo, hi int) {
	per := s.numWalkers / s.workers
	rem := s.numWalkers % s.workers
	lo = w*per + min(w, rem)
	hi = lo + per
	if w < rem {
		hi++
	}
	return lo, hi
}

func (s *refShuffler) forward(w, sw []graph.VID, aux, auxSW [][]graph.VID) {
	plan := s.plan
	for wk := 0; wk < s.workers; wk++ {
		lo, hi := s.workerRange(wk)
		counts := s.counts[wk]
		for i := range counts {
			counts[i] = 0
		}
		for j := lo; j < hi; j++ {
			counts[plan.VPOf(w[j])]++
		}
	}
	var total uint64
	for vp := 0; vp < plan.NumVPs(); vp++ {
		s.vpStart[vp] = total
		for wk := 0; wk < s.workers; wk++ {
			total += uint64(s.counts[wk][vp])
		}
	}
	s.vpStart[plan.NumVPs()] = total
	bins := plan.Bins()
	for bi, b := range bins {
		s.binStart[bi] = s.vpStart[b.FirstVP]
		s.binStart[bi+1] = s.vpStart[b.FirstVP+b.NumVPs]
	}
	for bi, b := range bins {
		cur := s.binStart[bi]
		for wk := 0; wk < s.workers; wk++ {
			s.cursors[wk][bi] = cur
			for vp := b.FirstVP; vp < b.FirstVP+b.NumVPs; vp++ {
				cur += uint64(s.counts[wk][vp])
			}
		}
	}
	for wk := 0; wk < s.workers; wk++ {
		lo, hi := s.workerRange(wk)
		cursors := s.cursors[wk]
		for j := lo; j < hi; j++ {
			b := plan.BinOf(w[j])
			pos := cursors[b]
			cursors[b]++
			sw[pos] = w[j]
			for c := range aux {
				auxSW[c][pos] = aux[c][j]
			}
		}
	}
	if s.hasExtra {
		for i := range s.slotFinal {
			s.slotFinal[i] = uint32(i)
		}
		for bi, b := range bins {
			if !b.Extra {
				continue
			}
			s.innerShuffle(b, s.binStart[bi], s.binStart[bi+1], sw, auxSW)
		}
	}
}

func (s *refShuffler) innerShuffle(b part.Bin, lo, hi uint64, sw []graph.VID, auxSW [][]graph.VID) {
	plan := s.plan
	vpCount := make([]uint64, b.NumVPs)
	for p := lo; p < hi; p++ {
		vpCount[plan.VPOf(sw[p])-b.FirstVP]++
	}
	vpCur := make([]uint64, b.NumVPs)
	var acc uint64
	for i := range vpCount {
		vpCur[i] = lo + acc
		acc += vpCount[i]
	}
	for p := lo; p < hi; p++ {
		vi := plan.VPOf(sw[p]) - b.FirstVP
		dst := vpCur[vi]
		vpCur[vi]++
		s.scratch[dst] = sw[p]
		s.slotFinal[p] = uint32(dst)
	}
	copy(sw[lo:hi], s.scratch[lo:hi])
	for c := range auxSW {
		for p := lo; p < hi; p++ {
			s.scratch[s.slotFinal[p]] = auxSW[c][p]
		}
		copy(auxSW[c][lo:hi], s.scratch[lo:hi])
	}
}

func (s *refShuffler) reverse(wOld, swNew, wNext []graph.VID, auxSW, auxNext [][]graph.VID) {
	plan := s.plan
	bins := plan.Bins()
	for bi := range bins {
		cur := s.binStart[bi]
		b := bins[bi]
		for wk := 0; wk < s.workers; wk++ {
			s.cursors[wk][bi] = cur
			for vp := b.FirstVP; vp < b.FirstVP+b.NumVPs; vp++ {
				cur += uint64(s.counts[wk][vp])
			}
		}
	}
	for wk := 0; wk < s.workers; wk++ {
		lo, hi := s.workerRange(wk)
		cursors := s.cursors[wk]
		for j := lo; j < hi; j++ {
			b := plan.BinOf(wOld[j])
			pos := cursors[b]
			cursors[b]++
			if s.hasExtra {
				pos = uint64(s.slotFinal[pos])
			}
			wNext[j] = swNew[pos]
			for c := range auxSW {
				auxNext[c][j] = auxSW[c][pos]
			}
		}
	}
}

// makeAux builds channel-count aux arrays with unique payloads.
func makeAux(channels, n int) (aux, auxSW, auxNext [][]graph.VID) {
	for c := 0; c < channels; c++ {
		a := make([]graph.VID, n)
		for j := range a {
			a[j] = graph.VID(uint32(j*channels + c + 1))
		}
		aux = append(aux, a)
		auxSW = append(auxSW, make([]graph.VID, n))
		auxNext = append(auxNext, make([]graph.VID, n))
	}
	return
}

func cloneChannels(a [][]graph.VID) [][]graph.VID {
	out := make([][]graph.VID, len(a))
	for c := range a {
		out[c] = append([]graph.VID(nil), a[c]...)
	}
	return out
}

// TestWriteCombiningEquivalence locks the staged data path to the
// pre-change reference: for every combination of plan shape, seed, worker
// count, aux channel count, pool-vs-spawn, and write-combining on/off,
// the forward shuffle must produce bitwise-identical sw/vpStart/aux
// arrays and the reverse pass bitwise-identical wNext/auxNext.
func TestWriteCombiningEquivalence(t *testing.T) {
	type planShape struct {
		v               uint32
		groupLog, vpLog uint
		extra           bool
	}
	shapes := []planShape{
		{256, 6, 4, false},
		{256, 6, 4, true},      // extra-shuffle bins
		{512, 7, 3, true},      // wide inner bins
		{100, 5, 2, true},      // ragged final group
		{1 << 10, 8, 8, false}, // one VP per group
	}
	for _, shape := range shapes {
		for _, seed := range []uint64{1, 2, 3} {
			for _, workers := range []int{1, 2, 3, 8} {
				for _, channels := range []int{0, 1, 3} {
					name := fmt.Sprintf("v%d-g%d-p%d-extra%v/seed%d/w%d/ch%d",
						shape.v, shape.groupLog, shape.vpLog, shape.extra, seed, workers, channels)
					t.Run(name, func(t *testing.T) {
						plan := testPlan(t, shape.v, shape.groupLog, shape.vpLog, shape.extra)
						n := 3000 + int(seed)*7
						w := randomWalkers(n, shape.v, seed)
						aux, auxSWRef, auxNextRef := makeAux(channels, n)

						// Reference pass.
						ref := newRefShuffler(plan, n, workers)
						swRef := make([]graph.VID, n)
						nextRef := make([]graph.VID, n)
						ref.forward(w, swRef, aux, auxSWRef)
						// Fake one sample step so reverse has real work.
						swMut := append([]graph.VID(nil), swRef...)
						for p := range swMut {
							swMut[p] = swMut[p]*3 + 1
						}
						auxMutRef := cloneChannels(auxSWRef)
						ref.reverse(w, swMut, nextRef, auxMutRef, auxNextRef)

						p := pool.New(workers)
						defer p.Close()
						tuneAll := func(on bool) func(*Shuffler) {
							return func(s *Shuffler) { s.SetWriteCombining(on) }
						}
						for _, mode := range []struct {
							name  string
							build func() (*Shuffler, error)
							tune  func(*Shuffler)
						}{
							// "default" leaves the measured asymmetric
							// production setting: scalar scatter + WC gather.
							{"default-pool", func() (*Shuffler, error) { return NewShufflerPool(plan, n, p) }, nil},
							{"default-spawn", func() (*Shuffler, error) { return NewShuffler(plan, n, workers) }, nil},
							{"wc-pool", func() (*Shuffler, error) { return NewShufflerPool(plan, n, p) }, tuneAll(true)},
							{"wc-spawn", func() (*Shuffler, error) { return NewShuffler(plan, n, workers) }, tuneAll(true)},
							{"scalar-pool", func() (*Shuffler, error) { return NewShufflerPool(plan, n, p) }, tuneAll(false)},
							{"scalar-spawn", func() (*Shuffler, error) { return NewShuffler(plan, n, workers) }, tuneAll(false)},
							{"wc-scatter-only", func() (*Shuffler, error) { return NewShufflerPool(plan, n, p) }, func(s *Shuffler) {
								s.SetScatterCombining(true)
								s.SetGatherCombining(false)
							}},
						} {
							s, err := mode.build()
							if err != nil {
								t.Fatal(err)
							}
							if mode.tune != nil {
								mode.tune(s)
							}
							sw := make([]graph.VID, n)
							next := make([]graph.VID, n)
							_, auxSW, auxNext := makeAux(channels, n)
							if err := s.ForwardMulti(w, sw, aux, auxSW); err != nil {
								t.Fatal(err)
							}
							for i := range swRef {
								if sw[i] != swRef[i] {
									t.Fatalf("%s: sw[%d] = %d, reference %d", mode.name, i, sw[i], swRef[i])
								}
							}
							for i := range ref.vpStart {
								if s.VPStart()[i] != ref.vpStart[i] {
									t.Fatalf("%s: vpStart[%d] = %d, reference %d", mode.name, i, s.VPStart()[i], ref.vpStart[i])
								}
							}
							for c := range auxSW {
								for i := range auxSW[c] {
									if auxSW[c][i] != auxSWRef[c][i] {
										t.Fatalf("%s: auxSW[%d][%d] = %d, reference %d",
											mode.name, c, i, auxSW[c][i], auxSWRef[c][i])
									}
								}
							}
							auxMut := cloneChannels(auxSW)
							if err := s.ReverseMulti(w, swMut, next, auxMut, auxNext); err != nil {
								t.Fatal(err)
							}
							for i := range nextRef {
								if next[i] != nextRef[i] {
									t.Fatalf("%s: wNext[%d] = %d, reference %d", mode.name, i, next[i], nextRef[i])
								}
							}
							for c := range auxNext {
								for i := range auxNext[c] {
									if auxNext[c][i] != auxNextRef[c][i] {
										t.Fatalf("%s: auxNext[%d][%d] = %d, reference %d",
											mode.name, c, i, auxNext[c][i], auxNextRef[c][i])
									}
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestShuffleSteadyStateAllocs verifies the acceptance criterion that
// steady-state shuffle steps allocate nothing: after one warm-up step
// (which sizes the write-combining buffers), Forward+Reverse on a pooled
// shuffler must be allocation-free, including across extra-shuffle bins
// and aux channels.
func TestShuffleSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name     string
		extra    bool
		channels int
	}{
		{"plain", false, 0},
		{"extra-bins", true, 0},
		{"aux", false, 2},
		{"extra-aux", true, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan := testPlan(t, 512, 7, 4, tc.extra)
			const n = 4096
			w := randomWalkers(n, 512, 9)
			p := pool.New(4)
			defer p.Close()
			s, err := NewShufflerPool(plan, n, p)
			if err != nil {
				t.Fatal(err)
			}
			sw := make([]graph.VID, n)
			next := make([]graph.VID, n)
			aux, auxSW, auxNext := makeAux(tc.channels, n)
			step := func() {
				if err := s.ForwardMulti(w, sw, aux, auxSW); err != nil {
					t.Fatal(err)
				}
				if err := s.ReverseMulti(w, sw, next, auxSW, auxNext); err != nil {
					t.Fatal(err)
				}
			}
			step() // warm up: sizes the staging buffers for this channel count
			if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
				t.Fatalf("steady-state shuffle step allocates %.1f objects, want 0", allocs)
			}
		})
	}
}

// TestShuffleParallelRace drives the pooled write-combining shuffle with
// many workers so `go test -race` checks the phase-barrier discipline:
// shard ranges, staged flushes, and the parallel inner shuffle must never
// touch a slot concurrently.
func TestShuffleParallelRace(t *testing.T) {
	plan := testPlan(t, 512, 7, 3, true)
	const n = 20000
	w := randomWalkers(n, 512, 11)
	p := pool.New(8)
	defer p.Close()
	s, err := NewShufflerPool(plan, n, p)
	if err != nil {
		t.Fatal(err)
	}
	sw := make([]graph.VID, n)
	next := make([]graph.VID, n)
	aux, auxSW, auxNext := makeAux(2, n)
	for iter := 0; iter < 20; iter++ {
		if err := s.ForwardMulti(w, sw, aux, auxSW); err != nil {
			t.Fatal(err)
		}
		if err := s.ReverseMulti(w, sw, next, auxSW, auxNext); err != nil {
			t.Fatal(err)
		}
		checkShuffled(t, plan, w, sw, s.VPStart())
		w, next = next, w
	}
}

// TestShufflerPoolSmallerThanWorkers covers walker counts below the pool
// size: high workers get empty shards and the permutation still matches
// the reference.
func TestShufflerPoolSmallerThanWorkers(t *testing.T) {
	plan := testPlan(t, 128, 5, 3, true)
	p := pool.New(8)
	defer p.Close()
	for _, n := range []int{0, 1, 3, 7} {
		w := randomWalkers(n, 128, 13)
		s, err := NewShufflerPool(plan, n, p)
		if err != nil {
			t.Fatal(err)
		}
		sw := make([]graph.VID, n)
		next := make([]graph.VID, n)
		if err := s.Forward(w, sw, nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := s.Reverse(w, sw, next, nil, nil); err != nil {
			t.Fatal(err)
		}
		for j := range w {
			if next[j] != w[j] {
				t.Fatalf("n=%d: walker %d came back as %d, want %d", n, j, next[j], w[j])
			}
		}
	}
}
