// Package walk implements FlashMob's walker-state machinery (§4.3): the
// compact walker arrays W_i (one VID per walker, identity implicit in array
// order), the two-pass counting shuffle that groups walkers by vertex
// partition, the optional inner shuffle level for over-budget groups, and
// the reverse shuffle that restores walker order so the W_i arrays double
// as path history.
package walk

import (
	"fmt"
	"sync"

	"flashmob/internal/graph"
	"flashmob/internal/part"
)

// Shuffler rearranges walker arrays according to a partition plan. It owns
// the scratch state (per-worker bin counters, offsets, inner-shuffle slot
// maps) so repeated iterations allocate nothing.
type Shuffler struct {
	plan    *part.Plan
	workers int

	numWalkers int
	vpStart    []uint64 // len NumVPs+1: walker slots per VP in shuffled order
	binStart   []uint64 // len Bins+1: outer slots per bin

	// counts[w][vp] is worker w's walker count per VP for its walker range.
	counts [][]uint32
	// cursors[w][bin] replays the placement order in forward and reverse
	// passes.
	cursors [][]uint64

	// slotFinal maps outer slot → final slot when extra-shuffle bins
	// exist; nil otherwise (identity).
	slotFinal []uint32
	scratch   []graph.VID
	hasExtra  bool
}

// NewShuffler builds a shuffler for numWalkers walkers under plan, using
// the given worker count (≤ 0 means 1).
func NewShuffler(plan *part.Plan, numWalkers, workers int) (*Shuffler, error) {
	if plan == nil {
		return nil, fmt.Errorf("walk: nil plan")
	}
	if numWalkers < 0 {
		return nil, fmt.Errorf("walk: negative walker count")
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > numWalkers && numWalkers > 0 {
		workers = numWalkers
	}
	s := &Shuffler{
		plan:       plan,
		workers:    workers,
		numWalkers: numWalkers,
		vpStart:    make([]uint64, plan.NumVPs()+1),
		binStart:   make([]uint64, len(plan.Bins())+1),
		counts:     make([][]uint32, workers),
		cursors:    make([][]uint64, workers),
	}
	for w := 0; w < workers; w++ {
		s.counts[w] = make([]uint32, plan.NumVPs())
		s.cursors[w] = make([]uint64, len(plan.Bins()))
	}
	for _, b := range plan.Bins() {
		if b.Extra {
			s.hasExtra = true
		}
	}
	if s.hasExtra {
		s.slotFinal = make([]uint32, numWalkers)
		s.scratch = make([]graph.VID, numWalkers)
	}
	return s, nil
}

// VPStart returns, after a Forward pass, the slot offsets per VP: walkers
// of VP i occupy shuffled slots [VPStart()[i], VPStart()[i+1]).
func (s *Shuffler) VPStart() []uint64 { return s.vpStart }

// workerRange splits the walker array contiguously across workers.
func (s *Shuffler) workerRange(w int) (lo, hi int) {
	per := s.numWalkers / s.workers
	rem := s.numWalkers % s.workers
	lo = w*per + min(w, rem)
	hi = lo + per
	if w < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Forward shuffles W into SW so walkers sharing a VP are contiguous and
// VPs appear in vertex order. aux/auxSW, when non-nil, are permuted
// identically (per-walker metadata such as node2vec's previous vertex,
// §4.3). len(SW) must equal len(W) == numWalkers.
func (s *Shuffler) Forward(w, sw, aux, auxSW []graph.VID) error {
	if aux == nil {
		return s.ForwardMulti(w, sw, nil, nil)
	}
	return s.ForwardMulti(w, sw, [][]graph.VID{aux}, [][]graph.VID{auxSW})
}

// ForwardMulti is Forward with any number of auxiliary channels, all
// permuted identically with the walkers — the carrier for order-k walks,
// whose walkers travel with k-1 predecessor VIDs (§2.1's
// p(v|u,t,s,...)).
func (s *Shuffler) ForwardMulti(w, sw []graph.VID, aux, auxSW [][]graph.VID) error {
	if len(w) != s.numWalkers || len(sw) != s.numWalkers {
		return fmt.Errorf("walk: Forward arrays have %d/%d walkers, want %d", len(w), len(sw), s.numWalkers)
	}
	if err := checkAux(aux, auxSW, s.numWalkers); err != nil {
		return err
	}
	plan := s.plan

	// Pass 1: count walkers per VP, one worker per contiguous chunk.
	s.parallel(func(worker, lo, hi int) {
		counts := s.counts[worker]
		for i := range counts {
			counts[i] = 0
		}
		for j := lo; j < hi; j++ {
			counts[plan.VPOf(w[j])]++
		}
	})

	// Aggregate: vpStart then binStart, plus per-worker bin cursors in
	// (bin-major, worker-minor) order so each worker writes a disjoint,
	// in-order region of every bin.
	var total uint64
	for vp := 0; vp < plan.NumVPs(); vp++ {
		s.vpStart[vp] = total
		for wk := 0; wk < s.workers; wk++ {
			total += uint64(s.counts[wk][vp])
		}
	}
	s.vpStart[plan.NumVPs()] = total
	bins := plan.Bins()
	for bi, b := range bins {
		s.binStart[bi] = s.vpStart[b.FirstVP]
		s.binStart[bi+1] = s.vpStart[b.FirstVP+b.NumVPs]
	}
	for bi, b := range bins {
		cur := s.binStart[bi]
		for wk := 0; wk < s.workers; wk++ {
			s.cursors[wk][bi] = cur
			for vp := b.FirstVP; vp < b.FirstVP+b.NumVPs; vp++ {
				cur += uint64(s.counts[wk][vp])
			}
		}
	}

	// Pass 2: place. Within a bin, walkers keep scan order (outer level
	// shuffles by bin, not by VP — the multi-stream access pattern of
	// §4.3).
	s.parallel(func(worker, lo, hi int) {
		cursors := s.cursors[worker]
		for j := lo; j < hi; j++ {
			b := plan.BinOf(w[j])
			pos := cursors[b]
			cursors[b]++
			sw[pos] = w[j]
			for c := range aux {
				auxSW[c][pos] = aux[c][j]
			}
		}
	})

	// Inner level: extra-shuffle bins get re-ordered by VP within their
	// outer region, recording the slot mapping for the reverse pass.
	if s.hasExtra {
		for i := range s.slotFinal {
			s.slotFinal[i] = uint32(i)
		}
		for bi, b := range bins {
			if !b.Extra {
				continue
			}
			s.innerShuffle(b, s.binStart[bi], s.binStart[bi+1], sw, auxSW)
		}
	}
	return nil
}

// innerShuffle re-sorts the chunk [lo, hi) of sw by VP index (stable) and
// records slotFinal for the chunk.
func (s *Shuffler) innerShuffle(b part.Bin, lo, hi uint64, sw []graph.VID, auxSW [][]graph.VID) {
	plan := s.plan
	// Count per VP within the chunk.
	vpCount := make([]uint64, b.NumVPs)
	for p := lo; p < hi; p++ {
		vpCount[plan.VPOf(sw[p])-b.FirstVP]++
	}
	vpCur := make([]uint64, b.NumVPs)
	var acc uint64
	for i := range vpCount {
		vpCur[i] = lo + acc
		acc += vpCount[i]
	}
	// Place into scratch, record final slots.
	for p := lo; p < hi; p++ {
		vi := plan.VPOf(sw[p]) - b.FirstVP
		dst := vpCur[vi]
		vpCur[vi]++
		s.scratch[dst] = sw[p]
		s.slotFinal[p] = uint32(dst)
	}
	copy(sw[lo:hi], s.scratch[lo:hi])
	for c := range auxSW {
		// Permute each aux channel with the recorded mapping.
		for p := lo; p < hi; p++ {
			s.scratch[s.slotFinal[p]] = auxSW[c][p]
		}
		copy(auxSW[c][lo:hi], s.scratch[lo:hi])
	}
}

// Reverse rebuilds walker-order arrays after the sample stage has
// overwritten the shuffled array in place: scanning wOld (the pre-shuffle
// locations) replays the placement cursors, so each walker finds the slot
// its updated location was written to (§4.3 "compact walker state
// storage"). wNext[j] receives walker j's new location.
func (s *Shuffler) Reverse(wOld, swNew, wNext, auxSW, auxNext []graph.VID) error {
	if auxSW == nil {
		return s.ReverseMulti(wOld, swNew, wNext, nil, nil)
	}
	return s.ReverseMulti(wOld, swNew, wNext, [][]graph.VID{auxSW}, [][]graph.VID{auxNext})
}

// ReverseMulti is Reverse with any number of auxiliary channels.
func (s *Shuffler) ReverseMulti(wOld, swNew, wNext []graph.VID, auxSW, auxNext [][]graph.VID) error {
	if len(wOld) != s.numWalkers || len(swNew) != s.numWalkers || len(wNext) != s.numWalkers {
		return fmt.Errorf("walk: Reverse arrays sized %d/%d/%d, want %d",
			len(wOld), len(swNew), len(wNext), s.numWalkers)
	}
	if err := checkAux(auxSW, auxNext, s.numWalkers); err != nil {
		return err
	}
	plan := s.plan
	bins := plan.Bins()
	// Rebuild the same per-worker cursors the forward pass used.
	for bi := range bins {
		cur := s.binStart[bi]
		b := bins[bi]
		for wk := 0; wk < s.workers; wk++ {
			s.cursors[wk][bi] = cur
			for vp := b.FirstVP; vp < b.FirstVP+b.NumVPs; vp++ {
				cur += uint64(s.counts[wk][vp])
			}
		}
	}
	s.parallel(func(worker, lo, hi int) {
		cursors := s.cursors[worker]
		for j := lo; j < hi; j++ {
			b := plan.BinOf(wOld[j])
			pos := cursors[b]
			cursors[b]++
			if s.hasExtra {
				pos = uint64(s.slotFinal[pos])
			}
			wNext[j] = swNew[pos]
			for c := range auxSW {
				auxNext[c][j] = auxSW[c][pos]
			}
		}
	})
	return nil
}

// parallel runs fn over the worker partition of the walker array.
func (s *Shuffler) parallel(fn func(worker, lo, hi int)) {
	if s.workers == 1 {
		fn(0, 0, s.numWalkers)
		return
	}
	var wg sync.WaitGroup
	for wk := 0; wk < s.workers; wk++ {
		lo, hi := s.workerRange(wk)
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			fn(wk, lo, hi)
		}(wk, lo, hi)
	}
	wg.Wait()
}

// checkAux validates paired aux channel sets.
func checkAux(a, b [][]graph.VID, n int) error {
	if len(a) != len(b) {
		return fmt.Errorf("walk: %d aux channels paired with %d", len(a), len(b))
	}
	for c := range a {
		if len(a[c]) != n || len(b[c]) != n {
			return fmt.Errorf("walk: aux channel %d sized %d/%d, want %d", c, len(a[c]), len(b[c]), n)
		}
	}
	return nil
}
