// Package walk implements FlashMob's walker-state machinery (§4.3): the
// compact walker arrays W_i (one VID per walker, identity implicit in array
// order), the two-pass counting shuffle that groups walkers by vertex
// partition, the optional inner shuffle level for over-budget groups, and
// the reverse shuffle that restores walker order so the W_i arrays double
// as path history.
//
// The shuffle data path supports software write-combining in both
// directions: workers stage walkers (forward) or walker indices (reverse)
// into cache-line-sized per-bin buffers and flush them in bulk, so every
// bin stream moves in sequential bursts — the multi-stream pattern §4.3
// relies on to run the stage at memory bandwidth. Measurement picks the
// default per direction: the reverse gather's scattered reads are demand
// misses the staging turns into single-line bursts (a ~20% stage win at
// DRAM scale), so it is on; the forward scatter's stores are already
// combined by the cache — its ~P active destination lines fit in L2 and
// stores don't stall — so staging there is pure copy overhead and it is
// off. Every combination produces bitwise-identical permutations to the
// scalar reference (see SetWriteCombining and the equivalence tests).
package walk

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"

	"flashmob/internal/graph"
	"flashmob/internal/obs"
	"flashmob/internal/part"
	"flashmob/internal/pool"
)

// wcEntries aliases WCEntries (exchange.go) — the write-combining depth
// per bin and channel — so the hot-loop index math below reads at its
// historical width.
const wcEntries = WCEntries

// Shuffle pass phases, dispatched through the worker pool (or the spawn
// fallback) as pool.Task phases.
const (
	phaseCount = iota
	phaseScatter
	phaseSlotIdentity
	phaseInner
	phaseGather
)

// Shuffler rearranges walker arrays according to a partition plan. It owns
// the scratch state (per-worker bin counters, offsets, write-combining
// buffers, inner-shuffle slot maps) so repeated iterations allocate
// nothing.
type Shuffler struct {
	plan    *part.Plan
	lk      *part.Lookup
	pool    *pool.Pool // nil: spawn goroutines per pass
	workers int

	numWalkers int
	maxWalkers int      // construction-time walker capacity (Resize ceiling)
	vpStart    []uint64 // len NumVPs+1: walker slots per VP in shuffled order
	binStart   []uint64 // len Bins+1: outer slots per bin
	// counts[w][vp] is worker w's walker count per VP for its walker range.
	counts [][]uint32
	// cursors[w][bin] replays the placement order in forward and reverse
	// passes.
	cursors [][]uint64

	// slotFinal maps outer slot → final slot when extra-shuffle bins
	// exist; nil otherwise (identity).
	slotFinal []uint32
	scratch   []graph.VID
	hasExtra  bool
	extraBins []int // bin indices with the inner shuffle level
	// innerScratch[w] holds worker w's vpCount ++ vpCur arrays, each sized
	// for the widest extra bin.
	innerScratch [][]uint64
	maxInnerVPs  int

	// Write-combining state, one LineStage per worker and direction (the
	// staging core shared with internal/shard's cross-shard exchange).
	// scatterStage[w] stages walker+aux values for the forward scatter,
	// bin-major: bin b's walker line at [b*stride, b*stride+wcEntries)
	// and aux channel c's line wcEntries*(c+1) further. gatherStage[w]
	// stages walker indices for the reverse gather.
	wcScatter    bool
	wcGather     bool
	scatterStage []LineStage[graph.VID]
	gatherStage  []LineStage[uint32]
	wcChannels   int // channel count scatterStage is sized for (-1: unsized)

	// pprof label contexts applied to workers while a pass runs (nil: no
	// labels). The forward context covers count/scatter/inner phases, the
	// reverse context the gather (see SetPprofLabels).
	fwdCtx, revCtx context.Context

	// pm is the pool accounting every phase submission carries (nil: no
	// accounting). Per-shuffler rather than pool-global so concurrent
	// sessions attribute their pool time to their own registries (see
	// SetPoolMetrics).
	pm *obs.PoolMetrics

	// In-flight pass state, published to workers through the pool's phase
	// barrier.
	curW, curSW, curWNext []graph.VID
	curAux, curAuxSW      [][]graph.VID
	curAuxNext            [][]graph.VID
}

// NewShuffler builds a shuffler for numWalkers walkers under plan, using
// the given worker count (≤ 0 means 1). Each pass spawns its own
// goroutine wave; prefer NewShufflerPool on hot paths.
func NewShuffler(plan *part.Plan, numWalkers, workers int) (*Shuffler, error) {
	if workers <= 0 {
		workers = 1
	}
	if workers > numWalkers && numWalkers > 0 {
		workers = numWalkers
	}
	return newShuffler(plan, numWalkers, workers, nil)
}

// NewShufflerPool builds a shuffler whose passes run on a persistent
// worker pool: steady-state Forward/Reverse calls allocate nothing and
// create no goroutines.
func NewShufflerPool(plan *part.Plan, numWalkers int, p *pool.Pool) (*Shuffler, error) {
	if p == nil {
		return nil, fmt.Errorf("walk: nil pool")
	}
	return newShuffler(plan, numWalkers, p.Workers(), p)
}

func newShuffler(plan *part.Plan, numWalkers, workers int, p *pool.Pool) (*Shuffler, error) {
	if plan == nil {
		return nil, fmt.Errorf("walk: nil plan")
	}
	if numWalkers < 0 {
		return nil, fmt.Errorf("walk: negative walker count")
	}
	s := &Shuffler{
		plan:       plan,
		lk:         plan.Lookup(),
		pool:       p,
		workers:    workers,
		numWalkers: numWalkers,
		maxWalkers: numWalkers,
		vpStart:    make([]uint64, plan.NumVPs()+1),
		binStart:   make([]uint64, len(plan.Bins())+1),
		counts:     make([][]uint32, workers),
		cursors:    make([][]uint64, workers),
		wcScatter:  false,
		wcGather:   true,
		wcChannels: -1,
	}
	if s.lk == nil {
		return nil, fmt.Errorf("walk: plan has no lookup (not finalized)")
	}
	bins := plan.Bins()
	for w := 0; w < workers; w++ {
		s.counts[w] = make([]uint32, plan.NumVPs())
		s.cursors[w] = make([]uint64, len(bins))
	}
	for bi, b := range bins {
		if b.Extra {
			s.hasExtra = true
			s.extraBins = append(s.extraBins, bi)
			if b.NumVPs > s.maxInnerVPs {
				s.maxInnerVPs = b.NumVPs
			}
		}
	}
	if s.hasExtra {
		s.slotFinal = make([]uint32, numWalkers)
		s.scratch = make([]graph.VID, numWalkers)
		s.innerScratch = make([][]uint64, workers)
		for w := 0; w < workers; w++ {
			s.innerScratch[w] = make([]uint64, 2*s.maxInnerVPs)
		}
	}
	s.gatherStage = make([]LineStage[uint32], workers)
	for w := 0; w < workers; w++ {
		s.gatherStage[w] = NewLineStage[uint32](len(bins), 1)
	}
	s.scatterStage = make([]LineStage[graph.VID], workers)
	return s, nil
}

// Resize re-targets the shuffler at a smaller (or equal) walker count
// without reallocating. Mixed runs retire whole cohorts between steps;
// all scratch the shuffler owns is sized by the plan and worker count
// except the inner-level slot maps, and a shrunken walker set uses a
// prefix of those. Growing past the construction size is refused —
// build a new shuffler instead.
func (s *Shuffler) Resize(numWalkers int) error {
	if numWalkers < 0 {
		return fmt.Errorf("walk: negative walker count")
	}
	if numWalkers > s.maxWalkers {
		return fmt.Errorf("walk: Resize to %d walkers exceeds the %d the shuffler was built for",
			numWalkers, s.maxWalkers)
	}
	s.numWalkers = numWalkers
	return nil
}

// SetWriteCombining toggles the write-combining staging buffers in both
// directions at once — the all-on / all-off modes the equivalence tests
// and benchmarks compare. The production default is asymmetric (see
// SetScatterCombining / SetGatherCombining).
func (s *Shuffler) SetWriteCombining(on bool) {
	s.wcScatter = on
	s.wcGather = on
}

// SetScatterCombining toggles staging on the forward scatter. Off by
// default: the scatter's ~P active destination lines fit in L2 and its
// stores don't stall, so measured staging there costs more than it saves.
// It can still pay off when many aux channels multiply the active-line
// footprint past L2.
func (s *Shuffler) SetScatterCombining(on bool) { s.wcScatter = on }

// SetGatherCombining toggles staging on the reverse gather. On by
// default: the gather's reads are demand misses spread over ~P interleaved
// bin streams (too many for the hardware prefetcher), and batching them
// into single-line bursts is a measured ~20% stage win at DRAM scale.
func (s *Shuffler) SetGatherCombining(on bool) { s.wcGather = on }

// ensureWC sizes the forward staging buffers for the given aux channel
// count. Steady-state steps keep the same channel count, so this
// allocates only on the first call (or when the shape changes).
func (s *Shuffler) ensureWC(channels int) {
	if !s.wcScatter || s.wcChannels == channels {
		return
	}
	for w := 0; w < s.workers; w++ {
		s.scatterStage[w].Resize(len(s.plan.Bins()), 1+channels)
	}
	s.wcChannels = channels
}

// SetPprofLabels attaches (or, with off, removes) runtime/pprof labels to
// the shuffle passes: workers carry stage=shuffle plus dir=fwd (count,
// scatter, inner phases) or dir=rev (gather) while a pass runs, so CPU
// profiles attribute shuffle time per direction out of the box. Off by
// default; the engine turns it on together with metrics collection.
func (s *Shuffler) SetPprofLabels(on bool) {
	if !on {
		s.fwdCtx, s.revCtx = nil, nil
		return
	}
	s.fwdCtx = pprof.WithLabels(context.Background(), pprof.Labels("stage", "shuffle", "dir", "fwd"))
	s.revCtx = pprof.WithLabels(context.Background(), pprof.Labels("stage", "shuffle", "dir", "rev"))
}

// SetPoolMetrics attaches (or, with nil, detaches) the pool accounting
// the shuffler's phase submissions carry: busy time, barrier wait, and
// run counts land in m. Per-shuffler so the engine can hand each session
// its own metric set; a shuffler without a pool ignores it.
func (s *Shuffler) SetPoolMetrics(m *obs.PoolMetrics) { s.pm = m }

// VPStart returns, after a Forward pass, the slot offsets per VP: walkers
// of VP i occupy shuffled slots [VPStart()[i], VPStart()[i+1]).
func (s *Shuffler) VPStart() []uint64 { return s.vpStart }

// workerRange splits the walker array contiguously across workers.
func (s *Shuffler) workerRange(w int) (lo, hi int) {
	per := s.numWalkers / s.workers
	rem := s.numWalkers % s.workers
	lo = w*per + min(w, rem)
	hi = lo + per
	if w < rem {
		hi++
	}
	return lo, hi
}

// Forward shuffles W into SW so walkers sharing a VP are contiguous and
// VPs appear in vertex order. aux/auxSW, when non-nil, are permuted
// identically (per-walker metadata such as node2vec's previous vertex,
// §4.3). len(SW) must equal len(W) == numWalkers.
func (s *Shuffler) Forward(w, sw, aux, auxSW []graph.VID) error {
	if aux == nil {
		return s.ForwardMulti(w, sw, nil, nil)
	}
	return s.ForwardMulti(w, sw, [][]graph.VID{aux}, [][]graph.VID{auxSW})
}

// ForwardMulti is Forward with any number of auxiliary channels, all
// permuted identically with the walkers — the carrier for order-k walks,
// whose walkers travel with k-1 predecessor VIDs (§2.1's
// p(v|u,t,s,...)).
func (s *Shuffler) ForwardMulti(w, sw []graph.VID, aux, auxSW [][]graph.VID) error {
	if len(w) != s.numWalkers || len(sw) != s.numWalkers {
		return fmt.Errorf("walk: Forward arrays have %d/%d walkers, want %d", len(w), len(sw), s.numWalkers)
	}
	if err := checkAux(aux, auxSW, s.numWalkers); err != nil {
		return err
	}
	s.ensureWC(len(aux))
	s.curW, s.curSW, s.curAux, s.curAuxSW = w, sw, aux, auxSW

	// Pass 1: count walkers per VP, one worker per contiguous chunk.
	s.run(phaseCount)

	// Aggregate: vpStart then binStart, plus per-worker bin cursors in
	// (bin-major, worker-minor) order so each worker writes a disjoint,
	// in-order region of every bin.
	plan := s.plan
	var total uint64
	for vp := 0; vp < plan.NumVPs(); vp++ {
		s.vpStart[vp] = total
		for wk := 0; wk < s.workers; wk++ {
			total += uint64(s.counts[wk][vp])
		}
	}
	s.vpStart[plan.NumVPs()] = total
	bins := plan.Bins()
	for bi, b := range bins {
		s.binStart[bi] = s.vpStart[b.FirstVP]
		s.binStart[bi+1] = s.vpStart[b.FirstVP+b.NumVPs]
	}
	s.rebuildCursors()

	// Pass 2: place. Within a bin, walkers keep scan order (outer level
	// shuffles by bin, not by VP — the multi-stream access pattern of
	// §4.3).
	s.run(phaseScatter)

	// Inner level: extra-shuffle bins get re-ordered by VP within their
	// outer region, recording the slot mapping for the reverse pass. The
	// bins have disjoint slot ranges, so they re-sort in parallel.
	if s.hasExtra {
		s.run(phaseSlotIdentity)
		s.run(phaseInner)
	}
	s.curW, s.curSW, s.curAux, s.curAuxSW = nil, nil, nil, nil
	return nil
}

// rebuildCursors derives the per-worker bin cursors from counts, in
// (bin-major, worker-minor) order.
func (s *Shuffler) rebuildCursors() {
	bins := s.plan.Bins()
	for bi, b := range bins {
		cur := s.binStart[bi]
		for wk := 0; wk < s.workers; wk++ {
			s.cursors[wk][bi] = cur
			for vp := b.FirstVP; vp < b.FirstVP+b.NumVPs; vp++ {
				cur += uint64(s.counts[wk][vp])
			}
		}
	}
}

// Reverse rebuilds walker-order arrays after the sample stage has
// overwritten the shuffled array in place: scanning wOld (the pre-shuffle
// locations) replays the placement cursors, so each walker finds the slot
// its updated location was written to (§4.3 "compact walker state
// storage"). wNext[j] receives walker j's new location.
func (s *Shuffler) Reverse(wOld, swNew, wNext, auxSW, auxNext []graph.VID) error {
	if auxSW == nil {
		return s.ReverseMulti(wOld, swNew, wNext, nil, nil)
	}
	return s.ReverseMulti(wOld, swNew, wNext, [][]graph.VID{auxSW}, [][]graph.VID{auxNext})
}

// ReverseMulti is Reverse with any number of auxiliary channels.
func (s *Shuffler) ReverseMulti(wOld, swNew, wNext []graph.VID, auxSW, auxNext [][]graph.VID) error {
	if len(wOld) != s.numWalkers || len(swNew) != s.numWalkers || len(wNext) != s.numWalkers {
		return fmt.Errorf("walk: Reverse arrays sized %d/%d/%d, want %d",
			len(wOld), len(swNew), len(wNext), s.numWalkers)
	}
	if err := checkAux(auxSW, auxNext, s.numWalkers); err != nil {
		return err
	}
	// Rebuild the same per-worker cursors the forward pass used.
	s.rebuildCursors()
	s.curW, s.curSW, s.curWNext = wOld, swNew, wNext
	s.curAuxSW, s.curAuxNext = auxSW, auxNext
	s.run(phaseGather)
	s.curW, s.curSW, s.curWNext = nil, nil, nil
	s.curAuxSW, s.curAuxNext = nil, nil
	return nil
}

// RunShard dispatches one phase shard; it implements pool.Task. The
// spawn fallback calls it with the same contract.
func (s *Shuffler) RunShard(phase, worker, workers int) {
	switch phase {
	case phaseCount:
		lo, hi := s.workerRange(worker)
		s.countShard(worker, lo, hi)
	case phaseScatter:
		lo, hi := s.workerRange(worker)
		if s.wcScatter {
			s.scatterWC(worker, lo, hi)
		} else {
			s.scatterScalar(worker, lo, hi)
		}
	case phaseSlotIdentity:
		lo, hi := s.workerRange(worker)
		for i := lo; i < hi; i++ {
			s.slotFinal[i] = uint32(i)
		}
	case phaseInner:
		bins := s.plan.Bins()
		for i := worker; i < len(s.extraBins); i += workers {
			bi := s.extraBins[i]
			s.innerShuffle(worker, bins[bi], s.binStart[bi], s.binStart[bi+1], s.curSW, s.curAuxSW)
		}
	case phaseGather:
		lo, hi := s.workerRange(worker)
		if s.wcGather {
			s.gatherWC(worker, lo, hi)
		} else {
			s.gatherScalar(worker, lo, hi)
		}
	}
}

// run executes one phase across the workers: on the pool when present,
// else by spawning a goroutine wave (the pre-pool behaviour, kept for
// one-shot callers and benchmarks).
func (s *Shuffler) run(phase int) {
	ctx := s.fwdCtx
	if phase == phaseGather {
		ctx = s.revCtx
	}
	if s.pool != nil {
		s.pool.Submit(s, phase, ctx, s.pm)
		return
	}
	if s.workers == 1 {
		s.RunShard(phase, 0, 1)
		return
	}
	var wg sync.WaitGroup
	for wk := 0; wk < s.workers; wk++ {
		wg.Add(1)
		// ctx is passed as an argument, not captured: a reference capture
		// would heap-allocate the variable on every run() call, including
		// the pooled fast path above.
		go func(wk int, ctx context.Context) {
			defer wg.Done()
			if ctx != nil {
				pprof.SetGoroutineLabels(ctx)
			}
			s.RunShard(phase, wk, s.workers)
		}(wk, ctx)
	}
	wg.Wait()
}

// countShard tallies walkers per VP over [lo, hi).
func (s *Shuffler) countShard(worker, lo, hi int) {
	counts := s.counts[worker]
	clear(counts)
	lk := s.lk
	w := s.curW
	for j := lo; j < hi; j++ {
		counts[lk.VPOf(w[j])]++
	}
}

// scatterScalar is the reference forward placement: one random write per
// walker, straight to the bin cursor.
func (s *Shuffler) scatterScalar(worker, lo, hi int) {
	lk := s.lk
	cursors := s.cursors[worker]
	w, sw, aux, auxSW := s.curW, s.curSW, s.curAux, s.curAuxSW
	for j := lo; j < hi; j++ {
		b := lk.BinOf(w[j])
		pos := cursors[b]
		cursors[b]++
		sw[pos] = w[j]
		for c := range aux {
			auxSW[c][pos] = aux[c][j]
		}
	}
}

// scatterWC is the write-combining forward placement: walkers stage into
// per-bin line buffers and flush in bulk, preserving the exact per-worker
// placement order of the scalar path.
func (s *Shuffler) scatterWC(worker, lo, hi int) {
	lk := s.lk
	cursors := s.cursors[worker]
	buf, fill := s.scatterStage[worker].Buf, s.scatterStage[worker].Fill
	w, sw, aux, auxSW := s.curW, s.curSW, s.curAux, s.curAuxSW
	channels := len(aux)
	stride := (1 + channels) * wcEntries
	for j := lo; j < hi; j++ {
		b := lk.BinOf(w[j])
		base := b * stride
		n := int(fill[b])
		buf[base+n] = w[j]
		for c := 0; c < channels; c++ {
			buf[base+(c+1)*wcEntries+n] = aux[c][j]
		}
		n++
		if n == wcEntries {
			pos := cursors[b]
			copy(sw[pos:pos+wcEntries], buf[base:base+wcEntries])
			for c := 0; c < channels; c++ {
				cb := base + (c+1)*wcEntries
				copy(auxSW[c][pos:pos+wcEntries], buf[cb:cb+wcEntries])
			}
			cursors[b] = pos + wcEntries
			n = 0
		}
		fill[b] = uint8(n)
	}
	// Drain partial lines.
	for b := range fill {
		k := uint64(fill[b])
		if k == 0 {
			continue
		}
		base := b * stride
		pos := cursors[b]
		copy(sw[pos:pos+k], buf[base:base+int(k)])
		for c := 0; c < channels; c++ {
			cb := base + (c+1)*wcEntries
			copy(auxSW[c][pos:pos+k], buf[cb:cb+int(k)])
		}
		cursors[b] = pos + k
		fill[b] = 0
	}
}

// gatherScalar is the reference reverse pass: one random read per walker
// from the bin cursor's slot.
func (s *Shuffler) gatherScalar(worker, lo, hi int) {
	lk := s.lk
	cursors := s.cursors[worker]
	wOld, swNew, wNext := s.curW, s.curSW, s.curWNext
	auxSW, auxNext := s.curAuxSW, s.curAuxNext
	for j := lo; j < hi; j++ {
		b := lk.BinOf(wOld[j])
		pos := cursors[b]
		cursors[b]++
		if s.hasExtra {
			pos = uint64(s.slotFinal[pos])
		}
		wNext[j] = swNew[pos]
		for c := range auxSW {
			auxNext[c][j] = auxSW[c][pos]
		}
	}
}

// gatherWC is the batched reverse pass: walker indices stage per bin, and
// each flush reads one sequential burst of the bin's slots instead of
// interleaving single-word reads across every bin stream.
func (s *Shuffler) gatherWC(worker, lo, hi int) {
	lk := s.lk
	cursors := s.cursors[worker]
	idx, fill := s.gatherStage[worker].Buf, s.gatherStage[worker].Fill
	wOld, swNew, wNext := s.curW, s.curSW, s.curWNext
	auxSW, auxNext := s.curAuxSW, s.curAuxNext
	for j := lo; j < hi; j++ {
		b := lk.BinOf(wOld[j])
		base := b * wcEntries
		n := int(fill[b])
		idx[base+n] = uint32(j)
		n++
		if n == wcEntries {
			s.flushGather(b, idx[base:base+wcEntries], cursors, swNew, wNext, auxSW, auxNext)
			n = 0
		}
		fill[b] = uint8(n)
	}
	for b := range fill {
		if fill[b] == 0 {
			continue
		}
		base := b * wcEntries
		s.flushGather(b, idx[base:base+int(fill[b])], cursors, swNew, wNext, auxSW, auxNext)
		fill[b] = 0
	}
}

// flushGather resolves one staged burst of walker indices against bin b's
// next slots.
func (s *Shuffler) flushGather(b int, js []uint32, cursors []uint64, swNew, wNext []graph.VID, auxSW, auxNext [][]graph.VID) {
	pos := cursors[b]
	if !s.hasExtra {
		for i, j := range js {
			p := pos + uint64(i)
			wNext[j] = swNew[p]
			for c := range auxSW {
				auxNext[c][j] = auxSW[c][p]
			}
		}
	} else {
		for i, j := range js {
			p := uint64(s.slotFinal[pos+uint64(i)])
			wNext[j] = swNew[p]
			for c := range auxSW {
				auxNext[c][j] = auxSW[c][p]
			}
		}
	}
	cursors[b] = pos + uint64(len(js))
}

// innerShuffle re-sorts the chunk [lo, hi) of sw by VP index (stable) and
// records slotFinal for the chunk, using worker-private count/cursor
// scratch so extra bins re-sort concurrently.
func (s *Shuffler) innerShuffle(worker int, b part.Bin, lo, hi uint64, sw []graph.VID, auxSW [][]graph.VID) {
	lk := s.lk
	scr := s.innerScratch[worker]
	vpCount := scr[:b.NumVPs]
	vpCur := scr[s.maxInnerVPs : s.maxInnerVPs+b.NumVPs]
	clear(vpCount)
	// Count per VP within the chunk.
	for p := lo; p < hi; p++ {
		vpCount[lk.VPOf(sw[p])-b.FirstVP]++
	}
	var acc uint64
	for i := range vpCount {
		vpCur[i] = lo + acc
		acc += vpCount[i]
	}
	// Place into scratch, record final slots.
	for p := lo; p < hi; p++ {
		vi := lk.VPOf(sw[p]) - b.FirstVP
		dst := vpCur[vi]
		vpCur[vi]++
		s.scratch[dst] = sw[p]
		s.slotFinal[p] = uint32(dst)
	}
	copy(sw[lo:hi], s.scratch[lo:hi])
	for c := range auxSW {
		// Permute each aux channel with the recorded mapping.
		for p := lo; p < hi; p++ {
			s.scratch[s.slotFinal[p]] = auxSW[c][p]
		}
		copy(auxSW[c][lo:hi], s.scratch[lo:hi])
	}
}

// checkAux validates paired aux channel sets.
func checkAux(a, b [][]graph.VID, n int) error {
	if len(a) != len(b) {
		return fmt.Errorf("walk: %d aux channels paired with %d", len(a), len(b))
	}
	for c := range a {
		if len(a[c]) != n || len(b[c]) != n {
			return fmt.Errorf("walk: aux channel %d sized %d/%d, want %d", c, len(a[c]), len(b[c]), n)
		}
	}
	return nil
}
