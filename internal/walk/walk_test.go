package walk

import (
	"testing"

	"flashmob/internal/graph"
	"flashmob/internal/part"
	"flashmob/internal/profile"
	"flashmob/internal/rng"
)

// testPlan builds a plan over v vertices: groups of 2^groupLog, VPs of
// 2^vpLog, optionally marking every other group extra-shuffle.
func testPlan(t *testing.T, v uint32, groupLog, vpLog uint, alternateExtra bool) *part.Plan {
	t.Helper()
	plan := &part.Plan{V: v, GroupSizeLog: groupLog}
	groupSize := uint32(1) << groupLog
	gi := 0
	for start := uint32(0); start < v; start += groupSize {
		end := start + groupSize
		if end > v {
			end = v
		}
		nvp := int((uint64(end-start) + (1 << vpLog) - 1) >> vpLog)
		pols := make([]profile.Policy, nvp)
		plan.Groups = append(plan.Groups, part.GroupPlan{
			Start: start, End: end, VPSizeLog: vpLog,
			ExtraShuffle: alternateExtra && gi%2 == 0 && nvp > 1,
			Policies:     pols,
		})
		gi++
	}
	if err := finalizeForTest(plan); err != nil {
		t.Fatal(err)
	}
	return plan
}

// finalizeForTest rebuilds derived plan state via Validate (which requires
// finalize to have run); we reach finalize through a tiny exported path:
// building plans in the part package runs it, so mimic by re-validating
// after reconstruction through PlanUniform-equivalent settings.
func finalizeForTest(p *part.Plan) error {
	// The part package finalizes inside its planners; reconstruct the same
	// derived views by round-tripping through its exported API.
	return part.Finalize(p)
}

func randomWalkers(n int, v uint32, seed uint64) []graph.VID {
	src := rng.NewXorShift64Star(seed)
	w := make([]graph.VID, n)
	for i := range w {
		w[i] = graph.VID(rng.Uint32n(src, v))
	}
	return w
}

func checkShuffled(t *testing.T, plan *part.Plan, w, sw []graph.VID, vpStart []uint64) {
	t.Helper()
	// 1. SW is a permutation of W (multiset equality).
	hist := map[graph.VID]int{}
	for _, x := range w {
		hist[x]++
	}
	for _, x := range sw {
		hist[x]--
	}
	for v, c := range hist {
		if c != 0 {
			t.Fatalf("shuffle changed multiset at vertex %d (%+d)", v, c)
		}
	}
	// 2. Slots [vpStart[i], vpStart[i+1]) hold only VP i's walkers.
	for vp := 0; vp < plan.NumVPs(); vp++ {
		for p := vpStart[vp]; p < vpStart[vp+1]; p++ {
			if got := plan.VPOf(sw[p]); got != vp {
				t.Fatalf("slot %d: walker on vertex %d belongs to VP %d, stored under VP %d",
					p, sw[p], got, vp)
			}
		}
	}
	if vpStart[plan.NumVPs()] != uint64(len(w)) {
		t.Fatalf("vpStart end = %d, want %d", vpStart[plan.NumVPs()], len(w))
	}
}

func TestForwardGroupsByVP(t *testing.T) {
	plan := testPlan(t, 256, 6, 4, false)
	w := randomWalkers(1000, 256, 1)
	sw := make([]graph.VID, len(w))
	s, err := NewShuffler(plan, len(w), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Forward(w, sw, nil, nil); err != nil {
		t.Fatal(err)
	}
	checkShuffled(t, plan, w, sw, s.VPStart())
}

func TestForwardWithExtraBins(t *testing.T) {
	plan := testPlan(t, 256, 6, 4, true)
	w := randomWalkers(2000, 256, 2)
	sw := make([]graph.VID, len(w))
	s, err := NewShuffler(plan, len(w), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Forward(w, sw, nil, nil); err != nil {
		t.Fatal(err)
	}
	checkShuffled(t, plan, w, sw, s.VPStart())
}

func TestForwardParallelMatchesSerial(t *testing.T) {
	plan := testPlan(t, 512, 7, 5, true)
	w := randomWalkers(5000, 512, 3)
	swSerial := make([]graph.VID, len(w))
	swPar := make([]graph.VID, len(w))
	s1, _ := NewShuffler(plan, len(w), 1)
	s4, _ := NewShuffler(plan, len(w), 4)
	if err := s1.Forward(w, swSerial, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s4.Forward(w, swPar, nil, nil); err != nil {
		t.Fatal(err)
	}
	checkShuffled(t, plan, w, swPar, s4.VPStart())
	for i := range s1.VPStart() {
		if s1.VPStart()[i] != s4.VPStart()[i] {
			t.Fatalf("vpStart differs at %d: %d vs %d", i, s1.VPStart()[i], s4.VPStart()[i])
		}
	}
}

func TestReverseRoundTrip(t *testing.T) {
	// Forward then reverse with unchanged SW must reproduce W exactly —
	// the identity that makes W arrays valid path history.
	for _, workers := range []int{1, 3, 8} {
		for _, extra := range []bool{false, true} {
			plan := testPlan(t, 256, 6, 4, extra)
			w := randomWalkers(3000, 256, 4)
			sw := make([]graph.VID, len(w))
			back := make([]graph.VID, len(w))
			s, err := NewShuffler(plan, len(w), workers)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Forward(w, sw, nil, nil); err != nil {
				t.Fatal(err)
			}
			if err := s.Reverse(w, sw, back, nil, nil); err != nil {
				t.Fatal(err)
			}
			for j := range w {
				if back[j] != w[j] {
					t.Fatalf("workers=%d extra=%v: walker %d came back as %d, want %d",
						workers, extra, j, back[j], w[j])
				}
			}
		}
	}
}

func TestReverseTracksInPlaceUpdates(t *testing.T) {
	// Simulate the sample stage: overwrite each shuffled slot with a
	// deterministic function of its value, then check each walker receives
	// the updated value of its own slot.
	plan := testPlan(t, 256, 6, 4, true)
	w := randomWalkers(2500, 256, 5)
	sw := make([]graph.VID, len(w))
	next := make([]graph.VID, len(w))
	s, err := NewShuffler(plan, len(w), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Forward(w, sw, nil, nil); err != nil {
		t.Fatal(err)
	}
	for p := range sw {
		sw[p] = sw[p]*2 + 1 // fake "one step": new location derived from old
	}
	if err := s.Reverse(w, sw, next, nil, nil); err != nil {
		t.Fatal(err)
	}
	for j := range w {
		if next[j] != w[j]*2+1 {
			t.Fatalf("walker %d: next = %d, want %d", j, next[j], w[j]*2+1)
		}
	}
}

func TestAuxFollowsWalkers(t *testing.T) {
	plan := testPlan(t, 128, 5, 3, true)
	w := randomWalkers(1500, 128, 6)
	aux := make([]graph.VID, len(w))
	for j := range aux {
		aux[j] = graph.VID(j) // walker identity as payload
	}
	sw := make([]graph.VID, len(w))
	auxSW := make([]graph.VID, len(w))
	s, err := NewShuffler(plan, len(w), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Forward(w, sw, aux, auxSW); err != nil {
		t.Fatal(err)
	}
	// Each shuffled slot's aux must identify the walker whose location is
	// stored there.
	for p := range sw {
		if w[auxSW[p]] != sw[p] {
			t.Fatalf("slot %d: aux says walker %d (at %d) but slot holds %d",
				p, auxSW[p], w[auxSW[p]], sw[p])
		}
	}
	// And the aux channel must survive the reverse pass aligned.
	next := make([]graph.VID, len(w))
	auxNext := make([]graph.VID, len(w))
	if err := s.Reverse(w, sw, next, auxSW, auxNext); err != nil {
		t.Fatal(err)
	}
	for j := range w {
		if auxNext[j] != graph.VID(j) {
			t.Fatalf("walker %d got aux %d after reverse", j, auxNext[j])
		}
	}
}

func TestShufflerErrors(t *testing.T) {
	plan := testPlan(t, 64, 5, 3, false)
	if _, err := NewShuffler(nil, 10, 1); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := NewShuffler(plan, -1, 1); err == nil {
		t.Error("negative walkers accepted")
	}
	s, _ := NewShuffler(plan, 10, 1)
	if err := s.Forward(make([]graph.VID, 5), make([]graph.VID, 10), nil, nil); err == nil {
		t.Error("short W accepted")
	}
	if err := s.Forward(make([]graph.VID, 10), make([]graph.VID, 10), make([]graph.VID, 10), nil); err == nil {
		t.Error("mismatched aux accepted")
	}
	if err := s.Reverse(make([]graph.VID, 10), make([]graph.VID, 9), make([]graph.VID, 10), nil, nil); err == nil {
		t.Error("short SW accepted")
	}
}

func TestShufflerZeroWalkers(t *testing.T) {
	plan := testPlan(t, 64, 5, 3, false)
	s, err := NewShuffler(plan, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Forward(nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Reverse(nil, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistory(t *testing.T) {
	h := NewHistory(3)
	if err := h.Append([]graph.VID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := h.Append([]graph.VID{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := h.Append([]graph.VID{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if h.NumSteps() != 3 || h.NumWalkers() != 3 {
		t.Fatal("shape wrong")
	}
	if got := h.Path(1); got[0] != 2 || got[1] != 5 || got[2] != 8 {
		t.Fatalf("Path(1) = %v", got)
	}
	tr := h.Transpose()
	if tr[2][1] != 6 {
		t.Fatalf("Transpose[2][1] = %d, want 6", tr[2][1])
	}
	var edges [][2]graph.VID
	h.Edges(func(u, v graph.VID) { edges = append(edges, [2]graph.VID{u, v}) })
	if len(edges) != 6 {
		t.Fatalf("Edges streamed %d pairs, want 6", len(edges))
	}
	if edges[0] != [2]graph.VID{1, 4} {
		t.Fatalf("first edge %v", edges[0])
	}
	counts := h.VisitCounts(10)
	if counts[5] != 1 || counts[0] != 0 {
		t.Fatalf("VisitCounts wrong: %v", counts)
	}
}

func TestHistoryAppendWrongSize(t *testing.T) {
	h := NewHistory(2)
	if err := h.Append([]graph.VID{1}); err == nil {
		t.Fatal("wrong-size append accepted")
	}
}

func TestHistoryAppendCopies(t *testing.T) {
	h := NewHistory(2)
	w := []graph.VID{1, 2}
	if err := h.Append(w); err != nil {
		t.Fatal(err)
	}
	w[0] = 99
	if h.At(0, 0) != 1 {
		t.Fatal("history aliased caller's array")
	}
}

func TestMultiChannelAux(t *testing.T) {
	// Three aux channels must all follow their walkers through forward
	// and reverse shuffles, including across extra-shuffle bins.
	plan := testPlan(t, 128, 5, 3, true)
	w := randomWalkers(1200, 128, 41)
	const channels = 3
	aux := make([][]graph.VID, channels)
	auxSW := make([][]graph.VID, channels)
	auxNext := make([][]graph.VID, channels)
	for c := range aux {
		aux[c] = make([]graph.VID, len(w))
		auxSW[c] = make([]graph.VID, len(w))
		auxNext[c] = make([]graph.VID, len(w))
		for j := range aux[c] {
			aux[c][j] = graph.VID(uint32(j)*channels + uint32(c)) // unique payload
		}
	}
	sw := make([]graph.VID, len(w))
	next := make([]graph.VID, len(w))
	s, err := NewShuffler(plan, len(w), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ForwardMulti(w, sw, aux, auxSW); err != nil {
		t.Fatal(err)
	}
	// Channel payloads must stay aligned with each other at every slot.
	for p := range sw {
		j := uint32(auxSW[0][p]) / channels
		for c := 1; c < channels; c++ {
			if auxSW[c][p] != graph.VID(j*channels+uint32(c)) {
				t.Fatalf("slot %d: channels misaligned", p)
			}
		}
		if w[j] != sw[p] {
			t.Fatalf("slot %d: payload says walker %d (at %d) but slot holds %d", p, j, w[j], sw[p])
		}
	}
	if err := s.ReverseMulti(w, sw, next, auxSW, auxNext); err != nil {
		t.Fatal(err)
	}
	for j := range w {
		for c := 0; c < channels; c++ {
			if auxNext[c][j] != graph.VID(uint32(j)*channels+uint32(c)) {
				t.Fatalf("walker %d channel %d: got %d", j, c, auxNext[c][j])
			}
		}
	}
}

func TestMultiChannelAuxValidation(t *testing.T) {
	plan := testPlan(t, 64, 5, 3, false)
	s, err := NewShuffler(plan, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]graph.VID, 10)
	sw := make([]graph.VID, 10)
	if err := s.ForwardMulti(w, sw, [][]graph.VID{make([]graph.VID, 10)}, nil); err == nil {
		t.Error("mismatched channel counts accepted")
	}
	if err := s.ForwardMulti(w, sw,
		[][]graph.VID{make([]graph.VID, 5)},
		[][]graph.VID{make([]graph.VID, 10)}); err == nil {
		t.Error("short channel accepted")
	}
}
