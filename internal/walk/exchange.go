package walk

import (
	"context"

	"flashmob/internal/graph"
)

// WCEntries is the write-combining depth per destination and channel: 16
// VIDs is one 64-byte cache line, so a full flush moves whole lines into
// the destination stream. The same geometry serves both radii of walker
// movement — the in-process shuffle's bin staging and the cross-shard
// exchange's per-peer outboxes (internal/shard).
const WCEntries = 16

// LineStage is the write-combining staging core of the §4.3 shuffle,
// extracted so every walker-movement path shares one geometry: dests ×
// Stride values of staging, where destination d's lines occupy
// [d*Stride, (d+1)*Stride) of Buf and Fill[d] is d's current fill level
// (always < WCEntries; a line flushes when it fills). Stride is
// channels×WCEntries — one WCEntries-sized line per carried channel —
// so a flush moves whole cache lines per channel into the destination
// stream. The hot loops index Buf and Fill directly (staging must cost a
// store, not a call); LineStage owns sizing, reuse, and the drain
// iteration.
type LineStage[T any] struct {
	// Stride is the staged values per destination: channels × WCEntries.
	Stride int
	// Buf holds dests × Stride staged values, destination-major.
	Buf []T
	// Fill holds each destination's line fill level, in [0, WCEntries).
	Fill []uint8
}

// NewLineStage builds staging for dests destinations carrying the given
// number of channels per record.
func NewLineStage[T any](dests, channels int) LineStage[T] {
	return LineStage[T]{
		Stride: channels * WCEntries,
		Buf:    make([]T, dests*channels*WCEntries),
		Fill:   make([]uint8, dests),
	}
}

// Resize re-targets the stage at a new (dests, channels) shape, reusing
// the buffers when they are already large enough. Fill levels reset.
func (st *LineStage[T]) Resize(dests, channels int) {
	st.Stride = channels * WCEntries
	if need := dests * st.Stride; cap(st.Buf) >= need {
		st.Buf = st.Buf[:need]
	} else {
		st.Buf = make([]T, need)
	}
	if cap(st.Fill) >= dests {
		st.Fill = st.Fill[:dests]
		clear(st.Fill)
	} else {
		st.Fill = make([]uint8, dests)
	}
}

// Line returns destination d's staging lines.
func (st *LineStage[T]) Line(d int) []T {
	return st.Buf[d*st.Stride : (d+1)*st.Stride]
}

// Batch is one walker batch moving through an Exchange: the walker
// location channel W, any aux channels permuted identically with it
// (node2vec predecessors, order-k history), and — for cross-shard
// movement, where walkers leave the array that implies their identity —
// the global walker ids. Out/OutIDs/OutAux receive the moved batch.
type Batch struct {
	// IDs are the records' global walker ids, ascending. Nil for the
	// in-process Shuffler, whose permutation keeps identity implicit in
	// array order.
	IDs []uint32
	// W is the walker location channel; W[j] is record j's vertex.
	W []graph.VID
	// Aux are the auxiliary channels riding with the walkers.
	Aux [][]graph.VID
	// OutIDs, Out, and OutAux receive the moved records. The Shuffler
	// writes the bin-grouped permutation of all len(W) records (OutIDs
	// unused). The cross-shard exchange writes the post-exchange local
	// set — survivors plus immigrants, ascending by id — re-slicing the
	// three to the new local record count.
	OutIDs []uint32
	Out    []graph.VID
	OutAux [][]graph.VID
}

// Exchange is the destination-agnostic contract of the walker-movement
// layer: an implementation routes every record of a batch to an integer
// destination, staging records through write-combining lines (LineStage)
// so each destination's stream moves in sequential cache-line bursts,
// then delivers the staged streams in bulk. Two implementations exist:
//
//   - *Shuffler (in process): destinations are the partition plan's
//     outer-shuffle bins, delivery is placement into the shuffled walker
//     array — Move is the forward pass of §4.3.
//   - *shard.Exchange (cross-shard): destinations are peer engine
//     shards, delivery is bulk frames over channels (in-process shards)
//     or length-prefixed TCP frames (multi-process).
//
// The seam makes "where a walker goes next" pluggable: the sharded
// engine's superstep loop alternates local Shuffler movement with
// cross-shard Moves without caring which side of the network a
// destination lives on.
type Exchange interface {
	// NumDests returns how many destinations records can route to.
	NumDests() int
	// Move routes batch b: every record lands at its destination, and
	// b's Out slices receive the records local to the caller afterwards
	// (see Batch). The context bounds cross-destination delivery; the
	// in-process Shuffler never blocks and ignores it.
	Move(ctx context.Context, b *Batch) error
}

// Compile-time check: the in-process Shuffler implements Exchange.
var _ Exchange = (*Shuffler)(nil)

// NumDests returns the outer-shuffle bin count — the Shuffler's
// destinations under the Exchange contract.
func (s *Shuffler) NumDests() int { return len(s.plan.Bins()) }

// Move implements Exchange: the batch's records are routed to their
// partition bins in write-combined bulk, b.Out/b.OutAux receiving the
// bin-grouped permutation of all of them (no record leaves the process,
// so the output length equals the input length and b.OutIDs is left
// untouched). Move is exactly ForwardMulti — the §4.3 forward pass —
// under the destination-agnostic signature.
func (s *Shuffler) Move(_ context.Context, b *Batch) error {
	return s.ForwardMulti(b.W, b.Out, b.Aux, b.OutAux)
}
