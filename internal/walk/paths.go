package walk

import (
	"fmt"

	"flashmob/internal/graph"
)

// History accumulates the W_i arrays of an n-step walk. Because the engine
// restores walker order after every iteration (§4.3), Steps[i][j] is the
// location of walker j after i steps, and transposing yields per-walker
// paths — the paper's "random walk paths output".
type History struct {
	steps      [][]graph.VID
	numWalkers int
}

// NewHistory creates a history for numWalkers walkers.
func NewHistory(numWalkers int) *History {
	return &History{numWalkers: numWalkers}
}

// Append records one W_i array (copied).
func (h *History) Append(w []graph.VID) error {
	if len(w) != h.numWalkers {
		return fmt.Errorf("walk: history append with %d walkers, want %d", len(w), h.numWalkers)
	}
	cp := make([]graph.VID, len(w))
	copy(cp, w)
	h.steps = append(h.steps, cp)
	return nil
}

// NumSteps returns the number of recorded arrays (walk length + 1 when the
// start positions were recorded).
func (h *History) NumSteps() int { return len(h.steps) }

// NumWalkers returns the walker count.
func (h *History) NumWalkers() int { return h.numWalkers }

// At returns the recorded location of walker j after step i.
func (h *History) At(i, j int) graph.VID { return h.steps[i][j] }

// Path materializes walker j's full path.
func (h *History) Path(j int) []graph.VID {
	p := make([]graph.VID, len(h.steps))
	for i, step := range h.steps {
		p[i] = step[j]
	}
	return p
}

// Transpose returns all paths, walker-major — the transposition described
// at the end of §4.3.
func (h *History) Transpose() [][]graph.VID {
	out := make([][]graph.VID, h.numWalkers)
	flat := make([]graph.VID, h.numWalkers*len(h.steps))
	for j := 0; j < h.numWalkers; j++ {
		out[j] = flat[j*len(h.steps) : (j+1)*len(h.steps)]
	}
	for i, step := range h.steps {
		for j, v := range step {
			out[j][i] = v
		}
	}
	return out
}

// Edges streams every sampled edge <W_i[j], W_{i+1}[j]> to fn, the
// alternative output mode the paper describes for feeding GPU embedding
// training.
func (h *History) Edges(fn func(from, to graph.VID)) {
	for i := 0; i+1 < len(h.steps); i++ {
		cur, next := h.steps[i], h.steps[i+1]
		for j := range cur {
			fn(cur[j], next[j])
		}
	}
}

// VisitCounts tallies how many walker-steps landed on each vertex
// (including the start positions), used by the Table 2 statistics.
func (h *History) VisitCounts(numVertices uint32) []uint64 {
	counts := make([]uint64, numVertices)
	for _, step := range h.steps {
		for _, v := range step {
			counts[v]++
		}
	}
	return counts
}
