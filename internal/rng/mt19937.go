package rng

// MT19937 is the 32-bit Mersenne Twister (Matsumoto & Nishimura 1998),
// matching C++ std::mt19937 used by the KnightKing baseline in the paper.
// It produces 32-bit words; Uint64 concatenates two of them so MT19937
// satisfies Source.
//
// The paper notes (§5.2) that MT computation accounts for ~20ns/step in
// KnightKing; keeping this generator in the baseline preserves that
// computational profile in the reproduction.
type MT19937 struct {
	mt  [mtN]uint32
	idx int
}

const (
	mtN         = 624
	mtM         = 397
	mtMatrixA   = 0x9908b0df
	mtUpperMask = 0x80000000
	mtLowerMask = 0x7fffffff
)

// NewMT19937 returns a Mersenne Twister seeded with seed, using the
// reference initialization routine (init_genrand).
func NewMT19937(seed uint32) *MT19937 {
	m := &MT19937{idx: mtN}
	m.mt[0] = seed
	for i := 1; i < mtN; i++ {
		m.mt[i] = 1812433253*(m.mt[i-1]^(m.mt[i-1]>>30)) + uint32(i)
	}
	return m
}

// Uint32 returns the next 32-bit value in the stream.
func (m *MT19937) Uint32() uint32 {
	if m.idx >= mtN {
		m.generate()
	}
	y := m.mt[m.idx]
	m.idx++
	y ^= y >> 11
	y ^= (y << 7) & 0x9d2c5680
	y ^= (y << 15) & 0xefc60000
	y ^= y >> 18
	return y
}

func (m *MT19937) generate() {
	for i := 0; i < mtN; i++ {
		y := (m.mt[i] & mtUpperMask) | (m.mt[(i+1)%mtN] & mtLowerMask)
		next := m.mt[(i+mtM)%mtN] ^ (y >> 1)
		if y&1 != 0 {
			next ^= mtMatrixA
		}
		m.mt[i] = next
	}
	m.idx = 0
}

// Uint64 returns the next value as two concatenated 32-bit outputs,
// satisfying Source.
func (m *MT19937) Uint64() uint64 {
	hi := uint64(m.Uint32())
	lo := uint64(m.Uint32())
	return hi<<32 | lo
}
