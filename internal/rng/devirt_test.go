package rng

import "testing"

// The concrete XorShift1024Star methods (Reseed, Uint64n, Uint32n,
// Float64) and AliasTable.SampleFrom exist so the sample kernels can
// inline the generator instead of dispatching through Source. They must
// stay draw-for-draw identical to their interface-typed twins: the
// engine's bitwise equivalence tests depend on it.

func TestReseedMatchesNew(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef, ^uint64(0)} {
		fresh := NewXorShift1024Star(seed)
		reused := NewXorShift1024Star(seed ^ 0x1234)
		reused.Uint64() // advance so Reseed must also reset p
		reused.Reseed(seed)
		for i := 0; i < 64; i++ {
			if a, b := fresh.Uint64(), reused.Uint64(); a != b {
				t.Fatalf("seed %#x draw %d: New=%#x Reseed=%#x", seed, i, a, b)
			}
		}
	}
}

func TestConcreteMethodsMatchPackageFuncs(t *testing.T) {
	a := NewXorShift1024Star(7)
	b := NewXorShift1024Star(7)
	bounds := []uint64{1, 2, 3, 10, 1 << 20, 1<<63 + 12345}
	for i := 0; i < 2000; i++ {
		n := bounds[i%len(bounds)]
		if x, y := Uint64n(a, n), b.Uint64n(n); x != y {
			t.Fatalf("Uint64n(%d) iter %d: func=%d method=%d", n, i, x, y)
		}
		if x, y := Uint32n(a, uint32(i%100+1)), b.Uint32n(uint32(i%100+1)); x != y {
			t.Fatalf("Uint32n iter %d: func=%d method=%d", i, x, y)
		}
		if x, y := Float64(a), b.Float64(); x != y {
			t.Fatalf("Float64 iter %d: func=%v method=%v", i, x, y)
		}
	}
}

func TestConcreteUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	NewXorShift1024Star(1).Uint64n(0)
}

func TestAliasSampleFromMatchesSample(t *testing.T) {
	tab := NewAliasTable([]float64{3, 1, 0.5, 2, 0.25, 4})
	a := NewXorShift1024Star(99)
	b := NewXorShift1024Star(99)
	for i := 0; i < 5000; i++ {
		if x, y := tab.Sample(a), tab.SampleFrom(b); x != y {
			t.Fatalf("iter %d: Sample=%d SampleFrom=%d", i, x, y)
		}
	}
}
