package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for splitmix64 with seed 0 (from the public domain
	// reference implementation by Sebastiano Vigna).
	g := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := g.Uint64(); got != w {
			t.Fatalf("value %d: got %#x want %#x", i, got, w)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// Distinct inputs must map to distinct outputs (spot check).
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestXorShift64StarZeroSeed(t *testing.T) {
	g := NewXorShift64Star(0)
	if g.Uint64() == 0 && g.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck-at-zero stream")
	}
}

func TestXorShift64StarNonZeroStream(t *testing.T) {
	g := NewXorShift64Star(7)
	for i := 0; i < 1000; i++ {
		if g.Uint64() == 0 {
			// xorshift* can emit 0 only if the multiplier wraps exactly;
			// state itself is never zero. A zero output is fine, a stream
			// of zeros is not; re-check next.
			if g.Uint64() == 0 {
				t.Fatal("two consecutive zeros: generator is stuck")
			}
		}
	}
}

func TestMT19937KnownValues(t *testing.T) {
	// First outputs of MT19937 with the reference seed 5489 (C++
	// std::mt19937 default).
	g := NewMT19937(5489)
	want := []uint32{3499211612, 581869302, 3890346734, 3586334585, 545404204}
	for i, w := range want {
		if got := g.Uint32(); got != w {
			t.Fatalf("value %d: got %d want %d", i, got, w)
		}
	}
}

func TestMT19937SourceInterface(t *testing.T) {
	var _ Source = NewMT19937(1)
	var _ Source = NewXorShift64Star(1)
	var _ Source = NewXorShift1024Star(1)
	var _ Source = NewSplitMix64(1)
}

func TestUint64nRange(t *testing.T) {
	g := NewXorShift64Star(99)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := Uint64n(g, n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on n == 0")
		}
	}()
	Uint64n(NewXorShift64Star(1), 0)
}

func TestUint64nUniform(t *testing.T) {
	// Chi-square-style check: 10 buckets, 100k draws; each bucket should be
	// within 5% of the mean.
	g := NewXorShift64Star(123)
	const buckets, draws = 10, 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[Uint64n(g, buckets)]++
	}
	mean := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-mean) > 0.05*mean {
			t.Errorf("bucket %d: count %d deviates >5%% from mean %.0f", b, c, mean)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	g := NewMT19937(7)
	for i := 0; i < 10000; i++ {
		f := Float64(g)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewXorShift64Star(5)
	p := make([]uint32, 257)
	Perm(g, p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if int(v) >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v repeated or out of range", v)
		}
		seen[v] = true
	}
}

func TestUint64nPropertyInRange(t *testing.T) {
	g := NewXorShift1024Star(11)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return Uint64n(g, n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAliasTableMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	tab := NewAliasTable(weights)
	g := NewXorShift64Star(77)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[tab.Sample(g)]++
	}
	total := 10.0
	for i, w := range weights {
		want := w / total * draws
		if math.Abs(float64(counts[i])-want) > 0.05*want {
			t.Errorf("outcome %d: count %d, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestAliasTableSingleOutcome(t *testing.T) {
	tab := NewAliasTable([]float64{5})
	g := NewXorShift64Star(1)
	for i := 0; i < 100; i++ {
		if tab.Sample(g) != 0 {
			t.Fatal("single-outcome table returned nonzero index")
		}
	}
}

func TestAliasTableZeroWeightNeverSampled(t *testing.T) {
	tab := NewAliasTable([]float64{0, 1, 0, 1})
	g := NewXorShift64Star(3)
	for i := 0; i < 10000; i++ {
		v := tab.Sample(g)
		if v == 0 || v == 2 {
			t.Fatalf("zero-weight outcome %d sampled", v)
		}
	}
}

func TestAliasTablePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    []float64
	}{
		{"empty", nil},
		{"negative", []float64{1, -1}},
		{"zero-sum", []float64{0, 0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewAliasTable(tc.w)
		})
	}
}

func TestCDFMatchesWeights(t *testing.T) {
	weights := []float64{4, 3, 2, 1}
	c := NewCDF(weights)
	g := NewXorShift64Star(13)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[c.Sample(g)]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		if math.Abs(float64(counts[i])-want) > 0.05*want {
			t.Errorf("outcome %d: count %d, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestCDFAndAliasAgree(t *testing.T) {
	// Property: for any weight vector, alias and CDF sampling converge to
	// the same empirical distribution.
	weights := []float64{0.5, 7, 0.1, 2, 2, 1}
	a := NewAliasTable(weights)
	c := NewCDF(weights)
	ga := NewXorShift64Star(21)
	gc := NewXorShift64Star(22)
	const draws = 300000
	ca := make([]float64, len(weights))
	cc := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		ca[a.Sample(ga)]++
		cc[c.Sample(gc)]++
	}
	for i := range weights {
		pa, pc := ca[i]/draws, cc[i]/draws
		if math.Abs(pa-pc) > 0.01 {
			t.Errorf("outcome %d: alias %.4f vs cdf %.4f", i, pa, pc)
		}
	}
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(1000, 1.2)
	g := NewXorShift64Star(31)
	for i := 0; i < 50000; i++ {
		if v := z.Sample(g); v >= 1000 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
	}
}

func TestZipfHeadHeavy(t *testing.T) {
	// With s > 1 the top ranks must dominate: rank 0 should be the most
	// frequent outcome and the top 1% of ranks should hold a large share.
	z := NewZipf(100000, 1.5)
	g := NewXorShift64Star(41)
	const draws = 200000
	var rank0, top1pct int
	for i := 0; i < draws; i++ {
		v := z.Sample(g)
		if v == 0 {
			rank0++
		}
		if v < 1000 {
			top1pct++
		}
	}
	if rank0 < draws/10 {
		t.Errorf("rank 0 share %.3f, want > 0.1 for s=1.5", float64(rank0)/draws)
	}
	if top1pct < draws*8/10 {
		t.Errorf("top-1%% share %.3f, want > 0.8 for s=1.5", float64(top1pct)/draws)
	}
}

func TestZipfSmallN(t *testing.T) {
	z := NewZipf(3, 1.0)
	g := NewXorShift64Star(51)
	counts := make([]int, 3)
	for i := 0; i < 90000; i++ {
		counts[z.Sample(g)]++
	}
	// P ∝ 1, 1/2, 1/3 → shares 6/11, 3/11, 2/11.
	want := []float64{6.0 / 11, 3.0 / 11, 2.0 / 11}
	for i := range counts {
		got := float64(counts[i]) / 90000
		if math.Abs(got-want[i]) > 0.02 {
			t.Errorf("rank %d: share %.3f want %.3f", i, got, want[i])
		}
	}
}

func BenchmarkXorShift64Star(b *testing.B) {
	g := NewXorShift64Star(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.Uint64()
	}
	_ = sink
}

func BenchmarkMT19937(b *testing.B) {
	g := NewMT19937(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.Uint64()
	}
	_ = sink
}
