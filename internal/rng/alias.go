package rng

// AliasTable implements Walker's alias method (Walker 1977) for O(1)
// sampling from an arbitrary discrete distribution. FlashMob and the
// baselines use it for weighted edge sampling: build once per vertex in
// O(degree), then each sample costs one random number and at most two
// array reads.
type AliasTable struct {
	// prob[i] is the probability (scaled to [0, 1]) of returning i rather
	// than alias[i] when column i is chosen.
	prob  []float64
	alias []uint32
}

// NewAliasTable builds an alias table over weights. Weights must be
// non-negative with a positive sum; len(weights) must fit in uint32.
func NewAliasTable(weights []float64) *AliasTable {
	n := len(weights)
	if n == 0 {
		panic("rng: NewAliasTable with empty weights")
	}
	t := &AliasTable{
		prob:  make([]float64, n),
		alias: make([]uint32, n),
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: NewAliasTable with negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("rng: NewAliasTable with zero total weight")
	}
	// Scaled probabilities: p[i] * n.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w / sum * float64(n)
	}
	// Partition columns into small (<1) and large (>=1) work lists.
	small := make([]uint32, 0, n)
	large := make([]uint32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, uint32(i))
		} else {
			large = append(large, uint32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers are numerically 1.
	for _, l := range large {
		t.prob[l] = 1
		t.alias[l] = l
	}
	for _, s := range small {
		t.prob[s] = 1
		t.alias[s] = s
	}
	return t
}

// Len returns the number of outcomes.
func (t *AliasTable) Len() int { return len(t.prob) }

// Sample draws one outcome index in O(1).
func (t *AliasTable) Sample(src Source) uint32 {
	col := Uint32n(src, uint32(len(t.prob)))
	if Float64(src) < t.prob[col] {
		return col
	}
	return t.alias[col]
}

// SampleFrom draws one outcome index in O(1) from a concrete xorshift1024*
// generator, with the identical draw sequence as Sample (one bounded draw,
// one Float64). The concrete type lets the weighted sample kernels inline
// the generator instead of dispatching through Source twice per draw.
func (t *AliasTable) SampleFrom(x *XorShift1024Star) uint32 {
	col := x.Uint32n(uint32(len(t.prob)))
	if x.Float64() < t.prob[col] {
		return col
	}
	return t.alias[col]
}

// CDF implements inverse-transform sampling (Devroye 2006): a cumulative
// distribution table sampled by binary search in O(log n). It is the
// classical alternative to the alias method referenced in the paper's
// related-work discussion, cheaper to build and to store.
type CDF struct {
	cum []float64
}

// NewCDF builds a cumulative table over weights. Weights must be
// non-negative with a positive sum.
func NewCDF(weights []float64) *CDF {
	if len(weights) == 0 {
		panic("rng: NewCDF with empty weights")
	}
	cum := make([]float64, len(weights))
	var sum float64
	for i, w := range weights {
		if w < 0 {
			panic("rng: NewCDF with negative weight")
		}
		sum += w
		cum[i] = sum
	}
	if sum <= 0 {
		panic("rng: NewCDF with zero total weight")
	}
	// Normalize so the last entry is exactly 1.
	for i := range cum {
		cum[i] /= sum
	}
	cum[len(cum)-1] = 1
	return &CDF{cum: cum}
}

// Len returns the number of outcomes.
func (c *CDF) Len() int { return len(c.cum) }

// Sample draws one outcome index by binary search over the cumulative
// table.
func (c *CDF) Sample(src Source) uint32 {
	u := Float64(src)
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}
