// Package rng provides the pseudo-random number generators and discrete
// sampling primitives used throughout the FlashMob reproduction.
//
// FlashMob itself uses the cheap xorshift* family (Marsaglia 2003); the
// KnightKing-style baseline uses the Mersenne Twister, matching the paper's
// observation (§5.2) that KnightKing spends ~20ns/step on MT computation
// while FlashMob's xorshift* is more than 5x cheaper.
//
// All generators implement Source and are deterministic given a seed, which
// the test suite and the experiment harness rely on for reproducibility.
package rng

import "math/bits"

// Source is a stream of uniformly distributed 64-bit values.
type Source interface {
	// Uint64 returns the next value in the stream.
	Uint64() uint64
}

// SplitMix64 is the splitmix64 generator (Steele, Lea, Flood 2014). It is
// used to seed the other generators from a single 64-bit seed and as a
// stateless hash for deterministic per-item randomness.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return Mix64(s.state)
}

// Mix64 applies the splitmix64 finalizer to x. It is a bijection on uint64
// and serves as a fast stateless hash.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// XorShift64Star is the xorshift64* generator: a 64-bit xorshift state
// followed by a multiplicative scramble. This is FlashMob's hot-path RNG.
type XorShift64Star struct {
	state uint64
}

// NewXorShift64Star returns a generator seeded with seed. A zero seed is
// remapped to a fixed nonzero constant, since xorshift requires nonzero
// state.
func NewXorShift64Star(seed uint64) *XorShift64Star {
	s := Mix64(seed)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &XorShift64Star{state: s}
}

// Uint64 returns the next value in the stream.
func (x *XorShift64Star) Uint64() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545f4914f6cdd1d
}

// XorShift1024Star is the xorshift1024* generator with a 1024-bit state,
// offering a much longer period (2^1024-1) for long multi-episode runs.
type XorShift1024Star struct {
	state [16]uint64
	p     int
}

// NewXorShift1024Star returns a generator whose 16-word state is expanded
// from seed via splitmix64.
func NewXorShift1024Star(seed uint64) *XorShift1024Star {
	var g XorShift1024Star
	g.Reseed(seed)
	return &g
}

// Reseed re-expands the 16-word state from seed in place, exactly as
// NewXorShift1024Star does, without allocating. The sample stage reseeds
// one scratch generator per (episode, step, partition, sub-shard) work
// item, which makes walker trajectories a pure function of the engine
// seed — independent of worker count and scheduling — while keeping the
// steady-state step loop allocation-free.
func (x *XorShift1024Star) Reseed(seed uint64) {
	sm := SplitMix64{state: seed}
	nonzero := false
	for i := range x.state {
		x.state[i] = sm.Uint64()
		nonzero = nonzero || x.state[i] != 0
	}
	if !nonzero {
		x.state[0] = 1
	}
	x.p = 0
}

// Uint64 returns the next value in the stream.
func (x *XorShift1024Star) Uint64() uint64 {
	s0 := x.state[x.p]
	x.p = (x.p + 1) & 15
	s1 := x.state[x.p]
	s1 ^= s1 << 31
	s1 ^= s1 >> 11
	s0 ^= s0 >> 30
	x.state[x.p] = s0 ^ s1
	return x.state[x.p] * 1181783497276652981
}

// Uint64n returns a uniformly distributed value in [0, n): the
// devirtualized twin of the package-level Uint64n. Same algorithm, same
// draw sequence, but the concrete receiver lets the compiler inline the
// generator into the sample kernels instead of dispatching through
// Source on every draw.
func (x *XorShift1024Star) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(x.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(x.Uint64(), n)
		}
	}
	return hi
}

// Uint32n returns a uniformly distributed value in [0, n), n nonzero.
// Devirtualized twin of the package-level Uint32n.
func (x *XorShift1024Star) Uint32n(n uint32) uint32 {
	return uint32(x.Uint64n(uint64(n)))
}

// Float64 returns a uniformly distributed value in [0, 1) with 53 bits of
// precision. Devirtualized twin of the package-level Float64.
func (x *XorShift1024Star) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Uint64n returns a uniformly distributed value in [0, n) drawn from src,
// using Lemire's nearly-divisionless unbiased method. n must be nonzero.
func Uint64n(src Source, n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(src.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(src.Uint64(), n)
		}
	}
	return hi
}

// Uint32n returns a uniformly distributed value in [0, n). n must be
// nonzero. It is the hot-path edge-index sampler: a single multiply-shift.
func Uint32n(src Source, n uint32) uint32 {
	return uint32(Uint64n(src, uint64(n)))
}

// Float64 returns a uniformly distributed value in [0, 1) with 53 bits of
// precision.
func Float64(src Source) float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}

// Perm fills p with a uniformly random permutation of [0, len(p)) using the
// Fisher-Yates shuffle.
func Perm(src Source, p []uint32) {
	for i := range p {
		p[i] = uint32(i)
	}
	for i := len(p) - 1; i > 0; i-- {
		j := Uint64n(src, uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
}
