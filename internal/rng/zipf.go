package rng

import "math"

// Zipf samples ranks from a bounded Zipf (power-law) distribution:
// P(rank = k) ∝ 1/(k+1)^s for k in [0, n). It drives the synthetic graph
// generators, whose degree sequences must follow the heavy-tailed shape of
// the paper's real graphs (Table 2).
//
// The implementation uses inverse-transform sampling against the analytic
// approximation of the generalized harmonic CDF, with an exact small-rank
// head table to keep the high-probability head accurate. This avoids the
// O(n) table a plain CDF would need for hundreds of millions of vertices.
type Zipf struct {
	n    uint64
	s    float64
	head []float64 // exact cumulative probabilities for the first ranks
	hN   float64   // generalized harmonic number H_{n,s}
}

// zipfHeadSize is the number of exact head entries; beyond it the tail is
// inverted analytically.
const zipfHeadSize = 1024

// NewZipf returns a bounded Zipf sampler over [0, n) with exponent s > 0.
func NewZipf(n uint64, s float64) *Zipf {
	if n == 0 {
		panic("rng: NewZipf with n == 0")
	}
	if s <= 0 {
		panic("rng: NewZipf with non-positive exponent")
	}
	z := &Zipf{n: n, s: s}
	head := zipfHeadSize
	if uint64(head) > n {
		head = int(n)
	}
	z.head = make([]float64, head)
	var sum float64
	for k := 0; k < head; k++ {
		sum += math.Pow(float64(k+1), -s)
		z.head[k] = sum
	}
	z.hN = sum + z.tailMass(uint64(head), n)
	for k := range z.head {
		z.head[k] /= z.hN
	}
	return z
}

// tailMass approximates sum_{k=lo}^{hi-1} (k+1)^-s with the Euler-Maclaurin
// integral bound, accurate enough for rank selection in the far tail.
func (z *Zipf) tailMass(lo, hi uint64) float64 {
	if lo >= hi {
		return 0
	}
	a, b := float64(lo)+0.5, float64(hi)+0.5
	if z.s == 1 {
		return math.Log(b) - math.Log(a)
	}
	return (math.Pow(b, 1-z.s) - math.Pow(a, 1-z.s)) / (1 - z.s)
}

// Sample draws a rank in [0, n).
func (z *Zipf) Sample(src Source) uint64 {
	u := Float64(src)
	// Head: binary search over exact cumulative probabilities.
	if len(z.head) > 0 && u < z.head[len(z.head)-1] {
		lo, hi := 0, len(z.head)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if z.head[mid] <= u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return uint64(lo)
	}
	if uint64(len(z.head)) >= z.n {
		return z.n - 1
	}
	// Tail: invert the integral approximation. Remaining mass after the
	// head corresponds to ranks in [len(head), n).
	rem := (u - z.head[len(z.head)-1]) * z.hN
	a := float64(len(z.head)) + 0.5
	var k float64
	if z.s == 1 {
		k = a*math.Exp(rem) - 0.5
	} else {
		k = math.Pow(math.Pow(a, 1-z.s)+rem*(1-z.s), 1/(1-z.s)) - 0.5
	}
	rank := uint64(k)
	if rank < uint64(len(z.head)) {
		rank = uint64(len(z.head))
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}
