package sim

import (
	"testing"

	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/mem"
	"flashmob/internal/part"
	"flashmob/internal/profile"
)

// simGeom shrinks the paper geometry 64× so test graphs of a few MB play
// the role of the paper's 10s-of-GB graphs relative to the caches.
func simGeom() mem.Geometry {
	return mem.ScaledGeometry(64)
}

func bigTestGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: 60000, AvgDegree: 8, Alpha: 0.8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func planFor(t *testing.T, g *graph.CSR, geom mem.Geometry, walkers uint64) *part.Plan {
	t.Helper()
	model := profile.NewAnalyticalModel(geom)
	plan, err := part.PlanMCKP(g, part.Config{Walkers: walkers, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestFlashMobSimFewerMissesThanKnightKing(t *testing.T) {
	// The Figure 1b claim: FlashMob collapses L2/L3 misses per step.
	g := bigTestGraph(t)
	geom := simGeom()
	walkers, steps := 60000, 3

	kk := NewKnightKingSim(g, geom, 1)
	kkRep, err := kk.Run(walkers, steps)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := NewFlashMobSim(g, planFor(t, g, geom, uint64(walkers)), geom, 1, NumaNone)
	if err != nil {
		t.Fatal(err)
	}
	fmRep, err := fm.Run(walkers, steps)
	if err != nil {
		t.Fatal(err)
	}

	kkL3 := kkRep.MissesPerStep(mem.LocL3)
	fmL3 := fmRep.MissesPerStep(mem.LocL3)
	if fmL3 >= kkL3 {
		t.Errorf("L3 misses/step: FlashMob %.3f not below KnightKing %.3f", fmL3, kkL3)
	}
	kkL2 := kkRep.MissesPerStep(mem.LocL2)
	fmL2 := fmRep.MissesPerStep(mem.LocL2)
	if fmL2 >= kkL2 {
		t.Errorf("L2 misses/step: FlashMob %.3f not below KnightKing %.3f", fmL2, kkL2)
	}
	// And the estimated data-bound time should favour FlashMob heavily
	// (the paper reports 24×; require ≥3× to stay robust to scaling).
	if fmRep.TotalBoundNSPerStep()*3 > kkRep.TotalBoundNSPerStep() {
		t.Errorf("bound time/step: FlashMob %.1f vs KnightKing %.1f — want ≥3× gap",
			fmRep.TotalBoundNSPerStep(), kkRep.TotalBoundNSPerStep())
	}
}

func TestKnightKingSimGrowsWithGraphSize(t *testing.T) {
	// Figure 1a shape: per-step cost rises as the graph outgrows each
	// cache level.
	geom := simGeom()
	var prev float64
	for i, budget := range []uint64{
		geom.L1.SizeBytes * 8 / 10,
		geom.L2.SizeBytes * 8 / 10,
		geom.L3.SizeBytes * 8 / 10,
		geom.L3.SizeBytes * 16,
	} {
		g, _, err := gen.ToyForCacheBytes(budget, 16, 7)
		if err != nil {
			t.Fatal(err)
		}
		// Enough walker-steps to amortize cold misses even on the tiny
		// L1-sized toy.
		walkers := int(g.NumVertices())
		if walkers < 4000 {
			walkers = 4000
		}
		rep, err := NewKnightKingSim(g, geom, 2).Run(walkers, 8)
		if err != nil {
			t.Fatal(err)
		}
		ns := rep.TotalBoundNSPerStep()
		if i > 0 && ns < prev {
			t.Errorf("toy %d: bound %.2f ns/step below smaller toy (%.2f)", i, ns, prev)
		}
		prev = ns
	}
}

func TestFlashMobSimFlatAcrossGraphSizes(t *testing.T) {
	// FlashMob's per-step time should grow far slower than KnightKing's
	// when the graph goes from cache-resident to DRAM-resident.
	geom := simGeom()
	boundAt := func(nVerts uint32) (fm, kk float64) {
		g, err := gen.PowerLaw(gen.PowerLawConfig{
			NumVertices: nVerts, AvgDegree: 8, Alpha: 0.8, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		walkers := int(nVerts)
		fme, err := NewFlashMobSim(g, planFor(t, g, geom, uint64(walkers)), geom, 3, NumaNone)
		if err != nil {
			t.Fatal(err)
		}
		fmRep, err := fme.Run(walkers, 3)
		if err != nil {
			t.Fatal(err)
		}
		kkRep, err := NewKnightKingSim(g, geom, 3).Run(walkers, 3)
		if err != nil {
			t.Fatal(err)
		}
		return fmRep.TotalBoundNSPerStep(), kkRep.TotalBoundNSPerStep()
	}
	fmSmall, kkSmall := boundAt(4000)
	fmBig, kkBig := boundAt(64000)
	fmGrowth := fmBig / fmSmall
	kkGrowth := kkBig / kkSmall
	if fmGrowth >= kkGrowth {
		t.Errorf("growth small→big: FlashMob %.2fx vs KnightKing %.2fx — FlashMob should scale flatter",
			fmGrowth, kkGrowth)
	}
}

func TestFlashMobSimNUMAPartitionedRemoteIsRare(t *testing.T) {
	// §4.5/Figure 12: FlashMob-P's remote accesses are streaming-only and
	// rare per step (the paper reports ~0.001–0.002 per step at scale).
	g := bigTestGraph(t)
	geom := simGeom()
	fm, err := NewFlashMobSim(g, planFor(t, g, geom, 60000), geom, 4, NumaPartitioned)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fm.Run(60000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.RemoteDRAMBytes == 0 {
		t.Fatal("partitioned mode produced no remote traffic at all")
	}
	remote := rep.RemoteAccessesPerStep()
	totalAccesses := float64(rep.Stats.Accesses) / float64(rep.TotalSteps)
	if remote > 0.25*totalAccesses {
		t.Errorf("remote accesses/step %.3f out of %.3f accesses/step — should be a small fraction",
			remote, totalAccesses)
	}
}

func TestFlashMobSimNumaNoneHasNoRemote(t *testing.T) {
	g := bigTestGraph(t)
	geom := simGeom()
	fm, err := NewFlashMobSim(g, planFor(t, g, geom, 10000), geom, 5, NumaNone)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fm.Run(10000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.RemoteDRAMBytes != 0 || rep.Stats.HitsAt(mem.LocRemoteMem) != 0 {
		t.Error("NumaNone produced remote accesses")
	}
}

func TestSimDeterminism(t *testing.T) {
	g := bigTestGraph(t)
	geom := simGeom()
	plan := planFor(t, g, geom, 5000)
	run := func() mem.Stats {
		fm, err := NewFlashMobSim(g, plan, geom, 42, NumaNone)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fm.Run(5000, 2)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Error("same seed produced different simulation stats")
	}
}

func TestSimRunValidation(t *testing.T) {
	g := bigTestGraph(t)
	geom := simGeom()
	kk := NewKnightKingSim(g, geom, 1)
	if _, err := kk.Run(0, 5); err == nil {
		t.Error("zero walkers accepted")
	}
	if _, err := kk.Run(5, 0); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := NewFlashMobSim(g, nil, geom, 1, NumaNone); err == nil {
		t.Error("nil plan accepted")
	}
}

func TestReportMath(t *testing.T) {
	var r Report
	r.TotalSteps = 100
	r.Geom = mem.PaperGeometry()
	r.Stats.Served[mem.Rand][mem.LocL1] = 500
	r.Stats.Served[mem.Rand][mem.LocLocalMem] = 200
	r.Stats.DRAMBytes = 6400
	if got := r.HitsPerStep(mem.LocL1); got != 5 {
		t.Errorf("HitsPerStep = %v", got)
	}
	if got := r.MissesPerStep(mem.LocL1); got != 2 {
		t.Errorf("MissesPerStep(L1) = %v, want 2 (DRAM-served)", got)
	}
	if got := r.DRAMBytesPerStep(); got != 64 {
		t.Errorf("DRAMBytesPerStep = %v", got)
	}
	if got := r.BoundNSPerStep(mem.LocLocalMem); got != 2*18.35 {
		t.Errorf("BoundNSPerStep = %v", got)
	}
	var empty Report
	if empty.HitsPerStep(mem.LocL1) != 0 || empty.TotalBoundNSPerStep() != 0 {
		t.Error("empty report should be all zeros")
	}
}
