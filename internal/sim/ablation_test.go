package sim

import (
	"testing"

	"flashmob/internal/mem"
)

// TestLLCPolicyAblation exercises the §2.3 architecture discussion: with
// FlashMob's L2-resident working sets, the exclusive (Skylake) LLC design
// should serve the workload at least as well as the inclusive (Broadwell)
// configuration whose smaller private L2 pushes more accesses outward.
func TestLLCPolicyAblation(t *testing.T) {
	g := bigTestGraph(t)
	walkers := int(g.NumVertices())

	// Scale both geometries identically.
	scale := func(geom mem.Geometry) mem.Geometry {
		geom.L1.SizeBytes /= 64
		geom.L2.SizeBytes /= 64
		geom.L3.SizeBytes /= 64
		return geom
	}
	skylake := scale(mem.PaperGeometry())
	broadwell := scale(mem.BroadwellGeometry())

	run := func(geom mem.Geometry) *Report {
		plan := planFor(t, g, geom, uint64(walkers))
		fm, err := NewFlashMobSim(g, plan, geom, 11, NumaNone)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fm.Run(walkers, 3)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	sky := run(skylake)
	bdw := run(broadwell)
	t.Logf("exclusive/Skylake: %.2f bound-ns/step, L2 hits/step %.2f",
		sky.TotalBoundNSPerStep(), sky.HitsPerStep(mem.LocL2))
	t.Logf("inclusive/Broadwell: %.2f bound-ns/step, L2 hits/step %.2f",
		bdw.TotalBoundNSPerStep(), bdw.HitsPerStep(mem.LocL2))
	// The larger exclusive L2 should capture more of FlashMob's traffic.
	if sky.HitsPerStep(mem.LocL2)+sky.HitsPerStep(mem.LocL1) <
		bdw.HitsPerStep(mem.LocL2)+bdw.HitsPerStep(mem.LocL1) {
		t.Errorf("Skylake-style private-cache hits (%.2f) below Broadwell-style (%.2f)",
			sky.HitsPerStep(mem.LocL2)+sky.HitsPerStep(mem.LocL1),
			bdw.HitsPerStep(mem.LocL2)+bdw.HitsPerStep(mem.LocL1))
	}
}

// TestPrefetcherAblation verifies the prefetcher matters for FlashMob's
// streaming passes: disabling it must increase DRAM-served demand
// accesses.
func TestPrefetcherAblation(t *testing.T) {
	g := bigTestGraph(t)
	walkers := int(g.NumVertices())
	base := simGeom()
	noPF := base
	noPF.PrefetchDepth = 0

	run := func(geom mem.Geometry) *Report {
		plan := planFor(t, g, geom, uint64(walkers))
		fm, err := NewFlashMobSim(g, plan, geom, 12, NumaNone)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fm.Run(walkers, 2)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	with := run(base)
	without := run(noPF)
	if with.HitsPerStep(mem.LocLocalMem) >= without.HitsPerStep(mem.LocLocalMem) {
		t.Errorf("prefetcher did not reduce DRAM-served accesses: %.3f vs %.3f",
			with.HitsPerStep(mem.LocLocalMem), without.HitsPerStep(mem.LocLocalMem))
	}
}

// TestRegularIndexingAblation reproduces the §5.2 observation that compact
// regular indexing for low-degree DS partitions reduces misses versus
// always reading CSR offsets. We compare a FlashMob sim against one where
// every partition is treated as irregular.
func TestRegularIndexingAblation(t *testing.T) {
	g := bigTestGraph(t)
	walkers := int(g.NumVertices())
	geom := simGeom()
	plan := planFor(t, g, geom, uint64(walkers))

	fm, err := NewFlashMobSim(g, plan, geom, 13, NumaNone)
	if err != nil {
		t.Fatal(err)
	}
	regRep, err := fm.Run(walkers, 2)
	if err != nil {
		t.Fatal(err)
	}

	fm2, err := NewFlashMobSim(g, plan, geom, 13, NumaNone)
	if err != nil {
		t.Fatal(err)
	}
	// Force the irregular path everywhere.
	for i := range fm2.regular {
		fm2.regular[i] = -1
	}
	irrRep, err := fm2.Run(walkers, 2)
	if err != nil {
		t.Fatal(err)
	}
	if regRep.Stats.Accesses >= irrRep.Stats.Accesses {
		t.Errorf("regular indexing should eliminate offset reads: %d vs %d accesses",
			regRep.Stats.Accesses, irrRep.Stats.Accesses)
	}
	t.Logf("regular indexing: %.2f accesses/step vs %.2f without",
		float64(regRep.Stats.Accesses)/float64(regRep.TotalSteps),
		float64(irrRep.Stats.Accesses)/float64(irrRep.TotalSteps))
}
