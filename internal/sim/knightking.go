package sim

import (
	"flashmob/internal/graph"
	"flashmob/internal/mem"
	"flashmob/internal/rng"
)

// KnightKingSim replays the KnightKing baseline's memory behaviour: each
// walker is advanced through its whole walk before the next starts, every
// step loading the vertex's CSR offsets and then one edge — a dependent
// (pointer-chasing) chain over the entire graph, exactly the access
// pattern Table 3's "prior systems" row describes.
type KnightKingSim struct {
	g    *graph.CSR
	h    *mem.Hierarchy
	seed uint64

	offsets mem.Region
	targets mem.Region
	wstate  mem.Region
}

// NewKnightKingSim builds the simulated engine over geometry geom.
func NewKnightKingSim(g *graph.CSR, geom mem.Geometry, seed uint64) *KnightKingSim {
	l := mem.NewLayout(geom.LineBytes)
	return &KnightKingSim{
		g:       g,
		h:       mem.NewHierarchy(geom),
		seed:    seed,
		offsets: l.Alloc("csr.offsets", uint64(len(g.Offsets))*8),
		targets: l.Alloc("csr.targets", uint64(len(g.Targets))*4),
		wstate:  l.Alloc("walkers", 1<<20*4), // ring of walker slots
	}
}

// Run performs the simulated walk and returns the per-step cache report.
func (s *KnightKingSim) Run(walkers, steps int) (*Report, error) {
	if err := validateCounts(walkers, steps); err != nil {
		return nil, err
	}
	s.h.Reset()
	src := rng.NewXorShift1024Star(s.seed)
	g := s.g
	n := g.NumVertices()
	for j := 0; j < walkers; j++ {
		wAddr := s.wstate.Base + uint64(j)%(s.wstate.Size/4)*4
		s.h.Read(wAddr, 4, mem.Seq)
		v := graph.VID(uint32(j) % n)
		for st := 0; st < steps; st++ {
			// Offsets load depends on the previous step's sampled vertex:
			// a pointer-chasing access.
			s.h.Read(s.offsets.Base+uint64(v)*8, 16, mem.Chase)
			d := g.Degree(v)
			if d == 0 {
				continue
			}
			k := rng.Uint32n(src, d)
			idx := g.Offsets[v] + uint64(k)
			s.h.Read(s.targets.Base+idx*4, 4, mem.Chase)
			v = g.Targets[idx]
			// Walker state update (same line → cheap, as in the real
			// system).
			s.h.Write(wAddr, 4, mem.Seq)
		}
	}
	return &Report{
		TotalSteps: uint64(walkers) * uint64(steps),
		Stats:      s.h.Stats,
		Geom:       s.h.Geom,
	}, nil
}
