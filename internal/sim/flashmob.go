package sim

import (
	"fmt"

	"flashmob/internal/graph"
	"flashmob/internal/mem"
	"flashmob/internal/part"
	"flashmob/internal/profile"
	"flashmob/internal/rng"
)

// FlashMobSim replays the FlashMob engine's memory behaviour: the
// two-pass counting shuffle, per-partition sample stage with PS buffers or
// DS reads, and the reverse shuffle — all with simulated addresses, so the
// cache hierarchy sees the same working sets and streams the native engine
// produces. The shuffle is modeled at one level (bins = VPs); the paper's
// DP likewise stays single-level on all evaluated graphs (§5.3).
type FlashMobSim struct {
	g    *graph.CSR
	plan *part.Plan
	// hs holds one hierarchy per simulated core (private L1/L2, shared
	// L3); cur is the hierarchy of the core currently executing.
	hs   []*mem.Hierarchy
	cur  *mem.Hierarchy
	seed uint64
	mode NumaMode

	layout  *mem.Layout
	offsets splitRegion
	targets splitRegion
	wArr    splitRegion
	swArr   splitRegion
	nextArr splitRegion
	psBufR  mem.Region
	cursorR mem.Region
	countR  mem.Region

	// psVPBase[i] is VP i's base index into the PS buffer array, or -1
	// for DS partitions.
	psVPBase []int64
	psBuf    []graph.VID
	psRemain []uint32 // per vertex (only meaningful for PS partitions)
	regular  []int64  // uniform degree per VP, or -1
}

// NewFlashMobSim builds the simulated engine for a degree-sorted graph and
// a finalized plan, modelling a single core.
func NewFlashMobSim(g *graph.CSR, plan *part.Plan, geom mem.Geometry, seed uint64, mode NumaMode) (*FlashMobSim, error) {
	return NewFlashMobSimCores(g, plan, geom, seed, mode, 1)
}

// NewFlashMobSimCores models `cores` cores with private L1/L2 caches and a
// shared L3: partitions are processed round-robin across cores and the
// walker arrays are range-partitioned, the engine's actual parallel
// decomposition. Accesses interleave at partition/walker-range
// granularity.
func NewFlashMobSimCores(g *graph.CSR, plan *part.Plan, geom mem.Geometry, seed uint64, mode NumaMode, cores int) (*FlashMobSim, error) {
	if plan == nil {
		return nil, fmt.Errorf("sim: nil plan")
	}
	if plan.V != g.NumVertices() {
		return nil, fmt.Errorf("sim: plan covers %d vertices, graph has %d", plan.V, g.NumVertices())
	}
	if cores < 1 {
		return nil, fmt.Errorf("sim: core count %d must be positive", cores)
	}
	hs := mem.NewSharedL3Group(geom, cores)
	s := &FlashMobSim{
		g:    g,
		plan: plan,
		hs:   hs,
		cur:  hs[0],
		seed: seed,
		mode: mode,
	}
	// Graph arrays split at the plan's midpoint VP for FlashMob-P.
	mid := plan.VPs[len(plan.VPs)/2].Start
	l := mem.NewLayout(geom.LineBytes)
	s.layout = l
	s.offsets = graphSplit(l, "csr.offsets", uint64(len(g.Offsets)), 8, uint64(mid), mode)
	s.targets = graphSplit(l, "csr.targets", uint64(len(g.Targets)), 4, g.Offsets[mid], mode)

	// PS buffers and classification.
	s.psVPBase = make([]int64, plan.NumVPs())
	s.regular = make([]int64, plan.NumVPs())
	var psEdges uint64
	for i, vp := range plan.VPs {
		first, last := g.Degree(vp.Start), g.Degree(vp.End-1)
		if first == last {
			s.regular[i] = int64(first)
		} else {
			s.regular[i] = -1
		}
		if vp.Policy == profile.PS {
			s.psVPBase[i] = int64(psEdges)
			psEdges += g.Offsets[vp.End] - g.Offsets[vp.Start]
		} else {
			s.psVPBase[i] = -1
		}
	}
	s.psBuf = make([]graph.VID, psEdges)
	s.psRemain = make([]uint32, g.NumVertices())
	s.psBufR = l.Alloc("ps.buffers", psEdges*4)
	s.cursorR = l.Alloc("ps.cursors", uint64(g.NumVertices())*4)
	s.countR = l.Alloc("shuffle.counts", uint64(plan.NumVPs())*4)
	return s, nil
}

// graphSplit places a graph array across NUMA domains at element index
// `at` under FlashMob-P, or wholly local otherwise.
func graphSplit(l *mem.Layout, name string, elems, elemSize, at uint64, mode NumaMode) splitRegion {
	if mode != NumaPartitioned || at == 0 || at >= elems {
		r := l.Alloc(name, elems*elemSize)
		return splitRegion{r0: r, r1: r, split: elems, elemSize: elemSize}
	}
	return splitRegion{
		r0:       l.Alloc(name+".0", at*elemSize),
		r1:       l.AllocDomain(name+".1", (elems-at)*elemSize, 1),
		split:    at,
		elemSize: elemSize,
	}
}

// DisableRegularIndexing forces the CSR-offset-read path for every DS
// partition, the ablation of §4.2's compact regular indexing (the paper
// measures 13-33% L2/L3 miss reductions from it, §5.2).
func (s *FlashMobSim) DisableRegularIndexing() {
	for i := range s.regular {
		s.regular[i] = -1
	}
}

// Run executes the simulated pipeline.
func (s *FlashMobSim) Run(walkers, steps int) (*Report, error) {
	if err := validateCounts(walkers, steps); err != nil {
		return nil, err
	}
	// Repeated Runs are independent: clear the caches and counters, and
	// allocate fresh walker regions from the engine's layout (the address
	// space is virtual and effectively unbounded).
	for _, h := range s.hs {
		h.Reset()
	}
	for i := range s.psRemain {
		s.psRemain[i] = 0
	}
	s.wArr = newSplit(s.layout, "walk.W", uint64(walkers), 4, s.mode)
	s.swArr = newSplit(s.layout, "walk.SW", uint64(walkers), 4, s.mode)
	s.nextArr = newSplit(s.layout, "walk.Wnext", uint64(walkers), 4, s.mode)
	// Attribute DRAM traffic to the named data structures (Table 5-style
	// breakdown).
	for _, h := range s.hs {
		h.AttributeRegions(s.layout.Regions())
	}

	g := s.g
	plan := s.plan
	n := g.NumVertices()
	src := rng.NewXorShift1024Star(s.seed)

	w := make([]graph.VID, walkers)
	sw := make([]graph.VID, walkers)
	wNext := make([]graph.VID, walkers)
	for j := range w {
		w[j] = graph.VID(uint32(j) % n)
	}
	numVPs := plan.NumVPs()
	counts := make([]uint64, numVPs)
	cursor := make([]uint64, numVPs+1)

	for st := 0; st < steps; st++ {
		// Forward shuffle, pass 1: count.
		for i := range counts {
			counts[i] = 0
		}
		for j := 0; j < walkers; j++ {
			s.cur = s.coreForWalker(j, walkers)
			s.cur.Read(s.wArr.addr(uint64(j)), 4, mem.Seq)
			vp := plan.VPOf(w[j])
			s.cur.Write(s.countR.Base+uint64(vp)*4, 4, mem.Rand)
			counts[vp]++
		}
		// Prefix (tiny, not charged).
		var acc uint64
		for i := 0; i < numVPs; i++ {
			cursor[i] = acc
			acc += counts[i]
		}
		cursor[numVPs] = acc
		vpStart := append([]uint64(nil), cursor[:numVPs+1]...)
		// Forward shuffle, pass 2: place.
		for j := 0; j < walkers; j++ {
			s.cur = s.coreForWalker(j, walkers)
			s.cur.Read(s.wArr.addr(uint64(j)), 4, mem.Seq)
			vp := plan.VPOf(w[j])
			pos := cursor[vp]
			cursor[vp]++
			s.cur.Write(s.swArr.addr(pos), 4, mem.Rand)
			sw[pos] = w[j]
		}

		// Sample stage, one VP at a time.
		for vp := 0; vp < numVPs; vp++ {
			s.cur = s.hs[vp%len(s.hs)]
			lo, hi := vpStart[vp], vpStart[vp+1]
			for p := lo; p < hi; p++ {
				s.cur.Read(s.swArr.addr(p), 4, mem.Seq)
				v := sw[p]
				sw[p] = s.sampleOne(vp, v, src)
				s.cur.Write(s.swArr.addr(p), 4, mem.Seq)
			}
		}

		// Reverse shuffle: replay cursors, gather into walker order.
		copy(cursor[:numVPs], vpStart[:numVPs])
		for j := 0; j < walkers; j++ {
			s.cur = s.coreForWalker(j, walkers)
			s.cur.Read(s.wArr.addr(uint64(j)), 4, mem.Seq)
			vp := plan.VPOf(w[j])
			pos := cursor[vp]
			cursor[vp]++
			s.cur.Read(s.swArr.addr(pos), 4, mem.Rand)
			s.cur.Write(s.nextArr.addr(uint64(j)), 4, mem.Seq)
			wNext[j] = sw[pos]
		}
		w, wNext = wNext, w
		s.wArr, s.nextArr = s.nextArr, s.wArr
	}
	var agg mem.Stats
	traffic := map[string]uint64{}
	for _, h := range s.hs {
		agg.Add(&h.Stats)
		for name, b := range h.RegionDRAMBytes() {
			traffic[name] += b
		}
	}
	return &Report{
		TotalSteps:      uint64(walkers) * uint64(steps),
		Stats:           agg,
		Geom:            s.hs[0].Geom,
		TrafficByRegion: traffic,
	}, nil
}

// sampleOne advances one walker at v inside partition vp, issuing the
// policy's memory accesses.
func (s *FlashMobSim) sampleOne(vp int, v graph.VID, src rng.Source) graph.VID {
	g := s.g
	d := g.Degree(v)
	if d == 0 {
		return v
	}
	if base := s.psVPBase[vp]; base >= 0 {
		// PS: cursor seek, refill when drained, consume sequentially.
		cAddr := s.cursorR.Base + uint64(v)*4
		s.cur.Read(cAddr, 4, mem.Rand)
		off := uint64(base) + (g.Offsets[v] - g.Offsets[s.plan.VPs[vp].Start])
		if s.psRemain[v] == 0 {
			adjBase := g.Offsets[v]
			for i := uint32(0); i < d; i++ {
				k := rng.Uint32n(src, d)
				s.cur.Read(s.targets.addr(adjBase+uint64(k)), 4, mem.Rand)
				s.cur.Write(s.psBufR.Base+(off+uint64(i))*4, 4, mem.Seq)
				s.psBuf[off+uint64(i)] = g.Targets[adjBase+uint64(k)]
			}
			s.psRemain[v] = d
		}
		pos := uint64(d - s.psRemain[v])
		s.cur.Read(s.psBufR.Base+(off+pos)*4, 4, mem.Rand)
		s.cur.Write(cAddr, 4, mem.Rand)
		next := s.psBuf[off+pos]
		s.psRemain[v]--
		return next
	}
	// DS: regular partitions index arithmetically; mixed-degree ones read
	// the CSR offsets first.
	if s.regular[vp] < 0 {
		s.cur.Read(s.offsets.addr(uint64(v)), 16, mem.Rand)
	}
	k := rng.Uint32n(src, d)
	idx := g.Offsets[v] + uint64(k)
	s.cur.Read(s.targets.addr(idx), 4, mem.Rand)
	return g.Targets[idx]
}

// coreForWalker maps a walker index to its owning core's hierarchy
// (contiguous range partitioning, as in the real engine).
func (s *FlashMobSim) coreForWalker(j, walkers int) *mem.Hierarchy {
	if len(s.hs) == 1 {
		return s.hs[0]
	}
	c := j * len(s.hs) / walkers
	if c >= len(s.hs) {
		c = len(s.hs) - 1
	}
	return s.hs[c]
}
