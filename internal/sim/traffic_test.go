package sim

import (
	"strings"
	"testing"
)

func TestTrafficByRegion(t *testing.T) {
	g := bigTestGraph(t)
	geom := simGeom()
	walkers := int(g.NumVertices())
	fm, err := NewFlashMobSim(g, planFor(t, g, geom, uint64(walkers)), geom, 31, NumaNone)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fm.Run(walkers, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrafficByRegion == nil {
		t.Fatal("no traffic attribution")
	}
	var total, walkerBytes uint64
	for name, b := range rep.TrafficByRegion {
		total += b
		if strings.HasPrefix(name, "walk.") {
			walkerBytes += b
		}
	}
	if total != rep.Stats.DRAMBytes {
		t.Errorf("attributed %d bytes, DRAM total %d", total, rep.Stats.DRAMBytes)
	}
	if walkerBytes == 0 {
		t.Error("walker arrays produced no DRAM traffic?")
	}
	// The stream prefetcher legitimately runs a few lines past region
	// ends into the guard gaps; only a tiny share may be unattributed.
	if un := rep.TrafficByRegion[""]; un > total/100 {
		t.Errorf("%d of %d bytes unattributed (>1%%)", un, total)
	}
	t.Logf("traffic split: %v", rep.TrafficByRegion)
}
