package sim

import (
	"testing"

	"flashmob/internal/mem"
)

func TestMultiCoreSharedL3(t *testing.T) {
	g := bigTestGraph(t)
	geom := simGeom()
	walkers := int(g.NumVertices())
	plan := planFor(t, g, geom, uint64(walkers))

	run := func(cores int) *Report {
		fm, err := NewFlashMobSimCores(g, plan, geom, 21, NumaNone, cores)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fm.Run(walkers, 2)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	one := run(1)
	four := run(4)

	// Same work: identical demand access counts regardless of core count.
	if one.Stats.Accesses != four.Stats.Accesses {
		t.Fatalf("access counts differ: %d vs %d", one.Stats.Accesses, four.Stats.Accesses)
	}
	// With private L2s per core, aggregate private-cache capacity grows:
	// the four-core run must not lose private-level hits dramatically,
	// and FlashMob's low DRAM rate should persist under L3 sharing.
	oneDRAM := one.HitsPerStep(mem.LocLocalMem)
	fourDRAM := four.HitsPerStep(mem.LocLocalMem)
	if fourDRAM > oneDRAM*2+0.5 {
		t.Errorf("shared-L3 contention exploded DRAM rate: 1-core %.3f vs 4-core %.3f/step",
			oneDRAM, fourDRAM)
	}
	t.Logf("DRAM accesses/step: 1 core %.3f, 4 cores %.3f", oneDRAM, fourDRAM)
	t.Logf("L2 hits/step: 1 core %.3f, 4 cores %.3f",
		one.HitsPerStep(mem.LocL2), four.HitsPerStep(mem.LocL2))
}

func TestMultiCoreValidation(t *testing.T) {
	g := bigTestGraph(t)
	geom := simGeom()
	plan := planFor(t, g, geom, 1000)
	if _, err := NewFlashMobSimCores(g, plan, geom, 1, NumaNone, 0); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestSharedL3GroupIsShared(t *testing.T) {
	// A line brought in by core 0 and evicted from its private levels
	// must be visible to core 1 through the shared L3.
	geom := mem.Geometry{
		LineBytes:     64,
		L1:            mem.LevelGeom{SizeBytes: 128, Assoc: 2},
		L2:            mem.LevelGeom{SizeBytes: 256, Assoc: 2},
		L3:            mem.LevelGeom{SizeBytes: 4096, Assoc: 4},
		LLCPolicy:     mem.LLCExclusive,
		PrefetchDepth: 0,
		Latency:       mem.PaperLatency,
	}
	hs := mem.NewSharedL3Group(geom, 2)
	// Core 0 touches a line, then streams enough lines to evict it from
	// its private L1/L2 into the shared victim L3.
	hs[0].Read(0, 8, mem.Rand)
	for a := uint64(64); a < 2048; a += 64 {
		hs[0].Read(a, 8, mem.Rand)
	}
	// Core 1's first touch of line 0 should be served by L3, not DRAM.
	hs[1].Read(0, 8, mem.Rand)
	if hs[1].Stats.Served[mem.Rand][mem.LocL3] != 1 {
		t.Errorf("core 1 not served from shared L3: %+v", hs[1].Stats.Served[mem.Rand])
	}
}
