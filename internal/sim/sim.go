// Package sim contains trace-driven versions of the walk engines: they
// perform real walks on real graphs while routing every memory access the
// corresponding native engine would make through the cache-hierarchy
// simulator in internal/mem. This substitutes for the paper's perf/VTune
// measurements (Figure 1b, Table 5): per-level hit/miss counts per step,
// DRAM traffic per step, data-bound time decomposition, and NUMA remote
// access counts.
//
// The simulated engines intentionally run single-threaded: the quantities
// being measured are per-step cache events of one core's access stream,
// which is also how the paper reports them (counts normalized per
// walker-step).
package sim

import (
	"fmt"

	"flashmob/internal/mem"
)

// Report is the outcome of a simulated run.
type Report struct {
	// TotalSteps is walkers × steps.
	TotalSteps uint64
	// Stats holds the raw simulator counters.
	Stats mem.Stats
	// Geom is the geometry the run used.
	Geom mem.Geometry
	// TrafficByRegion splits DRAM traffic by named data structure when
	// the engine enabled attribution (nil otherwise). Split-region names
	// keep their ".0"/".1" NUMA suffixes.
	TrafficByRegion map[string]uint64
}

// HitsPerStep returns demand accesses served at loc per walker-step.
func (r *Report) HitsPerStep(loc mem.Location) float64 {
	if r.TotalSteps == 0 {
		return 0
	}
	return float64(r.Stats.HitsAt(loc)) / float64(r.TotalSteps)
}

// MissesPerStep returns, per walker-step, the accesses that missed level
// loc (i.e. were served deeper) — the per-step miss counts of Figure 1b.
func (r *Report) MissesPerStep(loc mem.Location) float64 {
	if r.TotalSteps == 0 {
		return 0
	}
	return float64(r.Stats.MissesBelow(loc+1)) / float64(r.TotalSteps)
}

// DRAMBytesPerStep returns DRAM traffic per walker-step (Table 5's "DRAM
// traffic/step").
func (r *Report) DRAMBytesPerStep() float64 {
	if r.TotalSteps == 0 {
		return 0
	}
	return float64(r.Stats.DRAMBytes) / float64(r.TotalSteps)
}

// RemoteAccessesPerStep returns demand accesses served from remote DRAM
// per walker-step (the Figure 12 NUMA metric).
func (r *Report) RemoteAccessesPerStep() float64 {
	if r.TotalSteps == 0 {
		return 0
	}
	return float64(r.Stats.HitsAt(mem.LocRemoteMem)) / float64(r.TotalSteps)
}

// BoundNSPerStep returns estimated data-bound nanoseconds per walker-step
// attributable to accesses served at loc (Table 5's "L1/L2/L3/DRAM-bound
// time").
func (r *Report) BoundNSPerStep(loc mem.Location) float64 {
	if r.TotalSteps == 0 {
		return 0
	}
	return r.Stats.BoundNS(&r.Geom.Latency, loc) / float64(r.TotalSteps)
}

// TotalBoundNSPerStep returns total estimated data time per walker-step.
func (r *Report) TotalBoundNSPerStep() float64 {
	if r.TotalSteps == 0 {
		return 0
	}
	return r.Stats.TotalNS(&r.Geom.Latency) / float64(r.TotalSteps)
}

// NumaMode selects the cross-socket execution model of §4.5.
type NumaMode int

const (
	// NumaNone places everything in the local domain.
	NumaNone NumaMode = iota
	// NumaPartitioned is FlashMob-P: the second half of the vertex
	// partitions (graph data) and walker arrays live on the remote
	// domain; a local core's accesses to them are remote but strictly
	// streaming.
	NumaPartitioned
	// NumaReplicated is FlashMob-R: all graph data local (each socket has
	// its own replica); nothing is remote, but the caller should halve
	// the walker budget to model the replicated graph's DRAM cost.
	NumaReplicated
)

// splitRegion is a logical array whose first `split` elements live in one
// region and the rest in another (possibly remote) region. elemSize is in
// bytes.
type splitRegion struct {
	r0, r1   mem.Region
	split    uint64
	elemSize uint64
}

func newSplit(l *mem.Layout, name string, elems, elemSize uint64, mode NumaMode) splitRegion {
	if mode != NumaPartitioned || elems < 2 {
		r := l.Alloc(name, elems*elemSize)
		return splitRegion{r0: r, r1: r, split: elems, elemSize: elemSize}
	}
	half := elems / 2
	return splitRegion{
		r0:       l.Alloc(name+".0", half*elemSize),
		r1:       l.AllocDomain(name+".1", (elems-half)*elemSize, 1),
		split:    half,
		elemSize: elemSize,
	}
}

// addr returns the simulated address of element idx.
func (s splitRegion) addr(idx uint64) uint64 {
	if idx < s.split {
		return s.r0.Base + idx*s.elemSize
	}
	return s.r1.Base + (idx-s.split)*s.elemSize
}

func validateCounts(walkers, steps int) error {
	if walkers <= 0 {
		return fmt.Errorf("sim: walker count must be positive, got %d", walkers)
	}
	if steps <= 0 {
		return fmt.Errorf("sim: step count must be positive, got %d", steps)
	}
	return nil
}
