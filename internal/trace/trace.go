// Package trace serializes walk output for downstream consumers: the
// text corpus format word2vec-style trainers ingest (one
// space-separated path per line), and a compact binary edge stream — the
// paper's two output modes (§4.3: full paths by transposing the W arrays,
// or streaming the sampled edges to the training side).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"

	"flashmob/internal/graph"
	"flashmob/internal/walk"
)

// WriteCorpus emits one line per walker: space-separated vertex IDs of its
// path. The format matches what word2vec-family tools expect.
func WriteCorpus(w io.Writer, h *walk.History) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var buf []byte
	for j := 0; j < h.NumWalkers(); j++ {
		buf = buf[:0]
		for i := 0; i < h.NumSteps(); i++ {
			if i > 0 {
				buf = append(buf, ' ')
			}
			buf = strconv.AppendUint(buf, uint64(h.At(i, j)), 10)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("trace: write corpus: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCorpus parses a corpus written by WriteCorpus back into paths.
func ReadCorpus(r io.Reader) ([][]graph.VID, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	var paths [][]graph.VID
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		var path []graph.VID
		start := 0
		for i := 0; i <= len(text); i++ {
			if i == len(text) || text[i] == ' ' {
				if i == start {
					return nil, fmt.Errorf("trace: line %d: empty field", line)
				}
				v, err := strconv.ParseUint(text[start:i], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: %w", line, err)
				}
				path = append(path, graph.VID(v))
				start = i + 1
			}
		}
		paths = append(paths, path)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan corpus: %w", err)
	}
	return paths, nil
}

// EdgeStreamWriter serializes sampled edges incrementally as they are
// produced — plug its Sink method into the engine's StepSink to stream a
// walk to disk (or a socket feeding GPU training) without retaining
// history in memory. The format is a fixed 16-byte header ("FMESTRM1",
// reserved uint64) followed by (from, to) uint32 little-endian pairs.
type EdgeStreamWriter struct {
	bw    *bufio.Writer
	err   error
	wrote uint64
}

// edgeStreamMagic opens the binary edge-stream format.
var edgeStreamMagic = [8]byte{'F', 'M', 'E', 'S', 'T', 'R', 'M', '1'}

// NewEdgeStreamWriter writes the stream header and returns the writer.
func NewEdgeStreamWriter(w io.Writer) (*EdgeStreamWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(edgeStreamMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: write stream header: %w", err)
	}
	var reserved [8]byte
	if _, err := bw.Write(reserved[:]); err != nil {
		return nil, fmt.Errorf("trace: write stream header: %w", err)
	}
	return &EdgeStreamWriter{bw: bw}, nil
}

// Sink consumes one engine step (signature-compatible with the engine's
// StepSink). Errors are sticky and surfaced by Close.
func (e *EdgeStreamWriter) Sink(step int, cur, next []graph.VID) {
	if e.err != nil {
		return
	}
	var rec [8]byte
	for j := range cur {
		binary.LittleEndian.PutUint32(rec[0:], cur[j])
		binary.LittleEndian.PutUint32(rec[4:], next[j])
		if _, err := e.bw.Write(rec[:]); err != nil {
			e.err = fmt.Errorf("trace: write edge: %w", err)
			return
		}
		e.wrote++
	}
}

// Edges returns the number of edges written so far.
func (e *EdgeStreamWriter) Edges() uint64 { return e.wrote }

// Close flushes and reports any sticky error.
func (e *EdgeStreamWriter) Close() error {
	if e.err != nil {
		return e.err
	}
	return e.bw.Flush()
}

// ReadEdgeStream parses a stream written by EdgeStreamWriter, calling fn
// for every edge.
func ReadEdgeStream(r io.Reader, fn func(from, to graph.VID)) error {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("trace: read stream header: %w", err)
	}
	if [8]byte(hdr[:8]) != edgeStreamMagic {
		return fmt.Errorf("trace: bad edge-stream magic %q", hdr[:8])
	}
	var rec [8]byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("trace: read edge: %w", err)
		}
		fn(graph.VID(binary.LittleEndian.Uint32(rec[0:])),
			graph.VID(binary.LittleEndian.Uint32(rec[4:])))
	}
}

// WriteCorpusPaths emits walker-major paths (e.g. from Result.Paths) in
// the corpus format.
func WriteCorpusPaths(w io.Writer, paths [][]graph.VID) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var buf []byte
	for _, p := range paths {
		buf = buf[:0]
		for i, v := range p {
			if i > 0 {
				buf = append(buf, ' ')
			}
			buf = strconv.AppendUint(buf, uint64(v), 10)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("trace: write corpus: %w", err)
		}
	}
	return bw.Flush()
}
