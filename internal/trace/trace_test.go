package trace

import (
	"bytes"
	"strings"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/core"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/part"
	"flashmob/internal/walk"
)

func TestCorpusRoundTrip(t *testing.T) {
	h := walk.NewHistory(2)
	for _, step := range [][]graph.VID{{1, 4}, {2, 5}, {3, 6}} {
		if err := h.Append(step); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, h); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "1 2 3\n4 5 6\n" {
		t.Fatalf("corpus = %q", got)
	}
	paths, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || paths[1][2] != 6 {
		t.Fatalf("round trip: %v", paths)
	}
}

func TestReadCorpusErrors(t *testing.T) {
	for _, in := range []string{"1 x 3\n", "1  2\n"} {
		if _, err := ReadCorpus(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
	// Blank lines are skipped, not errors.
	paths, err := ReadCorpus(strings.NewReader("\n7\n"))
	if err != nil || len(paths) != 1 || paths[0][0] != 7 {
		t.Fatalf("blank-line handling: %v %v", paths, err)
	}
}

func TestEdgeStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewEdgeStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Sink(0, []graph.VID{1, 3}, []graph.VID{2, 4})
	w.Sink(1, []graph.VID{2, 4}, []graph.VID{3, 5})
	if w.Edges() != 4 {
		t.Fatalf("Edges = %d", w.Edges())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got [][2]graph.VID
	if err := ReadEdgeStream(&buf, func(f, to graph.VID) {
		got = append(got, [2]graph.VID{f, to})
	}); err != nil {
		t.Fatal(err)
	}
	want := [][2]graph.VID{{1, 2}, {3, 4}, {2, 3}, {4, 5}}
	if len(got) != len(want) {
		t.Fatalf("got %d edges", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEdgeStreamRejectsGarbage(t *testing.T) {
	if err := ReadEdgeStream(strings.NewReader("definitely not a stream"), func(f, to graph.VID) {}); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := ReadEdgeStream(strings.NewReader(""), func(f, to graph.VID) {}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestEdgeStreamFromEngine(t *testing.T) {
	// End to end: plug the stream writer into the engine's StepSink, then
	// check every streamed edge is a real graph edge and the count is
	// exact.
	gdir, err := gen.PowerLaw(gen.PowerLawConfig{NumVertices: 500, AvgDegree: 6, Alpha: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	for v := uint32(0); v < gdir.NumVertices(); v++ {
		for _, w := range gdir.Neighbors(v) {
			if v != w {
				edges = append(edges, graph.Edge{Src: v, Dst: w})
			}
		}
	}
	res, err := graph.Build(edges, graph.BuildOptions{Undirected: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.SortByDegreeDesc(res.Graph).Graph

	var buf bytes.Buffer
	sw, err := NewEdgeStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.New(g, algo.DeepWalk(), core.Config{
		Workers: 2, Seed: 2, StepSink: sw.Sink,
		Part: part.Config{TargetGroups: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	const walkers, steps = 300, 6
	if _, err := e.Run(walkers, steps); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := ReadEdgeStream(&buf, func(f, to graph.VID) {
		n++
		if f == to && g.Degree(f) == 0 {
			return
		}
		if !g.HasEdge(f, to) {
			t.Fatalf("streamed %d→%d not an edge", f, to)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if n != walkers*steps {
		t.Fatalf("streamed %d edges, want %d", n, walkers*steps)
	}
}
