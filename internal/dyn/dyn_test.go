package dyn

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"flashmob/internal/algo"
	"flashmob/internal/core"
	"flashmob/internal/graph"
	"flashmob/internal/part"
	"flashmob/internal/rng"
	"flashmob/internal/walk"
)

// testEdges draws n random directed edges over v vertices.
func testEdges(n int, v uint32, seed uint64) []graph.Edge {
	src := rng.NewXorShift1024Star(seed)
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{Src: rng.Uint32n(src, v), Dst: rng.Uint32n(src, v)}
	}
	return edges
}

// buildBase assembles an undirected external-numbering graph exactly as the
// public facade's BuildGraph does.
func buildBase(t testing.TB, edges []graph.Edge) *graph.CSR {
	t.Helper()
	res, err := graph.Build(edges, graph.BuildOptions{
		Undirected: true, RemoveSelfLoops: true, Dedup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func testConfig() Config {
	return Config{
		Workers: 2, Seed: 17, Undirected: true, RecordHistory: true,
		TargetGroups: 8, MaxBins: 64, Metrics: true,
	}
}

func historiesEqual(a, b *walk.History) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.NumSteps() != b.NumSteps() || a.NumWalkers() != b.NumWalkers() {
		return false
	}
	for i := 0; i < a.NumSteps(); i++ {
		for j := 0; j < a.NumWalkers(); j++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}

// TestCompactedMatchesColdBuild is the PR's central determinism claim: a
// compacted epoch's trajectories are bitwise-identical to a cold System
// built over the same edge set — including new vertices, dropped
// self-loops, and in-batch duplicates in the delta.
func TestCompactedMatchesColdBuild(t *testing.T) {
	base := testEdges(2000, 400, 1)
	delta := testEdges(300, 420, 2)                     // endpoints beyond the base |V|
	delta = append(delta, graph.Edge{Src: 7, Dst: 7})   // self-loop
	delta = append(delta, delta[0], delta[1])           // duplicates
	delta = append(delta, graph.Edge{Src: 450, Dst: 3}) // new vertex

	dynSys, err := New(buildBase(t, base), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer dynSys.Close()
	if _, err := dynSys.Ingest(delta); err != nil {
		t.Fatal(err)
	}
	if _, err := dynSys.Freeze(); err != nil {
		t.Fatal(err)
	}
	if _, err := dynSys.Compact(); err != nil {
		t.Fatal(err)
	}

	coldSys, err := New(buildBase(t, append(append([]graph.Edge{}, base...), delta...)), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer coldSys.Close()

	epDyn, err := dynSys.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer epDyn.Release()
	epCold, err := coldSys.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer epCold.Release()

	if !epDyn.Compacted() {
		t.Fatal("post-compaction epoch still carries an overlay")
	}
	if gd, gc := epDyn.Graph(), epCold.Graph(); gd.NumVertices() != gc.NumVertices() ||
		gd.NumEdges() != gc.NumEdges() {
		t.Fatalf("compacted graph %dv/%de, cold build %dv/%de",
			gd.NumVertices(), gd.NumEdges(), gc.NumVertices(), gc.NumEdges())
	}
	a, err := epDyn.WalkSeeded(context.Background(), 99, 500, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := epCold.WalkSeeded(context.Background(), 99, 500, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !historiesEqual(a.History, b.History) {
		t.Fatal("compacted epoch diverged from cold build of the same edge set")
	}
}

// TestFreezeVisibilityAndDeferral: frozen edges become walkable as overlay
// delta; new-vertex edges defer until compaction grows the vertex space.
func TestFreezeVisibilityAndDeferral(t *testing.T) {
	base := testEdges(2000, 400, 3)
	s, err := New(buildBase(t, base), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ep0, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	baseV := ep0.Graph().NumVertices()
	ep0.Release()

	if _, err := s.Ingest([]graph.Edge{
		{Src: 1, Dst: 390}, {Src: 2, Dst: 391},
		{Src: baseV + 10, Dst: 0}, // deferred: new vertex
	}); err != nil {
		t.Fatal(err)
	}
	id, err := s.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("first freeze published epoch %d, want 2", id)
	}
	ep, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if ep.Compacted() || ep.DeltaEdges() == 0 {
		t.Fatalf("frozen epoch has no overlay delta (delta=%d)", ep.DeltaEdges())
	}
	if ep.DeferredEdges() == 0 {
		t.Fatal("new-vertex edge was not deferred")
	}
	if _, err := ep.WalkSeeded(context.Background(), 5, 300, 4); err != nil {
		t.Fatal(err)
	}
	ep.Release()

	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	ep2, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer ep2.Release()
	if !ep2.Compacted() || ep2.DeferredEdges() != 0 {
		t.Fatal("compaction left an overlay or deferred edges behind")
	}
	if ep2.Graph().NumVertices() <= baseV {
		t.Fatalf("compaction did not grow the vertex space (%d → %d)",
			baseV, ep2.Graph().NumVertices())
	}
	st := s.Stats()
	if st.Epoch != 3 || st.Freezes != 1 || st.Compactions != 1 {
		t.Fatalf("stats after freeze+compact: %+v", st)
	}
}

// TestOverlayEpochSpecRestriction: overlay epochs admit only first-order
// history-free cohorts; the restriction lifts after compaction.
func TestOverlayEpochSpecRestriction(t *testing.T) {
	s, err := New(buildBase(t, testEdges(2000, 400, 4)), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Ingest([]graph.Edge{{Src: 0, Dst: 399}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	ep, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	_, err = ep.WalkMixed(context.Background(), []core.Cohort{
		{Spec: algo.Node2Vec(0.5, 2), Walkers: 100, Steps: 3, Seed: 1},
	})
	ep.Release()
	if err == nil || !strings.Contains(err.Error(), "first-order") {
		t.Fatalf("node2vec on overlay epoch: err = %v, want first-order rejection", err)
	}

	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	ep2, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer ep2.Release()
	if _, err := ep2.WalkMixed(context.Background(), []core.Cohort{
		{Spec: algo.Node2Vec(0.5, 2), Walkers: 100, Steps: 3, Seed: 1},
	}); err != nil {
		t.Fatalf("node2vec on compacted epoch: %v", err)
	}
}

// TestConcurrentWalksAcrossCompactions is the compaction-vs-serve
// interference test (run it under -race): walker goroutines stream walks
// while edges land and compactions fire. In-flight epochs are never
// invalidated (no walk errors), epoch IDs observed by walkers are
// monotone per goroutine, and after everything drains exactly one epoch —
// the current one — remains referenced (no epoch leaks).
func TestConcurrentWalksAcrossCompactions(t *testing.T) {
	s, err := New(buildBase(t, testEdges(3000, 500, 5)), testConfig())
	if err != nil {
		t.Fatal(err)
	}

	const walkers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, walkers)
	for w := 0; w < walkers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			var lastID uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ep, err := s.Acquire()
				if err != nil {
					errCh <- err
					return
				}
				if ep.ID() < lastID {
					ep.Release()
					errCh <- errNonMonotone{ep.ID(), lastID}
					return
				}
				lastID = ep.ID()
				_, err = ep.WalkSeeded(context.Background(), seed+uint64(i), 200, 4)
				ep.Release()
				if err != nil {
					errCh <- err
					return
				}
			}
		}(uint64(100 * (w + 1)))
	}

	src := rng.NewXorShift1024Star(99)
	for round := 0; round < 6; round++ {
		batch := make([]graph.Edge, 40)
		for i := range batch {
			batch[i] = graph.Edge{Src: rng.Uint32n(src, 520), Dst: rng.Uint32n(src, 520)}
		}
		if _, err := s.Ingest(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Freeze(); err != nil {
			t.Fatal(err)
		}
		if round%2 == 1 {
			if _, err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	st := s.Stats()
	if st.Compactions < 3 {
		t.Fatalf("only %d compactions completed, want ≥ 3", st.Compactions)
	}
	if live := st.EpochsCreated - st.EpochsRetired; live != 1 {
		t.Fatalf("epoch leak: %d created − %d retired = %d live, want 1 (the current epoch)",
			st.EpochsCreated, st.EpochsRetired, live)
	}
	s.Close()
	st = s.Stats()
	if st.EpochsCreated != st.EpochsRetired {
		t.Fatalf("after Close: %d created, %d retired", st.EpochsCreated, st.EpochsRetired)
	}
}

type errNonMonotone [2]uint64

func (e errNonMonotone) Error() string {
	return fmt.Sprintf("epoch went backwards: %d after %d", e[0], e[1])
}

// TestAutoCompaction: CompactEvery freezes trigger the background
// compactor.
func TestAutoCompaction(t *testing.T) {
	cfg := testConfig()
	cfg.CompactEvery = 2
	s, err := New(buildBase(t, testEdges(2000, 400, 6)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint32(0); i < 2; i++ {
		if _, err := s.Ingest([]graph.Edge{{Src: i, Dst: 399 - i}}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Freeze(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background compaction never fired")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRejects pins the admission errors: weighted graphs, weighted
// algorithms, weighted delta edges, and use after Close.
func TestRejects(t *testing.T) {
	wres, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1, Weight: 2}, {Src: 1, Dst: 0, Weight: 2}},
		graph.BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(wres.Graph, testConfig()); err == nil {
		t.Fatal("New accepted a weighted graph")
	}

	g := buildBase(t, testEdges(500, 100, 7))
	wcfg := testConfig()
	wcfg.Algorithm = algo.DeepWalk()
	wcfg.Algorithm.Weighted = true
	if _, err := New(g, wcfg); err == nil {
		t.Fatal("New accepted a weighted algorithm")
	}

	s, err := New(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest([]graph.Edge{{Src: 0, Dst: 1, Weight: 1}}); err == nil {
		t.Fatal("Ingest accepted a weighted delta edge")
	}
	s.Close()
	if _, err := s.Ingest([]graph.Edge{{Src: 0, Dst: 1}}); err != ErrClosed {
		t.Fatalf("Ingest after Close: %v, want ErrClosed", err)
	}
	if _, err := s.Acquire(); err != ErrClosed {
		t.Fatalf("Acquire after Close: %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestIncrementalReplanUnderThreshold: with a positive drift threshold and
// a tiny delta, compaction re-solves only a subset of groups.
func TestIncrementalReplanUnderThreshold(t *testing.T) {
	cfg := testConfig()
	cfg.DriftThreshold = 0.2
	s, err := New(buildBase(t, testEdges(4000, 600, 8)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Ingest([]graph.Edge{{Src: 0, Dst: 599}, {Src: 1, Dst: 598}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	ep, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Release()
	numGroups := len(epPlanGroups(ep))
	if st.LastReplanGroups >= numGroups {
		t.Fatalf("threshold 0.2 replanned %d of %d groups; expected partial reuse",
			st.LastReplanGroups, numGroups)
	}
}

// epPlanGroups exposes the epoch build's group decisions for assertions.
func epPlanGroups(e *Epoch) []part.GroupPlan {
	return e.st.bld.plan.Groups
}
