// Package dyn layers dynamic-graph support over the immutable FlashMob
// engine: per-build edge append buffers (delta overlays) on top of the
// degree-sorted CSR, published to walkers through epoch snapshots.
//
// The design keeps the engine's cache discipline intact by never mutating a
// build. Ingest buffers edges; Freeze publishes them as a new epoch whose
// sessions sample touched partitions over base ∪ delta through a
// core.Overlay (untouched partitions keep their specialized kernels and
// stay bitwise-identical to the base build); Compact merges the whole
// delta into a fresh engine build — block-copying untouched adjacency via
// graph.MergeEdges and re-solving the MCKP only for drifted vertex groups
// via part.PlanIncremental — and atomically swaps it in. Walks resolve
// their epoch at acquisition and run to completion on it: an in-flight
// session is never invalidated, and superseded epochs retire (their engine
// closing) once their last reference drains.
//
// Determinism: a compacted epoch's trajectories are bitwise-identical to a
// cold build of the same edge set (MergeEdges reproduces Build of the
// union byte for byte, and the default zero drift threshold makes the
// incremental replan exactly the full MCKP solve). Overlay epochs are
// deterministic per (epoch, seed) — and identical to the base build on
// partitions without delta — but not equal to a cold build of the union,
// whose re-sort renumbers vertices; compaction is the canonicalization
// point.
package dyn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flashmob/internal/algo"
	"flashmob/internal/core"
	"flashmob/internal/graph"
	"flashmob/internal/mem"
	"flashmob/internal/obs"
	"flashmob/internal/part"
	"flashmob/internal/profile"
)

// ErrClosed is returned by every System method after Close.
var ErrClosed = errors.New("dyn: system closed")

// Config tunes a dynamic System.
type Config struct {
	// Algorithm is the walk the engine builds are specialized for (default
	// DeepWalk). Weighted algorithms are rejected: overlay sampling is
	// uniform over base ∪ delta, which has no meaning against alias tables.
	Algorithm algo.Spec
	// Workers is the per-build sampling/shuffling thread count (default
	// GOMAXPROCS).
	Workers int
	// Seed drives all engine randomness, for every build.
	Seed uint64
	// Undirected inserts the reverse of every ingested edge, matching the
	// convention of an undirected base graph.
	Undirected bool
	// TargetGroups and MaxBins are the planner's G and P hyper-parameters
	// (defaults 128 and 2048).
	TargetGroups, MaxBins int
	// PlanWalkers is the walker count the planner prices for (default |V|
	// of each build).
	PlanWalkers uint64
	// CompactEvery, when positive, triggers a background compaction after
	// that many freezes. Zero leaves compaction to explicit Compact calls.
	CompactEvery int
	// DriftThreshold is the relative drift at which a vertex group's MCKP
	// decision is re-solved during compaction (see part.PlanIncremental).
	// The default 0 re-solves every group, which keeps compacted builds
	// bitwise-identical to cold builds of the same edge set; positive
	// thresholds trade that identity for cheaper replans.
	DriftThreshold float64
	// RecordHistory keeps every W_i array of each walk so paths can be
	// produced.
	RecordHistory bool
	// Metrics enables the dyn_* metric set (see docs/OBSERVABILITY.md).
	Metrics bool
	// Model overrides the partition-cost model (default: analytical model
	// on the paper's cache geometry, same as the engine's default).
	Model profile.CostModel
}

// buildState is one immutable engine build plus the bookkeeping the next
// incremental replan needs. Builds are shared by every epoch layered on
// them and close their engine when the last such epoch retires.
type buildState struct {
	// ext is the build's graph in the caller's external numbering (the
	// merge input of the next compaction).
	ext *graph.CSR
	// reorder maps external IDs to the build's internal degree-sorted
	// numbering and back.
	reorder *graph.Reordering
	eng     *core.Engine
	plan    *part.Plan
	// mass is the per-group edge mass recorded when plan was solved — the
	// drift baseline for PlanIncremental.
	mass []uint64
	// vpSteps accumulates observed walker-steps per VP across the build's
	// walks (guarded by stepsMu), the live load signal for replanning.
	stepsMu sync.Mutex
	vpSteps []uint64
	// refs counts epochs referencing this build; the engine closes when it
	// reaches zero.
	refs atomic.Int64
}

// release drops one epoch's reference, closing the engine on the last.
func (b *buildState) release() {
	if b.refs.Add(-1) == 0 {
		b.eng.Close()
	}
}

// snapshotSteps copies the accumulated per-VP walker-step counters.
func (b *buildState) snapshotSteps() []uint64 {
	b.stepsMu.Lock()
	defer b.stepsMu.Unlock()
	out := make([]uint64, len(b.vpSteps))
	copy(out, b.vpSteps)
	return out
}

// addSteps folds one walk's per-VP step counts into the accumulator.
func (b *buildState) addSteps(vpSteps []uint64) {
	b.stepsMu.Lock()
	for i, n := range vpSteps {
		if i < len(b.vpSteps) {
			b.vpSteps[i] += n
		}
	}
	b.stepsMu.Unlock()
}

// epochState is one published snapshot: a build plus an optional frozen
// delta overlay. refs counts outstanding Epoch handles plus one for being
// the system's current epoch; the epoch retires (releasing its build) when
// refs drains after it is superseded.
type epochState struct {
	id  uint64
	bld *buildState
	ov  *core.Overlay
	// deferred counts frozen delta edges invisible to this epoch because
	// they touch vertices beyond the build's vertex space.
	deferred uint64
	refs     atomic.Int64
}

// System is the dynamic-graph subsystem: a current epoch, the
// not-yet-compacted delta, and the compaction machinery. All methods are
// safe for concurrent use; walks acquired before an epoch swap run to
// completion on their snapshot.
type System struct {
	cfg   Config
	model profile.CostModel
	m     *dynMetrics

	mu     sync.Mutex
	closed bool
	cur    *epochState
	// delta holds every accepted edge since the last compaction, in the
	// external numbering, self-loop-filtered and (when configured)
	// undirected-expanded. delta[:frozenLen] is the frozen prefix the
	// current overlay was built from; the rest is pending.
	delta     []graph.Edge
	frozenLen int
	// nextEpoch is the next epoch ID; IDs are monotone across freezes and
	// compactions.
	nextEpoch           uint64
	freezesSinceCompact int
	lastReplan          int
	freezes             uint64
	compactions         uint64

	// compactMu serializes compactions (the long build runs outside mu so
	// ingest, freeze, and walks proceed meanwhile).
	compactMu sync.Mutex

	created atomic.Uint64
	retired atomic.Uint64

	compactCh chan struct{}
	stopCh    chan struct{}
	done      sync.WaitGroup
}

// New builds a dynamic System over a base graph (external numbering,
// unweighted). The graph is not modified; the first epoch is a compacted
// view of exactly this edge set.
func New(g *graph.CSR, cfg Config) (*System, error) {
	if g == nil {
		return nil, fmt.Errorf("dyn: nil graph")
	}
	if g.Weights != nil {
		return nil, fmt.Errorf("dyn: weighted graphs are not supported (overlay sampling is uniform over base ∪ delta)")
	}
	if cfg.Algorithm.Order == 0 {
		cfg.Algorithm = algo.DeepWalk()
	}
	if cfg.Algorithm.Weighted {
		return nil, fmt.Errorf("dyn: weighted algorithms are not supported on dynamic builds")
	}
	s := &System{cfg: cfg, model: cfg.Model, nextEpoch: 1}
	if s.model == nil {
		s.model = profile.NewAnalyticalModel(mem.PaperGeometry())
	}
	if cfg.Metrics {
		s.m = newDynMetrics()
	}
	bld, _, err := s.build(g, nil)
	if err != nil {
		return nil, err
	}
	s.installLocked(&epochState{bld: bld})
	if cfg.CompactEvery > 0 {
		s.compactCh = make(chan struct{}, 1)
		s.stopCh = make(chan struct{})
		s.done.Add(1)
		go s.compactor()
	}
	return s, nil
}

// build constructs one engine build of ext. With a previous build, the
// plan is solved incrementally against its recorded group masses and live
// step counters; otherwise the engine plans from scratch (byte-identical
// to what a cold construction of the same graph would do). Returns the
// build and the number of groups re-solved.
func (s *System) build(ext *graph.CSR, prev *buildState) (*buildState, int, error) {
	reorder := graph.SortByDegreeDesc(ext)
	ccfg := core.Config{
		Workers:       s.cfg.Workers,
		Seed:          s.cfg.Seed,
		Planner:       core.PlannerMCKP,
		Model:         s.model,
		RecordHistory: s.cfg.RecordHistory,
		Part: part.Config{
			TargetGroups: s.cfg.TargetGroups,
			MaxBins:      s.cfg.MaxBins,
			Walkers:      s.cfg.PlanWalkers,
		},
	}
	replanned := 0
	if prev != nil {
		// Mirror the engine's own plan-config defaulting exactly, so a
		// zero drift threshold reproduces the cold build's plan.
		pcfg := ccfg.Part
		pcfg.Model = s.model
		if pcfg.Walkers == 0 {
			pcfg.Walkers = uint64(reorder.Graph.NumVertices())
		}
		plan, n, err := part.PlanIncremental(reorder.Graph, pcfg, prev.plan,
			prev.mass, prev.snapshotSteps(), s.cfg.DriftThreshold)
		if err != nil {
			return nil, 0, err
		}
		ccfg.Plan = plan
		replanned = n
	}
	eng, err := core.New(reorder.Graph, s.cfg.Algorithm, ccfg)
	if err != nil {
		return nil, 0, err
	}
	plan := eng.Plan()
	return &buildState{
		ext:     ext,
		reorder: reorder,
		eng:     eng,
		plan:    plan,
		mass:    part.GroupEdgeMass(reorder.Graph, plan.GroupSizeLog),
		vpSteps: make([]uint64, plan.NumVPs()),
	}, replanned, nil
}

// installLocked publishes ep as the current epoch (caller holds mu, or is
// New before the system escapes): assigns its monotone ID, takes the
// current-pointer reference on it and its build, and releases the
// superseded epoch.
func (s *System) installLocked(ep *epochState) {
	ep.id = s.nextEpoch
	s.nextEpoch++
	ep.refs.Store(1)
	ep.bld.refs.Add(1)
	old := s.cur
	s.cur = ep
	s.created.Add(1)
	if s.m != nil && old != nil {
		s.m.epochSwaps.Inc()
	}
	if old != nil {
		s.releaseEpoch(old)
	}
}

// releaseEpoch drops one reference on ep, retiring it — and releasing its
// build — when the count drains.
func (s *System) releaseEpoch(ep *epochState) {
	if ep.refs.Add(-1) != 0 {
		return
	}
	s.retired.Add(1)
	if s.m != nil {
		s.m.epochsRetired.Inc()
	}
	ep.bld.release()
}

// Ingest buffers a batch of edges (external numbering; new vertex IDs
// beyond the current build's space are allowed and become walkable after
// the next compaction). Self-loops are dropped and, under
// Config.Undirected, reverse edges are inserted — the same normalization a
// cold graph build applies. Returns how many input edges were accepted.
// Buffered edges are invisible to walks until Freeze publishes them.
func (s *System) Ingest(edges []graph.Edge) (int, error) {
	for _, e := range edges {
		if e.Weight != 0 {
			return 0, fmt.Errorf("dyn: weighted delta edge %d→%d", e.Src, e.Dst)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	accepted, before := 0, len(s.delta)
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		s.delta = append(s.delta, graph.Edge{Src: e.Src, Dst: e.Dst})
		if s.cfg.Undirected {
			s.delta = append(s.delta, graph.Edge{Src: e.Dst, Dst: e.Src})
		}
		accepted++
	}
	if s.m != nil {
		s.m.ingestedEdges.Add(uint64(len(s.delta) - before))
		s.m.pendingEdges.Set(int64(len(s.delta) - s.frozenLen))
	}
	return accepted, nil
}

// Freeze publishes every pending edge as a new overlay epoch on the
// current build: walks acquired afterwards sample over base ∪ frozen
// delta. Frozen edges touching vertices beyond the build's vertex space
// are deferred — counted, kept for compaction, but invisible until then.
// Returns the published epoch's ID (the current one when nothing was
// pending). Triggers a background compaction when Config.CompactEvery
// freezes have accumulated.
func (s *System) Freeze() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.frozenLen == len(s.delta) {
		return s.cur.id, nil
	}
	s.frozenLen = len(s.delta)
	ep, err := s.freezeLocked(s.cur.bld)
	if err != nil {
		return 0, err
	}
	s.installLocked(ep)
	s.freezes++
	s.freezesSinceCompact++
	if s.m != nil {
		s.m.freezes.Inc()
		s.m.pendingEdges.Set(0)
		s.m.deltaEdges.Set(int64(ep.ov.DeltaEdges()))
	}
	if s.cfg.CompactEvery > 0 && s.freezesSinceCompact >= s.cfg.CompactEvery {
		select {
		case s.compactCh <- struct{}{}:
		default:
		}
	}
	return ep.id, nil
}

// freezeLocked builds the epoch state for the frozen prefix of the delta
// against the given build: endpoints are mapped into the build's internal
// numbering, unmappable edges deferred, and the overlay assembled.
func (s *System) freezeLocked(bld *buildState) (*epochState, error) {
	n := bld.ext.NumVertices()
	internal := make([]graph.Edge, 0, s.frozenLen)
	deferred := uint64(0)
	for _, e := range s.delta[:s.frozenLen] {
		if e.Src >= n || e.Dst >= n {
			deferred++
			continue
		}
		internal = append(internal, graph.Edge{
			Src: bld.reorder.OldToNew[e.Src],
			Dst: bld.reorder.OldToNew[e.Dst],
		})
	}
	ov, err := core.BuildOverlay(bld.eng, internal)
	if err != nil {
		return nil, fmt.Errorf("dyn: freeze: %w", err)
	}
	if s.m != nil {
		s.m.deferredEdges.Add(deferred)
	}
	return &epochState{bld: bld, ov: ov, deferred: deferred}, nil
}

// Compact merges the whole accumulated delta (frozen and pending alike)
// into a fresh engine build — new vertices included — and publishes it as
// a compacted epoch. The merge block-copies untouched adjacency, and the
// plan is re-solved only for vertex groups whose edge mass or observed
// walker-step share drifted past Config.DriftThreshold. Ingest, Freeze,
// and walks proceed concurrently: edges arriving during the build stay
// in the delta for the next cycle (re-frozen onto the new build if they
// had already been published). Returns the new epoch's ID.
func (s *System) Compact() (uint64, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	prev := s.cur.bld
	k := len(s.delta)
	if k == 0 {
		id := s.cur.id
		s.mu.Unlock()
		return id, nil
	}
	merge := make([]graph.Edge, k)
	copy(merge, s.delta)
	s.mu.Unlock()

	start := time.Now()
	merged, err := graph.MergeEdges(prev.ext, merge, 0)
	if err != nil {
		return 0, fmt.Errorf("dyn: compact: %w", err)
	}
	bld, replanned, err := s.build(merged, prev)
	if err != nil {
		return 0, fmt.Errorf("dyn: compact: %w", err)
	}
	elapsed := time.Since(start)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		bld.eng.Close()
		return 0, ErrClosed
	}
	// Edges ingested while the build ran stay for the next cycle; the
	// compacted prefix is consumed.
	s.delta = append([]graph.Edge(nil), s.delta[k:]...)
	if s.frozenLen > k {
		s.frozenLen -= k
	} else {
		s.frozenLen = 0
	}
	ep := &epochState{bld: bld}
	if s.frozenLen > 0 {
		// Edges frozen during the build were already visible to walkers;
		// re-freeze them onto the new build so the swap does not retract
		// them.
		ep, err = s.freezeLocked(bld)
		if err != nil {
			bld.eng.Close()
			return 0, err
		}
	}
	s.installLocked(ep)
	s.freezesSinceCompact = 0
	s.lastReplan = replanned
	s.compactions++
	if s.m != nil {
		s.m.compactions.Inc()
		s.m.compactionNS.Observe(uint64(elapsed.Nanoseconds()))
		s.m.replanGroups.Observe(uint64(replanned))
		s.m.deltaEdges.Set(int64(ep.ov.DeltaEdges()))
		s.m.pendingEdges.Set(int64(len(s.delta) - s.frozenLen))
	}
	return ep.id, nil
}

// compactor is the background compaction loop, fed by Freeze when
// Config.CompactEvery is reached.
func (s *System) compactor() {
	defer s.done.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.compactCh:
			// Shutdown races a queued signal; Compact checks closed itself.
			if _, err := s.Compact(); err != nil && !errors.Is(err, ErrClosed) {
				// A failed background compaction leaves the current epoch
				// serving; the error surfaces through the next explicit
				// Compact call.
				continue
			}
		}
	}
}

// Close shuts the system down: the compactor stops, the current epoch's
// reference is dropped, and every build closes as its epochs drain.
// Outstanding Epoch handles must be Released before their builds free.
// Idempotent.
func (s *System) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	cur := s.cur
	s.cur = nil
	if s.stopCh != nil {
		close(s.stopCh)
	}
	s.mu.Unlock()
	s.done.Wait()
	if cur != nil {
		s.releaseEpoch(cur)
	}
}

// Epoch is an acquired snapshot: walks on it run against the epoch's build
// and frozen delta no matter how many freezes or compactions land
// meanwhile. Release it when done — the snapshot pins its engine build.
type Epoch struct {
	sys      *System
	st       *epochState
	released atomic.Bool
}

// Acquire pins the current epoch for walking (walk-on-snapshot
// semantics). The returned Epoch must be Released.
func (s *System) Acquire() (*Epoch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.cur.refs.Add(1)
	return &Epoch{sys: s, st: s.cur}, nil
}

// Release drops the snapshot's reference. Idempotent.
func (e *Epoch) Release() {
	if e.released.CompareAndSwap(false, true) {
		e.sys.releaseEpoch(e.st)
	}
}

// ID returns the epoch's monotone identifier.
func (e *Epoch) ID() uint64 { return e.st.id }

// Compacted reports whether the epoch carries no overlay: its edge set is
// entirely inside the engine build, where walks are bitwise-identical to a
// cold build of the same edges.
func (e *Epoch) Compacted() bool { return e.st.ov == nil }

// DeltaEdges returns the epoch's overlay edge count (internal, post-dedup).
func (e *Epoch) DeltaEdges() uint64 { return e.st.ov.DeltaEdges() }

// DeferredEdges returns how many frozen edges this epoch cannot see
// because they touch vertices beyond its build's vertex space.
func (e *Epoch) DeferredEdges() uint64 { return e.st.deferred }

// Reordering maps the epoch build's internal degree-sorted numbering to
// the caller's external IDs and back.
func (e *Epoch) Reordering() *graph.Reordering { return e.st.bld.reorder }

// Graph returns the epoch build's internal degree-sorted CSR (base
// adjacency only; the overlay's delta is not materialized in it).
func (e *Epoch) Graph() *graph.CSR { return e.st.bld.eng.Graph() }

// WalkMixed runs cohorts against the epoch snapshot: base ∪ frozen delta
// on overlay epochs, the build alone on compacted ones. Overlay epochs
// restrict cohorts to first-order history-free algorithms (see
// core.BuildOverlay); compacted epochs accept anything the build supports.
// Cohort walker counts and vertex IDs are in the build's internal
// numbering; map results through Reordering.
func (e *Epoch) WalkMixed(ctx context.Context, cohorts []core.Cohort) (*core.MixedResult, error) {
	sess, err := e.st.bld.eng.NewSessionOverlay(ctx, e.st.ov)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	res, err := sess.RunMixed(cohorts)
	if err != nil {
		return nil, err
	}
	e.st.bld.addSteps(res.VPSteps)
	return res, nil
}

// WalkSeeded runs the build's primary algorithm against the epoch
// snapshot with a per-run seed, the solo-run twin of WalkMixed.
func (e *Epoch) WalkSeeded(ctx context.Context, seed, walkers uint64, steps int) (*core.Result, error) {
	sess, err := e.st.bld.eng.NewSessionOverlay(ctx, e.st.ov)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	res, err := sess.RunSeeded(seed, walkers, steps)
	if err != nil {
		return nil, err
	}
	e.st.bld.addSteps(res.VPSteps)
	return res, nil
}

// Stats is a point-in-time snapshot of the system's dynamic state,
// independent of Config.Metrics.
type Stats struct {
	// Epoch is the current epoch's monotone ID.
	Epoch uint64
	// EpochsCreated and EpochsRetired count epoch lifecycle events; their
	// difference is the number of epochs still referenced.
	EpochsCreated, EpochsRetired uint64
	// PendingEdges counts accepted edges not yet frozen (post-expansion).
	PendingEdges uint64
	// FrozenEdges counts frozen, not-yet-compacted edges (post-expansion,
	// external numbering, pre-dedup).
	FrozenEdges uint64
	// DeltaEdges is the current overlay's edge count (post-dedup).
	DeltaEdges uint64
	// DeferredEdges counts frozen edges awaiting compaction to become
	// walkable (new-vertex endpoints).
	DeferredEdges uint64
	// Freezes and Compactions count completed operations.
	Freezes, Compactions uint64
	// LastReplanGroups is how many vertex groups the most recent
	// compaction re-solved.
	LastReplanGroups int
}

// Stats snapshots the system's dynamic state.
func (s *System) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		EpochsCreated:    s.created.Load(),
		EpochsRetired:    s.retired.Load(),
		PendingEdges:     uint64(len(s.delta) - s.frozenLen),
		FrozenEdges:      uint64(s.frozenLen),
		Freezes:          s.freezes,
		Compactions:      s.compactions,
		LastReplanGroups: s.lastReplan,
	}
	if s.cur != nil {
		st.Epoch = s.cur.id
		st.DeltaEdges = s.cur.ov.DeltaEdges()
		st.DeferredEdges = s.cur.deferred
	}
	return st
}

// MetricsReport snapshots the dyn_* metric set (nil unless
// Config.Metrics).
func (s *System) MetricsReport() *obs.Report {
	if s.m == nil {
		return nil
	}
	return s.m.reg.Snapshot()
}
