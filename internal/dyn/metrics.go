package dyn

import "flashmob/internal/obs"

// dynMetrics is the dynamic-graph subsystem's metric set, resolved once at
// System construction (nil unless Config.Metrics). All counters are
// system-lifetime: unlike engine metrics there is no per-session registry —
// ingest and epoch turnover are system-wide events.
type dynMetrics struct {
	reg *obs.Registry

	ingestedEdges *obs.Counter
	deferredEdges *obs.Counter
	deltaEdges    *obs.Gauge
	pendingEdges  *obs.Gauge
	freezes       *obs.Counter
	epochSwaps    *obs.Counter
	epochsRetired *obs.Counter
	compactions   *obs.Counter
	compactionNS  *obs.Histogram
	replanGroups  *obs.Histogram
}

// newDynMetrics registers the dyn_* metric set on a fresh registry. See
// docs/OBSERVABILITY.md for the metric reference.
func newDynMetrics() *dynMetrics {
	reg := obs.NewRegistry()
	return &dynMetrics{
		reg: reg,
		ingestedEdges: reg.Counter(obs.Desc{Name: "dyn_ingested_edges_total", Unit: "edges", Stage: "dyn",
			Help: "Delta edges accepted by Ingest, after self-loop filtering and undirected expansion."}),
		deferredEdges: reg.Counter(obs.Desc{Name: "dyn_deferred_edges_total", Unit: "edges", Stage: "dyn",
			Help: "Frozen delta edges touching vertices beyond the current build's vertex space, held back from the overlay until the next compaction."}),
		deltaEdges: reg.Gauge(obs.Desc{Name: "dyn_delta_edges", Unit: "edges", Stage: "dyn",
			Help: "Delta edges in the current epoch's overlay (0 on compacted epochs)."}),
		pendingEdges: reg.Gauge(obs.Desc{Name: "dyn_pending_edges", Unit: "edges", Stage: "dyn",
			Help: "Edges ingested but not yet frozen into any epoch."}),
		freezes: reg.Counter(obs.Desc{Name: "dyn_freezes_total", Unit: "count", Stage: "dyn",
			Help: "Freeze calls that published a new overlay epoch."}),
		epochSwaps: reg.Counter(obs.Desc{Name: "dyn_epoch_swaps_total", Unit: "count", Stage: "dyn",
			Help: "Epoch swaps of any kind: freezes plus compactions."}),
		epochsRetired: reg.Counter(obs.Desc{Name: "dyn_epochs_retired_total", Unit: "count", Stage: "dyn",
			Help: "Epochs fully drained and retired (their references reached zero after being superseded)."}),
		compactions: reg.Counter(obs.Desc{Name: "dyn_compactions_total", Unit: "count", Stage: "dyn",
			Help: "Compactions completed: delta merged into a fresh engine build and swapped in."}),
		compactionNS: reg.Histogram(obs.Desc{Name: "dyn_compaction_ns", Unit: "ns", Stage: "dyn",
			Help: "Wall time of each compaction: merge, re-sort, incremental replan, engine build."}),
		replanGroups: reg.Histogram(obs.Desc{Name: "dyn_replan_groups", Unit: "count", Stage: "dyn",
			Help: "Vertex groups re-solved by the incremental planner per compaction (group count on full solves)."}),
	}
}
