// Package apps implements classical random-walk applications from the
// paper's introduction — aggregate estimation over graphs reachable only
// by sampling (Gjoka et al. 2010, Massoulié et al. 2006, Katzir et al.)
// and SimRank similarity (Jeh & Widom 2002) — as Monte-Carlo estimators on
// top of the walk engines. They demonstrate the substrate end to end and
// double as statistical integration tests: each estimator converges to a
// quantity computable exactly on small graphs.
package apps

import (
	"fmt"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

// sampleStationary runs one long uniform walk with burn-in and returns
// every post-burn-in visit — degree-biased (stationary) samples on an
// undirected graph, the standard access model for estimating properties
// of graphs that can only be crawled.
func sampleStationary(g *graph.CSR, samples, burnIn int, seed uint64) ([]graph.VID, error) {
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("apps: empty graph")
	}
	if samples <= 0 {
		return nil, fmt.Errorf("apps: need a positive sample count")
	}
	src := rng.NewXorShift1024Star(seed)
	cur := graph.VID(rng.Uint32n(src, g.NumVertices()))
	out := make([]graph.VID, 0, samples)
	for i := 0; i < burnIn+samples; i++ {
		cur = algo.NextFirstOrder(g, cur, src)
		if i >= burnIn {
			out = append(out, cur)
		}
	}
	return out, nil
}

// EstimateAvgDegree estimates |E|/|V| of an undirected graph from
// stationary walk samples, correcting the degree bias with the harmonic
// mean: under π(v) ∝ deg(v), E[1/deg] = |V| / 2|E|, so the harmonic mean
// of visited degrees is the average degree (Gjoka et al.'s re-weighted
// estimator).
func EstimateAvgDegree(g *graph.CSR, samples int, seed uint64) (float64, error) {
	visits, err := sampleStationary(g, samples, samples/10+100, seed)
	if err != nil {
		return 0, err
	}
	var invSum float64
	for _, v := range visits {
		d := g.Degree(v)
		if d == 0 {
			continue
		}
		invSum += 1 / float64(d)
	}
	if invSum == 0 {
		return 0, fmt.Errorf("apps: all sampled vertices were dead ends")
	}
	return float64(len(visits)) / invSum, nil
}

// EstimateNumVertices estimates |V| of an undirected graph from stationary
// samples using Katzir, Liberty & Somekh's collision estimator:
// n̂ = (Σ 1/deg)(Σ deg) / (number of sample collisions), computed over all
// ordered sample pairs.
func EstimateNumVertices(g *graph.CSR, samples int, seed uint64) (float64, error) {
	visits, err := sampleStationary(g, samples, samples/10+100, seed)
	if err != nil {
		return 0, err
	}
	var sumDeg, sumInv float64
	counts := make(map[graph.VID]int, len(visits))
	for _, v := range visits {
		d := float64(g.Degree(v))
		if d == 0 {
			continue
		}
		sumDeg += d
		sumInv += 1 / d
		counts[v]++
	}
	// Collisions: ordered pairs of identical samples.
	var collisions float64
	for _, c := range counts {
		collisions += float64(c) * float64(c-1)
	}
	if collisions == 0 {
		return 0, fmt.Errorf("apps: no sample collisions — increase the sample count")
	}
	return sumDeg * sumInv / collisions, nil
}

// SimRank estimates the SimRank similarity s(a, b) with decay c by
// Monte-Carlo: two independent reverse walks from a and b; s(a,b) =
// E[c^T] with T the step at which they first meet (0 if they never meet
// within maxSteps). The reverse graph is the transpose; pass the graph
// itself for undirected graphs.
type SimRank struct {
	rev   *graph.CSR
	c     float64
	steps int
}

// NewSimRank prepares an estimator over g with decay c (typically 0.6–0.8)
// and a per-walk step bound.
func NewSimRank(g *graph.CSR, c float64, maxSteps int) (*SimRank, error) {
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("apps: SimRank decay must be in (0,1), got %v", c)
	}
	if maxSteps <= 0 {
		return nil, fmt.Errorf("apps: SimRank needs a positive step bound")
	}
	return &SimRank{rev: graph.Transpose(g), c: c, steps: maxSteps}, nil
}

// Estimate runs `pairs` walk pairs from (a, b) and returns the mean
// decayed first-meeting indicator. s(a,a) is 1 by definition.
func (s *SimRank) Estimate(a, b graph.VID, pairs int, seed uint64) float64 {
	if a == b {
		return 1
	}
	src := rng.NewXorShift1024Star(seed)
	var sum float64
	for i := 0; i < pairs; i++ {
		x, y := a, b
		for t := 1; t <= s.steps; t++ {
			x = algo.NextFirstOrder(s.rev, x, src)
			y = algo.NextFirstOrder(s.rev, y, src)
			if x == y {
				pow := 1.0
				for k := 0; k < t; k++ {
					pow *= s.c
				}
				sum += pow
				break
			}
		}
	}
	return sum / float64(pairs)
}
