package apps

import (
	"math"
	"testing"

	"flashmob/internal/gen"
	"flashmob/internal/graph"
)

func undirected(t *testing.T, n uint32, seed uint64) *graph.CSR {
	t.Helper()
	dir, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: n, AvgDegree: 6, Alpha: 0.7, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	for v := uint32(0); v < dir.NumVertices(); v++ {
		for _, w := range dir.Neighbors(v) {
			if v != w {
				edges = append(edges, graph.Edge{Src: v, Dst: w})
			}
		}
	}
	res, err := graph.Build(edges, graph.BuildOptions{Undirected: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func TestEstimateAvgDegree(t *testing.T) {
	g := undirected(t, 2000, 1)
	got, err := EstimateAvgDegree(g, 200000, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := g.AvgDegree()
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("estimated avg degree %.2f, true %.2f", got, want)
	}
}

func TestEstimateNumVertices(t *testing.T) {
	g := undirected(t, 1500, 3)
	got, err := EstimateNumVertices(g, 120000, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(g.NumVertices())
	if math.Abs(got-want)/want > 0.2 {
		t.Errorf("estimated |V| %.0f, true %.0f", got, want)
	}
}

func TestEstimatorErrors(t *testing.T) {
	g := undirected(t, 100, 5)
	if _, err := EstimateAvgDegree(g, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	empty := &graph.CSR{Offsets: []uint64{0}}
	if _, err := EstimateAvgDegree(empty, 10, 1); err == nil {
		t.Error("empty graph accepted")
	}
}

// simRankExact computes SimRank by fixed-point iteration for reference.
func simRankExact(g *graph.CSR, c float64, iters int) [][]float64 {
	tr := graph.Transpose(g)
	n := int(g.NumVertices())
	s := make([][]float64, n)
	next := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		next[i] = make([]float64, n)
		s[i][i] = 1
	}
	for it := 0; it < iters; it++ {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					next[a][b] = 1
					continue
				}
				ia, ib := tr.Neighbors(uint32(a)), tr.Neighbors(uint32(b))
				if len(ia) == 0 || len(ib) == 0 {
					next[a][b] = 0
					continue
				}
				var sum float64
				for _, x := range ia {
					for _, y := range ib {
						sum += s[x][y]
					}
				}
				next[a][b] = c * sum / float64(len(ia)*len(ib))
			}
		}
		s, next = next, s
	}
	return s
}

func TestSimRankMatchesExact(t *testing.T) {
	// A small directed graph with clear structural similarity: vertices 1
	// and 2 are both pointed at by 0 and 3.
	res, err := graph.Build([]graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2},
		{Src: 3, Dst: 1}, {Src: 3, Dst: 2},
		{Src: 1, Dst: 4}, {Src: 2, Dst: 4},
		{Src: 4, Dst: 0}, {Src: 4, Dst: 3},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	const c = 0.6
	exact := simRankExact(g, c, 15)
	sr, err := NewSimRank(g, c, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]graph.VID{{1, 2}, {0, 3}, {0, 4}} {
		got := sr.Estimate(pair[0], pair[1], 60000, 7)
		want := exact[pair[0]][pair[1]]
		if math.Abs(got-want) > 0.05 {
			t.Errorf("s(%d,%d) = %.3f, exact %.3f", pair[0], pair[1], got, want)
		}
	}
	if sr.Estimate(2, 2, 10, 8) != 1 {
		t.Error("s(a,a) must be 1")
	}
}

func TestSimRankErrors(t *testing.T) {
	g := undirected(t, 50, 9)
	if _, err := NewSimRank(g, 0, 10); err == nil {
		t.Error("decay 0 accepted")
	}
	if _, err := NewSimRank(g, 1, 10); err == nil {
		t.Error("decay 1 accepted")
	}
	if _, err := NewSimRank(g, 0.5, 0); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestTransposeAndInDegrees(t *testing.T) {
	res, err := graph.Build([]graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 2, Dst: 1},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	tr := graph.Transpose(g)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tr.HasEdge(1, 0) || !tr.HasEdge(2, 0) || !tr.HasEdge(1, 2) {
		t.Error("transpose missing reversed edges")
	}
	if tr.HasEdge(0, 1) {
		t.Error("transpose kept a forward edge")
	}
	in := graph.InDegrees(g)
	if in[1] != 2 || in[0] != 0 || in[2] != 1 {
		t.Errorf("in-degrees = %v", in)
	}
	if graph.IsUndirected(g) {
		t.Error("directed graph reported undirected")
	}
	u := undirected(t, 100, 10)
	if !graph.IsUndirected(u) {
		t.Error("undirected graph reported directed")
	}
}
