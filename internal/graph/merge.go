package graph

import (
	"fmt"
	"slices"
)

// SortAdjacency sorts every adjacency list of g in place by target VID,
// carrying weights. This is the exact sort pass Build applies before
// dedup, exported so compaction-style callers can normalize hand-built
// CSRs without going back through the edge-list Build path.
func SortAdjacency(g *CSR) { sortAdjacency(g) }

// DedupAdjacency collapses consecutive duplicate targets in each (sorted)
// adjacency list of g, summing the weights of merged parallel edges, and
// returns the compacted CSR. This is the exact dedup pass Build applies
// after sorting, exported alongside SortAdjacency for compaction callers.
func DedupAdjacency(g *CSR) *CSR { return dedup(g) }

// MergeEdges merges a batch of delta edges into an existing sorted,
// deduplicated, unweighted CSR, producing the CSR that Build would return
// for the union edge set (with Dedup on): each touched vertex's adjacency
// becomes the sorted-unique union of its base list and its delta targets,
// while untouched vertices' adjacency blocks are copied wholesale —
// no per-vertex re-sort, no re-dedup, no edge-list materialization of the
// base graph. numVertices, when nonzero, floors the output vertex count;
// delta endpoints beyond both it and the base extend the vertex space
// (the new vertices start with only their delta edges).
//
// Weighted graphs are rejected: Build's unstable per-vertex sort makes
// the float32 weight-summing order of merged parallel edges depend on the
// input permutation, so a merge could not promise bitwise equality with a
// cold Build of the union. Unweighted sorted-unique unions carry no such
// order dependence. Delta edge weights are ignored.
func MergeEdges(base *CSR, delta []Edge, numVertices uint32) (*CSR, error) {
	if base.Weights != nil {
		return nil, fmt.Errorf("graph: MergeEdges does not support weighted graphs")
	}
	n := base.NumVertices()
	if numVertices > n {
		n = numVertices
	}
	for _, e := range delta {
		if e.Src == NoVertex || e.Dst == NoVertex {
			return nil, fmt.Errorf("graph: vertex ID %#x is reserved", NoVertex)
		}
		if e.Src >= n {
			n = e.Src + 1
		}
		if e.Dst >= n {
			n = e.Dst + 1
		}
	}

	// Order the delta by (source, target) without mutating the caller's
	// slice; each source's targets then form one sorted run.
	sorted := make([]Edge, len(delta))
	copy(sorted, delta)
	slices.SortFunc(sorted, func(a, b Edge) int {
		if a.Src != b.Src {
			if a.Src < b.Src {
				return -1
			}
			return 1
		}
		if a.Dst != b.Dst {
			if a.Dst < b.Dst {
				return -1
			}
			return 1
		}
		return 0
	})

	baseN := base.NumVertices()
	// Sizing pass: the merged degree of every touched vertex.
	offsets := make([]uint64, n+1)
	for v := uint32(0); v < n; v++ {
		if v < baseN {
			offsets[v+1] = uint64(base.Degree(v))
		}
	}
	di := 0
	for di < len(sorted) {
		src := sorted[di].Src
		run := di
		for run < len(sorted) && sorted[run].Src == src {
			run++
		}
		var adj []VID
		if src < baseN {
			adj = base.Neighbors(src)
		}
		offsets[src+1] = uint64(mergedDegree(adj, sorted[di:run]))
		di = run
	}
	for v := uint32(0); v < n; v++ {
		offsets[v+1] += offsets[v]
	}

	// Fill pass: touched vertices merge, the stretches between them are
	// contiguous in both CSRs and copy as single blocks.
	targets := make([]VID, offsets[n])
	di = 0
	copied := VID(0) // first base vertex not yet copied
	for di < len(sorted) {
		src := sorted[di].Src
		run := di
		for run < len(sorted) && sorted[run].Src == src {
			run++
		}
		if src > copied && copied < baseN {
			stop := src
			if stop > baseN {
				stop = baseN
			}
			copy(targets[offsets[copied]:], base.Targets[base.Offsets[copied]:base.Offsets[stop]])
		}
		var adj []VID
		if src < baseN {
			adj = base.Neighbors(src)
		}
		mergeAdjacency(targets[offsets[src]:offsets[src+1]], adj, sorted[di:run])
		copied = src + 1
		di = run
	}
	if copied < baseN {
		copy(targets[offsets[copied]:], base.Targets[base.Offsets[copied]:])
	}
	return &CSR{Offsets: offsets, Targets: targets}, nil
}

// mergedDegree counts the sorted-unique union of a sorted-unique base
// adjacency list and one source's sorted delta run (duplicates within the
// run and against the base both collapse).
func mergedDegree(adj []VID, run []Edge) int {
	d, i := 0, 0
	last := NoVertex
	for _, e := range run {
		t := e.Dst
		if t == last {
			continue
		}
		for i < len(adj) && adj[i] < t {
			d++
			i++
		}
		if i < len(adj) && adj[i] == t {
			continue // already a base edge; counted when adj[i] advances
		}
		d++
		last = t
	}
	return d + (len(adj) - i)
}

// mergeAdjacency writes the sorted-unique union of adj and the delta
// run's targets into dst (sized by mergedDegree).
func mergeAdjacency(dst, adj []VID, run []Edge) {
	k, i := 0, 0
	last := NoVertex
	for _, e := range run {
		t := e.Dst
		if t == last {
			continue
		}
		for i < len(adj) && adj[i] < t {
			dst[k] = adj[i]
			k++
			i++
		}
		if i < len(adj) && adj[i] == t {
			continue
		}
		dst[k] = t
		k++
		last = t
	}
	copy(dst[k:], adj[i:])
}
