package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList checks the text parser never panics and that anything
// it accepts builds into a valid graph.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# comment\n5 5 2.5\n"))
	f.Add([]byte(""))
	f.Add([]byte("4294967295 0\n"))
	f.Add([]byte("1 2 3 4 5\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		edges, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(edges) == 0 {
			return
		}
		res, err := Build(edges, BuildOptions{Dedup: true})
		if err != nil {
			t.Fatalf("parsed edges failed to build: %v", err)
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("built graph invalid: %v", err)
		}
	})
}

// FuzzReadBinary checks the binary reader rejects corrupt input without
// panicking, and that valid graphs round-trip.
func FuzzReadBinary(f *testing.F) {
	g := &CSR{Offsets: []uint64{0, 2, 3}, Targets: []VID{1, 1, 0}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x42, 0x4F, 0x4D, 0x46})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		// Round-trip stability.
		var out bytes.Buffer
		if err := WriteBinary(&out, got); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		again, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if again.NumVertices() != got.NumVertices() || again.NumEdges() != got.NumEdges() {
			t.Fatal("round trip changed shape")
		}
	})
}
