package graph

import (
	"testing"

	"flashmob/internal/rng"
)

// randomEdges draws n directed edges over v vertices (self-loops allowed;
// MergeEdges and Build must agree on them either way).
func randomEdges(n int, v uint32, seed uint64) []Edge {
	src := rng.NewXorShift1024Star(seed)
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{Src: rng.Uint32n(src, v), Dst: rng.Uint32n(src, v)}
	}
	return edges
}

func csrEqual(t *testing.T, a, b *CSR) {
	t.Helper()
	if len(a.Offsets) != len(b.Offsets) {
		t.Fatalf("vertex counts differ: %d vs %d", len(a.Offsets)-1, len(b.Offsets)-1)
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			t.Fatalf("Offsets[%d]: %d vs %d", i, a.Offsets[i], b.Offsets[i])
		}
	}
	if len(a.Targets) != len(b.Targets) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.Targets), len(b.Targets))
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("Targets[%d]: %d vs %d", i, a.Targets[i], b.Targets[i])
		}
	}
}

// TestMergeEdgesEqualsColdBuild: merging a delta into Build(E1) must be
// byte-identical to Build(E1 ∪ E2) with Dedup — the property dynamic-graph
// compaction relies on for its bitwise determinism guarantee.
func TestMergeEdgesEqualsColdBuild(t *testing.T) {
	opts := BuildOptions{Dedup: true}
	for _, tc := range []struct {
		name          string
		baseN, deltaN int
		v             uint32
		seed          uint64
	}{
		{"small", 200, 50, 40, 1},
		{"dense-dups", 2000, 800, 30, 2},
		{"sparse-touch", 5000, 5, 500, 3},
		{"empty-delta", 500, 0, 100, 4},
		{"empty-base", 0, 300, 60, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e1 := randomEdges(tc.baseN, tc.v, tc.seed)
			e2 := randomEdges(tc.deltaN, tc.v, tc.seed+100)
			baseRes, err := Build(e1, opts)
			if err != nil {
				t.Fatal(err)
			}
			merged, err := MergeEdges(baseRes.Graph, e2, 0)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := Build(append(append([]Edge{}, e1...), e2...), opts)
			if err != nil {
				t.Fatal(err)
			}
			csrEqual(t, merged, cold.Graph)
			if err := merged.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMergeEdgesGrowsVertexSpace: delta endpoints beyond the base |V|
// extend the graph, exactly as a cold Build of the union would.
func TestMergeEdgesGrowsVertexSpace(t *testing.T) {
	opts := BuildOptions{Dedup: true}
	e1 := randomEdges(300, 50, 7)
	e2 := []Edge{{Src: 70, Dst: 3}, {Src: 2, Dst: 65}, {Src: 70, Dst: 3}}
	baseRes, err := Build(e1, opts)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeEdges(baseRes.Graph, e2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumVertices() != 71 {
		t.Fatalf("merged |V| = %d, want 71", merged.NumVertices())
	}
	cold, err := Build(append(append([]Edge{}, e1...), e2...), opts)
	if err != nil {
		t.Fatal(err)
	}
	csrEqual(t, merged, cold.Graph)
}

// TestMergeEdgesRejectsWeighted: weighted merges cannot promise bitwise
// equality with a cold Build (float weight-sum order under the unstable
// sort), so they are refused outright.
func TestMergeEdgesRejectsWeighted(t *testing.T) {
	res, err := Build([]Edge{{Src: 0, Dst: 1, Weight: 2}}, BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeEdges(res.Graph, []Edge{{Src: 1, Dst: 0}}, 0); err == nil {
		t.Fatal("MergeEdges accepted a weighted base graph")
	}
}

// TestMergeEdgesAllocs is the merge-path alloc regression test: merging a
// small delta into a large base must allocate only the output arrays plus
// the sorted delta copy — not the per-vertex sort machinery Build pays
// (one closure per vertex). A budget of a dozen allocations holds
// regardless of base size; Build of the same union costs tens of
// thousands.
func TestMergeEdgesAllocs(t *testing.T) {
	base, err := Build(randomEdges(200000, 20000, 11), BuildOptions{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	delta := randomEdges(64, 20000, 12)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := MergeEdges(base.Graph, delta, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 12 {
		t.Fatalf("MergeEdges allocated %.0f times; want <= 12 (untouched adjacency must block-copy)", allocs)
	}
}
