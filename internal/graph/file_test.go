package graph

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, g *CSR) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenFileMatchesInMemory(t *testing.T) {
	g := mustBuild(t, diamondEdges(), BuildOptions{})
	gf, err := OpenFile(writeTemp(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	if gf.NumVertices() != g.NumVertices() || gf.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d", gf.NumVertices(), gf.NumEdges())
	}
	for v := uint32(0); v < g.NumVertices(); v++ {
		if gf.Degree(v) != g.Degree(v) {
			t.Fatalf("Degree(%d) = %d, want %d", v, gf.Degree(v), g.Degree(v))
		}
	}
	// Whole-array read.
	buf := make([]VID, g.NumEdges())
	if err := gf.ReadTargets(0, g.NumEdges(), buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != g.Targets[i] {
			t.Fatalf("target %d: %d vs %d", i, buf[i], g.Targets[i])
		}
	}
	// Per-vertex block reads.
	for v := uint32(0); v < g.NumVertices(); v++ {
		adj := g.Neighbors(v)
		block := make([]VID, len(adj))
		if err := gf.ReadVertexRange(v, v+1, block); err != nil {
			t.Fatal(err)
		}
		for i := range adj {
			if block[i] != adj[i] {
				t.Fatalf("vertex %d block mismatch", v)
			}
		}
	}
}

func TestOpenFileErrors(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(bad, []byte("garbage garbage garbage....."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(bad); err == nil {
		t.Error("garbage file accepted")
	}
}

func TestReadTargetsBounds(t *testing.T) {
	g := mustBuild(t, diamondEdges(), BuildOptions{})
	gf, err := OpenFile(writeTemp(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	buf := make([]VID, 10)
	if err := gf.ReadTargets(0, g.NumEdges()+5, buf); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := gf.ReadTargets(0, 5, buf[:2]); err == nil {
		t.Error("short buffer accepted")
	}
	if err := gf.ReadTargets(3, 3, nil); err != nil {
		t.Errorf("empty read failed: %v", err)
	}
}
