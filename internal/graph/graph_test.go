package graph

import (
	"bytes"
	"testing"
	"testing/quick"

	"flashmob/internal/rng"
)

// diamond returns a small directed test graph:
//
//	0 → 1,2,3   1 → 0,2   2 → 0   3 → (none kept? no: 3 → 0)
func diamondEdges() []Edge {
	return []Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 1, Dst: 0}, {Src: 1, Dst: 2},
		{Src: 2, Dst: 0},
		{Src: 3, Dst: 0},
	}
}

func mustBuild(t *testing.T, edges []Edge, opt BuildOptions) *CSR {
	t.Helper()
	res, err := Build(edges, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return res.Graph
}

func TestBuildBasic(t *testing.T) {
	g := mustBuild(t, diamondEdges(), BuildOptions{})
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 7 {
		t.Fatalf("NumEdges = %d, want 7", g.NumEdges())
	}
	if d := g.Degree(0); d != 3 {
		t.Errorf("Degree(0) = %d, want 3", d)
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Neighbors(1) = %v, want [0 2]", got)
	}
}

func TestBuildUndirected(t *testing.T) {
	g := mustBuild(t, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, BuildOptions{Undirected: true})
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(2, 1) {
		t.Error("reverse edges missing")
	}
}

func TestBuildSelfLoopRemoval(t *testing.T) {
	g := mustBuild(t, []Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}, {Src: 1, Dst: 0}},
		BuildOptions{RemoveSelfLoops: true})
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 after self-loop removal", g.NumEdges())
	}
	if g.HasEdge(0, 0) {
		t.Error("self loop survived")
	}
}

func TestBuildDedup(t *testing.T) {
	edges := []Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 0, Dst: 1, Weight: 2}, {Src: 0, Dst: 2, Weight: 3},
	}
	res, err := Build(edges, BuildOptions{Dedup: true, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 after dedup", g.NumEdges())
	}
	w := g.EdgeWeights(0)
	if w[0] != 3 { // merged weights 1+2
		t.Errorf("merged weight = %v, want 3", w[0])
	}
}

func TestBuildDropZeroDegree(t *testing.T) {
	// Vertex 5 is isolated (appears neither as source nor target) given
	// NumVertices=6; vertices 0..3 participate.
	res, err := Build(diamondEdges(), BuildOptions{NumVertices: 6, DropZeroDegree: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4 after drop", res.Graph.NumVertices())
	}
	if res.Remap == nil {
		t.Fatal("expected non-nil remap")
	}
	if res.Remap[4] != NoVertex || res.Remap[5] != NoVertex {
		t.Errorf("isolated vertices not marked removed: %v", res.Remap)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Errorf("dropped graph invalid: %v", err)
	}
}

func TestBuildKeepsZeroOutDegreeTargets(t *testing.T) {
	// Vertex 2 has no out-edges but is a target; it must be kept so no
	// adjacency list dangles.
	res, err := Build([]Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 0}},
		BuildOptions{NumVertices: 4, DropZeroDegree: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", res.Graph.NumVertices())
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	_, err := Build([]Edge{{Src: 0, Dst: 9}}, BuildOptions{NumVertices: 4})
	if err == nil {
		t.Fatal("expected error for out-of-range target")
	}
}

func TestHasEdge(t *testing.T) {
	g := mustBuild(t, diamondEdges(), BuildOptions{})
	cases := []struct {
		u, w VID
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {0, 3, true}, {0, 0, false},
		{1, 0, true}, {1, 2, true}, {1, 3, false},
		{2, 0, true}, {2, 1, false},
		{3, 0, true}, {3, 2, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.w); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.w, got, c.want)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := mustBuild(t, diamondEdges(), BuildOptions{})
	bad := &CSR{Offsets: append([]uint64{}, g.Offsets...), Targets: append([]VID{}, g.Targets...)}
	bad.Targets[0] = 1000
	if bad.Validate() == nil {
		t.Error("out-of-range target not caught")
	}
	bad2 := &CSR{Offsets: []uint64{0, 5, 2}, Targets: make([]VID, 2)}
	if bad2.Validate() == nil {
		t.Error("non-monotone offsets not caught")
	}
	bad3 := &CSR{Offsets: []uint64{1, 2}, Targets: make([]VID, 1)}
	if bad3.Validate() == nil {
		t.Error("nonzero first offset not caught")
	}
}

func TestSortByDegreeDesc(t *testing.T) {
	g := mustBuild(t, diamondEdges(), BuildOptions{})
	r := SortByDegreeDesc(g)
	if !IsDegreeSorted(r.Graph) {
		t.Fatal("graph not degree sorted")
	}
	if r.Graph.Degree(0) != 3 {
		t.Errorf("new VID 0 degree = %d, want 3 (old vertex 0)", r.Graph.Degree(0))
	}
	// Maps must be inverses.
	for old, nw := range r.OldToNew {
		if r.NewToOld[nw] != VID(old) {
			t.Fatalf("OldToNew/NewToOld not inverse at %d", old)
		}
	}
	// Edge structure preserved: u→w iff new(u)→new(w).
	for u := uint32(0); u < g.NumVertices(); u++ {
		for w := uint32(0); w < g.NumVertices(); w++ {
			if g.HasEdge(u, w) != r.Graph.HasEdge(r.OldToNew[u], r.OldToNew[w]) {
				t.Fatalf("edge (%d,%d) not preserved under relabeling", u, w)
			}
		}
	}
}

func TestSortByDegreeDescStable(t *testing.T) {
	// Ties keep original order: vertices 1..4 all have degree 1.
	edges := []Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2},
		{Src: 1, Dst: 0}, {Src: 2, Dst: 0}, {Src: 3, Dst: 0}, {Src: 4, Dst: 0},
	}
	g := mustBuild(t, edges, BuildOptions{})
	r := SortByDegreeDesc(g)
	want := []VID{0, 1, 2, 3, 4}
	for i, w := range want {
		if r.NewToOld[i] != w {
			t.Fatalf("NewToOld = %v, want %v (stable ties)", r.NewToOld, want)
		}
	}
}

func TestSortByDegreeDescRandomGraph(t *testing.T) {
	src := rng.NewXorShift64Star(17)
	var edges []Edge
	const n = 500
	for i := 0; i < 3000; i++ {
		edges = append(edges, Edge{
			Src: VID(rng.Uint32n(src, n)),
			Dst: VID(rng.Uint32n(src, n)),
		})
	}
	g := mustBuild(t, edges, BuildOptions{NumVertices: n})
	r := SortByDegreeDesc(g)
	if !IsDegreeSorted(r.Graph) {
		t.Fatal("random graph not degree sorted after reorder")
	}
	if r.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", r.Graph.NumEdges(), g.NumEdges())
	}
	if err := r.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Total degree distribution preserved as a multiset.
	oldDeg := g.DegreeSlice()
	newDeg := r.Graph.DegreeSlice()
	hist := map[uint32]int{}
	for _, d := range oldDeg {
		hist[d]++
	}
	for _, d := range newDeg {
		hist[d]--
	}
	for d, c := range hist {
		if c != 0 {
			t.Fatalf("degree %d multiset mismatch (%+d)", d, c)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := mustBuild(t, diamondEdges(), BuildOptions{})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("shape mismatch after round trip")
	}
	for i := range g.Targets {
		if g.Targets[i] != g2.Targets[i] {
			t.Fatalf("targets differ at %d", i)
		}
	}
}

func TestBinaryRoundTripWeighted(t *testing.T) {
	res, err := Build([]Edge{{0, 1, 2.5}, {1, 0, 0.5}}, BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, res.Graph); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Weights == nil || g2.Weights[0] != 2.5 {
		t.Fatalf("weights lost: %v", g2.Weights)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph at all........"))); err == nil {
		t.Fatal("expected error on garbage input")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := mustBuild(t, diamondEdges(), BuildOptions{})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	edges, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2 := mustBuild(t, edges, BuildOptions{})
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Fatal("edge-list round trip changed graph shape")
	}
}

func TestEdgeListComments(t *testing.T) {
	in := "# comment\n% also comment\n\n0 1\n1 0 3.5\n"
	edges, err := ReadEdgeList(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		t.Fatalf("got %d edges, want 2", len(edges))
	}
	if edges[1].Weight != 3.5 {
		t.Errorf("weight = %v, want 3.5", edges[1].Weight)
	}
}

func TestEdgeListBadInput(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 x\n", "0 1 zz\n"} {
		if _, err := ReadEdgeList(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("input %q: expected parse error", in)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	g := mustBuild(t, diamondEdges(), BuildOptions{})
	want := uint64(5*8 + 7*4)
	if got := g.SizeBytes(); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}

func TestRelabelPropertyPreservesEdges(t *testing.T) {
	// Property: relabeling by a random permutation preserves the edge
	// relation.
	f := func(seed uint64) bool {
		src := rng.NewXorShift64Star(seed)
		const n = 60
		var edges []Edge
		for i := 0; i < 200; i++ {
			edges = append(edges, Edge{Src: VID(rng.Uint32n(src, n)), Dst: VID(rng.Uint32n(src, n))})
		}
		res, err := Build(edges, BuildOptions{NumVertices: n, Dedup: true})
		if err != nil {
			return false
		}
		g := res.Graph
		perm := make([]uint32, n)
		rng.Perm(src, perm)
		inv := make([]uint32, n)
		for i, p := range perm {
			inv[p] = uint32(i)
		}
		rg := Relabel(g, perm, inv)
		for u := uint32(0); u < n; u++ {
			for _, w := range g.Neighbors(u) {
				if !rg.HasEdge(perm[u], perm[w]) {
					return false
				}
			}
		}
		return rg.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
