//go:build !linux

package graph

// DropCache is a no-op where posix_fadvise is unavailable; callers fall
// back to warm-cache measurement.
func (gf *File) DropCache() error { return nil }

// AdviseRandom is a no-op where posix_fadvise is unavailable.
func (gf *File) AdviseRandom() error { return nil }
