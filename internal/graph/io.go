package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Binary CSR format (little-endian):
//
//	magic   uint32  = 0x464D4F42 ("BOMF")
//	version uint32  = 1
//	flags   uint32  (bit 0: weighted)
//	nVert   uint32
//	nEdge   uint64
//	offsets [nVert+1]uint64
//	targets [nEdge]uint32
//	weights [nEdge]float32   (only if weighted)
const (
	binMagic     = 0x464D4F42
	binVersion   = 1
	flagWeighted = 1 << 0
)

// WriteBinary serializes g to w in the binary CSR format.
func WriteBinary(w io.Writer, g *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var flags uint32
	if g.Weights != nil {
		flags |= flagWeighted
	}
	hdr := []interface{}{
		uint32(binMagic), uint32(binVersion), flags,
		g.NumVertices(), g.NumEdges(),
	}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("graph: write header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return fmt.Errorf("graph: write offsets: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Targets); err != nil {
		return fmt.Errorf("graph: write targets: %w", err)
	}
	if g.Weights != nil {
		if err := binary.Write(bw, binary.LittleEndian, g.Weights); err != nil {
			return fmt.Errorf("graph: write weights: %w", err)
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a CSR written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, version, flags, nVert uint32
	var nEdge uint64
	for _, p := range []interface{}{&magic, &version, &flags, &nVert, &nEdge} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: read header: %w", err)
		}
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if version != binVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	// Counts come from an untrusted header: allocate incrementally so a
	// corrupt or truncated stream errors out instead of attempting a
	// multi-gigabyte allocation.
	offsets, err := readChunkedU64(br, uint64(nVert)+1)
	if err != nil {
		return nil, fmt.Errorf("graph: read offsets: %w", err)
	}
	targets, err := readChunkedU32(br, nEdge)
	if err != nil {
		return nil, fmt.Errorf("graph: read targets: %w", err)
	}
	g := &CSR{Offsets: offsets, Targets: targets}
	if flags&flagWeighted != 0 {
		raw, err := readChunkedU32(br, nEdge)
		if err != nil {
			return nil, fmt.Errorf("graph: read weights: %w", err)
		}
		g.Weights = make([]float32, len(raw))
		for i, v := range raw {
			g.Weights[i] = math.Float32frombits(v)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// readChunkCap bounds per-step allocation while reading untrusted counts.
const readChunkCap = 1 << 22 // entries per chunk (16-32MB)

// readChunkedU64 reads n little-endian uint64s, growing the buffer in
// bounded chunks so truncated streams fail before large allocations.
func readChunkedU64(r io.Reader, n uint64) ([]uint64, error) {
	out := make([]uint64, 0, min64(n, readChunkCap))
	buf := make([]byte, 8*min64(n, readChunkCap))
	for uint64(len(out)) < n {
		want := min64(n-uint64(len(out)), readChunkCap)
		chunk := buf[:8*want]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return nil, err
		}
		for i := uint64(0); i < want; i++ {
			out = append(out, binary.LittleEndian.Uint64(chunk[8*i:]))
		}
	}
	return out, nil
}

// readChunkedU32 reads n little-endian uint32s with the same strategy.
func readChunkedU32(r io.Reader, n uint64) ([]uint32, error) {
	out := make([]uint32, 0, min64(n, readChunkCap))
	buf := make([]byte, 4*min64(n, readChunkCap))
	for uint64(len(out)) < n {
		want := min64(n-uint64(len(out)), readChunkCap)
		chunk := buf[:4*want]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return nil, err
		}
		for i := uint64(0); i < want; i++ {
			out = append(out, binary.LittleEndian.Uint32(chunk[4*i:]))
		}
	}
	return out, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// ReadEdgeList parses a whitespace-separated "src dst [weight]" edge list
// (SNAP-style), skipping blank lines and lines starting with '#' or '%'.
func ReadEdgeList(r io.Reader) ([]Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source: %w", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target: %w", lineNo, err)
		}
		if src >= uint64(NoVertex) || dst >= uint64(NoVertex) {
			return nil, fmt.Errorf("graph: line %d: vertex ID %#x is reserved", lineNo, NoVertex)
		}
		e := Edge{Src: VID(src), Dst: VID(dst), Weight: 1}
		if len(fields) >= 3 {
			w, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNo, err)
			}
			e.Weight = float32(w)
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan edge list: %w", err)
	}
	return edges, nil
}

// WriteEdgeList emits g as a "src dst" (or "src dst weight") text edge
// list, one edge per line.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for v := uint32(0); v < g.NumVertices(); v++ {
		adj := g.Neighbors(v)
		ws := g.EdgeWeights(v)
		for i, t := range adj {
			var err error
			if ws != nil {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", v, t, ws[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, t)
			}
			if err != nil {
				return fmt.Errorf("graph: write edge list: %w", err)
			}
		}
	}
	return bw.Flush()
}
