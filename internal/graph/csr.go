// Package graph provides the compressed-sparse-row (CSR) graph substrate
// used by all walk engines in the FlashMob reproduction, along with
// construction, degree-ordered renumbering, I/O, and validation.
//
// Vertex IDs are uint32, matching the paper's compact walker messages: a
// walker's entire shuffled state is a single 4-byte VID (§4.3). Edge counts
// use uint64 so multi-billion-edge graphs remain representable.
package graph

import (
	"fmt"
	"math"
	"unsafe"
)

// VID is a vertex identifier. After Reorder, VID 0 is the highest-degree
// vertex, as the paper's partitioner requires (§4.4).
type VID = uint32

// VIDBytes is the on-disk and in-memory size of one VID (and therefore of
// one edge target). Byte accounting throughout the repo derives from this
// constant rather than a literal 4, so a future VID-width change keeps
// block budgets and streamed-byte metrics honest.
const VIDBytes = uint64(unsafe.Sizeof(VID(0)))

// CSR is an immutable compressed-sparse-row adjacency structure.
// Out-edges of vertex v are Targets[Offsets[v]:Offsets[v+1]].
type CSR struct {
	// Offsets has length NumVertices()+1; Offsets[0] == 0 and the slice is
	// non-decreasing.
	Offsets []uint64
	// Targets holds destination VIDs, grouped by source vertex.
	Targets []VID
	// Weights, if non-nil, holds one edge weight per target (same
	// indexing). Nil means the graph is unweighted.
	Weights []float32
}

// NumVertices returns |V|.
func (g *CSR) NumVertices() uint32 { return uint32(len(g.Offsets) - 1) }

// NumEdges returns |E| (directed edge count; an undirected input built with
// both directions counts each edge twice, as in the paper's datasets).
func (g *CSR) NumEdges() uint64 { return uint64(len(g.Targets)) }

// Degree returns the out-degree of v.
func (g *CSR) Degree(v VID) uint32 {
	return uint32(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the out-neighbor slice of v. The slice aliases the
// graph's storage and must not be modified.
func (g *CSR) Neighbors(v VID) []VID {
	return g.Targets[g.Offsets[v]:g.Offsets[v+1]]
}

// EdgeWeights returns the weight slice parallel to Neighbors(v), or nil for
// unweighted graphs.
func (g *CSR) EdgeWeights(v VID) []float32 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// HasEdge reports whether an edge u→w exists, via binary search when the
// adjacency list is sorted (Builder output always is) or linear scan
// otherwise. It is the connectivity check node2vec needs per step.
func (g *CSR) HasEdge(u, w VID) bool {
	adj := g.Neighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == w
}

// MaxDegree returns the largest out-degree in the graph (0 for an empty
// graph).
func (g *CSR) MaxDegree() uint32 {
	var max uint32
	for v := uint32(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns |E|/|V|, or 0 for an empty graph.
func (g *CSR) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumVertices())
}

// SizeBytes returns the in-memory footprint of the CSR arrays, the quantity
// the paper reports as "CSR Size" in Table 4.
func (g *CSR) SizeBytes() uint64 {
	s := uint64(len(g.Offsets))*8 + uint64(len(g.Targets))*4
	if g.Weights != nil {
		s += uint64(len(g.Weights)) * 4
	}
	return s
}

// Validate checks structural invariants: monotone offsets, in-range
// targets, weight array parity. It returns a descriptive error for the
// first violation found.
func (g *CSR) Validate() error {
	if len(g.Offsets) == 0 {
		return fmt.Errorf("graph: empty offsets array")
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph: Offsets[0] = %d, want 0", g.Offsets[0])
	}
	if len(g.Offsets)-1 > math.MaxUint32 {
		return fmt.Errorf("graph: %d vertices exceeds uint32 VID space", len(g.Offsets)-1)
	}
	for i := 1; i < len(g.Offsets); i++ {
		if g.Offsets[i] < g.Offsets[i-1] {
			return fmt.Errorf("graph: Offsets[%d]=%d < Offsets[%d]=%d", i, g.Offsets[i], i-1, g.Offsets[i-1])
		}
	}
	if last := g.Offsets[len(g.Offsets)-1]; last != uint64(len(g.Targets)) {
		return fmt.Errorf("graph: final offset %d != len(Targets) %d", last, len(g.Targets))
	}
	n := g.NumVertices()
	for i, t := range g.Targets {
		if t >= n {
			return fmt.Errorf("graph: Targets[%d]=%d out of range (|V|=%d)", i, t, n)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Targets) {
		return fmt.Errorf("graph: len(Weights)=%d != len(Targets)=%d", len(g.Weights), len(g.Targets))
	}
	return nil
}

// DegreeSlice materializes all out-degrees; helper for sorting and stats.
func (g *CSR) DegreeSlice() []uint32 {
	d := make([]uint32, g.NumVertices())
	for v := range d {
		d[v] = g.Degree(uint32(v))
	}
	return d
}
