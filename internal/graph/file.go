package graph

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"
)

// File provides random block access to a binary CSR on disk without
// loading its edge data: the offsets array (8 bytes/vertex, like
// GraphWalker's index) stays in memory while target blocks are read on
// demand. It is the substrate for the out-of-core engine (the paper's
// §4.5/§7 future-work direction: stream a disk-resident graph through
// DRAM while walkers stay memory-resident).
type File struct {
	f *os.File
	// Offsets is the in-memory CSR offset array (len NumVertices+1).
	Offsets []uint64

	targetsOff int64 // byte offset of the targets array in the file
	numVerts   uint32
	numEdges   uint64
	weighted   bool
}

// binHeaderSize is the fixed header of the binary CSR format: magic,
// version, flags, nVert (uint32 each) + nEdge (uint64).
const binHeaderSize = 4 + 4 + 4 + 4 + 8

// OpenFile opens a binary CSR written by WriteBinary, loading only the
// header and offsets.
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic, version, flags, nVert uint32
	var nEdge uint64
	for _, p := range []interface{}{&magic, &version, &flags, &nVert, &nEdge} {
		if err := binary.Read(f, binary.LittleEndian, p); err != nil {
			f.Close()
			return nil, fmt.Errorf("graph: read file header: %w", err)
		}
	}
	if magic != binMagic || version != binVersion {
		f.Close()
		return nil, fmt.Errorf("graph: %s is not a version-%d binary CSR", path, binVersion)
	}
	offsets := make([]uint64, nVert+1)
	if err := binary.Read(f, binary.LittleEndian, offsets); err != nil {
		f.Close()
		return nil, fmt.Errorf("graph: read file offsets: %w", err)
	}
	gf := &File{
		f:          f,
		Offsets:    offsets,
		targetsOff: int64(binHeaderSize) + int64(nVert+1)*8,
		numVerts:   nVert,
		numEdges:   nEdge,
		weighted:   flags&flagWeighted != 0,
	}
	if offsets[nVert] != nEdge {
		f.Close()
		return nil, fmt.Errorf("graph: file offsets end at %d, header says %d edges", offsets[nVert], nEdge)
	}
	return gf, nil
}

// NumVertices returns |V|.
func (gf *File) NumVertices() uint32 { return gf.numVerts }

// NumEdges returns |E|.
func (gf *File) NumEdges() uint64 { return gf.numEdges }

// Weighted reports whether the file carries edge weights.
func (gf *File) Weighted() bool { return gf.weighted }

// Degree returns the out-degree of v, from the in-memory offsets.
func (gf *File) Degree(v VID) uint32 {
	return uint32(gf.Offsets[v+1] - gf.Offsets[v])
}

// ReadTargets reads the edge targets with indices [lo, hi) into buf, which
// must have capacity for hi-lo entries. One sequential pread per call.
// Allocates a transfer scratch per call; block-streaming hot paths should
// hold a scratch and use ReadTargetsInto instead.
func (gf *File) ReadTargets(lo, hi uint64, buf []VID) error {
	_, err := gf.ReadTargetsInto(lo, hi, buf, nil)
	return err
}

// hostLittleEndian reports whether VID's in-memory layout matches the
// file's little-endian encoding, letting reads land directly in the
// caller's VID buffer with no decode pass.
var hostLittleEndian = func() bool {
	v := VID(1)
	return *(*byte)(unsafe.Pointer(&v)) == 1
}()

// ReadTargetsInto is ReadTargets with a caller-owned transfer scratch:
// on little-endian hosts the pread lands directly in buf's memory (raw
// is untouched); elsewhere raw is the byte buffer the pread lands in
// before decoding, grown when too small and returned for reuse. Either
// way a steady-state block-streaming loop (the out-of-core prefetch
// pipeline) performs zero allocations and zero copies per read beyond
// the transfer itself. Safe for concurrent callers holding distinct
// scratches — the underlying read is a positioned pread.
func (gf *File) ReadTargetsInto(lo, hi uint64, buf []VID, raw []byte) ([]byte, error) {
	if hi < lo || hi > gf.numEdges {
		return raw, fmt.Errorf("graph: target range [%d,%d) out of bounds (|E|=%d)", lo, hi, gf.numEdges)
	}
	n := int(hi - lo)
	if len(buf) < n {
		return raw, fmt.Errorf("graph: buffer holds %d entries, need %d", len(buf), n)
	}
	if n == 0 {
		return raw, nil
	}
	need := n * int(VIDBytes)
	off := gf.targetsOff + int64(lo)*int64(VIDBytes)
	if hostLittleEndian {
		dst := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), need)
		if _, err := gf.f.ReadAt(dst, off); err != nil {
			return raw, fmt.Errorf("graph: read targets [%d,%d): %w", lo, hi, err)
		}
		return raw, nil
	}
	if cap(raw) < need {
		raw = make([]byte, need)
	}
	raw = raw[:need]
	if _, err := gf.f.ReadAt(raw, off); err != nil {
		return raw, fmt.Errorf("graph: read targets [%d,%d): %w", lo, hi, err)
	}
	for i := 0; i < n; i++ {
		buf[i] = VID(binary.LittleEndian.Uint32(raw[i*int(VIDBytes):]))
	}
	return raw, nil
}

// ReadVertexRange reads all targets of vertices [first, last) — the block
// the out-of-core sample stage streams per partition.
func (gf *File) ReadVertexRange(first, last VID, buf []VID) error {
	return gf.ReadTargets(gf.Offsets[first], gf.Offsets[last], buf)
}

// Close releases the file handle.
func (gf *File) Close() error { return gf.f.Close() }

var _ io.Closer = (*File)(nil)
