package graph

// Reordering is the result of a vertex renumbering: the graph with new IDs
// plus both direction maps.
type Reordering struct {
	Graph *CSR
	// OldToNew[old] = new VID.
	OldToNew []VID
	// NewToOld[new] = old VID.
	NewToOld []VID
}

// SortByDegreeDesc renumbers vertices in descending out-degree order using
// a counting sort keyed on degree, the O(|V| + maxDegree) pre-processing
// step the paper measures at 7.7s on the 720M-vertex YahooWeb graph (§5.2).
// Ties keep their original relative order (the sort is stable), so the
// renumbering is deterministic.
//
// After this step VID 0 is the highest-degree vertex and the degree
// sequence is non-increasing — the invariant every FlashMob partitioning
// routine assumes.
func SortByDegreeDesc(g *CSR) *Reordering {
	oldToNew, newToOld := DegreeRank(g)
	return &Reordering{
		Graph:    Relabel(g, oldToNew, newToOld),
		OldToNew: oldToNew,
		NewToOld: newToOld,
	}
}

// DegreeRank computes the degree-descending renumbering maps without
// materializing the relabeled graph — the counting-sort step whose cost
// the paper reports in isolation (§5.2: 7.7s on YahooWeb). Use
// SortByDegreeDesc to also produce the relabeled CSR.
func DegreeRank(g *CSR) (oldToNew, newToOld []VID) {
	n := g.NumVertices()
	deg := g.DegreeSlice()
	maxD := uint32(0)
	for _, d := range deg {
		if d > maxD {
			maxD = d
		}
	}
	// Counting sort, descending: bucket b holds vertices of degree
	// (maxD - b) so a forward prefix sum yields descending placement.
	counts := make([]uint64, maxD+2)
	for _, d := range deg {
		counts[maxD-d+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	newToOld = make([]VID, n)
	oldToNew = make([]VID, n)
	for v := uint32(0); v < n; v++ {
		b := maxD - deg[v]
		pos := counts[b]
		counts[b]++
		newToOld[pos] = v
		oldToNew[v] = VID(pos)
	}
	return oldToNew, newToOld
}

// Relabel produces a new CSR in which vertex old v becomes oldToNew[v].
// Adjacency lists are re-sorted under the new numbering so HasEdge binary
// search stays valid.
func Relabel(g *CSR, oldToNew, newToOld []VID) *CSR {
	n := g.NumVertices()
	offsets := make([]uint64, n+1)
	for nv := uint32(0); nv < n; nv++ {
		offsets[nv+1] = offsets[nv] + uint64(g.Degree(newToOld[nv]))
	}
	targets := make([]VID, len(g.Targets))
	var weights []float32
	if g.Weights != nil {
		weights = make([]float32, len(g.Weights))
	}
	for nv := uint32(0); nv < n; nv++ {
		ov := newToOld[nv]
		adj := g.Neighbors(ov)
		w := g.EdgeWeights(ov)
		base := offsets[nv]
		for i, t := range adj {
			targets[base+uint64(i)] = oldToNew[t]
			if weights != nil {
				weights[base+uint64(i)] = w[i]
			}
		}
	}
	ng := &CSR{Offsets: offsets, Targets: targets, Weights: weights}
	sortAdjacency(ng)
	return ng
}

// IsDegreeSorted reports whether the degree sequence is non-increasing,
// i.e. whether g already satisfies the FlashMob vertex-ordering invariant.
func IsDegreeSorted(g *CSR) bool {
	n := g.NumVertices()
	for v := uint32(1); v < n; v++ {
		if g.Degree(v) > g.Degree(v-1) {
			return false
		}
	}
	return true
}
