package graph

// Transpose returns the reverse graph: an edge u→v becomes v→u. Weights
// follow their edges. SimRank-style applications walk the transpose.
func Transpose(g *CSR) *CSR {
	n := g.NumVertices()
	offsets := make([]uint64, n+1)
	for _, t := range g.Targets {
		offsets[t+1]++
	}
	for i := uint32(1); i <= n; i++ {
		offsets[i] += offsets[i-1]
	}
	targets := make([]VID, len(g.Targets))
	var weights []float32
	if g.Weights != nil {
		weights = make([]float32, len(g.Weights))
	}
	cursor := make([]uint64, n)
	copy(cursor, offsets[:n])
	for v := uint32(0); v < n; v++ {
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for i, t := range adj {
			p := cursor[t]
			targets[p] = v
			if weights != nil {
				weights[p] = w[i]
			}
			cursor[t] = p + 1
		}
	}
	out := &CSR{Offsets: offsets, Targets: targets, Weights: weights}
	sortAdjacency(out)
	return out
}

// InDegrees returns the in-degree of every vertex.
func InDegrees(g *CSR) []uint32 {
	in := make([]uint32, g.NumVertices())
	for _, t := range g.Targets {
		in[t]++
	}
	return in
}

// IsUndirected reports whether every edge has a reverse edge (multi-edges
// must match in multiplicity).
func IsUndirected(g *CSR) bool {
	n := g.NumVertices()
	// Count occurrences of each directed edge and its reverse via two
	// passes over sorted adjacency lists of g and its transpose; equality
	// of the two CSRs' target arrays per vertex is exactly the symmetric
	// condition.
	tr := Transpose(g)
	for v := uint32(0); v < n; v++ {
		a, b := g.Neighbors(v), tr.Neighbors(v)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}
