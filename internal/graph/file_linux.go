//go:build linux

package graph

import "syscall"

// DropCache asks the kernel to evict the file's cached pages
// (posix_fadvise POSIX_FADV_DONTNEED), so subsequent reads hit storage.
// Out-of-core benchmarks use it to measure the steady disk-resident
// state honestly: a just-written graph file is page-cache-hot, and warm
// "reads" are memcpys that neither block nor overlap. Dirty pages are
// not evicted — sync the file first.
func (gf *File) DropCache() error {
	const posixFadvDontneed = 4
	if _, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64,
		gf.f.Fd(), 0, 0, posixFadvDontneed, 0, 0); errno != 0 {
		return errno
	}
	return nil
}

// AdviseRandom disables kernel readahead on the file (posix_fadvise
// POSIX_FADV_RANDOM). The out-of-core engine sets it in cold-cache
// mode: the engine's prefetch ring already reads exactly the blocks it
// needs ahead of time, and kernel readahead beyond them both distorts
// measurement (it hides device time the modeled DRAM-constrained system
// would pay) and pollutes a cache the regime says is too small to help.
func (gf *File) AdviseRandom() error {
	const posixFadvRandom = 1
	if _, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64,
		gf.f.Fd(), 0, 0, posixFadvRandom, 0, 0); errno != 0 {
		return errno
	}
	return nil
}
