package graph

import (
	"fmt"
	"sort"
)

// Edge is one directed input edge for Builder.
type Edge struct {
	Src, Dst VID
	Weight   float32
}

// BuildOptions controls CSR construction from an edge list.
type BuildOptions struct {
	// NumVertices, if nonzero, fixes |V|; otherwise it is 1 + the maximum
	// endpoint seen.
	NumVertices uint32
	// Undirected inserts the reverse of every edge as well, matching how
	// the paper's social-network datasets are used.
	Undirected bool
	// RemoveSelfLoops drops edges with Src == Dst.
	RemoveSelfLoops bool
	// Dedup collapses parallel edges (after the undirected expansion).
	Dedup bool
	// DropZeroDegree renumbers away vertices with no out-edges, as the
	// paper does for its datasets ("0-degree vertices removed", Table 4).
	// The returned Remap (old→new) records the renumbering.
	DropZeroDegree bool
	// Weighted keeps edge weights; otherwise weights are discarded.
	Weighted bool
}

// BuildResult is the output of Build: the CSR plus the vertex renumbering
// applied (identity unless DropZeroDegree removed vertices).
type BuildResult struct {
	Graph *CSR
	// Remap maps original VIDs to new VIDs; NoVertex marks removed ones.
	// Nil when no renumbering happened.
	Remap []VID
}

// NoVertex marks a removed vertex in a remap table.
const NoVertex = VID(0xFFFFFFFF)

// Build constructs a sorted-adjacency CSR from edges. Adjacency lists are
// sorted by target VID so HasEdge can binary search.
func Build(edges []Edge, opt BuildOptions) (*BuildResult, error) {
	n := opt.NumVertices
	for _, e := range edges {
		// NoVertex (0xFFFFFFFF) is reserved as the removed-vertex sentinel,
		// and e.Src+1 below would overflow on it.
		if e.Src == NoVertex || e.Dst == NoVertex {
			return nil, fmt.Errorf("graph: vertex ID %#x is reserved", NoVertex)
		}
		if e.Src >= n {
			if opt.NumVertices != 0 {
				return nil, fmt.Errorf("graph: edge source %d >= NumVertices %d", e.Src, opt.NumVertices)
			}
			n = e.Src + 1
		}
		if e.Dst >= n {
			if opt.NumVertices != 0 {
				return nil, fmt.Errorf("graph: edge target %d >= NumVertices %d", e.Dst, opt.NumVertices)
			}
			n = e.Dst + 1
		}
	}

	// Materialize the working edge set (expanding undirected edges).
	work := make([]Edge, 0, len(edges)*2)
	for _, e := range edges {
		if opt.RemoveSelfLoops && e.Src == e.Dst {
			continue
		}
		work = append(work, e)
		if opt.Undirected && e.Src != e.Dst {
			work = append(work, Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
		}
	}

	// Counting pass for CSR offsets.
	deg := make([]uint64, n+1)
	for _, e := range work {
		deg[e.Src+1]++
	}
	offsets := make([]uint64, n+1)
	for i := uint32(1); i <= n; i++ {
		offsets[i] = offsets[i-1] + deg[i]
	}
	targets := make([]VID, len(work))
	var weights []float32
	if opt.Weighted {
		weights = make([]float32, len(work))
	}
	cursor := make([]uint64, n)
	copy(cursor, offsets[:n])
	for _, e := range work {
		p := cursor[e.Src]
		targets[p] = e.Dst
		if weights != nil {
			weights[p] = e.Weight
		}
		cursor[e.Src] = p + 1
	}

	g := &CSR{Offsets: offsets, Targets: targets, Weights: weights}
	sortAdjacency(g)
	if opt.Dedup {
		g = dedup(g)
	}

	res := &BuildResult{Graph: g}
	if opt.DropZeroDegree {
		res.Graph, res.Remap = dropZeroDegree(g)
	}
	if err := res.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("graph: built graph invalid: %w", err)
	}
	return res, nil
}

// sortAdjacency sorts each adjacency list by target, carrying weights.
func sortAdjacency(g *CSR) {
	for v := uint32(0); v < g.NumVertices(); v++ {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		adj := g.Targets[lo:hi]
		if g.Weights == nil {
			sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
			continue
		}
		w := g.Weights[lo:hi]
		idx := make([]int, len(adj))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return adj[idx[i]] < adj[idx[j]] })
		na := make([]VID, len(adj))
		nw := make([]float32, len(w))
		for i, k := range idx {
			na[i], nw[i] = adj[k], w[k]
		}
		copy(adj, na)
		copy(w, nw)
	}
}

// dedup collapses consecutive duplicate targets in each (sorted) adjacency
// list, summing weights of merged parallel edges.
func dedup(g *CSR) *CSR {
	n := g.NumVertices()
	offsets := make([]uint64, n+1)
	targets := make([]VID, 0, len(g.Targets))
	var weights []float32
	if g.Weights != nil {
		weights = make([]float32, 0, len(g.Weights))
	}
	for v := uint32(0); v < n; v++ {
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for i := 0; i < len(adj); i++ {
			if i > 0 && adj[i] == adj[i-1] {
				if weights != nil {
					weights[len(weights)-1] += w[i]
				}
				continue
			}
			targets = append(targets, adj[i])
			if weights != nil {
				weights = append(weights, w[i])
			}
		}
		offsets[v+1] = uint64(len(targets))
	}
	return &CSR{Offsets: offsets, Targets: targets, Weights: weights}
}

// dropZeroDegree removes vertices with zero out-degree, renumbering the
// survivors densely in their original relative order. Targets pointing at a
// removed vertex are impossible only in one direction: a removed vertex has
// no out-edges but may still be a target; such targets would dangle, so any
// vertex that appears as a target is kept even with zero out-degree. (The
// paper's datasets remove vertices isolated in both roles.)
func dropZeroDegree(g *CSR) (*CSR, []VID) {
	n := g.NumVertices()
	keep := make([]bool, n)
	for v := uint32(0); v < n; v++ {
		if g.Degree(v) > 0 {
			keep[v] = true
		}
	}
	for _, t := range g.Targets {
		keep[t] = true
	}
	remap := make([]VID, n)
	var next VID
	for v := uint32(0); v < n; v++ {
		if keep[v] {
			remap[v] = next
			next++
		} else {
			remap[v] = NoVertex
		}
	}
	if next == VID(n) {
		return g, nil // nothing removed
	}
	offsets := make([]uint64, next+1)
	targets := make([]VID, len(g.Targets))
	var weights []float32
	if g.Weights != nil {
		weights = make([]float32, len(g.Weights))
	}
	var pos uint64
	for v := uint32(0); v < n; v++ {
		if !keep[v] {
			continue
		}
		nv := remap[v]
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for i, t := range adj {
			targets[pos] = remap[t]
			if weights != nil {
				weights[pos] = w[i]
			}
			pos++
		}
		offsets[nv+1] = pos
	}
	return &CSR{Offsets: offsets, Targets: targets[:pos], Weights: weights}, remap
}
