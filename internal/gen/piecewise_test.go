package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flashmob/internal/rng"
)

// bucketSharesOf measures the realized edge share of each Table 2-style
// bucket in a descending degree sequence.
func bucketSharesOf(deg []uint32, fractions []float64) []float64 {
	var total uint64
	for _, d := range deg {
		total += uint64(d)
	}
	out := make([]float64, len(fractions))
	lo := 0
	for i, f := range fractions {
		hi := int(f * float64(len(deg)))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(deg) {
			hi = len(deg)
		}
		var s uint64
		for r := lo; r < hi; r++ {
			s += uint64(deg[r])
		}
		out[i] = float64(s) / float64(total)
		lo = hi
	}
	return out
}

func TestPiecewiseMatchesAllBuckets(t *testing.T) {
	fractions := []float64{0.01, 0.05, 0.25, 1.00}
	for _, p := range Presets {
		for _, n := range []uint32{20_000, 120_000} {
			deg, err := DegreeSequencePiecewise(n, p.AvgDegree, p.Buckets(), 0)
			if err != nil {
				t.Fatalf("%s n=%d: %v", p.Name, n, err)
			}
			if len(deg) != int(n) {
				t.Fatalf("%s: wrong length", p.Name)
			}
			// Monotone non-increasing.
			for i := 1; i < len(deg); i++ {
				if deg[i] > deg[i-1] {
					t.Fatalf("%s: not monotone at %d", p.Name, i)
				}
			}
			got := bucketSharesOf(deg, fractions)
			want := p.Buckets()
			lo := 0.0
			for b := range got {
				frac := fractions[b] - lo
				lo = fractions[b]
				targetMean := want[b].EdgeShare * p.AvgDegree / frac
				if targetMean < 1 {
					// Physically infeasible with integer degrees ≥ 1 (the
					// paper's own Table 2 rows are not exactly mutually
					// consistent here): the bucket can't go below
					// frac/avgDeg, so only bound the overshoot.
					minFeasible := frac / p.AvgDegree
					if got[b] > minFeasible+0.05 {
						t.Errorf("%s n=%d bucket %d: share %.3f exceeds floor bound %.3f",
							p.Name, n, b, got[b], minFeasible+0.05)
					}
					continue
				}
				if math.Abs(got[b]-want[b].EdgeShare) > 0.03 {
					t.Errorf("%s n=%d bucket %d: share %.3f, want %.3f",
						p.Name, n, b, got[b], want[b].EdgeShare)
				}
			}
			// Average degree near target (degree-1 floor inflates small
			// buckets slightly).
			var sum uint64
			for _, d := range deg {
				sum += uint64(d)
			}
			avg := float64(sum) / float64(n)
			if math.Abs(avg-p.AvgDegree)/p.AvgDegree > 0.15 {
				t.Errorf("%s n=%d: avg degree %.2f, want ≈%.2f", p.Name, n, avg, p.AvgDegree)
			}
		}
	}
}

func TestPiecewiseBucketMeansDecrease(t *testing.T) {
	// Bucket mean degrees must be strictly decreasing, as in Table 2's D̄
	// row.
	p, _ := PresetByName("TW")
	deg, err := DegreeSequencePiecewise(50_000, p.AvgDegree, p.Buckets(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fractions := []float64{0.01, 0.05, 0.25, 1.00}
	lo := 0
	prev := math.Inf(1)
	for _, f := range fractions {
		hi := int(f * 50_000)
		var s uint64
		for r := lo; r < hi; r++ {
			s += uint64(deg[r])
		}
		mean := float64(s) / float64(hi-lo)
		if mean >= prev {
			t.Fatalf("bucket means not decreasing: %v then %v", prev, mean)
		}
		prev = mean
		lo = hi
	}
}

func TestPiecewiseErrors(t *testing.T) {
	good := []BucketShare{{0.5, 0.7}, {1.0, 0.3}}
	if _, err := DegreeSequencePiecewise(0, 5, good, 8); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := DegreeSequencePiecewise(100, 0.5, good, 8); err == nil {
		t.Error("avg degree < 1 accepted")
	}
	if _, err := DegreeSequencePiecewise(100, 5, nil, 8); err == nil {
		t.Error("no buckets accepted")
	}
	bad := []BucketShare{{0.5, 0.5}, {0.4, 0.5}}
	if _, err := DegreeSequencePiecewise(100, 5, bad, 8); err == nil {
		t.Error("non-increasing fractions accepted")
	}
	bad2 := []BucketShare{{0.5, 0.5}, {0.9, 0.5}}
	if _, err := DegreeSequencePiecewise(100, 5, bad2, 8); err == nil {
		t.Error("fractions not reaching 1 accepted")
	}
	bad3 := []BucketShare{{0.5, 0.9}, {1.0, 0.3}}
	if _, err := DegreeSequencePiecewise(100, 5, bad3, 8); err == nil {
		t.Error("shares not summing to 1 accepted")
	}
}

func TestPresetGeneratePiecewiseShares(t *testing.T) {
	// The generated graph (not just the sequence) realizes the Table 2
	// bucket shares.
	p, _ := PresetByName("FS")
	g, err := p.Generate(p.FullVertices/30_000, 17)
	if err != nil {
		t.Fatal(err)
	}
	deg := g.DegreeSlice()
	// Generated graphs are degree-sorted already.
	got := bucketSharesOf(deg, []float64{0.01, 0.05, 0.25, 1.00})
	want := p.Buckets()
	for b := range got {
		if math.Abs(got[b]-want[b].EdgeShare) > 0.03 {
			t.Errorf("bucket %d: share %.3f, want %.3f", b, got[b], want[b].EdgeShare)
		}
	}
}

func TestPiecewiseRandomBucketConfigs(t *testing.T) {
	// Property: for random consistent bucket configurations whose targets
	// are feasible (target means ≥ 1 and decreasing), realized shares hit
	// targets within a few percent.
	f := func(seed uint64) bool {
		src := rng.NewXorShift64Star(seed)
		// Random fractions and decreasing bucket means.
		f1 := 0.01 + rng.Float64(src)*0.04
		f2 := f1 + 0.05 + rng.Float64(src)*0.15
		f3 := f2 + 0.2 + rng.Float64(src)*0.3
		fractions := []float64{f1, f2, f3, 1}
		// Means decreasing by at least 2x per bucket, tail ≥ 1.5.
		means := make([]float64, 4)
		means[3] = 1.5 + rng.Float64(src)*2
		for i := 2; i >= 0; i-- {
			means[i] = means[i+1] * (2.5 + rng.Float64(src)*4)
		}
		var buckets []BucketShare
		var total float64
		lo := 0.0
		for i := range fractions {
			share := means[i] * (fractions[i] - lo)
			buckets = append(buckets, BucketShare{UpperFrac: fractions[i], EdgeShare: share})
			total += share
			lo = fractions[i]
		}
		for i := range buckets {
			buckets[i].EdgeShare /= total
		}
		const n = 30000
		deg, err := DegreeSequencePiecewise(n, total, buckets, 0)
		if err != nil {
			return false
		}
		// Monotone and bucket shares within 4 points.
		for i := 1; i < len(deg); i++ {
			if deg[i] > deg[i-1] {
				return false
			}
		}
		got := bucketSharesOf(deg, fractions)
		for b := range got {
			if math.Abs(got[b]-buckets[b].EdgeShare) > 0.04 {
				return false
			}
		}
		return true
	}
	// Pin the input stream: quick.Check's default Rand is time-seeded, and
	// rare bucket configurations sit right on the tolerance, which made
	// this test flake in CI. The property still covers 15 distinct
	// configurations — just the same 15 every run.
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
