package gen

import (
	"fmt"
	"sort"

	"flashmob/internal/graph"
)

// Preset describes one of the paper's datasets (Table 4) as a power-law
// profile. FullVertices/AvgDegree come from Table 4; Alpha is fitted so the
// top-1% degree group's edge share matches Table 2 (for a rank-degree curve
// d(r) ∝ (r+1)^-α, the top fraction f of vertices holds ≈ f^(1-α) of the
// edges, so α = 1 - ln(share)/ln(f) with f = 0.01).
type Preset struct {
	// Name is the paper's two-letter dataset code.
	Name string
	// FullVertices is the paper's |V| (Table 4, 0-degree removed).
	FullVertices uint32
	// AvgDegree is the paper's |E|/|V|.
	AvgDegree float64
	// Alpha is the fitted rank-degree exponent.
	Alpha float64
	// Top1EdgeShare is the paper's Table 2 top-1% edge share, kept for
	// validation.
	Top1EdgeShare float64
	// EdgeShares is the full Table 2 |E| row: the edge share of the
	// <1%, 1–5%, 5–25%, and 25–100% degree-percentile buckets.
	EdgeShares [4]float64
}

// Presets lists the five datasets of Table 4 in the paper's order.
var Presets = []Preset{
	{Name: "YT", FullVertices: 1_140_000, AvgDegree: 4.34, Alpha: 0.796, Top1EdgeShare: 0.390,
		EdgeShares: [4]float64{0.390, 0.219, 0.243, 0.149}},
	{Name: "TW", FullVertices: 41_650_000, AvgDegree: 35.3, Alpha: 0.846, Top1EdgeShare: 0.491,
		EdgeShares: [4]float64{0.491, 0.207, 0.179, 0.123}},
	{Name: "FS", FullVertices: 65_610_000, AvgDegree: 27.6, Alpha: 0.636, Top1EdgeShare: 0.187,
		EdgeShares: [4]float64{0.187, 0.269, 0.412, 0.132}},
	{Name: "UK", FullVertices: 131_810_000, AvgDegree: 41.8, Alpha: 0.833, Top1EdgeShare: 0.464,
		EdgeShares: [4]float64{0.464, 0.158, 0.208, 0.170}},
	{Name: "YH", FullVertices: 720_240_000, AvgDegree: 9.22, Alpha: 0.834, Top1EdgeShare: 0.465,
		EdgeShares: [4]float64{0.465, 0.169, 0.238, 0.128}},
}

// Buckets returns the preset's Table 2 buckets with shares normalized to
// sum exactly to 1 (the paper's rows carry rounding).
func (p Preset) Buckets() []BucketShare {
	fractions := []float64{0.01, 0.05, 0.25, 1.00}
	var sum float64
	for _, s := range p.EdgeShares {
		sum += s
	}
	out := make([]BucketShare, 4)
	for i := range out {
		out[i] = BucketShare{UpperFrac: fractions[i], EdgeShare: p.EdgeShares[i] / sum}
	}
	return out
}

// PresetByName returns the preset with the given two-letter code.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("gen: unknown preset %q (have YT, TW, FS, UK, YH)", name)
}

// Config produces the PowerLawConfig for this preset scaled down by factor
// scaleDiv (so |V| = FullVertices/scaleDiv, same average degree). The
// exponent α is re-fitted at the scaled size so the top-1% edge share
// still matches the paper's Table 2 value — the finite-size correction
// matters below a few million vertices.
func (p Preset) Config(scaleDiv uint32, seed uint64) PowerLawConfig {
	if scaleDiv == 0 {
		scaleDiv = 1
	}
	n := p.FullVertices / scaleDiv
	if n < 1024 {
		n = 1024
	}
	return PowerLawConfig{
		NumVertices: n,
		AvgDegree:   p.AvgDegree,
		Alpha:       FitAlpha(n, p.AvgDegree, 1, 0.01, p.Top1EdgeShare),
		MinDegree:   1,
		Seed:        seed,
	}
}

// Generate builds the scaled synthetic stand-in for this preset: a
// piecewise power-law degree sequence matching all four Table 2 bucket
// shares, wired with degree-proportional (Chung-Lu) targets.
func (p Preset) Generate(scaleDiv uint32, seed uint64) (*graph.CSR, error) {
	cfg := p.Config(scaleDiv, seed)
	deg, err := DegreeSequencePiecewise(cfg.NumVertices, p.AvgDegree, p.Buckets(), 0)
	if err != nil {
		return nil, err
	}
	return Wire(deg, seed)
}

// TopShare computes the fraction of edges held by the top fraction f of
// vertices when ordered by descending degree. It is the quantity the α fit
// targets; tests compare it against Top1EdgeShare.
func TopShare(g *graph.CSR, f float64) float64 {
	deg := g.DegreeSlice()
	sort.Slice(deg, func(i, j int) bool { return deg[i] > deg[j] })
	k := int(f * float64(len(deg)))
	if k < 1 {
		k = 1
	}
	var top, total uint64
	for i, d := range deg {
		total += uint64(d)
		if i < k {
			top += uint64(d)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}
