package gen

import (
	"fmt"

	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

// RMATConfig describes a recursive-matrix (R-MAT, Chakrabarti et al. 2004)
// graph: 2^Scale vertices, EdgeFactor·2^Scale edges, with quadrant
// probabilities A, B, C (and D = 1-A-B-C). The Graph500 defaults
// (0.57, 0.19, 0.19) produce a skew comparable to social networks.
type RMATConfig struct {
	Scale      uint
	EdgeFactor uint32
	A, B, C    float64
	Seed       uint64
	// Noise perturbs the quadrant probabilities per level to avoid the
	// artificial degree staircase of pure R-MAT; 0.1 is typical.
	Noise float64
}

// DefaultRMAT returns the Graph500 parameterization at the given scale.
func DefaultRMAT(scale uint, seed uint64) RMATConfig {
	return RMATConfig{Scale: scale, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, Seed: seed, Noise: 0.1}
}

// RMAT generates edges with the recursive-matrix method and assembles them
// into a CSR (self-loops removed, parallel edges kept — random walks are
// insensitive to them and real R-MAT pipelines keep them too).
func RMAT(cfg RMATConfig) (*graph.CSR, error) {
	if cfg.Scale == 0 || cfg.Scale > 31 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of range [1,31]", cfg.Scale)
	}
	if cfg.EdgeFactor == 0 {
		return nil, fmt.Errorf("gen: RMAT edge factor must be positive")
	}
	d := 1 - cfg.A - cfg.B - cfg.C
	if cfg.A < 0 || cfg.B < 0 || cfg.C < 0 || d < 0 {
		return nil, fmt.Errorf("gen: RMAT probabilities must be a sub-distribution")
	}
	n := uint32(1) << cfg.Scale
	m := uint64(cfg.EdgeFactor) * uint64(n)
	src := rng.NewXorShift1024Star(cfg.Seed)
	edges := make([]graph.Edge, 0, m)
	for i := uint64(0); i < m; i++ {
		u, v := rmatEdge(src, cfg)
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{Src: u, Dst: v})
	}
	res, err := graph.Build(edges, graph.BuildOptions{NumVertices: n})
	if err != nil {
		return nil, err
	}
	return res.Graph, nil
}

func rmatEdge(src rng.Source, cfg RMATConfig) (graph.VID, graph.VID) {
	var u, v uint32
	a, b, c := cfg.A, cfg.B, cfg.C
	for bit := int(cfg.Scale) - 1; bit >= 0; bit-- {
		r := rng.Float64(src)
		switch {
		case r < a:
			// top-left quadrant: no bits set
		case r < a+b:
			v |= 1 << uint(bit)
		case r < a+b+c:
			u |= 1 << uint(bit)
		default:
			u |= 1 << uint(bit)
			v |= 1 << uint(bit)
		}
		if cfg.Noise > 0 {
			// Multiplicative noise, renormalized.
			na := a * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64(src))
			nb := b * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64(src))
			nc := c * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64(src))
			nd := (1 - a - b - c) * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64(src))
			tot := na + nb + nc + nd
			a, b, c = na/tot, nb/tot, nc/tot
		}
	}
	return u, v
}
