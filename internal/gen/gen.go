// Package gen generates synthetic graphs for the FlashMob reproduction.
//
// The paper evaluates on five real graphs (YouTube, Twitter, Friendster,
// UK-Union, YahooWeb) that are not redistributable and too large for this
// environment. FlashMob's behaviour depends on a graph's *degree
// distribution* and the walker density, not on its identity: every decision
// the engine makes (sorting, partitioning, PS/DS policy, MCKP sizing) is a
// function of the sorted degree sequence, and the walk itself only ever
// samples adjacency lists. Table 2 of the paper further shows that each
// degree group's share of walker visits tracks its share of edges, which is
// exactly the property degree-proportional (Chung-Lu) wiring reproduces.
//
// The generators therefore substitute each dataset with a synthetic graph
// whose rank-degree curve d(r) ∝ (r+1)^-α is fitted to the paper's Table 2
// degree-group shares (see Presets), scaled down by a configurable factor.
package gen

import (
	"fmt"
	"math"
	"sort"

	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

// PowerLawConfig describes a rank-degree power-law graph: vertex at degree
// rank r has degree ≈ C·(r+1)^-Alpha, with C chosen to hit AvgDegree.
type PowerLawConfig struct {
	NumVertices uint32
	// AvgDegree is the target |E|/|V|.
	AvgDegree float64
	// Alpha is the rank-degree exponent in (0, 1); larger α concentrates
	// more edges on the top-ranked vertices. The top-f fraction of
	// vertices then holds ≈ f^(1-α) of all edges.
	Alpha float64
	// MinDegree floors every vertex's degree (default 1).
	MinDegree uint32
	// Seed drives the edge wiring.
	Seed uint64
}

// powerLawMass integrates d(x) = max(C·x^-α, m) over x ∈ [a, b], the
// continuous model of the rank-degree curve (rank r maps to x = r+1).
func powerLawMass(a, b, c, alpha, m float64) float64 {
	if b <= a {
		return 0
	}
	// Crossover point: C·x^-α == m.
	xstar := math.Pow(c/m, 1/alpha)
	integ := func(lo, hi float64) float64 {
		if alpha == 1 {
			return c * (math.Log(hi) - math.Log(lo))
		}
		return c * (math.Pow(hi, 1-alpha) - math.Pow(lo, 1-alpha)) / (1 - alpha)
	}
	switch {
	case b <= xstar:
		return integ(a, b)
	case a >= xstar:
		return m * (b - a)
	default:
		return integ(a, xstar) + m*(b-xstar)
	}
}

// solveC finds the scale constant C such that the floored power-law curve
// has total mass n·avg over ranks [0, n): powerLawMass(1, n+1) = n·avg.
// The mass is monotone increasing in C, so bisection converges.
func solveC(n uint32, avg, alpha float64, minD uint32) float64 {
	target := avg * float64(n)
	m := float64(minD)
	lo, hi := m, m
	for powerLawMass(1, float64(n)+1, hi, alpha, m) < target {
		hi *= 2
		if hi > 1e18 {
			break
		}
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if powerLawMass(1, float64(n)+1, mid, alpha, m) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// FitAlpha finds the rank-degree exponent α such that the top fraction
// topFrac of vertices holds targetShare of the edges, for a graph of n
// vertices with the given average degree and degree floor. This is how the
// preset profiles reproduce the paper's Table 2 degree-group shares at any
// downscaled size.
func FitAlpha(n uint32, avg float64, minD uint32, topFrac, targetShare float64) float64 {
	if minD == 0 {
		minD = 1
	}
	share := func(alpha float64) float64 {
		c := solveC(n, avg, alpha, minD)
		cut := 1 + topFrac*float64(n)
		return powerLawMass(1, cut, c, alpha, float64(minD)) / (avg * float64(n))
	}
	// Share of the top group is monotone increasing in α.
	lo, hi := 0.05, 0.995
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if share(mid) < targetShare {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// DegreeSequence materializes the descending degree sequence for cfg.
// The sum of the returned degrees is within rounding of
// NumVertices*AvgDegree.
func DegreeSequence(cfg PowerLawConfig) ([]uint32, error) {
	if cfg.NumVertices == 0 {
		return nil, fmt.Errorf("gen: NumVertices must be positive")
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		return nil, fmt.Errorf("gen: Alpha must be in (0,1), got %v", cfg.Alpha)
	}
	if cfg.AvgDegree < 1 {
		return nil, fmt.Errorf("gen: AvgDegree must be >= 1, got %v", cfg.AvgDegree)
	}
	minD := cfg.MinDegree
	if minD == 0 {
		minD = 1
	}
	n := int(cfg.NumVertices)
	c := solveC(cfg.NumVertices, cfg.AvgDegree, cfg.Alpha, minD)
	deg := make([]uint32, n)
	for r := 0; r < n; r++ {
		d := math.Round(c * math.Pow(float64(r+1), -cfg.Alpha))
		if d < float64(minD) {
			d = float64(minD)
		}
		if d > math.MaxUint32 {
			d = math.MaxUint32
		}
		deg[r] = uint32(d)
	}
	// Keep the sequence non-increasing (rounding preserves it, but be
	// defensive against future edits).
	sort.Slice(deg, func(i, j int) bool { return deg[i] > deg[j] })
	return deg, nil
}

// PowerLaw generates a degree-sorted CSR from cfg using Chung-Lu wiring:
// each out-edge of every vertex picks its target with probability
// proportional to the target's degree. The result already satisfies the
// FlashMob vertex-ordering invariant (VID 0 = highest degree) and has
// sorted adjacency lists.
func PowerLaw(cfg PowerLawConfig) (*graph.CSR, error) {
	deg, err := DegreeSequence(cfg)
	if err != nil {
		return nil, err
	}
	return Wire(deg, cfg.Seed)
}

// Wire builds a CSR realizing the given (descending) out-degree sequence,
// sampling each edge target with probability proportional to the target's
// degree (Chung-Lu model). Self-loops are re-rolled a bounded number of
// times, then accepted (they are harmless to random walks).
func Wire(deg []uint32, seed uint64) (*graph.CSR, error) {
	n := len(deg)
	if n == 0 {
		return nil, fmt.Errorf("gen: empty degree sequence")
	}
	offsets := make([]uint64, n+1)
	for v, d := range deg {
		offsets[v+1] = offsets[v] + uint64(d)
	}
	totalDeg := offsets[n]
	targets := make([]graph.VID, totalDeg)
	src := rng.NewXorShift1024Star(seed)
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		for i := lo; i < hi; i++ {
			t := sampleByDegree(src, offsets, totalDeg)
			for retry := 0; t == graph.VID(v) && retry < 8; retry++ {
				t = sampleByDegree(src, offsets, totalDeg)
			}
			targets[i] = t
		}
		adj := targets[lo:hi]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	g := &graph.CSR{Offsets: offsets, Targets: targets}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("gen: wired graph invalid: %w", err)
	}
	return g, nil
}

// sampleByDegree picks a vertex with probability proportional to its degree
// by drawing a uniform edge-endpoint index and binary-searching the offset
// (degree prefix-sum) array.
func sampleByDegree(src rng.Source, offsets []uint64, totalDeg uint64) graph.VID {
	x := rng.Uint64n(src, totalDeg)
	// Find the vertex v with offsets[v] <= x < offsets[v+1].
	lo, hi := 0, len(offsets)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if offsets[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return graph.VID(lo)
}

// UniformDegree generates a graph where every vertex has exactly degree d
// and targets are uniform over all vertices (self-loops re-rolled). It is
// the synthetic-VP workload of the paper's Figure 6 and the "toy graph"
// family of Figure 1a.
func UniformDegree(n uint32, d uint32, seed uint64) (*graph.CSR, error) {
	if n == 0 || d == 0 {
		return nil, fmt.Errorf("gen: UniformDegree needs n > 0 and d > 0")
	}
	deg := make([]uint32, n)
	for i := range deg {
		deg[i] = d
	}
	src := rng.NewXorShift1024Star(seed)
	offsets := make([]uint64, n+1)
	for v := uint32(0); v < n; v++ {
		offsets[v+1] = offsets[v] + uint64(d)
	}
	targets := make([]graph.VID, offsets[n])
	for v := uint32(0); v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		for i := lo; i < hi; i++ {
			t := graph.VID(rng.Uint32n(src, n))
			for retry := 0; n > 1 && t == v && retry < 8; retry++ {
				t = graph.VID(rng.Uint32n(src, n))
			}
			targets[i] = t
		}
		adj := targets[lo:hi]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	return &graph.CSR{Offsets: offsets, Targets: targets}, nil
}

// ToyForCacheBytes sizes a uniform-degree graph so its CSR footprint is
// close to (and not above) the given byte budget, reproducing the paper's
// L1/L2/L3-sized toy graphs in Figure 1a. Returns the graph and its actual
// CSR size.
func ToyForCacheBytes(budget uint64, d uint32, seed uint64) (*graph.CSR, uint64, error) {
	if d == 0 {
		return nil, 0, fmt.Errorf("gen: degree must be positive")
	}
	// Per-vertex cost: 8 (offset) + 4*d (targets); +8 for the final offset.
	perVertex := uint64(8 + 4*d)
	if budget <= perVertex+8 {
		return nil, 0, fmt.Errorf("gen: budget %dB too small for degree %d", budget, d)
	}
	n := uint32((budget - 8) / perVertex)
	if n < 2 {
		n = 2
	}
	g, err := UniformDegree(n, d, seed)
	if err != nil {
		return nil, 0, err
	}
	return g, g.SizeBytes(), nil
}
