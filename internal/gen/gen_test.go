package gen

import (
	"math"
	"testing"

	"flashmob/internal/graph"
)

func TestDegreeSequenceShape(t *testing.T) {
	cfg := PowerLawConfig{NumVertices: 10000, AvgDegree: 8, Alpha: 0.8, Seed: 1}
	deg, err := DegreeSequence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(deg) != 10000 {
		t.Fatalf("len = %d", len(deg))
	}
	// Non-increasing.
	for i := 1; i < len(deg); i++ {
		if deg[i] > deg[i-1] {
			t.Fatalf("degree sequence not sorted at %d: %d > %d", i, deg[i], deg[i-1])
		}
	}
	// Average close to target.
	var sum uint64
	for _, d := range deg {
		sum += uint64(d)
	}
	avg := float64(sum) / float64(len(deg))
	if math.Abs(avg-8) > 1.2 {
		t.Errorf("average degree %.2f, want ≈8", avg)
	}
	// Min degree floored at 1.
	if deg[len(deg)-1] < 1 {
		t.Error("tail degree below minimum")
	}
	// Head much larger than tail.
	if deg[0] < 20*deg[len(deg)-1] {
		t.Errorf("insufficient skew: head %d vs tail %d", deg[0], deg[len(deg)-1])
	}
}

func TestDegreeSequenceErrors(t *testing.T) {
	for _, cfg := range []PowerLawConfig{
		{NumVertices: 0, AvgDegree: 8, Alpha: 0.8},
		{NumVertices: 10, AvgDegree: 8, Alpha: 0},
		{NumVertices: 10, AvgDegree: 8, Alpha: 1.5},
		{NumVertices: 10, AvgDegree: 0.1, Alpha: 0.8},
	} {
		if _, err := DegreeSequence(cfg); err == nil {
			t.Errorf("config %+v: expected error", cfg)
		}
	}
}

func TestPowerLawGraphValid(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{NumVertices: 5000, AvgDegree: 6, Alpha: 0.75, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !graph.IsDegreeSorted(g) {
		t.Error("generated graph must be degree-sorted (FlashMob invariant)")
	}
	if g.NumVertices() != 5000 {
		t.Errorf("|V| = %d", g.NumVertices())
	}
}

func TestPowerLawTargetsFollowDegree(t *testing.T) {
	// Chung-Lu wiring: in-edge counts should correlate with out-degree.
	// Check the top-decile out-degree vertices receive well over their
	// uniform share of in-edges.
	g, err := PowerLaw(PowerLawConfig{NumVertices: 4000, AvgDegree: 10, Alpha: 0.8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	inDeg := make([]uint64, g.NumVertices())
	for _, t := range g.Targets {
		inDeg[t]++
	}
	topK := g.NumVertices() / 10
	var topIn uint64
	for v := uint32(0); v < topK; v++ {
		topIn += inDeg[v]
	}
	share := float64(topIn) / float64(g.NumEdges())
	if share < 0.3 {
		t.Errorf("top-decile in-edge share %.3f, want > 0.3 under degree-proportional wiring", share)
	}
}

func TestWireRejectsEmpty(t *testing.T) {
	if _, err := Wire(nil, 1); err == nil {
		t.Fatal("expected error for empty degree sequence")
	}
}

func TestUniformDegree(t *testing.T) {
	g, err := UniformDegree(1000, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < g.NumVertices(); v++ {
		if g.Degree(v) != 16 {
			t.Fatalf("Degree(%d) = %d, want 16", v, g.Degree(v))
		}
	}
	// Mostly self-loop free.
	var loops int
	for v := uint32(0); v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(v) {
			if w == v {
				loops++
			}
		}
	}
	if loops > int(g.NumEdges()/100) {
		t.Errorf("%d self loops out of %d edges", loops, g.NumEdges())
	}
}

func TestUniformDegreeErrors(t *testing.T) {
	if _, err := UniformDegree(0, 4, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := UniformDegree(10, 0, 1); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestToyForCacheBytes(t *testing.T) {
	for _, budget := range []uint64{32 << 10, 1 << 20, 16 << 20} {
		g, size, err := ToyForCacheBytes(budget, 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		if size > budget {
			t.Errorf("budget %d: CSR size %d exceeds budget", budget, size)
		}
		if size < budget*8/10 {
			t.Errorf("budget %d: CSR size %d too small (poor fit)", budget, size)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestToyForCacheBytesTooSmall(t *testing.T) {
	if _, _, err := ToyForCacheBytes(16, 16, 1); err == nil {
		t.Fatal("expected error for tiny budget")
	}
}

func TestRMAT(t *testing.T) {
	g, err := RMAT(DefaultRMAT(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Errorf("|V| = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() < 10000 {
		t.Errorf("|E| = %d, suspiciously low", g.NumEdges())
	}
	// R-MAT graphs are skewed: max degree far above average.
	if float64(g.MaxDegree()) < 4*g.AvgDegree() {
		t.Errorf("max degree %d vs avg %.1f: missing skew", g.MaxDegree(), g.AvgDegree())
	}
}

func TestRMATErrors(t *testing.T) {
	bad := DefaultRMAT(10, 1)
	bad.A = 0.9
	bad.B = 0.9
	if _, err := RMAT(bad); err == nil {
		t.Error("invalid probabilities accepted")
	}
	if _, err := RMAT(RMATConfig{Scale: 0, EdgeFactor: 16}); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := RMAT(RMATConfig{Scale: 10, EdgeFactor: 0, A: 0.5, B: 0.2, C: 0.2}); err == nil {
		t.Error("edge factor 0 accepted")
	}
}

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"YT", "TW", "FS", "UK", "YH"} {
		if _, err := PresetByName(name); err != nil {
			t.Errorf("preset %s: %v", name, err)
		}
	}
	if _, err := PresetByName("XX"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestPresetTop1ShareMatchesPaper(t *testing.T) {
	// The α fit must reproduce the paper's Table 2 top-1% edge shares
	// within a reasonable tolerance at a scaled-down size.
	for _, p := range Presets {
		cfg := p.Config(p.FullVertices/20000, uint64(len(p.Name))) // ~20k vertices
		deg, err := DegreeSequence(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		var top, total uint64
		k := len(deg) / 100
		for i, d := range deg {
			total += uint64(d)
			if i < k {
				top += uint64(d)
			}
		}
		share := float64(top) / float64(total)
		if math.Abs(share-p.Top1EdgeShare) > 0.10 {
			t.Errorf("%s: top-1%% share %.3f, paper %.3f", p.Name, share, p.Top1EdgeShare)
		}
	}
}

func TestPresetGenerate(t *testing.T) {
	p, _ := PresetByName("YT")
	g, err := p.Generate(100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsDegreeSorted(g) {
		t.Error("preset graph not degree sorted")
	}
	if g.NumVertices() != p.FullVertices/100 {
		t.Errorf("|V| = %d, want %d", g.NumVertices(), p.FullVertices/100)
	}
}

func TestTopShare(t *testing.T) {
	g, err := UniformDegree(1000, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform graph: top 10% holds exactly 10% of edges.
	if s := TopShare(g, 0.1); math.Abs(s-0.1) > 1e-9 {
		t.Errorf("uniform TopShare(0.1) = %v, want 0.1", s)
	}
}
