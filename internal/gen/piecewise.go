package gen

import (
	"fmt"
	"math"
)

// BucketShare describes one degree-percentile bucket of the target
// distribution (the paper's Table 2 rows): the bucket covers vertex ranks
// up to UpperFrac·|V| (cumulative) and holds EdgeShare of all edges.
type BucketShare struct {
	UpperFrac float64
	EdgeShare float64
}

// DegreeSequencePiecewise materializes a descending degree sequence of n
// vertices with average degree avgDeg whose degree-percentile buckets hold
// exactly the requested edge shares. The curve is piecewise power-law in
// rank: knot degrees at bucket boundaries are solved left to right so each
// bucket's mass matches, with geometric interpolation between knots —
// continuous, monotone, and faithful to all of Table 2's buckets rather
// than just the head.
//
// headSkew sets the ratio of the very first vertex's degree to the first
// bucket's mean (the within-head steepness); pass a value < 1 to search
// for the shallowest skew that keeps every bucket feasible.
// bucket's mean (the within-head steepness); 8 is a reasonable default.
func DegreeSequencePiecewise(n uint32, avgDeg float64, buckets []BucketShare, headSkew float64) ([]uint32, error) {
	if headSkew >= 1 {
		deg, _, err := solvePiecewise(n, avgDeg, buckets, headSkew)
		return deg, err
	}
	// Adaptive head skew: steeper heads lower the first boundary knot,
	// which can be required for the remaining buckets to be feasible
	// under monotonicity (e.g. the paper's UK profile). Take the first
	// skew meeting a 2% worst-bucket error, else the best seen.
	var bestDeg []uint32
	bestErr := math.Inf(1)
	for _, skew := range []float64{8, 16, 32, 64, 128, 256, 512} {
		deg, relErr, err := solvePiecewise(n, avgDeg, buckets, skew)
		if err != nil {
			return nil, err
		}
		if relErr < bestErr {
			bestErr, bestDeg = relErr, deg
		}
		if relErr < 0.02 {
			break
		}
	}
	return bestDeg, nil
}

// solvePiecewise runs one knot solve + materialization at a fixed head
// skew, returning the worst bucket's relative mass error (floored buckets,
// whose targets are unreachable with integer degrees ≥ 1, are exempt).
func solvePiecewise(n uint32, avgDeg float64, buckets []BucketShare, headSkew float64) ([]uint32, float64, error) {
	if n == 0 {
		return nil, 0, fmt.Errorf("gen: empty sequence requested")
	}
	if avgDeg < 1 {
		return nil, 0, fmt.Errorf("gen: average degree must be ≥ 1")
	}
	if len(buckets) == 0 {
		return nil, 0, fmt.Errorf("gen: no buckets")
	}
	var cum, shares float64
	for i, b := range buckets {
		if b.UpperFrac <= cum || b.UpperFrac > 1 {
			return nil, 0, fmt.Errorf("gen: bucket %d upper fraction %v not increasing within (0,1]", i, b.UpperFrac)
		}
		cum = b.UpperFrac
		if b.EdgeShare < 0 {
			return nil, 0, fmt.Errorf("gen: bucket %d has negative edge share", i)
		}
		shares += b.EdgeShare
	}
	if math.Abs(cum-1) > 1e-9 {
		return nil, 0, fmt.Errorf("gen: buckets cover %v of vertices, want 1", cum)
	}
	if math.Abs(shares-1) > 1e-6 {
		return nil, 0, fmt.Errorf("gen: edge shares sum to %v, want 1", shares)
	}

	totalEdges := avgDeg * float64(n)
	// Knot ranks (1-based, continuous): r_0 = 1, r_i = bucket boundaries.
	ranks := make([]float64, len(buckets)+1)
	ranks[0] = 1
	for i, b := range buckets {
		r := b.UpperFrac * float64(n)
		if r <= ranks[i] {
			r = ranks[i] + 1
		}
		ranks[i+1] = r
	}
	// Bucket rank boundaries as integers (0-based, half-open).
	bounds := make([]int, len(buckets)+1)
	for i := 1; i < len(bounds); i++ {
		bounds[i] = int(math.Round(ranks[i]))
		if bounds[i] <= bounds[i-1] {
			bounds[i] = bounds[i-1] + 1
		}
		if bounds[i] > int(n) {
			bounds[i] = int(n)
		}
	}
	bounds[len(buckets)] = int(n)

	// Knot degrees, solved bucket by bucket against the *discretized*
	// mass (strata-sampled), so no post-hoc rescaling — which would break
	// continuity at bucket boundaries — is needed.
	knots := make([]float64, len(buckets)+1)
	firstMean := buckets[0].EdgeShare * totalEdges / float64(bounds[1]-bounds[0])
	knots[0] = headSkew * firstMean
	for i, b := range buckets {
		target := b.EdgeShare * totalEdges
		// The right knot must stay at or above the NEXT bucket's mean
		// degree, or that bucket could never reach its own target under
		// monotonicity; enforcing the bound here keeps every later bucket
		// feasible without retroactive knot adjustments.
		lo := 1e-6
		if i+1 < len(buckets) {
			nextMean := buckets[i+1].EdgeShare * totalEdges / float64(bounds[i+2]-bounds[i+1])
			if nextMean > lo {
				lo = nextMean
			}
		}
		hi := knots[i] // right knot ∈ [lo, left knot]
		if lo >= hi {
			knots[i+1] = hi
			continue
		}
		if discreteMass(bounds[i], bounds[i+1], ranks[i], ranks[i+1], knots[i], lo) >= target {
			// Even the steepest admissible curve overshoots: take it (the
			// minimal-overshoot choice under the feasibility bound).
			knots[i+1] = lo
			continue
		}
		for it := 0; it < 50; it++ {
			mid := math.Sqrt(lo * hi) // bisect in log space
			if discreteMass(bounds[i], bounds[i+1], ranks[i], ranks[i+1], knots[i], mid) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		knots[i+1] = math.Sqrt(lo * hi)
	}

	// Materialize the curve with cumulative rounding (mass-preserving to
	// ±1 per bucket). The d ≥ 1 floor can push a tail bucket above its
	// target when the target mean is below 1 — the same physical
	// constraint real integer-degree graphs have.
	deg := make([]uint32, n)
	for i := range buckets {
		var cum float64
		var assigned uint64
		for r := bounds[i]; r < bounds[i+1]; r++ {
			cum += interpolate(ranks[i], ranks[i+1], knots[i], knots[i+1], float64(r)+1)
			d := uint64(math.Round(cum)) - assigned
			assigned += d
			if d < 1 {
				d = 1
				assigned++
			}
			if d > math.MaxUint32 {
				d = math.MaxUint32
			}
			deg[r] = uint32(d)
		}
	}
	// Final monotonicity clamp (rounding can wobble by ±1).
	for r := 1; r < int(n); r++ {
		if deg[r] > deg[r-1] {
			deg[r] = deg[r-1]
		}
	}
	// Worst-bucket relative error, exempting buckets whose target mean is
	// below the integer-degree floor of 1.
	var worst float64
	for i, b := range buckets {
		size := float64(bounds[i+1] - bounds[i])
		target := b.EdgeShare * totalEdges
		if target/size < 1 {
			continue
		}
		var got float64
		for r := bounds[i]; r < bounds[i+1]; r++ {
			got += float64(deg[r])
		}
		if e := math.Abs(got-target) / target; e > worst {
			worst = e
		}
	}
	return deg, worst, nil
}

// discreteMass sums the interpolated curve over integer ranks [lo, hi),
// sampling at most 4096 strata for large buckets (the curve is smooth, so
// midpoint strata are accurate to well under a percent).
func discreteMass(lo, hi int, ra, rb, da, db float64) float64 {
	nRanks := hi - lo
	if nRanks <= 0 {
		return 0
	}
	const maxSamples = 4096
	if nRanks <= maxSamples {
		var s float64
		for r := lo; r < hi; r++ {
			s += interpolate(ra, rb, da, db, float64(r)+1)
		}
		return s
	}
	var s float64
	for k := 0; k < maxSamples; k++ {
		sLo := lo + k*nRanks/maxSamples
		sHi := lo + (k+1)*nRanks/maxSamples
		mid := float64(sLo+sHi)/2 + 1
		s += interpolate(ra, rb, da, db, mid) * float64(sHi-sLo)
	}
	return s
}

// interpolate evaluates the power-law segment between knots (a, da) and
// (b, db) at rank x: d(x) = da · (x/a)^-β with β chosen so d(b) = db.
func interpolate(a, b, da, db, x float64) float64 {
	if db <= 0 || da <= 0 || b <= a {
		return da
	}
	beta := math.Log(da/db) / math.Log(b/a)
	return da * math.Pow(x/a, -beta)
}
