package serve

import (
	"sync"
	"testing"
	"time"

	"flashmob"
)

// fakeClock is a hand-advanced clock standing in for Server.now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestAssembleAllocatesNothing pins the steady-state cost of batch
// assembly: once a waveScratch has warmed to a wave's shape, splitting a
// batch into cohort groups allocates nothing — no per-batch map, no
// fresh runGroup structs, no regrown request slices (the pooled
// equivalent of the engine's own zero-alloc step loop).
func TestAssembleAllocatesNothing(t *testing.T) {
	s := &Server{cfg: Config{Seed: 7}.withDefaults()}
	b1 := &backend{name: "deepwalk"}
	b2 := &backend{name: "node2vec"}
	now := time.Now()
	mk := func(b *backend, walkers, steps int, seed uint64, seeded bool) *pending {
		return &pending{b: b, walkers: walkers, steps: steps, seed: seed, seeded: seeded,
			enq: now, deadline: now.Add(time.Hour)}
	}
	// A representative wave: two coalescible unseeded groups across two
	// algorithms and step counts, plus two private seeded cohorts.
	live := []*pending{
		mk(b1, 8, 5, 0, false),
		mk(b2, 32, 5, 0, false),
		mk(b1, 16, 5, 0, false),
		mk(b1, 4, 9, 11, true),
		mk(b2, 128, 5, 0, false),
		mk(b2, 2, 5, 22, true),
	}
	var ws waveScratch
	ws.assemble(s, live) // warm up group and cohort storage
	if len(ws.groups) != 4 {
		t.Fatalf("assembled %d groups, want 4 (two coalesced + two seeded)", len(ws.groups))
	}
	allocs := testing.AllocsPerRun(100, func() { ws.assemble(s, live) })
	if allocs != 0 {
		t.Errorf("assemble allocated %.1f objects per batch, want 0", allocs)
	}

	// The grouping itself must be right: unseeded same-(backend, steps)
	// requests share a cohort, seeded ones never do.
	var coalesced *runGroup
	for i := range ws.groups {
		g := &ws.groups[i]
		if g.b == b1 && !g.seeded {
			coalesced = g
		}
		if g.seeded && len(g.reqs) != 1 {
			t.Errorf("seeded group holds %d requests, want 1", len(g.reqs))
		}
	}
	if coalesced == nil || len(coalesced.reqs) != 2 || coalesced.walkers != 8+16 {
		t.Fatalf("deepwalk unseeded group misassembled: %+v", coalesced)
	}
}

// TestShedAndLatencyFakeClock pins the deadline and latency accounting
// to the server's injectable clock: the dispatcher and the executor each
// read it once per wave, shed against that instant, and stamp it as the
// wave's execution start — so what lands in the shed counters and the
// queue-latency math is fully determined by the clock, not by wall time
// leaking in per request.
func TestShedAndLatencyFakeClock(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	sys, spec := testSystem(t)
	defer sys.Close()
	s := &Server{cfg: Config{MaxWait: time.Millisecond}.withDefaults(), m: newServeMetrics(), now: clk.Now}
	g := &engineGroup{
		s:        s,
		sys:      sys,
		queue:    make(chan *pending, 8),
		batches:  make(chan []*pending, 8),
		free:     make(chan []*pending, 2),
		sessions: make(chan *flashmob.Session, 1),
	}
	b := &backend{name: "deepwalk", sys: sys, spec: spec, g: g}
	mk := func(timeout time.Duration) *pending {
		now := clk.Now()
		return &pending{b: b, walkers: 2, steps: 3, enq: now,
			deadline: now.Add(timeout), resp: make(chan outcome, 1)}
	}

	// Dispatcher-level shedding: a request whose deadline has already
	// passed on the fake clock is shed at dequeue, before it can occupy
	// batch budget.
	s.wg.Add(1)
	go g.dispatch()
	dead := mk(-time.Second)
	s.m.queueDepth.Add(1)
	g.queue <- dead
	if out := <-dead.resp; out.status != 503 || !out.retry {
		t.Fatalf("expired-in-queue outcome = %+v, want retryable 503", out)
	}
	if got := s.m.shedExpired.Value(); got != 1 {
		t.Fatalf("shedExpired = %d after queue shed, want 1", got)
	}

	// A live request forms a batch; advancing the clock past its deadline
	// before execution sheds it at the executor's single wave-clock read.
	lateShed := mk(time.Minute)
	s.m.queueDepth.Add(1)
	g.queue <- lateShed
	batch := <-g.batches
	if len(batch) != 1 {
		t.Fatalf("batch carries %d requests, want 1", len(batch))
	}
	clk.Advance(2 * time.Minute)
	var ws waveScratch
	g.execute(&ws, batch)
	if out := <-lateShed.resp; out.status != 503 {
		t.Fatalf("expired-before-execution outcome = %+v, want 503", out)
	}
	if got := s.m.shedExpired.Value(); got != 2 {
		t.Fatalf("shedExpired = %d after execute shed, want 2", got)
	}

	// A request that survives to execution gets the wave's clock read as
	// its execStart: queue latency is exactly the fake queueing delay.
	served := mk(time.Hour)
	queued := 3 * time.Second
	clk.Advance(queued)
	g.execute(&ws, []*pending{served})
	out := <-served.resp
	if out.status != 200 {
		t.Fatalf("served outcome = %+v, want 200", out)
	}
	if !out.execStart.Equal(served.enq.Add(queued)) {
		t.Fatalf("execStart %v is not the wave's clock read", out.execStart)
	}
	if got := out.execStart.Sub(served.enq); got != queued {
		t.Fatalf("queue latency accounted %v, want %v", got, queued)
	}

	close(g.queue)
	s.wg.Wait()
	for {
		select {
		case sess := <-g.sessions:
			sess.Close()
			continue
		default:
		}
		break
	}
	if got := s.m.queueDepth.Value(); got != 0 {
		t.Fatalf("queueDepth = %d after drain, want 0", got)
	}
}
