package serve

import (
	"testing"
	"time"
)

// TestAssembleAllocatesNothing pins the steady-state cost of batch
// assembly: once a waveScratch has warmed to a wave's shape, splitting a
// batch into cohort groups allocates nothing — no per-batch map, no
// fresh runGroup structs, no regrown request slices (the pooled
// equivalent of the engine's own zero-alloc step loop).
func TestAssembleAllocatesNothing(t *testing.T) {
	s := &Server{cfg: Config{Seed: 7}.withDefaults()}
	b1 := &backend{name: "deepwalk"}
	b2 := &backend{name: "node2vec"}
	now := time.Now()
	mk := func(b *backend, walkers, steps int, seed uint64, seeded bool) *pending {
		return &pending{b: b, walkers: walkers, steps: steps, seed: seed, seeded: seeded,
			enq: now, deadline: now.Add(time.Hour)}
	}
	// A representative wave: two coalescible unseeded groups across two
	// algorithms and step counts, plus two private seeded cohorts.
	live := []*pending{
		mk(b1, 8, 5, 0, false),
		mk(b2, 32, 5, 0, false),
		mk(b1, 16, 5, 0, false),
		mk(b1, 4, 9, 11, true),
		mk(b2, 128, 5, 0, false),
		mk(b2, 2, 5, 22, true),
	}
	var ws waveScratch
	ws.assemble(s, live) // warm up group and cohort storage
	if len(ws.groups) != 4 {
		t.Fatalf("assembled %d groups, want 4 (two coalesced + two seeded)", len(ws.groups))
	}
	allocs := testing.AllocsPerRun(100, func() { ws.assemble(s, live) })
	if allocs != 0 {
		t.Errorf("assemble allocated %.1f objects per batch, want 0", allocs)
	}

	// The grouping itself must be right: unseeded same-(backend, steps)
	// requests share a cohort, seeded ones never do.
	var coalesced *runGroup
	for i := range ws.groups {
		g := &ws.groups[i]
		if g.b == b1 && !g.seeded {
			coalesced = g
		}
		if g.seeded && len(g.reqs) != 1 {
			t.Errorf("seeded group holds %d requests, want 1", len(g.reqs))
		}
	}
	if coalesced == nil || len(coalesced.reqs) != 2 || coalesced.walkers != 8+16 {
		t.Fatalf("deepwalk unseeded group misassembled: %+v", coalesced)
	}
}
