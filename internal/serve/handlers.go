package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// maxBodyBytes bounds a request body; walk queries are a few hundred
// bytes.
const maxBodyBytes = 1 << 20

// writeJSON encodes one response body (the structs in wire.go encode
// with deterministic field order).
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

// respBufs recycles walk-response encode buffers: trajectories dominate
// the body (a wave can carry hundreds of kilobytes of path JSON), and
// pooling keeps the per-response garbage to the bytes actually written.
var respBufs = sync.Pool{New: func() any { b := make([]byte, 0, 16<<10); return &b }}

// pathsNullToken is the placeholder encodeWalkResponse splices the fast
// path array over.
var pathsNullToken = []byte(`"paths":null`)

// encodeWalkResponse marshals a 200 walk response byte-identically to
// encoding/json, but writes the paths array — the bulk of the body, pure
// numbers — with strconv instead of per-element reflection: the envelope
// is marshaled with Paths nil and the fast-encoded array spliced over
// the "paths":null placeholder. buf is the (pooled) destination,
// returned with the encoding appended. Falls back to nil (caller uses
// writeJSON) if the envelope cannot be marshaled or the placeholder is
// not found.
func encodeWalkResponse(buf []byte, resp *WalkResponse) []byte {
	paths := resp.Paths
	resp.Paths = nil
	head, err := json.Marshal(resp)
	resp.Paths = paths
	if err != nil || paths == nil {
		return nil
	}
	i := bytes.Index(head, pathsNullToken)
	if i < 0 {
		return nil
	}
	buf = append(buf, head[:i+len(`"paths":`)]...)
	buf = append(buf, '[')
	for pi, p := range paths {
		if pi > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '[')
		for vi, v := range p {
			if vi > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendUint(buf, uint64(v), 10)
		}
		buf = append(buf, ']')
	}
	buf = append(buf, ']')
	buf = append(buf, head[i+len(pathsNullToken):]...)
	return append(buf, '\n')
}

// writeWalkResponse answers a served walk with the fast paths encoder,
// falling back to the generic encoder when it does not apply (e.g. a
// response with no trajectories).
func writeWalkResponse(w http.ResponseWriter, resp *WalkResponse) {
	bp := respBufs.Get().(*[]byte)
	buf := encodeWalkResponse((*bp)[:0], resp)
	if buf == nil {
		respBufs.Put(bp)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// Explicit length keeps large trajectory bodies out of chunked
	// encoding (one frame, cheaper client reads).
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
	// Keep moderate buffers; let one-off giants go to the collector.
	if cap(buf) <= 4<<20 {
		*bp = buf[:0]
		respBufs.Put(bp)
	}
}

// writeErr answers with an ErrorResponse; when retry is set the 503
// carries the Retry-After hint (header in whole seconds, body in ms).
func (s *Server) writeErr(w http.ResponseWriter, status int, msg string, retry bool) {
	body := ErrorResponse{SchemaVersion: SchemaVersion, Error: msg}
	if retry {
		ms := float64(s.cfg.MaxWait) / float64(time.Millisecond)
		if ms < 1 {
			ms = 1
		}
		body.RetryAfterMS = ms
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(ms/1000))))
	}
	writeJSON(w, status, body)
}

// handleWalk is POST /v1/walk: validate, admit, wait for the batch
// outcome, and answer with the demuxed trajectories.
func (s *Server) handleWalk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, "POST only", false)
		return
	}
	var req WalkRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error(), false)
		return
	}
	b := s.backends[0]
	if req.Algorithm != "" {
		var ok bool
		if b, ok = s.byName[req.Algorithm]; !ok {
			s.writeErr(w, http.StatusBadRequest, "unknown algorithm "+strconv.Quote(req.Algorithm), false)
			return
		}
	}
	if req.Walkers < 1 || req.Walkers > s.cfg.MaxWalkersPerRequest {
		s.writeErr(w, http.StatusBadRequest,
			"walkers must be in [1, "+strconv.Itoa(s.cfg.MaxWalkersPerRequest)+"]", false)
		return
	}
	steps := req.Steps
	if steps == 0 {
		steps = b.spec.Steps
	}
	if steps < 1 || steps > s.cfg.MaxSteps {
		s.writeErr(w, http.StatusBadRequest,
			"steps must be in [1, "+strconv.Itoa(s.cfg.MaxSteps)+"]", false)
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS * float64(time.Millisecond))
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	now := s.now()
	p := &pending{
		b:        b,
		walkers:  req.Walkers,
		steps:    steps,
		enq:      now,
		deadline: now.Add(timeout),
		resp:     make(chan outcome, 1),
	}
	if req.Seed != nil {
		p.seed, p.seeded = *req.Seed, true
	}
	if err := b.enqueue(p); err != nil {
		if err == errClosed {
			s.m.shedClosed.Inc()
			s.writeErr(w, http.StatusServiceUnavailable, "server closed", false)
		} else {
			s.m.shedOverload.Inc()
			s.writeErr(w, http.StatusServiceUnavailable, "admission queue full", true)
		}
		return
	}
	out := <-p.resp
	if out.status != http.StatusOK {
		s.writeErr(w, out.status, out.errMsg, out.retry)
		return
	}
	s.m.served.Inc()
	s.m.queueNS.Observe(uint64(out.execStart.Sub(p.enq)))
	s.m.latencyNS.Observe(uint64(s.now().Sub(p.enq)))
	resp := WalkResponse{
		SchemaVersion: SchemaVersion,
		Algorithm:     b.name,
		Walkers:       p.walkers,
		Steps:         out.steps,
		Seeded:        p.seeded,
		Coalesced:     out.batchRequests > 1,
		BatchRequests: out.batchRequests,
		RunWalkers:    out.runWalkers,
		RunCohorts:    out.runCohorts,
		Epoch:         out.epoch,
		Paths:         out.paths,
		QueueMS:       float64(out.execStart.Sub(p.enq)) / float64(time.Millisecond),
		RunMS:         float64(out.runDur) / float64(time.Millisecond),
	}
	if p.seeded {
		resp.Seed = p.seed
	}
	writeWalkResponse(w, &resp)
}

// handleIngest is POST /v1/ingest (dynamic servers only): buffer a batch
// of edges and optionally freeze them into a new epoch.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, "POST only", false)
		return
	}
	if s.dyn == nil {
		s.writeErr(w, http.StatusNotFound, "server has no dynamic backend (start with a dynamic system to ingest)", false)
		return
	}
	var req IngestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error(), false)
		return
	}
	accepted, err := s.dyn.IngestPairs(req.Edges)
	if err != nil {
		s.writeErr(w, http.StatusServiceUnavailable, err.Error(), false)
		return
	}
	if req.Freeze {
		if _, err := s.dyn.Freeze(); err != nil {
			s.writeErr(w, http.StatusServiceUnavailable, err.Error(), false)
			return
		}
	}
	st := s.dyn.Stats()
	writeJSON(w, http.StatusOK, IngestResponse{
		SchemaVersion: SchemaVersion,
		Accepted:      accepted,
		Epoch:         st.Epoch,
		PendingEdges:  st.PendingEdges,
		DeltaEdges:    st.DeltaEdges,
		DeferredEdges: st.DeferredEdges,
		Compactions:   st.Compactions,
	})
}

// handlePlan is GET /v1/plan: every served algorithm's partitioning
// summary. Dynamic backends are skipped — their plan is per-epoch-build
// and changes with every compaction.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, "GET only", false)
		return
	}
	resp := PlanResponse{SchemaVersion: SchemaVersion}
	for _, b := range s.backends {
		if b.sys == nil {
			continue
		}
		p := b.sys.Plan()
		resp.Algorithms = append(resp.Algorithms, PlanEntry{
			Algorithm:  b.name,
			NumVPs:     p.NumVPs,
			NumGroups:  p.NumGroups,
			Bins:       p.Bins,
			PSVertices: p.PSVertices,
			DSVertices: p.DSVertices,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealth is GET /healthz: 200 while serving, 503 once shutdown has
// begun so load balancers drain the instance.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, "GET only", false)
		return
	}
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	resp := HealthResponse{Status: "ok", UptimeMS: float64(time.Since(s.start)) / float64(time.Millisecond)}
	status := http.StatusOK
	if closed {
		resp.Status = "closed"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// handleMetrics is GET /metrics: the serving layer's obs report plus
// each engine's lifetime aggregate when engine metrics are on.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, "GET only", false)
		return
	}
	resp := MetricsResponse{SchemaVersion: SchemaVersion, Server: s.Metrics()}
	for _, b := range s.backends {
		if b.sys == nil {
			continue
		}
		if rep := b.sys.MetricsReport(); rep != nil {
			resp.Engines = append(resp.Engines, EngineReport{Algorithm: b.name, Report: rep})
		}
	}
	if s.dyn != nil {
		resp.Dyn = s.dyn.MetricsReport()
	}
	for _, g := range s.groups {
		if g.sharded != nil {
			resp.Shards = append(resp.Shards, EngineReport{
				Algorithm: g.backends[0].name, Report: g.sharded.MetricsReport(),
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
