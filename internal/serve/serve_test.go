package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"flashmob"
)

// testSystem builds a small YouTube-shaped system suitable for serving.
func testSystem(t testing.TB) (*flashmob.System, flashmob.Algorithm) {
	t.Helper()
	g, err := flashmob.Generate("YT", 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	spec := flashmob.DeepWalk()
	sys, err := flashmob.New(g, flashmob.Options{
		Algorithm: spec, Seed: 7, Workers: 2, RecordPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, spec
}

// newTestServer stands up a Server over a fresh system on an httptest
// listener; both are torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	sys, spec := testSystem(t)
	s, err := New([]Backend{{Name: "deepwalk", Sys: sys, Spec: spec}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	return s, hs
}

// postWalk issues one walk query and returns status + body.
func postWalk(t *testing.T, base string, req WalkRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/walk", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// decodeWalk parses a 200 body.
func decodeWalk(t *testing.T, data []byte) WalkResponse {
	t.Helper()
	var wr WalkResponse
	if err := json.Unmarshal(data, &wr); err != nil {
		t.Fatalf("bad walk response %s: %v", data, err)
	}
	return wr
}

// TestWalkEndToEnd drives every endpoint once: a coalescible query, the
// plan, health, and metrics.
func TestWalkEndToEnd(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxWait: time.Millisecond})

	status, data := postWalk(t, hs.URL, WalkRequest{Walkers: 5, Steps: 3})
	if status != 200 {
		t.Fatalf("walk: status %d body %s", status, data)
	}
	wr := decodeWalk(t, data)
	if wr.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version %d, want %d", wr.SchemaVersion, SchemaVersion)
	}
	if wr.Algorithm != "deepwalk" || wr.Walkers != 5 || wr.Steps != 3 {
		t.Errorf("echo mismatch: %+v", wr)
	}
	if len(wr.Paths) != 5 {
		t.Fatalf("got %d paths, want 5", len(wr.Paths))
	}
	for _, p := range wr.Paths {
		if len(p) != 4 {
			t.Fatalf("path length %d, want steps+1 = 4", len(p))
		}
	}

	resp, err := http.Get(hs.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	var plan PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(plan.Algorithms) != 1 || plan.Algorithms[0].NumVPs < 1 {
		t.Errorf("bad plan response: %+v", plan)
	}

	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mr MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	served, ok := mr.Server.Counter("serve_served_total")
	if !ok || served.Value < 1 {
		t.Errorf("serve_served_total missing or zero in /metrics: %+v", served)
	}
}

// TestValidation exercises the 400/405 surface.
func TestValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxWait: time.Millisecond})
	cases := []WalkRequest{
		{Walkers: 0},                            // no walkers
		{Walkers: 1 << 30},                      // too many walkers
		{Walkers: 1, Steps: 1 << 20},            // too many steps
		{Walkers: 1, Algorithm: "no-such-walk"}, // unknown algorithm
	}
	for i, req := range cases {
		if status, body := postWalk(t, hs.URL, req); status != 400 {
			t.Errorf("case %d: status %d body %s, want 400", i, status, body)
		}
	}
	resp, err := http.Get(hs.URL + "/v1/walk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET /v1/walk: %d, want 405", resp.StatusCode)
	}
}

// TestUnseededCoalescing holds a wide batch window, fires concurrent
// sampling-mode requests, and checks they shared an engine run yet got
// disjoint walker-array slices.
func TestUnseededCoalescing(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxWait: 50 * time.Millisecond, Executors: 1})

	const n = 6
	type res struct {
		status int
		wr     WalkResponse
	}
	results := make([]res, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, data := postWalk(t, hs.URL, WalkRequest{Walkers: 10, Steps: 4})
			results[i] = res{status, WalkResponse{}}
			if status == 200 {
				results[i].wr = decodeWalk(t, data)
			}
		}(i)
	}
	wg.Wait()

	coalesced := 0
	for i, r := range results {
		if r.status != 200 {
			t.Fatalf("request %d: status %d", i, r.status)
		}
		if r.wr.Coalesced {
			coalesced++
			if r.wr.RunWalkers <= 10 {
				t.Errorf("request %d coalesced but run_walkers = %d", i, r.wr.RunWalkers)
			}
		}
	}
	if coalesced < 2 {
		t.Fatalf("only %d of %d requests coalesced under a 50ms window", coalesced, n)
	}
	// Disjoint slices: no two coalesced requests may share trajectories.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if results[i].wr.Coalesced && results[j].wr.Coalesced &&
				fmt.Sprint(results[i].wr.Paths) == fmt.Sprint(results[j].wr.Paths) {
				t.Errorf("requests %d and %d got identical trajectories", i, j)
			}
		}
	}
}

// TestSeededDeterminism is the serving determinism contract: a seeded
// request returns bitwise-identical trajectories whether it rides a
// batch alone, rides one coalesced with a crowd of sampling-mode
// requests, or is executed directly on an identically built system.
func TestSeededDeterminism(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxWait: 40 * time.Millisecond, Executors: 1})
	seed := uint64(123)
	req := WalkRequest{Walkers: 20, Steps: 5, Seed: &seed}

	// Alone.
	status, data := postWalk(t, hs.URL, req)
	if status != 200 {
		t.Fatalf("alone: status %d body %s", status, data)
	}
	alone := decodeWalk(t, data)
	if !alone.Seeded || alone.Seed != seed {
		t.Fatalf("seed not echoed: %+v", alone)
	}

	// Coalesced with unseeded neighbors; retry until the batch really
	// was shared (scheduling makes coalescing probabilistic).
	var crowded WalkResponse
	for attempt := 0; attempt < 10; attempt++ {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				postWalk(t, hs.URL, WalkRequest{Walkers: 15, Steps: 5})
			}()
		}
		time.Sleep(2 * time.Millisecond) // let the batch open
		status, data = postWalk(t, hs.URL, req)
		wg.Wait()
		if status != 200 {
			t.Fatalf("crowded: status %d body %s", status, data)
		}
		crowded = decodeWalk(t, data)
		if crowded.Coalesced {
			break
		}
	}
	if !crowded.Coalesced {
		t.Fatal("seeded request never coalesced with the crowd")
	}
	if crowded.RunWalkers != 20 {
		t.Errorf("seeded request's run_walkers = %d, want its own 20", crowded.RunWalkers)
	}
	if fmt.Sprint(alone.Paths) != fmt.Sprint(crowded.Paths) {
		t.Fatal("seeded trajectories differ between alone and coalesced batches")
	}

	// Direct execution on an identically built system.
	sys, _ := testSystem(t)
	defer sys.Close()
	sess, err := sys.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.WalkSeeded(seed, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := res.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(paths) != fmt.Sprint(alone.Paths) {
		t.Fatal("served trajectories differ from direct WalkSeeded on an identical build")
	}
}

// TestShardedCoordinatorServing pins coordinator mode: a server whose
// backend carries a Sharded handle answers seeded requests with
// byte-identical trajectories to an unsharded server over the same
// build — the shard count is invisible to clients.
func TestShardedCoordinatorServing(t *testing.T) {
	seed := uint64(4711)
	req := WalkRequest{Walkers: 24, Steps: 12, Seed: &seed}

	_, plain := newTestServer(t, Config{})
	status, body := postWalk(t, plain.URL, req)
	if status != http.StatusOK {
		t.Fatalf("unsharded walk: %d %s", status, body)
	}
	var want WalkResponse
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}

	sys, spec := testSystem(t)
	sharded, err := flashmob.NewSharded(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New([]Backend{{Name: "deepwalk", Sys: sys, Spec: spec, Sharded: sharded}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer func() { hs.Close(); s.Close() }()

	status, body = postWalk(t, hs.URL, req)
	if status != http.StatusOK {
		t.Fatalf("sharded walk: %d %s", status, body)
	}
	var got WalkResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Paths) != len(want.Paths) {
		t.Fatalf("path counts differ: %d vs %d", len(got.Paths), len(want.Paths))
	}
	for j := range want.Paths {
		for i := range want.Paths[j] {
			if got.Paths[j][i] != want.Paths[j][i] {
				t.Fatalf("walker %d step %d: sharded %d, unsharded %d",
					j, i, got.Paths[j][i], want.Paths[j][i])
			}
		}
	}

	// The exchange counters surface on /metrics under "shards".
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Shards) != 1 || mr.Shards[0].Algorithm != "deepwalk" {
		t.Fatalf("metrics shards = %+v, want one deepwalk entry", mr.Shards)
	}
	if _, ok := mr.Shards[0].Report.Vector("shard_emigrants_total"); !ok {
		t.Fatal("shard_emigrants_total missing from shard report")
	}
}
