package serve

import (
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestOverloadSheds drives far more load than one executor over a
// one-slot queue can absorb and checks the bounded-queue contract: some
// requests are served, the excess is shed with 503 + Retry-After, and —
// because at most QueueDepth batches can be queued ahead of an admitted
// request — the p99 latency of admitted requests stays bounded by a
// small multiple of one batch's run time instead of growing with the
// offered load.
func TestOverloadSheds(t *testing.T) {
	_, hs := newTestServer(t, Config{
		QueueDepth:      1,
		Executors:       1,
		MaxBatchWalkers: 2048,
		MaxWait:         time.Millisecond,
	})

	const n = 30
	type res struct {
		status     int
		retryAfter string
		latency    time.Duration
		runMS      float64
	}
	results := make([]res, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			status, data := postWalk(t, hs.URL, WalkRequest{Walkers: 1024, Steps: 400})
			r := res{status: status, latency: time.Since(t0)}
			if status == 200 {
				r.runMS = decodeWalk(t, data).RunMS
			}
			results[i] = r
		}(i)
	}
	// Retry-After is checked separately on a raw request once the
	// executor is saturated, so we can read the header.
	wg.Wait()

	var served, shed int
	var latencies []time.Duration
	var maxRun float64
	for _, r := range results {
		switch r.status {
		case 200:
			served++
			latencies = append(latencies, r.latency)
			if r.runMS > maxRun {
				maxRun = r.runMS
			}
		case 503:
			shed++
		default:
			t.Fatalf("unexpected status %d", r.status)
		}
	}
	if served == 0 {
		t.Fatal("overload served nothing")
	}
	if shed == 0 {
		t.Fatal("overload shed nothing: the queue did not bound admission")
	}
	// Bounded p99 for admitted requests: an admitted request waits for at
	// most (QueueDepth + executing + its own) batches. Allow generous
	// scheduling slack; the point is the bound does not scale with n.
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	bound := time.Duration(4*maxRun)*time.Millisecond + 500*time.Millisecond
	if p99 > bound {
		t.Errorf("admitted p99 %v exceeds the queue-depth bound %v (max run %.1fms)", p99, bound, maxRun)
	}
	t.Logf("served %d, shed %d, admitted p99 %v (max run %.1fms)", served, shed, p99, maxRun)
}

// TestOverloadRetryAfter checks the 503 carries the Retry-After hint.
func TestOverloadRetryAfter(t *testing.T) {
	s, hs := newTestServer(t, Config{
		QueueDepth: 1, Executors: 1, MaxBatchRequests: 1, MaxWait: time.Millisecond,
	})
	// Saturate: one executing batch, one queued, one held by the
	// dispatcher; then the next request must bounce.
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postWalk(t, hs.URL, WalkRequest{Walkers: 1024, Steps: 400})
		}()
	}
	defer wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(hs.URL+"/v1/walk", "application/json",
			reqBody(t, WalkRequest{Walkers: 1024, Steps: 400}))
		if err != nil {
			t.Fatal(err)
		}
		retry := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if resp.StatusCode == 503 {
			if retry == "" {
				t.Fatal("503 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Skip("could not saturate the queue on this host")
		}
	}
	_ = s
}

// TestExpiredRequestShed parks a long batch on the single executor and
// then admits a request whose deadline cannot survive the wait: it must
// be shed before execution, not walked late.
func TestExpiredRequestShed(t *testing.T) {
	s, hs := newTestServer(t, Config{
		Executors: 1, MaxBatchRequests: 1, MaxWait: 0, QueueDepth: 8,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postWalk(t, hs.URL, WalkRequest{Walkers: 2048, Steps: 300}) // occupies the executor
	}()
	time.Sleep(5 * time.Millisecond)
	// A deadline far below any scheduling latency: whichever checkpoint
	// sees the request first (dispatcher dequeue or executor start) must
	// shed it.
	status, data := postWalk(t, hs.URL, WalkRequest{Walkers: 4, Steps: 2, TimeoutMS: 0.0005})
	wg.Wait()
	if status != 503 {
		t.Fatalf("expired request got status %d body %s, want 503", status, data)
	}
	rep := s.Metrics()
	if c, ok := rep.Counter("serve_shed_expired_total"); !ok || c.Value == 0 {
		t.Errorf("serve_shed_expired_total not incremented: %+v", c)
	}
}

// TestGracefulShutdownDrains closes the server while requests are in
// flight: every admitted request must still be answered (drained batches
// execute to completion), late arrivals get the ErrClosed-mapped 503,
// and Close is idempotent. Runs under -race in the race CI leg.
func TestGracefulShutdownDrains(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxWait: 5 * time.Millisecond, QueueDepth: 64})

	const n = 8
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _ = postWalk(t, hs.URL, WalkRequest{Walkers: 64, Steps: 10})
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	s.Close()
	wg.Wait()

	for i, st := range statuses {
		if st != 200 && st != 503 {
			t.Errorf("in-flight request %d: status %d, want 200 (drained) or 503 (refused)", i, st)
		}
	}

	// Late requests are refused with the ErrClosed-mapped 503.
	status, data := postWalk(t, hs.URL, WalkRequest{Walkers: 4, Steps: 2})
	if status != 503 {
		t.Fatalf("post-close walk: status %d body %s, want 503", status, data)
	}

	// Health flips to closed/503 so load balancers drain the instance.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("post-close healthz: %d, want 503", resp.StatusCode)
	}

	s.Close() // idempotent
}
