package serve

import "flashmob/internal/obs"

// serveMetrics is the serving layer's metric set, always on (unlike the
// engine's Config.Metrics, the serve path is request-grained, not
// walker-grained, so the cost is irrelevant). Every metric here is
// documented in docs/SERVING.md; serve_test.go enforces the contract.
type serveMetrics struct {
	reg *obs.Registry

	// Admission accounting.
	requests     *obs.Counter
	served       *obs.Counter
	shedOverload *obs.Counter
	shedExpired  *obs.Counter
	shedClosed   *obs.Counter
	failed       *obs.Counter
	queueDepth   *obs.Gauge

	// Batch structure.
	batches       *obs.Counter
	runs          *obs.Counter
	batchRequests *obs.Histogram
	batchWalkers  *obs.Histogram

	// runCohorts is the cohort count per engine run: 1 for solo runs,
	// more when a wave mixed algorithms or step counts into one run.
	runCohorts *obs.Histogram

	// Latency: queue wait and end-to-end per request, wall time per
	// engine run.
	queueNS   *obs.Histogram
	latencyNS *obs.Histogram
	runNS     *obs.Histogram
}

// newServeMetrics builds the serve metric set on a fresh registry.
func newServeMetrics() *serveMetrics {
	reg := obs.NewRegistry()
	return &serveMetrics{
		reg: reg,
		requests: reg.Counter(obs.Desc{
			Name: "serve_requests_total", Unit: "count", Stage: "serve",
			Help: "walk requests admitted to the queue",
		}),
		served: reg.Counter(obs.Desc{
			Name: "serve_served_total", Unit: "count", Stage: "serve",
			Help: "walk requests answered 200 with trajectories",
		}),
		shedOverload: reg.Counter(obs.Desc{
			Name: "serve_shed_overload_total", Unit: "count", Stage: "serve",
			Help: "requests shed 503 because the admission queue was full",
		}),
		shedExpired: reg.Counter(obs.Desc{
			Name: "serve_shed_expired_total", Unit: "count", Stage: "serve",
			Help: "requests shed 503 because their deadline passed before execution",
		}),
		shedClosed: reg.Counter(obs.Desc{
			Name: "serve_shed_closed_total", Unit: "count", Stage: "serve",
			Help: "requests answered 503 because the server was shutting down",
		}),
		failed: reg.Counter(obs.Desc{
			Name: "serve_failed_total", Unit: "count", Stage: "serve",
			Help: "requests answered 500 by an engine error",
		}),
		queueDepth: reg.Gauge(obs.Desc{
			Name: "serve_queue_depth", Unit: "count", Stage: "serve",
			Help: "requests currently waiting in admission queues",
		}),
		batches: reg.Counter(obs.Desc{
			Name: "serve_batches_total", Unit: "count", Stage: "serve",
			Help: "scheduling batches executed",
		}),
		runs: reg.Counter(obs.Desc{
			Name: "serve_runs_total", Unit: "count", Stage: "serve",
			Help: "engine runs executed (coalesced groups plus private seeded runs)",
		}),
		batchRequests: reg.Histogram(obs.Desc{
			Name: "serve_batch_requests", Unit: "count", Stage: "serve",
			Help: "requests per executed scheduling batch",
		}),
		batchWalkers: reg.Histogram(obs.Desc{
			Name: "serve_batch_walkers", Unit: "walkers", Stage: "serve",
			Help: "walkers per executed scheduling batch",
		}),
		runCohorts: reg.Histogram(obs.Desc{
			Name: "serve_run_cohorts", Unit: "count", Stage: "serve",
			Help: "cohorts per engine run (1 = solo, more = mixed-algorithm wave)",
		}),
		queueNS: reg.Histogram(obs.Desc{
			Name: "serve_request_queue_ns", Unit: "ns", Stage: "serve",
			Help: "time from admission to batch execution start, per served request",
		}),
		latencyNS: reg.Histogram(obs.Desc{
			Name: "serve_request_latency_ns", Unit: "ns", Stage: "serve",
			Help: "time from admission to response delivery, per served request",
		}),
		runNS: reg.Histogram(obs.Desc{
			Name: "serve_batch_run_ns", Unit: "ns", Stage: "serve",
			Help: "engine wall time per run executed on behalf of a batch",
		}),
	}
}
