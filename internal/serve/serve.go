// Package serve is the walk-query serving layer: a batched, load-shedding
// HTTP service (cmd/fmserve) on top of flashmob's concurrent sessions.
//
// The FlashMob insight — throughput comes from amortizing many walkers
// over one pass of the partitioned graph — applies unchanged to serving:
// running small independent queries one-by-one pays the full per-run cost
// (session setup, walker arrays, a shuffler, per-step stage overhead over
// every partition) for a handful of walkers, while coalescing them into
// one shared engine run pays it once. The server therefore admits
// requests into a bounded queue, a per-engine micro-batcher collects
// them into batches (closed by a max-walkers budget or a max-wait
// window), and executors run each batch on pooled engine sessions,
// demuxing per-request slices of the walker array back to the callers.
//
// Batches mix algorithms: backends that share one built system share one
// queue, and each wave executes as a single mixed-cohort engine run
// (System.WalkMixed) — requests for different algorithms and step counts
// become cohorts of one shared partition sweep instead of fragmenting
// into one engine run per (algorithm, steps) pair. docs/SERVING.md spells
// out what still fragments a batch.
//
// Admission control protects the engine: a full queue answers 503 with
// Retry-After, requests whose deadline passes while queued are shed
// before execution, and Close drains in-flight batches before closing
// the underlying systems (late requests get the ErrClosed-mapped 503).
//
// Determinism: a request carrying a seed gets a private cohort of its
// wave's run, and mixed runs rebind every cohort from its spec before
// stepping, so its trajectories are a pure function of (build, algorithm,
// seed, walkers, steps) — identical whether it rode a batch alone,
// coalesced with others, or executed on a pooled session an earlier wave
// used. Unseeded requests share one per-batch-seeded cohort and are
// sliced out of its walker array.
//
// docs/SERVING.md documents the endpoints, the wire schema, and the
// tuning knobs.
package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"flashmob"
)

// Backend is one served algorithm: a name to route requests by and the
// built system that executes them.
type Backend struct {
	// Name routes requests (the WalkRequest.Algorithm field); the first
	// backend is the default for requests that leave it empty.
	Name string
	// Sys is the built system. It must be built with RecordPaths (the
	// responses carry trajectories) and without a MemoryBudget (episode
	// splitting would drop all but the last episode's history); New
	// probes both. Several backends may share one system: they then share
	// one batching queue and their requests coalesce into mixed-cohort
	// runs (the engine samples each cohort with its own algorithm, so one
	// system serves every unweighted walk shape). The server owns the
	// system from New on and closes it in Close.
	Sys *flashmob.System
	// Spec is the algorithm the system was built with; its Steps field
	// resolves requests that leave steps at 0.
	Spec flashmob.Algorithm
	// Sharded, when non-nil, turns the backend's engine group into a
	// shard coordinator: each wave's mixed-cohort run is scattered across
	// the topology's shard engines and the trajectories gathered back,
	// instead of executing on a local engine session. The handle must
	// wrap the same Sys (NewSharded / NewShardedRemote on it); admission,
	// batching, deadlines, and drain semantics are unchanged, and
	// responses are bitwise-identical to unsharded serving. Backends
	// sharing one system must agree on this handle.
	Sharded *flashmob.ShardedSystem
	// Dyn, when non-nil, makes this a dynamic backend: Sys must be nil
	// (the dynamic system owns its engine builds), Sharded is not
	// supported, and every wave executes against an epoch snapshot pinned
	// when the batch starts (walk-on-snapshot consistency — in-flight
	// batches are never invalidated by ingests, freezes, or compactions;
	// see docs/SERVING.md). The server additionally exposes POST
	// /v1/ingest routed to this system, which it owns from New on and
	// closes in Close. Backends sharing one dynamic system share one
	// queue, exactly as Sys-backed backends do. Must be built with
	// RecordPaths; overlay epochs restrict served algorithms to
	// first-order history-free walks.
	Dyn *flashmob.DynamicSystem
}

// Config tunes the server's batching and admission control. Zero values
// take the documented defaults.
type Config struct {
	// MaxBatchWalkers closes a batch once its requests sum to this many
	// walkers, and caps the walker array of one coalesced engine run
	// (default 8192).
	MaxBatchWalkers int
	// MaxBatchRequests closes a batch after this many requests (0 =
	// unlimited; 1 disables coalescing — the batch-size-1 baseline).
	MaxBatchRequests int
	// MaxWait is the micro-batching window: how long an open batch waits
	// for more requests before executing (default 2ms).
	MaxWait time.Duration
	// QueueDepth bounds the per-algorithm admission queue; a full queue
	// sheds new requests with 503 (default 256).
	QueueDepth int
	// Executors is how many batches may execute concurrently per
	// algorithm, each on its own engine session (default 2).
	Executors int
	// DefaultTimeout is the deadline applied to requests that send no
	// timeout_ms (default 2s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-supplied timeouts (default 30s).
	MaxTimeout time.Duration
	// MaxWalkersPerRequest bounds one request's walker count (default
	// MaxBatchWalkers; never above it).
	MaxWalkersPerRequest int
	// MaxSteps bounds one request's walk length (default 512).
	MaxSteps int
	// Seed drives the per-batch seeds of unseeded (sampling-mode) runs.
	Seed uint64
	// SplitCohortRuns disables mixed-cohort execution: every cohort of a
	// wave gets its own engine run, one per (algorithm, steps) pair — the
	// fragmented pre-mixed behavior, kept as the benchmark baseline
	// (fmbench -exp mixed). Responses are bitwise-identical either way;
	// only the goodput differs.
	SplitCohortRuns bool
}

// withDefaults resolves the documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxBatchWalkers <= 0 {
		c.MaxBatchWalkers = 8192
	}
	if c.MaxWait < 0 {
		c.MaxWait = 0
	} else if c.MaxWait == 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxWalkersPerRequest <= 0 || c.MaxWalkersPerRequest > c.MaxBatchWalkers {
		c.MaxWalkersPerRequest = c.MaxBatchWalkers
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 512
	}
	return c
}

// Server coalesces walk queries into batched engine runs and answers
// them over HTTP. Create with New, mount Handler on an http.Server, and
// Close to drain and shut down.
type Server struct {
	cfg      Config
	m        *serveMetrics
	backends []*backend
	byName   map[string]*backend
	groups   []*engineGroup
	// dyn is the dynamic system ingest routes to (the server supports at
	// most one); nil on static servers.
	dyn    *flashmob.DynamicSystem
	start  time.Time
	runSeq atomic.Uint64

	// now is the server's clock, read once per dispatch wave and once per
	// execution wave for deadline checks and latency accounting (not per
	// pending request). Overridden by tests to pin shed and latency
	// behavior to a fake clock.
	now func() time.Time

	// mu guards closed against concurrent enqueues: enqueue holds the
	// read side so Close cannot close a queue mid-send.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

// New builds a server over the given backends (at least one; the first
// is the default algorithm). Backends that pass the same *System share
// one engine group — one queue, one batching window, and mixed-cohort
// runs across their algorithms; distinct systems batch independently.
// Each distinct system is probed with a one-walker walk to verify it can
// produce trajectories; the server owns the systems afterwards and
// closes them in Close.
func New(backends []Backend, cfg Config) (*Server, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("serve: no backends")
	}
	s := &Server{
		cfg:    cfg.withDefaults(),
		m:      newServeMetrics(),
		byName: make(map[string]*backend, len(backends)),
		start:  time.Now(),
		now:    time.Now,
	}
	bySys := make(map[*flashmob.System]*engineGroup)
	byDyn := make(map[*flashmob.DynamicSystem]*engineGroup)
	for _, bk := range backends {
		if bk.Name == "" || (bk.Sys == nil && bk.Dyn == nil) {
			return nil, fmt.Errorf("serve: backend needs a name and a system")
		}
		if bk.Dyn != nil && bk.Sys != nil {
			return nil, fmt.Errorf("serve: backend %q: Sys and Dyn are exclusive", bk.Name)
		}
		if bk.Dyn != nil && bk.Sharded != nil {
			return nil, fmt.Errorf("serve: backend %q: dynamic backends cannot be sharded", bk.Name)
		}
		if _, dup := s.byName[bk.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate backend %q", bk.Name)
		}
		var g *engineGroup
		if bk.Dyn != nil {
			if s.dyn != nil && s.dyn != bk.Dyn {
				return nil, fmt.Errorf("serve: backend %q: at most one dynamic system per server", bk.Name)
			}
			s.dyn = bk.Dyn
			g = byDyn[bk.Dyn]
			if g == nil {
				if err := probeDyn(bk.Dyn); err != nil {
					return nil, fmt.Errorf("serve: backend %q: %w", bk.Name, err)
				}
				g = &engineGroup{
					s:       s,
					dyn:     bk.Dyn,
					queue:   make(chan *pending, s.cfg.QueueDepth),
					batches: make(chan []*pending),
					free:    make(chan []*pending, s.cfg.Executors+1),
				}
				byDyn[bk.Dyn] = g
				s.groups = append(s.groups, g)
			}
		} else if g = bySys[bk.Sys]; g == nil {
			if err := probe(bk.Sys); err != nil {
				return nil, fmt.Errorf("serve: backend %q: %w", bk.Name, err)
			}
			g = &engineGroup{
				s:        s,
				sys:      bk.Sys,
				queue:    make(chan *pending, s.cfg.QueueDepth),
				batches:  make(chan []*pending),
				free:     make(chan []*pending, s.cfg.Executors+1),
				sessions: make(chan *flashmob.Session, s.cfg.Executors),
			}
			bySys[bk.Sys] = g
			s.groups = append(s.groups, g)
		}
		if bk.Sharded != nil {
			if g.sharded != nil && g.sharded != bk.Sharded {
				return nil, fmt.Errorf("serve: backend %q: backends sharing one system must share one sharded handle", bk.Name)
			}
			g.sharded = bk.Sharded
		}
		b := &backend{name: bk.Name, sys: bk.Sys, spec: bk.Spec, g: g}
		g.backends = append(g.backends, b)
		s.byName[bk.Name] = b
		s.backends = append(s.backends, b)
	}
	for _, g := range s.groups {
		s.wg.Add(1 + s.cfg.Executors)
		go g.dispatch()
		for i := 0; i < s.cfg.Executors; i++ {
			go g.executor()
		}
	}
	return s, nil
}

// probe verifies a system can serve: a one-walker, one-step walk must
// yield a path, which catches systems built without RecordPaths before
// the first request does.
func probe(sys *flashmob.System) error {
	res, err := sys.Walk(1, 1)
	if err != nil {
		return err
	}
	if _, err := res.Paths(); err != nil {
		return fmt.Errorf("system cannot produce trajectories (build it with RecordPaths): %w", err)
	}
	return nil
}

// probeDyn is probe for a dynamic backend, walking an epoch snapshot.
func probeDyn(d *flashmob.DynamicSystem) error {
	snap, err := d.Snapshot()
	if err != nil {
		return err
	}
	defer snap.Release()
	res, err := snap.WalkSeeded(0, 1, 1)
	if err != nil {
		return err
	}
	if _, err := res.Paths(); err != nil {
		return fmt.Errorf("system cannot produce trajectories (build it with RecordPaths): %w", err)
	}
	return nil
}

// Handler returns the server's HTTP handler: POST /v1/walk, GET /v1/plan,
// GET /healthz, GET /metrics (see docs/SERVING.md).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/walk", s.handleWalk)
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Close shuts the server down gracefully: new requests are refused with
// the ErrClosed-mapped 503, every request already admitted is drained —
// batched, executed, and answered (or shed if its deadline passed) — and
// the backends' systems are closed once the last batch finishes.
// Idempotent; Handler keeps answering health checks (as closed) after.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, g := range s.groups {
		close(g.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
	for _, g := range s.groups {
		if g.dyn != nil {
			g.dyn.Close()
			continue
		}
		// Drain the session pool before closing the system: System.Close
		// blocks until every open session closes.
		for {
			select {
			case sess := <-g.sessions:
				sess.Close()
				continue
			default:
			}
			break
		}
		g.sys.Close()
	}
}

// Metrics snapshots the serving layer's own registry (queue depth, shed
// counters, batch shape, latency histograms).
func (s *Server) Metrics() *flashmob.Report { return s.m.reg.Snapshot() }
