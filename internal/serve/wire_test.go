package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"flashmob"
)

// reqBody marshals a request for raw http.Post calls.
func reqBody(t *testing.T, req WalkRequest) io.Reader {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

// TestWalkResponseSchemaStable pins the wire schema byte for byte:
// encoding/json emits struct fields in declaration order, so the
// response body's field order is deterministic and part of the contract
// documented in docs/SERVING.md. Renaming or reordering a field fails
// here first.
func TestWalkResponseSchemaStable(t *testing.T) {
	wr := WalkResponse{
		SchemaVersion: 1,
		Algorithm:     "deepwalk",
		Walkers:       2,
		Steps:         1,
		Seeded:        true,
		Seed:          9,
		Coalesced:     true,
		BatchRequests: 3,
		RunWalkers:    2,
		RunCohorts:    2,
		Paths:         [][]flashmob.VID{{1, 2}, {3, 4}},
		QueueMS:       0.5,
		RunMS:         1.5,
	}
	want := `{"schema_version":1,"algorithm":"deepwalk","walkers":2,"steps":1,` +
		`"seeded":true,"seed":9,"coalesced":true,"batch_requests":3,"run_walkers":2,` +
		`"run_cohorts":2,"paths":[[1,2],[3,4]],"queue_ms":0.5,"run_ms":1.5}`
	got, err := json.Marshal(wr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("WalkResponse encoding drifted:\n got %s\nwant %s", got, want)
	}

	// Two encodings of the same value are byte-identical.
	again, err := json.Marshal(wr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again) {
		t.Error("WalkResponse encoding is not deterministic")
	}

	ew := ErrorResponse{SchemaVersion: 1, Error: "admission queue full", RetryAfterMS: 2}
	wantErr := `{"schema_version":1,"error":"admission queue full","retry_after_ms":2}`
	gotErr, err := json.Marshal(ew)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotErr) != wantErr {
		t.Errorf("ErrorResponse encoding drifted:\n got %s\nwant %s", gotErr, wantErr)
	}
}

// TestWalkResponseFastEncoderMatchesJSON pins the handler's fast paths
// encoder to encoding/json byte for byte (modulo the Encoder's trailing
// newline), across the omitempty and empty/ragged-paths edge cases.
func TestWalkResponseFastEncoderMatchesJSON(t *testing.T) {
	cases := []WalkResponse{
		{
			SchemaVersion: 1, Algorithm: "deepwalk", Walkers: 2, Steps: 1,
			Seeded: true, Seed: 9, Coalesced: true, BatchRequests: 3,
			RunWalkers: 2, RunCohorts: 2,
			Paths:   [][]flashmob.VID{{1, 2}, {3, 4294967295}},
			QueueMS: 0.5, RunMS: 1.5,
		},
		{ // unseeded: seed omitted
			SchemaVersion: 1, Algorithm: "node2vec", Walkers: 1, Steps: 2,
			Paths: [][]flashmob.VID{{7, 0, 7}},
		},
		{ // empty but non-nil paths encode as []
			SchemaVersion: 1, Algorithm: "pagerank",
			Paths: [][]flashmob.VID{},
		},
		{ // seeded with seed 0: omitempty drops it either way
			SchemaVersion: 1, Algorithm: "deepwalk", Seeded: true,
			Paths: [][]flashmob.VID{{}, {5}},
		},
	}
	for i, wr := range cases {
		want, err := json.Marshal(wr)
		if err != nil {
			t.Fatal(err)
		}
		got := encodeWalkResponse(nil, &wr)
		if got == nil {
			t.Fatalf("case %d: fast encoder declined", i)
		}
		if string(got) != string(want)+"\n" {
			t.Errorf("case %d: fast encoding drifted:\n got %s\nwant %s", i, got, want)
		}
		if wr.Paths == nil {
			t.Errorf("case %d: encoder must restore resp.Paths", i)
		}
	}
	// Nil paths: the fast path declines and the caller falls back.
	nilPaths := WalkResponse{SchemaVersion: 1, Algorithm: "deepwalk"}
	if got := encodeWalkResponse(nil, &nilPaths); got != nil {
		t.Errorf("fast encoder should decline nil paths, got %s", got)
	}
}

// wireStructs lists every body type a client can receive or send.
var wireStructs = []any{
	WalkRequest{}, WalkResponse{}, ErrorResponse{},
	PlanResponse{}, PlanEntry{}, MetricsResponse{}, EngineReport{}, HealthResponse{},
	IngestRequest{}, IngestResponse{},
}

// jsonFields extracts the json tag names of a struct.
func jsonFields(v any) []string {
	var out []string
	rt := reflect.TypeOf(v)
	for i := 0; i < rt.NumField(); i++ {
		tag := rt.Field(i).Tag.Get("json")
		if name, _, _ := strings.Cut(tag, ","); name != "" && name != "-" {
			out = append(out, name)
		}
	}
	return out
}

// servingDoc loads docs/SERVING.md.
func servingDoc(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "SERVING.md"))
	if err != nil {
		t.Fatalf("docs/SERVING.md missing: %v", err)
	}
	return string(data)
}

// TestEveryWireFieldDocumented extends the repo's schema-documentation
// contract (cmd/fmbench's TestEveryMetricDocumented) to the serving wire
// types: every JSON field a client can see must appear in
// docs/SERVING.md.
func TestEveryWireFieldDocumented(t *testing.T) {
	doc := servingDoc(t)
	for _, v := range wireStructs {
		for _, f := range jsonFields(v) {
			if !strings.Contains(doc, `"`+f+`"`) {
				t.Errorf("wire field %q of %T not documented in docs/SERVING.md", f, v)
			}
		}
	}
}

// TestEveryServeMetricDocumented holds the serve registry to the same
// standard as the engine registries: every metric that can appear in
// GET /metrics must be documented in docs/SERVING.md.
func TestEveryServeMetricDocumented(t *testing.T) {
	doc := servingDoc(t)
	rep := newServeMetrics().reg.Snapshot()
	var names []string
	for _, c := range rep.Counters {
		names = append(names, c.Name)
	}
	for _, g := range rep.Gauges {
		names = append(names, g.Name)
	}
	for _, h := range rep.Histograms {
		names = append(names, h.Name)
	}
	for _, v := range rep.Vectors {
		names = append(names, v.Name)
	}
	if len(names) == 0 {
		t.Fatal("serve registry is empty")
	}
	for _, n := range names {
		if !strings.Contains(doc, "`"+n+"`") {
			t.Errorf("metric %q not documented in docs/SERVING.md", n)
		}
	}
}
