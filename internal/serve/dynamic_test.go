package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"flashmob"
)

// testDynamic builds a small dynamic system suitable for serving.
func testDynamic(t testing.TB) *flashmob.DynamicSystem {
	t.Helper()
	g, err := flashmob.Generate("YT", 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	d, err := flashmob.NewDynamic(g, flashmob.DynamicOptions{
		Seed: 7, Workers: 2, Undirected: true, RecordPaths: true,
		TargetGroups: 8, Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// newDynamicServer stands up a Server over a dynamic backend.
func newDynamicServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	d := testDynamic(t)
	s, err := New([]Backend{{Name: "deepwalk", Dyn: d, Spec: flashmob.DeepWalk()}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	return s, hs
}

// postIngest issues one ingest request and returns status + decoded body.
func postIngest(t *testing.T, base string, req IngestRequest) (int, IngestResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir IngestResponse
	if resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, ir
}

// TestDynamicServeEndToEnd drives a dynamic server through its lifecycle:
// walks carry the epoch they sampled, ingest+freeze advances it, and
// later walks observe the newer epoch (walk-on-snapshot with
// read-your-freeze ordering).
func TestDynamicServeEndToEnd(t *testing.T) {
	_, hs := newDynamicServer(t, Config{MaxWait: time.Millisecond})

	status, data := postWalk(t, hs.URL, WalkRequest{Walkers: 5, Steps: 3})
	if status != 200 {
		t.Fatalf("walk: status %d body %s", status, data)
	}
	wr := decodeWalk(t, data)
	if wr.Epoch != 1 {
		t.Fatalf("first walk sampled epoch %d, want 1", wr.Epoch)
	}
	if len(wr.Paths) != 5 || len(wr.Paths[0]) != 4 {
		t.Fatalf("paths shape: %d × %d", len(wr.Paths), len(wr.Paths[0]))
	}

	status, ir := postIngest(t, hs.URL, IngestRequest{
		Edges: [][2]flashmob.VID{{1, 200}, {2, 201}}, Freeze: true,
	})
	if status != 200 {
		t.Fatalf("ingest: status %d", status)
	}
	if ir.Accepted != 2 || ir.Epoch != 2 || ir.DeltaEdges == 0 || ir.PendingEdges != 0 {
		t.Fatalf("ingest response: %+v", ir)
	}

	status, data = postWalk(t, hs.URL, WalkRequest{Walkers: 5, Steps: 3})
	if status != 200 {
		t.Fatalf("walk after freeze: status %d body %s", status, data)
	}
	if wr = decodeWalk(t, data); wr.Epoch < ir.Epoch {
		t.Fatalf("walk after freeze sampled epoch %d, want ≥ %d", wr.Epoch, ir.Epoch)
	}

	// Seeded determinism holds per epoch: two identical seeded requests
	// against the same (now quiescent) epoch answer identically.
	seed := uint64(99)
	_, d1 := postWalk(t, hs.URL, WalkRequest{Walkers: 4, Steps: 5, Seed: &seed})
	_, d2 := postWalk(t, hs.URL, WalkRequest{Walkers: 4, Steps: 5, Seed: &seed})
	if p1, p2 := decodeWalk(t, d1).Paths, decodeWalk(t, d2).Paths; !reflect.DeepEqual(p1, p2) {
		t.Fatalf("seeded replay diverged on a quiescent epoch:\n%v\n%v", p1, p2)
	}

	// Metrics carry the dyn report.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mr MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if mr.Dyn == nil {
		t.Fatal("GET /metrics on a dynamic server has no dyn report")
	}
}

// TestIngestOnStaticServer pins the 404 for non-dynamic servers.
func TestIngestOnStaticServer(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxWait: time.Millisecond})
	status, _ := postIngest(t, hs.URL, IngestRequest{Edges: [][2]flashmob.VID{{0, 1}}})
	if status != http.StatusNotFound {
		t.Fatalf("ingest on static server: status %d, want 404", status)
	}
}

// TestDynamicServeUnderChurn streams walks while ingests, freezes, and
// compactions land: zero failed requests across ≥ 3 epoch swaps, and the
// epochs observed by one serial client never go backwards.
func TestDynamicServeUnderChurn(t *testing.T) {
	s, hs := newDynamicServer(t, Config{MaxWait: time.Millisecond, Executors: 2})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			status, data := postWalk(t, hs.URL, WalkRequest{Walkers: 8, Steps: 4})
			if status != 200 {
				t.Errorf("walk under churn: status %d body %s", status, data)
				return
			}
			wr := decodeWalk(t, data)
			if wr.Epoch < last {
				t.Errorf("epoch went backwards: %d after %d", wr.Epoch, last)
				return
			}
			last = wr.Epoch
		}
	}()

	for round := 0; round < 4; round++ {
		edges := make([][2]flashmob.VID, 10)
		for i := range edges {
			edges[i] = [2]flashmob.VID{flashmob.VID(round*10 + i), flashmob.VID(300 + i)}
		}
		status, _ := postIngest(t, hs.URL, IngestRequest{Edges: edges, Freeze: true})
		if status != 200 {
			t.Fatalf("ingest round %d: status %d", round, status)
		}
		if round%2 == 1 {
			if _, err := s.dyn.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	st := s.dyn.Stats()
	if st.Epoch < 4 {
		t.Fatalf("only reached epoch %d, want ≥ 4 swaps", st.Epoch)
	}
	if st.Compactions < 2 {
		t.Fatalf("only %d compactions, want ≥ 2", st.Compactions)
	}
}
