package serve

import (
	"context"
	"errors"
	"time"

	"flashmob"
	"flashmob/internal/dyn"
	"flashmob/internal/obs"
	"flashmob/internal/rng"
)

// pending is one admitted walk query waiting for its batch: the
// normalized request plus the channel its outcome is delivered on.
type pending struct {
	b        *backend // the algorithm backend the request routed to
	walkers  int
	steps    int // resolved: never 0
	seed     uint64
	seeded   bool
	enq      time.Time
	deadline time.Time
	resp     chan outcome // capacity 1; exactly one outcome per pending
}

// outcome is what the executor (or the shedding path) delivers back to
// the waiting handler.
type outcome struct {
	status        int // http.StatusOK or the shed/failure code
	errMsg        string
	retry         bool // advertise Retry-After on the error
	steps         int
	batchRequests int
	runWalkers    int
	runCohorts    int
	paths         [][]flashmob.VID
	epoch         uint64 // snapshot the run sampled (dynamic groups only)
	execStart     time.Time
	runDur        time.Duration
}

// backend is one served algorithm: the route name, the spec that
// resolves default step counts, and the engine group that executes its
// requests. Backends sharing one built system share one engine group —
// and therefore one queue, one batching window, and one mixed engine run
// per wave.
type backend struct {
	name string
	sys  *flashmob.System
	spec flashmob.Algorithm
	g    *engineGroup
}

// engineGroup is one built system's batching pipeline: an admission
// queue shared by every backend routed to the system, a dispatcher that
// assembles cross-algorithm batches, and executors that run each batch
// as one mixed-cohort engine run.
type engineGroup struct {
	s        *Server
	sys      *flashmob.System
	backends []*backend
	// sharded, when non-nil, makes the group a shard coordinator: waves
	// execute across the topology's shard engines instead of on pooled
	// local sessions (Backend.Sharded).
	sharded *flashmob.ShardedSystem
	// dyn, when non-nil, makes the group dynamic: each wave pins the
	// current epoch snapshot for its run (walk-on-snapshot), so a wave is
	// never invalidated by a concurrent freeze or compaction and never
	// mixes epochs. Sessions are per-wave — epoch builds come and go, so
	// there is no pool to amortize into (sys and sessions are nil).
	dyn     *flashmob.DynamicSystem
	queue   chan *pending
	batches chan []*pending
	// free recycles batch slices between executors and the dispatcher so
	// the steady-state dispatch path allocates nothing per batch.
	free chan []*pending
	// sessions pools engine sessions across waves (capacity Executors):
	// acquiring a session allocates walker arrays and per-cohort slots, so
	// reusing one turns that into a per-group rather than per-wave cost.
	// Mixed runs rebind every cohort slot from its spec before stepping,
	// which makes a pooled session's runs bitwise-identical to a fresh
	// session's — Server.Close drains and closes whatever is pooled.
	sessions chan *flashmob.Session
}

// Enqueue errors, mapped to HTTP by the handler.
var (
	errOverloaded = errors.New("serve: admission queue full")
	errClosed     = errors.New("serve: server closed")
)

// enqueue admits p or reports why it cannot: a closed server or a full
// queue. The read lock pairs with Close's write lock so the queue is
// never closed between the check and the send.
func (b *backend) enqueue(p *pending) error {
	s := b.g.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errClosed
	}
	select {
	case b.g.queue <- p:
		s.m.requests.Inc()
		s.m.queueDepth.Add(1)
		return nil
	default:
		return errOverloaded
	}
}

// expiredAt reports whether p's deadline had passed at instant t. The
// instant is read once per dispatch or execution wave (Server.now), not
// once per pending request — deadline granularity is milliseconds, so a
// wave-grained clock sheds identically while keeping clock reads off the
// per-request path.
func (p *pending) expiredAt(t time.Time) bool { return t.After(p.deadline) }

// shed answers p with a load-shedding 503 and charges the given counter.
func (g *engineGroup) shed(p *pending, why string, counter *obs.Counter) {
	counter.Inc()
	p.resp <- outcome{status: 503, errMsg: why, retry: true}
}

// newBatch takes a recycled batch slice or allocates the first few.
func (g *engineGroup) newBatch(first *pending) []*pending {
	select {
	case b := <-g.free:
		return append(b, first)
	default:
		return append(make([]*pending, 0, 16), first)
	}
}

// recycle returns a drained batch slice to the dispatcher.
func (g *engineGroup) recycle(batch []*pending) {
	select {
	case g.free <- batch[:0]:
	default:
	}
}

// dispatch is the group's micro-batcher: it opens a batch on the first
// queued request — whatever algorithm it routed to — then collects more
// until the walker budget or request cap is hit, a request does not fit
// (it carries over to the next batch), or the max-wait window closes.
// Requests for different algorithms and step counts land in one batch;
// the executor runs them as cohorts of a single mixed engine run.
// Expired requests are shed at dequeue, before they can occupy batch
// budget. When the queue closes (server shutdown) the remaining admitted
// requests are still drained into final batches.
func (g *engineGroup) dispatch() {
	defer g.s.wg.Done()
	defer close(g.batches)
	cfg := &g.s.cfg
	var carry *pending
	for {
		first := carry
		carry = nil
		if first == nil {
			var ok bool
			first, ok = <-g.queue
			if !ok {
				return
			}
			g.s.m.queueDepth.Add(-1)
		}
		// One clock read covers the whole wave's deadline checks.
		now := g.s.now()
		if first.expiredAt(now) {
			g.shed(first, "deadline expired while queued", g.s.m.shedExpired)
			continue
		}
		batch := g.newBatch(first)
		walkers := first.walkers
		window := time.NewTimer(cfg.MaxWait)
	collect:
		for walkers < cfg.MaxBatchWalkers &&
			(cfg.MaxBatchRequests == 0 || len(batch) < cfg.MaxBatchRequests) {
			select {
			case p, ok := <-g.queue:
				if !ok {
					break collect
				}
				g.s.m.queueDepth.Add(-1)
				if p.expiredAt(now) {
					g.shed(p, "deadline expired while queued", g.s.m.shedExpired)
					continue
				}
				if walkers+p.walkers > cfg.MaxBatchWalkers {
					carry = p
					break collect
				}
				batch = append(batch, p)
				walkers += p.walkers
			case <-window.C:
				break collect
			}
		}
		window.Stop()
		g.s.m.batches.Inc()
		g.s.m.batchRequests.Observe(uint64(len(batch)))
		g.s.m.batchWalkers.Observe(uint64(walkers))
		g.batches <- batch
	}
}

// executor drains assembled batches and runs them; several run per
// group, each batch on a session from the group's pool. Each executor
// owns one waveScratch, so the batch→cohort assembly reuses its group
// and cohort storage across batches.
func (g *engineGroup) executor() {
	defer g.s.wg.Done()
	var ws waveScratch
	for batch := range g.batches {
		g.execute(&ws, batch)
		g.recycle(batch)
	}
}

// runGroup is one cohort's worth of a batch: requests answered from one
// contiguous segment of a mixed run's walker array.
type runGroup struct {
	b       *backend
	steps   int
	walkers int
	seed    uint64
	seeded  bool
	reqs    []*pending
}

// waveScratch is an executor's reusable batch-assembly state: the cohort
// groups and the cohort specs derived from them. Group entries keep
// their request-slice capacity across batches, so assembling a
// steady-state wave allocates nothing (batcher_test.go pins this).
type waveScratch struct {
	groups  []runGroup
	cohorts []flashmob.CohortSpec
}

// reset empties the scratch, retaining every group's reqs capacity.
func (ws *waveScratch) reset() {
	ws.groups = ws.groups[:0]
	ws.cohorts = ws.cohorts[:0]
}

// addGroup appends a cohort group, reusing a previously grown entry's
// storage when one is available.
func (ws *waveScratch) addGroup(b *backend, steps int, seed uint64, seeded bool, p *pending) {
	if len(ws.groups) < cap(ws.groups) {
		ws.groups = ws.groups[:len(ws.groups)+1]
	} else {
		ws.groups = append(ws.groups, runGroup{})
	}
	grp := &ws.groups[len(ws.groups)-1]
	grp.b, grp.steps, grp.walkers, grp.seed, grp.seeded = b, steps, p.walkers, seed, seeded
	grp.reqs = append(grp.reqs[:0], p)
}

// assemble splits a batch into cohort groups: each seeded request gets a
// private cohort (so its trajectories cannot depend on its neighbors);
// unseeded requests coalesce per (algorithm, steps) into one shared
// per-wave-seeded cohort. Linear scans replace the per-batch map the
// grouping used to allocate — waves hold a handful of distinct
// (algorithm, steps) pairs.
func (ws *waveScratch) assemble(s *Server, live []*pending) {
	ws.reset()
	for _, p := range live {
		if p.seeded {
			ws.addGroup(p.b, p.steps, p.seed, true, p)
			continue
		}
		found := false
		for i := range ws.groups {
			grp := &ws.groups[i]
			if !grp.seeded && grp.b == p.b && grp.steps == p.steps {
				grp.reqs = append(grp.reqs, p)
				grp.walkers += p.walkers
				found = true
				break
			}
		}
		if !found {
			ws.addGroup(p.b, p.steps, rng.Mix64(s.cfg.Seed^rng.Mix64(s.runSeq.Add(1))), false, p)
		}
	}
	for i := range ws.groups {
		grp := &ws.groups[i]
		ws.cohorts = append(ws.cohorts, flashmob.CohortSpec{
			Algorithm: grp.b.spec,
			Walkers:   uint64(grp.walkers),
			Steps:     grp.steps,
			Seed:      grp.seed,
		})
	}
}

// execute runs one batch: expired requests are shed now (the second and
// last deadline checkpoint), the rest assemble into cohort groups, and
// the whole wave executes as one mixed engine run — every algorithm and
// step count in the batch sharing one partition sweep — whose walker
// array is demuxed per cohort, per request. With Config.SplitCohortRuns
// set, each cohort instead gets its own engine run (the fragmented
// pre-mixed behavior, kept as the benchmark baseline).
func (g *engineGroup) execute(ws *waveScratch, batch []*pending) {
	// One clock read covers the wave's shed filter and its queue-latency
	// accounting (outcome.execStart).
	execStart := g.s.now()
	live := batch[:0]
	for _, p := range batch {
		if p.expiredAt(execStart) {
			g.shed(p, "deadline expired before execution", g.s.m.shedExpired)
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	ws.assemble(g.s, live)

	if g.s.cfg.SplitCohortRuns {
		for i := range ws.groups {
			g.runSolo(len(live), execStart, &ws.groups[i])
		}
		return
	}

	t0 := time.Now()
	res, epoch, err := g.walkMixed(ws.cohorts)
	runDur := time.Since(t0)
	g.s.m.runs.Inc()
	g.s.m.runNS.Observe(uint64(runDur))
	g.s.m.runCohorts.Observe(uint64(len(ws.groups)))
	if err != nil {
		g.fail(ws.groups, err)
		return
	}
	for i := range ws.groups {
		grp := &ws.groups[i]
		paths, perr := res.Paths(i)
		if perr != nil {
			g.failGroup(grp, perr)
			continue
		}
		g.deliver(len(live), len(ws.groups), execStart, runDur, epoch, grp, paths)
	}
}

// walkMixed performs the wave's engine run on a pooled session,
// acquiring a fresh one only when the pool is empty. Reuse does not cost
// reproducibility: a mixed run rebinds every cohort slot from its spec —
// kernels, PS buffers, cursors — before the first step, so each cohort's
// trajectories depend only on (build, algorithm, seed, walkers, steps),
// exactly as on a fresh session. A session whose run failed is closed
// rather than pooled; a healthy one goes back unless the pool is full.
func (g *engineGroup) walkMixed(cohorts []flashmob.CohortSpec) (*flashmob.MixedResult, uint64, error) {
	if g.dyn != nil {
		// Dynamic mode: pin the current epoch for the whole wave. The
		// snapshot keeps its engine build alive however many freezes or
		// compactions land while the run executes; the epoch ID rides the
		// responses so clients can correlate walks with ingests.
		snap, err := g.dyn.Snapshot()
		if err != nil {
			return nil, 0, err
		}
		defer snap.Release()
		res, err := snap.WalkMixed(cohorts)
		if err != nil {
			return nil, 0, err
		}
		return res, snap.Epoch(), nil
	}
	if g.sharded != nil {
		// Coordinator mode: the wave runs across the shard engines. The
		// sharded run is bitwise-identical to a local session run, so
		// everything downstream — per-cohort Paths, per-request demux —
		// is unchanged.
		res, err := g.sharded.WalkMixed(context.Background(), cohorts)
		return res, 0, err
	}
	var sess *flashmob.Session
	select {
	case sess = <-g.sessions:
	default:
		var err error
		sess, err = g.sys.NewSession(context.Background())
		if err != nil {
			return nil, 0, err
		}
	}
	res, err := sess.WalkMixed(cohorts)
	if err != nil {
		sess.Close()
		return nil, 0, err
	}
	select {
	case g.sessions <- sess:
	default:
		sess.Close()
	}
	return res, 0, nil
}

// fail answers every request of every group with the mapped engine
// error.
func (g *engineGroup) fail(groups []runGroup, err error) {
	for i := range groups {
		g.failGroup(&groups[i], err)
	}
}

// failGroup answers one group's requests with the mapped engine error:
// ErrClosed becomes the shutdown 503, anything else a 500.
func (g *engineGroup) failGroup(grp *runGroup, err error) {
	status, msg := 500, err.Error()
	if errors.Is(err, flashmob.ErrClosed) || errors.Is(err, dyn.ErrClosed) {
		status, msg = 503, "server closed"
		g.s.m.shedClosed.Add(uint64(len(grp.reqs)))
	} else {
		g.s.m.failed.Add(uint64(len(grp.reqs)))
	}
	for _, p := range grp.reqs {
		p.resp <- outcome{status: status, errMsg: msg}
	}
}

// deliver demuxes one cohort's trajectories to its requests: each
// request's walkers are a contiguous slice of the cohort's walker array,
// in enqueue order.
func (g *engineGroup) deliver(batchRequests, runCohorts int, execStart time.Time, runDur time.Duration, epoch uint64, grp *runGroup, paths [][]flashmob.VID) {
	off := 0
	for _, p := range grp.reqs {
		p.resp <- outcome{
			status:        200,
			steps:         grp.steps,
			batchRequests: batchRequests,
			runWalkers:    grp.walkers,
			runCohorts:    runCohorts,
			paths:         paths[off : off+p.walkers],
			epoch:         epoch,
			execStart:     execStart,
			runDur:        runDur,
		}
		off += p.walkers
	}
}

// runSolo executes one cohort group as its own engine run (the
// SplitCohortRuns baseline) and demuxes the per-request slices. It still
// runs through the mixed entry point — a one-cohort mixed run is
// bitwise-identical to the solo engine path, and the cohort's algorithm
// may differ from the shared system's build primary — so the baseline
// measures run fragmentation alone, nothing else.
func (g *engineGroup) runSolo(batchRequests int, execStart time.Time, grp *runGroup) {
	t0 := time.Now()
	res, epoch, err := g.walkMixed([]flashmob.CohortSpec{{
		Algorithm: grp.b.spec,
		Walkers:   uint64(grp.walkers),
		Steps:     grp.steps,
		Seed:      grp.seed,
	}})
	runDur := time.Since(t0)
	g.s.m.runs.Inc()
	g.s.m.runNS.Observe(uint64(runDur))
	g.s.m.runCohorts.Observe(1)
	if err != nil {
		g.failGroup(grp, err)
		return
	}
	paths, err := res.Paths(0)
	if err != nil {
		g.failGroup(grp, err)
		return
	}
	g.deliver(batchRequests, 1, execStart, runDur, epoch, grp, paths)
}
