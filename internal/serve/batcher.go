package serve

import (
	"context"
	"errors"
	"time"

	"flashmob"
	"flashmob/internal/rng"
)

// pending is one admitted walk query waiting for its batch: the
// normalized request plus the channel its outcome is delivered on.
type pending struct {
	walkers  int
	steps    int // resolved: never 0
	seed     uint64
	seeded   bool
	enq      time.Time
	deadline time.Time
	resp     chan outcome // capacity 1; exactly one outcome per pending
}

// outcome is what the executor (or the shedding path) delivers back to
// the waiting handler.
type outcome struct {
	status        int // http.StatusOK or the shed/failure code
	errMsg        string
	retry         bool // advertise Retry-After on the error
	steps         int
	batchRequests int
	runWalkers    int
	paths         [][]flashmob.VID
	execStart     time.Time
	runDur        time.Duration
}

// backend is one served algorithm's batching pipeline: an admission
// queue feeding a dispatcher that assembles batches, feeding executors
// that run them on engine sessions.
type backend struct {
	s       *Server
	name    string
	sys     *flashmob.System
	spec    flashmob.Algorithm
	queue   chan *pending
	batches chan []*pending
}

// Enqueue errors, mapped to HTTP by the handler.
var (
	errOverloaded = errors.New("serve: admission queue full")
	errClosed     = errors.New("serve: server closed")
)

// enqueue admits p or reports why it cannot: a closed server or a full
// queue. The read lock pairs with Close's write lock so the queue is
// never closed between the check and the send.
func (b *backend) enqueue(p *pending) error {
	s := b.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errClosed
	}
	select {
	case b.queue <- p:
		s.m.requests.Inc()
		s.m.queueDepth.Add(1)
		return nil
	default:
		return errOverloaded
	}
}

// expired reports whether p's deadline has passed.
func (p *pending) expired() bool { return time.Now().After(p.deadline) }

// shed answers p with a load-shedding 503 and charges the given counter.
func (b *backend) shed(p *pending, why string, counter interface{ Inc() }) {
	counter.Inc()
	p.resp <- outcome{status: 503, errMsg: why, retry: true}
}

// dispatch is the backend's micro-batcher: it opens a batch on the first
// queued request, then collects more until the walker budget or request
// cap is hit, a request does not fit (it carries over to the next
// batch), or the max-wait window closes. Expired requests are shed at
// dequeue, before they can occupy batch budget. When the queue closes
// (server shutdown) the remaining admitted requests are still drained
// into final batches.
func (b *backend) dispatch() {
	defer b.s.wg.Done()
	defer close(b.batches)
	cfg := &b.s.cfg
	var carry *pending
	for {
		first := carry
		carry = nil
		if first == nil {
			var ok bool
			first, ok = <-b.queue
			if !ok {
				return
			}
			b.s.m.queueDepth.Add(-1)
		}
		if first.expired() {
			b.shed(first, "deadline expired while queued", b.s.m.shedExpired)
			continue
		}
		batch := append(make([]*pending, 0, 8), first)
		walkers := first.walkers
		window := time.NewTimer(cfg.MaxWait)
	collect:
		for walkers < cfg.MaxBatchWalkers &&
			(cfg.MaxBatchRequests == 0 || len(batch) < cfg.MaxBatchRequests) {
			select {
			case p, ok := <-b.queue:
				if !ok {
					break collect
				}
				b.s.m.queueDepth.Add(-1)
				if p.expired() {
					b.shed(p, "deadline expired while queued", b.s.m.shedExpired)
					continue
				}
				if walkers+p.walkers > cfg.MaxBatchWalkers {
					carry = p
					break collect
				}
				batch = append(batch, p)
				walkers += p.walkers
			case <-window.C:
				break collect
			}
		}
		window.Stop()
		b.s.m.batches.Inc()
		b.s.m.batchRequests.Observe(uint64(len(batch)))
		b.s.m.batchWalkers.Observe(uint64(walkers))
		b.batches <- batch
	}
}

// executor drains assembled batches and runs them; several run per
// backend, each batch on its own freshly acquired engine session.
func (b *backend) executor() {
	defer b.s.wg.Done()
	for batch := range b.batches {
		b.execute(batch)
	}
}

// runGroup is one engine run's worth of a batch: requests answered from
// a single walker array.
type runGroup struct {
	steps   int
	walkers int
	seed    uint64
	seeded  bool
	reqs    []*pending
}

// execute runs one batch: expired requests are shed now (the second and
// last deadline checkpoint), the rest split into run groups — unseeded
// requests coalesce per step count and share one per-batch-seeded run;
// each seeded request gets a private run so its trajectories cannot
// depend on its neighbors — and every run's walker array is demuxed back
// to its requests.
func (b *backend) execute(batch []*pending) {
	live := batch[:0]
	for _, p := range batch {
		if p.expired() {
			b.shed(p, "deadline expired before execution", b.s.m.shedExpired)
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	execStart := time.Now()

	var groups []*runGroup
	bySteps := make(map[int]*runGroup)
	for _, p := range live {
		if p.seeded {
			groups = append(groups, &runGroup{
				steps: p.steps, walkers: p.walkers, seed: p.seed, seeded: true,
				reqs: []*pending{p},
			})
			continue
		}
		g := bySteps[p.steps]
		if g == nil {
			g = &runGroup{
				steps: p.steps,
				seed:  rng.Mix64(b.s.cfg.Seed ^ rng.Mix64(b.s.runSeq.Add(1))),
			}
			bySteps[p.steps] = g
			groups = append(groups, g)
		}
		g.reqs = append(g.reqs, p)
		g.walkers += p.walkers
	}
	for _, g := range groups {
		b.runOne(len(live), execStart, g)
	}
}

// runOne executes one group's engine run on a fresh session and demuxes
// the per-request slices of the walker array. A fresh session per run is
// what makes seeded runs reproducible: session acquisition resets the PS
// buffers, so the trajectories depend only on (build, seed, walkers,
// steps).
func (b *backend) runOne(batchRequests int, execStart time.Time, g *runGroup) {
	t0 := time.Now()
	paths, steps, err := b.walk(g)
	runDur := time.Since(t0)
	b.s.m.runs.Inc()
	b.s.m.runNS.Observe(uint64(runDur))
	if err != nil {
		status, msg, retry := 500, err.Error(), false
		if errors.Is(err, flashmob.ErrClosed) {
			status, msg, retry = 503, "server closed", false
			b.s.m.shedClosed.Add(uint64(len(g.reqs)))
		} else {
			b.s.m.failed.Add(uint64(len(g.reqs)))
		}
		for _, p := range g.reqs {
			p.resp <- outcome{status: status, errMsg: msg, retry: retry}
		}
		return
	}
	off := 0
	for _, p := range g.reqs {
		p.resp <- outcome{
			status:        200,
			steps:         steps,
			batchRequests: batchRequests,
			runWalkers:    g.walkers,
			paths:         paths[off : off+p.walkers],
			execStart:     execStart,
			runDur:        runDur,
		}
		off += p.walkers
	}
}

// walk performs the engine run for one group and returns the translated
// trajectories (one per walker, in request order).
func (b *backend) walk(g *runGroup) ([][]flashmob.VID, int, error) {
	sess, err := b.sys.NewSession(context.Background())
	if err != nil {
		return nil, 0, err
	}
	defer sess.Close()
	res, err := sess.WalkSeeded(g.seed, uint64(g.walkers), g.steps)
	if err != nil {
		return nil, 0, err
	}
	paths, err := res.Paths()
	if err != nil {
		return nil, 0, err
	}
	if len(paths) != g.walkers {
		// A memory-budgeted system splits runs into episodes and keeps
		// only the last episode's history; serving requires the whole
		// walker array, so refuse rather than demux garbage.
		return nil, 0, errors.New("run split into episodes (system built with a MemoryBudget?); cannot demux")
	}
	return paths, res.Steps(), nil
}
