package serve

import "flashmob"

// SchemaVersion identifies the JSON layout of every fmserve response
// body. Bump it when a field is renamed or removed (additions are
// backward compatible); docs/SERVING.md documents the current schema.
// Field order in the encoded JSON is the struct declaration order below
// and is part of the contract — wire_test.go pins it byte for byte.
const SchemaVersion = 1

// WalkRequest is the body of POST /v1/walk: one walk query to be
// coalesced with compatible neighbors into a shared batched episode.
type WalkRequest struct {
	// Walkers is how many walkers to advance (required, ≥ 1, bounded by
	// the server's max-walkers-per-request knob).
	Walkers int `json:"walkers"`
	// Steps is the walk length (0 = the algorithm's default).
	Steps int `json:"steps,omitempty"`
	// Algorithm names the served walk to run (empty = the server's
	// default, its first configured algorithm).
	Algorithm string `json:"algorithm,omitempty"`
	// Seed, when present, makes the request reproducible: the response's
	// trajectories are a pure function of (server graph+algorithm build,
	// seed, walkers, steps), identical whether the request rode a batch
	// alone or coalesced with others. Omitted = sampling mode: the server
	// draws a fresh per-batch seed and the request shares one engine run
	// with its batch neighbors.
	Seed *uint64 `json:"seed,omitempty"`
	// TimeoutMS bounds queueing + execution start: a request still
	// waiting when its deadline passes is shed with 503 instead of
	// executed. 0 = the server's default timeout; values above the
	// server's maximum are clamped.
	TimeoutMS float64 `json:"timeout_ms,omitempty"`
}

// WalkResponse is the 200 body of POST /v1/walk.
type WalkResponse struct {
	// SchemaVersion is SchemaVersion at encode time.
	SchemaVersion int `json:"schema_version"`
	// Algorithm is the walk that ran (resolved default included).
	Algorithm string `json:"algorithm"`
	// Walkers echoes the request's walker count.
	Walkers int `json:"walkers"`
	// Steps is the resolved walk length (algorithm default applied).
	Steps int `json:"steps"`
	// Seeded reports whether the request carried a seed.
	Seeded bool `json:"seeded"`
	// Seed echoes the request seed when Seeded (omitted otherwise).
	Seed uint64 `json:"seed,omitempty"`
	// Coalesced reports whether the request shared its scheduling batch
	// with at least one other request.
	Coalesced bool `json:"coalesced"`
	// BatchRequests counts the requests in the scheduling batch this
	// request rode (including itself).
	BatchRequests int `json:"batch_requests"`
	// RunWalkers counts the walkers of the cohort that produced this
	// response: the whole coalesced (algorithm, steps) group for unseeded
	// requests, the request's own walkers for seeded ones (which always
	// get a private, reproducible cohort).
	RunWalkers int `json:"run_walkers"`
	// RunCohorts counts the cohorts of the engine run that carried this
	// request: 1 when the run served a single (algorithm, steps) group,
	// more when the wave mixed algorithms or step counts into one shared
	// run.
	RunCohorts int `json:"run_cohorts"`
	// Epoch identifies the graph snapshot the walk ran against on a
	// dynamic server (walk-on-snapshot consistency: the whole run sampled
	// one epoch, resolved when the batch started executing). Omitted on
	// static servers.
	Epoch uint64 `json:"epoch,omitempty"`
	// Paths holds one trajectory per requested walker, each steps+1
	// vertices long (start included), in the caller's original vertex
	// IDs.
	Paths [][]flashmob.VID `json:"paths"`
	// QueueMS is the time the request spent queued before its batch
	// started executing.
	QueueMS float64 `json:"queue_ms"`
	// RunMS is the wall time of the engine run that carried the request.
	RunMS float64 `json:"run_ms"`
}

// ErrorResponse is the body of every non-200 answer.
type ErrorResponse struct {
	// SchemaVersion is SchemaVersion at encode time.
	SchemaVersion int `json:"schema_version"`
	// Error describes what was rejected or shed.
	Error string `json:"error"`
	// RetryAfterMS suggests a client backoff when the rejection is load
	// shedding (omitted on permanent errors); the Retry-After header
	// carries the same hint rounded up to whole seconds.
	RetryAfterMS float64 `json:"retry_after_ms,omitempty"`
}

// PlanEntry is one served algorithm's partitioning summary in
// PlanResponse.
type PlanEntry struct {
	// Algorithm names the served walk.
	Algorithm string `json:"algorithm"`
	// NumVPs is the total vertex-partition count.
	NumVPs int `json:"num_vps"`
	// NumGroups is the MCKP class count.
	NumGroups int `json:"num_groups"`
	// Bins is the outer-shuffle bin count.
	Bins int `json:"bins"`
	// PSVertices counts vertices under the pre-sampling policy.
	PSVertices uint32 `json:"ps_vertices"`
	// DSVertices counts vertices under the direct-sampling policy.
	DSVertices uint32 `json:"ds_vertices"`
}

// PlanResponse is the body of GET /v1/plan: every served algorithm's
// partitioning decision, in the server's configured order (so the first
// entry is the default algorithm).
type PlanResponse struct {
	// SchemaVersion is SchemaVersion at encode time.
	SchemaVersion int `json:"schema_version"`
	// Algorithms lists one entry per served algorithm.
	Algorithms []PlanEntry `json:"algorithms"`
}

// EngineReport pairs one served algorithm with its engine-lifetime
// metrics aggregate in MetricsResponse.
type EngineReport struct {
	// Algorithm names the served walk.
	Algorithm string `json:"algorithm"`
	// Report is the engine's obs report (see docs/OBSERVABILITY.md for
	// the metric reference and report schema).
	Report *flashmob.Report `json:"report"`
}

// MetricsResponse is the body of GET /metrics: the serving layer's own
// obs report plus, when the systems were built with metrics enabled, each
// engine's lifetime aggregate.
type MetricsResponse struct {
	// SchemaVersion is SchemaVersion at encode time.
	SchemaVersion int `json:"schema_version"`
	// Server is the serving layer's report: admission, queueing, batching
	// and latency metrics (documented in docs/SERVING.md).
	Server *flashmob.Report `json:"server"`
	// Engines holds each system's engine-lifetime aggregate, in served
	// order; omitted when engine metrics are off.
	Engines []EngineReport `json:"engines,omitempty"`
	// Shards holds one exchange report per shard-coordinating engine
	// group — emigrant/immigrant walker counts, exchange frames and frame
	// words per shard, superstep and run totals (internal/shard) —
	// labelled by the group's first backend. Omitted when no backend is
	// sharded.
	Shards []EngineReport `json:"shards,omitempty"`
	// Dyn holds the dynamic-graph subsystem's dyn_* report (ingest, epoch
	// turnover, compaction — see docs/OBSERVABILITY.md) when the server
	// has a dynamic backend with metrics enabled. Omitted otherwise.
	Dyn *flashmob.Report `json:"dyn,omitempty"`
}

// IngestRequest is the body of POST /v1/ingest (dynamic servers only):
// a batch of edges to append to the served graph.
type IngestRequest struct {
	// Edges lists [src, dst] pairs in the caller's original vertex IDs.
	// Endpoints beyond the current vertex space are accepted and become
	// walkable after the next compaction; self-loops are dropped.
	Edges [][2]flashmob.VID `json:"edges"`
	// Freeze, when true, publishes every pending edge as a new epoch
	// before the response is written: walks admitted afterwards observe an
	// epoch at least as new as the response's. Without it edges buffer
	// invisibly until a later freeze (the batching mode for high-rate
	// streams).
	Freeze bool `json:"freeze,omitempty"`
	// TSMS is the client's timestamp for the batch (milliseconds since its
	// stream began). The server ignores it — it exists so edge-stream
	// files (fmgen -stream) carry their pacing inline and every line is
	// still a valid request body.
	TSMS float64 `json:"ts_ms,omitempty"`
}

// IngestResponse is the 200 body of POST /v1/ingest.
type IngestResponse struct {
	// SchemaVersion is SchemaVersion at encode time.
	SchemaVersion int `json:"schema_version"`
	// Accepted counts the request's edges that were buffered (self-loops
	// are dropped silently).
	Accepted int `json:"accepted"`
	// Epoch is the current epoch after the request (the newly published
	// one when Freeze was set).
	Epoch uint64 `json:"epoch"`
	// PendingEdges counts buffered edges not yet frozen into any epoch
	// (after undirected expansion).
	PendingEdges uint64 `json:"pending_edges"`
	// DeltaEdges counts the current epoch's overlay edges (0 right after a
	// compaction).
	DeltaEdges uint64 `json:"delta_edges"`
	// DeferredEdges counts frozen edges awaiting compaction to become
	// walkable (new-vertex endpoints).
	DeferredEdges uint64 `json:"deferred_edges"`
	// Compactions counts compactions completed since the server started.
	Compactions uint64 `json:"compactions"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	// Status is "ok" while serving, "closed" once shutdown has begun
	// (sent with a 503 so load balancers drain the instance).
	Status string `json:"status"`
	// UptimeMS is the time since the server was created.
	UptimeMS float64 `json:"uptime_ms"`
}
