package serve

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"flashmob"
)

// newMixedTestServer stands up a Server whose three algorithm backends
// share one built system — the mixed-cohort serving topology cmd/fmserve
// uses.
func newMixedTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	sys, _ := testSystem(t)
	s, err := New([]Backend{
		{Name: "deepwalk", Sys: sys, Spec: flashmob.DeepWalk()},
		{Name: "node2vec", Sys: sys, Spec: flashmob.Node2Vec(4, 0.25)},
		{Name: "pagerank", Sys: sys, Spec: flashmob.PageRankWalk(0.85)},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	return s, hs
}

// TestMixedWaveSharedRun fires one request per algorithm into a wide
// batching window and checks the wave executed as a single shared engine
// run: every response reports the same multi-cohort run instead of one
// run per algorithm.
func TestMixedWaveSharedRun(t *testing.T) {
	s, hs := newMixedTestServer(t, Config{MaxWait: 60 * time.Millisecond, Executors: 1})

	algos := []string{"deepwalk", "node2vec", "pagerank"}
	for attempt := 0; attempt < 10; attempt++ {
		results := make([]WalkResponse, len(algos))
		var wg sync.WaitGroup
		for i, a := range algos {
			wg.Add(1)
			go func(i int, a string) {
				defer wg.Done()
				status, data := postWalk(t, hs.URL, WalkRequest{Walkers: 8, Steps: 4, Algorithm: a})
				if status != 200 {
					t.Errorf("%s: status %d body %s", a, status, data)
					return
				}
				results[i] = decodeWalk(t, data)
			}(i, a)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		shared := true
		for _, r := range results {
			if r.RunCohorts != len(algos) || r.BatchRequests != len(algos) {
				shared = false
			}
		}
		if !shared {
			continue // scheduling raced the window; try again
		}
		for i, r := range results {
			if r.Algorithm != algos[i] || len(r.Paths) != 8 || r.RunWalkers != 8 {
				t.Fatalf("%s: bad demux %+v", algos[i], r)
			}
		}
		runs, _ := s.Metrics().Counter("serve_runs_total")
		batches, _ := s.Metrics().Counter("serve_batches_total")
		if runs.Value > batches.Value {
			t.Fatalf("mixed waves should not fragment: %d runs for %d batches", runs.Value, batches.Value)
		}
		if h, ok := s.Metrics().Histogram("serve_run_cohorts"); !ok || h.Count == 0 {
			t.Fatal("serve_run_cohorts recorded nothing")
		}
		return
	}
	t.Fatal("three-algorithm wave never landed in one batch under a 60ms window")
}

// TestSeededDeterminismAcrossAlgorithms extends the seeded contract to
// mixed waves: a seeded request's trajectories are bitwise-identical
// whether it rides alone, coalesced with same-algorithm traffic, or
// coalesced with different-algorithm traffic — and match a direct
// single-cohort WalkMixed on an identically built system.
func TestSeededDeterminismAcrossAlgorithms(t *testing.T) {
	_, hs := newMixedTestServer(t, Config{MaxWait: 40 * time.Millisecond, Executors: 1})
	seed := uint64(123)
	req := WalkRequest{Walkers: 20, Steps: 5, Algorithm: "node2vec", Seed: &seed}

	// Alone: a one-request wave is a one-cohort run.
	status, data := postWalk(t, hs.URL, req)
	if status != 200 {
		t.Fatalf("alone: status %d body %s", status, data)
	}
	alone := decodeWalk(t, data)
	if alone.RunCohorts != 1 {
		t.Fatalf("lone request ran with %d cohorts, want 1", alone.RunCohorts)
	}

	// Coalesced, with same-algorithm and then cross-algorithm crowds.
	for _, crowd := range []string{"node2vec", "deepwalk"} {
		var crowded WalkResponse
		for attempt := 0; attempt < 10; attempt++ {
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					postWalk(t, hs.URL, WalkRequest{Walkers: 15, Steps: 5, Algorithm: crowd})
				}()
			}
			time.Sleep(2 * time.Millisecond) // let the batch open
			status, data = postWalk(t, hs.URL, req)
			wg.Wait()
			if status != 200 {
				t.Fatalf("crowd %s: status %d body %s", crowd, status, data)
			}
			crowded = decodeWalk(t, data)
			if crowded.Coalesced {
				break
			}
		}
		if !crowded.Coalesced {
			t.Fatalf("seeded request never coalesced with the %s crowd", crowd)
		}
		if crowded.RunWalkers != 20 {
			t.Errorf("crowd %s: seeded run_walkers = %d, want its own 20", crowd, crowded.RunWalkers)
		}
		if crowded.RunCohorts < 2 {
			t.Errorf("crowd %s: run_cohorts = %d, want a shared multi-cohort run", crowd, crowded.RunCohorts)
		}
		if fmt.Sprint(alone.Paths) != fmt.Sprint(crowded.Paths) {
			t.Fatalf("seeded trajectories differ alone vs coalesced with %s traffic", crowd)
		}
	}

	// Direct single-cohort execution on an identically built system.
	sys, _ := testSystem(t)
	defer sys.Close()
	res, err := sys.WalkMixed([]flashmob.CohortSpec{
		{Algorithm: flashmob.Node2Vec(4, 0.25), Walkers: 20, Steps: 5, Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := res.Paths(0)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(paths) != fmt.Sprint(alone.Paths) {
		t.Fatal("served trajectories differ from direct WalkMixed on an identical build")
	}
}

// TestSplitCohortRunsBaseline checks the benchmark baseline knob: with
// SplitCohortRuns every cohort is its own engine run (run_cohorts is
// always 1) and seeded responses still match the mixed path bitwise.
func TestSplitCohortRunsBaseline(t *testing.T) {
	_, hs := newMixedTestServer(t, Config{MaxWait: 40 * time.Millisecond, Executors: 1, SplitCohortRuns: true})
	seed := uint64(123)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postWalk(t, hs.URL, WalkRequest{Walkers: 15, Steps: 5, Algorithm: "deepwalk"})
		}()
	}
	time.Sleep(2 * time.Millisecond)
	status, data := postWalk(t, hs.URL, WalkRequest{Walkers: 20, Steps: 5, Algorithm: "node2vec", Seed: &seed})
	wg.Wait()
	if status != 200 {
		t.Fatalf("status %d body %s", status, data)
	}
	split := decodeWalk(t, data)
	if split.RunCohorts != 1 {
		t.Fatalf("SplitCohortRuns response reports %d cohorts, want 1", split.RunCohorts)
	}

	// Same seeded walk through the mixed path on an identical build.
	_, hsMixed := newMixedTestServer(t, Config{MaxWait: time.Millisecond})
	status, data = postWalk(t, hsMixed.URL, WalkRequest{Walkers: 20, Steps: 5, Algorithm: "node2vec", Seed: &seed})
	if status != 200 {
		t.Fatalf("mixed path: status %d body %s", status, data)
	}
	mixed := decodeWalk(t, data)
	if fmt.Sprint(split.Paths) != fmt.Sprint(mixed.Paths) {
		t.Fatal("seeded trajectories differ between SplitCohortRuns and mixed execution")
	}
}
