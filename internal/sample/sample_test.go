package sample

import (
	"math"
	"testing"

	"flashmob/internal/gen"
	"flashmob/internal/graph"
)

func testGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: 3000, AvgDegree: 8, Alpha: 0.75, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func seedsOf(n int, stride uint32) []graph.VID {
	s := make([]graph.VID, n)
	for i := range s {
		s[i] = graph.VID(uint32(i) * stride % 3000)
	}
	return s
}

func checkNeighborhood(t *testing.T, g *graph.CSR, nb *Neighborhood, fanouts []int) {
	t.Helper()
	if len(nb.Layers) != len(fanouts) {
		t.Fatalf("%d layers, want %d", len(nb.Layers), len(fanouts))
	}
	frontier := nb.Seeds
	for li, layer := range nb.Layers {
		if layer.Fanout != fanouts[li] {
			t.Fatalf("layer %d fanout %d, want %d", li, layer.Fanout, fanouts[li])
		}
		if len(layer.Srcs) != len(frontier) {
			t.Fatalf("layer %d frontier size %d, want %d", li, len(layer.Srcs), len(frontier))
		}
		if len(layer.Dsts) != len(frontier)*fanouts[li] {
			t.Fatalf("layer %d has %d dsts", li, len(layer.Dsts))
		}
		for i, v := range layer.Srcs {
			for j := 0; j < layer.Fanout; j++ {
				d := layer.Dsts[i*layer.Fanout+j]
				if d == v && g.Degree(v) == 0 {
					continue
				}
				if !g.HasEdge(v, d) {
					t.Fatalf("layer %d: sampled %d→%d is not an edge", li, v, d)
				}
			}
		}
		frontier = layer.Dsts
	}
}

func TestNaiveShapeAndEdges(t *testing.T) {
	g := testGraph(t)
	fanouts := []int{5, 3}
	nb, err := Naive(g, seedsOf(50, 7), fanouts, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkNeighborhood(t, g, nb, fanouts)
	if nb.TotalSampledEdges() != 50*5+50*5*3 {
		t.Errorf("TotalSampledEdges = %d", nb.TotalSampledEdges())
	}
}

func TestBatchedShapeAndEdges(t *testing.T) {
	g := testGraph(t)
	fanouts := []int{4, 4, 2}
	nb, err := Batched(g, seedsOf(80, 11), fanouts, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkNeighborhood(t, g, nb, fanouts)
}

func TestNaiveAndBatchedSameDistribution(t *testing.T) {
	// Single seed with a known adjacency: one-hop marginal distribution
	// must be uniform over neighbours for both implementations.
	g := testGraph(t)
	var hub graph.VID // pick a vertex with moderate degree
	for v := uint32(0); v < g.NumVertices(); v++ {
		if g.Degree(v) >= 4 && g.Degree(v) <= 8 {
			hub = v
			break
		}
	}
	adj := g.Neighbors(hub)
	const trials = 30000
	seeds := make([]graph.VID, trials)
	for i := range seeds {
		seeds[i] = hub
	}
	for name, impl := range map[string]func(*graph.CSR, []graph.VID, []int, uint64) (*Neighborhood, error){
		"naive": Naive, "batched": Batched,
	} {
		nb, err := impl(g, seeds, []int{1}, 9)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[graph.VID]int{}
		for _, d := range nb.Layers[0].Dsts {
			counts[d]++
		}
		want := 1.0 / float64(len(adj))
		for _, a := range adj {
			got := float64(counts[a]) / trials
			if math.Abs(got-want) > 0.25*want {
				t.Errorf("%s: neighbour %d share %.4f, want %.4f", name, a, got, want)
			}
		}
	}
}

func TestBatchedScatterPreservesFrontierOrder(t *testing.T) {
	// Dsts[i*fanout+j] must be a neighbour of Srcs[i] specifically — a
	// misplaced scatter would attach samples to the wrong frontier slot.
	g := testGraph(t)
	seeds := seedsOf(200, 13)
	nb, err := Batched(g, seeds, []int{3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range nb.Layers[0].Srcs {
		if v != seeds[i] {
			t.Fatalf("frontier order broken at %d", i)
		}
	}
}

func TestDeadEndSampling(t *testing.T) {
	res, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}}, graph.BuildOptions{NumVertices: 2})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := Batched(res.Graph, []graph.VID{1}, []int{4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range nb.Layers[0].Dsts {
		if d != 1 {
			t.Errorf("dead end sampled %d", d)
		}
	}
}

func TestValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := Naive(g, nil, []int{1}, 1); err == nil {
		t.Error("empty seeds accepted")
	}
	if _, err := Naive(g, []graph.VID{0}, nil, 1); err == nil {
		t.Error("empty fanouts accepted")
	}
	if _, err := Batched(g, []graph.VID{0}, []int{0}, 1); err == nil {
		t.Error("zero fanout accepted")
	}
	if _, err := Batched(g, []graph.VID{1 << 30}, []int{1}, 1); err == nil {
		t.Error("out-of-range seed accepted")
	}
}

func BenchmarkNaive(b *testing.B) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: 100000, AvgDegree: 12, Alpha: 0.8, Seed: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	seeds := make([]graph.VID, 5000)
	for i := range seeds {
		seeds[i] = graph.VID(uint32(i*17) % g.NumVertices())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Naive(g, seeds, []int{10, 5}, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatched(b *testing.B) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: 100000, AvgDegree: 12, Alpha: 0.8, Seed: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	seeds := make([]graph.VID, 5000)
	for i := range seeds {
		seeds[i] = graph.VID(uint32(i*17) % g.NumVertices())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Batched(g, seeds, []int{10, 5}, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
