// Package sample implements k-hop neighbourhood sampling (the
// GraphSage/ASAP-style workload the paper's introduction names as another
// beneficiary of FlashMob's design): starting from seed vertices, each
// layer samples a fixed fanout of neighbours per frontier vertex, the
// union becoming the next frontier.
//
// Two implementations share one sampling semantics:
//
//   - Naive mirrors existing systems: each seed's subtree is expanded
//     independently, with whole-graph random accesses.
//
//   - Batched applies FlashMob's idea: the whole frontier is grouped by
//     vertex first (a counting shuffle), so all samples from one vertex
//     are drawn back-to-back out of one cache-resident adjacency list,
//     and results are scattered back in frontier order (a reverse
//     shuffle).
package sample

import (
	"fmt"

	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

// Layer holds one hop of a sampled neighbourhood: Dsts[i*Fanout+j] is the
// j-th sampled neighbour of frontier vertex Srcs[i]. A vertex with no
// out-edges samples itself (the same dead-end convention as the walk
// engines).
type Layer struct {
	Srcs   []graph.VID
	Dsts   []graph.VID
	Fanout int
}

// Neighborhood is a full k-hop sample.
type Neighborhood struct {
	Seeds  []graph.VID
	Layers []Layer
}

// Frontier returns the source frontier of layer l (the seeds for l == 0).
func (n *Neighborhood) Frontier(l int) []graph.VID {
	return n.Layers[l].Srcs
}

// TotalSampledEdges returns the number of sampled (src, dst) pairs.
func (n *Neighborhood) TotalSampledEdges() int {
	var t int
	for _, l := range n.Layers {
		t += len(l.Dsts)
	}
	return t
}

// validate checks the inputs common to both implementations.
func validate(g *graph.CSR, seeds []graph.VID, fanouts []int) error {
	if len(seeds) == 0 {
		return fmt.Errorf("sample: no seeds")
	}
	if len(fanouts) == 0 {
		return fmt.Errorf("sample: no fanouts")
	}
	for i, f := range fanouts {
		if f <= 0 {
			return fmt.Errorf("sample: fanout[%d] = %d must be positive", i, f)
		}
	}
	n := g.NumVertices()
	for i, s := range seeds {
		if s >= n {
			return fmt.Errorf("sample: seed[%d] = %d out of range (|V| = %d)", i, s, n)
		}
	}
	return nil
}

// Naive expands every seed independently, the per-walker access pattern
// of existing systems.
func Naive(g *graph.CSR, seeds []graph.VID, fanouts []int, seed uint64) (*Neighborhood, error) {
	if err := validate(g, seeds, fanouts); err != nil {
		return nil, err
	}
	src := rng.NewXorShift1024Star(seed)
	nb := &Neighborhood{Seeds: append([]graph.VID(nil), seeds...)}
	frontier := nb.Seeds
	for _, fanout := range fanouts {
		layer := Layer{
			Srcs:   frontier,
			Dsts:   make([]graph.VID, len(frontier)*fanout),
			Fanout: fanout,
		}
		for i, v := range frontier {
			adj := g.Neighbors(v)
			for j := 0; j < fanout; j++ {
				if len(adj) == 0 {
					layer.Dsts[i*fanout+j] = v
					continue
				}
				layer.Dsts[i*fanout+j] = adj[rng.Uint32n(src, uint32(len(adj)))]
			}
		}
		nb.Layers = append(nb.Layers, layer)
		frontier = layer.Dsts
	}
	return nb, nil
}

// Batched groups each layer's frontier by vertex before sampling, the
// FlashMob-style counting shuffle + batched sampling + reverse scatter.
// The output distribution is identical to Naive's.
func Batched(g *graph.CSR, seeds []graph.VID, fanouts []int, seed uint64) (*Neighborhood, error) {
	if err := validate(g, seeds, fanouts); err != nil {
		return nil, err
	}
	src := rng.NewXorShift1024Star(seed)
	nb := &Neighborhood{Seeds: append([]graph.VID(nil), seeds...)}
	nVerts := g.NumVertices()
	counts := make([]uint32, nVerts+1)
	frontier := nb.Seeds
	for _, fanout := range fanouts {
		layer := Layer{
			Srcs:   frontier,
			Dsts:   make([]graph.VID, len(frontier)*fanout),
			Fanout: fanout,
		}
		// Counting shuffle: group frontier occurrences by vertex.
		for i := range counts {
			counts[i] = 0
		}
		for _, v := range frontier {
			counts[v+1]++
		}
		for v := graph.VID(1); v <= nVerts; v++ {
			counts[v] += counts[v-1]
		}
		order := make([]uint32, len(frontier)) // grouped position -> frontier index
		cursor := append([]uint32(nil), counts[:nVerts]...)
		for i, v := range frontier {
			order[cursor[v]] = uint32(i)
			cursor[v]++
		}
		// Batched sampling: consecutive draws per vertex, scattered back
		// to frontier order.
		pos := 0
		for pos < len(order) {
			i := order[pos]
			v := frontier[i]
			adj := g.Neighbors(v)
			// All occurrences of v are contiguous in `order`.
			for ; pos < len(order) && frontier[order[pos]] == v; pos++ {
				base := int(order[pos]) * fanout
				for j := 0; j < fanout; j++ {
					if len(adj) == 0 {
						layer.Dsts[base+j] = v
						continue
					}
					layer.Dsts[base+j] = adj[rng.Uint32n(src, uint32(len(adj)))]
				}
			}
		}
		nb.Layers = append(nb.Layers, layer)
		frontier = layer.Dsts
	}
	return nb, nil
}
