// Package baseline re-implements the two comparison systems of the paper's
// evaluation as the paper characterizes them (§2.2, §5):
//
//   - KnightKing (Yang et al., SOSP 2019): walkers processed one at a time,
//     each step a direct whole-graph random access; a walker is advanced as
//     far as possible before the next one starts (single-node: its entire
//     path), chasing pointers through DRAM; edge sampling uses the Mersenne
//     Twister; node2vec uses rejection sampling.
//
//   - GraphVite (Zhu et al., WWW 2019): the CPU sampling side of the
//     CPU-GPU embedding system; also path-at-a-time, but with an additional
//     level of indirection per step (per-vertex descriptor objects) and a
//     heavier per-sample bookkeeping path, which is why the paper measures
//     it 2.2–3.8× slower than KnightKing.
//
// Both implement exactly the same stochastic process as the FlashMob
// engine in internal/core, so output distributions are interchangeable;
// only the memory-access structure differs.
package baseline

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/rng"
	"flashmob/internal/walk"
)

// Result reports a baseline run.
type Result struct {
	Walkers    uint64
	Steps      int
	TotalSteps uint64
	Duration   time.Duration
	// History holds per-walker paths when recording was requested.
	History *walk.History
}

// PerStepNS returns average wall nanoseconds per walker-step.
func (r *Result) PerStepNS() float64 {
	if r.TotalSteps == 0 {
		return 0
	}
	return float64(r.Duration.Nanoseconds()) / float64(r.TotalSteps)
}

// Config tunes a baseline engine.
type Config struct {
	// Workers is the thread count (default GOMAXPROCS); walkers are
	// partitioned contiguously across threads, as in both systems'
	// single-node modes.
	Workers int
	// Seed drives the per-worker RNG streams.
	Seed uint64
	// RecordHistory keeps every path.
	RecordHistory bool
}

// KnightKing is the walker-at-a-time baseline engine.
type KnightKing struct {
	g    *graph.CSR
	spec algo.Spec
	cfg  Config
}

// NewKnightKing builds the engine. Unlike FlashMob, no vertex ordering is
// required — the whole graph is its working set.
func NewKnightKing(g *graph.CSR, spec algo.Spec, cfg Config) (*KnightKing, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("baseline: empty graph")
	}
	if spec.Weighted && g.Weights == nil {
		return nil, fmt.Errorf("baseline: weighted walk on unweighted graph")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &KnightKing{g: g, spec: spec, cfg: cfg}, nil
}

// Run walks totalWalkers walkers (0 = |V|) for steps steps (0 = spec
// default), walker j starting at vertex j mod |V|.
func (k *KnightKing) Run(totalWalkers uint64, steps int) (*Result, error) {
	return runPathAtATime(k.g, k.spec, k.cfg, totalWalkers, steps, false)
}

// GraphVite is the heavier path-at-a-time baseline.
type GraphVite struct {
	g    *graph.CSR
	spec algo.Spec
	cfg  Config
}

// NewGraphVite builds the engine.
func NewGraphVite(g *graph.CSR, spec algo.Spec, cfg Config) (*GraphVite, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("baseline: empty graph")
	}
	if spec.Weighted && g.Weights == nil {
		return nil, fmt.Errorf("baseline: weighted walk on unweighted graph")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &GraphVite{g: g, spec: spec, cfg: cfg}, nil
}

// Run walks totalWalkers walkers for steps steps.
func (gv *GraphVite) Run(totalWalkers uint64, steps int) (*Result, error) {
	return runPathAtATime(gv.g, gv.spec, gv.cfg, totalWalkers, steps, true)
}

// vertexDesc is GraphVite's per-vertex descriptor indirection: instead of
// computing adjacency bounds from CSR offsets, each step dereferences a
// descriptor object — one extra dependent load per sample, plus per-path
// buffer bookkeeping.
type vertexDesc struct {
	adj     []graph.VID
	weights []float32
	degree  uint32
	_       [4]byte // pad: descriptors are heap objects in GraphVite
}

func runPathAtATime(g *graph.CSR, spec algo.Spec, cfg Config, totalWalkers uint64, steps int, heavy bool) (*Result, error) {
	if totalWalkers == 0 {
		totalWalkers = uint64(g.NumVertices())
	}
	if steps == 0 {
		steps = spec.Steps
	}
	if steps < 0 {
		return nil, fmt.Errorf("baseline: negative step count")
	}

	var weighted *algo.WeightedSampler
	if spec.Weighted {
		ws, err := algo.NewWeightedSampler(g)
		if err != nil {
			return nil, err
		}
		weighted = ws
	}

	var descs []*vertexDesc
	if heavy {
		descs = make([]*vertexDesc, g.NumVertices())
		for v := uint32(0); v < g.NumVertices(); v++ {
			descs[v] = &vertexDesc{
				adj:     g.Neighbors(v),
				weights: g.EdgeWeights(v),
				degree:  g.Degree(v),
			}
		}
	}

	// Paths are stored walker-major; converted to step-major history
	// afterwards so all engines expose the same output shape.
	var paths [][]graph.VID
	if cfg.RecordHistory {
		paths = make([][]graph.VID, totalWalkers)
	}

	workers := cfg.Workers
	if uint64(workers) > totalWalkers && totalWalkers > 0 {
		workers = int(totalWalkers)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo := totalWalkers * uint64(wk) / uint64(workers)
		hi := totalWalkers * uint64(wk+1) / uint64(workers)
		wg.Add(1)
		go func(wk int, lo, hi uint64) {
			defer wg.Done()
			// KnightKing uses std::mt19937; keep that cost profile.
			src := rng.Source(rng.NewMT19937(uint32(cfg.Seed) + uint32(wk)*2654435761 + 1))
			n := g.NumVertices()
			var path []graph.VID
			for j := lo; j < hi; j++ {
				cur := graph.VID(uint32(j) % n)
				prev := cur
				if cfg.RecordHistory {
					path = make([]graph.VID, 0, steps+1)
					path = append(path, cur)
				}
				// Order-k history window, most recent first.
				var hist []graph.VID
				if spec.History != nil {
					hist = make([]graph.VID, spec.History.Window)
					for c := range hist {
						hist[c] = cur
					}
				}
				// The entire path is walked before the next walker starts
				// — the pointer-chasing pattern §2.2 criticizes.
				for s := 0; s < steps; s++ {
					if spec.StopProb > 0 && rng.Float64(src) < spec.StopProb {
						nv := graph.VID(rng.Uint32n(src, n))
						prev, cur = nv, nv
						for c := range hist {
							hist[c] = nv
						}
					} else if spec.History != nil {
						next := algo.NextHigherOrder(g, spec.History, hist, cur, src)
						copy(hist[1:], hist)
						hist[0] = cur
						prev, cur = cur, next
					} else {
						next := stepOnce(g, spec, weighted, descs, prev, cur, src)
						prev, cur = cur, next
					}
					if cfg.RecordHistory {
						path = append(path, cur)
					}
				}
				if cfg.RecordHistory {
					paths[j] = path
				}
			}
		}(wk, lo, hi)
	}
	wg.Wait()
	dur := time.Since(start)

	res := &Result{
		Walkers:    totalWalkers,
		Steps:      steps,
		TotalSteps: totalWalkers * uint64(steps),
		Duration:   dur,
	}
	if cfg.RecordHistory {
		res.History = walk.NewHistory(int(totalWalkers))
		row := make([]graph.VID, totalWalkers)
		for s := 0; s <= steps; s++ {
			for j := range paths {
				row[j] = paths[j][s]
			}
			if err := res.History.Append(row); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// stepOnce advances one walker one step under the spec, through the
// descriptor indirection when present (GraphVite mode).
func stepOnce(g *graph.CSR, spec algo.Spec, weighted *algo.WeightedSampler, descs []*vertexDesc, prev, cur graph.VID, src rng.Source) graph.VID {
	if spec.Order == 2 {
		if spec.Custom != nil {
			return algo.NextCustom(g, spec.Custom, prev, cur, src)
		}
		return algo.NextNode2Vec(g, prev, cur, spec.P, spec.Q, src)
	}
	if weighted != nil {
		return weighted.Next(cur, src)
	}
	if descs != nil {
		d := descs[cur]
		if d.degree == 0 {
			return cur
		}
		// GraphVite's extra draw: it samples an edge offset and a
		// tie-break uniform per step.
		idx := rng.Uint32n(src, d.degree)
		_ = rng.Float64(src)
		return d.adj[idx]
	}
	return algo.NextFirstOrder(g, cur, src)
}
