package baseline

import (
	"math"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
)

func testGraph(t *testing.T, n uint32, seed uint64) *graph.CSR {
	t.Helper()
	dir, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: n, AvgDegree: 6, Alpha: 0.7, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	for v := uint32(0); v < dir.NumVertices(); v++ {
		for _, w := range dir.Neighbors(v) {
			if v != w {
				edges = append(edges, graph.Edge{Src: v, Dst: w})
			}
		}
	}
	res, err := graph.Build(edges, graph.BuildOptions{Undirected: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func TestKnightKingValidWalks(t *testing.T) {
	g := testGraph(t, 500, 1)
	k, err := NewKnightKing(g, algo.DeepWalk(), Config{Workers: 4, Seed: 2, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := k.Run(1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps != 10000 {
		t.Fatalf("TotalSteps = %d", res.TotalSteps)
	}
	h := res.History
	for j := 0; j < h.NumWalkers(); j++ {
		for i := 0; i+1 < h.NumSteps(); i++ {
			u, v := h.At(i, j), h.At(i+1, j)
			if u == v && g.Degree(u) == 0 {
				continue
			}
			if !g.HasEdge(u, v) {
				t.Fatalf("walker %d step %d: %d→%d not an edge", j, i, u, v)
			}
		}
	}
	if res.PerStepNS() <= 0 {
		t.Error("PerStepNS not positive")
	}
}

func TestGraphViteValidWalks(t *testing.T) {
	g := testGraph(t, 400, 3)
	gv, err := NewGraphVite(g, algo.DeepWalk(), Config{Workers: 2, Seed: 4, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := gv.Run(500, 8)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	for j := 0; j < h.NumWalkers(); j++ {
		for i := 0; i+1 < h.NumSteps(); i++ {
			u, v := h.At(i, j), h.At(i+1, j)
			if u == v && g.Degree(u) == 0 {
				continue
			}
			if !g.HasEdge(u, v) {
				t.Fatalf("GraphVite walker %d step %d: %d→%d not an edge", j, i, u, v)
			}
		}
	}
}

func TestBaselinesMatchStationaryDistribution(t *testing.T) {
	// Both baselines implement the same process: final-position shares of
	// high-degree vertices must approach deg/Σdeg.
	g := testGraph(t, 200, 5)
	k, _ := NewKnightKing(g, algo.DeepWalk(), Config{Workers: 4, Seed: 6, RecordHistory: true})
	res, err := k.Run(40000, 15)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	counts := make([]float64, g.NumVertices())
	last := h.NumSteps() - 1
	for j := 0; j < h.NumWalkers(); j++ {
		counts[h.At(last, j)]++
	}
	sumDeg := float64(g.NumEdges())
	for v := uint32(0); v < g.NumVertices(); v++ {
		want := float64(g.Degree(v)) / sumDeg
		got := counts[v] / float64(h.NumWalkers())
		if want > 0.01 && math.Abs(got-want) > 0.25*want {
			t.Errorf("vertex %d: share %.4f, stationary %.4f", v, got, want)
		}
	}
}

func TestKnightKingNode2Vec(t *testing.T) {
	g := testGraph(t, 300, 7)
	k, err := NewKnightKing(g, algo.Node2Vec(0.5, 2), Config{Workers: 2, Seed: 8, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := k.Run(500, 6)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	for j := 0; j < h.NumWalkers(); j++ {
		for i := 0; i+1 < h.NumSteps(); i++ {
			u, v := h.At(i, j), h.At(i+1, j)
			if u == v && g.Degree(u) == 0 {
				continue
			}
			if !g.HasEdge(u, v) {
				t.Fatalf("node2vec %d→%d not an edge", u, v)
			}
		}
	}
}

func TestBaselineErrors(t *testing.T) {
	g := testGraph(t, 100, 9)
	if _, err := NewKnightKing(g, algo.Spec{Order: 9, Steps: 1}, Config{}); err == nil {
		t.Error("bad spec accepted")
	}
	spec := algo.DeepWalk()
	spec.Weighted = true
	if _, err := NewKnightKing(g, spec, Config{}); err == nil {
		t.Error("weighted on unweighted accepted")
	}
	if _, err := NewGraphVite(g, spec, Config{}); err == nil {
		t.Error("GraphVite weighted on unweighted accepted")
	}
	k, _ := NewKnightKing(g, algo.DeepWalk(), Config{})
	if _, err := k.Run(10, -2); err == nil {
		t.Error("negative steps accepted")
	}
}

func TestBaselineDefaults(t *testing.T) {
	g := testGraph(t, 100, 10)
	k, _ := NewKnightKing(g, algo.DeepWalk(), Config{Workers: 1, Seed: 11})
	res, err := k.Run(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Walkers != uint64(g.NumVertices()) || res.Steps != 80 {
		t.Errorf("defaults: walkers=%d steps=%d", res.Walkers, res.Steps)
	}
}

func TestBaselineStopProbRestarts(t *testing.T) {
	g := testGraph(t, 150, 12)
	spec := algo.PageRankWalk(0.5) // high restart rate
	k, _ := NewKnightKing(g, spec, Config{Workers: 1, Seed: 13, RecordHistory: true})
	res, err := k.Run(200, 20)
	if err != nil {
		t.Fatal(err)
	}
	// With restart probability 0.5, many transitions are teleports
	// (non-edges).
	h := res.History
	teleports := 0
	for j := 0; j < h.NumWalkers(); j++ {
		for i := 0; i+1 < h.NumSteps(); i++ {
			if !g.HasEdge(h.At(i, j), h.At(i+1, j)) {
				teleports++
			}
		}
	}
	if teleports < int(res.TotalSteps)/4 {
		t.Errorf("only %d/%d teleports with stop prob 0.5", teleports, res.TotalSteps)
	}
}

func TestKnightKingOrderK(t *testing.T) {
	g := testGraph(t, 300, 30)
	k, err := NewKnightKing(g, algo.SelfAvoiding(3, 10, 0.001), Config{
		Workers: 2, Seed: 31, RecordHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := k.Run(2000, 10)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	var revisits, moves int
	for j := 0; j < h.NumWalkers(); j++ {
		for i := 4; i < h.NumSteps(); i++ {
			u, v := h.At(i-1, j), h.At(i, j)
			if u == v && g.Degree(u) == 0 {
				continue
			}
			if !g.HasEdge(u, v) {
				t.Fatalf("%d→%d not an edge", u, v)
			}
			for back := 1; back <= 3; back++ {
				if v == h.At(i-back, j) {
					revisits++
					break
				}
			}
			moves++
		}
	}
	if rate := float64(revisits) / float64(moves); rate > 0.05 {
		t.Errorf("baseline self-avoiding revisit rate %.4f too high", rate)
	}
}
