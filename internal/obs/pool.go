package obs

// PoolMetrics is the metric set a persistent worker pool records into
// (internal/pool): phase-barrier executions, per-worker shard busy time,
// and the time the caller spends parked on the barrier after finishing
// its own shard. Engines build one with NewPoolMetrics per session and
// pass it to pool.Submit with each phase (pool.SetMetrics remains the
// single-owner default for Run/RunCtx); a nil *PoolMetrics disables
// collection.
type PoolMetrics struct {
	// Runs counts phase barriers executed (one per pool.Run call).
	Runs *Counter
	// BusyNS accumulates each worker's shard execution time; slot i is
	// worker i (slot 0 is the calling goroutine).
	BusyNS *CounterVec
	// BarrierWaitNS accumulates the time the caller waits for the slowest
	// worker after finishing its own shard — the stage's load imbalance.
	BarrierWaitNS *Counter
}

// NewPoolMetrics registers the pool metric set for a pool of the given
// worker count.
func NewPoolMetrics(r *Registry, workers int) *PoolMetrics {
	return &PoolMetrics{
		Runs: r.Counter(Desc{
			Name: "pool_runs_total", Unit: "count", Stage: "pool",
			Help: "phase barriers executed on the persistent worker pool",
		}),
		BusyNS: r.CounterVec(Desc{
			Name: "pool_worker_busy_ns", Unit: "ns", Stage: "pool",
			Help: "per-worker shard execution time; index is the worker slot (0 = caller)",
		}, workers, nil),
		BarrierWaitNS: r.Counter(Desc{
			Name: "pool_barrier_wait_ns", Unit: "ns", Stage: "pool",
			Help: "time the caller spends waiting at the phase barrier after its own shard finishes (stage load imbalance)",
		}),
	}
}
