// Package obs is the engine's observability layer: a metrics registry of
// atomic counters, gauges, fixed-bucket latency histograms, and indexed
// counter vectors, designed so that recording on the walk hot path costs
// one atomic add and allocates nothing.
//
// The paper's own evaluation method is counter-driven (Fig 1b's per-step
// miss counts, Table 5's profiling case study, Fig 10b's walker-step
// weighting); this package makes the same style of accounting available
// on every production run instead of only inside the simulator. Engines
// create a Registry at build time, resolve each metric to a concrete
// pointer once, and update those pointers directly — the registry is
// never consulted during a walk. Snapshot freezes everything into a
// Report, a plain serializable value with a stable field order (metrics
// sort by name) whose JSON form is documented in docs/OBSERVABILITY.md.
//
// Metrics collection is opt-in per engine (core.Config.Metrics); when it
// is off the engines hold a nil metrics struct and every recording site
// compiles down to a nil check and skip.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Desc names and documents one metric. Stage ties the metric to the
// pipeline stage that records it ("sample", "shuffle", "pool", "ooc",
// "run"); Unit is the value's unit ("ns", "bytes", "walkers", "count").
type Desc struct {
	// Name is the registry-unique metric name (snake_case, prefixed by
	// the recording subsystem: core_, pool_, ooc_).
	Name string `json:"name"`
	// Unit is the unit of recorded values.
	Unit string `json:"unit"`
	// Stage is the pipeline stage that records the metric.
	Stage string `json:"stage"`
	// Help is a one-line description of what the metric counts and when
	// it is recorded.
	Help string `json:"help"`
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go down).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the histogram bucket count: bucket i holds observations
// whose value has bit length i, i.e. bucket 0 is exactly 0 and bucket
// i ≥ 1 spans [2^(i-1), 2^i - 1]. 65 buckets cover all of uint64.
const histBuckets = 65

// Histogram is a fixed-bucket power-of-two histogram. Observe costs three
// atomic adds and never allocates; the bucket index is the value's bit
// length, so no bound search is needed.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	c := h.Count()
	if c == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(c)
}

// CounterVec is a fixed-length vector of counters sharing one name —
// the carrier for per-partition, per-worker, and per-kernel-kind
// accounting, where one metric object per index would bloat the report.
// Optional labels name the indices (e.g. kernel kinds); without labels
// the index itself is the identity (partition or worker number).
type CounterVec struct {
	vals   []atomic.Uint64
	labels []string
}

// Add increments slot i by n.
func (v *CounterVec) Add(i int, n uint64) { v.vals[i].Add(n) }

// Value returns slot i's count.
func (v *CounterVec) Value(i int) uint64 { return v.vals[i].Load() }

// Len returns the vector length.
func (v *CounterVec) Len() int { return len(v.vals) }

// Registry owns a set of named metrics. Registration happens once at
// engine build time under a lock; the returned pointers are then updated
// directly, so a Registry is never touched on the hot path. Names must be
// unique — a duplicate registration panics, as it is a programming error.
type Registry struct {
	mu       sync.Mutex
	names    map[string]bool
	counters []regEntry[*Counter]
	gauges   []regEntry[*Gauge]
	hists    []regEntry[*Histogram]
	vecs     []regEntry[*CounterVec]
}

// regEntry pairs a metric with its description.
type regEntry[T any] struct {
	desc Desc
	m    T
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// claim reserves a metric name, panicking on duplicates.
func (r *Registry) claim(d Desc) {
	if d.Name == "" {
		panic("obs: metric with empty name")
	}
	if r.names[d.Name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", d.Name))
	}
	r.names[d.Name] = true
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(d Desc) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(d)
	c := &Counter{}
	r.counters = append(r.counters, regEntry[*Counter]{d, c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(d Desc) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(d)
	g := &Gauge{}
	r.gauges = append(r.gauges, regEntry[*Gauge]{d, g})
	return g
}

// Histogram registers and returns a new histogram.
func (r *Registry) Histogram(d Desc) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(d)
	h := &Histogram{}
	r.hists = append(r.hists, regEntry[*Histogram]{d, h})
	return h
}

// CounterVec registers and returns a counter vector of length n with
// optional index labels (nil, or exactly n strings).
func (r *Registry) CounterVec(d Desc, n int, labels []string) *CounterVec {
	if labels != nil && len(labels) != n {
		panic(fmt.Sprintf("obs: vector %q has %d labels for %d slots", d.Name, len(labels), n))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(d)
	v := &CounterVec{vals: make([]atomic.Uint64, n), labels: labels}
	r.vecs = append(r.vecs, regEntry[*CounterVec]{d, v})
	return v
}

// Snapshot freezes every registered metric into a Report. Metrics are
// sorted by name within each section, so two snapshots of registries
// built the same way serialize identically apart from the values.
func (r *Registry) Snapshot() *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{SchemaVersion: ReportSchemaVersion}
	for _, e := range r.counters {
		rep.Counters = append(rep.Counters, CounterSnap{Desc: e.desc, Value: e.m.Value()})
	}
	for _, e := range r.gauges {
		rep.Gauges = append(rep.Gauges, GaugeSnap{Desc: e.desc, Value: e.m.Value()})
	}
	for _, e := range r.hists {
		rep.Histograms = append(rep.Histograms, snapHistogram(e.desc, e.m))
	}
	for _, e := range r.vecs {
		vals := make([]uint64, e.m.Len())
		for i := range vals {
			vals[i] = e.m.Value(i)
		}
		rep.Vectors = append(rep.Vectors, VecSnap{Desc: e.desc, Labels: e.m.labels, Values: vals})
	}
	sort.Slice(rep.Counters, func(i, j int) bool { return rep.Counters[i].Name < rep.Counters[j].Name })
	sort.Slice(rep.Gauges, func(i, j int) bool { return rep.Gauges[i].Name < rep.Gauges[j].Name })
	sort.Slice(rep.Histograms, func(i, j int) bool { return rep.Histograms[i].Name < rep.Histograms[j].Name })
	sort.Slice(rep.Vectors, func(i, j int) bool { return rep.Vectors[i].Name < rep.Vectors[j].Name })
	return rep
}

// FoldInto accumulates every metric recorded on r into the same-named
// metric of dst: counters and vector slots add, gauges add their reading,
// histograms merge count, sum, and buckets. This is the session-to-
// aggregate path — a per-run registry folds its totals into an engine-
// lifetime registry built with the same metric set when the run
// completes. Metrics with no same-named counterpart in dst are skipped;
// vectors fold over the shorter of the two lengths. Safe for concurrent
// use with recording and snapshots on either registry, but two
// registries must not FoldInto each other concurrently in opposite
// directions.
func (r *Registry) FoldInto(dst *Registry) {
	if dst == nil || dst == r {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	dst.mu.Lock()
	defer dst.mu.Unlock()
	counters := make(map[string]*Counter, len(dst.counters))
	for _, e := range dst.counters {
		counters[e.desc.Name] = e.m
	}
	for _, e := range r.counters {
		if c := counters[e.desc.Name]; c != nil {
			c.Add(e.m.Value())
		}
	}
	gauges := make(map[string]*Gauge, len(dst.gauges))
	for _, e := range dst.gauges {
		gauges[e.desc.Name] = e.m
	}
	for _, e := range r.gauges {
		if g := gauges[e.desc.Name]; g != nil {
			g.Add(e.m.Value())
		}
	}
	hists := make(map[string]*Histogram, len(dst.hists))
	for _, e := range dst.hists {
		hists[e.desc.Name] = e.m
	}
	for _, e := range r.hists {
		h := hists[e.desc.Name]
		if h == nil {
			continue
		}
		h.count.Add(e.m.count.Load())
		h.sum.Add(e.m.sum.Load())
		for i := 0; i < histBuckets; i++ {
			if c := e.m.buckets[i].Load(); c != 0 {
				h.buckets[i].Add(c)
			}
		}
	}
	vecs := make(map[string]*CounterVec, len(dst.vecs))
	for _, e := range dst.vecs {
		vecs[e.desc.Name] = e.m
	}
	for _, e := range r.vecs {
		v := vecs[e.desc.Name]
		if v == nil {
			continue
		}
		n := min(e.m.Len(), v.Len())
		for i := 0; i < n; i++ {
			if c := e.m.Value(i); c != 0 {
				v.Add(i, c)
			}
		}
	}
}

// snapHistogram freezes one histogram, keeping only non-empty buckets.
func snapHistogram(d Desc, h *Histogram) HistSnap {
	s := HistSnap{Desc: d, Count: h.Count(), Sum: h.Sum()}
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, BucketSnap{Le: bucketUpper(i), Count: c})
	}
	return s
}

// bucketUpper returns bucket i's inclusive upper bound: 0 for the zero
// bucket, 2^i - 1 otherwise (saturating at MaxUint64).
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << i) - 1
}
