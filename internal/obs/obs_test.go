package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers every metric kind from many goroutines
// and checks the totals — the -race leg's data-race probe for the whole
// recording surface.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Desc{Name: "c", Unit: "count", Stage: "test"})
	g := r.Gauge(Desc{Name: "g", Unit: "count", Stage: "test"})
	h := r.Histogram(Desc{Name: "h", Unit: "ns", Stage: "test"})
	v := r.CounterVec(Desc{Name: "v", Unit: "count", Stage: "test"}, 8, nil)

	const workers = 16
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(2)
				g.Add(1)
				h.Observe(uint64(i))
				v.Add(i%8, 1)
			}
		}(w)
	}
	wg.Wait()

	if got, want := c.Value(), uint64(2*workers*perWorker); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := g.Value(), int64(workers*perWorker); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	if got, want := h.Count(), uint64(workers*perWorker); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	wantSum := uint64(workers) * uint64(perWorker*(perWorker-1)/2)
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %d, want %d", got, wantSum)
	}
	var vecTotal uint64
	for i := 0; i < v.Len(); i++ {
		vecTotal += v.Value(i)
	}
	if want := uint64(workers * perWorker); vecTotal != want {
		t.Errorf("vector total = %d, want %d", vecTotal, want)
	}
	// Bucket counts must cover every observation exactly once.
	snap := r.Snapshot()
	hs, ok := snap.Histogram("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	var bucketTotal uint64
	for _, b := range hs.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != hs.Count {
		t.Errorf("bucket counts sum to %d, histogram count %d", bucketTotal, hs.Count)
	}
}

// TestZeroAllocHotPath asserts the core recording operations allocate
// nothing — the property that lets engines record inside the sample loop.
func TestZeroAllocHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Desc{Name: "c", Unit: "count", Stage: "test"})
	g := r.Gauge(Desc{Name: "g", Unit: "count", Stage: "test"})
	h := r.Histogram(Desc{Name: "h", Unit: "ns", Stage: "test"})
	v := r.CounterVec(Desc{Name: "v", Unit: "count", Stage: "test"}, 4, nil)

	for name, fn := range map[string]func(){
		"Counter.Add":       func() { c.Add(3) },
		"Gauge.Set":         func() { g.Set(7) },
		"Histogram.Observe": func() { h.Observe(12345) },
		"CounterVec.Add":    func() { v.Add(2, 1) },
	} {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per call, want 0", name, allocs)
		}
	}
}

// TestHistogramBuckets pins the power-of-two bucket boundaries.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Desc{Name: "h", Unit: "ns", Stage: "test"})
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024} {
		h.Observe(v)
	}
	snap, _ := r.Snapshot().Histogram("h")
	got := map[uint64]uint64{}
	for _, b := range snap.Buckets {
		got[b.Le] = b.Count
	}
	want := map[uint64]uint64{
		0:    1, // 0
		1:    1, // 1
		3:    2, // 2, 3
		7:    2, // 4, 7
		15:   1, // 8
		1023: 1, // 1023
		2047: 1, // 1024
	}
	for le, n := range want {
		if got[le] != n {
			t.Errorf("bucket le=%d has %d observations, want %d (all: %v)", le, got[le], n, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d non-empty buckets, want %d: %v", len(got), len(want), got)
	}
}

// TestSnapshotStableEncoding verifies the stable-JSON property: two
// snapshots of registries built the same way (regardless of registration
// order vs name order) encode byte-identically when values match.
func TestSnapshotStableEncoding(t *testing.T) {
	build := func(names []string) *Registry {
		r := NewRegistry()
		for _, n := range names {
			r.Counter(Desc{Name: n, Unit: "count", Stage: "test"}).Add(5)
		}
		r.CounterVec(Desc{Name: "vec", Unit: "count", Stage: "test"}, 2, []string{"a", "b"}).Add(1, 9)
		return r
	}
	a := build([]string{"x", "y", "z"})
	b := build([]string{"z", "x", "y"}) // different registration order
	var bufA, bufB bytes.Buffer
	if err := a.Snapshot().WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Errorf("snapshots differ:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
	if bufA.Len() == 0 {
		t.Fatal("empty encoding")
	}
}

// TestDuplicateNamePanics locks the unique-name contract.
func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter(Desc{Name: "dup", Unit: "count", Stage: "test"})
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Gauge(Desc{Name: "dup", Unit: "count", Stage: "test"})
}

// BenchmarkObserve is the benchmark guard for the recording cost: a
// histogram observation (the most expensive primitive) must stay in the
// few-nanosecond range with zero allocations.
func BenchmarkObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram(Desc{Name: "h", Unit: "ns", Stage: "bench"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

// BenchmarkCounterAdd measures the counter hot path.
func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter(Desc{Name: "c", Unit: "count", Stage: "bench"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
