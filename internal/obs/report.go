package obs

import (
	"encoding/json"
	"io"
)

// ReportSchemaVersion identifies the JSON layout of Report. Bump it when
// a field is renamed or removed (additions are backward compatible);
// docs/OBSERVABILITY.md documents the current schema.
const ReportSchemaVersion = 1

// Report is a frozen snapshot of a Registry: plain values, safe to retain,
// compare, and serialize after the engine that produced it is gone. Within
// each section metrics are sorted by name, so the JSON encoding of two
// reports from identically-built registries is structurally identical.
type Report struct {
	// SchemaVersion is ReportSchemaVersion at snapshot time.
	SchemaVersion int `json:"schema_version"`
	// Counters holds the frozen counters, sorted by metric name; like all
	// sections, it is omitted from JSON when empty.
	Counters []CounterSnap `json:"counters,omitempty"`
	// Gauges holds the frozen gauges, sorted by metric name.
	Gauges []GaugeSnap `json:"gauges,omitempty"`
	// Histograms holds the frozen histograms, sorted by metric name.
	Histograms []HistSnap `json:"histograms,omitempty"`
	// Vectors holds the frozen counter vectors, sorted by metric name.
	Vectors []VecSnap `json:"vectors,omitempty"`
}

// CounterSnap is one frozen counter.
type CounterSnap struct {
	Desc
	// Value is the counter's total at snapshot time.
	Value uint64 `json:"value"`
}

// GaugeSnap is one frozen gauge.
type GaugeSnap struct {
	Desc
	// Value is the gauge's level at snapshot time.
	Value int64 `json:"value"`
}

// BucketSnap is one non-empty histogram bucket: Count observations with
// value ≤ Le (and greater than the previous bucket's bound).
type BucketSnap struct {
	// Le is the bucket's inclusive upper bound.
	Le uint64 `json:"le"`
	// Count is how many observations fell in this bucket.
	Count uint64 `json:"count"`
}

// HistSnap is one frozen histogram; only non-empty buckets appear.
type HistSnap struct {
	Desc
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// Sum is the sum of all observed values (Sum/Count is the mean).
	Sum uint64 `json:"sum"`
	// Buckets lists the non-empty power-of-two buckets in ascending
	// bound order.
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Mean returns the histogram's average observed value (0 when empty).
func (h HistSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// VecSnap is one frozen counter vector. Labels, when present, name the
// indices; otherwise the index itself identifies the slot (partition or
// worker number).
type VecSnap struct {
	Desc
	// Labels names the slots when the vector was registered with labels.
	Labels []string `json:"labels,omitempty"`
	// Values holds every slot's total, including zero slots, so the index
	// is always meaningful.
	Values []uint64 `json:"values"`
}

// Total returns the sum over the vector's slots.
func (v VecSnap) Total() uint64 {
	var t uint64
	for _, x := range v.Values {
		t += x
	}
	return t
}

// Counter returns the named counter snapshot.
func (r *Report) Counter(name string) (CounterSnap, bool) {
	for _, c := range r.Counters {
		if c.Name == name {
			return c, true
		}
	}
	return CounterSnap{}, false
}

// Gauge returns the named gauge snapshot.
func (r *Report) Gauge(name string) (GaugeSnap, bool) {
	for _, g := range r.Gauges {
		if g.Name == name {
			return g, true
		}
	}
	return GaugeSnap{}, false
}

// Histogram returns the named histogram snapshot.
func (r *Report) Histogram(name string) (HistSnap, bool) {
	for _, h := range r.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistSnap{}, false
}

// Vector returns the named vector snapshot.
func (r *Report) Vector(name string) (VecSnap, bool) {
	for _, v := range r.Vectors {
		if v.Name == name {
			return v, true
		}
	}
	return VecSnap{}, false
}

// WriteJSON writes the report as indented JSON — the stable encoding
// fmbench's -metrics flag and the report experiment emit.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
