// Package emb trains node embeddings from random-walk corpora with
// skip-gram and negative sampling (SGNS) — the downstream computation the
// paper's walks feed (§1, §2.1): DeepWalk/node2vec paths in, vectors whose
// geometry reflects neighbourhood similarity out.
//
// The trainer is deliberately small and dependency-free: single-threaded
// SGD (deterministic given a seed), degree-proportional negative sampling
// (word2vec's unigram analogue), and frequent-vertex subsampling — which
// matters more on graphs than on text, since Table 2 of the paper shows
// hub vertices dominating walk corpora.
package emb

import (
	"fmt"
	"math"

	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

// Config tunes training.
type Config struct {
	// Dim is the embedding dimensionality (default 64).
	Dim int
	// Window is the skip-gram context radius (default 5).
	Window int
	// Negatives is the number of negative samples per positive pair
	// (default 5).
	Negatives int
	// Epochs is the number of SGD passes over the corpus (default 3).
	Epochs int
	// LearnRate is the initial SGD step size, decayed per epoch
	// (default 0.025).
	LearnRate float64
	// Subsample is the word2vec frequent-token threshold t: a vertex
	// with corpus frequency f is kept with probability √(t/f) when
	// f > t. 0 disables (default 1e-3).
	Subsample float64
	// Seed drives initialization, negatives, and subsampling.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 64
	}
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.Negatives <= 0 {
		c.Negatives = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.025
	}
	if c.Subsample == 0 {
		c.Subsample = 1e-3
	}
	return c
}

// Model holds trained embeddings.
type Model struct {
	// Dim is the vector dimensionality.
	Dim int
	// Vectors[v] is vertex v's embedding.
	Vectors [][]float32
}

// Train runs SGNS over the walk corpus. Paths use the graph's vertex IDs;
// the graph supplies the degree-proportional negative distribution.
func Train(g *graph.CSR, paths [][]graph.VID, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(paths) == 0 {
		return nil, fmt.Errorf("emb: empty corpus")
	}
	n := int(g.NumVertices())
	if n == 0 {
		return nil, fmt.Errorf("emb: empty graph")
	}
	for _, p := range paths {
		for _, v := range p {
			if int(v) >= n {
				return nil, fmt.Errorf("emb: corpus vertex %d outside graph (|V|=%d)", v, n)
			}
		}
	}
	src := rng.NewXorShift1024Star(cfg.Seed)
	dim := cfg.Dim
	flat := make([]float32, 2*n*dim)
	in := make([][]float32, n)
	out := make([][]float32, n)
	for v := 0; v < n; v++ {
		in[v] = flat[v*dim : (v+1)*dim]
		out[v] = flat[(n+v)*dim : (n+v+1)*dim]
		for d := 0; d < dim; d++ {
			in[v][d] = (float32(rng.Float64(src)) - 0.5) / float32(dim)
		}
	}

	// Subsampling keep-probabilities from corpus frequencies.
	keep := keepProbs(paths, n, cfg.Subsample)

	sampleNeg := negSampler(g)
	lr := float32(cfg.LearnRate)
	grad := make([]float32, dim)
	kept := make([]graph.VID, 0, 128)
	for ep := 0; ep < cfg.Epochs; ep++ {
		for _, path := range paths {
			kept = kept[:0]
			for _, v := range path {
				if keep == nil || keep[v] >= 1 || rng.Float64(src) < keep[v] {
					kept = append(kept, v)
				}
			}
			for i, center := range kept {
				lo := max(0, i-cfg.Window)
				hi := min(len(kept)-1, i+cfg.Window)
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					sgdPair(in[center], out[kept[j]], 1, lr, grad)
					for k := 0; k < cfg.Negatives; k++ {
						sgdPair(in[center], out[sampleNeg(src)], 0, lr, grad)
					}
				}
			}
		}
		lr *= 0.75
	}
	return &Model{Dim: dim, Vectors: in}, nil
}

// keepProbs computes per-vertex subsampling keep probabilities, or nil
// when subsampling is disabled.
func keepProbs(paths [][]graph.VID, n int, t float64) []float64 {
	if t <= 0 {
		return nil
	}
	freq := make([]float64, n)
	var total float64
	for _, p := range paths {
		for _, v := range p {
			freq[v]++
			total++
		}
	}
	keep := make([]float64, n)
	for v := range keep {
		f := freq[v] / total
		keep[v] = 1
		if f > t {
			keep[v] = math.Sqrt(t / f)
		}
	}
	return keep
}

// negSampler draws vertices proportionally to degree via binary search on
// the CSR offsets.
func negSampler(g *graph.CSR) func(rng.Source) graph.VID {
	total := g.NumEdges()
	return func(src rng.Source) graph.VID {
		x := rng.Uint64n(src, total)
		lo, hi := 0, int(g.NumVertices())
		for lo < hi-1 {
			mid := (lo + hi) / 2
			if g.Offsets[mid] <= x {
				lo = mid
			} else {
				hi = mid
			}
		}
		return graph.VID(lo)
	}
}

// sgdPair applies one SGNS gradient step for (input, context) with the
// given label (1 positive, 0 negative).
func sgdPair(in, out []float32, label, lr float32, grad []float32) {
	var dot float32
	for d := range in {
		dot += in[d] * out[d]
	}
	pred := float32(1 / (1 + math.Exp(-float64(dot))))
	g := lr * (label - pred)
	for d := range in {
		grad[d] = g * out[d]
		out[d] += g * in[d]
	}
	for d := range in {
		in[d] += grad[d]
	}
}

// Cosine returns the cosine similarity of two vertices' embeddings.
func (m *Model) Cosine(u, v graph.VID) float64 {
	return cosine(m.Vectors[u], m.Vectors[v])
}

func cosine(a, b []float32) float64 {
	var dot, na, nb float64
	for d := range a {
		dot += float64(a[d]) * float64(b[d])
		na += float64(a[d]) * float64(a[d])
		nb += float64(b[d]) * float64(b[d])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// MostSimilar returns the k vertices most cosine-similar to u (excluding
// u itself), by exhaustive scan.
func (m *Model) MostSimilar(u graph.VID, k int) []graph.VID {
	type scored struct {
		v graph.VID
		s float64
	}
	best := make([]scored, 0, k+1)
	for v := range m.Vectors {
		if graph.VID(v) == u {
			continue
		}
		s := m.Cosine(u, graph.VID(v))
		pos := len(best)
		for pos > 0 && best[pos-1].s < s {
			pos--
		}
		if pos < k {
			best = append(best, scored{})
			copy(best[pos+1:], best[pos:])
			best[pos] = scored{graph.VID(v), s}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	out := make([]graph.VID, len(best))
	for i, b := range best {
		out[i] = b.v
	}
	return out
}

// LinkSeparation measures embedding quality: the mean cosine similarity
// of sampled connected pairs minus that of sampled random pairs. Positive
// values mean the embedding separates neighbours from non-neighbours.
func LinkSeparation(g *graph.CSR, m *Model, samples int, seed uint64) (connected, random float64) {
	src := rng.NewXorShift1024Star(seed)
	n := g.NumVertices()
	var cSum, rSum float64
	var cN, rN int
	for i := 0; i < samples; i++ {
		u := graph.VID(rng.Uint32n(src, n))
		if g.Degree(u) > 0 {
			adj := g.Neighbors(u)
			v := adj[rng.Uint32n(src, uint32(len(adj)))]
			cSum += m.Cosine(u, v)
			cN++
		}
		a := graph.VID(rng.Uint32n(src, n))
		b := graph.VID(rng.Uint32n(src, n))
		rSum += m.Cosine(a, b)
		rN++
	}
	if cN > 0 {
		connected = cSum / float64(cN)
	}
	if rN > 0 {
		random = rSum / float64(rN)
	}
	return connected, random
}
