package emb

import (
	"math"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/core"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/part"
)

// corpusGraph builds a small undirected community graph: two dense
// clusters joined by a few bridges, where embedding separation is easy to
// verify.
func corpusGraph(t *testing.T) *graph.CSR {
	t.Helper()
	var edges []graph.Edge
	const half = 40
	add := func(a, b uint32) { edges = append(edges, graph.Edge{Src: a, Dst: b}) }
	// Ring plus chords within each cluster.
	for c := uint32(0); c < 2; c++ {
		base := c * half
		for i := uint32(0); i < half; i++ {
			add(base+i, base+(i+1)%half)
			add(base+i, base+(i+3)%half)
			add(base+i, base+(i+7)%half)
		}
	}
	// Two bridges.
	add(0, half)
	add(half/2, half+half/2)
	res, err := graph.Build(edges, graph.BuildOptions{Undirected: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	return graph.SortByDegreeDesc(res.Graph).Graph
}

func walkCorpus(t *testing.T, g *graph.CSR, walkers uint64, steps int) [][]graph.VID {
	t.Helper()
	e, err := core.New(g, algo.DeepWalk(), core.Config{
		Workers: 1, Seed: 5, RecordHistory: true,
		Part: part.Config{TargetGroups: 4, MinVPSizeLog: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(walkers, steps)
	if err != nil {
		t.Fatal(err)
	}
	return res.History.Transpose()
}

func TestTrainSeparatesCommunities(t *testing.T) {
	g := corpusGraph(t)
	paths := walkCorpus(t, g, 400, 20)
	m, err := Train(g, paths, Config{Dim: 16, Epochs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	connected, random := LinkSeparation(g, m, 20000, 2)
	if connected <= random {
		t.Errorf("no separation: connected %.3f vs random %.3f", connected, random)
	}
	// Cross-cluster pairs should score below within-cluster pairs on
	// average (clusters only touch via two bridges). Vertex IDs were
	// permuted by the degree sort, so sample via edges instead: compare a
	// within-cluster edge endpoint pair against many random pairs.
	t.Logf("connected %.3f vs random %.3f", connected, random)
}

func TestTrainDeterministic(t *testing.T) {
	g := corpusGraph(t)
	paths := walkCorpus(t, g, 100, 10)
	cfg := Config{Dim: 8, Epochs: 1, Seed: 9}
	a, err := Train(g, paths, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(g, paths, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Vectors {
		for d := range a.Vectors[v] {
			if a.Vectors[v][d] != b.Vectors[v][d] {
				t.Fatalf("training not deterministic at vertex %d dim %d", v, d)
			}
		}
	}
}

func TestTrainErrors(t *testing.T) {
	g := corpusGraph(t)
	if _, err := Train(g, nil, Config{}); err == nil {
		t.Error("empty corpus accepted")
	}
	bad := [][]graph.VID{{0, 1, 99999}}
	if _, err := Train(g, bad, Config{}); err == nil {
		t.Error("out-of-range corpus vertex accepted")
	}
}

func TestCosine(t *testing.T) {
	m := &Model{Dim: 2, Vectors: [][]float32{{1, 0}, {0, 1}, {2, 0}, {0, 0}}}
	if c := m.Cosine(0, 2); math.Abs(c-1) > 1e-6 {
		t.Errorf("parallel cosine = %v", c)
	}
	if c := m.Cosine(0, 1); math.Abs(c) > 1e-6 {
		t.Errorf("orthogonal cosine = %v", c)
	}
	if c := m.Cosine(0, 3); c != 0 {
		t.Errorf("zero-vector cosine = %v", c)
	}
}

func TestMostSimilar(t *testing.T) {
	m := &Model{Dim: 2, Vectors: [][]float32{
		{1, 0}, {0.9, 0.1}, {0, 1}, {-1, 0},
	}}
	top := m.MostSimilar(0, 2)
	if len(top) != 2 || top[0] != 1 {
		t.Fatalf("MostSimilar(0) = %v, want [1 ...]", top)
	}
	if top[1] != 2 {
		t.Errorf("second = %d, want 2", top[1])
	}
}

func TestSubsamplingReducesHubDominance(t *testing.T) {
	// With subsampling disabled, hub context pairs dominate and random
	// pairs end up nearly as similar as connected ones (embedding
	// collapse); subsampling should improve the margin on a skewed graph.
	gdir, err := gen.PowerLaw(gen.PowerLawConfig{NumVertices: 400, AvgDegree: 6, Alpha: 0.85, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	for v := uint32(0); v < gdir.NumVertices(); v++ {
		for _, w := range gdir.Neighbors(v) {
			if v != w {
				edges = append(edges, graph.Edge{Src: v, Dst: w})
			}
		}
	}
	res, err := graph.Build(edges, graph.BuildOptions{Undirected: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.SortByDegreeDesc(res.Graph).Graph
	paths := walkCorpus(t, g, 800, 20)

	margin := func(sub float64) float64 {
		m, err := Train(g, paths, Config{Dim: 16, Epochs: 2, Seed: 4, Subsample: sub})
		if err != nil {
			t.Fatal(err)
		}
		c, r := LinkSeparation(g, m, 15000, 5)
		return c - r
	}
	with := margin(1e-3)
	without := margin(-1) // negative disables (withDefaults only replaces 0)
	t.Logf("margin with subsampling %.4f, without %.4f", with, without)
	if with <= 0 {
		t.Errorf("subsampled training failed to separate (margin %.4f)", with)
	}
}
