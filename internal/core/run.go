package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"flashmob/internal/graph"
	"flashmob/internal/rng"
	"flashmob/internal/walk"
)

// Result reports a run's outcome and stage timing breakdown (the split the
// paper shows in Figure 9a).
type Result struct {
	// Walkers is the total number of walkers advanced.
	Walkers uint64
	// Steps is the walk length used.
	Steps int
	// TotalSteps is Walkers × Steps.
	TotalSteps uint64
	// Episodes is how many memory-budgeted rounds the run took.
	Episodes int
	// Duration is total wall time; SampleTime and ShuffleTime are the
	// stage splits, OtherTime the remainder (init, output).
	Duration, SampleTime, ShuffleTime, OtherTime time.Duration
	// ShuffleFwdTime and ShuffleRevTime split ShuffleTime into the forward
	// scatter and the reverse gather pass.
	ShuffleFwdTime, ShuffleRevTime time.Duration
	// History holds the recorded W_i arrays of the last episode when
	// Config.RecordHistory is set.
	History *walk.History
	// VPSteps[i] counts walker-steps sampled in partition i, for the
	// Figure 10b walker-step weighting.
	VPSteps []uint64
}

// PerStepNS returns the headline metric: average wall nanoseconds per
// walker-step.
func (r *Result) PerStepNS() float64 {
	if r.TotalSteps == 0 {
		return 0
	}
	return float64(r.Duration.Nanoseconds()) / float64(r.TotalSteps)
}

// Run advances totalWalkers walkers (0 means |V|) for the given number of
// steps (0 means the spec's default), splitting into episodes under the
// memory budget.
func (e *Engine) Run(totalWalkers uint64, steps int) (*Result, error) {
	if totalWalkers == 0 {
		totalWalkers = uint64(e.g.NumVertices())
	}
	if steps == 0 {
		steps = e.spec.Steps
	}
	if steps < 0 {
		return nil, fmt.Errorf("core: negative step count")
	}
	res := &Result{Steps: steps, VPSteps: make([]uint64, e.plan.NumVPs())}
	start := time.Now()
	remaining := totalWalkers
	for remaining > 0 {
		ep := e.EpisodeWalkers(remaining)
		if err := e.runEpisode(int(ep), steps, res); err != nil {
			return nil, err
		}
		remaining -= ep
		res.Episodes++
		res.Walkers += ep
	}
	res.TotalSteps = res.Walkers * uint64(steps)
	res.Duration = time.Since(start)
	res.ShuffleTime = res.ShuffleFwdTime + res.ShuffleRevTime
	res.OtherTime = res.Duration - res.SampleTime - res.ShuffleTime
	return res, nil
}

// runEpisode executes one memory-resident round of the pipeline:
//
//	W --forward shuffle--> SW --sample (in place)--> SW' --reverse--> W'
//
// appending each W_i to the history when recording. All per-episode state
// is allocated here, before the step loop: the loop itself allocates
// nothing and creates no goroutines (every stage runs on the engine's
// persistent pool).
func (e *Engine) runEpisode(walkers, steps int, res *Result) error {
	w := make([]graph.VID, walkers)
	sw := make([]graph.VID, walkers)
	wNext := make([]graph.VID, walkers)
	// One aux channel per carried predecessor: 1 for node2vec, k-1 for
	// order-k history transitions, 0 otherwise.
	channels := e.auxChannels()
	var auxW, auxSW, auxNext [][]graph.VID
	for c := 0; c < channels; c++ {
		auxW = append(auxW, make([]graph.VID, walkers))
		auxSW = append(auxSW, make([]graph.VID, walkers))
		auxNext = append(auxNext, make([]graph.VID, walkers))
	}

	initSrc := rng.NewXorShift1024Star(e.cfg.Seed ^ 0x9e3779b97f4a7c15)
	e.initWalkers(w, initSrc)
	for c := range auxW {
		// Predecessors start as the walker's own start vertex, which makes
		// the first higher-order step uniform over neighbours.
		copy(auxW[c], w)
	}

	if e.cfg.RecordHistory {
		res.History = walk.NewHistory(walkers)
		if err := res.History.Append(w); err != nil {
			return err
		}
	}

	shuffler, err := walk.NewShufflerPool(e.plan, walkers, e.pool)
	if err != nil {
		return err
	}

	// Per-worker RNG streams and scratch buffers, stable across the
	// episode.
	workers := e.pool.Workers()
	srcs := make([]*rng.XorShift1024Star, workers)
	scratches := make([]*order2Scratch, workers)
	for i := range srcs {
		srcs[i] = rng.NewXorShift1024Star(e.cfg.Seed + uint64(i)*0x9e3779b97f4a7c15 + 1)
		scratches[i] = &order2Scratch{}
	}

	for step := 0; step < steps; step++ {
		t0 := time.Now()
		if err := shuffler.ForwardMulti(w, sw, auxW, auxSW); err != nil {
			return err
		}
		t1 := time.Now()
		e.sampleAll(shuffler.VPStart(), sw, auxSW, srcs, scratches, res.VPSteps)
		t2 := time.Now()
		if err := shuffler.ReverseMulti(w, sw, wNext, auxSW, auxNext); err != nil {
			return err
		}
		t3 := time.Now()
		res.ShuffleFwdTime += t1.Sub(t0)
		res.SampleTime += t2.Sub(t1)
		res.ShuffleRevTime += t3.Sub(t2)

		if e.cfg.StepSink != nil {
			e.cfg.StepSink(step, w, wNext)
		}
		w, wNext = wNext, w
		auxW, auxNext = auxNext, auxW
		if e.cfg.RecordHistory {
			if err := res.History.Append(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// sampleTask is the sample stage's pool task: workers pull partitions
// from a shared counter; each partition's walker chunk is private to the
// worker that claims it, so the stage needs no locks (§4.3). The task
// struct lives in the Engine and is re-armed per step, keeping the step
// loop allocation-free.
type sampleTask struct {
	e         *Engine
	next      atomic.Int64
	vpStart   []uint64
	sw        []graph.VID
	auxSW     [][]graph.VID
	srcs      []*rng.XorShift1024Star
	scratches []*order2Scratch
	vpSteps   []uint64
}

// RunShard implements pool.Task for the sample stage.
func (t *sampleTask) RunShard(_, worker, _ int) {
	e := t.e
	numVPs := e.plan.NumVPs()
	src := t.srcs[worker]
	scr := t.scratches[worker]
	for {
		vp := int(t.next.Add(1))
		if vp >= numVPs {
			return
		}
		chunk := t.sw[t.vpStart[vp]:t.vpStart[vp+1]]
		aux := sliceAux(t.auxSW, t.vpStart[vp], t.vpStart[vp+1], &scr.auxView)
		e.sampleVPScratch(vp, chunk, aux, src, scr)
		atomic.AddUint64(&t.vpSteps[vp], uint64(len(chunk)))
	}
}

// sampleAll runs the sample stage on the persistent pool.
func (e *Engine) sampleAll(vpStart []uint64, sw []graph.VID, auxSW [][]graph.VID, srcs []*rng.XorShift1024Star, scratches []*order2Scratch, vpSteps []uint64) {
	t := &e.sample
	t.vpStart, t.sw, t.auxSW = vpStart, sw, auxSW
	t.srcs, t.scratches, t.vpSteps = srcs, scratches, vpSteps
	t.next.Store(-1)
	e.pool.Run(t, 0)
	t.vpStart, t.sw, t.auxSW = nil, nil, nil
	t.srcs, t.scratches, t.vpSteps = nil, nil, nil
}

// sliceAux views each aux channel's [lo, hi) range, reusing the worker's
// view buffer to avoid per-partition allocations.
func sliceAux(aux [][]graph.VID, lo, hi uint64, buf *[][]graph.VID) [][]graph.VID {
	if len(aux) == 0 {
		return nil
	}
	views := (*buf)[:0]
	for c := range aux {
		views = append(views, aux[c][lo:hi])
	}
	*buf = views
	return views
}
