package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"flashmob/internal/graph"
	"flashmob/internal/obs"
	"flashmob/internal/rng"
	"flashmob/internal/walk"
)

// Result reports a run's outcome and stage timing breakdown (the split the
// paper shows in Figure 9a).
type Result struct {
	// Walkers is the total number of walkers advanced.
	Walkers uint64
	// Steps is the walk length used.
	Steps int
	// TotalSteps is Walkers × Steps.
	TotalSteps uint64
	// Episodes is how many memory-budgeted rounds the run took.
	Episodes int
	// Duration is total wall time; SampleTime and ShuffleTime are the
	// stage splits, OtherTime the remainder (init, output).
	Duration, SampleTime, ShuffleTime, OtherTime time.Duration
	// ShuffleFwdTime and ShuffleRevTime split ShuffleTime into the forward
	// scatter and the reverse gather pass.
	ShuffleFwdTime, ShuffleRevTime time.Duration
	// History holds the recorded W_i arrays of the last episode when
	// Config.RecordHistory is set.
	History *walk.History
	// VPSteps[i] counts walker-steps sampled in partition i, for the
	// Figure 10b walker-step weighting.
	VPSteps []uint64
	// Report is the observability snapshot of the session that executed
	// the run (nil unless Config.Metrics): it describes this run alone —
	// or, on an explicitly held Session, everything that session ran so
	// far. The engine-lifetime aggregate across all closed sessions is
	// Engine.MetricsReport. See docs/OBSERVABILITY.md for the metric
	// reference.
	Report *obs.Report
}

// PerStepNS returns the headline metric: average wall nanoseconds per
// walker-step.
func (r *Result) PerStepNS() float64 {
	if r.TotalSteps == 0 {
		return 0
	}
	return float64(r.Duration.Nanoseconds()) / float64(r.TotalSteps)
}

// Run advances totalWalkers walkers (0 means |V|) for the given number of
// steps (0 means the spec's default), splitting into episodes under the
// memory budget. Safe for concurrent callers: each call runs on its own
// session off the engine's session pool, and concurrent runs with the
// same parameters produce bitwise-identical trajectories to serial ones.
func (e *Engine) Run(totalWalkers uint64, steps int) (*Result, error) {
	s, err := e.NewSession(context.Background())
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Run(totalWalkers, steps)
}

// Run advances totalWalkers walkers (0 means |V|) for the given number of
// steps (0 means the spec's default), splitting into episodes under the
// memory budget. One Run at a time per session; the session's context
// cancels between pipeline steps, returning the context's error.
func (s *Session) Run(totalWalkers uint64, steps int) (*Result, error) {
	return s.RunSeeded(s.e.cfg.Seed, totalWalkers, steps)
}

// RunSeeded is Run with a per-run seed overriding Config.Seed: walker
// placement and every sample draw derive from the given seed instead of
// the engine's. On a freshly acquired session, trajectories are a pure
// function of (engine build, seed, totalWalkers, steps) — the hook the
// serving layer uses to give independently seeded requests reproducible
// walks on one shared engine. Runs after the first on the same session
// see the PS buffers the earlier runs left behind; acquire a new session
// when reproducibility matters.
func (s *Session) RunSeeded(seed uint64, totalWalkers uint64, steps int) (*Result, error) {
	if s.closed {
		return nil, ErrClosed
	}
	e := s.e
	if s.ov != nil {
		if err := checkOverlaySpec(&e.spec); err != nil {
			return nil, err
		}
	}
	s.runSeed = seed
	if totalWalkers == 0 {
		totalWalkers = uint64(e.g.NumVertices())
	}
	if steps == 0 {
		steps = e.spec.Steps
	}
	if steps < 0 {
		return nil, fmt.Errorf("core: negative step count")
	}
	res := &Result{Steps: steps, VPSteps: make([]uint64, e.plan.NumVPs())}
	start := time.Now()
	remaining := totalWalkers
	for remaining > 0 {
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
		ep := e.EpisodeWalkers(remaining)
		if err := s.runEpisode(res.Episodes, int(ep), steps, res); err != nil {
			return nil, err
		}
		remaining -= ep
		res.Episodes++
		res.Walkers += ep
	}
	res.TotalSteps = res.Walkers * uint64(steps)
	res.Duration = time.Since(start)
	res.ShuffleTime = res.ShuffleFwdTime + res.ShuffleRevTime
	res.OtherTime = res.Duration - res.SampleTime - res.ShuffleTime
	if m := s.m; m != nil {
		m.runs.Inc()
		m.walkers.Add(res.Walkers)
		res.Report = m.reg.Snapshot()
	}
	return res, nil
}

// runEpisode executes one memory-resident round of the pipeline:
//
//	W --forward shuffle--> SW --sample (in place)--> SW' --reverse--> W'
//
// appending each W_i to the history when recording. All per-episode state
// is allocated here, before the step loop: the loop itself allocates
// nothing and creates no goroutines (every stage runs on the engine's
// persistent pool, multiplexed across sessions).
func (s *Session) runEpisode(episode, walkers, steps int, res *Result) error {
	e := s.e
	w := make([]graph.VID, walkers)
	sw := make([]graph.VID, walkers)
	wNext := make([]graph.VID, walkers)
	// One aux channel per carried predecessor: 1 for node2vec, k-1 for
	// order-k history transitions, 0 otherwise.
	channels := e.auxChannels()
	var auxW, auxSW, auxNext [][]graph.VID
	for c := 0; c < channels; c++ {
		auxW = append(auxW, make([]graph.VID, walkers))
		auxSW = append(auxSW, make([]graph.VID, walkers))
		auxNext = append(auxNext, make([]graph.VID, walkers))
	}

	// Mix the episode index into the init seed so episodes decorrelate
	// (identical per-episode seeds would replay the same start placement
	// and walk randomness every round).
	initSrc := rng.NewXorShift1024Star(rng.Mix64(s.runSeed^0x9e3779b97f4a7c15) + uint64(episode))
	e.initWalkers(w, initSrc)
	for c := range auxW {
		// Predecessors start as the walker's own start vertex, which makes
		// the first higher-order step uniform over neighbours.
		copy(auxW[c], w)
	}

	if e.cfg.RecordHistory {
		res.History = walk.NewHistory(walkers)
		if err := res.History.Append(w); err != nil {
			return err
		}
	}

	shuffler, err := walk.NewShufflerPool(e.plan, walkers, e.pool)
	if err != nil {
		return err
	}
	if s.m != nil {
		s.m.episodes.Inc()
		shuffler.SetPprofLabels(true)
		shuffler.SetPoolMetrics(s.m.pool)
	}

	for step := 0; step < steps; step++ {
		if err := s.ctx.Err(); err != nil {
			return err
		}
		t0 := time.Now()
		if err := shuffler.ForwardMulti(w, sw, auxW, auxSW); err != nil {
			return err
		}
		t1 := time.Now()
		s.sampleAll(episode, step, shuffler.VPStart(), sw, auxSW, res.VPSteps)
		t2 := time.Now()
		if err := shuffler.ReverseMulti(w, sw, wNext, auxSW, auxNext); err != nil {
			return err
		}
		t3 := time.Now()
		res.ShuffleFwdTime += t1.Sub(t0)
		res.SampleTime += t2.Sub(t1)
		res.ShuffleRevTime += t3.Sub(t2)
		if m := s.m; m != nil {
			m.steps.Inc()
			m.shuffleFwdStepNS.Observe(uint64(t1.Sub(t0)))
			m.sampleStepNS.Observe(uint64(t2.Sub(t1)))
			m.shuffleRevStepNS.Observe(uint64(t3.Sub(t2)))
		}

		if e.cfg.StepSink != nil {
			e.cfg.StepSink(step, w, wNext)
		}
		w, wNext = wNext, w
		auxW, auxNext = auxNext, auxW
		if e.cfg.RecordHistory {
			if err := res.History.Append(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// sampleItem is one unit of sample-stage work: a partition's whole walker
// chunk or, for oversized direct-sampling chunks, one sub-shard of it.
// Each item carries its own RNG seed, derived from (engine seed, episode,
// step, partition, sub-shard) — never from the claiming worker or the
// session — so walker trajectories are a pure function of the engine
// seed, independent of worker count, of the order workers claim items,
// and of whether other sessions run concurrently.
type sampleItem struct {
	vp     int32
	lo, hi uint64
	seed   uint64
	// cx is the sampling context the item executes under: the session's
	// primary context for solo runs, the owning cohort's for mixed runs —
	// which is how one sample stage interleaves work items of different
	// walk specs.
	cx *cohortCtx
}

// SubShardSize is the walker-count granularity for splitting oversized
// direct-sampling chunks: chunks of at least twice this size are cut into
// SubShardSize pieces (the ragged tail absorbed into the last piece) so
// one giant DS tail partition cannot serialize the stage behind a single
// worker. A var so tests can shrink it to force sub-sharding on small
// inputs. Exported because the out-of-core engine (internal/ooc) must cut
// its chunks on exactly these boundaries to stay bitwise-identical to the
// in-memory engine.
var SubShardSize = uint64(1) << 16

// sampleSeed derives one work item's RNG seed. Chained Mix64 rounds
// avalanche every coordinate, so distinct (episode, step, partition,
// sub-shard) tuples get independent streams. The (seed, episode, step)
// coordinates are constant across one step's whole item list, so the
// item-building loops fold them once with SampleSeedPrefix and finish
// each item with SampleSeedAt — bit-identical to the full chain.
func sampleSeed(seed uint64, episode, step, vp, sub int) uint64 {
	return SampleSeedAt(SampleSeedPrefix(seed, episode, step), vp, sub)
}

// SampleSeedPrefix folds sampleSeed's per-step coordinates. Exported,
// together with SampleSeedAt and SubShardSize, as the engine's work-item
// seed schedule: the out-of-core engine reuses it verbatim so its
// trajectories are bitwise-identical to this engine's on the same plan.
func SampleSeedPrefix(seed uint64, episode, step int) uint64 {
	h := rng.Mix64(seed ^ 0x5b8315f3a2ca3357)
	h = rng.Mix64(h + uint64(episode))
	return rng.Mix64(h + uint64(step))
}

// SampleSeedAt finishes sampleSeed's chain for one (partition,
// sub-shard) item.
func SampleSeedAt(prefix uint64, vp, sub int) uint64 {
	return rng.Mix64(rng.Mix64(prefix+uint64(vp)) + uint64(sub))
}

// sampleTask is the sample stage's pool task: workers pull work items
// from a shared counter; each item's walker range is private to the
// worker that claims it, so the stage needs no locks (§4.3). The task
// struct (and its item list) lives in the Session and is re-armed per
// step, keeping the step loop allocation-free once warm.
type sampleTask struct {
	s       *Session
	m       *engineMetrics // nil unless Config.Metrics; set per acquisition
	next    atomic.Int64
	items   []sampleItem
	sw      []graph.VID
	auxSW   [][]graph.VID
	vpSteps []uint64
	// prefixes[k] is active cohort k's folded per-step seed prefix
	// (mixed runs; see SampleSeedPrefix).
	prefixes []uint64
}

// itemClaim is how many work items one shared-counter claim covers:
// sparse runs (serving waves) produce a few walkers per item, so
// claiming singly would spend a noticeable share of the stage on the
// atomic. Claim order never affects results — every item carries its
// own seed and writes a disjoint walker range.
const itemClaim = 4

// RunShard implements pool.Task for the sample stage.
func (t *sampleTask) RunShard(_, worker, _ int) {
	s := t.s
	scr := s.scratches[worker]
	for {
		end := int(t.next.Add(itemClaim)) + 1
		if end-itemClaim >= len(t.items) {
			return
		}
		for idx := end - itemClaim; idx < end && idx < len(t.items); idx++ {
			it := t.items[idx]
			scr.src.Reseed(it.seed)
			chunk := t.sw[it.lo:it.hi]
			aux := sliceAux(t.auxSW, it.lo, it.hi, &scr.auxView)
			if m := t.m; m != nil {
				// Per-item attribution: label the worker with the partition it
				// is sampling and charge the item's wall time and walker count
				// to that partition, its kernel kind, and its cohort's walk
				// shape. All per-item, never per-walker — items are
				// chunk-sized, so the overhead stays in the noise (measured in
				// EXPERIMENTS.md).
				pprof.SetGoroutineLabels(m.vpCtx[it.vp])
				t0 := time.Now()
				it.cx.sampleVPScratch(int(it.vp), chunk, aux, scr.src, scr)
				m.vpSampleNS.Add(int(it.vp), uint64(time.Since(t0)))
				m.vpWalkerSteps.Add(int(it.vp), uint64(len(chunk)))
				m.kernelSteps.Add(int(it.cx.kern[it.vp].kind), uint64(len(chunk)))
				m.cohortSteps.Add(it.cx.class, uint64(len(chunk)))
			} else {
				it.cx.sampleVPScratch(int(it.vp), chunk, aux, scr.src, scr)
			}
			atomic.AddUint64(&t.vpSteps[it.vp], uint64(len(chunk)))
		}
	}
}

// sampleAll runs the sample stage of a solo run: one cohort — the
// session's primary context — occupying the whole walker array.
func (s *Session) sampleAll(episode, step int, vpStart []uint64, sw []graph.VID, auxSW [][]graph.VID, vpSteps []uint64) {
	s.sampleCohort(SampleSeedPrefix(s.runSeed, episode, step), &s.cx, vpStart, sw, auxSW, vpSteps)
}

// sampleCohort runs the sample stage for one cohort occupying the whole
// walker array: build the work item list — splitting oversized DS chunks
// into sub-shards — then let pool workers claim items off the shared
// counter. The caller picks the sampling context and the folded per-step
// seed prefix, which is what makes the stage reusable beyond solo runs:
// the sharded topology's per-step driver (Stepper) samples each cohort's
// local walkers under the cohort's own context and seed schedule, and
// because sub-shard boundaries are cut from the chunk-local offsets, a
// shard's (partition, sub) items — and therefore its seeds — match the
// single-engine run's exactly.
func (s *Session) sampleCohort(prefix uint64, cx *cohortCtx, vpStart []uint64, sw []graph.VID, auxSW [][]graph.VID, vpSteps []uint64) {
	e := s.e
	t := &s.sample
	items := t.items[:0]
	subShards := 0
	// Only stateless first-order chunks can split: PS partitions share
	// mutable buffer state across the whole chunk, and higher-order paths
	// batch over the full chunk.
	shardable := cx.spec.Order == 1 && cx.spec.History == nil
	for vp := 0; vp < e.plan.NumVPs(); vp++ {
		lo, hi := vpStart[vp], vpStart[vp+1]
		if lo == hi {
			continue
		}
		if !shardable || hi-lo < 2*SubShardSize || cx.kern[vp].st != nil {
			items = append(items, sampleItem{vp: int32(vp), lo: lo, hi: hi,
				seed: SampleSeedAt(prefix, vp, 0), cx: cx})
			continue
		}
		a := lo
		for sub := 0; a < hi; sub++ {
			b := a + SubShardSize
			if b >= hi || hi-b < SubShardSize {
				b = hi // absorb the ragged tail into the last piece
			}
			items = append(items, sampleItem{vp: int32(vp), lo: a, hi: b,
				seed: SampleSeedAt(prefix, vp, sub), cx: cx})
			a = b
			subShards++
		}
	}
	t.items = items
	t.sw, t.auxSW = sw, auxSW
	t.vpSteps = vpSteps
	t.next.Store(-1)
	if m := s.m; m != nil {
		m.sampleItems.Observe(uint64(len(items)))
		m.sampleSubShards.Add(uint64(subShards))
		e.pool.Submit(t, 0, m.sampleCtx, m.pool)
	} else {
		e.pool.Submit(t, 0, nil, nil)
	}
	t.sw, t.auxSW = nil, nil
	t.vpSteps = nil
}

// sliceAux views each aux channel's [lo, hi) range, reusing the worker's
// view buffer to avoid per-partition allocations.
func sliceAux(aux [][]graph.VID, lo, hi uint64, buf *[][]graph.VID) [][]graph.VID {
	if len(aux) == 0 {
		return nil
	}
	views := (*buf)[:0]
	for c := range aux {
		views = append(views, aux[c][lo:hi])
	}
	*buf = views
	return views
}
