package core

import (
	"time"

	"flashmob/internal/algo"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/mem"
	"flashmob/internal/part"
	"flashmob/internal/profile"
	"flashmob/internal/rng"
	"flashmob/internal/walk"
)

// ProfilerConfig drives the paper's offline profiling (§4.4): measuring
// per-walker-step sample cost over a grid of VP shapes on the actual host,
// producing a profile.Table the MCKP planner can consume in place of the
// analytical model. The measurement is machine-dependent but
// graph-independent, so a table is reusable across graphs.
type ProfilerConfig struct {
	// Degrees to measure (default 16, 64, 256, 1024 — the Figure 6 axis).
	Degrees []uint32
	// Densities to measure (default 1 and 0.25 — the Figure 6 panels).
	Densities []float64
	// WorkingSets are the target working-set sizes in bytes (default:
	// 75% of L1, L2, L3, then 8×L3 for DRAM, following Figure 6's
	// categories).
	WorkingSets []uint64
	// MinSteps is the minimum walker-steps timed per point (default
	// 200k).
	MinSteps uint64
	// MaxEdges caps the synthetic partition's edge count (default 2^27 ≈
	// 134M, about 1GB of working data per point). Grid points whose
	// working-set target cannot be reached within the cap while staying
	// in the same cache-fit class are skipped — on small-memory machines
	// the high-degree DRAM cells of Figure 6 become unmeasurable, as
	// they genuinely need the paper's 296GB platform.
	MaxEdges uint64
	// Seed drives the synthetic VPs.
	Seed uint64
	// MachineLabel annotates the output table.
	MachineLabel string
}

func (c ProfilerConfig) withDefaults(geom mem.Geometry) ProfilerConfig {
	if len(c.Degrees) == 0 {
		c.Degrees = []uint32{16, 64, 256, 1024}
	}
	if len(c.Densities) == 0 {
		c.Densities = []float64{1, 0.25}
	}
	if len(c.WorkingSets) == 0 {
		c.WorkingSets = []uint64{
			geom.L1.SizeBytes * 3 / 4,
			geom.L2.SizeBytes * 3 / 4,
			geom.L3.SizeBytes * 3 / 4,
			geom.L3.SizeBytes * 8,
		}
	}
	if c.MinSteps == 0 {
		c.MinSteps = 200_000
	}
	if c.MaxEdges == 0 {
		c.MaxEdges = 1 << 27
	}
	return c
}

// MeasureProfile runs the micro-benchmarks and assembles a measured cost
// table. Each grid point times the real sample stage (the same code the
// engine runs) on a synthetic uniform-degree partition sized so the
// policy's working set hits the target size.
func MeasureProfile(cfg ProfilerConfig, geom mem.Geometry) (*profile.Table, error) {
	cfg = cfg.withDefaults(geom)
	tab := &profile.Table{MachineLabel: cfg.MachineLabel}
	for _, ws := range cfg.WorkingSets {
		for _, d := range cfg.Degrees {
			for _, rho := range cfg.Densities {
				for _, pol := range []profile.Policy{profile.PS, profile.DS} {
					pt, err := measurePoint(geom, pol, ws, d, rho, cfg.MinSteps, cfg.MaxEdges, cfg.Seed)
					if err != nil {
						return nil, err
					}
					if pt != nil {
						tab.Add(*pt)
					}
				}
			}
		}
	}
	sh, err := measureShuffle(cfg.Seed, cfg.MinSteps)
	if err != nil {
		return nil, err
	}
	tab.ShuffleNS = sh
	return tab, nil
}

// vpVerticesFor inverts profile.WorkingSetBytes for a uniform degree:
// the vertex count whose working set under pol is ≈ target bytes.
func vpVerticesFor(pol profile.Policy, target uint64, d uint32) uint64 {
	switch pol {
	case profile.DS:
		// n*(4d+8) = target
		return target / uint64(4*d+8)
	case profile.PS:
		// 4d + n*(16+64) = target
		adj := uint64(4 * d)
		if target <= adj {
			return 0
		}
		return (target - adj) / 80
	}
	return 0
}

// profileVertices applies the construction-cost caps to vpVerticesFor: at
// most maxEdges synthetic edges and at most 2^22 vertices.
func profileVertices(pol profile.Policy, target uint64, d uint32, maxEdges uint64) uint64 {
	n := vpVerticesFor(pol, target, d)
	if cap := maxEdges / uint64(d); n > cap {
		n = cap
	}
	if n > 1<<22 {
		n = 1 << 22
	}
	return n
}

// measurePoint times one (policy, working set, degree, density) grid cell.
// Returns nil (skip) for degenerate shapes and for cells whose memory cost
// exceeds MaxEdges without staying in the target cache-fit class.
func measurePoint(geom mem.Geometry, pol profile.Policy, ws uint64, d uint32, rho float64, minSteps, maxEdges, seed uint64) (*profile.Point, error) {
	n := profileVertices(pol, ws, d, maxEdges)
	if n < 4 {
		return nil, nil
	}
	// The capped shape must still land in the same cache level as the
	// requested target, or the measurement would be mislabeled.
	actualWS := profile.WorkingSetBytes(pol, profile.VPShape{Vertices: n, AvgDegree: float64(d)}, geom.LineBytes)
	if profile.LevelFor(geom, actualWS) != profile.LevelFor(geom, ws) {
		return nil, nil
	}
	g, err := gen.UniformDegree(uint32(n), d, seed)
	if err != nil {
		return nil, err
	}
	// Single-VP plan with the requested policy.
	plan := &part.Plan{
		V:            uint32(n),
		GroupSizeLog: ceilLog2u(uint64(n)),
		Groups: []part.GroupPlan{{
			Start: 0, End: uint32(n),
			VPSizeLog: ceilLog2u(uint64(n)),
			Policies:  []profile.Policy{pol},
		}},
	}
	if err := part.Finalize(plan); err != nil {
		return nil, err
	}
	e, err := New(g, algo.DeepWalk(), Config{Workers: 1, Seed: seed, Plan: plan})
	if err != nil {
		return nil, err
	}
	defer e.Close()
	sess, err := e.NewSession(nil)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	walkers := int(rho * float64(n) * float64(d))
	if walkers < 1 {
		walkers = 1
	}
	if walkers > 1<<22 {
		walkers = 1 << 22
	}
	// The walkers "residing on the VP": random vertices of the partition,
	// refreshed between timing rounds as the shuffle would.
	src := rng.NewXorShift1024Star(seed + 1)
	chunk := make([]graph.VID, walkers)
	resetChunk := func() {
		for i := range chunk {
			chunk[i] = graph.VID(rng.Uint32n(src, uint32(n)))
		}
	}
	resetChunk()
	// Warm-up round.
	sess.sampleVP(0, chunk, nil, src)
	var steps uint64
	var elapsed time.Duration
	for steps < minSteps {
		resetChunk()
		t0 := time.Now()
		sess.sampleVP(0, chunk, nil, src)
		elapsed += time.Since(t0)
		steps += uint64(walkers)
	}
	return &profile.Point{
		Policy:    pol,
		Vertices:  uint64(n),
		AvgDegree: float64(d),
		Density:   rho,
		StepNS:    float64(elapsed.Nanoseconds()) / float64(steps),
	}, nil
}

// measureShuffle times one shuffle level (forward + reverse) per
// walker-step on a 2048-bin uniform plan. The shuffler runs in its
// production configuration — write-combining staging on — so the MCKP
// cost model prices the shuffle the engine actually executes.
func measureShuffle(seed, minSteps uint64) (float64, error) {
	const n = 1 << 20
	g, err := gen.UniformDegree(n, 2, seed)
	if err != nil {
		return 0, err
	}
	plan, err := part.PlanUniform(g, part.Config{MaxBins: 2048}, profile.DS)
	if err != nil {
		return 0, err
	}
	walkers := 1 << 20
	sh, err := walk.NewShuffler(plan, walkers, 1)
	if err != nil {
		return 0, err
	}
	src := rng.NewXorShift1024Star(seed + 2)
	w := make([]graph.VID, walkers)
	sw := make([]graph.VID, walkers)
	next := make([]graph.VID, walkers)
	for i := range w {
		w[i] = graph.VID(rng.Uint32n(src, n))
	}
	var steps uint64
	var elapsed time.Duration
	for steps < minSteps {
		t0 := time.Now()
		if err := sh.Forward(w, sw, nil, nil); err != nil {
			return 0, err
		}
		if err := sh.Reverse(w, sw, next, nil, nil); err != nil {
			return 0, err
		}
		elapsed += time.Since(t0)
		steps += uint64(walkers)
		w, next = next, w
	}
	return float64(elapsed.Nanoseconds()) / float64(steps), nil
}

// ceilLog2u returns ⌈log2(x)⌉ for x ≥ 1.
func ceilLog2u(x uint64) uint {
	var l uint
	for (uint64(1) << l) < x {
		l++
	}
	return l
}
