package core

import (
	"slices"

	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

// Specialized per-partition sample kernels (§4.2).
//
// The scalar path in sample.go decides PS-vs-DS-vs-weighted per walker
// (sampleFirst re-tests c.ps[vpIdx], e.regularDeg[vpIdx], and c.weighted
// on every step) and draws every random number through the rng.Source
// interface — a dynamic dispatch per Uint64(). Both costs are pure
// overhead: the policy decision is invariant across a partition's whole
// chunk, and the generator's concrete type is known at the call site.
// The kernels here resolve the policy once at engine build time and take
// the concrete *rng.XorShift1024Star so the xorshift1024* state update
// inlines into the sampling loop, leaving a few cache-resident loads
// plus the draw per walker-step — the per-step cost the paper's §5.2
// breakdown claims.
//
// Every kernel preserves the scalar path's per-walker draw order exactly;
// sample_equiv_test.go locks both paths bitwise against a frozen copy of
// the pre-kernel scalar code.

// kernelKind identifies one partition's specialized sample kernel.
type kernelKind uint8

const (
	// kernEmpty marks an all-degree-0 partition: walkers stay in place
	// and draw nothing.
	kernEmpty kernelKind = iota
	// kernPS consumes per-vertex pre-sampled buffers, refilling inline:
	// one Offsets load pair yields base offset and degree, random reads
	// stay confined to one adjacency list, and the refill keeps its
	// sequential write stream.
	kernPS
	// kernPSWeighted is kernPS with alias-table refills.
	kernPSWeighted
	// kernDSRegular direct-samples a uniform-degree partition by pure
	// arithmetic indexing into its contiguous edge block: no Offsets
	// loads, no degree test, one bounded draw per walker.
	kernDSRegular
	// kernDSCSR is the mixed-degree direct-sampling fallback: one Offsets
	// load pair, one bounded draw.
	kernDSCSR
	// kernDSWeighted direct-samples through per-vertex alias tables.
	kernDSWeighted
)

// vpKernel carries one partition's kernel selection plus the loads the
// scalar path re-derived per walker: the PS state, the partition's base
// edge offset, and its uniform degree (DS-regular only).
type vpKernel struct {
	kind  kernelKind
	st    *psState
	start graph.VID
	base  uint64
	deg   uint32
}

// kernelTable resolves every partition's sample kernel from the plan, the
// PS policy, and the degree shape, into dst (allocated when nil or too
// short). weighted selects the alias-table kernels — a parameter rather
// than e.weighted because cohorts of a mixed run may walk unweighted
// specs on a weighted build. The st pointers stay nil: callers bind a
// psState set (Session.rebind, cohortState.bind).
func (e *Engine) kernelTable(weighted bool, dst []vpKernel) []vpKernel {
	if cap(dst) < e.plan.NumVPs() {
		dst = make([]vpKernel, e.plan.NumVPs())
	}
	dst = dst[:e.plan.NumVPs()]
	for i, vp := range e.plan.VPs {
		k := vpKernel{start: vp.Start, base: e.g.Offsets[vp.Start]}
		switch {
		case e.regularDeg[i] == 0:
			k.kind = kernEmpty
		case e.psVP[i]:
			if weighted {
				k.kind = kernPSWeighted
			} else {
				k.kind = kernPS
			}
		case weighted:
			k.kind = kernDSWeighted
		case e.regularDeg[i] > 0:
			k.kind = kernDSRegular
			k.deg = uint32(e.regularDeg[i])
		default:
			k.kind = kernDSCSR
		}
		dst[i] = k
	}
	return dst
}

// buildKernels resolves the engine-spec kernel template — plus the
// unweighted-spec variant on weighted builds, so cohort binds are a copy
// rather than a per-partition re-resolution. Called once by New; tests
// rebuild after mutating regularDeg to force the fallback kernels.
func (e *Engine) buildKernels() {
	e.kern = e.kernelTable(e.weighted != nil, e.kern)
	if e.weighted != nil {
		e.kernUW = e.kernelTable(false, e.kernUW)
	}
}

// runChunkKernel advances a first-order chunk through the partition's
// kernel. Draw-for-draw identical to the scalar sampleFirst loop.
func (c *cohortCtx) runChunkKernel(vpIdx int, chunk []graph.VID, src *rng.XorShift1024Star) {
	e := c.e
	// Delta-overlay sessions: partitions holding delta edges (one mask
	// test on overlay sessions, one nil check on plain ones) sample over
	// base ∪ delta through the overlay path instead of their kernel.
	if ov := c.ov; ov != nil && ov.touched(vpIdx) {
		c.sampleChunkOverlay(ov.ext[vpIdx], chunk, src)
		return
	}
	switch k := &c.kern[vpIdx]; k.kind {
	case kernEmpty:
	case kernPS:
		c.kernChunkPS(k.st, chunk, src)
	case kernPSWeighted:
		c.kernChunkPSWeighted(k.st, chunk, src)
	case kernDSRegular:
		kernChunkRegular(e.g.Targets, k, chunk, src)
	case kernDSCSR:
		kernChunkCSR(e.g.Offsets, e.g.Targets, chunk, src)
	case kernDSWeighted:
		c.kernChunkWeighted(chunk, src)
	}
}

// kernChunkPS is the PS kernel: refill is fused with consumption, so a
// drained buffer is repopulated and read in the same pass over the chunk.
func (c *cohortCtx) kernChunkPS(st *psState, chunk []graph.VID, src *rng.XorShift1024Star) {
	offs, targets := c.e.g.Offsets, c.e.g.Targets
	base, start := st.base, st.start
	buf, remaining := st.buf, st.remaining
	for j, v := range chunk {
		off := offs[v]
		d := uint32(offs[v+1] - off)
		if d == 0 {
			continue // dead end: walker stays, no draw
		}
		bo := off - base
		rem := remaining[v-start]
		if rem == 0 {
			adj := targets[off : off+uint64(d)]
			fill := buf[bo : bo+uint64(d)]
			for i := range fill {
				fill[i] = adj[src.Uint32n(d)]
			}
			rem = d
		}
		chunk[j] = buf[bo+uint64(d-rem)]
		remaining[v-start] = rem - 1
	}
}

// kernChunkPSWeighted is kernChunkPS with alias-table refills.
func (c *cohortCtx) kernChunkPSWeighted(st *psState, chunk []graph.VID, src *rng.XorShift1024Star) {
	offs := c.e.g.Offsets
	ws := c.weighted
	base, start := st.base, st.start
	buf, remaining := st.buf, st.remaining
	for j, v := range chunk {
		off := offs[v]
		d := uint32(offs[v+1] - off)
		if d == 0 {
			continue
		}
		bo := off - base
		rem := remaining[v-start]
		if rem == 0 {
			fill := buf[bo : bo+uint64(d)]
			for i := range fill {
				fill[i] = ws.NextFrom(v, src)
			}
			rem = d
		}
		chunk[j] = buf[bo+uint64(d-rem)]
		remaining[v-start] = rem - 1
	}
}

// kernChunkRegular is the DS kernel for uniform-degree partitions: the
// walker's edge block is located arithmetically (§4.2's compact storage),
// so the loop body is one bounded draw and one Targets load.
func kernChunkRegular(targets []graph.VID, k *vpKernel, chunk []graph.VID, src *rng.XorShift1024Star) {
	d := k.deg
	base, start := k.base, uint64(k.start)
	for j, v := range chunk {
		chunk[j] = targets[base+(uint64(v)-start)*uint64(d)+uint64(src.Uint32n(d))]
	}
}

// kernChunkCSR is the mixed-degree DS fallback.
func kernChunkCSR(offs []uint64, targets []graph.VID, chunk []graph.VID, src *rng.XorShift1024Star) {
	for j, v := range chunk {
		off := offs[v]
		d := uint32(offs[v+1] - off)
		if d == 0 {
			continue
		}
		chunk[j] = targets[off+uint64(src.Uint32n(d))]
	}
}

// kernChunkWeighted is the weighted DS kernel: one alias draw per walker.
func (c *cohortCtx) kernChunkWeighted(chunk []graph.VID, src *rng.XorShift1024Star) {
	offs := c.e.g.Offsets
	ws := c.weighted
	for j, v := range chunk {
		if offs[v+1] == offs[v] {
			continue
		}
		chunk[j] = ws.NextFrom(v, src)
	}
}

// nextPSFrom is nextPS with the state loads hoisted and a concrete
// generator: the candidate draw of the second-order kernels on PS
// partitions. Degree must be nonzero. (Second-order walks are never
// weighted — Spec.Validate rejects the combination — so refills are
// always uniform here.)
func (c *cohortCtx) nextPSFrom(st *psState, v graph.VID, src *rng.XorShift1024Star) graph.VID {
	offs := c.e.g.Offsets
	off := offs[v]
	d := uint32(offs[v+1] - off)
	bo := off - st.base
	rem := st.remaining[v-st.start]
	if rem == 0 {
		adj := c.e.g.Targets[off : off+uint64(d)]
		fill := st.buf[bo : bo+uint64(d)]
		for i := range fill {
			fill[i] = adj[src.Uint32n(d)]
		}
		rem = d
	}
	st.remaining[v-st.start] = rem - 1
	return st.buf[bo+uint64(d-rem)]
}

// drawCand draws one first-order candidate for second-order rejection
// sampling through the partition's kernel. Callers filter degree < 2.
func (c *cohortCtx) drawCand(k *vpKernel, v graph.VID, src *rng.XorShift1024Star) graph.VID {
	switch k.kind {
	case kernPS, kernPSWeighted:
		return c.nextPSFrom(k.st, v, src)
	case kernDSRegular:
		d := k.deg
		return c.e.g.Targets[k.base+(uint64(v)-uint64(k.start))*uint64(d)+uint64(src.Uint32n(d))]
	default: // kernDSCSR; weighted second-order is rejected at build
		off := c.e.g.Offsets[v]
		d := uint32(c.e.g.Offsets[v+1] - off)
		return c.e.g.Targets[off+uint64(src.Uint32n(d))]
	}
}

// kernSecondWalk advances a short second-order segment walker by walker —
// the below-batchThreshold path — with the kernel and rejection bound
// hoisted out of the loop.
func (c *cohortCtx) kernSecondWalk(vpIdx int, seg, prev []graph.VID, src *rng.XorShift1024Star) {
	e := c.e
	k := &c.kern[vpIdx]
	maxW := c.maxWeight()
	offs, targets := e.g.Offsets, e.g.Targets
	for j := range seg {
		v := seg[j]
		d := uint32(offs[v+1] - offs[v])
		var next graph.VID
		switch {
		case d == 0:
			next = v // dead end: stay, predecessor becomes self
		case d == 1:
			// Only continuation: take it unconditionally (rejection could
			// spin forever on custom weight 0).
			next = targets[offs[v]]
		default:
			p := prev[j]
			for {
				x := c.drawCand(k, v, src)
				w := c.secondOrderWeight(p, v, x)
				if w >= maxW || src.Float64()*maxW < w {
					next = x
					break
				}
			}
		}
		prev[j] = v
		seg[j] = next
	}
}

// kernSecondBatched is the kernel form of sampleVPSecondBatched: identical
// batching, sorting, and acceptance structure, with candidate generation
// specialized per partition kind in fillCandidates.
func (c *cohortCtx) kernSecondBatched(vpIdx int, chunk, aux []graph.VID, src *rng.XorShift1024Star, scr *sampleScratch) {
	e := c.e
	k := &c.kern[vpIdx]
	maxW := c.maxWeight()
	n := len(chunk)
	if cap(scr.cand) < n {
		scr.cand = make([]graph.VID, n)
		scr.pending = make([]uint64, 0, n)
	}
	cand := scr.cand[:n]
	pending := scr.pending[:0]
	offs, targets := e.g.Offsets, e.g.Targets
	for i := range chunk {
		v := chunk[i]
		switch uint32(offs[v+1] - offs[v]) {
		case 0:
			aux[i] = v // dead end: stay, predecessor becomes self
			continue
		case 1:
			// Only continuation: take it unconditionally.
			aux[i] = v
			chunk[i] = targets[offs[v]]
			continue
		}
		pending = append(pending, uint64(aux[i])<<32|uint64(uint32(i)))
	}
	// Group connectivity checks by predecessor (see the scalar path's
	// rationale); rejected keys keep their sorted order across rounds.
	slices.Sort(pending)
	for len(pending) > 0 {
		c.fillCandidates(k, chunk, cand, pending, src)
		next := pending[:0]
		for _, key := range pending {
			i := uint32(key)
			prev, x := graph.VID(key>>32), cand[i]
			w := c.secondOrderWeight(prev, chunk[i], x)
			if w >= maxW || src.Float64()*maxW < w {
				aux[i] = chunk[i]
				chunk[i] = x
			} else {
				next = append(next, key)
			}
		}
		pending = next
	}
	scr.pending = pending[:0]
}

// fillCandidates generates one candidate per pending walker with the
// partition's kernel selection hoisted out of the round loop entirely —
// each case is a tight homogeneous pass.
func (c *cohortCtx) fillCandidates(k *vpKernel, chunk, cand []graph.VID, pending []uint64, src *rng.XorShift1024Star) {
	switch k.kind {
	case kernPS, kernPSWeighted:
		st := k.st
		for _, key := range pending {
			i := uint32(key)
			cand[i] = c.nextPSFrom(st, chunk[i], src)
		}
	case kernDSRegular:
		d := k.deg
		base, start := k.base, uint64(k.start)
		targets := c.e.g.Targets
		for _, key := range pending {
			i := uint32(key)
			cand[i] = targets[base+(uint64(chunk[i])-start)*uint64(d)+uint64(src.Uint32n(d))]
		}
	default:
		offs, targets := c.e.g.Offsets, c.e.g.Targets
		for _, key := range pending {
			i := uint32(key)
			v := chunk[i]
			off := offs[v]
			cand[i] = targets[off+uint64(src.Uint32n(uint32(offs[v+1]-off)))]
		}
	}
}
