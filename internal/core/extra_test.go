package core

import (
	"math"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/part"
	"flashmob/internal/profile"
)

// planWithExtraShuffle hand-builds a plan whose first group uses the
// internal second shuffle level, exercising the multi-level path inside
// the full engine.
func planWithExtraShuffle(t *testing.T, g *graph.CSR) *part.Plan {
	t.Helper()
	n := g.NumVertices()
	groupLog := part.GroupSizeLogFor(n, 8)
	groupSize := uint32(1) << groupLog
	plan := &part.Plan{V: n, GroupSizeLog: groupLog}
	gi := 0
	for start := uint32(0); start < n; start += groupSize {
		end := start + groupSize
		if end > n {
			end = n
		}
		vpLog := groupLog - 2 // 4 VPs per full group
		if groupLog < 2 {
			vpLog = 0
		}
		nvp := int((uint64(end-start) + (1 << vpLog) - 1) >> vpLog)
		pols := make([]profile.Policy, nvp)
		for i := range pols {
			if gi%2 == 0 {
				pols[i] = profile.PS
			} else {
				pols[i] = profile.DS
			}
		}
		plan.Groups = append(plan.Groups, part.GroupPlan{
			Start: start, End: end, VPSizeLog: vpLog,
			ExtraShuffle: gi == 0 && nvp > 1,
			Policies:     pols,
		})
		gi++
	}
	if err := part.Finalize(plan); err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestEngineWithExtraShufflePlan(t *testing.T) {
	g := undirectedTestGraph(t, 1024, 21)
	plan := planWithExtraShuffle(t, g)
	hasExtra := false
	for _, b := range plan.Bins() {
		if b.Extra {
			hasExtra = true
		}
	}
	if !hasExtra {
		t.Fatal("test plan has no extra-shuffle bin")
	}
	e, err := New(g, algo.DeepWalk(), Config{
		Workers: 3, Seed: 23, RecordHistory: true, Plan: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(4000, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkPathsAreWalks(t, g, res.History)
}

func TestEngineWithExtraShuffleStationary(t *testing.T) {
	// Multi-level shuffling must not perturb the walk distribution.
	g := undirectedTestGraph(t, 512, 22)
	plan := planWithExtraShuffle(t, g)
	e, err := New(g, algo.DeepWalk(), Config{
		Workers: 2, Seed: 24, RecordHistory: true, Plan: plan, Init: InitEdgeUniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(40000, 6)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, g.NumVertices())
	h := res.History
	last := h.NumSteps() - 1
	for j := 0; j < h.NumWalkers(); j++ {
		counts[h.At(last, j)]++
	}
	sumDeg := float64(g.NumEdges())
	for v := uint32(0); v < 10; v++ {
		want := float64(g.Degree(v)) / sumDeg
		got := counts[v] / float64(h.NumWalkers())
		if want > 0.005 && math.Abs(got-want) > 0.25*want {
			t.Errorf("vertex %d: share %.4f, stationary %.4f", v, got, want)
		}
	}
}

func TestEngineWeightedPSBuffers(t *testing.T) {
	// Force PS on a weighted graph: pre-sampled buffers must be refilled
	// through the weighted sampler, preserving the edge-weight
	// distribution.
	res, err := graph.Build([]graph.Edge{
		{Src: 0, Dst: 1, Weight: 9}, {Src: 0, Dst: 2, Weight: 1},
		{Src: 1, Dst: 0, Weight: 1}, {Src: 2, Dst: 0, Weight: 1},
	}, graph.BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.SortByDegreeDesc(res.Graph).Graph
	plan, err := part.PlanUniform(g, part.Config{MaxBins: 4}, profile.PS)
	if err != nil {
		t.Fatal(err)
	}
	spec := algo.DeepWalk()
	spec.Weighted = true
	e, err := New(g, spec, Config{Workers: 1, Seed: 25, RecordHistory: true, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run(30000, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := r.History
	var hub graph.VID
	for v := uint32(0); v < g.NumVertices(); v++ {
		if g.Degree(v) == 2 {
			hub = v
		}
	}
	adj := g.Neighbors(hub)
	wts := g.EdgeWeights(hub)
	heavyTarget := adj[0]
	if wts[1] > wts[0] {
		heavyTarget = adj[1]
	}
	heavy, total := 0, 0
	for j := 0; j < h.NumWalkers(); j++ {
		for i := 0; i+1 < h.NumSteps(); i++ {
			if h.At(i, j) == hub {
				total++
				if h.At(i+1, j) == heavyTarget {
					heavy++
				}
			}
		}
	}
	if total < 1000 {
		t.Fatalf("too few observations: %d", total)
	}
	if share := float64(heavy) / float64(total); math.Abs(share-0.9) > 0.03 {
		t.Errorf("PS weighted heavy share %.3f, want ≈0.9", share)
	}
}

func TestEngineDeterministicSingleWorker(t *testing.T) {
	g := undirectedTestGraph(t, 600, 26)
	run := func() []graph.VID {
		e, err := New(g, algo.DeepWalk(), Config{
			Workers: 1, Seed: 77, RecordHistory: true,
			Part: part.Config{TargetGroups: 8},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(500, 6)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]graph.VID, 0, 500*7)
		h := res.History
		for j := 0; j < h.NumWalkers(); j++ {
			out = append(out, h.Path(j)...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("single-worker runs diverged at %d", i)
		}
	}
}

func TestEnginePSBuffersDrainAndRefill(t *testing.T) {
	// Run enough steps that every PS buffer refills several times; all
	// transitions must stay valid edges (i.e., refill never corrupts
	// buffers).
	g := undirectedTestGraph(t, 64, 27)
	plan, err := part.PlanUniform(g, part.Config{MaxBins: 8}, profile.PS)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, algo.DeepWalk(), Config{Workers: 1, Seed: 28, RecordHistory: true, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(2000, 40) // 80k steps over ~400 edges: many refills
	if err != nil {
		t.Fatal(err)
	}
	checkPathsAreWalks(t, g, res.History)
}

func TestStepSinkStreamsEdges(t *testing.T) {
	// The streaming sink must deliver exactly the transitions the history
	// records, in walker order, step by step.
	g := undirectedTestGraph(t, 300, 30)
	type edgeRec struct {
		step     int
		from, to graph.VID
	}
	var streamed []edgeRec
	e, err := New(g, algo.DeepWalk(), Config{
		Workers: 2, Seed: 31, RecordHistory: true,
		Part: part.Config{TargetGroups: 8},
		StepSink: func(step int, cur, next []graph.VID) {
			for j := range cur {
				streamed = append(streamed, edgeRec{step, cur[j], next[j]})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const walkers, steps = 500, 4
	res, err := e.Run(walkers, steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != walkers*steps {
		t.Fatalf("streamed %d edges, want %d", len(streamed), walkers*steps)
	}
	h := res.History
	k := 0
	for s := 0; s < steps; s++ {
		for j := 0; j < walkers; j++ {
			rec := streamed[k]
			k++
			if rec.step != s || rec.from != h.At(s, j) || rec.to != h.At(s+1, j) {
				t.Fatalf("streamed edge %d = %+v, history says step %d: %d→%d",
					k-1, rec, s, h.At(s, j), h.At(s+1, j))
			}
		}
	}
}

func TestEngineCustomTransition(t *testing.T) {
	// A no-backtrack custom walk through the full engine: return rate
	// must collapse versus the uniform walk, and paths stay valid.
	g := undirectedTestGraph(t, 500, 33)
	spec := algo.NoBacktrack(8, 0.001)
	e, err := New(g, spec, Config{
		Workers: 2, Seed: 34, RecordHistory: true,
		Part: part.Config{TargetGroups: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(5000, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkPathsAreWalks(t, g, res.History)
	h := res.History
	var returns, moves int
	for j := 0; j < h.NumWalkers(); j++ {
		for i := 2; i < h.NumSteps(); i++ {
			if h.At(i, j) == h.At(i-2, j) && g.Degree(h.At(i-1, j)) > 1 {
				returns++
			}
			moves++
		}
	}
	if rate := float64(returns) / float64(moves); rate > 0.02 {
		t.Errorf("no-backtrack return rate %.4f through engine, want < 0.02", rate)
	}
}

func TestEngineOrderKSelfAvoiding(t *testing.T) {
	// Order-4 self-avoiding walk through the full engine: revisits within
	// the 3-step window must nearly vanish versus the uniform walk, and
	// paths must stay valid.
	g := undirectedTestGraph(t, 600, 44)
	revisitRate := func(spec algo.Spec) float64 {
		e, err := New(g, spec, Config{
			Workers: 2, Seed: 45, RecordHistory: true,
			Part: part.Config{TargetGroups: 8},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(3000, 12)
		if err != nil {
			t.Fatal(err)
		}
		checkPathsAreWalks(t, g, res.History)
		h := res.History
		var revisits, moves int
		for j := 0; j < h.NumWalkers(); j++ {
			for i := 4; i < h.NumSteps(); i++ {
				cur := h.At(i, j)
				for back := 1; back <= 3; back++ {
					if cur == h.At(i-back, j) {
						revisits++
						break
					}
				}
				moves++
			}
		}
		return float64(revisits) / float64(moves)
	}
	uniformSpec := algo.DeepWalk()
	avoiding := algo.SelfAvoiding(3, 12, 0.001)
	uni := revisitRate(uniformSpec)
	avoid := revisitRate(avoiding)
	t.Logf("window-3 revisit rate: uniform %.4f, self-avoiding %.4f", uni, avoid)
	if avoid > uni/5 {
		t.Errorf("self-avoiding rate %.4f not well below uniform %.4f", avoid, uni)
	}
}

func TestEpisodeWalkersMath(t *testing.T) {
	g := undirectedTestGraph(t, 200, 50)
	e, err := New(g, algo.DeepWalk(), Config{
		Workers: 1, Seed: 51, MemoryBudget: 120, // 10 walkers per episode (12B each)
		Part: part.Config{TargetGroups: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.EpisodeWalkers(100); got != 10 {
		t.Errorf("EpisodeWalkers(100) = %d, want 10", got)
	}
	if got := e.EpisodeWalkers(4); got != 4 {
		t.Errorf("EpisodeWalkers(4) = %d, want 4 (below budget)", got)
	}
	// Second-order walks carry an aux triple per walker: half as many fit.
	e2, err := New(g, algo.Node2Vec(1, 1), Config{
		Workers: 1, Seed: 52, MemoryBudget: 120,
		Part: part.Config{TargetGroups: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.EpisodeWalkers(100); got != 5 {
		t.Errorf("order-2 EpisodeWalkers(100) = %d, want 5", got)
	}
	// Order-4 carries three channels.
	e4, err := New(g, algo.SelfAvoiding(3, 5, 0.01), Config{
		Workers: 1, Seed: 53, MemoryBudget: 480,
		Part: part.Config{TargetGroups: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e4.EpisodeWalkers(100); got != 10 {
		t.Errorf("order-4 EpisodeWalkers(100) = %d, want 10 (48B/walker)", got)
	}
}

func TestEngineOrderKWithEpisodes(t *testing.T) {
	// Order-k state must be consistent within each episode even when the
	// memory budget splits the run.
	g := undirectedTestGraph(t, 300, 54)
	e, err := New(g, algo.SelfAvoiding(2, 6, 0.001), Config{
		Workers: 2, Seed: 55, RecordHistory: true,
		MemoryBudget: 36 * 100, // 100 walkers per episode (order-3: 36B each)
		Part:         part.Config{TargetGroups: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(500, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes != 5 {
		t.Fatalf("episodes = %d, want 5", res.Episodes)
	}
	// History holds the last episode; validate its walks.
	checkPathsAreWalks(t, g, res.History)
}

func TestEngineStepSinkWithEpisodes(t *testing.T) {
	// The sink must observe every episode's steps, not just the last.
	g := undirectedTestGraph(t, 200, 56)
	var edges int
	e, err := New(g, algo.DeepWalk(), Config{
		Workers: 1, Seed: 57, MemoryBudget: 12 * 50, // 50 walkers/episode
		Part: part.Config{TargetGroups: 8},
		StepSink: func(step int, cur, next []graph.VID) {
			edges += len(cur)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes != 4 {
		t.Fatalf("episodes = %d, want 4", res.Episodes)
	}
	if edges != 200*4 {
		t.Errorf("sink observed %d edges, want 800 across all episodes", edges)
	}
}
