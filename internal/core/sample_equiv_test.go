package core

import (
	"math"
	"slices"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/part"
	"flashmob/internal/rng"
	"flashmob/internal/walk"
)

// This file locks the specialized sample kernels (kernels.go) and the
// retained generic scalar path (sample.go) to a frozen copy of the
// pre-kernel scalar sample code, the same discipline
// walk/shuffle_equiv_test.go established for the shuffle rewrite: the
// reference below is the shipped per-walker PS/DS/weighted logic copied
// verbatim, and every kernel must reproduce its outputs bit for bit.
// (The restart and segment harness around the frozen draws — geometric
// skip, batch gating — is this PR's shared discipline, implemented
// identically by reference, scalar path, and kernels.)

// refSampler is the frozen scalar sampler. Its drawing methods
// (drawEdge, refill, nextPS, sampleFirst, sampleSecond, the batched
// second-order rounds) are verbatim copies of the pre-kernel code,
// interface-typed rng.Source draws and per-walker policy re-tests
// included. It keeps its own PS buffer state so it can evolve alongside
// an engine without sharing mutable state.
type refSampler struct {
	g          *graph.CSR
	spec       algo.Spec
	plan       *part.Plan
	regularDeg []int64
	ps         []*psState
	weighted   *algo.WeightedSampler
}

func newRefSampler(s *Session) *refSampler {
	e := s.e
	r := &refSampler{
		g: e.g, spec: e.spec, plan: e.plan,
		regularDeg: e.regularDeg, weighted: e.weighted,
	}
	r.ps = make([]*psState, len(s.ps))
	for i, st := range s.ps {
		if st == nil {
			continue
		}
		r.ps[i] = &psState{
			start: st.start, base: st.base,
			buf:       make([]graph.VID, len(st.buf)),
			remaining: make([]uint32, len(st.remaining)),
		}
	}
	return r
}

func (r *refSampler) drawEdge(v graph.VID, src rng.Source) graph.VID {
	if r.weighted != nil {
		return r.weighted.Next(v, src)
	}
	adj := r.g.Neighbors(v)
	return adj[rng.Uint32n(src, uint32(len(adj)))]
}

func (r *refSampler) refill(st *psState, v graph.VID, d uint32, src rng.Source) {
	off := r.g.Offsets[v] - st.base
	buf := st.buf[off : off+uint64(d)]
	if r.weighted != nil {
		for k := range buf {
			buf[k] = r.weighted.Next(v, src)
		}
	} else {
		adj := r.g.Neighbors(v)
		for k := range buf {
			buf[k] = adj[rng.Uint32n(src, d)]
		}
	}
	st.remaining[v-st.start] = d
}

func (r *refSampler) nextPS(st *psState, v graph.VID, src rng.Source) graph.VID {
	idx := v - st.start
	d := r.g.Degree(v)
	if st.remaining[idx] == 0 {
		r.refill(st, v, d, src)
	}
	off := r.g.Offsets[v] - st.base
	sample := st.buf[off+uint64(d-st.remaining[idx])]
	st.remaining[idx]--
	return sample
}

func (r *refSampler) sampleFirst(vpIdx int, v graph.VID, src rng.Source) graph.VID {
	if st := r.ps[vpIdx]; st != nil {
		if r.g.Degree(v) == 0 {
			return v
		}
		return r.nextPS(st, v, src)
	}
	if reg := r.regularDeg[vpIdx]; reg >= 0 && r.weighted == nil {
		if reg == 0 {
			return v
		}
		vp := r.plan.VPs[vpIdx]
		base := r.g.Offsets[vp.Start]
		d := uint32(reg)
		return r.g.Targets[base+uint64(v-vp.Start)*uint64(d)+uint64(rng.Uint32n(src, d))]
	}
	if r.g.Degree(v) == 0 {
		return v
	}
	return r.drawEdge(v, src)
}

func (r *refSampler) maxWeight() float64 {
	if tr := r.spec.Custom; tr != nil {
		return tr.MaxWeight
	}
	maxW := 1.0
	if 1/r.spec.P > maxW {
		maxW = 1 / r.spec.P
	}
	if 1/r.spec.Q > maxW {
		maxW = 1 / r.spec.Q
	}
	return maxW
}

func (r *refSampler) secondOrderWeight(prev, cur, x graph.VID) float64 {
	if tr := r.spec.Custom; tr != nil {
		return tr.Weight(r.g, prev, cur, x)
	}
	switch {
	case x == prev:
		return 1 / r.spec.P
	case r.g.HasEdge(prev, x):
		return 1
	default:
		return 1 / r.spec.Q
	}
}

func (r *refSampler) sampleSecond(vpIdx int, v, prev graph.VID, src rng.Source) graph.VID {
	d := r.g.Degree(v)
	if d == 0 {
		return v
	}
	maxW := r.maxWeight()
	if d == 1 {
		return r.g.Neighbors(v)[0]
	}
	st := r.ps[vpIdx]
	for {
		var x graph.VID
		if st != nil {
			x = r.nextPS(st, v, src)
		} else {
			x = r.sampleFirst(vpIdx, v, src)
		}
		w := r.secondOrderWeight(prev, v, x)
		if w >= maxW || rng.Float64(src)*maxW < w {
			return x
		}
	}
}

// sampleVPSecondBatched is the pre-hoist original: note the e.ps[vpIdx]
// re-read per pending walker per round.
func (r *refSampler) sampleVPSecondBatched(vpIdx int, chunk, aux []graph.VID, src rng.Source) {
	maxW := r.maxWeight()
	cand := make([]graph.VID, len(chunk))
	pending := make([]uint64, 0, len(chunk))
	for i := range chunk {
		switch r.g.Degree(chunk[i]) {
		case 0:
			aux[i] = chunk[i]
			continue
		case 1:
			next := r.g.Neighbors(chunk[i])[0]
			aux[i] = chunk[i]
			chunk[i] = next
			continue
		}
		pending = append(pending, uint64(aux[i])<<32|uint64(uint32(i)))
	}
	slices.Sort(pending)
	for len(pending) > 0 {
		for _, key := range pending {
			i := uint32(key)
			if st := r.ps[vpIdx]; st != nil {
				cand[i] = r.nextPS(st, chunk[i], src)
			} else {
				cand[i] = r.sampleFirst(vpIdx, chunk[i], src)
			}
		}
		next := pending[:0]
		for _, key := range pending {
			i := uint32(key)
			prev, x := graph.VID(key>>32), cand[i]
			w := r.secondOrderWeight(prev, chunk[i], x)
			if w >= maxW || rng.Float64(src)*maxW < w {
				aux[i] = chunk[i]
				chunk[i] = x
			} else {
				next = append(next, key)
			}
		}
		pending = next
	}
}

// sampleVP mirrors the engine's dispatch harness (restart skip, segment
// split, batch gating) around the frozen per-walker draws.
func (r *refSampler) sampleVP(vpIdx int, chunk []graph.VID, aux [][]graph.VID, src rng.Source) {
	if r.spec.StopProb > 0 {
		logq := math.Log1p(-r.spec.StopProb)
		n := r.g.NumVertices()
		order2 := r.spec.Order == 2
		pos := 0
		for pos < len(chunk) {
			gap := math.Log1p(-rng.Float64(src)) / logq
			if gap >= float64(len(chunk)-pos) {
				r.segment(vpIdx, chunk, aux, pos, len(chunk), false, src)
				return
			}
			next := pos + int(gap)
			r.segment(vpIdx, chunk, aux, pos, next, false, src)
			nv := graph.VID(rng.Uint32n(src, n))
			chunk[next] = nv
			if order2 {
				aux[0][next] = nv
			}
			pos = next + 1
		}
		return
	}
	r.segment(vpIdx, chunk, aux, 0, len(chunk), true, src)
}

func (r *refSampler) segment(vpIdx int, chunk []graph.VID, aux [][]graph.VID, lo, hi int, allowBatch bool, src rng.Source) {
	if hi <= lo {
		return
	}
	if r.spec.Order == 2 {
		seg, prev := chunk[lo:hi], aux[0][lo:hi]
		if allowBatch && hi-lo >= batchThreshold {
			r.sampleVPSecondBatched(vpIdx, seg, prev, src)
			return
		}
		for j := range seg {
			v := seg[j]
			next := r.sampleSecond(vpIdx, v, prev[j], src)
			prev[j] = v
			seg[j] = next
		}
		return
	}
	seg := chunk[lo:hi]
	for j := range seg {
		seg[j] = r.sampleFirst(vpIdx, seg[j], src)
	}
}

// weightedTestGraph builds a degree-sorted weighted power-law graph with
// deterministic pseudo-random positive weights.
func weightedTestGraph(t *testing.T, n uint32, seed uint64) *graph.CSR {
	t.Helper()
	dir, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: n, AvgDegree: 6, Alpha: 0.7, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	wsrc := rng.NewXorShift1024Star(seed ^ 0x77)
	var edges []graph.Edge
	for v := uint32(0); v < dir.NumVertices(); v++ {
		for _, w := range dir.Neighbors(v) {
			if v != w {
				edges = append(edges, graph.Edge{
					Src: v, Dst: w, Weight: 0.25 + float32(wsrc.Float64()),
				})
			}
		}
	}
	res, err := graph.Build(edges, graph.BuildOptions{Weighted: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	return graph.SortByDegreeDesc(res.Graph).Graph
}

type equivScenario struct {
	name    string
	g       *graph.CSR
	spec    algo.Spec
	planner PlannerKind
}

func equivScenarios(t *testing.T) []equivScenario {
	t.Helper()
	pl := undirectedTestGraph(t, 400, 7)
	wg := weightedTestGraph(t, 300, 11)
	uni, err := gen.UniformDegree(256, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	weighted := algo.DeepWalk()
	weighted.Weighted = true
	pr := algo.PageRankWalk(0.85)
	return []equivScenario{
		{"ps-first-order", pl, algo.DeepWalk(), PlannerUniformPS},
		{"ds-csr-first-order", pl, algo.DeepWalk(), PlannerUniformDS},
		{"ds-regular", uni, algo.DeepWalk(), PlannerUniformDS},
		{"mckp-first-order", pl, algo.DeepWalk(), PlannerMCKP},
		{"node2vec-mckp", pl, algo.Node2Vec(2, 0.5), PlannerMCKP},
		{"node2vec-ps", pl, algo.Node2Vec(0.5, 2), PlannerUniformPS},
		{"weighted-ps", wg, weighted, PlannerUniformPS},
		{"weighted-ds", wg, weighted, PlannerUniformDS},
		{"pagerank-restart", pl, pr, PlannerMCKP},
	}
}

// TestSampleKernelsMatchFrozenScalar drives every partition of every
// scenario through the kernel path, the retained scalar path, and the
// frozen reference with identical reseeded streams, and requires bitwise
// identical chunks, predecessors, and (implicitly, via later rounds)
// PS buffer evolution.
func TestSampleKernelsMatchFrozenScalar(t *testing.T) {
	base := Config{Workers: 1, Seed: 3, Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1}}
	for _, sc := range equivScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			cfgK := base
			cfgS := base
			cfgS.ScalarSample = true
			cfgK.Planner, cfgS.Planner = sc.planner, sc.planner
			eK := newEngine(t, sc.g, sc.spec, cfgK)
			defer eK.Close()
			eS := newEngine(t, sc.g, sc.spec, cfgS)
			defer eS.Close()
			sK, err := eK.NewSession(nil)
			if err != nil {
				t.Fatal(err)
			}
			defer sK.Close()
			sS, err := eS.NewSession(nil)
			if err != nil {
				t.Fatal(err)
			}
			defer sS.Close()
			ref := newRefSampler(sK)

			setup := rng.NewXorShift1024Star(0x5eed)
			srcK := rng.NewXorShift1024Star(0)
			srcS := rng.NewXorShift1024Star(0)
			srcR := rng.NewXorShift1024Star(0)
			scrK, scrS := newSampleScratch(), newSampleScratch()
			channels := eK.auxChannels()
			n := sc.g.NumVertices()

			for round := 0; round < 3; round++ {
				for vp := 0; vp < eK.plan.NumVPs(); vp++ {
					vpp := eK.plan.VPs[vp]
					span := uint32(vpp.End - vpp.Start)
					if span == 0 {
						continue
					}
					// Sizes straddle batchThreshold so both second-order
					// paths run.
					for _, size := range []int{1, 7, 200} {
						master := make([]graph.VID, size)
						for j := range master {
							master[j] = vpp.Start + graph.VID(setup.Uint32n(span))
						}
						var masterAux []graph.VID
						if channels > 0 {
							masterAux = make([]graph.VID, size)
							for j := range masterAux {
								masterAux[j] = graph.VID(setup.Uint32n(n))
							}
						}
						wrap := func(a []graph.VID) [][]graph.VID {
							if a == nil {
								return nil
							}
							return [][]graph.VID{a}
						}
						seed := setup.Uint64()

						chunkK := slices.Clone(master)
						auxK := slices.Clone(masterAux)
						srcK.Reseed(seed)
						sK.sampleVPScratch(vp, chunkK, wrap(auxK), srcK, scrK)

						chunkS := slices.Clone(master)
						auxS := slices.Clone(masterAux)
						srcS.Reseed(seed)
						sS.sampleVPScratch(vp, chunkS, wrap(auxS), srcS, scrS)

						chunkR := slices.Clone(master)
						auxR := slices.Clone(masterAux)
						srcR.Reseed(seed)
						ref.sampleVP(vp, chunkR, wrap(auxR), srcR)

						if !slices.Equal(chunkK, chunkR) || !slices.Equal(auxK, auxR) {
							t.Fatalf("round %d vp %d size %d: kernel path diverged from frozen scalar", round, vp, size)
						}
						if !slices.Equal(chunkS, chunkR) || !slices.Equal(auxS, auxR) {
							t.Fatalf("round %d vp %d size %d: retained scalar path diverged from frozen scalar", round, vp, size)
						}
					}
				}
			}
		})
	}
}

func runForHistory(t *testing.T, g *graph.CSR, spec algo.Spec, cfg Config, walkers uint64, steps int) *walk.History {
	t.Helper()
	cfg.RecordHistory = true
	e := newEngine(t, g, spec, cfg)
	defer e.Close()
	r, err := e.Run(walkers, steps)
	if err != nil {
		t.Fatal(err)
	}
	return r.History
}

func historiesEqual(a, b *walk.History) bool {
	if a.NumSteps() != b.NumSteps() || a.NumWalkers() != b.NumWalkers() {
		return false
	}
	for i := 0; i < a.NumSteps(); i++ {
		for j := 0; j < a.NumWalkers(); j++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}

// TestSampleEngineEquivalenceAcrossWorkers runs full engine pipelines —
// scalar and kernel paths, 1/3/8 workers, two seeds — and requires every
// combination to reproduce the single-worker scalar trajectories exactly.
// Per-work-item RNG reseeding is what makes the worker counts agree:
// streams attach to (episode, step, partition, sub-shard), never to the
// claiming worker.
func TestSampleEngineEquivalenceAcrossWorkers(t *testing.T) {
	for _, sc := range equivScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 42} {
				base := Config{
					Seed: seed, Planner: sc.planner,
					Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1},
				}
				scalar1 := base
				scalar1.Workers = 1
				scalar1.ScalarSample = true
				want := runForHistory(t, sc.g, sc.spec, scalar1, 500, 4)

				for _, workers := range []int{1, 3, 8} {
					for _, scalarPath := range []bool{false, true} {
						cfg := base
						cfg.Workers = workers
						cfg.ScalarSample = scalarPath
						got := runForHistory(t, sc.g, sc.spec, cfg, 500, 4)
						if !historiesEqual(want, got) {
							t.Fatalf("seed %d workers %d scalar=%v: trajectories diverged from single-worker scalar run", seed, workers, scalarPath)
						}
					}
				}
			}
		})
	}
}

// TestSampleEquivalenceAcrossEpisodes checks the memory-budgeted episode
// path: same bitwise trajectories regardless of worker count or sample
// path, with the walk split into several episodes.
func TestSampleEquivalenceAcrossEpisodes(t *testing.T) {
	g := undirectedTestGraph(t, 300, 9)
	spec := algo.DeepWalk()
	base := Config{
		Seed: 5, MemoryBudget: 150 * 12,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1},
	}
	scalar1 := base
	scalar1.Workers = 1
	scalar1.ScalarSample = true
	want := runForHistory(t, g, spec, scalar1, 400, 3)
	for _, workers := range []int{1, 4} {
		for _, scalarPath := range []bool{false, true} {
			cfg := base
			cfg.Workers = workers
			cfg.ScalarSample = scalarPath
			got := runForHistory(t, g, spec, cfg, 400, 3)
			if !historiesEqual(want, got) {
				t.Fatalf("workers %d scalar=%v: episode trajectories diverged", workers, scalarPath)
			}
		}
	}
}

// TestSampleDeterminismWithSubShards shrinks SubShardSize so oversized-
// chunk splitting actually happens on a test-sized graph, then requires
// every worker count and both sample paths to agree bitwise. (Each
// sub-shard owns its own RNG stream, so trajectories are a function of
// the shard size — what must NOT matter is which worker runs which
// shard, or how many workers there are.)
func TestSampleDeterminismWithSubShards(t *testing.T) {
	g := undirectedTestGraph(t, 400, 13)
	spec := algo.DeepWalk()
	base := Config{
		Seed: 8, Planner: PlannerUniformDS,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1},
	}

	defer func(old uint64) { SubShardSize = old }(SubShardSize)
	SubShardSize = 16

	scalar1 := base
	scalar1.Workers = 1
	scalar1.ScalarSample = true
	want := runForHistory(t, g, spec, scalar1, 900, 4)

	for _, workers := range []int{1, 4} {
		for _, scalarPath := range []bool{false, true} {
			cfg := base
			cfg.Workers = workers
			cfg.ScalarSample = scalarPath
			got := runForHistory(t, g, spec, cfg, 900, 4)
			if !historiesEqual(want, got) {
				t.Fatalf("workers %d scalar=%v: sub-sharded trajectories diverged", workers, scalarPath)
			}
		}
	}
}

// TestStopProbRestartFrequency checks the geometric-skip restart path's
// distribution: on a directed cycle (every non-restart step moves v to
// v+1), the fraction of transitions that break the cycle pattern must
// match StopProb·(1−1/n) — a restart teleports uniformly and collides
// with the cycle successor with probability 1/n.
func TestStopProbRestartFrequency(t *testing.T) {
	const n = 64
	offs := make([]uint64, n+1)
	tgts := make([]graph.VID, n)
	for v := 0; v < n; v++ {
		offs[v+1] = uint64(v + 1)
		tgts[v] = graph.VID((v + 1) % n)
	}
	g := &graph.CSR{Offsets: offs, Targets: tgts}

	const stop = 0.3
	spec := algo.PageRankWalk(1 - stop)
	for _, scalarPath := range []bool{false, true} {
		cfg := Config{
			Workers: 4, Seed: 17, Planner: PlannerUniformDS,
			ScalarSample: scalarPath,
			Part:         part.Config{TargetGroups: 2, MinVPSizeLog: 1},
		}
		h := runForHistory(t, g, spec, cfg, 40000, 5)
		moved, total := 0, 0
		for i := 0; i+1 < h.NumSteps(); i++ {
			for j := 0; j < h.NumWalkers(); j++ {
				cur, next := h.At(i, j), h.At(i+1, j)
				total++
				if next != (cur+1)%n {
					moved++
				}
			}
		}
		want := stop * (1 - 1.0/n)
		got := float64(moved) / float64(total)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("scalar=%v: restart-break fraction %.4f, want ≈%.4f", scalarPath, got, want)
		}
	}
}

// TestDSRegularVsCSRKernels locks the arithmetic-indexing kernel to the
// CSR fallback three ways: bitwise agreement on the same seed (on a
// uniform-degree partition both index the same Targets slot), a
// two-sample chi-square on the final walker positions for different
// seeds, and an MCKP-planned end-to-end run that actually exercises
// kernDSRegular.
func TestDSRegularVsCSRKernels(t *testing.T) {
	g, err := gen.UniformDegree(128, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := algo.DeepWalk()
	cfg := Config{
		Workers: 2, Seed: 31, Planner: PlannerUniformDS, RecordHistory: true,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1},
	}

	run := func(seed uint64, forceCSR bool) *walk.History {
		c := cfg
		c.Seed = seed
		e := newEngine(t, g, spec, c)
		defer e.Close()
		if forceCSR {
			for i := range e.regularDeg {
				e.regularDeg[i] = -1
			}
			e.buildKernels()
			for i := range e.kern {
				// A uniform-DS plan has no PS partitions, so every kernel
				// must fall back to CSR.
				if e.kern[i].kind != kernDSCSR {
					t.Fatalf("vp %d: expected kernDSCSR after forcing, got %d", i, e.kern[i].kind)
				}
			}
		} else {
			sawRegular := false
			for i := range e.kern {
				sawRegular = sawRegular || e.kern[i].kind == kernDSRegular
			}
			if !sawRegular {
				t.Fatal("uniform-degree DS plan produced no kernDSRegular partition")
			}
		}
		r, err := e.Run(20000, 5)
		if err != nil {
			t.Fatal(err)
		}
		return r.History
	}

	// Same seed: bitwise identical.
	if !historiesEqual(run(31, false), run(31, true)) {
		t.Fatal("DS-regular and DS-CSR kernels diverged on the same seed")
	}

	// Different seeds: same final-position distribution. Final positions
	// of distinct walkers are independent, so a two-sample chi-square
	// applies; threshold is the ~0.999 quantile for df=127.
	ha, hb := run(101, false), run(202, true)
	counts := func(h *walk.History) []float64 {
		c := make([]float64, g.NumVertices())
		last := h.NumSteps() - 1
		for j := 0; j < h.NumWalkers(); j++ {
			c[h.At(last, j)]++
		}
		return c
	}
	ca, cb := counts(ha), counts(hb)
	var chi2 float64
	for v := range ca {
		if s := ca[v] + cb[v]; s > 0 {
			d := ca[v] - cb[v]
			chi2 += d * d / s
		}
	}
	if chi2 > 190 {
		t.Errorf("DS-regular vs DS-CSR chi-square %.1f exceeds 190 (df=127)", chi2)
	}
}

// TestMCKPPlanExercisesRegularKernel requires the default planner to
// produce (and the run to use) at least one arithmetic-indexing DS
// partition on a power-law graph — the tail of a degree-sorted graph is
// exactly where uniform-degree DS partitions appear.
func TestMCKPPlanExercisesRegularKernel(t *testing.T) {
	g := undirectedTestGraph(t, 5000, 21)
	e := newEngine(t, g, algo.DeepWalk(), Config{
		Workers: 2, Seed: 3, Planner: PlannerMCKP,
	})
	defer e.Close()
	var regular []int
	for i := range e.kern {
		if e.kern[i].kind == kernDSRegular {
			regular = append(regular, i)
		}
	}
	if len(regular) == 0 {
		t.Fatal("MCKP plan produced no kernDSRegular partition on a power-law graph")
	}
	r, err := e.Run(20000, 4)
	if err != nil {
		t.Fatal(err)
	}
	var steps uint64
	for _, vp := range regular {
		steps += r.VPSteps[vp]
	}
	if steps == 0 {
		t.Fatal("no walker-steps landed in kernDSRegular partitions")
	}
}
