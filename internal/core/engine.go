// Package core implements the FlashMob engine: the paper's two-stage
// sample/shuffle random-walk pipeline over a degree-sorted, partitioned
// graph, with per-partition pre-sampling (PS) or direct sampling (DS)
// policies chosen by the MCKP planner (§4).
//
// The engine is split into an immutable build and per-run sessions: New
// resolves everything that depends only on the graph, the walk spec, and
// the plan (kernel table, degree classification, alias tables, cost
// model, the persistent worker pool), while every Run — or every
// explicitly held Session — owns its own mutable state (PS buffers,
// work-item lists, scratches, metrics registry). Runs from concurrent
// goroutines therefore share one build and interleave their stage
// phases on the shared pool.
package core

import (
	"cmp"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/mem"
	"flashmob/internal/part"
	"flashmob/internal/pool"
	"flashmob/internal/profile"
	"flashmob/internal/rng"
)

// ErrClosed is returned by Run and NewSession after Close has released
// the engine's worker pool.
var ErrClosed = errors.New("core: engine closed")

// PlannerKind selects how the engine partitions the graph.
type PlannerKind int

const (
	// PlannerMCKP is the paper's DP-optimized planner (default).
	PlannerMCKP PlannerKind = iota
	// PlannerUniformPS cuts equal VPs, all pre-sampling.
	PlannerUniformPS
	// PlannerUniformDS cuts equal VPs, all direct sampling.
	PlannerUniformDS
	// PlannerManual applies the authors' pre-MCKP heuristic.
	PlannerManual
)

// InitMode selects walker start placement.
type InitMode int

const (
	// InitVertexSequential starts walker j at vertex j mod |V| — the
	// DeepWalk/node2vec convention of one walk per vertex.
	InitVertexSequential InitMode = iota
	// InitEdgeUniform places walkers proportionally to degree (uniform
	// over edges), the initialization of the paper's Table 2 profiling.
	InitEdgeUniform
	// InitVertexUniform places walkers uniformly over vertices.
	InitVertexUniform
)

// Config tunes the engine.
type Config struct {
	// Workers is the sampling/shuffling thread count (default
	// GOMAXPROCS).
	Workers int
	// Seed drives all engine randomness.
	Seed uint64
	// Planner picks the partitioning strategy (default MCKP).
	Planner PlannerKind
	// Plan, if non-nil, overrides the planner entirely.
	Plan *part.Plan
	// Model prices partitions for the planner (default: analytical model
	// on the paper's cache geometry).
	Model profile.CostModel
	// Part carries planner parameters (bins, groups, sizes); Walkers and
	// Model fields inside are filled by the engine.
	Part part.Config
	// Init chooses walker start placement.
	Init InitMode
	// MemoryBudget caps the walker-array bytes per episode; 0 means
	// unlimited. The engine splits a large request into episodes, as the
	// paper does based on DRAM capacity (§5.1).
	MemoryBudget uint64
	// RecordHistory keeps every W_i array so paths can be produced.
	RecordHistory bool
	// ScalarSample routes the sample stage through the generic scalar
	// path instead of the per-partition specialized kernels. The two
	// paths produce bitwise-identical trajectories (sample_equiv_test.go);
	// this switch exists for the fmbench scalar-vs-kernels comparison and
	// the equivalence tests themselves.
	ScalarSample bool
	// Metrics enables the observability layer (internal/obs): per-stage
	// and per-partition counters and latency histograms collected on a
	// per-session registry (each Result.Report describes its own run),
	// folded into an engine-lifetime aggregate on session close, plus
	// pool busy/barrier accounting and runtime/pprof stage labels on
	// worker goroutines. Off by default; when off, every recording site
	// reduces to a nil check (see docs/OBSERVABILITY.md for the metric
	// reference and the measured overhead).
	Metrics bool
	// StepSink, when non-nil, receives every iteration's sampled edges in
	// walker order: cur[j] → next[j] is walker j's transition at the
	// given step. This is the paper's streaming output mode (§4.3:
	// "stream the sampled edges to the GPU performing graph embedding
	// training") — no history is retained for the caller. The slices are
	// reused across steps; the sink must copy anything it keeps. With
	// concurrent sessions the sink is called from multiple goroutines.
	StepSink func(step int, cur, next []graph.VID)
}

// Engine is the immutable build of one graph + one algorithm spec: the
// plan, the kernel table, the degree classification, and the persistent
// worker pool, all resolved once by New. Mutable run state lives in
// Sessions; Run (and therefore System.Walk) is safe to call from
// concurrent goroutines, each call running on its own session.
type Engine struct {
	g    *graph.CSR
	spec algo.Spec
	cfg  Config
	plan *part.Plan

	// pool is the persistent worker set every stage of every step runs
	// on: created once here and shared by all sessions, whose phases it
	// multiplexes, so the steady-state step loop spawns no goroutines.
	pool *pool.Pool

	// regularDeg[i] is the uniform degree of VP i when all its vertices
	// share one degree (the simplified direct-indexing fast path of §4.2),
	// or -1 for mixed-degree partitions.
	regularDeg []int64

	// psVP[i] marks VP i as pre-sampling: sessions allocate their own
	// psState buffers for these partitions (the buffers are consumed and
	// refilled during sampling, so they cannot be shared across runs).
	psVP []bool

	// kern[i] is VP i's specialized sample kernel, resolved once at build
	// time from the plan, the PS allocation, and the degree shape (§4.2).
	// The template's st pointers are nil; each session binds copies to
	// its own psState. kernUW is the unweighted-spec template for cohorts
	// of a mixed run walking unweighted specs on a weighted build (nil on
	// unweighted builds, where it would equal kern).
	kern   []vpKernel
	kernUW []vpKernel

	// weighted is the alias-table sampler for weighted walks (nil
	// otherwise).
	weighted *algo.WeightedSampler

	// metrics is the engine-lifetime aggregate registry (nil unless
	// Config.Metrics): sessions record into their own registries and fold
	// them in here on close. It also carries the shared pprof label
	// contexts.
	metrics *engineMetrics

	// Session lifecycle: NewSession refuses after Close, Close waits for
	// active sessions to finish before releasing the pool, and finished
	// sessions park in sessions for reuse (their PS buffers are the
	// dominant allocation).
	mu       sync.Mutex
	closed   bool
	active   sync.WaitGroup
	sessions sync.Pool
}

// New builds an engine. The graph must be degree-sorted (descending); use
// graph.SortByDegreeDesc first (the public facade does this
// automatically).
func New(g *graph.CSR, spec algo.Spec, cfg Config) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	if !graph.IsDegreeSorted(g) {
		return nil, fmt.Errorf("core: graph must be sorted by descending degree (see graph.SortByDegreeDesc)")
	}
	if spec.Weighted && g.Weights == nil {
		return nil, fmt.Errorf("core: weighted walk on unweighted graph")
	}
	if spec.Weighted && spec.Order == 2 {
		return nil, fmt.Errorf("core: weighted second-order walks are not supported (rejection sampling assumes uniform candidates)")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Model == nil {
		cfg.Model = profile.NewAnalyticalModel(mem.PaperGeometry())
	}
	e := &Engine{g: g, spec: spec, cfg: cfg}
	e.pool = pool.New(cfg.Workers)

	if spec.Weighted {
		ws, err := algo.NewWeightedSampler(g)
		if err != nil {
			return nil, err
		}
		e.weighted = ws
	}

	plan := cfg.Plan
	if plan == nil {
		pcfg := cfg.Part
		pcfg.Model = cfg.Model
		if pcfg.Walkers == 0 {
			pcfg.Walkers = uint64(g.NumVertices())
		}
		var err error
		switch cfg.Planner {
		case PlannerMCKP:
			plan, err = part.PlanMCKP(g, pcfg)
		case PlannerUniformPS:
			plan, err = part.PlanUniform(g, pcfg, profile.PS)
		case PlannerUniformDS:
			plan, err = part.PlanUniform(g, pcfg, profile.DS)
		case PlannerManual:
			plan, err = part.ManualHeuristic{}.PlanManual(g, pcfg)
		default:
			err = fmt.Errorf("core: unknown planner %d", cfg.Planner)
		}
		if err != nil {
			return nil, err
		}
	} else if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("core: supplied plan invalid: %w", err)
	}
	if plan.V != g.NumVertices() {
		return nil, fmt.Errorf("core: plan covers %d vertices, graph has %d", plan.V, g.NumVertices())
	}
	e.plan = plan

	// Classify partitions; the PS buffers themselves are per-session.
	e.regularDeg = make([]int64, plan.NumVPs())
	e.psVP = make([]bool, plan.NumVPs())
	for i, vp := range plan.VPs {
		first := g.Degree(vp.Start)
		last := g.Degree(vp.End - 1)
		if first == last {
			e.regularDeg[i] = int64(first)
		} else {
			e.regularDeg[i] = -1
		}
		e.psVP[i] = vp.Policy == profile.PS
	}
	e.buildKernels()
	if cfg.Metrics {
		e.metrics = newEngineMetrics(e, nil)
	}
	return e, nil
}

// Plan returns the partitioning decision in effect.
func (e *Engine) Plan() *part.Plan { return e.plan }

// Close releases the engine's worker pool: it waits for active sessions
// to finish, then frees the parked goroutines. Idempotent; Run and
// NewSession return ErrClosed afterwards. Optional — an unreachable
// engine's pool is reclaimed by a finalizer — but deterministic.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.active.Wait()
	e.pool.Close()
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.CSR { return e.g }

// Spec returns the walk specification.
func (e *Engine) Spec() algo.Spec { return e.spec }

// auxChannels returns the number of per-walker predecessor channels the
// walk carries: k-1 for order-k walks (1 for node2vec), 0 for first-order
// walks.
func (e *Engine) auxChannels() int { return auxChannelsFor(&e.spec) }

// auxChannelsFor is auxChannels for an arbitrary spec — mixed runs size
// their aux arrays to the widest cohort.
func auxChannelsFor(sp *algo.Spec) int {
	if sp.History != nil {
		return sp.History.Window
	}
	if sp.Order == 2 {
		return 1
	}
	return 0
}

// bytesPerWalker is the walker-array footprint per walker: W, SW, Wnext
// (4B each) plus the aux channel triples for higher-order walks.
func (e *Engine) bytesPerWalker() uint64 {
	return uint64(12) + uint64(12*e.auxChannels())
}

// EpisodeWalkers returns how many walkers fit one episode under the
// memory budget (at least 1) for a requested total.
func (e *Engine) EpisodeWalkers(total uint64) uint64 {
	if total == 0 {
		total = uint64(e.g.NumVertices())
	}
	if e.cfg.MemoryBudget == 0 {
		return total
	}
	fit := e.cfg.MemoryBudget / e.bytesPerWalker()
	if fit == 0 {
		fit = 1
	}
	if fit > total {
		return total
	}
	return fit
}

// initWalkers fills w with start positions per the configured mode.
func (e *Engine) initWalkers(w []graph.VID, src rng.Source) {
	n := e.g.NumVertices()
	switch e.cfg.Init {
	case InitVertexSequential:
		for j := range w {
			w[j] = graph.VID(uint32(j) % n)
		}
	case InitVertexUniform:
		for j := range w {
			w[j] = graph.VID(rng.Uint32n(src, n))
		}
	case InitEdgeUniform:
		initEdgeUniform(e.g, w, src)
	}
}

// initEdgeUniform places walkers proportionally to degree by batched
// sorted-draw placement: draw all edge indices up front, sort walker
// slots by drawn index, then resolve every draw in one merged sweep over
// the CSR offsets. O(W log W + V) instead of the O(W log V) of a binary
// search per walker, and the sweep touches Offsets sequentially instead
// of W random probes. Produces bit-identical placements to vertexOfEdge
// on the same draws.
func initEdgeUniform(g *graph.CSR, w []graph.VID, src rng.Source) {
	total := g.NumEdges()
	xs := make([]uint64, len(w))
	order := make([]int32, len(w))
	for j := range w {
		xs[j] = rng.Uint64n(src, total)
		order[j] = int32(j)
	}
	slices.SortFunc(order, func(a, b int32) int { return cmp.Compare(xs[a], xs[b]) })
	offs := g.Offsets
	v := 0
	for _, j := range order {
		x := xs[j]
		for offs[v+1] <= x {
			v++
		}
		w[j] = graph.VID(v)
	}
}

// vertexOfEdge maps a uniform edge index to its source vertex by binary
// search over the CSR offsets — degree-proportional vertex sampling. Kept
// as the reference implementation for initEdgeUniform's merged sweep.
func vertexOfEdge(g *graph.CSR, x uint64) graph.VID {
	lo, hi := 0, int(g.NumVertices())
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if g.Offsets[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return graph.VID(lo)
}
