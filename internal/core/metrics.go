package core

import (
	"context"
	"runtime/pprof"
	"strconv"

	"flashmob/internal/algo"
	"flashmob/internal/obs"
)

// kernelKindNames labels the kernel-kind slots of the
// core_sample_kernel_walker_steps vector, in kernelKind order.
var kernelKindNames = []string{"empty", "ps", "ps-weighted", "ds-regular", "ds-csr", "ds-weighted"}

// cohortClassNames labels the walk-shape slots of the
// core_cohort_walker_steps vector, in classifySpec order.
var cohortClassNames = []string{"uniform", "weighted", "node2vec", "order-k", "stop"}

// classifySpec maps a walk spec to its cohortClassNames slot. Precedence
// mirrors the sample-stage dispatch: a bounded-history transition is
// "order-k" whatever else it sets, plain second order is "node2vec",
// stochastic termination is "stop", weight-proportional first order is
// "weighted", and everything else is the "uniform" first-order walk.
func classifySpec(sp *algo.Spec) int {
	switch {
	case sp.History != nil:
		return 3
	case sp.Order == 2:
		return 2
	case sp.StopProb > 0:
		return 4
	case sp.Weighted:
		return 1
	default:
		return 0
	}
}

// engineMetrics is one complete metric set over one registry, built when
// Config.Metrics is set; a nil *engineMetrics disables every recording
// site (the off path is one nil check per site, none of them per walker).
// Two instances exist per metrics-enabled engine: the engine-lifetime
// aggregate built by New, and a fresh per-session set built on every
// session acquisition — sessions record into their own registries (so
// each Result.Report describes its own run) and fold into the aggregate
// on Session.Close. All metric pointers are resolved here up front so the
// hot path never consults the registry.
type engineMetrics struct {
	reg *obs.Registry

	// Run-level accounting.
	runs, episodes, steps, walkers *obs.Counter

	// Per-step stage durations (one observation per pipeline step).
	sampleStepNS, shuffleFwdStepNS, shuffleRevStepNS *obs.Histogram

	// Sample-stage structure: work items per step, and how many of them
	// were sub-shards of split oversized DS chunks.
	sampleItems     *obs.Histogram
	sampleSubShards *obs.Counter

	// Per-partition accounting: walker-steps sampled and sample time, and
	// walker-steps per kernel kind (the §4.2 specialization mix).
	vpWalkerSteps *obs.CounterVec
	vpSampleNS    *obs.CounterVec
	kernelSteps   *obs.CounterVec

	// Mixed-run accounting: walker-steps per walk shape (solo runs charge
	// their single shape), RunMixed invocations, and the cohort count each
	// mixed run carried.
	cohortSteps     *obs.CounterVec
	mixedRuns       *obs.Counter
	mixedRunCohorts *obs.Histogram

	// pool carries the worker pool's busy/barrier accounting.
	pool *obs.PoolMetrics

	// pprof label contexts: sampleCtx tags the sample stage as a whole,
	// vpCtx[i] additionally tags partition i while a worker samples it.
	sampleCtx context.Context
	vpCtx     []context.Context
}

// newEngineMetrics builds one metric set. proto, when non-nil, is the
// engine's aggregate set: the new set shares its pprof label contexts
// (labels are identical across sessions — only the counters are
// per-session) instead of rebuilding one context per partition per
// acquisition.
func newEngineMetrics(e *Engine, proto *engineMetrics) *engineMetrics {
	reg := obs.NewRegistry()
	nvp := e.plan.NumVPs()
	m := &engineMetrics{
		reg: reg,
		runs: reg.Counter(obs.Desc{
			Name: "core_runs_total", Unit: "count", Stage: "run",
			Help: "Engine.Run invocations",
		}),
		episodes: reg.Counter(obs.Desc{
			Name: "core_episodes_total", Unit: "count", Stage: "run",
			Help: "memory-budgeted episodes executed",
		}),
		steps: reg.Counter(obs.Desc{
			Name: "core_steps_total", Unit: "count", Stage: "run",
			Help: "pipeline steps executed (episodes × walk length)",
		}),
		walkers: reg.Counter(obs.Desc{
			Name: "core_walkers_total", Unit: "walkers", Stage: "run",
			Help: "walkers advanced across all episodes",
		}),
		sampleStepNS: reg.Histogram(obs.Desc{
			Name: "core_sample_step_ns", Unit: "ns", Stage: "sample",
			Help: "sample-stage wall time per pipeline step",
		}),
		shuffleFwdStepNS: reg.Histogram(obs.Desc{
			Name: "core_shuffle_fwd_step_ns", Unit: "ns", Stage: "shuffle",
			Help: "forward-shuffle (count+scatter+inner) wall time per pipeline step",
		}),
		shuffleRevStepNS: reg.Histogram(obs.Desc{
			Name: "core_shuffle_rev_step_ns", Unit: "ns", Stage: "shuffle",
			Help: "reverse-shuffle (gather) wall time per pipeline step",
		}),
		sampleItems: reg.Histogram(obs.Desc{
			Name: "core_sample_items_per_step", Unit: "count", Stage: "sample",
			Help: "sample-stage work items per step (non-empty partitions plus DS sub-shards)",
		}),
		sampleSubShards: reg.Counter(obs.Desc{
			Name: "core_sample_subshards_total", Unit: "count", Stage: "sample",
			Help: "work items produced by splitting oversized direct-sampling chunks",
		}),
		vpWalkerSteps: reg.CounterVec(obs.Desc{
			Name: "core_vp_walker_steps", Unit: "walkers", Stage: "sample",
			Help: "walker-steps sampled per vertex partition (Fig 10b weighting); index is the VP",
		}, nvp, nil),
		vpSampleNS: reg.CounterVec(obs.Desc{
			Name: "core_vp_sample_ns", Unit: "ns", Stage: "sample",
			Help: "sample wall time accumulated per vertex partition (work items attributed to their VP); index is the VP",
		}, nvp, nil),
		kernelSteps: reg.CounterVec(obs.Desc{
			Name: "core_sample_kernel_walker_steps", Unit: "walkers", Stage: "sample",
			Help: "walker-steps advanced per specialized kernel kind (§4.2 policy mix)",
		}, len(kernelKindNames), kernelKindNames),
		cohortSteps: reg.CounterVec(obs.Desc{
			Name: "core_cohort_walker_steps", Unit: "walkers", Stage: "sample",
			Help: "walker-steps advanced per walk shape (cohorts of mixed runs and solo runs alike)",
		}, len(cohortClassNames), cohortClassNames),
		mixedRuns: reg.Counter(obs.Desc{
			Name: "core_mixed_runs_total", Unit: "count", Stage: "run",
			Help: "RunMixed invocations (multi-cohort shared-pipeline runs)",
		}),
		mixedRunCohorts: reg.Histogram(obs.Desc{
			Name: "core_mixed_run_cohorts", Unit: "count", Stage: "run",
			Help: "cohorts carried per RunMixed invocation",
		}),
		pool: obs.NewPoolMetrics(reg, e.pool.Workers()),
	}
	if proto != nil {
		m.sampleCtx = proto.sampleCtx
		m.vpCtx = proto.vpCtx
		return m
	}
	m.sampleCtx = pprof.WithLabels(context.Background(), pprof.Labels("stage", "sample"))
	m.vpCtx = make([]context.Context, nvp)
	for i := range m.vpCtx {
		m.vpCtx[i] = pprof.WithLabels(context.Background(),
			pprof.Labels("stage", "sample", "vp", strconv.Itoa(i)))
	}
	return m
}

// MetricsReport snapshots the engine-lifetime aggregate registry: the
// fold of every session closed since the engine was built (an open
// session's counts arrive when it closes). Returns nil when the engine
// was created without Config.Metrics.
func (e *Engine) MetricsReport() *obs.Report {
	if e.metrics == nil {
		return nil
	}
	return e.metrics.reg.Snapshot()
}
