package core

import (
	"context"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/part"
)

// stepperWalk drives a full walker population through the per-step
// Stepper API — the way the sharded topology does, minus the exchange —
// and records the per-step positions.
func stepperWalk(t *testing.T, e *Engine, spec *algo.Spec, seed uint64, walkers, steps int) [][]graph.VID {
	t.Helper()
	s, err := e.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.NewStepper(walkers, AuxChannelsFor(spec), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.BindCohort(0, spec); err != nil {
		t.Fatal(err)
	}

	w := make([]graph.VID, walkers)
	wNext := make([]graph.VID, walkers)
	e.InitWalkersSeeded(seed, w)
	channels := AuxChannelsFor(spec)
	aux := make([][]graph.VID, channels)
	auxNext := make([][]graph.VID, channels)
	for c := 0; c < channels; c++ {
		aux[c] = make([]graph.VID, walkers)
		auxNext[c] = make([]graph.VID, walkers)
		copy(aux[c], w)
	}

	rows := make([][]graph.VID, 0, steps+1)
	rows = append(rows, append([]graph.VID(nil), w...))
	for step := 0; step < steps; step++ {
		if err := st.Step(0, seed, step, w, wNext, aux, auxNext); err != nil {
			t.Fatal(err)
		}
		w, wNext = wNext, w
		aux, auxNext = auxNext, aux
		rows = append(rows, append([]graph.VID(nil), w...))
	}
	return rows
}

// TestStepperMatchesRunSeeded pins the Stepper's contract: stepping a
// cohort one step at a time reproduces the closed RunSeeded loop
// bitwise, across kernel families (DS, node2vec aux channels, stop-prob
// restarts) and with sub-sharding forced on.
func TestStepperMatchesRunSeeded(t *testing.T) {
	defer func(old uint64) { SubShardSize = old }(SubShardSize)
	SubShardSize = 32

	g := undirectedTestGraph(t, 600, 9)
	cfg := Config{
		Workers: 4, Seed: 11, Planner: PlannerMCKP, RecordHistory: true,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1},
	}
	for _, tc := range []struct {
		name string
		spec algo.Spec
	}{
		{"deepwalk", algo.DeepWalk()},
		{"node2vec", algo.Node2Vec(0.5, 2)},
		{"pagerank", algo.PageRankWalk(0.85)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := newEngine(t, g, tc.spec, cfg)
			defer e.Close()
			const (
				seed    = 4242
				walkers = 300
				steps   = 6
			)
			ref := seededRun(t, e, seed, walkers, steps)
			rows := stepperWalk(t, e, &tc.spec, seed, walkers, steps)
			if len(rows) != ref.History.NumSteps() {
				t.Fatalf("stepper recorded %d rows, reference %d", len(rows), ref.History.NumSteps())
			}
			for i, row := range rows {
				for j, v := range row {
					if want := ref.History.At(i, j); v != want {
						t.Fatalf("step %d walker %d: stepper %d, RunSeeded %d", i, j, v, want)
					}
				}
			}
		})
	}
}

// TestStepperResize steps a shrinking then regrowing walker prefix —
// the shard runtime's fluctuating local population — and checks each
// step still advances along graph edges.
func TestStepperResize(t *testing.T) {
	g := undirectedTestGraph(t, 400, 2)
	e := newEngine(t, g, algo.DeepWalk(), Config{
		Workers: 2, Seed: 5, Planner: PlannerMCKP,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1},
	})
	defer e.Close()
	s, err := e.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.NewStepper(200, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := algo.DeepWalk()
	if err := st.BindCohort(0, &spec); err != nil {
		t.Fatal(err)
	}
	w := make([]graph.VID, 201)
	wNext := make([]graph.VID, 201)
	e.InitWalkersSeeded(7, w)
	for step, n := range []int{200, 120, 37, 0, 120, 200} {
		if err := st.Step(0, 7, step, w[:n], wNext[:n], nil, nil); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			u, v := w[j], wNext[j]
			ok := u == v && g.Degree(u) == 0
			for _, nb := range g.Neighbors(uint32(u)) {
				if graph.VID(nb) == v {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("step %d walker %d: %d → %d is not an edge", step, j, u, v)
			}
		}
		copy(w[:n], wNext[:n])
	}

	if err := st.Step(0, 7, 0, w[:201], wNext[:201], nil, nil); err == nil {
		t.Fatal("stepping past capacity accepted")
	}
	if err := st.Step(1, 7, 0, w[:10], wNext[:10], nil, nil); err == nil {
		t.Fatal("stepping an unbound slot accepted")
	}
}
