package core

import (
	"runtime"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/part"
	"flashmob/internal/rng"
)

// TestInitEdgeUniformMatchesBinarySearch locks the batched sorted-draw
// placement to the per-walker binary-search reference: same seed, same
// draws, bitwise-identical walker placement.
func TestInitEdgeUniformMatchesBinarySearch(t *testing.T) {
	g := undirectedTestGraph(t, 300, 21)
	for _, walkers := range []int{1, 17, 1000, 5000} {
		got := make([]graph.VID, walkers)
		initEdgeUniform(g, got, rng.NewXorShift1024Star(99))
		want := make([]graph.VID, walkers)
		src := rng.NewXorShift1024Star(99)
		total := g.NumEdges()
		for j := range want {
			want[j] = vertexOfEdge(g, rng.Uint64n(src, total))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("walkers=%d: w[%d] = %d, reference %d", walkers, j, got[j], want[j])
			}
		}
	}
}

// TestEngineSteadyStateStepCost verifies the acceptance criterion on the
// full engine: once an episode is warm, extra steps cost zero heap
// allocations and zero net goroutines — every stage runs on the
// persistent pool with reused scratch.
func TestEngineSteadyStateStepCost(t *testing.T) {
	g := undirectedTestGraph(t, 400, 22)
	e := newEngine(t, g, algo.DeepWalk(), Config{
		Workers: 4,
		Seed:    7,
		Part:    part.Config{TargetGroups: 16},
	})
	defer e.Close()

	mallocsFor := func(steps int) uint64 {
		// One throwaway run warms every lazily-sized buffer.
		if _, err := e.Run(2000, steps); err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := e.Run(2000, steps); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}

	short := mallocsFor(2)
	long := mallocsFor(42)
	// Per-episode setup allocates (walker arrays, RNG streams); the 40
	// extra steps must not. Allow a little noise from the runtime itself.
	const slack = 20
	if long > short+slack {
		t.Errorf("42-step run allocated %d objects vs %d for 2 steps: ~%.1f allocs per extra step, want 0",
			long, short, float64(long-short)/40)
	}

	// Goroutine count must stay flat across the step loop: the pool is
	// created with the engine, so steps spawn nothing.
	var counts []int
	e.cfg.StepSink = func(step int, cur, next []graph.VID) {
		counts = append(counts, runtime.NumGoroutine())
	}
	if _, err := e.Run(2000, 12); err != nil {
		t.Fatal(err)
	}
	e.cfg.StepSink = nil
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("goroutine count drifted during step loop: %v", counts)
		}
	}
}

// TestEngineRaceMultiWorker exercises the pooled pipeline — shuffle
// phases, parallel inner shuffle, sample stage — with many workers and
// aux channels so `go test -race` can check the barriers. Also serves as
// a correctness smoke test for walks produced through the pooled path.
func TestEngineRaceMultiWorker(t *testing.T) {
	g := undirectedTestGraph(t, 300, 23)
	for _, spec := range []algo.Spec{algo.DeepWalk(), algo.Node2Vec(2, 0.5)} {
		e := newEngine(t, g, spec, Config{
			Workers:       8,
			Seed:          11,
			RecordHistory: true,
			Part:          part.Config{TargetGroups: 16},
		})
		res, err := e.Run(4000, 6)
		if err != nil {
			t.Fatal(err)
		}
		checkPathsAreWalks(t, g, res.History)
		e.Close()
	}
}
