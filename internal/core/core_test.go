package core

import (
	"math"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/part"
	"flashmob/internal/profile"
)

// undirectedTestGraph builds a small degree-sorted undirected power-law
// graph (symmetric edges, so the uniform walk's stationary distribution is
// proportional to degree).
func undirectedTestGraph(t testing.TB, n uint32, seed uint64) *graph.CSR {
	t.Helper()
	dir, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: n, AvgDegree: 6, Alpha: 0.7, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	for v := uint32(0); v < dir.NumVertices(); v++ {
		for _, w := range dir.Neighbors(v) {
			if v != w {
				edges = append(edges, graph.Edge{Src: v, Dst: w})
			}
		}
	}
	res, err := graph.Build(edges, graph.BuildOptions{Undirected: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	return graph.SortByDegreeDesc(res.Graph).Graph
}

func newEngine(t *testing.T, g *graph.CSR, spec algo.Spec, cfg Config) *Engine {
	t.Helper()
	e, err := New(g, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// checkPathsAreWalks verifies every recorded transition follows a graph
// edge (or stays on a dead end).
func checkPathsAreWalks(t *testing.T, g *graph.CSR, h interface {
	NumSteps() int
	NumWalkers() int
	At(i, j int) graph.VID
}) {
	t.Helper()
	for j := 0; j < h.NumWalkers(); j++ {
		for i := 0; i+1 < h.NumSteps(); i++ {
			u, v := h.At(i, j), h.At(i+1, j)
			if u == v && g.Degree(u) == 0 {
				continue // dead end stays
			}
			if !g.HasEdge(u, v) {
				t.Fatalf("walker %d step %d: %d→%d is not an edge", j, i, u, v)
			}
		}
	}
}

func TestEngineProducesValidWalks(t *testing.T) {
	g := undirectedTestGraph(t, 2000, 1)
	for _, workers := range []int{1, 4} {
		e := newEngine(t, g, algo.DeepWalk(), Config{
			Workers: workers, Seed: 7, RecordHistory: true,
			Part: part.Config{TargetGroups: 16},
		})
		res, err := e.Run(3000, 12)
		if err != nil {
			t.Fatal(err)
		}
		if res.History == nil || res.History.NumSteps() != 13 {
			t.Fatalf("workers=%d: history has %d steps, want 13", workers, res.History.NumSteps())
		}
		checkPathsAreWalks(t, g, res.History)
	}
}

func TestEngineStationaryDistribution(t *testing.T) {
	// Uniform walk on an undirected graph converges to π(v) ∝ deg(v).
	g := undirectedTestGraph(t, 300, 2)
	e := newEngine(t, g, algo.DeepWalk(), Config{
		Workers: 2, Seed: 3, RecordHistory: true, Init: InitEdgeUniform,
		Part: part.Config{TargetGroups: 8},
	})
	res, err := e.Run(60000, 10)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	// Use only the final position (already stationary under edge-uniform
	// init).
	counts := make([]float64, g.NumVertices())
	last := h.NumSteps() - 1
	for j := 0; j < h.NumWalkers(); j++ {
		counts[h.At(last, j)]++
	}
	total := float64(h.NumWalkers())
	sumDeg := float64(g.NumEdges())
	// Check the head vertices (highest degree → most visits → tight
	// relative error).
	for v := uint32(0); v < 10; v++ {
		want := float64(g.Degree(v)) / sumDeg
		got := counts[v] / total
		if want > 0.005 && math.Abs(got-want) > 0.25*want {
			t.Errorf("vertex %d: visit share %.4f, stationary %.4f", v, got, want)
		}
	}
}

func TestEngineFirstStepUniform(t *testing.T) {
	// All walkers start at vertex 0; after one step they must be uniform
	// over its neighbours — exercising the PS path (vertex 0 has the
	// highest degree, so with the MCKP plan it lands in a PS partition on
	// skewed graphs, and regardless this checks distributional
	// correctness end to end).
	g := undirectedTestGraph(t, 12, 4)
	plan, err := part.PlanUniform(g, part.Config{MaxBins: 64}, profile.PS)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, algo.DeepWalk(), Config{
		Workers: 1, Seed: 5, RecordHistory: true, Plan: plan,
	})
	const walkers = 40000
	// Sequential init starting everything at 0: use a one-vertex "mod"
	// trick — InitVertexSequential spreads walkers, so instead run with
	// custom init by exploiting InitVertexSequential on a single-vertex
	// range: simpler to just run and check conditional transitions.
	res, err := e.Run(walkers, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	// Conditional check: group transitions by source vertex; for sources
	// with many observations, targets must be ≈ uniform over neighbours.
	trans := map[graph.VID]map[graph.VID]int{}
	for j := 0; j < h.NumWalkers(); j++ {
		u, v := h.At(0, j), h.At(1, j)
		if trans[u] == nil {
			trans[u] = map[graph.VID]int{}
		}
		trans[u][v]++
	}
	checked := 0
	for u, m := range trans {
		var n int
		for _, c := range m {
			n += c
		}
		if n < 2000 || g.Degree(u) == 0 {
			continue
		}
		d := float64(g.Degree(u))
		for v, c := range m {
			if !g.HasEdge(u, v) {
				t.Fatalf("transition %d→%d is not an edge", u, v)
			}
			got := float64(c) / float64(n)
			want := 1 / d
			if math.Abs(got-want) > 0.35*want+0.01 {
				t.Errorf("P(%d→%d) = %.4f, want %.4f", u, v, got, want)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no source vertex had enough observations")
	}
}

func TestEnginePSAndDSAgree(t *testing.T) {
	// The two policies implement the same process: visit distributions
	// after several steps must agree within sampling noise.
	g := undirectedTestGraph(t, 400, 6)
	countsFor := func(planner PlannerKind) []uint64 {
		e := newEngine(t, g, algo.DeepWalk(), Config{
			Workers: 1, Seed: 9, RecordHistory: true, Planner: planner,
			Init: InitEdgeUniform, Part: part.Config{TargetGroups: 8},
		})
		res, err := e.Run(50000, 6)
		if err != nil {
			t.Fatal(err)
		}
		return res.History.VisitCounts(g.NumVertices())
	}
	ps := countsFor(PlannerUniformPS)
	ds := countsFor(PlannerUniformDS)
	var totPS, totDS float64
	for v := range ps {
		totPS += float64(ps[v])
		totDS += float64(ds[v])
	}
	for v := uint32(0); v < 20; v++ {
		a := float64(ps[v]) / totPS
		b := float64(ds[v]) / totDS
		if a > 0.004 && math.Abs(a-b) > 0.2*a {
			t.Errorf("vertex %d: PS share %.4f vs DS share %.4f", v, a, b)
		}
	}
}

func TestEngineNode2Vec(t *testing.T) {
	g := undirectedTestGraph(t, 800, 7)
	e := newEngine(t, g, algo.Node2Vec(0.5, 2), Config{
		Workers: 2, Seed: 11, RecordHistory: true,
		Part: part.Config{TargetGroups: 8},
	})
	res, err := e.Run(2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkPathsAreWalks(t, g, res.History)
}

func TestEngineNode2VecReturnBias(t *testing.T) {
	// Small p strongly favours returning to the predecessor; compare
	// return rates between p=0.1 and p=10.
	g := undirectedTestGraph(t, 500, 8)
	rate := func(p float64) float64 {
		e := newEngine(t, g, algo.Node2Vec(p, 1), Config{
			Workers: 1, Seed: 13, RecordHistory: true,
			Part: part.Config{TargetGroups: 8},
		})
		res, err := e.Run(20000, 4)
		if err != nil {
			t.Fatal(err)
		}
		h := res.History
		var returns, moves int
		for j := 0; j < h.NumWalkers(); j++ {
			for i := 2; i < h.NumSteps(); i++ {
				if h.At(i, j) == h.At(i-2, j) {
					returns++
				}
				moves++
			}
		}
		return float64(returns) / float64(moves)
	}
	low, high := rate(10), rate(0.1)
	if high < low*1.5 {
		t.Errorf("return bias missing: p=0.1 rate %.3f vs p=10 rate %.3f", high, low)
	}
}

func TestEngineEpisodes(t *testing.T) {
	g := undirectedTestGraph(t, 300, 9)
	e := newEngine(t, g, algo.DeepWalk(), Config{
		Workers: 1, Seed: 15, MemoryBudget: 1200, // 100 walkers/episode
		Part: part.Config{TargetGroups: 8},
	})
	res, err := e.Run(1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes != 10 {
		t.Errorf("episodes = %d, want 10", res.Episodes)
	}
	if res.Walkers != 1000 || res.TotalSteps != 5000 {
		t.Errorf("walkers = %d totalSteps = %d", res.Walkers, res.TotalSteps)
	}
}

func TestEngineVPStepsAccounting(t *testing.T) {
	g := undirectedTestGraph(t, 600, 10)
	e := newEngine(t, g, algo.DeepWalk(), Config{
		Workers: 3, Seed: 17, Part: part.Config{TargetGroups: 8},
	})
	res, err := e.Run(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, s := range res.VPSteps {
		sum += s
	}
	if sum != res.TotalSteps {
		t.Errorf("VPSteps sum %d != TotalSteps %d", sum, res.TotalSteps)
	}
	if res.PerStepNS() <= 0 {
		t.Error("PerStepNS not positive")
	}
	if res.SampleTime <= 0 || res.ShuffleTime <= 0 {
		t.Error("stage times not positive")
	}
}

func TestEngineRestartWalk(t *testing.T) {
	// PageRank-style walk: visit frequency must match power iteration.
	g := undirectedTestGraph(t, 200, 11)
	damping := 0.85
	e := newEngine(t, g, algo.PageRankWalk(damping), Config{
		Workers: 2, Seed: 19, RecordHistory: true, Init: InitVertexUniform,
		Part: part.Config{TargetGroups: 8},
	})
	res, err := e.Run(20000, 40)
	if err != nil {
		t.Fatal(err)
	}
	counts := res.History.VisitCounts(g.NumVertices())
	var total float64
	for _, c := range counts {
		total += float64(c)
	}
	// Power iteration reference.
	n := int(g.NumVertices())
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	for iter := 0; iter < 60; iter++ {
		for i := range next {
			next[i] = (1 - damping) / float64(n)
		}
		for u := 0; u < n; u++ {
			adj := g.Neighbors(uint32(u))
			if len(adj) == 0 {
				next[u] += damping * pr[u] // dead end stays (engine semantics)
				continue
			}
			share := damping * pr[u] / float64(len(adj))
			for _, v := range adj {
				next[v] += share
			}
		}
		pr, next = next, pr
	}
	for v := 0; v < 15; v++ {
		got := float64(counts[v]) / total
		if pr[v] > 0.004 && math.Abs(got-pr[v]) > 0.3*pr[v] {
			t.Errorf("vertex %d: walk PR %.4f vs power iteration %.4f", v, got, pr[v])
		}
	}
}

func TestEngineWeightedWalk(t *testing.T) {
	// Two-vertex weighted graph: heavy edge taken ~75% of the time.
	res, err := graph.Build([]graph.Edge{
		{Src: 0, Dst: 1, Weight: 3}, {Src: 0, Dst: 2, Weight: 1},
		{Src: 1, Dst: 0, Weight: 1}, {Src: 2, Dst: 0, Weight: 1},
	}, graph.BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.SortByDegreeDesc(res.Graph).Graph
	spec := algo.DeepWalk()
	spec.Weighted = true
	e := newEngine(t, g, spec, Config{
		Workers: 1, Seed: 21, RecordHistory: true,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1},
	})
	r, err := e.Run(30000, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := r.History
	// Count transitions out of the (sorted) vertex that has 2 neighbours.
	var hub graph.VID
	for v := uint32(0); v < g.NumVertices(); v++ {
		if g.Degree(v) == 2 {
			hub = v
		}
	}
	heavy, totalOut := 0, 0
	wts := g.EdgeWeights(hub)
	adj := g.Neighbors(hub)
	heavyTarget := adj[0]
	if wts[1] > wts[0] {
		heavyTarget = adj[1]
	}
	for j := 0; j < h.NumWalkers(); j++ {
		for i := 0; i+1 < h.NumSteps(); i++ {
			if h.At(i, j) == hub {
				totalOut++
				if h.At(i+1, j) == heavyTarget {
					heavy++
				}
			}
		}
	}
	if totalOut < 1000 {
		t.Fatalf("too few observations: %d", totalOut)
	}
	share := float64(heavy) / float64(totalOut)
	if math.Abs(share-0.75) > 0.05 {
		t.Errorf("heavy-edge share %.3f, want ≈0.75", share)
	}
}

func TestEngineErrors(t *testing.T) {
	g := undirectedTestGraph(t, 200, 12)
	if _, err := New(g, algo.Spec{Order: 5, Steps: 1}, Config{}); err == nil {
		t.Error("bad spec accepted")
	}
	spec := algo.DeepWalk()
	spec.Weighted = true
	if _, err := New(g, spec, Config{}); err == nil {
		t.Error("weighted walk on unweighted graph accepted")
	}
	// Unsorted graph rejected.
	n := g.NumVertices()
	fwd := make([]graph.VID, n)
	bwd := make([]graph.VID, n)
	for i := uint32(0); i < n; i++ {
		fwd[i], bwd[n-1-i] = n-1-i, i
	}
	if _, err := New(graph.Relabel(g, fwd, bwd), algo.DeepWalk(), Config{}); err == nil {
		t.Error("unsorted graph accepted")
	}
	e := newEngine(t, g, algo.DeepWalk(), Config{Part: part.Config{TargetGroups: 8}})
	if _, err := e.Run(10, -1); err == nil {
		t.Error("negative steps accepted")
	}
}

func TestEngineDefaultsToSpecSteps(t *testing.T) {
	g := undirectedTestGraph(t, 200, 13)
	e := newEngine(t, g, algo.DeepWalk(), Config{Part: part.Config{TargetGroups: 8}})
	res, err := e.Run(50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 80 {
		t.Errorf("steps = %d, want DeepWalk default 80", res.Steps)
	}
}

func TestVertexOfEdge(t *testing.T) {
	g := undirectedTestGraph(t, 100, 14)
	for x := uint64(0); x < g.NumEdges(); x += 7 {
		v := vertexOfEdge(g, x)
		if x < g.Offsets[v] || x >= g.Offsets[v+1] {
			t.Fatalf("edge %d mapped to vertex %d with range [%d,%d)", x, v, g.Offsets[v], g.Offsets[v+1])
		}
	}
}
