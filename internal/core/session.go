package core

import (
	"context"

	"flashmob/internal/graph"
)

// psState holds one PS partition's pre-sampled edge buffers (§4.2): buf
// packs d(v) pre-drawn targets per vertex at the vertex's own CSR edge
// offset (rebased to the partition), remaining counts the unconsumed
// samples. The buffers are consumed and refilled as the walk progresses,
// which is exactly why they are session state: two concurrent runs
// sharing one buffer would interleave their consumption and destroy both
// determinism and the refill accounting.
type psState struct {
	start     graph.VID
	base      uint64
	buf       []graph.VID
	remaining []uint32
}

// Session owns the mutable state of one run on an immutable Engine build:
// the PS buffers, the session's copy of the kernel table (bound to those
// buffers), the sample task and its work-item list, the per-worker
// scratches, and — when metrics are on — a per-session registry whose
// snapshot becomes that run's Result.Report and which folds into the
// engine aggregate on Close.
//
// A Session is single-goroutine: one Run at a time per session. Engine
// concurrency comes from multiple sessions — NewSession is safe to call
// from concurrent goroutines and sessions interleave their stage phases
// on the engine's shared worker pool.
type Session struct {
	e   *Engine
	ctx context.Context

	// ps[i] is partition i's pre-sample state (nil for DS partitions).
	// Fresh on every acquisition: remaining is cleared, so a session's
	// trajectories depend only on (engine seed, episode, step, partition,
	// sub-shard) — bitwise-identical whether runs execute serially on one
	// engine or concurrently on many sessions.
	ps []*psState

	// kern is the session's copy of the engine's kernel table with st
	// bound to the session's psState. Re-copied from the template on every
	// acquisition, so engine-side rebuilds (tests force fallback kernels)
	// are picked up.
	kern []vpKernel

	// cx is the session's primary sampling context: the engine's spec
	// bound to the session's kern/ps above. Every solo run samples through
	// it; mixed runs use per-cohort contexts instead (cohorts below).
	cx cohortCtx

	// cohorts holds pooled per-cohort state for RunMixed (private PS
	// buffers and kernel tables, one entry per cohort slot), grown on
	// demand and reused across the session's mixed runs.
	cohorts []*cohortState

	// sample is the session's pool task for the sample stage, re-armed per
	// step; items is its reusable work-item list.
	sample sampleTask

	// scratches holds one reusable scratch per pool worker (RNG + batched
	// second-order buffers), stable across the session's episodes.
	scratches []*sampleScratch

	// ov is the session's delta overlay (nil for plain sessions): set at
	// acquisition by NewSessionOverlay and propagated into every sampling
	// context the session's runs build, never mutated mid-run.
	ov *Overlay

	// m is the session's metric set (nil unless Config.Metrics): a fresh
	// registry per acquisition sharing the engine's pprof label contexts.
	m *engineMetrics

	// runSeed is the seed of the run in progress: Config.Seed for Run,
	// the caller's override for RunSeeded. Set at the top of every run,
	// never read outside one.
	runSeed uint64

	closed bool
}

// NewSession acquires a run handle on the engine. A nil ctx means
// context.Background(); a canceled ctx aborts the session's Run between
// pipeline steps with the context's error. Sessions are pooled: Close
// returns the PS buffers and scratches for reuse. Returns ErrClosed after
// Engine.Close.
func (e *Engine) NewSession(ctx context.Context) (*Session, error) {
	return e.NewSessionOverlay(ctx, nil)
}

// NewSessionOverlay is NewSession with a frozen delta overlay bound to the
// session: every run samples partitions the overlay touches over base ∪
// delta adjacency, all other partitions through the unmodified kernels.
// A non-empty overlay restricts the session's runs to first-order
// history-free specs (see Overlay). A nil overlay is exactly NewSession.
func (e *Engine) NewSessionOverlay(ctx context.Context, ov *Overlay) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	e.active.Add(1)
	e.mu.Unlock()
	s, _ := e.sessions.Get().(*Session)
	if s == nil {
		s = e.newSessionState()
	}
	s.rebind()
	s.ov = ov
	s.cx.ov = ov
	s.ctx = ctx
	s.closed = false
	if e.cfg.Metrics {
		s.m = newEngineMetrics(e, e.metrics)
		s.sample.m = s.m
	}
	return s, nil
}

// newSessionState allocates a session's buffers: PS state per PS
// partition (the dominant cost — one VID per edge of the partition) and
// one scratch per pool worker.
func (e *Engine) newSessionState() *Session {
	s := &Session{
		e:    e,
		ps:   make([]*psState, e.plan.NumVPs()),
		kern: make([]vpKernel, e.plan.NumVPs()),
	}
	for i, vp := range e.plan.VPs {
		if !e.psVP[i] {
			continue
		}
		edges := e.g.Offsets[vp.End] - e.g.Offsets[vp.Start]
		s.ps[i] = &psState{
			start:     vp.Start,
			base:      e.g.Offsets[vp.Start],
			buf:       make([]graph.VID, edges),
			remaining: make([]uint32, vp.End-vp.Start),
		}
	}
	s.scratches = make([]*sampleScratch, e.pool.Workers())
	for i := range s.scratches {
		s.scratches[i] = newSampleScratch()
	}
	s.sample.s = s
	s.cx = cohortCtx{e: e, spec: &e.spec, kern: s.kern, ps: s.ps,
		weighted: e.weighted, class: classifySpec(&e.spec)}
	return s
}

// rebind refreshes the session's kernel table from the engine template
// and resets the PS buffers to empty, making the acquisition
// indistinguishable from a freshly built session.
func (s *Session) rebind() {
	copy(s.kern, s.e.kern)
	for i, st := range s.ps {
		if st == nil {
			continue
		}
		clear(st.remaining)
		s.kern[i].st = st
	}
}

// Close releases the session: its metrics fold into the engine-lifetime
// aggregate, its buffers return to the engine's session pool, and the
// engine's Close (if waiting) is unblocked. Idempotent. A held Session
// must be Closed before Engine.Close can return.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	e := s.e
	if s.m != nil {
		s.m.reg.FoldInto(e.metrics.reg)
		s.m = nil
		s.sample.m = nil
	}
	s.ctx = nil
	e.sessions.Put(s)
	e.active.Done()
}
