package core

import (
	"bytes"
	"runtime"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/obs"
	"flashmob/internal/part"
)

// metricsConfig is the shared engine config of the metrics tests.
func metricsConfig(workers int) Config {
	return Config{
		Workers: workers,
		Seed:    7,
		Metrics: true,
		Part:    part.Config{TargetGroups: 16},
	}
}

// TestMetricsReportAttached verifies the on/off contract: with
// Config.Metrics the Result carries a Report whose run-shape counters
// match the run; without it the Report is nil and no metrics state exists.
func TestMetricsReportAttached(t *testing.T) {
	g := undirectedTestGraph(t, 300, 31)

	off := newEngine(t, g, algo.DeepWalk(), Config{Workers: 2, Seed: 7})
	defer off.Close()
	res, err := off.Run(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != nil {
		t.Fatalf("metrics off: Result.Report = %v, want nil", res.Report)
	}
	if off.MetricsReport() != nil {
		t.Fatal("metrics off: MetricsReport() non-nil")
	}

	on := newEngine(t, g, algo.DeepWalk(), metricsConfig(2))
	defer on.Close()
	res, err = on.Run(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep == nil {
		t.Fatal("metrics on: Result.Report is nil")
	}
	if rep.SchemaVersion != obs.ReportSchemaVersion {
		t.Fatalf("schema version %d, want %d", rep.SchemaVersion, obs.ReportSchemaVersion)
	}
	want := map[string]uint64{
		"core_runs_total":     1,
		"core_episodes_total": 1,
		"core_steps_total":    4,
		"core_walkers_total":  1000,
		"pool_runs_total":     4 * 4, // sample + count + scatter + gather per step
	}
	for name, v := range want {
		c, ok := rep.Counter(name)
		if !ok {
			t.Fatalf("counter %q missing from report", name)
		}
		if c.Value != v {
			t.Errorf("%s = %d, want %d", name, c.Value, v)
		}
	}
	kern, ok := rep.Vector("core_sample_kernel_walker_steps")
	if !ok {
		t.Fatal("kernel vector missing")
	}
	vp, ok := rep.Vector("core_vp_walker_steps")
	if !ok {
		t.Fatal("vp vector missing")
	}
	// Every sampled walker-step is attributed exactly once in both the
	// kernel view and the partition view.
	if kern.Total() != 4*1000 || vp.Total() != 4*1000 {
		t.Errorf("walker-step attribution: kernel %d, vp %d, want %d", kern.Total(), vp.Total(), 4*1000)
	}
}

// TestMetricsSnapshotDeterminism locks the deterministic subset of the
// report: trajectories are worker-count-independent (seeds derive from
// (episode, step, vp)), so the structural counters and walker-step vectors
// of two same-seed runs must match exactly — even across different worker
// counts. Time-valued metrics are excluded by construction (the unit
// filter keeps everything except "ns").
func TestMetricsSnapshotDeterminism(t *testing.T) {
	g := undirectedTestGraph(t, 400, 32)

	snap := func(workers int) *obs.Report {
		e := newEngine(t, g, algo.DeepWalk(), metricsConfig(workers))
		defer e.Close()
		if _, err := e.Run(2000, 6); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(2000, 6)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report
	}

	a, b := snap(1), snap(4)
	for _, c := range a.Counters {
		if c.Unit == "ns" {
			continue
		}
		// pool_runs_total counts phase barriers, identical across worker
		// counts; all core_* count/walkers counters are structural.
		bc, ok := b.Counter(c.Name)
		if !ok {
			t.Fatalf("counter %q missing from second run", c.Name)
		}
		if bc.Value != c.Value {
			t.Errorf("%s: %d (1 worker) vs %d (4 workers)", c.Name, c.Value, bc.Value)
		}
	}
	for _, v := range a.Vectors {
		if v.Unit == "ns" {
			continue
		}
		bv, ok := b.Vector(v.Name)
		if !ok {
			t.Fatalf("vector %q missing from second run", v.Name)
		}
		for i := range v.Values {
			if v.Values[i] != bv.Values[i] {
				t.Errorf("%s[%d]: %d vs %d", v.Name, i, v.Values[i], bv.Values[i])
			}
		}
	}
	for _, h := range a.Histograms {
		if h.Unit == "ns" {
			continue
		}
		bh, ok := b.Histogram(h.Name)
		if !ok || bh.Count != h.Count || bh.Sum != h.Sum {
			t.Errorf("%s: count/sum %d/%d vs %d/%d", h.Name, h.Count, h.Sum, bh.Count, bh.Sum)
		}
	}
}

// TestMetricsStableJSON verifies report stability end to end: two
// identically-seeded single-worker runs must serialize to byte-identical
// JSON once time-valued metrics are zeroed out of both.
func TestMetricsStableJSON(t *testing.T) {
	g := undirectedTestGraph(t, 300, 33)
	run := func() *obs.Report {
		e := newEngine(t, g, algo.DeepWalk(), metricsConfig(1))
		defer e.Close()
		res, err := e.Run(1000, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report
	}
	scrub := func(r *obs.Report) {
		for i := range r.Counters {
			if r.Counters[i].Unit == "ns" {
				r.Counters[i].Value = 0
			}
		}
		for i := range r.Vectors {
			if r.Vectors[i].Unit != "ns" {
				continue
			}
			for j := range r.Vectors[i].Values {
				r.Vectors[i].Values[j] = 0
			}
		}
		for i := range r.Histograms {
			if r.Histograms[i].Unit == "ns" {
				r.Histograms[i].Sum = 0
				r.Histograms[i].Buckets = nil
			}
		}
	}
	var bufA, bufB bytes.Buffer
	ra, rb := run(), run()
	scrub(ra)
	scrub(rb)
	if err := ra.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := rb.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Errorf("same-seed reports differ:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
}

// TestMetricsSteadyStateStepCost extends the zero-alloc acceptance
// criterion to the metered engine: recording counters, histograms, and
// pprof labels must not allocate in the step loop (all contexts and metric
// cells are resolved at build time).
func TestMetricsSteadyStateStepCost(t *testing.T) {
	g := undirectedTestGraph(t, 400, 34)
	e := newEngine(t, g, algo.DeepWalk(), metricsConfig(4))
	defer e.Close()

	mallocsFor := func(steps int) uint64 {
		if _, err := e.Run(2000, steps); err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := e.Run(2000, steps); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}

	short := mallocsFor(2)
	long := mallocsFor(42)
	// Per-run work (episode setup, the end-of-run snapshot) allocates; the
	// 40 extra metered steps must not.
	const slack = 20
	if long > short+slack {
		t.Errorf("42-step metered run allocated %d objects vs %d for 2 steps: ~%.1f allocs per extra step, want 0",
			long, short, float64(long-short)/40)
	}
}

// benchStepEngine builds a small warm engine for the per-step overhead
// benchmarks.
func benchStepEngine(b *testing.B, metrics bool) *Engine {
	b.Helper()
	g := undirectedTestGraph(b, 600, 35)
	cfg := Config{Workers: 2, Seed: 7, Metrics: metrics, Part: part.Config{TargetGroups: 16}}
	e, err := New(g, algo.DeepWalk(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Run(4000, 2); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkEngineStepMetricsOff/On guard the acceptance criterion that
// the metrics-off hot path compiles down to nil checks: compare ns/op of
// the two to measure the recording overhead (EXPERIMENTS.md records the
// numbers).
func BenchmarkEngineStepMetricsOff(b *testing.B) {
	e := benchStepEngine(b, false)
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(4000, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineStepMetricsOn(b *testing.B) {
	e := benchStepEngine(b, true)
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(4000, 8); err != nil {
			b.Fatal(err)
		}
	}
}
