package core

import (
	"fmt"
	"time"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/rng"
	"flashmob/internal/walk"
)

// InitWalkersSeeded fills w with the start placement a solo RunSeeded
// (episode 0) or a mixed-run cohort with this seed would use: every init
// mode draws from the same derived source, so a sharded topology that
// places walkers centrally and scatters them by owner reproduces the
// single-engine placement exactly.
func (e *Engine) InitWalkersSeeded(seed uint64, w []graph.VID) {
	e.initWalkers(w, rng.NewXorShift1024Star(rng.Mix64(seed^0x9e3779b97f4a7c15)))
}

// AuxChannelsFor returns the aux (predecessor) channel count walkers of
// the spec carry through the shuffle: k-1 for order-k history walks, 1
// for node2vec, 0 otherwise. Exported so the sharded topology and its
// wire protocol size per-walker records without re-deriving the rule.
func AuxChannelsFor(sp *algo.Spec) int { return auxChannelsFor(sp) }

// Stepper drives the session's sample→shuffle pipeline one cohort-step
// at a time instead of a whole run at once. It exists for the sharded
// topology (internal/shard): a shard advances its local walkers by one
// step, hands emigrants to the cross-shard exchange, and resumes with a
// different local walker set next superstep — a rhythm RunMixed's closed
// step loop cannot express. Each Step is exactly one iteration of
// runEpisode's loop (forward shuffle → sample → reverse gather) under
// the bound cohort's private context, with the cohort's own
// (seed, episode 0, step) sample-seed schedule; because the schedule
// keys on global partition indices and chunk-local sub-shard offsets,
// stepping a shard's local walkers draws the same randomness the
// single-engine run would for those walkers.
//
// A Stepper belongs to its Session and follows the same discipline: one
// goroutine, one Step at a time. The walker arrays are the caller's —
// the stepper only owns the shuffled intermediates.
type Stepper struct {
	s        *Session
	shuffler *walk.Shuffler
	slots    []*cohortState
	specs    []*algo.Spec
	max      int
	cur      int // current shuffler size, to skip redundant Resizes
	sw       []graph.VID
	auxSW    [][]graph.VID
	views    [][]graph.VID // per-call channel views of auxSW, reused
	vpSteps  []uint64
}

// NewStepper builds a per-step driver sized for maxWalkers walkers,
// channels aux channels, and the given number of cohort slots. The
// session's pooled cohort state backs the slots, so steppers acquired
// across runs on one session reuse the PS buffers.
func (s *Session) NewStepper(maxWalkers, channels, cohorts int) (*Stepper, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if maxWalkers <= 0 {
		return nil, fmt.Errorf("core: stepper needs a positive walker capacity")
	}
	if cohorts <= 0 {
		return nil, fmt.Errorf("core: stepper needs at least one cohort slot")
	}
	e := s.e
	shuffler, err := walk.NewShufflerPool(e.plan, maxWalkers, e.pool)
	if err != nil {
		return nil, err
	}
	if s.m != nil {
		shuffler.SetPprofLabels(true)
		shuffler.SetPoolMetrics(s.m.pool)
	}
	st := &Stepper{
		s:        s,
		shuffler: shuffler,
		slots:    s.cohortSlots(cohorts),
		specs:    make([]*algo.Spec, cohorts),
		max:      maxWalkers,
		cur:      maxWalkers,
		sw:       make([]graph.VID, maxWalkers),
		auxSW:    make([][]graph.VID, channels),
		views:    make([][]graph.VID, 0, channels),
		vpSteps:  make([]uint64, e.plan.NumVPs()),
	}
	for c := range st.auxSW {
		st.auxSW[c] = make([]graph.VID, maxWalkers)
	}
	return st, nil
}

// BindCohort arms slot k for a cohort of the given spec: the slot's
// kernel table is rebuilt for the spec's weighting and its PS buffers
// reset to empty, exactly as a mixed run binds its cohorts. Admission
// follows RunMixed's rules (ResolveCohorts). The spec must stay alive
// and unmodified while bound.
func (st *Stepper) BindCohort(k int, spec *algo.Spec) error {
	if k < 0 || k >= len(st.specs) {
		return fmt.Errorf("core: cohort slot %d out of range [0, %d)", k, len(st.specs))
	}
	if _, _, err := st.s.e.ResolveCohorts([]Cohort{{Spec: *spec, Walkers: 1, Steps: 1}}); err != nil {
		return err
	}
	if ch := auxChannelsFor(spec); ch > len(st.auxSW) {
		return fmt.Errorf("core: spec needs %d aux channels but the stepper was built with %d", ch, len(st.auxSW))
	}
	st.slots[k].bind(st.s.e, spec)
	st.specs[k] = spec
	return nil
}

// Step advances cohort k's walkers in w by one step: w is forward-
// shuffled into partition order, sampled in place under the cohort's
// context with the (seed, episode 0, step) item-seed schedule, and
// reverse-gathered into wNext. aux/auxNext carry the cohort's
// predecessor channels (exactly AuxChannelsFor of its spec) and are
// permuted identically with the walkers. len(w) may differ call to call
// — up to the stepper's capacity — which is how the sharded topology
// steps a fluctuating local walker population.
func (st *Stepper) Step(k int, seed uint64, step int, w, wNext []graph.VID, aux, auxNext [][]graph.VID) error {
	s := st.s
	if s.closed {
		return ErrClosed
	}
	if err := s.ctx.Err(); err != nil {
		return err
	}
	if k < 0 || k >= len(st.specs) || st.specs[k] == nil {
		return fmt.Errorf("core: cohort slot %d is not bound", k)
	}
	n := len(w)
	if len(wNext) != n {
		return fmt.Errorf("core: walker arrays disagree: %d vs %d", n, len(wNext))
	}
	if n > st.max {
		return fmt.Errorf("core: %d walkers exceed the stepper's %d capacity", n, st.max)
	}
	channels := auxChannelsFor(st.specs[k])
	if len(aux) != channels || len(auxNext) != channels {
		return fmt.Errorf("core: spec carries %d aux channels, got %d in / %d out", channels, len(aux), len(auxNext))
	}
	for c := 0; c < channels; c++ {
		if len(aux[c]) != n || len(auxNext[c]) != n {
			return fmt.Errorf("core: aux channel %d length disagrees with %d walkers", c, n)
		}
	}
	if n == 0 {
		return nil
	}
	if n != st.cur {
		if err := st.shuffler.Resize(n); err != nil {
			return err
		}
		st.cur = n
	}
	sw := st.sw[:n]
	views := st.views[:0]
	for c := 0; c < channels; c++ {
		views = append(views, st.auxSW[c][:n])
	}
	st.views = views

	t0 := time.Now()
	if err := st.shuffler.ForwardMulti(w, sw, aux, views); err != nil {
		return err
	}
	t1 := time.Now()
	s.sampleCohort(SampleSeedPrefix(seed, 0, step), &st.slots[k].cx, st.shuffler.VPStart(), sw, views, st.vpSteps)
	t2 := time.Now()
	if err := st.shuffler.ReverseMulti(w, sw, wNext, views, auxNext); err != nil {
		return err
	}
	t3 := time.Now()
	if m := s.m; m != nil {
		m.steps.Inc()
		m.shuffleFwdStepNS.Observe(uint64(t1.Sub(t0)))
		m.sampleStepNS.Observe(uint64(t2.Sub(t1)))
		m.shuffleRevStepNS.Observe(uint64(t3.Sub(t2)))
	}
	return nil
}

// VPSteps returns the per-partition walker-step counts accumulated
// across the stepper's Steps (the Figure 10b weighting, per shard).
func (st *Stepper) VPSteps() []uint64 { return st.vpSteps }
