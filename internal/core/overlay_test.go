package core

import (
	"context"
	"strings"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/part"
)

// overlayRun executes one RunSeeded on a fresh overlay session.
func overlayRun(t *testing.T, e *Engine, ov *Overlay, seed uint64, walkers uint64, steps int) *Result {
	t.Helper()
	s, err := e.NewSessionOverlay(context.Background(), ov)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.RunSeeded(seed, walkers, steps)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// overlayDelta builds a small delta batch inside the engine's vertex space:
// edges between the low-degree tail and scattered targets, plus a couple of
// duplicates and one edge already in the base (all must dedup cleanly).
func overlayDelta(g *graph.CSR) []graph.Edge {
	n := g.NumVertices()
	delta := []graph.Edge{
		{Src: n - 1, Dst: 0},
		{Src: n - 1, Dst: n / 2},
		{Src: n - 1, Dst: n / 2}, // in-batch duplicate
		{Src: n - 2, Dst: 1},
		{Src: n / 2, Dst: n - 3},
		{Src: 3, Dst: n - 4},
	}
	if adj := g.Neighbors(5); len(adj) > 0 {
		delta = append(delta, graph.Edge{Src: 5, Dst: adj[0]}) // already in base
	}
	return delta
}

// TestBuildOverlayRejects pins the admission rules: weighted builds and
// out-of-range endpoints are refused, and a batch that fully dedups against
// the base collapses to a nil overlay.
func TestBuildOverlayRejects(t *testing.T) {
	g := undirectedTestGraph(t, 400, 9)
	cfg := Config{Workers: 2, Seed: 5, Planner: PlannerMCKP,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1}}
	e := newEngine(t, g, algo.DeepWalk(), cfg)
	defer e.Close()

	if _, err := BuildOverlay(e, []graph.Edge{{Src: g.NumVertices(), Dst: 0}}); err == nil {
		t.Fatal("BuildOverlay accepted an endpoint beyond |V|")
	}

	// Every delta edge already present in base → nil overlay, no error.
	var dup []graph.Edge
	for _, w := range g.Neighbors(7) {
		dup = append(dup, graph.Edge{Src: 7, Dst: w})
	}
	ov, err := BuildOverlay(e, dup)
	if err != nil {
		t.Fatal(err)
	}
	if ov != nil {
		t.Fatalf("fully-deduped batch built an overlay with %d edges", ov.DeltaEdges())
	}

	wres, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1, Weight: 2}, {Src: 1, Dst: 0, Weight: 2}},
		graph.BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	wspec := algo.DeepWalk()
	wspec.Weighted = true
	we := newEngine(t, graph.SortByDegreeDesc(wres.Graph).Graph,
		wspec, Config{Workers: 1, Seed: 1})
	defer we.Close()
	if _, err := BuildOverlay(we, []graph.Edge{{Src: 0, Dst: 1}}); err == nil {
		t.Fatal("BuildOverlay accepted a weighted build")
	}
}

// TestOverlayWalksAreUnionWalks: every transition an overlay session records
// must follow an edge of base ∪ delta — the merged graph a compaction of the
// same batch would build — and the run must be bitwise-reproducible.
func TestOverlayWalksAreUnionWalks(t *testing.T) {
	for _, planner := range []struct {
		name string
		p    PlannerKind
	}{
		{"mckp", PlannerMCKP},
		{"uniform-ps", PlannerUniformPS},
	} {
		t.Run(planner.name, func(t *testing.T) {
			g := undirectedTestGraph(t, 600, 3)
			cfg := Config{Workers: 4, Seed: 11, Planner: planner.p, RecordHistory: true,
				Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1}}
			e := newEngine(t, g, algo.DeepWalk(), cfg)
			defer e.Close()

			delta := overlayDelta(g)
			ov, err := BuildOverlay(e, delta)
			if err != nil {
				t.Fatal(err)
			}
			if ov == nil || ov.DeltaEdges() == 0 || ov.TouchedVPs() == 0 {
				t.Fatal("delta batch built an empty overlay")
			}

			union, err := graph.MergeEdges(g, delta, 0)
			if err != nil {
				t.Fatal(err)
			}
			a := overlayRun(t, e, ov, 77, 500, 6)
			checkPathsAreWalks(t, union, a.History)

			b := overlayRun(t, e, ov, 77, 500, 6)
			if !historiesEqual(a.History, b.History) {
				t.Fatal("same seed on fresh overlay sessions diverged")
			}
		})
	}
}

// TestOverlayFirstDivergenceIsInTouchedPartition compares an overlay run
// against the plain run of the same seed: before any walker draws inside a
// touched partition the two runs are in lockstep (untouched partitions use
// the unmodified kernels, same chunks, same seeds), so every walker that
// diverges at the run's globally earliest divergent step must have been
// standing in a touched partition. That is the zero-overhead claim made
// bitwise: untouched partitions cannot be first to change.
func TestOverlayFirstDivergenceIsInTouchedPartition(t *testing.T) {
	g := undirectedTestGraph(t, 600, 3)
	cfg := Config{Workers: 4, Seed: 11, Planner: PlannerMCKP, RecordHistory: true,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1}}
	e := newEngine(t, g, algo.DeepWalk(), cfg)
	defer e.Close()

	ov, err := BuildOverlay(e, overlayDelta(g))
	if err != nil {
		t.Fatal(err)
	}
	base := seededRun(t, e, 77, 500, 6)
	over := overlayRun(t, e, ov, 77, 500, 6)

	lk := e.plan.Lookup()
	first := -1
	for i := 1; i < base.History.NumSteps(); i++ {
		for j := 0; j < base.History.NumWalkers(); j++ {
			if base.History.At(i, j) != over.History.At(i, j) {
				first = i
				break
			}
		}
		if first >= 0 {
			break
		}
	}
	if first < 0 {
		t.Fatal("overlay run never diverged from base (delta edges unreachable?)")
	}
	for j := 0; j < base.History.NumWalkers(); j++ {
		if base.History.At(first, j) == over.History.At(first, j) {
			continue
		}
		prev := base.History.At(first-1, j)
		if !ov.touched(lk.VPOf(prev)) {
			t.Fatalf("walker %d first diverged at step %d from vertex %d in untouched partition %d",
				j, first, prev, lk.VPOf(prev))
		}
	}
}

// TestOverlayScalarKernelEquality: the scalar sampling path and the kernel
// path must draw bitwise-identical trajectories on overlay sessions, exactly
// as they do on plain ones.
func TestOverlayScalarKernelEquality(t *testing.T) {
	g := undirectedTestGraph(t, 600, 4)
	delta := overlayDelta(g)
	var hist [2]*Result
	for i, scalar := range []bool{false, true} {
		cfg := Config{Workers: 3, Seed: 21, Planner: PlannerMCKP, RecordHistory: true,
			ScalarSample: scalar,
			Part:         part.Config{TargetGroups: 2, MinVPSizeLog: 1}}
		e := newEngine(t, g, algo.DeepWalk(), cfg)
		ov, err := BuildOverlay(e, delta)
		if err != nil {
			t.Fatal(err)
		}
		hist[i] = overlayRun(t, e, ov, 33, 400, 5)
		e.Close()
	}
	if !historiesEqual(hist[0].History, hist[1].History) {
		t.Fatal("scalar and kernel overlay paths diverged")
	}
}

// TestOverlaySpecRestriction: non-empty overlays admit only first-order
// history-free walks — solo and mixed alike — while nil overlays behave
// exactly like plain sessions.
func TestOverlaySpecRestriction(t *testing.T) {
	g := undirectedTestGraph(t, 400, 6)
	cfg := Config{Workers: 2, Seed: 5, Planner: PlannerMCKP,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1}}
	e := newEngine(t, g, algo.Node2Vec(0.5, 2), cfg)
	defer e.Close()

	ov, err := BuildOverlay(e, overlayDelta(g))
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSessionOverlay(context.Background(), ov)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.RunSeeded(1, 100, 3); err == nil ||
		!strings.Contains(err.Error(), "first-order") {
		t.Fatalf("second-order solo run on overlay session: err = %v, want first-order rejection", err)
	}
	if _, err := s.RunMixed([]Cohort{
		{Spec: algo.DeepWalk(), Walkers: 50, Steps: 2, Seed: 1},
		{Spec: algo.Node2Vec(0.5, 2), Walkers: 50, Steps: 2, Seed: 2},
	}); err == nil || !strings.Contains(err.Error(), "first-order") {
		t.Fatalf("second-order cohort on overlay session: err = %v, want first-order rejection", err)
	}
	if _, err := s.RunMixed([]Cohort{
		{Spec: algo.DeepWalk(), Walkers: 50, Steps: 2, Seed: 1},
		{Spec: algo.PageRankWalk(0.85), Walkers: 50, Steps: 2, Seed: 2},
	}); err != nil {
		t.Fatalf("first-order cohorts on overlay session: %v", err)
	}

	// A pooled session reacquired without an overlay must shed it.
	s2, err := e.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.ov != nil || s2.cx.ov != nil {
		t.Fatal("plain session reacquired from the pool kept an overlay")
	}
	if _, err := s2.RunSeeded(1, 100, 3); err != nil {
		t.Fatalf("second-order run on plain session after overlay session: %v", err)
	}
}
