package core

import (
	"math"
	"slices"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

// cohortCtx binds one walk spec to the per-run sampling state that
// executes it: the spec itself, a kernel table whose st pointers are bound
// to this context's PS buffers, and the weighted sampler when (and only
// when) the spec samples by weight. Every function of the sample stage
// hangs off this receiver, so one stage can interleave work items of
// different walks without sharing mutable state: the solo run path uses
// the session's primary context (spec = the engine's, state = the
// session's), and RunMixed gives each cohort its own.
type cohortCtx struct {
	e    *Engine
	spec *algo.Spec

	// kern is this context's kernel table with st bound to ps below.
	kern []vpKernel
	// ps[i] is partition i's pre-sample state (nil for DS partitions),
	// private to this context.
	ps []*psState
	// weighted is the engine's alias-table sampler when spec.Weighted,
	// nil otherwise — a cohort with a uniform spec on a weighted build
	// must not draw by weight.
	weighted *algo.WeightedSampler
	// ov is the session's frozen delta overlay (nil on plain sessions):
	// chunk dispatch consults it for partitions whose mask bit is set and
	// samples those over base ∪ delta adjacency instead of the kernel.
	ov *Overlay
	// class indexes cohortClassNames for the per-walk-shape metrics.
	class int
}

// drawEdge samples one out-edge target of v according to the walk's
// first-order distribution (uniform or weight-proportional), reading the
// adjacency list directly. Degree must be nonzero.
func (c *cohortCtx) drawEdge(v graph.VID, src rng.Source) graph.VID {
	if c.weighted != nil {
		return c.weighted.Next(v, src)
	}
	adj := c.e.g.Neighbors(v)
	return adj[rng.Uint32n(src, uint32(len(adj)))]
}

// refill repopulates v's pre-sampled edge buffer with d(v) fresh samples —
// the PS production step (§4.2): random reads confined to one adjacency
// list, one sequential write stream into the buffer.
func (c *cohortCtx) refill(st *psState, v graph.VID, d uint32, src rng.Source) {
	off := c.e.g.Offsets[v] - st.base
	buf := st.buf[off : off+uint64(d)]
	if c.weighted != nil {
		for k := range buf {
			buf[k] = c.weighted.Next(v, src)
		}
	} else {
		adj := c.e.g.Neighbors(v)
		for k := range buf {
			buf[k] = adj[rng.Uint32n(src, d)]
		}
	}
	st.remaining[v-st.start] = d
}

// nextPS consumes one pre-sampled edge of v, refilling the buffer when
// drained — the PS consumption step. Degree must be nonzero.
func (c *cohortCtx) nextPS(st *psState, v graph.VID, src rng.Source) graph.VID {
	idx := v - st.start
	d := c.e.g.Degree(v)
	if st.remaining[idx] == 0 {
		c.refill(st, v, d, src)
	}
	off := c.e.g.Offsets[v] - st.base
	sample := st.buf[off+uint64(d-st.remaining[idx])]
	st.remaining[idx]--
	return sample
}

// sampleFirst advances a first-order walker at v within partition vpIdx.
func (c *cohortCtx) sampleFirst(vpIdx int, v graph.VID, src rng.Source) graph.VID {
	e := c.e
	if ov := c.ov; ov != nil && ov.touched(vpIdx) {
		return c.sampleFirstOverlay(ov.ext[vpIdx], v, src)
	}
	if st := c.ps[vpIdx]; st != nil {
		if e.g.Degree(v) == 0 {
			return v
		}
		return c.nextPS(st, v, src)
	}
	// DS: uniform-degree partitions use pure-arithmetic indexing into the
	// partition's contiguous edge block (the compact storage of §4.2);
	// mixed-degree partitions fall back to CSR.
	if reg := e.regularDeg[vpIdx]; reg >= 0 && c.weighted == nil {
		if reg == 0 {
			return v
		}
		vp := e.plan.VPs[vpIdx]
		base := e.g.Offsets[vp.Start]
		d := uint32(reg)
		return e.g.Targets[base+uint64(v-vp.Start)*uint64(d)+uint64(rng.Uint32n(src, d))]
	}
	if e.g.Degree(v) == 0 {
		return v
	}
	return c.drawEdge(v, src)
}

// sampleSecond advances a node2vec walker at v (predecessor prev) via
// rejection sampling; candidates come from the pre-sampled buffer on PS
// partitions, batching candidate generation as §5.2 describes.
func (c *cohortCtx) sampleSecond(vpIdx int, v, prev graph.VID, src rng.Source) graph.VID {
	e := c.e
	d := e.g.Degree(v)
	if d == 0 {
		return v
	}
	maxW := c.maxWeight()
	if d == 1 {
		// A single neighbour is the walk's only continuation; custom
		// weights of 0 must not spin forever.
		return e.g.Neighbors(v)[0]
	}
	st := c.ps[vpIdx]
	for {
		var x graph.VID
		if st != nil {
			x = c.nextPS(st, v, src)
		} else {
			x = c.sampleFirst(vpIdx, v, src)
		}
		w := c.secondOrderWeight(prev, v, x)
		if w >= maxW || rng.Float64(src)*maxW < w {
			return x
		}
	}
}

// maxWeight returns the rejection bound of the active second-order walk.
func (c *cohortCtx) maxWeight() float64 {
	if tr := c.spec.Custom; tr != nil {
		return tr.MaxWeight
	}
	maxW := 1.0
	if 1/c.spec.P > maxW {
		maxW = 1 / c.spec.P
	}
	if 1/c.spec.Q > maxW {
		maxW = 1 / c.spec.Q
	}
	return maxW
}

// secondOrderWeight evaluates the active walk's transition weight.
func (c *cohortCtx) secondOrderWeight(prev, cur, x graph.VID) float64 {
	if tr := c.spec.Custom; tr != nil {
		return tr.Weight(c.e.g, prev, cur, x)
	}
	switch {
	case x == prev:
		return 1 / c.spec.P
	case c.e.g.HasEdge(prev, x):
		return 1
	default:
		return 1 / c.spec.Q
	}
}

// sampleScratch holds per-worker reusable state for the sample stage: the
// reseedable RNG the stage's work items draw from, plus the buffers of the
// batched second-order path. pending packs (predecessor VID << 32 | walker
// index) so grouping by predecessor is a flat uint64 sort.
type sampleScratch struct {
	src     *rng.XorShift1024Star
	cand    []graph.VID
	pending []uint64
	auxView [][]graph.VID
	hist    []graph.VID
}

// newSampleScratch allocates a scratch with its own generator (reseeded
// per work item by the sample stage).
func newSampleScratch() *sampleScratch {
	return &sampleScratch{src: rng.NewXorShift1024Star(0)}
}

// batchThreshold is the chunk size above which second-order sampling
// switches to the batched connectivity-lookup path.
const batchThreshold = 64

// sampleVP advances every walker in one partition's shuffled chunk, in
// place (§4.2): a single sequential scan of the walker chunk, with all
// random accesses confined to the partition's working set.
func (s *Session) sampleVP(vpIdx int, chunk []graph.VID, aux [][]graph.VID, src *rng.XorShift1024Star) {
	s.cx.sampleVPScratch(vpIdx, chunk, aux, src, newSampleScratch())
}

// sampleVPScratch runs the session's primary walk (the engine spec) over
// one partition chunk — the solo-run entry point, retained so the
// equivalence suites drive the exact call the solo pipeline makes.
func (s *Session) sampleVPScratch(vpIdx int, chunk []graph.VID, aux [][]graph.VID, src *rng.XorShift1024Star, scr *sampleScratch) {
	s.cx.sampleVPScratch(vpIdx, chunk, aux, src, scr)
}

// sampleVPScratch dispatches one partition chunk to the walk-shape
// handler. The PS/DS/weighted kernel selection below it is per-partition
// (resolved at engine build, bound to the context's buffers), so the
// per-walker inner loops carry no policy branches; Config.ScalarSample
// routes through the retained generic scalar path instead, which follows
// the identical draw discipline (the equivalence tests compare the two
// bitwise).
func (c *cohortCtx) sampleVPScratch(vpIdx int, chunk []graph.VID, aux [][]graph.VID, src *rng.XorShift1024Star, scr *sampleScratch) {
	if c.spec.History != nil {
		c.sampleVPHistory(vpIdx, chunk, aux, src, scr)
		return
	}
	if c.spec.StopProb > 0 {
		c.sampleVPStop(vpIdx, chunk, aux, src, scr)
		return
	}
	c.sampleVPSegment(vpIdx, chunk, aux, 0, len(chunk), true, src, scr)
}

// sampleVPSegment advances walkers [lo, hi) of a chunk one step with no
// restart handling — the shared body of the plain path (whole chunk) and
// the geometric-skip restart path (the stretches between restarts).
// allowBatch gates the batched second-order path so segment boundaries do
// not change which walkers batch relative to the scalar reference.
func (c *cohortCtx) sampleVPSegment(vpIdx int, chunk []graph.VID, aux [][]graph.VID, lo, hi int, allowBatch bool, src *rng.XorShift1024Star, scr *sampleScratch) {
	if hi <= lo {
		return
	}
	if c.spec.Order == 2 {
		seg, prev := chunk[lo:hi], aux[0][lo:hi]
		if allowBatch && hi-lo >= batchThreshold {
			if c.e.cfg.ScalarSample {
				c.sampleVPSecondBatched(vpIdx, seg, prev, src, scr)
			} else {
				c.kernSecondBatched(vpIdx, seg, prev, src, scr)
			}
			return
		}
		if c.e.cfg.ScalarSample {
			for j := range seg {
				v := seg[j]
				next := c.sampleSecond(vpIdx, v, prev[j], src)
				prev[j] = v
				seg[j] = next
			}
			return
		}
		c.kernSecondWalk(vpIdx, seg, prev, src)
		return
	}
	if c.e.cfg.ScalarSample {
		seg := chunk[lo:hi]
		for j := range seg {
			seg[j] = c.sampleFirst(vpIdx, seg[j], src)
		}
		return
	}
	c.runChunkKernel(vpIdx, chunk[lo:hi], src)
}

// sampleVPStop advances a chunk under stochastic termination (Monte-Carlo
// PageRank semantics): a restarting walker teleports to a uniformly random
// vertex instead of taking an edge step. Rather than paying one Float64
// draw per walker to test restart, the distance to the next restart is
// drawn from the geometric law floor(ln(1-r)/ln(1-p)) and the walkers in
// between advance through the restart-free segment path. Restarts are
// i.i.d. Bernoulli(p) per walker-step and the walkers in a chunk are
// exchangeable, so a fresh geometric gap per chunk is distributionally
// exact; the non-restarting common case pays no per-walker restart draw.
func (c *cohortCtx) sampleVPStop(vpIdx int, chunk []graph.VID, aux [][]graph.VID, src *rng.XorShift1024Star, scr *sampleScratch) {
	logq := math.Log1p(-c.spec.StopProb) // ln(1-p) < 0, finite for p < 1
	n := c.e.g.NumVertices()
	order2 := c.spec.Order == 2
	pos := 0
	for pos < len(chunk) {
		// gap ≥ 0: how many walkers advance normally before one restarts.
		// Compare in float64 first — for r near 1 the ratio overflows int.
		gap := math.Log1p(-src.Float64()) / logq
		if gap >= float64(len(chunk)-pos) {
			c.sampleVPSegment(vpIdx, chunk, aux, pos, len(chunk), false, src, scr)
			return
		}
		next := pos + int(gap)
		c.sampleVPSegment(vpIdx, chunk, aux, pos, next, false, src, scr)
		nv := graph.VID(src.Uint32n(n))
		chunk[next] = nv
		if order2 {
			aux[0][next] = nv
		}
		pos = next + 1
	}
}

// sampleVPHistory advances order-k walkers: candidates come from the
// partition's PS/DS machinery, acceptance from the history transition,
// and every walker's predecessor window shifts by one.
func (c *cohortCtx) sampleVPHistory(vpIdx int, chunk []graph.VID, aux [][]graph.VID, src *rng.XorShift1024Star, scr *sampleScratch) {
	e := c.e
	tr := c.spec.History
	if cap(scr.hist) < tr.Window {
		scr.hist = make([]graph.VID, tr.Window)
	}
	hist := scr.hist[:tr.Window]
	for j := range chunk {
		v := chunk[j]
		for ch := 0; ch < tr.Window; ch++ {
			hist[ch] = aux[ch][j]
		}
		var next graph.VID
		switch d := e.g.Degree(v); {
		case d == 0:
			next = v
		case d == 1:
			// Single continuation: rejection must not spin on weight 0.
			next = e.g.Neighbors(v)[0]
		default:
			for {
				x := c.sampleFirst(vpIdx, v, src)
				w := tr.Weight(e.g, hist, v, x)
				if w >= tr.MaxWeight || rng.Float64(src)*tr.MaxWeight < w {
					next = x
					break
				}
			}
		}
		for ch := tr.Window - 1; ch > 0; ch-- {
			aux[ch][j] = aux[ch-1][j]
		}
		aux[0][j] = v
		chunk[j] = next
	}
}

// sampleVPSecondBatched is the batched node2vec sample path (§5.2: "though
// FlashMob again batches such lookups"): it decouples candidate generation
// (confined to the partition, PS/DS as usual) from the connectivity checks
// against each walker's predecessor, and groups the checks by predecessor
// so lookups into the same out-of-partition adjacency list run
// back-to-back and hit cache. Rejected walkers redraw in subsequent
// rounds; acceptance probability is bounded below by min(1, 1/p, 1/q)/maxW
// so rounds terminate quickly.
func (c *cohortCtx) sampleVPSecondBatched(vpIdx int, chunk, aux []graph.VID, src rng.Source, scr *sampleScratch) {
	e := c.e
	maxW := c.maxWeight()
	n := len(chunk)
	if cap(scr.cand) < n {
		scr.cand = make([]graph.VID, n)
		scr.pending = make([]uint64, 0, n)
	}
	cand := scr.cand[:n]
	pending := scr.pending[:0]
	for i := range chunk {
		switch e.g.Degree(chunk[i]) {
		case 0:
			aux[i] = chunk[i] // dead end: stay, predecessor becomes self
			continue
		case 1:
			// Only continuation: take it unconditionally (rejection could
			// spin forever on custom weight 0).
			next := e.g.Neighbors(chunk[i])[0]
			aux[i] = chunk[i]
			chunk[i] = next
			continue
		}
		pending = append(pending, uint64(aux[i])<<32|uint64(uint32(i)))
	}
	// Group the connectivity checks by predecessor once up front:
	// consecutive lookups then share the predecessor's adjacency list in
	// cache, and the walk over predecessors is monotone in VID (hubs
	// first, matching the degree-sorted layout).
	slices.Sort(pending)
	// The PS-vs-DS decision is partition-invariant: resolve it once, not
	// per pending walker per round.
	st := c.ps[vpIdx]
	for len(pending) > 0 {
		// Candidate generation: local to the partition (pre-sampled
		// buffers or direct reads), one sequential pass.
		for _, key := range pending {
			i := uint32(key)
			if st != nil {
				cand[i] = c.nextPS(st, chunk[i], src)
			} else {
				cand[i] = c.sampleFirst(vpIdx, chunk[i], src)
			}
		}
		next := pending[:0]
		for _, key := range pending {
			i := uint32(key)
			prev, x := graph.VID(key>>32), cand[i]
			w := c.secondOrderWeight(prev, chunk[i], x)
			if w >= maxW || rng.Float64(src)*maxW < w {
				aux[i] = chunk[i]
				chunk[i] = x
			} else {
				next = append(next, key)
			}
		}
		// Rejected keys keep their sorted order, so no re-sort is needed
		// between rounds.
		pending = next
	}
	scr.pending = pending[:0]
}
