package core

import (
	"context"
	"fmt"
	"math/bits"
	"slices"
	"time"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/obs"
	"flashmob/internal/rng"
	"flashmob/internal/walk"
)

// Cohort describes one walker population of a mixed run: its own walk
// spec, walker count, step count, and seed. Cohorts of one RunMixed share
// the engine's partition sweep, shuffle, and write-combined bin staging,
// but sample through per-cohort kernel bindings and private PS buffers,
// so each cohort's trajectories are a pure function of (engine build,
// cohort spec, cohort seed, walkers, steps) — bitwise-identical to the
// same cohort running alone via RunSeeded, whatever its co-batched
// neighbors do.
type Cohort struct {
	// Spec is the cohort's walk. Any spec the engine build supports is
	// allowed: weighted specs additionally require the engine itself to
	// have been built with a weighted primary spec (the alias tables are
	// a build-time artifact).
	Spec algo.Spec
	// Walkers is the cohort's walker count (0 means |V|).
	Walkers uint64
	// Steps is the cohort's walk length (0 means Spec.Steps). Cohorts
	// with fewer steps retire early: the sweep shrinks to the still-active
	// walker prefix instead of padding everyone to the longest walk.
	Steps int
	// Seed drives the cohort's walker placement and every sample draw,
	// exactly as RunSeeded's seed does for a solo run.
	Seed uint64
}

// CohortResult reports one cohort's slice of a mixed run.
type CohortResult struct {
	// Walkers is the cohort's walker count.
	Walkers uint64
	// Steps is the cohort's resolved walk length.
	Steps int
	// TotalSteps is Walkers × Steps.
	TotalSteps uint64
	// History holds the cohort's recorded W_i arrays when
	// Config.RecordHistory is set (each cohort records into its own
	// history — cohorts retire at different steps, so one shared history
	// would be ragged).
	History *walk.History
}

// MixedResult reports a completed mixed run: per-cohort outcomes in the
// caller's cohort order plus the run-level aggregates and stage timings.
type MixedResult struct {
	// Cohorts holds one result per requested cohort, in request order.
	Cohorts []CohortResult
	// Walkers is the total walker count across cohorts.
	Walkers uint64
	// TotalSteps is the sum of the cohorts' walker-steps.
	TotalSteps uint64
	// Duration is total wall time; SampleTime and ShuffleTime are the
	// stage splits, OtherTime the remainder (init, output).
	Duration, SampleTime, ShuffleTime, OtherTime time.Duration
	// ShuffleFwdTime and ShuffleRevTime split ShuffleTime into the forward
	// scatter and the reverse gather pass.
	ShuffleFwdTime, ShuffleRevTime time.Duration
	// VPSteps[i] counts walker-steps sampled in partition i across all
	// cohorts.
	VPSteps []uint64
	// Report is the observability snapshot of the session that executed
	// the run (nil unless Config.Metrics).
	Report *obs.Report
}

// PerStepNS returns average wall nanoseconds per walker-step across the
// whole mixed run.
func (r *MixedResult) PerStepNS() float64 {
	if r.TotalSteps == 0 {
		return 0
	}
	return float64(r.Duration.Nanoseconds()) / float64(r.TotalSteps)
}

// cohortState is one cohort slot's pooled per-run state: a private
// psState set (PS buffer consumption is mutable, so co-batched cohorts
// cannot share one) and a kernel table rebound to it per run. Sessions
// keep these across mixed runs — the PS buffers are the dominant
// allocation, exactly like the session's primary set.
type cohortState struct {
	ps   []*psState
	kern []vpKernel
	cx   cohortCtx
}

// newCohortState allocates one cohort slot's buffers.
func (e *Engine) newCohortState() *cohortState {
	cs := &cohortState{ps: make([]*psState, e.plan.NumVPs())}
	for i, vp := range e.plan.VPs {
		if !e.psVP[i] {
			continue
		}
		edges := e.g.Offsets[vp.End] - e.g.Offsets[vp.Start]
		cs.ps[i] = &psState{
			start:     vp.Start,
			base:      e.g.Offsets[vp.Start],
			buf:       make([]graph.VID, edges),
			remaining: make([]uint32, vp.End-vp.Start),
		}
	}
	return cs
}

// bind arms the slot for one run of spec: the kernel table is rebuilt for
// the spec's weighting, the PS buffers are reset to empty, and the
// context is pointed at them — making every run's cohort state
// indistinguishable from a freshly built one, the same discipline as
// Session.rebind.
func (cs *cohortState) bind(e *Engine, spec *algo.Spec) {
	var ws *algo.WeightedSampler
	if spec.Weighted {
		ws = e.weighted
	}
	// The kernel table depends only on (plan, PS policy, weighting), so
	// binding copies the engine's prebuilt template for the spec's
	// weighting — one memmove — instead of re-resolving every partition's
	// kernel on each run.
	tpl := e.kern
	if e.weighted != nil && ws == nil {
		tpl = e.kernUW
	}
	if cap(cs.kern) < len(tpl) {
		cs.kern = make([]vpKernel, len(tpl))
	}
	cs.kern = cs.kern[:len(tpl)]
	copy(cs.kern, tpl)
	for i, st := range cs.ps {
		if st == nil {
			continue
		}
		clear(st.remaining)
		cs.kern[i].st = st
	}
	cs.cx = cohortCtx{e: e, spec: spec, kern: cs.kern, ps: cs.ps,
		weighted: ws, class: classifySpec(spec)}
}

// ResolveCohorts validates cohorts against the build and resolves their
// defaults (Walkers 0 → |V|, Steps 0 → Spec.Steps), returning the
// resolved copy and the widest cohort's aux channel count. Exported
// because the sharded topology (internal/shard) must admit cohorts under
// exactly RunMixed's rules — a request a single engine would reject must
// not sneak through a sharded one.
func (e *Engine) ResolveCohorts(cohorts []Cohort) ([]Cohort, int, error) {
	if len(cohorts) == 0 {
		return nil, 0, fmt.Errorf("core: mixed run needs at least one cohort")
	}
	resolved := make([]Cohort, len(cohorts))
	copy(resolved, cohorts)
	channels := 0
	for i := range resolved {
		c := &resolved[i]
		if err := c.Spec.Validate(); err != nil {
			return nil, 0, fmt.Errorf("core: cohort %d: %w", i, err)
		}
		if c.Spec.Weighted {
			if c.Spec.Order == 2 {
				return nil, 0, fmt.Errorf("core: cohort %d: weighted second-order walks are not supported", i)
			}
			if e.weighted == nil {
				return nil, 0, fmt.Errorf("core: cohort %d is weighted but the engine was built without weighted sampling (build with a weighted primary spec)", i)
			}
		}
		if c.Walkers == 0 {
			c.Walkers = uint64(e.g.NumVertices())
		}
		if c.Steps == 0 {
			c.Steps = c.Spec.Steps
		}
		if c.Steps < 0 {
			return nil, 0, fmt.Errorf("core: cohort %d: negative step count", i)
		}
		if ch := auxChannelsFor(&c.Spec); ch > channels {
			channels = ch
		}
	}
	return resolved, channels, nil
}

// cohortSlots grows the session's pooled cohort state to n slots and
// returns it.
func (s *Session) cohortSlots(n int) []*cohortState {
	for len(s.cohorts) < n {
		s.cohorts = append(s.cohorts, s.e.newCohortState())
	}
	return s.cohorts[:n]
}

// RunMixed executes the given cohorts as one shared pipeline run on a
// fresh session. See Session.RunMixed.
func (e *Engine) RunMixed(cohorts []Cohort) (*MixedResult, error) {
	s, err := e.NewSession(context.Background())
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.RunMixed(cohorts)
}

// RunMixed advances every cohort through one shared sample→shuffle
// pipeline: all cohorts' walkers travel in one walker array (contiguous
// cohort segments), shuffle together, and are sampled in one partition
// sweep per step, with each partition chunk dispatched per cohort segment
// to that cohort's kernels. Cohorts with shorter walks retire from the
// sweep as their steps complete — the active walker set shrinks instead
// of padding to the longest cohort.
//
// Determinism: each cohort's trajectories are bitwise-identical to the
// same (spec, seed, walkers, steps) running alone on a fresh session via
// RunSeeded — walker init and every sample draw derive from the cohort's
// own seed, PS buffers are per-cohort, and the shuffle permutation within
// every partition chunk preserves walker order, so a cohort's walkers see
// the same draws whatever rides alongside. (A solo RunSeeded must fit in
// one episode for the comparison: mixed runs never episode-split, and
// return an error when a MemoryBudget would force them to.)
func (s *Session) RunMixed(cohorts []Cohort) (*MixedResult, error) {
	if s.closed {
		return nil, ErrClosed
	}
	e := s.e
	resolved, channels, err := e.ResolveCohorts(cohorts)
	if err != nil {
		return nil, err
	}
	if s.ov != nil {
		for i := range resolved {
			if err := checkOverlaySpec(&resolved[i].Spec); err != nil {
				return nil, fmt.Errorf("cohort %d: %w", i, err)
			}
		}
	}
	var totalWalkers uint64
	for i := range resolved {
		totalWalkers += resolved[i].Walkers
	}
	if e.cfg.MemoryBudget != 0 {
		if need := totalWalkers * (12 + 12*uint64(channels)); need > e.cfg.MemoryBudget {
			return nil, fmt.Errorf("core: mixed run needs %d walker-array bytes but the memory budget is %d (mixed runs do not split into episodes)", need, e.cfg.MemoryBudget)
		}
	}

	// Execution order: longest walks first, so at every step the active
	// cohorts are a prefix and retirement just shrinks the walker arrays.
	// The stable sort keeps equal-step cohorts in caller order.
	order := make([]int, len(resolved))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		return resolved[b].Steps - resolved[a].Steps
	})
	offs := make([]uint64, len(order)+1)
	for k, i := range order {
		offs[k+1] = offs[k] + resolved[i].Walkers
	}

	// Per-cohort sampling state: private PS buffers, kernel tables bound
	// to them, the cohort's spec and seed.
	slots := s.cohortSlots(len(order))
	for k, i := range order {
		slots[k].bind(e, &resolved[i].Spec)
		slots[k].cx.ov = s.ov
	}

	res := &MixedResult{
		Cohorts: make([]CohortResult, len(resolved)),
		Walkers: totalWalkers,
		VPSteps: make([]uint64, e.plan.NumVPs()),
	}
	start := time.Now()

	w := make([]graph.VID, totalWalkers)
	sw := make([]graph.VID, totalWalkers)
	wNext := make([]graph.VID, totalWalkers)
	auxW := make([][]graph.VID, channels)
	auxSW := make([][]graph.VID, channels)
	auxNext := make([][]graph.VID, channels)
	for c := 0; c < channels; c++ {
		auxW[c] = make([]graph.VID, totalWalkers)
		auxSW[c] = make([]graph.VID, totalWalkers)
		auxNext[c] = make([]graph.VID, totalWalkers)
	}

	// Per-cohort init, the exact solo formula at episode 0: a cohort's
	// start placement depends only on its own seed and segment length.
	histories := make([]*walk.History, len(order))
	for k, i := range order {
		c := &resolved[i]
		seg := w[offs[k]:offs[k+1]]
		initSrc := rng.NewXorShift1024Star(rng.Mix64(c.Seed ^ 0x9e3779b97f4a7c15))
		e.initWalkers(seg, initSrc)
		for ch := 0; ch < auxChannelsFor(&c.Spec); ch++ {
			copy(auxW[ch][offs[k]:offs[k+1]], seg)
		}
		if e.cfg.RecordHistory {
			histories[k] = walk.NewHistory(len(seg))
			if err := histories[k].Append(seg); err != nil {
				return nil, err
			}
		}
	}

	maxSteps := 0
	for _, c := range resolved {
		if c.Steps > maxSteps {
			maxSteps = c.Steps
		}
	}

	// Per-(partition, cohort) walker counts, recomputed each step from the
	// pre-shuffle walker array: the shuffle is stable (walkers of one
	// partition keep ascending walker-array order), so a cohort's walkers
	// form one contiguous subrange of every partition chunk, located by
	// these counts.
	lk := e.plan.Lookup()
	nvp := e.plan.NumVPs()
	cohCounts := make([][]uint32, len(order))
	for k := range cohCounts {
		cohCounts[k] = make([]uint32, nvp)
	}
	// occ[vp*occWords+w] holds bit k of word w set iff cohort k has
	// walkers in partition vp this step: most (partition, cohort) cells
	// are empty once walkers spread out, so sampleMixed walks the set
	// bits instead of scanning every active cohort at every occupied
	// partition.
	occWords := (len(order) + 63) / 64
	occ := make([]uint64, nvp*occWords)

	if s.m != nil {
		s.m.episodes.Inc()
	}

	var shuffler *walk.Shuffler
	fwdW, fwdSW := make([][]graph.VID, channels), make([][]graph.VID, channels)
	revSW, revNext := make([][]graph.VID, channels), make([][]graph.VID, channels)
	active := len(order)
	curWalkers := -1
	for step := 0; step < maxSteps; step++ {
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
		// Retire cohorts whose walks completed: the active set is the
		// prefix still owing steps.
		for active > 0 && resolved[order[active-1]].Steps <= step {
			active--
		}
		aw := int(offs[active])
		if aw == 0 {
			break
		}
		if aw != curWalkers {
			// Build the shuffler once at full size; retirements shrink it in
			// place (its scratch is plan-sized, so Resize allocates nothing —
			// a graph-sized rebuild mid-run would dwarf the steps it serves).
			if shuffler == nil {
				var err error
				shuffler, err = walk.NewShufflerPool(e.plan, aw, e.pool)
				if err != nil {
					return nil, err
				}
				if s.m != nil {
					shuffler.SetPprofLabels(true)
					shuffler.SetPoolMetrics(s.m.pool)
				}
			} else if err := shuffler.Resize(aw); err != nil {
				return nil, err
			}
			for c := 0; c < channels; c++ {
				fwdW[c], fwdSW[c] = auxW[c][:aw], auxSW[c][:aw]
				revSW[c], revNext[c] = auxSW[c][:aw], auxNext[c][:aw]
			}
			curWalkers = aw
		}

		// Reset only the cells the previous step touched — occ still holds
		// them, and they number ~active walkers, far fewer than the dense
		// active×NumVPs clear.
		for vp := 0; vp < nvp; vp++ {
			base := vp * occWords
			for wd := 0; wd < occWords; wd++ {
				m := occ[base+wd]
				for m != 0 {
					k := wd<<6 + bits.TrailingZeros64(m)
					m &= m - 1
					cohCounts[k][vp] = 0
				}
			}
		}
		clear(occ)
		for k := 0; k < active; k++ {
			counts := cohCounts[k]
			bit := uint64(1) << (uint(k) & 63)
			wd := k >> 6
			for _, v := range w[offs[k]:offs[k+1]] {
				vp := lk.VPOf(v)
				counts[vp]++
				occ[vp*occWords+wd] |= bit
			}
		}

		t0 := time.Now()
		if err := shuffler.ForwardMulti(w[:aw], sw[:aw], fwdW, fwdSW); err != nil {
			return nil, err
		}
		t1 := time.Now()
		s.sampleMixed(step, shuffler.VPStart(), sw[:aw], fwdSW, resolved, order[:active], offs, cohCounts, occ, occWords, res.VPSteps)
		t2 := time.Now()
		if err := shuffler.ReverseMulti(w[:aw], sw[:aw], wNext[:aw], revSW, revNext); err != nil {
			return nil, err
		}
		t3 := time.Now()
		res.ShuffleFwdTime += t1.Sub(t0)
		res.SampleTime += t2.Sub(t1)
		res.ShuffleRevTime += t3.Sub(t2)
		if m := s.m; m != nil {
			m.steps.Inc()
			m.shuffleFwdStepNS.Observe(uint64(t1.Sub(t0)))
			m.sampleStepNS.Observe(uint64(t2.Sub(t1)))
			m.shuffleRevStepNS.Observe(uint64(t3.Sub(t2)))
		}

		if e.cfg.StepSink != nil {
			// The sink sees the still-active walker prefix: cur[j] → next[j]
			// is position j's transition this step, cohort segments in the
			// same contiguous layout the run was built with.
			e.cfg.StepSink(step, w[:aw], wNext[:aw])
		}
		w, wNext = wNext, w
		auxW, auxNext = auxNext, auxW
		for c := 0; c < channels; c++ {
			// The swapped channel views must follow their backing arrays.
			fwdW[c] = auxW[c][:aw]
			revNext[c] = auxNext[c][:aw]
		}
		if e.cfg.RecordHistory {
			for k := 0; k < active; k++ {
				if err := histories[k].Append(w[offs[k]:offs[k+1]]); err != nil {
					return nil, err
				}
			}
		}
	}

	for k, i := range order {
		c := &resolved[i]
		res.Cohorts[i] = CohortResult{
			Walkers:    c.Walkers,
			Steps:      c.Steps,
			TotalSteps: c.Walkers * uint64(c.Steps),
			History:    histories[k],
		}
		res.TotalSteps += res.Cohorts[i].TotalSteps
	}
	res.Duration = time.Since(start)
	res.ShuffleTime = res.ShuffleFwdTime + res.ShuffleRevTime
	res.OtherTime = res.Duration - res.SampleTime - res.ShuffleTime
	if m := s.m; m != nil {
		m.runs.Inc()
		m.mixedRuns.Inc()
		m.mixedRunCohorts.Observe(uint64(len(resolved)))
		m.walkers.Add(totalWalkers)
		res.Report = m.reg.Snapshot()
	}
	return res, nil
}

// sampleMixed runs one mixed sample stage: each partition chunk is cut
// into per-cohort subranges (located by the stable-shuffle counts) and
// every subrange becomes a work item carrying its cohort's context and a
// seed derived from the cohort's own seed — the same
// (seed, episode=0, step, vp, sub) discipline as a solo run, so a
// cohort's draws are independent of its neighbors, the worker count, and
// the claim order. The occ bitmask narrows the per-partition cohort scan
// to exactly the cohorts present in the chunk; set bits are visited in
// ascending cohort order, so the item list (and the offset accumulation)
// is identical to the dense scan's.
func (s *Session) sampleMixed(step int, vpStart []uint64, sw []graph.VID, auxSW [][]graph.VID, resolved []Cohort, activeOrder []int, offs []uint64, cohCounts [][]uint32, occ []uint64, occWords int, vpSteps []uint64) {
	e := s.e
	t := &s.sample
	items := t.items[:0]
	subShards := 0
	// Each cohort's per-step seed prefix is constant across the partition
	// sweep; fold it once per cohort instead of per (partition, cohort)
	// item.
	prefixes := t.prefixes[:0]
	for _, i := range activeOrder {
		prefixes = append(prefixes, SampleSeedPrefix(resolved[i].Seed, 0, step))
	}
	t.prefixes = prefixes
	for vp := 0; vp < e.plan.NumVPs(); vp++ {
		lo, hi := vpStart[vp], vpStart[vp+1]
		if lo == hi {
			continue
		}
		acc := lo
		base := vp * occWords
		for wd := 0; wd < occWords; wd++ {
			m := occ[base+wd]
			for m != 0 {
				k := wd<<6 + bits.TrailingZeros64(m)
				m &= m - 1
				i := activeOrder[k]
				nk := uint64(cohCounts[k][vp])
				clo, chi := acc, acc+nk
				acc = chi
				c := &resolved[i]
				cx := &s.cohorts[k].cx
				// Only stateless first-order chunks can split, exactly as in
				// the solo path; sub-shard boundaries are cohort-local so they
				// match the solo run of the same cohort.
				shardable := c.Spec.Order == 1 && c.Spec.History == nil
				if !shardable || nk < 2*SubShardSize || cx.kern[vp].st != nil {
					items = append(items, sampleItem{vp: int32(vp), lo: clo, hi: chi,
						seed: SampleSeedAt(prefixes[k], vp, 0), cx: cx})
					continue
				}
				a := clo
				for sub := 0; a < chi; sub++ {
					b := a + SubShardSize
					if b >= chi || chi-b < SubShardSize {
						b = chi // absorb the ragged tail into the last piece
					}
					items = append(items, sampleItem{vp: int32(vp), lo: a, hi: b,
						seed: SampleSeedAt(prefixes[k], vp, sub), cx: cx})
					a = b
					subShards++
				}
			}
		}
	}
	t.items = items
	t.sw, t.auxSW = sw, auxSW
	t.vpSteps = vpSteps
	t.next.Store(-1)
	if m := s.m; m != nil {
		m.sampleItems.Observe(uint64(len(items)))
		m.sampleSubShards.Add(uint64(subShards))
		e.pool.Submit(t, 0, m.sampleCtx, m.pool)
	} else {
		e.pool.Submit(t, 0, nil, nil)
	}
	t.sw, t.auxSW = nil, nil
	t.vpSteps = nil
}
