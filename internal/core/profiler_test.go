package core

import (
	"testing"

	"flashmob/internal/mem"
	"flashmob/internal/profile"
)

func TestMeasureProfileSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling micro-benchmarks skipped in -short")
	}
	geom := mem.ScaledGeometry(8)
	tab, err := MeasureProfile(ProfilerConfig{
		Degrees:      []uint32{16, 128},
		Densities:    []float64{1},
		WorkingSets:  []uint64{geom.L2.SizeBytes * 3 / 4},
		MinSteps:     20_000,
		Seed:         1,
		MachineLabel: "test",
	}, geom)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Points) == 0 {
		t.Fatal("no profile points measured")
	}
	if tab.ShuffleNS <= 0 {
		t.Errorf("shuffle cost %v not positive", tab.ShuffleNS)
	}
	for _, p := range tab.Points {
		if p.StepNS <= 0 || p.StepNS > 10_000 {
			t.Errorf("implausible measured cost %+v", p)
		}
	}
	// The table is a usable CostModel.
	c := tab.SampleStepNS(profile.DS, profile.VPShape{Vertices: 1000, AvgDegree: 16, Density: 1})
	if c <= 0 {
		t.Errorf("table lookup returned %v", c)
	}
}

func TestVPVerticesForInvertsWorkingSet(t *testing.T) {
	for _, pol := range []profile.Policy{profile.PS, profile.DS} {
		for _, d := range []uint32{2, 16, 256} {
			target := uint64(512 << 10)
			n := vpVerticesFor(pol, target, d)
			if n == 0 {
				t.Fatalf("%v d=%d: zero vertices", pol, d)
			}
			got := profile.WorkingSetBytes(pol, profile.VPShape{Vertices: n, AvgDegree: float64(d)}, 64)
			if got > target || got < target/2 {
				t.Errorf("%v d=%d: working set %d for target %d", pol, d, got, target)
			}
		}
	}
}
