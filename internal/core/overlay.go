package core

import (
	"cmp"
	"fmt"
	"slices"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

// Overlay is a frozen delta view over an engine's immutable CSR: the edges
// ingested since the engine was built, grouped per vertex partition. A
// session bound to an overlay samples each walker's next edge uniformly
// over base ∪ delta adjacency — but only in partitions that actually hold
// delta edges, selected by an occupancy bitmask exactly like the mixed-run
// cohort mask, so untouched partitions run the unmodified specialized
// kernels at zero added cost and their draws stay bitwise-identical to the
// base build's. An Overlay is immutable once built and may back any number
// of concurrent sessions.
type Overlay struct {
	// mask has bit vp set when partition vp holds delta edges; the one
	// test every chunk dispatch pays on overlay sessions.
	mask []uint64
	// ext[vp] is partition vp's delta extension (nil when untouched).
	ext []*vpExt
	// edges is the total delta edge count across partitions.
	edges uint64
}

// vpExt is one touched partition's delta adjacency: a CSR fragment over
// the partition's own vertex range. Targets of vertex v (partition-local
// index i = v - start) are targets[off[i]:off[i+1]].
type vpExt struct {
	start   graph.VID
	off     []uint32
	targets []graph.VID
}

// DeltaEdges returns the overlay's total delta edge count (0 for nil).
func (o *Overlay) DeltaEdges() uint64 {
	if o == nil {
		return 0
	}
	return o.edges
}

// TouchedVPs counts partitions holding delta edges (0 for nil).
func (o *Overlay) TouchedVPs() int {
	if o == nil {
		return 0
	}
	n := 0
	for _, e := range o.ext {
		if e != nil {
			n++
		}
	}
	return n
}

// touched reports whether partition vp holds delta edges.
func (o *Overlay) touched(vp int) bool {
	return o.mask[uint(vp)>>6]&(1<<(uint(vp)&63)) != 0
}

// BuildOverlay freezes a batch of delta edges (already in the engine's
// internal degree-sorted numbering, endpoints < |V|) into an overlay over
// e's graph. Edges already present in the base adjacency and duplicates
// within the batch are dropped, so the view is the sorted-unique union a
// compaction of the same edges would build. Weighted builds are rejected:
// overlay sampling is uniform over base ∪ delta, which has no meaning
// against alias tables. Returns nil when every edge dedups away.
func BuildOverlay(e *Engine, edges []graph.Edge) (*Overlay, error) {
	if e.weighted != nil || e.g.Weights != nil {
		return nil, fmt.Errorf("core: overlays require an unweighted build")
	}
	n := e.g.NumVertices()
	for _, ed := range edges {
		if ed.Src >= n || ed.Dst >= n {
			return nil, fmt.Errorf("core: overlay edge %d→%d outside the build's %d vertices (defer it to compaction)", ed.Src, ed.Dst, n)
		}
	}
	// Order the delta by (source, target): each source's targets form one
	// sorted run, and sources arrive in partition order — so the overlay
	// is assembled in one pass touching only delta sources' adjacency,
	// never the untouched rest of the CSR.
	sorted := make([]graph.Edge, len(edges))
	copy(sorted, edges)
	slices.SortFunc(sorted, func(a, b graph.Edge) int {
		if a.Src != b.Src {
			return cmp.Compare(a.Src, b.Src)
		}
		return cmp.Compare(a.Dst, b.Dst)
	})

	nvp := e.plan.NumVPs()
	ov := &Overlay{mask: make([]uint64, (nvp+63)/64), ext: make([]*vpExt, nvp)}
	lk := e.plan.Lookup()
	curVP := -1
	var ext *vpExt
	flush := func() {
		if ext == nil || len(ext.targets) == 0 {
			ext = nil
			return
		}
		// Touched vertices set off[i+1]; complete the prefix for the
		// untouched ones (monotone fill).
		for i := 1; i < len(ext.off); i++ {
			if ext.off[i] < ext.off[i-1] {
				ext.off[i] = ext.off[i-1]
			}
		}
		ov.ext[curVP] = ext
		ov.mask[uint(curVP)>>6] |= 1 << (uint(curVP) & 63)
		ov.edges += uint64(len(ext.targets))
		ext = nil
	}
	for di := 0; di < len(sorted); {
		v := sorted[di].Src
		run := di
		for run < len(sorted) && sorted[run].Src == v {
			run++
		}
		if vpIdx := lk.VPOf(v); vpIdx != curVP {
			flush()
			curVP = vpIdx
		}
		// Delta targets of v: the run's sorted-unique targets minus v's
		// (sorted-unique) base adjacency, in one linear merge.
		base := e.g.Neighbors(v)
		bi := 0
		last := graph.NoVertex
		for _, ed := range sorted[di:run] {
			t := ed.Dst
			if t == last {
				continue
			}
			for bi < len(base) && base[bi] < t {
				bi++
			}
			if bi < len(base) && base[bi] == t {
				continue
			}
			if ext == nil {
				vp := e.plan.VPs[curVP]
				ext = &vpExt{start: vp.Start, off: make([]uint32, vp.End-vp.Start+1)}
			}
			ext.targets = append(ext.targets, t)
			last = t
		}
		if ext != nil {
			ext.off[v-ext.start+1] = uint32(len(ext.targets))
		}
		di = run
	}
	flush()
	if ov.edges == 0 {
		return nil, nil
	}
	return ov, nil
}

// overlaySpecOK reports whether a walk spec may run against a non-empty
// overlay. Only stateless first-order specs qualify: the overlay sampler
// replaces the per-partition kernel wholesale on touched partitions, and
// second-order/history walks would additionally need HasEdge and candidate
// generation over the extended adjacency. StopProb restarts are fine —
// teleports draw over the (unchanged) vertex space. Weighted specs never
// reach here (BuildOverlay rejects weighted builds).
func overlaySpecOK(sp *algo.Spec) bool {
	return sp.Order == 1 && sp.History == nil && !sp.Weighted
}

// checkOverlaySpec is overlaySpecOK as an error for run admission.
func checkOverlaySpec(sp *algo.Spec) error {
	if !overlaySpecOK(sp) {
		return fmt.Errorf("core: only first-order history-free walks can run against a non-empty delta overlay (freeze-only epoch); compact the deltas first")
	}
	return nil
}

// sampleChunkOverlay advances a first-order chunk in a touched partition:
// one uniform draw over d_base + d_delta per walker, branching into the
// base CSR or the partition's delta extension. It replaces the partition's
// specialized kernel (including PS consumption — pre-sampled buffers were
// filled from base-only adjacency and would under-weight the delta), so a
// touched partition pays the generic two-array path while untouched ones
// keep their kernels.
func (c *cohortCtx) sampleChunkOverlay(ext *vpExt, chunk []graph.VID, src *rng.XorShift1024Star) {
	offs, targets := c.e.g.Offsets, c.e.g.Targets
	for j, v := range chunk {
		off := offs[v]
		dBase := uint32(offs[v+1] - off)
		i := v - ext.start
		elo := ext.off[i]
		dExt := ext.off[i+1] - elo
		d := dBase + dExt
		if d == 0 {
			continue // dead end: walker stays, no draw
		}
		x := src.Uint32n(d)
		if x < dBase {
			chunk[j] = targets[off+uint64(x)]
		} else {
			chunk[j] = ext.targets[elo+(x-dBase)]
		}
	}
}

// sampleFirstOverlay is the scalar-path form of sampleChunkOverlay: one
// walker, same draw discipline (a single bounded draw over the combined
// degree), so ScalarSample runs on overlay sessions stay bitwise-identical
// to the kernel path.
func (c *cohortCtx) sampleFirstOverlay(ext *vpExt, v graph.VID, src rng.Source) graph.VID {
	g := c.e.g
	off := g.Offsets[v]
	dBase := uint32(g.Offsets[v+1] - off)
	i := v - ext.start
	elo := ext.off[i]
	dExt := ext.off[i+1] - elo
	d := dBase + dExt
	if d == 0 {
		return v
	}
	x := rng.Uint32n(src, d)
	if x < dBase {
		return g.Targets[off+uint64(x)]
	}
	return ext.targets[elo+(x-dBase)]
}
