package core

import (
	"context"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/part"
)

// seededRun executes one RunSeeded on a fresh session and returns it.
func seededRun(t *testing.T, e *Engine, seed uint64, walkers uint64, steps int) *Result {
	t.Helper()
	s, err := e.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.RunSeeded(seed, walkers, steps)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunSeededDeterministic is the per-run seed contract the serving
// layer builds on: on fresh sessions, trajectories are a pure function of
// (engine build, seed, walkers, steps) — repeated seeds reproduce
// bitwise, the engine seed reproduces Run, and distinct seeds diverge.
func TestRunSeededDeterministic(t *testing.T) {
	g := undirectedTestGraph(t, 600, 3)
	cfg := Config{
		Workers: 4, Seed: 11, Planner: PlannerMCKP, RecordHistory: true,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1},
	}
	e := newEngine(t, g, algo.DeepWalk(), cfg)
	defer e.Close()

	a := seededRun(t, e, 77, 400, 5)
	b := seededRun(t, e, 77, 400, 5)
	if !historiesEqual(a.History, b.History) {
		t.Fatal("same seed on fresh sessions diverged")
	}

	// The engine's own seed must reproduce plain Run.
	plain, err := e.Run(400, 5)
	if err != nil {
		t.Fatal(err)
	}
	viaSeed := seededRun(t, e, cfg.Seed, 400, 5)
	if !historiesEqual(plain.History, viaSeed.History) {
		t.Fatal("RunSeeded(Config.Seed) diverged from Run")
	}

	// Distinct seeds must draw distinct trajectories.
	c := seededRun(t, e, 78, 400, 5)
	if historiesEqual(a.History, c.History) {
		t.Fatal("different seeds produced identical trajectories")
	}
}

// TestRunSeededUnperturbedByNeighbors runs a seeded walk alone, then again
// while other differently-seeded runs execute concurrently on the same
// engine, and demands bitwise-identical trajectories — the property that
// lets a serving batch give each seeded request its own reproducible run.
func TestRunSeededUnperturbedByNeighbors(t *testing.T) {
	g := undirectedTestGraph(t, 600, 3)
	cfg := Config{
		Workers: 4, Seed: 11, Planner: PlannerMCKP, RecordHistory: true,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1},
	}
	e := newEngine(t, g, algo.DeepWalk(), cfg)
	defer e.Close()

	alone := seededRun(t, e, 99, 300, 4)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); i < 4; i++ {
			seededRun(t, e, 1000+i, 500, 4)
		}
	}()
	crowded := seededRun(t, e, 99, 300, 4)
	<-done

	if !historiesEqual(alone.History, crowded.History) {
		t.Fatal("seeded run perturbed by concurrent differently-seeded runs")
	}
}
