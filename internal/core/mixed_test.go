package core

import (
	"context"
	"strings"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/part"
)

// mixedRun executes one RunMixed on a fresh session and returns it.
func mixedRun(t *testing.T, e *Engine, cohorts []Cohort) *MixedResult {
	t.Helper()
	s, err := e.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.RunMixed(cohorts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// mixedTestConfig is the shared build configuration of the mixed-run
// suite: a multi-group MCKP plan (so both PS and DS partitions are in
// play) with history recording for trajectory comparison.
func mixedTestConfig() Config {
	return Config{
		Workers: 4, Seed: 11, Planner: PlannerMCKP, RecordHistory: true,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1},
	}
}

// TestRunMixedSingleCohortMatchesRunSeeded is the baseline contract: a
// one-cohort mixed run is bitwise-identical to the same (spec, seed,
// walkers, steps) running through the solo RunSeeded path on an engine
// built with that spec as its primary — for first-order uniform,
// second-order node2vec, and stochastic-termination (PPR-style) walks.
func TestRunMixedSingleCohortMatchesRunSeeded(t *testing.T) {
	g := undirectedTestGraph(t, 600, 3)
	cfg := mixedTestConfig()
	for _, tc := range []struct {
		name string
		spec algo.Spec
	}{
		{"deepwalk", algo.DeepWalk()},
		{"node2vec", algo.Node2Vec(4, 0.25)},
		{"pagerank", algo.PageRankWalk(0.85)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			solo := newEngine(t, g, tc.spec, cfg)
			defer solo.Close()
			ref := seededRun(t, solo, 77, 400, 6)

			// The mixed host deliberately uses a different primary spec:
			// cohort kernels must come from the cohort's spec, not the
			// build's.
			host := newEngine(t, g, algo.DeepWalk(), cfg)
			defer host.Close()
			res := mixedRun(t, host, []Cohort{
				{Spec: tc.spec, Walkers: 400, Steps: 6, Seed: 77},
			})
			if !historiesEqual(ref.History, res.Cohorts[0].History) {
				t.Fatal("single-cohort mixed run diverged from solo RunSeeded")
			}
			if res.TotalSteps != ref.TotalSteps || res.Walkers != ref.Walkers {
				t.Fatalf("accounting mismatch: mixed %d/%d vs solo %d/%d",
					res.Walkers, res.TotalSteps, ref.Walkers, ref.TotalSteps)
			}
		})
	}
}

// TestRunMixedCohortInvariance is the tentpole determinism property: a
// cohort's trajectories are a pure function of its own (spec, seed,
// walkers, steps), unperturbed by what rides alongside — the same walk is
// bitwise-identical alone, co-batched with same-algorithm cohorts, and
// co-batched with different-algorithm cohorts of different lengths.
func TestRunMixedCohortInvariance(t *testing.T) {
	g := undirectedTestGraph(t, 600, 3)
	e := newEngine(t, g, algo.DeepWalk(), mixedTestConfig())
	defer e.Close()

	probe := Cohort{Spec: algo.DeepWalk(), Walkers: 300, Steps: 5, Seed: 99}
	alone := mixedRun(t, e, []Cohort{probe})

	sameAlgo := mixedRun(t, e, []Cohort{
		{Spec: algo.DeepWalk(), Walkers: 128, Steps: 5, Seed: 1},
		probe,
		{Spec: algo.DeepWalk(), Walkers: 64, Steps: 5, Seed: 2},
	})
	if !historiesEqual(alone.Cohorts[0].History, sameAlgo.Cohorts[1].History) {
		t.Fatal("cohort perturbed by same-algorithm neighbors")
	}

	mixedAlgo := mixedRun(t, e, []Cohort{
		{Spec: algo.Node2Vec(4, 0.25), Walkers: 128, Steps: 8, Seed: 3},
		probe,
		{Spec: algo.PageRankWalk(0.85), Walkers: 64, Steps: 3, Seed: 4},
		{Spec: algo.SelfAvoiding(3, 5, 0.001), Walkers: 32, Steps: 5, Seed: 5},
	})
	if !historiesEqual(alone.Cohorts[0].History, mixedAlgo.Cohorts[1].History) {
		t.Fatal("cohort perturbed by different-algorithm neighbors")
	}

	// And the neighbors themselves reproduce when run alone.
	n2vAlone := mixedRun(t, e, []Cohort{{Spec: algo.Node2Vec(4, 0.25), Walkers: 128, Steps: 8, Seed: 3}})
	if !historiesEqual(n2vAlone.Cohorts[0].History, mixedAlgo.Cohorts[0].History) {
		t.Fatal("node2vec cohort perturbed by co-batched cohorts")
	}
	sawAlone := mixedRun(t, e, []Cohort{{Spec: algo.SelfAvoiding(3, 5, 0.001), Walkers: 32, Steps: 5, Seed: 5}})
	if !historiesEqual(sawAlone.Cohorts[0].History, mixedAlgo.Cohorts[3].History) {
		t.Fatal("order-k cohort perturbed by co-batched cohorts")
	}
}

// TestRunMixedRaggedRetirement pins the shrinking-sweep behavior: cohorts
// with shorter walks retire without padding — each cohort's history spans
// exactly its own Steps+1 positions and still matches its solo run, and
// results come back in caller order despite the longest-first execution
// order.
func TestRunMixedRaggedRetirement(t *testing.T) {
	g := undirectedTestGraph(t, 600, 3)
	e := newEngine(t, g, algo.DeepWalk(), mixedTestConfig())
	defer e.Close()

	cohorts := []Cohort{
		{Spec: algo.DeepWalk(), Walkers: 64, Steps: 1, Seed: 10},
		{Spec: algo.DeepWalk(), Walkers: 128, Steps: 7, Seed: 11},
		{Spec: algo.DeepWalk(), Walkers: 96, Steps: 3, Seed: 12},
	}
	res := mixedRun(t, e, cohorts)
	var total uint64
	for i, c := range cohorts {
		got := res.Cohorts[i]
		if got.Walkers != c.Walkers || got.Steps != c.Steps {
			t.Fatalf("cohort %d came back as %d walkers/%d steps, want %d/%d",
				i, got.Walkers, got.Steps, c.Walkers, c.Steps)
		}
		if got.History.NumSteps() != c.Steps+1 {
			t.Fatalf("cohort %d history has %d positions, want %d",
				i, got.History.NumSteps(), c.Steps+1)
		}
		solo := mixedRun(t, e, []Cohort{c})
		if !historiesEqual(solo.Cohorts[0].History, got.History) {
			t.Fatalf("cohort %d diverged from its solo run under ragged retirement", i)
		}
		total += got.TotalSteps
	}
	if res.TotalSteps != total {
		t.Fatalf("TotalSteps = %d, want %d", res.TotalSteps, total)
	}
}

// TestRunMixedWorkerCountInvariance demands identical mixed trajectories
// across worker counts — the work-item seeding discipline extended to
// per-cohort items.
func TestRunMixedWorkerCountInvariance(t *testing.T) {
	g := undirectedTestGraph(t, 600, 3)
	cohorts := []Cohort{
		{Spec: algo.DeepWalk(), Walkers: 200, Steps: 5, Seed: 21},
		{Spec: algo.Node2Vec(2, 0.5), Walkers: 100, Steps: 4, Seed: 22},
		{Spec: algo.PageRankWalk(0.85), Walkers: 50, Steps: 3, Seed: 23},
	}
	var ref *MixedResult
	for _, workers := range []int{1, 3, 7} {
		cfg := mixedTestConfig()
		cfg.Workers = workers
		e := newEngine(t, g, algo.DeepWalk(), cfg)
		res := mixedRun(t, e, cohorts)
		e.Close()
		if ref == nil {
			ref = res
			continue
		}
		for i := range cohorts {
			if !historiesEqual(ref.Cohorts[i].History, res.Cohorts[i].History) {
				t.Fatalf("cohort %d diverged at %d workers", i, workers)
			}
		}
	}
}

// TestRunMixedErrors covers the validation surface: empty cohort lists,
// weighted cohorts on unweighted builds, weighted second-order specs, and
// memory budgets too small for the one-episode walker arrays.
func TestRunMixedErrors(t *testing.T) {
	g := undirectedTestGraph(t, 200, 3)
	e := newEngine(t, g, algo.DeepWalk(), mixedTestConfig())
	defer e.Close()

	if _, err := e.RunMixed(nil); err == nil {
		t.Fatal("empty cohort list accepted")
	}
	wspec := algo.DeepWalk()
	wspec.Weighted = true
	if _, err := e.RunMixed([]Cohort{{Spec: wspec, Walkers: 10, Steps: 2}}); err == nil ||
		!strings.Contains(err.Error(), "weighted") {
		t.Fatalf("weighted cohort on unweighted build: got %v", err)
	}
	bad := algo.Node2Vec(1, 1)
	bad.Weighted = true
	if _, err := e.RunMixed([]Cohort{{Spec: bad, Walkers: 10, Steps: 2}}); err == nil {
		t.Fatal("weighted second-order cohort accepted")
	}

	cfg := mixedTestConfig()
	cfg.MemoryBudget = 64 // a few walkers' worth: forces the one-episode check
	tight := newEngine(t, g, algo.DeepWalk(), cfg)
	defer tight.Close()
	if _, err := tight.RunMixed([]Cohort{
		{Spec: algo.DeepWalk(), Walkers: 100, Steps: 2, Seed: 1},
	}); err == nil || !strings.Contains(err.Error(), "memory budget") {
		t.Fatalf("over-budget mixed run: got %v", err)
	}
}

// TestRunMixedMetrics checks the mixed-run accounting: run/mixed-run
// counters, the cohort-count histogram, and the per-walk-shape
// walker-step vector splitting the sample stage across cohorts.
func TestRunMixedMetrics(t *testing.T) {
	g := undirectedTestGraph(t, 400, 3)
	cfg := mixedTestConfig()
	cfg.Metrics = true
	e := newEngine(t, g, algo.DeepWalk(), cfg)
	defer e.Close()

	res := mixedRun(t, e, []Cohort{
		{Spec: algo.DeepWalk(), Walkers: 100, Steps: 4, Seed: 1},
		{Spec: algo.Node2Vec(4, 0.25), Walkers: 50, Steps: 2, Seed: 2},
	})
	if res.Report == nil {
		t.Fatal("metrics-enabled mixed run returned no report")
	}
	for name, want := range map[string]uint64{
		"core_runs_total":       1,
		"core_mixed_runs_total": 1,
		"core_steps_total":      4,
		"core_walkers_total":    150,
	} {
		c, ok := res.Report.Counter(name)
		if !ok {
			t.Fatalf("metric %s missing from mixed-run report", name)
		}
		if c.Value != want {
			t.Fatalf("%s = %d, want %d", name, c.Value, want)
		}
	}
	h, ok := res.Report.Histogram("core_mixed_run_cohorts")
	if !ok || h.Count != 1 || h.Sum != 2 {
		t.Fatalf("core_mixed_run_cohorts = %+v, want one observation of 2", h)
	}
	vec, ok := res.Report.Vector("core_cohort_walker_steps")
	if !ok {
		t.Fatal("core_cohort_walker_steps missing from mixed-run report")
	}
	byLabel := map[string]uint64{}
	for i, lab := range vec.Labels {
		byLabel[lab] = vec.Values[i]
	}
	if byLabel["uniform"] != 100*4 {
		t.Fatalf("uniform cohort steps = %d, want %d", byLabel["uniform"], 100*4)
	}
	if byLabel["node2vec"] != 50*2 {
		t.Fatalf("node2vec cohort steps = %d, want %d", byLabel["node2vec"], 50*2)
	}
}
