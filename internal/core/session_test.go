package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/part"
)

// TestConcurrentRunsMatchSerial is the Engine/Session split's core
// determinism claim: N goroutines running Run concurrently on ONE engine
// must each produce trajectories bitwise-identical to the same Run
// executed alone. Sessions give every run fresh PS state and every work
// item derives its RNG stream from (seed, episode, step, vp, sub), so
// interleaving sessions on the shared pool cannot perturb any of them.
func TestConcurrentRunsMatchSerial(t *testing.T) {
	g := undirectedTestGraph(t, 600, 3)
	for _, planner := range []PlannerKind{PlannerMCKP, PlannerUniformPS} {
		cfg := Config{
			Workers: 4, Seed: 11, Planner: planner, RecordHistory: true,
			Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1},
		}
		e := newEngine(t, g, algo.DeepWalk(), cfg)

		serial, err := e.Run(500, 4)
		if err != nil {
			t.Fatal(err)
		}

		const sessions = 6
		results := make([]*Result, sessions)
		errs := make([]error, sessions)
		var wg sync.WaitGroup
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = e.Run(500, 4)
			}(i)
		}
		wg.Wait()
		for i := 0; i < sessions; i++ {
			if errs[i] != nil {
				t.Fatalf("concurrent run %d: %v", i, errs[i])
			}
			if !historiesEqual(serial.History, results[i].History) {
				t.Fatalf("planner %d: concurrent run %d diverged from the serial run", planner, i)
			}
		}
		e.Close()
	}
}

// TestConcurrentRunsSecondOrder repeats the concurrent-vs-serial check on
// the node2vec path, whose PS partitions feed rejection sampling — the
// heaviest consumer of per-session buffer state.
func TestConcurrentRunsSecondOrder(t *testing.T) {
	g := undirectedTestGraph(t, 400, 7)
	e := newEngine(t, g, algo.Node2Vec(2, 0.5), Config{
		Workers: 3, Seed: 23, Planner: PlannerMCKP, RecordHistory: true,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1},
	})
	defer e.Close()

	serial, err := e.Run(300, 3)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 4
	results := make([]*Result, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Run(300, 3)
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if !historiesEqual(serial.History, results[i].History) {
			t.Fatalf("concurrent node2vec run %d diverged from the serial run", i)
		}
	}
}

// TestRunAfterCloseReturnsErrClosed locks the closed-engine contract: Run
// and NewSession fail fast with ErrClosed instead of hanging on (or
// panicking in) a pool whose workers have been released.
func TestRunAfterCloseReturnsErrClosed(t *testing.T) {
	g := undirectedTestGraph(t, 100, 5)
	e := newEngine(t, g, algo.DeepWalk(), Config{Workers: 2, Seed: 1})
	if _, err := e.Run(50, 2); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent

	if _, err := e.Run(50, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close: got %v, want ErrClosed", err)
	}
	if _, err := e.NewSession(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewSession after Close: got %v, want ErrClosed", err)
	}
}

// TestSessionRunAfterSessionClose checks the session-level analogue.
func TestSessionRunAfterSessionClose(t *testing.T) {
	g := undirectedTestGraph(t, 100, 5)
	e := newEngine(t, g, algo.DeepWalk(), Config{Workers: 2, Seed: 1})
	defer e.Close()
	s, err := e.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Run(50, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Session.Run after Close: got %v, want ErrClosed", err)
	}
}

// TestSessionContextCancellation checks that a canceled context aborts a
// session's Run with the context's error instead of completing the walk.
func TestSessionContextCancellation(t *testing.T) {
	g := undirectedTestGraph(t, 200, 9)
	e := newEngine(t, g, algo.DeepWalk(), Config{Workers: 2, Seed: 4})
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	s, err := e.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cancel()
	if _, err := s.Run(100, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on canceled session: got %v, want context.Canceled", err)
	}

	// A fresh session on the same engine still works: cancellation is
	// per-session, not per-engine.
	r, err := e.Run(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Walkers != 100 {
		t.Fatalf("post-cancel run advanced %d walkers, want 100", r.Walkers)
	}
}

// TestSessionReportsArePerRun locks the Result.Report semantics the split
// fixes: each ephemeral Run's report describes that run alone, a held
// session's report accumulates only that session, and the engine-lifetime
// aggregate is the fold of everything closed.
func TestSessionReportsArePerRun(t *testing.T) {
	g := undirectedTestGraph(t, 200, 9)
	e := newEngine(t, g, algo.DeepWalk(), Config{Workers: 2, Seed: 4, Metrics: true})
	defer e.Close()

	counter := func(rep *Result, name string) uint64 {
		for _, c := range rep.Report.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		t.Fatalf("counter %q missing from report", name)
		return 0
	}

	// Two ephemeral runs: each report shows exactly one run.
	for i := 0; i < 2; i++ {
		r, err := e.Run(100, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got := counter(r, "core_runs_total"); got != 1 {
			t.Fatalf("ephemeral run %d: core_runs_total = %d, want 1 (per-run report)", i, got)
		}
		if got := counter(r, "core_walkers_total"); got != 100 {
			t.Fatalf("ephemeral run %d: core_walkers_total = %d, want 100", i, got)
		}
	}

	// A held session accumulates across its own runs only.
	s, err := e.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	var last *Result
	for i := 0; i < 3; i++ {
		if last, err = s.Run(100, 3); err != nil {
			t.Fatal(err)
		}
	}
	if got := counter(last, "core_runs_total"); got != 3 {
		t.Fatalf("held session: core_runs_total = %d, want 3 (session-lifetime report)", got)
	}
	s.Close()

	// The aggregate sees all five closed runs.
	agg := e.MetricsReport()
	if agg == nil {
		t.Fatal("MetricsReport returned nil on a metrics-enabled engine")
	}
	var aggRuns uint64
	for _, c := range agg.Counters {
		if c.Name == "core_runs_total" {
			aggRuns = c.Value
		}
	}
	if aggRuns != 5 {
		t.Fatalf("aggregate core_runs_total = %d, want 5", aggRuns)
	}
}

// TestConcurrentRunsWithMetrics stresses the per-session registries and
// the pool's per-submission accounting under -race: every concurrent run
// must still report its own exact counts.
func TestConcurrentRunsWithMetrics(t *testing.T) {
	g := undirectedTestGraph(t, 300, 13)
	e := newEngine(t, g, algo.DeepWalk(), Config{Workers: 4, Seed: 6, Metrics: true})
	defer e.Close()

	const sessions = 4
	results := make([]*Result, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Run(200, 3)
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		for _, c := range results[i].Report.Counters {
			switch c.Name {
			case "core_runs_total":
				if c.Value != 1 {
					t.Fatalf("run %d: core_runs_total = %d, want 1", i, c.Value)
				}
			case "core_walkers_total":
				if c.Value != 200 {
					t.Fatalf("run %d: core_walkers_total = %d, want 200", i, c.Value)
				}
			case "core_steps_total":
				if c.Value != 3 {
					t.Fatalf("run %d: core_steps_total = %d, want 3", i, c.Value)
				}
			}
		}
	}
	// The fold must conserve counts: 4 runs × 200 walkers × 3 steps.
	var walkers uint64
	for _, c := range e.MetricsReport().Counters {
		if c.Name == "core_walkers_total" {
			walkers = c.Value
		}
	}
	if walkers != sessions*200 {
		t.Fatalf("aggregate core_walkers_total = %d, want %d", walkers, sessions*200)
	}
}

// TestCloseWaitsForActiveSessions checks that Engine.Close drains: a Walk
// in flight when Close is called completes normally instead of losing its
// pool workers mid-phase.
func TestCloseWaitsForActiveSessions(t *testing.T) {
	g := undirectedTestGraph(t, 400, 17)
	e := newEngine(t, g, algo.DeepWalk(), Config{Workers: 2, Seed: 2})

	// Acquire the session before Close is anywhere in flight, so Close is
	// guaranteed to find an active session to wait on.
	s, err := e.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	var r *Result
	var runErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, runErr = s.Run(2000, 20)
		s.Close()
	}()
	e.Close() // must block until the run's session closes
	wg.Wait()
	if runErr != nil {
		t.Fatalf("run overlapping Close failed: %v", runErr)
	}
	if r.Walkers != 2000 {
		t.Fatalf("run overlapping Close advanced %d walkers, want 2000", r.Walkers)
	}
}
